// Fuzz target: the §6 container decoder and everything a hostile archive
// can reach behind it — header/section/CRC validation, meta bounds, the
// SIAR / Exp-Golomb / PDDP bitstream walks, referential expansion and
// instance reconstruction, and the StIU tuple deserialization. An input
// that opens must decode without crashing, hanging or reading out of
// bounds; answers are free to be empty.
//
// Build flavors (CMake UTCQ_BUILD_FUZZERS): with Clang this links
// libFuzzer; elsewhere fuzz/standalone_main.cc replays corpus files.
// Seed corpus: fuzz/make_seed_corpus.cc writes archives from real saves.

#include <cstdint>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "common/rng.h"
#include "core/decoder.h"
#include "core/query.h"
#include "core/stiu_index.h"
#include "network/generator.h"
#include "network/grid_index.h"

namespace {

/// The network every archive is opened against (corpus-independent state a
/// real caller provides). Deterministic and built once.
const utcq::network::RoadNetwork& Net() {
  static const utcq::network::RoadNetwork* net = [] {
    utcq::common::Rng rng(100);
    utcq::network::CityParams params;
    params.rows = 8;
    params.cols = 8;
    return new utcq::network::RoadNetwork(
        utcq::network::GenerateCity(rng, params));
  }();
  return *net;
}

/// Bounds keeping a single input's work proportional to its size: crafted
/// counts are either rejected by the decoder or clamped here, never a
/// timeout.
constexpr size_t kMaxTrajDecodes = 64;
constexpr uint32_t kMaxIndexCells = 64;

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  utcq::archive::ArchivePayload payload;
  std::string error;
  utcq::archive::DecodeArchive(data, size, &payload, &error);

  utcq::archive::ArchiveReader reader;
  if (!reader.OpenBytes(std::vector<uint8_t>(data, data + size), &error)) {
    return 0;
  }

  // The archive passed validation: everything reachable from it must now
  // be total. Decode a bounded number of trajectories in full, then drive
  // the v3 seek entry points — a validated-but-hostile sync table must
  // yield a clean bracket or nothing, never an out-of-bounds bit walk.
  const utcq::core::CorpusView view = reader.view();
  const utcq::core::UtcqDecoder decoder(Net(), view);
  const size_t n = std::min(view.num_trajectories(), kMaxTrajDecodes);
  std::vector<utcq::traj::Timestamp> window;
  utcq::core::UtcqDecoder::SeekStats seek;
  for (size_t j = 0; j < n; ++j) {
    const auto times = decoder.DecodeTimes(j);
    (void)decoder.DecodeTraj(j);
    if (!times.empty()) {
      (void)decoder.BracketTime(j, times[times.size() / 2], 0, times.front(),
                                view.meta(j).t_pos, &seek);
    }
    const auto last = static_cast<uint32_t>(view.meta(j).n_points);
    (void)decoder.DecodeRangeInto(j, last / 2, last, &window, &seek);
  }

  // Reload the StIU tuples and push a query through the full stack.
  if (reader.has_index() && reader.index_cells_per_side() > 0 &&
      reader.index_cells_per_side() <= kMaxIndexCells) {
    const utcq::network::GridIndex grid(Net(), reader.index_cells_per_side());
    const auto index = reader.LoadIndex(grid, &error);
    if (index != nullptr) {
      const utcq::core::UtcqQueryProcessor qp(Net(), view, *index);
      for (size_t j = 0; j < n; ++j) {
        (void)qp.Where(j, 43200, 0.25);
        (void)qp.When(j, 0, 0.5, 0.25);
      }
      const auto bbox = Net().bounding_box();
      (void)qp.Range({bbox.min_x, bbox.min_y, bbox.max_x, bbox.max_y}, 43200,
                     0.25);
    }
  }
  return 0;
}
