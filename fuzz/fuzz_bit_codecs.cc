// Fuzz target: the bit-level codecs every compressed stream is built from —
// order-k Exp-Golomb, the paper's improved (signed) Exp-Golomb, and the
// PDDP lossy [0,1] codec. A reader over arbitrary bytes must terminate
// (bounded unary runs latch MarkOverflow, they never shift out of range)
// and PDDP reconstructions must stay inside [0, 1); violations trap.

#include <cstdint>
#include <cstddef>

#include "common/bitstream.h"
#include "common/exp_golomb.h"
#include "common/pddp.h"

namespace {

constexpr int kMaxDecodes = 4096;

void DrainExpGolomb(const uint8_t* data, size_t size, int k) {
  utcq::common::BitReader r(data, size * 8);
  for (int i = 0; i < kMaxDecodes && !r.overflow(); ++i) {
    (void)utcq::common::GetExpGolomb(r, k);
  }
}

void DrainImproved(const uint8_t* data, size_t size) {
  utcq::common::BitReader r(data, size * 8);
  for (int i = 0; i < kMaxDecodes && !r.overflow(); ++i) {
    (void)utcq::common::GetImprovedExpGolomb(r);
  }
}

void DrainPddp(const uint8_t* data, size_t size, double eta) {
  const utcq::common::PddpCodec codec(eta);
  utcq::common::BitReader r(data, size * 8);
  for (int i = 0; i < kMaxDecodes && !r.overflow(); ++i) {
    const double v = codec.Decode(r);
    // PDDP codes are binary expansions with weights 2^-1..2^-I: any
    // successful decode lies in [0, 1). Out-of-range output would corrupt
    // probabilities and relative distances downstream.
    if (!r.overflow() && !(v >= 0.0 && v < 1.0)) __builtin_trap();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  DrainExpGolomb(data, size, 0);
  DrainExpGolomb(data, size, 1);
  DrainExpGolomb(data, size, 3);
  DrainImproved(data, size);
  DrainPddp(data, size, 1.0 / 128.0);
  DrainPddp(data, size, 1.0 / 512.0);
  DrainPddp(data, size, 1.0 / 2048.0);
  return 0;
}
