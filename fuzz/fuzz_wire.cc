// Fuzz target: the network frame decoder (§14). The FrameAssembler is the
// first code that touches attacker-controlled bytes on the serving tier,
// so it must absorb truncated, oversized, mis-versioned and bad-opcode
// frames without crashing or allocating unboundedly. Three invariants are
// enforced with traps:
//
//   1. Chunking independence: feeding the byte stream one odd-sized chunk
//      at a time must yield exactly the frames (and the same terminal
//      error, if any) as feeding it in one push — the transport is free to
//      split reads at any byte boundary.
//   2. Canonical encoding: any payload a typed decoder accepts must
//      re-encode byte-identically (DESIGN.md §14 "Canonical encodings").
//   3. Frame bounds: a yielded frame never exceeds the advertised caps,
//      and after kBad the assembler stays bad with the same code.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/serial.h"
#include "net/wire.h"

namespace {

using utcq::net::ErrorCode;
using utcq::net::Frame;
using utcq::net::FrameAssembler;
using utcq::net::Op;

struct StreamResult {
  std::vector<Frame> frames;
  bool bad = false;
  ErrorCode code = ErrorCode::kMalformed;
};

StreamResult Consume(FrameAssembler* assembler) {
  StreamResult result;
  Frame frame;
  ErrorCode err = ErrorCode::kMalformed;
  for (;;) {
    const FrameAssembler::Status status = assembler->Next(&frame, &err);
    if (status == FrameAssembler::Status::kFrame) {
      result.frames.push_back(frame);
      continue;
    }
    if (status == FrameAssembler::Status::kBad) {
      result.bad = true;
      result.code = err;
      // Terminal: the same answer must come back forever.
      ErrorCode again = ErrorCode::kInternal;
      if (assembler->Next(&frame, &again) != FrameAssembler::Status::kBad ||
          again != err || !assembler->bad()) {
        __builtin_trap();
      }
    }
    return result;
  }
}

/// Invariant 2: a payload the typed decoder for `op` accepts in full must
/// re-encode to exactly the bytes it was decoded from.
void CheckCanonical(const Frame& frame) {
  utcq::common::ByteReader r(frame.payload);
  utcq::common::ByteWriter w;
  bool decoded = false;
  switch (frame.op) {
    case Op::kHello: {
      utcq::net::HelloRequest msg;
      if ((decoded = utcq::net::DecodeHelloRequest(&r, &msg))) {
        utcq::net::EncodeHelloRequest(msg, &w);
      }
      break;
    }
    case Op::kHelloOk: {
      utcq::net::HelloResponse msg;
      if ((decoded = utcq::net::DecodeHelloResponse(&r, &msg))) {
        utcq::net::EncodeHelloResponse(msg, &w);
      }
      break;
    }
    case Op::kQuery: {
      utcq::serve::QueryRequest msg;
      if ((decoded = utcq::net::DecodeQueryRequest(&r, &msg) &&
                     utcq::net::FinishPayload(r))) {
        utcq::net::EncodeQueryRequest(msg, &w);
      }
      break;
    }
    case Op::kResult: {
      utcq::serve::QueryResult msg;
      if ((decoded = utcq::net::DecodeQueryResult(&r, &msg) &&
                     utcq::net::FinishPayload(r))) {
        utcq::net::EncodeQueryResult(msg, &w);
      }
      break;
    }
    case Op::kBatch: {
      std::vector<utcq::serve::QueryRequest> msg;
      if ((decoded = utcq::net::DecodeBatchRequest(&r, &msg) &&
                     utcq::net::FinishPayload(r))) {
        utcq::net::EncodeBatchRequest(msg, &w);
      }
      break;
    }
    case Op::kBatchResult: {
      std::vector<utcq::serve::QueryResult> msg;
      if ((decoded = utcq::net::DecodeBatchResult(&r, &msg) &&
                     utcq::net::FinishPayload(r))) {
        utcq::net::EncodeBatchResult(msg, &w);
      }
      break;
    }
    case Op::kIngestPoint: {
      utcq::net::IngestPointRequest msg;
      if ((decoded = utcq::net::DecodeIngestPoint(&r, &msg))) {
        utcq::net::EncodeIngestPoint(msg, &w);
      }
      break;
    }
    case Op::kIngestEnd: {
      utcq::net::IngestEndRequest msg;
      if ((decoded = utcq::net::DecodeIngestEnd(&r, &msg))) {
        utcq::net::EncodeIngestEnd(msg, &w);
      }
      break;
    }
    case Op::kIngestAdvanceTime: {
      utcq::net::IngestAdvanceRequest msg;
      if ((decoded = utcq::net::DecodeIngestAdvance(&r, &msg))) {
        utcq::net::EncodeIngestAdvance(msg, &w);
      }
      break;
    }
    case Op::kIngestAck: {
      utcq::net::IngestAck msg;
      if ((decoded = utcq::net::DecodeIngestAck(&r, &msg))) {
        utcq::net::EncodeIngestAck(msg, &w);
      }
      break;
    }
    case Op::kStatsResult: {
      utcq::net::StatsResponse msg;
      if ((decoded = utcq::net::DecodeStatsResponse(&r, &msg))) {
        utcq::net::EncodeStatsResponse(msg, &w);
      }
      break;
    }
    case Op::kError: {
      utcq::net::ErrorBody msg;
      if ((decoded = utcq::net::DecodeErrorBody(&r, &msg))) {
        utcq::net::EncodeErrorBody(msg, &w);
      }
      break;
    }
    default:
      return;  // kStats/kGoodbye/kGoodbyeOk carry no payload; others unknown
  }
  if (decoded && w.bytes() != frame.payload) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Whole-stream pass.
  FrameAssembler whole;
  whole.Push(data, size);
  const StreamResult expect = Consume(&whole);

  // Chunked pass: odd-sized chunks so frame boundaries land everywhere.
  FrameAssembler chunked;
  StreamResult got;
  static constexpr size_t kChunks[] = {1, 3, 7, 2, 13, 5, 11, 1};
  size_t off = 0;
  size_t turn = 0;
  while (off < size && !got.bad) {
    const size_t n = std::min(kChunks[turn++ % 8], size - off);
    chunked.Push(data + off, n);
    off += n;
    const StreamResult step = Consume(&chunked);
    got.frames.insert(got.frames.end(), step.frames.begin(),
                      step.frames.end());
    got.bad = step.bad;
    got.code = step.code;
  }

  // Invariant 1: a framing error is determined by a byte prefix and
  // latches, so the chunked pass must land in exactly the same state and
  // must have yielded exactly the same frames on the way there.
  if (got.bad != expect.bad) __builtin_trap();
  if (got.bad && got.code != expect.code) __builtin_trap();
  if (got.frames.size() != expect.frames.size()) __builtin_trap();
  for (size_t i = 0; i < got.frames.size(); ++i) {
    if (!(got.frames[i] == expect.frames[i])) __builtin_trap();
  }

  for (const Frame& frame : expect.frames) {
    // Invariant 3: the assembler never yields more payload than the cap.
    if (frame.payload.size() >
        utcq::net::kMaxFrameBytes - utcq::net::kFrameOverheadBytes) {
      __builtin_trap();
    }
    // A yielded frame must re-frame to bytes the assembler accepts again.
    FrameAssembler again;
    const std::vector<uint8_t> bytes = utcq::net::EncodeFrame(frame);
    again.Push(bytes.data(), bytes.size());
    Frame copy;
    ErrorCode err;
    if (again.Next(&copy, &err) != FrameAssembler::Status::kFrame ||
        !(copy == frame)) {
      __builtin_trap();
    }
    CheckCanonical(frame);
  }
  return 0;
}
