// File-driven replay harness for the fuzz targets when the toolchain has no
// libFuzzer (CMake links this in automatically for non-Clang builds). Each
// argument is a corpus file or a directory of them; every input runs once
// through LLVMFuzzerTestOneInput, so the seed corpus doubles as a
// regression suite under ctest. Flag-looking arguments (e.g. libFuzzer's
// -runs=0) are ignored so the two flavors accept the same command lines.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

int RunFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  const std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int failures = 0;
  size_t runs = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg.front() == '-') continue;  // libFuzzer flags
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg, ec)) {
        if (!entry.is_regular_file()) continue;
        failures += RunFile(entry.path().string());
        ++runs;
      }
    } else if (std::filesystem::is_regular_file(arg, ec)) {
      failures += RunFile(arg);
      ++runs;
    } else {
      // A named corpus location that does not exist is a harness bug (a
      // drifted path would otherwise replay nothing and still pass).
      std::fprintf(stderr, "corpus path does not exist: %s\n", arg.c_str());
      ++failures;
    }
  }
  if (runs == 0) {
    // No corpus given: at least the empty input must be handled.
    LLVMFuzzerTestOneInput(nullptr, 0);
    runs = 1;
  }
  std::printf("replayed %zu input(s), %d failure(s)\n", runs, failures);
  return failures == 0 ? 0 : 1;
}
