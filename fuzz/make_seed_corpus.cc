// Seed-corpus generator for the fuzz targets: writes real artifacts —
// archives produced by ArchiveWriter, manifests produced by
// EncodeShardManifest, and raw compressed stream bytes — under
// <out>/archive, <out>/manifest and <out>/codecs. Fuzzing from saves the
// system actually performs starts the exploration at the deep decode paths
// instead of the magic-number check; the same files replay as a regression
// suite through fuzz/standalone_main.cc.
//
// The corpus network matches fuzz_archive.cc's (8x8 city, seed 100), so
// replayed archives reconstruct real instances end to end.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "common/bitstream.h"
#include "common/exp_golomb.h"
#include "common/pddp.h"
#include "common/rng.h"
#include "core/encoder.h"
#include "core/query.h"
#include "core/stiu_index.h"
#include "net/tcp_server.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "network/generator.h"
#include "network/grid_index.h"
#include "serve/query_engine.h"
#include "traj/generator.h"
#include "traj/profiles.h"

namespace {

bool WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return false;
  }
  return true;
}

std::vector<uint8_t> StreamBytes(const utcq::common::BitWriter& w) {
  return w.bytes();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-directory>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path out = argv[1];
  std::error_code ec;
  for (const char* sub : {"archive", "manifest", "codecs", "wire"}) {
    std::filesystem::create_directories(out / sub, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create %s: %s\n", (out / sub).c_str(),
                   ec.message().c_str());
      return 1;
    }
  }

  // The same deterministic network the archive fuzz target opens against.
  utcq::common::Rng net_rng(100);
  utcq::network::CityParams city;
  city.rows = 8;
  city.cols = 8;
  const auto net = utcq::network::GenerateCity(net_rng, city);
  const utcq::network::GridIndex grid(net, 16);

  auto profile = utcq::traj::ChengduProfile();
  utcq::traj::UncertainTrajectoryGenerator gen(net, profile, 4242);
  const auto corpus = gen.GenerateCorpus(6);

  utcq::core::UtcqParams params;
  params.default_interval_s = profile.default_interval_s;
  const utcq::core::UtcqCompressor compressor(net, params);
  std::vector<std::vector<utcq::core::NrefFactorLayout>> layouts;
  const utcq::core::CompressedCorpus cc = compressor.Compress(corpus, &layouts);
  const utcq::core::StiuIndex index(net, grid, corpus, cc.view(), layouts,
                                    utcq::core::StiuParams{16, 900});

  bool ok = true;

  // --- archives: with index, without index, and empty ---
  ok &= WriteFile((out / "archive" / "with_index.utcqarc").string(),
                  utcq::archive::ArchiveWriter(cc, &index).Serialize());
  ok &= WriteFile((out / "archive" / "no_index.utcqarc").string(),
                  utcq::archive::ArchiveWriter(cc).Serialize());
  const utcq::core::CompressedCorpus empty =
      compressor.Compress(utcq::traj::UncertainCorpus{});
  ok &= WriteFile((out / "archive" / "empty.utcqarc").string(),
                  utcq::archive::ArchiveWriter(empty).Serialize());

  // Format-version coverage: a v3 archive with dense sync tables (K=2, so
  // even the short seed trajectories carry kTSyncIndex entries and the
  // fuzzer starts at the tag-9 parse + seek paths), and a sync-free v2.
  {
    utcq::core::UtcqParams dense = params;
    dense.t_sync_interval = 2;
    const utcq::core::UtcqCompressor dense_comp(net, dense);
    ok &= WriteFile(
        (out / "archive" / "v3_dense_sync.utcqarc").string(),
        utcq::archive::ArchiveWriter(dense_comp.Compress(corpus)).Serialize());

    utcq::core::UtcqParams plain = params;
    plain.t_sync_interval = 0;
    const utcq::core::UtcqCompressor plain_comp(net, plain);
    ok &= WriteFile(
        (out / "archive" / "v2_no_sync.utcqarc").string(),
        utcq::archive::ArchiveWriter(plain_comp.Compress(corpus)).Serialize());
  }

  // --- manifests: a hash-sharded set and an append-log set ---
  {
    utcq::archive::ShardManifest m;
    m.policy = 0;  // ShardPolicy::kHash
    utcq::archive::ShardManifest::Shard s0;
    s0.file = "seed.utcq.shard-000";
    s0.members = {0, 2, 4};
    utcq::archive::ShardManifest::Shard s1;
    s1.file = "seed.utcq.shard-001";
    s1.members = {1, 3, 5};
    m.shards = {s0, s1};
    ok &= WriteFile((out / "manifest" / "hash.utcqman").string(),
                    utcq::archive::EncodeShardManifest(m));
  }
  {
    utcq::archive::ShardManifest m;
    m.policy = 2;  // ShardPolicy::kAppendLog
    utcq::archive::ShardManifest::Shard g0;
    g0.file = "log.utcq.shard-000";
    g0.members = {0, 1, 2, 3};
    utcq::archive::ShardManifest::Shard g1;
    g1.file = "log.utcq.shard-001";
    g1.members = {4, 5};
    m.shards = {g0, g1};
    ok &= WriteFile((out / "manifest" / "append_log.utcqman").string(),
                    utcq::archive::EncodeShardManifest(m));
  }

  // --- codec streams: the real compressed bit streams, plus a dense file
  // of hand-rolled valid codes of every flavor ---
  ok &= WriteFile((out / "codecs" / "t_stream.bin").string(),
                  StreamBytes(cc.t_stream()));
  ok &= WriteFile((out / "codecs" / "ref_stream.bin").string(),
                  StreamBytes(cc.ref_stream()));
  ok &= WriteFile((out / "codecs" / "nref_stream.bin").string(),
                  StreamBytes(cc.nref_stream()));
  {
    utcq::common::BitWriter w;
    for (uint64_t v = 0; v < 64; ++v) utcq::common::PutExpGolomb(w, v * v, 0);
    for (int64_t d = -40; d <= 40; ++d) {
      utcq::common::PutImprovedExpGolomb(w, d * 7);
    }
    const utcq::common::PddpCodec d_codec(1.0 / 128.0);
    const utcq::common::PddpCodec p_codec(1.0 / 512.0);
    for (int i = 0; i <= 20; ++i) {
      d_codec.Encode(w, i / 20.0);
      p_codec.Encode(w, 1.0 - i / 20.0);
    }
    ok &= WriteFile((out / "codecs" / "valid_codes.bin").string(),
                    StreamBytes(w));
  }

  // --- wire: real request/response captures (§14). The protocol encoders
  // build a pipelined request stream, and a socket-free net::Session —
  // the exact state machine the TCP server runs — answers it over a real
  // QueryEngine, so the captured response bytes are genuine server output,
  // not hand-rolled frames.
  {
    const utcq::core::UtcqQueryProcessor qp(net, cc.view(), index);
    utcq::obs::MetricRegistry registry;
    utcq::serve::EngineOptions engine_opts;
    engine_opts.registry = &registry;
    utcq::serve::QueryEngine engine(qp, engine_opts);

    auto make_frame = [](utcq::net::Op op, uint64_t id,
                         const utcq::common::ByteWriter& w) {
      utcq::net::Frame f;
      f.op = op;
      f.request_id = id;
      f.payload = w.bytes();
      return f;
    };

    std::vector<utcq::net::Frame> requests;
    {
      utcq::common::ByteWriter w;
      utcq::net::EncodeHelloRequest(utcq::net::HelloRequest{}, &w);
      requests.push_back(make_frame(utcq::net::Op::kHello, 1, w));
    }
    {
      utcq::common::ByteWriter w;
      utcq::net::EncodeQueryRequest(
          utcq::serve::QueryRequest::MakeWhere(0, 450, 0.3), &w);
      requests.push_back(make_frame(utcq::net::Op::kQuery, 2, w));
    }
    {
      utcq::common::ByteWriter w;
      utcq::net::EncodeQueryRequest(
          utcq::serve::QueryRequest::MakeWhen(1, 0, 0.5, 0.2), &w);
      requests.push_back(make_frame(utcq::net::Op::kQuery, 3, w));
    }
    {
      utcq::common::ByteWriter w;
      utcq::net::EncodeQueryRequest(
          utcq::serve::QueryRequest::MakeRange(
              utcq::network::Rect{-1e9, -1e9, 1e9, 1e9}, 450, 0.2),
          &w);
      requests.push_back(make_frame(utcq::net::Op::kQuery, 4, w));
    }
    {
      utcq::common::ByteWriter w;
      utcq::net::EncodeBatchRequest(
          {utcq::serve::QueryRequest::MakeWhere(2, 300, 0.4),
           utcq::serve::QueryRequest::MakeWhen(3, 2, 0.25, 0.3)},
          &w);
      requests.push_back(make_frame(utcq::net::Op::kBatch, 5, w));
    }
    requests.push_back(
        make_frame(utcq::net::Op::kStats, 6, utcq::common::ByteWriter{}));
    // A metrics pull after the workload above, so the captured
    // metrics-result frame carries a populated registry snapshot
    // (counters, gauges, and nonempty histogram bucket runs — §15).
    requests.push_back(
        make_frame(utcq::net::Op::kMetrics, 7, utcq::common::ByteWriter{}));
    requests.push_back(
        make_frame(utcq::net::Op::kGoodbye, 8, utcq::common::ByteWriter{}));

    std::vector<uint8_t> request_stream;
    for (const auto& f : requests) {
      utcq::net::AppendFrame(f, &request_stream);
    }
    ok &= WriteFile((out / "wire" / "requests.bin").string(), request_stream);

    utcq::net::Session session(&engine, nullptr, 64, &registry);
    std::vector<uint8_t> response_stream;
    session.HandleFrames(requests, &response_stream);
    ok &= WriteFile((out / "wire" / "responses.bin").string(),
                    response_stream);

    // Each response frame as its own seed, so the fuzzer also starts from
    // single well-formed frames of every response type.
    utcq::net::FrameAssembler splitter;
    splitter.Push(response_stream.data(), response_stream.size());
    utcq::net::Frame frame;
    utcq::net::ErrorCode err;
    int n = 0;
    while (splitter.Next(&frame, &err) ==
           utcq::net::FrameAssembler::Status::kFrame) {
      char name[32];
      std::snprintf(name, sizeof(name), "response_%02d.bin", n++);
      ok &= WriteFile((out / "wire" / name).string(),
                      utcq::net::EncodeFrame(frame));
    }

    // Error captures: a request before hello, then (on a fresh session)
    // an unknown opcode and a rejected version — the kError frames the
    // server actually emits.
    {
      utcq::net::Session strict(&engine, nullptr, 64);
      std::vector<uint8_t> error_stream;
      strict.HandleFrames({requests[1]}, &error_stream);  // no hello first
      utcq::net::Session strict2(&engine, nullptr, 64);
      std::vector<utcq::net::Frame> bad;
      bad.push_back(requests[0]);
      bad.push_back(make_frame(static_cast<utcq::net::Op>(0x42), 8,
                               utcq::common::ByteWriter{}));
      utcq::net::Frame wrong_version = requests[1];
      wrong_version.version = 9;
      bad.push_back(wrong_version);
      // metrics on a registry-less endpoint (not-supported), and metrics
      // with a nonempty payload (malformed) — the two §15 refusals.
      bad.push_back(
          make_frame(utcq::net::Op::kMetrics, 9, utcq::common::ByteWriter{}));
      utcq::common::ByteWriter junk;
      junk.PutU8(0x00);
      bad.push_back(make_frame(utcq::net::Op::kMetrics, 10, junk));
      strict2.HandleFrames(bad, &error_stream);
      ok &= WriteFile((out / "wire" / "errors.bin").string(), error_stream);
    }
  }

  if (!ok) return 1;
  std::printf("seed corpus written under %s\n", out.string().c_str());
  return 0;
}
