// Fuzz target: the shard-manifest decoder (§8). Manifests are the smallest
// archive-set file yet the most security-sensitive — they name other files
// on disk — so decoding must reject absolute paths, ".." traversal,
// overlapping or descending member lists and crafted counts without ever
// crashing. A decoded manifest must satisfy the documented invariants;
// violating them is a finding, enforced here with a trap so the fuzzer
// flags it.

#include <cstdint>
#include <cstddef>
#include <string>

#include "archive/archive.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  utcq::archive::ShardManifest manifest;
  std::string error;
  if (!utcq::archive::DecodeShardManifest(data, size, &manifest, &error)) {
    return 0;
  }
  for (const auto& shard : manifest.shards) {
    // Relative, traversal-free filenames: no absolute paths, no ".." as a
    // path component (".." inside a name like "a..b" is harmless), no NULs
    // — mirroring SafeRelativeFilename in archive.cc.
    if (!shard.file.empty() && shard.file.front() == '/') __builtin_trap();
    if (shard.file.find('\0') != std::string::npos) __builtin_trap();
    std::string part;
    for (size_t i = 0; i <= shard.file.size(); ++i) {
      if (i == shard.file.size() || shard.file[i] == '/') {
        if (part == "..") __builtin_trap();
        part.clear();
      } else {
        part.push_back(shard.file[i]);
      }
    }
    // Strictly ascending member lists.
    for (size_t i = 1; i < shard.members.size(); ++i) {
      if (shard.members[i] <= shard.members[i - 1]) __builtin_trap();
    }
  }
  // Round trip: a decoded manifest must re-encode and re-decode cleanly.
  const auto bytes = utcq::archive::EncodeShardManifest(manifest);
  utcq::archive::ShardManifest again;
  if (!utcq::archive::DecodeShardManifest(bytes.data(), bytes.size(), &again,
                                          &error)) {
    __builtin_trap();
  }
  return 0;
}
