#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/plain_query.h"
#include "core/utcq.h"
#include "network/generator.h"
#include "paper_example.h"
#include "traj/generator.h"
#include "traj/profiles.h"
#include "test_fixtures.h"

namespace utcq::core {
namespace {

struct Fixture {
  network::RoadNetwork net;
  network::GridIndex grid{net, 1};
  traj::UncertainCorpus corpus;
};

UtcqParams PaperParams() {
  UtcqParams p;
  p.default_interval_s = 240;
  return p;
}

TEST(ClassifySubpath, DegenerateInstancesAreDisjoint) {
  // Regression: with an empty edge loop, all_inside used to survive as true
  // and a subpath touching no edge classified kInside — over-counting
  // overlap probability in Range. Degenerate instances only reach this code
  // via crafted archives, which must not inflate query results.
  const auto ex = test::MakePaperExample();
  const auto bbox = ex.net.bounding_box();
  const network::Rect everywhere{bbox.min_x, bbox.min_y, bbox.max_x,
                                 bbox.max_y};

  traj::TrajectoryInstance no_path;
  no_path.locations.push_back({0, 0.0});
  EXPECT_EQ(ClassifySubpath(ex.net, no_path, 0, everywhere),
            SubpathRelation::kDisjoint);

  traj::TrajectoryInstance past_path;
  past_path.path = {ex.corridor[0]};
  past_path.locations.push_back({5, 0.0});  // path_index beyond the path
  EXPECT_EQ(ClassifySubpath(ex.net, past_path, 0, everywhere),
            SubpathRelation::kDisjoint);

  traj::TrajectoryInstance backwards;  // non-monotone location ordering
  backwards.path = ex.corridor;
  backwards.locations.push_back({3, 0.0});
  backwards.locations.push_back({1, 0.0});
  EXPECT_EQ(ClassifySubpath(ex.net, backwards, 0, everywhere),
            SubpathRelation::kDisjoint);

  // Sanity: a real subpath inside the all-covering rect still classifies
  // kInside.
  const auto& inst = ex.tu.instances[0];
  EXPECT_EQ(ClassifySubpath(ex.net, inst, 0, everywhere),
            SubpathRelation::kInside);
}

TEST(UtcqQuery, PaperExample3WhereQuery) {
  const auto ex = test::MakePaperExample();
  const traj::UncertainCorpus corpus{ex.tu};
  const network::GridIndex grid(ex.net, 8);
  const UtcqSystem sys(ex.net, grid, corpus, PaperParams(), {8, 900});

  // where(Tu^1, 5:21:25, 0.25): only Tu^1_1 (p = 0.75) qualifies; the
  // object sits between l4 (rd .5 on (v6->v7)) and l5 (rd 0 on (v7->v8)).
  const auto hits = sys.queries().Where(0, 19285, 0.25);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].instance, 0u);
  const auto& inst = ex.tu.instances[0];
  EXPECT_TRUE(hits[0].position.edge == inst.path[5] ||
              hits[0].position.edge == inst.path[6]);

  // At the very first sample the position is l0 exactly.
  const auto at_start = sys.queries().Where(0, ex.tu.times[0], 0.25);
  ASSERT_EQ(at_start.size(), 1u);
  EXPECT_EQ(at_start[0].position.edge, inst.path[0]);
  EXPECT_NEAR(at_start[0].position.ndist,
              0.875 * ex.net.edge(inst.path[0]).length, 2.0);
}

TEST(UtcqQuery, WhenQueryFindsSampleTimes) {
  const auto ex = test::MakePaperExample();
  const traj::UncertainCorpus corpus{ex.tu};
  const network::GridIndex grid(ex.net, 8);
  const UtcqSystem sys(ex.net, grid, corpus, PaperParams(), {8, 900});

  // All three instances pass l0's position at t0.
  const auto hits = sys.queries().When(0, ex.corridor[0], 0.875, 0.0);
  EXPECT_EQ(hits.size(), 3u);
  for (const auto& h : hits) EXPECT_EQ(h.t, ex.tu.times[0]);

  // Lemma 1: with alpha above every non-reference probability, only the
  // reference is evaluated.
  QueryStats stats;
  const auto only_ref =
      sys.queries().When(0, ex.corridor[0], 0.875, 0.5, &stats);
  ASSERT_EQ(only_ref.size(), 1u);
  EXPECT_EQ(only_ref[0].instance, 0u);
  EXPECT_GT(stats.pruned_lemma1, 0u);
}

TEST(UtcqQuery, WhenQueryOnDetourEdgeSeesOnlyDetourInstance) {
  const auto ex = test::MakePaperExample();
  const traj::UncertainCorpus corpus{ex.tu};
  const network::GridIndex grid(ex.net, 8);
  const UtcqSystem sys(ex.net, grid, corpus, PaperParams(), {8, 900});

  // l1' lies on (v2 -> v10), traversed only by Tu^1_2 (p = 0.2).
  const auto hits = sys.queries().When(0, ex.e_v2_v10, 0.25, 0.1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].instance, 1u);
  EXPECT_EQ(hits[0].t, ex.tu.times[1]);

  // alpha above p(Tu^1_2) filters it.
  EXPECT_TRUE(sys.queries().When(0, ex.e_v2_v10, 0.25, 0.3).empty());
}

TEST(UtcqQuery, RangeQueryPaperExample4Shape) {
  const auto ex = test::MakePaperExample();
  const traj::UncertainCorpus corpus{ex.tu};
  const network::GridIndex grid(ex.net, 8);
  const UtcqSystem sys(ex.net, grid, corpus, PaperParams(), {8, 900});

  // A box over the corridor start at 5:05:25 captures every instance.
  const network::Rect re{100, -100, 450, 200};
  const auto result = sys.queries().Range(re, 18325, 0.5);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], 0u);

  // A disjoint box returns nothing (Lemma 2/4 prune).
  QueryStats stats;
  EXPECT_TRUE(
      sys.queries().Range({5000, 5000, 6000, 6000}, 18325, 0.5, &stats)
          .empty());
}

// ------------------------- randomized agreement with the plain evaluator

class QueryAgreement : public ::testing::TestWithParam<int> {};

TEST_P(QueryAgreement, CompressedEnginesMatchGroundTruth) {
  const auto profiles = traj::AllProfiles();
  const auto& profile = profiles[static_cast<size_t>(GetParam())];
  const auto net = test::MakeSmallCity(profile, 14);
  traj::UncertainTrajectoryGenerator gen(net, profile, 333);
  const auto corpus = gen.GenerateCorpus(80);

  UtcqParams params;
  params.default_interval_s = profile.default_interval_s;
  params.eta_p = profile.eta_p;
  const network::GridIndex grid(net, 16);
  const UtcqSystem sys(net, grid, corpus, params, {16, 1200});
  const PlainQueryEngine plain(net, corpus);

  common::Rng rng(17);
  // Probabilities within eta_p of alpha can legitimately flip between the
  // engines; exclude those borderline instances from the comparison.
  const double eta_p = params.eta_p;

  int where_checked = 0;
  int when_checked = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const size_t j = static_cast<size_t>(rng.UniformInt(0, corpus.size() - 1));
    const auto& tu = corpus[j];
    const double alpha = rng.Uniform(0.0, 0.6);

    // ---- where ----
    const traj::Timestamp t =
        tu.times.front() +
        rng.UniformInt(0, std::max<int64_t>(tu.times.back() - tu.times.front(), 1));
    const auto got = sys.queries().Where(j, t, alpha);
    const auto want = plain.Where(j, t, alpha);
    std::set<uint32_t> got_ids, want_ids;
    bool borderline = false;
    for (const auto& tu_inst : tu.instances) {
      if (std::abs(tu_inst.probability - alpha) <= eta_p) borderline = true;
    }
    if (!borderline) {
      for (const auto& h : got) got_ids.insert(h.instance);
      for (const auto& h : want) want_ids.insert(h.instance);
      EXPECT_EQ(got_ids, want_ids) << "where traj " << j << " t " << t;
      // Positions agree to within the D quantization scaled by edge length.
      for (const auto& g : got) {
        for (const auto& w : want) {
          if (g.instance != w.instance) continue;
          const double tol =
              4.0 * params.eta_d *
                  std::max(net.edge(g.position.edge).length,
                           net.edge(w.position.edge).length) +
              1.0;
          if (g.position.edge == w.position.edge) {
            EXPECT_NEAR(g.position.ndist, w.position.ndist, tol);
          }
          ++where_checked;
        }
      }
    }

    // ---- when ----
    const auto& inst =
        tu.instances[static_cast<size_t>(rng.UniformInt(0, tu.instances.size() - 1))];
    const auto& loc =
        inst.locations[static_cast<size_t>(rng.UniformInt(0, inst.locations.size() - 1))];
    const network::EdgeId edge = inst.path[loc.path_index];
    if (!borderline) {
      const auto got_when = sys.queries().When(j, edge, loc.rd, alpha);
      const auto want_when = plain.When(j, edge, loc.rd, alpha);
      // Compressed rd grids differ slightly; compare hit counts loosely and
      // matched timestamps tightly.
      std::multiset<uint32_t> got_w, want_w;
      for (const auto& h : got_when) got_w.insert(h.instance);
      for (const auto& h : want_when) want_w.insert(h.instance);
      // Every plain hit instance should be found by the compressed engine.
      for (const auto id : want_w) {
        EXPECT_TRUE(got_w.count(id) > 0)
            << "when traj " << j << " edge " << edge << " rd " << loc.rd;
      }
      ++when_checked;
    }
  }
  EXPECT_GT(where_checked, 10);
  EXPECT_GT(when_checked, 10);
}

INSTANTIATE_TEST_SUITE_P(Profiles, QueryAgreement, ::testing::Values(0, 1, 2));

TEST(RangeAgreement, CompressedMatchesPlain) {
  const auto profile = traj::ChengduProfile();
  const auto net = test::MakeSmallCity(profile, 14);
  traj::UncertainTrajectoryGenerator gen(net, profile, 444);
  const auto corpus = gen.GenerateCorpus(80);

  UtcqParams params;
  params.default_interval_s = profile.default_interval_s;
  const network::GridIndex grid(net, 16);
  const UtcqSystem sys(net, grid, corpus, params, {16, 1200});
  const PlainQueryEngine plain(net, corpus);

  common::Rng rng(23);
  const auto bbox = net.bounding_box();
  int agreements = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const size_t j = static_cast<size_t>(rng.UniformInt(0, corpus.size() - 1));
    const auto& tu = corpus[j];
    const traj::Timestamp tq =
        tu.times.front() +
        rng.UniformInt(0, std::max<int64_t>(tu.times.back() - tu.times.front(), 1));
    const double cx = rng.Uniform(bbox.min_x, bbox.max_x);
    const double cy = rng.Uniform(bbox.min_y, bbox.max_y);
    const double half = rng.Uniform(100.0, 600.0);
    const network::Rect re{cx - half, cy - half, cx + half, cy + half};
    const double alpha = rng.Uniform(0.05, 0.8);

    const auto got = sys.queries().Range(re, tq, alpha);
    const auto want = plain.Range(re, tq, alpha);

    // Quantized probabilities can flip trajectories whose overlap mass sits
    // within a few eta_p of alpha; tolerate only those.
    std::set<uint32_t> got_s(got.begin(), got.end());
    std::set<uint32_t> want_s(want.begin(), want.end());
    std::vector<uint32_t> diff;
    std::set_symmetric_difference(got_s.begin(), got_s.end(), want_s.begin(),
                                  want_s.end(), std::back_inserter(diff));
    for (const uint32_t d : diff) {
      double mass = 0.0;
      for (const auto& inst : corpus[d].instances) {
        const auto pos =
            traj::PositionAtTime(net, inst, corpus[d].times, tq);
        if (!pos.has_value()) continue;
        const auto xy = net.PointOnEdge(pos->edge, pos->ndist);
        if (re.Contains(xy.x, xy.y)) mass += inst.probability;
      }
      // Allow flips near the threshold (quantization) or near the box
      // boundary (position quantization moves a point across the border).
      EXPECT_LE(std::abs(mass - alpha),
                corpus[d].instances.size() * params.eta_p + 0.12)
          << "trajectory " << d << " trial " << trial;
    }
    if (diff.empty()) ++agreements;
  }
  // The engines agree in the overwhelming majority of trials.
  EXPECT_GE(agreements, 85);
}

TEST(QueryStatsAccounting, LemmasActuallyFire) {
  const auto profile = traj::HangzhouProfile();
  const auto net = test::MakeSmallCity(profile, 14);
  traj::UncertainTrajectoryGenerator gen(net, profile, 555);
  const auto corpus = gen.GenerateCorpus(60);
  UtcqParams params;
  params.default_interval_s = profile.default_interval_s;
  params.eta_p = profile.eta_p;
  const network::GridIndex grid(net, 16);
  const UtcqSystem sys(net, grid, corpus, params, {16, 1800});

  QueryStats stats;
  common::Rng rng(3);
  const auto bbox = net.bounding_box();
  for (int trial = 0; trial < 60; ++trial) {
    const double cx = rng.Uniform(bbox.min_x, bbox.max_x);
    const double cy = rng.Uniform(bbox.min_y, bbox.max_y);
    const network::Rect re{cx - 250, cy - 250, cx + 250, cy + 250};
    sys.queries().Range(re, rng.UniformInt(0, traj::kSecondsPerDay - 1), 0.6,
                        &stats);
  }
  EXPECT_GT(stats.candidates, 0u);
  EXPECT_GT(stats.pruned_lemma4 + stats.pruned_lemma2 + stats.accepted_lemma3,
            0u);
}

}  // namespace
}  // namespace utcq::core
