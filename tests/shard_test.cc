#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "archive/archive.h"
#include "common/rng.h"
#include "core/utcq.h"
#include "network/generator.h"
#include "shard/sharded.h"
#include "traj/generator.h"
#include "traj/profiles.h"
#include "test_fixtures.h"

namespace utcq::shard {
namespace {

/// A corpus plus its *unsharded* compressed system — the ground truth every
/// sharded result is compared against.
struct ShardFixture {
  ShardFixture() {
    const auto profile = traj::ChengduProfile();
    net = test::MakeSmallCity(profile, 14);
    traj::UncertainTrajectoryGenerator gen(net, profile, 4242);
    corpus = gen.GenerateCorpus(60);
    grid = std::make_unique<network::GridIndex>(net, 16);
    params.default_interval_s = profile.default_interval_s;
    sys = std::make_unique<core::UtcqSystem>(net, *grid, corpus, params,
                                             core::StiuParams{16, 900});
  }

  std::string TempPath(const std::string& name) const {
    return ::testing::TempDir() + "/" + name;
  }

  /// Compress with `opts`, save, reopen. Registers every written file for
  /// cleanup in `files`.
  ShardedCorpus BuildAndReopen(const ShardOptions& opts,
                               const std::string& name,
                               std::vector<std::string>* files) {
    const ShardedCompressor compressor(net, *grid, params,
                                       core::StiuParams{16, 900}, opts);
    const ShardedBuild build = compressor.Compress(corpus);
    EXPECT_EQ(build.total_bits(), sys->compressed().total_bits())
        << "per-trajectory compression must be shard-invariant";
    const std::string manifest = TempPath(name);
    std::string error;
    EXPECT_TRUE(build.Save(manifest, &error)) << error;
    files->push_back(manifest);
    for (uint32_t s = 0; s < build.plan.num_shards(); ++s) {
      files->push_back(ShardArchivePath(manifest, s));
    }
    ShardedCorpus sharded;
    EXPECT_TRUE(sharded.Open(net, manifest, &error)) << error;
    return sharded;
  }

  static void Cleanup(const std::vector<std::string>& files) {
    for (const std::string& f : files) std::remove(f.c_str());
  }

  network::RoadNetwork net;
  traj::UncertainCorpus corpus;
  std::unique_ptr<network::GridIndex> grid;
  core::UtcqParams params;
  std::unique_ptr<core::UtcqSystem> sys;
};

void ExpectPlanPartitions(const ShardPlan& plan, size_t corpus_size) {
  std::set<uint32_t> seen;
  for (const auto& members : plan.members) {
    for (size_t i = 0; i < members.size(); ++i) {
      if (i > 0) EXPECT_LT(members[i - 1], members[i]);
      EXPECT_TRUE(seen.insert(members[i]).second);
      EXPECT_LT(members[i], corpus_size);
    }
  }
  EXPECT_EQ(seen.size(), corpus_size);
}

TEST(ShardPlan, BothPoliciesPartitionTheCorpus) {
  ShardFixture fx;
  for (const ShardPolicy policy :
       {ShardPolicy::kHash, ShardPolicy::kTimePartition}) {
    ShardOptions opts;
    opts.num_shards = 4;
    opts.policy = policy;
    const ShardPlan plan = MakeShardPlan(fx.corpus, opts);
    EXPECT_EQ(plan.num_shards(), 4u);
    ExpectPlanPartitions(plan, fx.corpus.size());
  }
}

TEST(ShardPlan, HashSpreadsSequentialIds) {
  ShardFixture fx;
  ShardOptions opts;
  opts.num_shards = 4;
  const ShardPlan plan = MakeShardPlan(fx.corpus, opts);
  // Sequential ids must not pile into one shard: every shard gets something.
  for (const auto& members : plan.members) EXPECT_FALSE(members.empty());
}

TEST(Sharded, RoundTripQueriesMatchUnsharded) {
  ShardFixture fx;
  std::vector<std::string> files;
  ShardOptions opts;
  opts.num_shards = 4;
  opts.num_threads = 2;
  const ShardedCorpus sharded = fx.BuildAndReopen(opts, "set_hash.utcq",
                                                  &files);
  ASSERT_TRUE(sharded.is_open());
  EXPECT_EQ(sharded.num_shards(), 4u);
  ASSERT_EQ(sharded.num_trajectories(), fx.corpus.size());

  // Where: every trajectory, mid-trip, all instances (alpha 0) — routed
  // point lookups must reproduce the unsharded hits bit for bit.
  for (size_t j = 0; j < fx.corpus.size(); ++j) {
    const auto& times = fx.corpus[j].times;
    const traj::Timestamp t = (times.front() + times.back()) / 2;
    const auto expected = fx.sys->queries().Where(j, t, 0.0);
    const auto actual = sharded.Where(j, t, 0.0);
    ASSERT_EQ(actual.size(), expected.size()) << "trajectory " << j;
    for (size_t h = 0; h < actual.size(); ++h) {
      EXPECT_EQ(actual[h].instance, expected[h].instance);
      EXPECT_EQ(actual[h].probability, expected[h].probability);
      EXPECT_EQ(actual[h].position.edge, expected[h].position.edge);
      EXPECT_EQ(actual[h].position.ndist, expected[h].position.ndist);
    }
  }

  // When: ask at the position the first Where hit of each trajectory gave.
  for (size_t j = 0; j < std::min<size_t>(fx.corpus.size(), 20); ++j) {
    const auto& times = fx.corpus[j].times;
    const auto hits =
        fx.sys->queries().Where(j, (times.front() + times.back()) / 2, 0.0);
    if (hits.empty()) continue;
    const auto& pos = hits.front().position;
    const double rd = pos.ndist / fx.net.edge(pos.edge).length;
    const auto expected = fx.sys->queries().When(j, pos.edge, rd, 0.0);
    const auto actual = sharded.When(j, pos.edge, rd, 0.0);
    ASSERT_EQ(actual.size(), expected.size()) << "trajectory " << j;
    for (size_t h = 0; h < actual.size(); ++h) {
      EXPECT_EQ(actual[h].instance, expected[h].instance);
      EXPECT_EQ(actual[h].probability, expected[h].probability);
      EXPECT_EQ(actual[h].t, expected[h].t);
    }
  }

  // Range: random regions and times; the parallel fan-out merge must equal
  // the unsharded result exactly (both ascending by global index).
  common::Rng rng(7);
  const auto bbox = fx.net.bounding_box();
  for (int q = 0; q < 30; ++q) {
    const double cx = rng.Uniform(bbox.min_x, bbox.max_x);
    const double cy = rng.Uniform(bbox.min_y, bbox.max_y);
    const double half = rng.Uniform(200.0, 900.0);
    const network::Rect re{cx - half, cy - half, cx + half, cy + half};
    const auto tq = rng.UniformInt(0, traj::kSecondsPerDay - 1);
    for (const double alpha : {0.0, 0.3, 0.7}) {
      EXPECT_EQ(sharded.Range(re, tq, alpha),
                fx.sys->queries().Range(re, tq, alpha))
          << "query " << q << " alpha " << alpha;
    }
  }

  ShardFixture::Cleanup(files);
}

TEST(Sharded, TimePartitionPolicyMatchesUnsharded) {
  ShardFixture fx;
  std::vector<std::string> files;
  ShardOptions opts;
  opts.num_shards = 3;
  opts.num_threads = 2;
  opts.policy = ShardPolicy::kTimePartition;
  opts.time_window_s = 3600;
  const ShardedCorpus sharded = fx.BuildAndReopen(opts, "set_time.utcq",
                                                  &files);
  ASSERT_TRUE(sharded.is_open());
  ASSERT_EQ(sharded.num_trajectories(), fx.corpus.size());
  EXPECT_EQ(sharded.manifest().time_partition_s, 3600);

  for (size_t j = 0; j < fx.corpus.size(); j += 5) {
    const auto& times = fx.corpus[j].times;
    const traj::Timestamp t = (times.front() + times.back()) / 2;
    const auto expected = fx.sys->queries().Where(j, t, 0.0);
    const auto actual = sharded.Where(j, t, 0.0);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t h = 0; h < actual.size(); ++h) {
      EXPECT_EQ(actual[h].position.ndist, expected[h].position.ndist);
    }
  }
  common::Rng rng(11);
  const auto bbox = fx.net.bounding_box();
  for (int q = 0; q < 15; ++q) {
    const double cx = rng.Uniform(bbox.min_x, bbox.max_x);
    const double cy = rng.Uniform(bbox.min_y, bbox.max_y);
    const network::Rect re{cx - 500, cy - 500, cx + 500, cy + 500};
    const auto tq = rng.UniformInt(0, traj::kSecondsPerDay - 1);
    EXPECT_EQ(sharded.Range(re, tq, 0.3),
              fx.sys->queries().Range(re, tq, 0.3));
  }

  ShardFixture::Cleanup(files);
}

TEST(Sharded, SingleShardDegenerateCaseWorks) {
  ShardFixture fx;
  std::vector<std::string> files;
  ShardOptions opts;
  opts.num_shards = 1;
  const ShardedCorpus sharded = fx.BuildAndReopen(opts, "set_one.utcq",
                                                  &files);
  ASSERT_TRUE(sharded.is_open());
  EXPECT_EQ(sharded.num_shards(), 1u);
  const auto& times = fx.corpus[0].times;
  const traj::Timestamp t = (times.front() + times.back()) / 2;
  EXPECT_EQ(sharded.Where(0, t, 0.0).size(),
            fx.sys->queries().Where(0, t, 0.0).size());
  ShardFixture::Cleanup(files);
}

// ------------------------------------------------------------- manifest

TEST(ShardManifest, EncodeDecodeRoundTrip) {
  archive::ShardManifest manifest;
  manifest.policy = static_cast<uint8_t>(ShardPolicy::kTimePartition);
  manifest.time_partition_s = 1800;
  manifest.shards.resize(3);
  manifest.shards[0] = {"set.shard-000", {0, 3, 6, 1000000}};
  manifest.shards[1] = {"set.shard-001", {1, 4, 7}};
  manifest.shards[2] = {"set.shard-002", {2, 5, 8}};

  const auto bytes = archive::EncodeShardManifest(manifest);
  archive::ShardManifest decoded;
  std::string error;
  ASSERT_TRUE(archive::DecodeShardManifest(bytes.data(), bytes.size(),
                                           &decoded, &error))
      << error;
  EXPECT_EQ(decoded.policy, manifest.policy);
  EXPECT_EQ(decoded.time_partition_s, manifest.time_partition_s);
  ASSERT_EQ(decoded.shards.size(), manifest.shards.size());
  for (size_t s = 0; s < decoded.shards.size(); ++s) {
    EXPECT_EQ(decoded.shards[s].file, manifest.shards[s].file);
    EXPECT_EQ(decoded.shards[s].members, manifest.shards[s].members);
  }
  EXPECT_EQ(decoded.num_trajectories(), 10u);
}

TEST(ShardManifest, RejectsCorruptionAndTruncation) {
  archive::ShardManifest manifest;
  manifest.shards.push_back({"set.shard-000", {0, 1, 2}});
  auto bytes = archive::EncodeShardManifest(manifest);

  archive::ShardManifest decoded;
  std::string error;
  // Bit rot fails the CRC.
  auto corrupt = bytes;
  corrupt[bytes.size() / 2] ^= 0x40;
  EXPECT_FALSE(archive::DecodeShardManifest(corrupt.data(), corrupt.size(),
                                            &decoded, &error));
  // Truncation fails the CRC (or the header length check).
  EXPECT_FALSE(archive::DecodeShardManifest(bytes.data(), bytes.size() - 5,
                                            &decoded, &error));
  EXPECT_FALSE(archive::DecodeShardManifest(bytes.data(), 6, &decoded,
                                            &error));
}

TEST(ShardManifest, RejectsEscapingFilenames) {
  std::string error;
  archive::ShardManifest decoded;
  for (const std::string name :
       {"../evil", "/etc/passwd", "a/../../b", "sub\\..\\up", ""}) {
    archive::ShardManifest manifest;
    manifest.shards.push_back({name, {0}});
    const auto bytes = archive::EncodeShardManifest(manifest);
    EXPECT_FALSE(archive::DecodeShardManifest(bytes.data(), bytes.size(),
                                              &decoded, &error))
        << "filename '" << name << "' must be rejected";
  }
  // Plain subdirectory-relative names are fine.
  archive::ShardManifest ok;
  ok.shards.push_back({"sub/dir/set.shard-000", {0}});
  const auto bytes = archive::EncodeShardManifest(ok);
  EXPECT_TRUE(
      archive::DecodeShardManifest(bytes.data(), bytes.size(), &decoded,
                                   &error))
      << error;
}

TEST(ShardManifest, RejectsNonAscendingMembers) {
  archive::ShardManifest decoded;
  std::string error;
  // A duplicate encodes as delta 0; a decreasing pair encodes as a
  // near-2^64 delta whose sum wraps — both must be rejected, not smuggled
  // past the ascending check by modular arithmetic.
  for (const std::vector<uint32_t> members :
       {std::vector<uint32_t>{5, 5}, std::vector<uint32_t>{5, 4}}) {
    archive::ShardManifest manifest;
    manifest.shards.push_back({"set.shard-000", members});
    const auto bytes = archive::EncodeShardManifest(manifest);
    EXPECT_FALSE(archive::DecodeShardManifest(bytes.data(), bytes.size(),
                                              &decoded, &error))
        << "members {" << members[0] << ", " << members[1] << "}";
  }
}

TEST(ShardManifest, RejectsDuplicateShardFiles) {
  // Two entries naming one archive can satisfy every count and partition
  // check while routing half the global space into the wrong shard's data.
  archive::ShardManifest manifest;
  manifest.shards.push_back({"set.shard-000", {0, 1}});
  manifest.shards.push_back({"set.shard-000", {2, 3}});
  const auto bytes = archive::EncodeShardManifest(manifest);
  archive::ShardManifest decoded;
  std::string error;
  EXPECT_FALSE(archive::DecodeShardManifest(bytes.data(), bytes.size(),
                                            &decoded, &error));
  EXPECT_NE(error.find("twice"), std::string::npos);
}

TEST(Sharded, ConsumingCompressMatchesBorrowing) {
  ShardFixture fx;
  ShardOptions opts;
  opts.num_shards = 4;
  opts.num_threads = 2;
  const ShardedCompressor compressor(fx.net, *fx.grid, fx.params,
                                     core::StiuParams{16, 900}, opts);
  traj::UncertainCorpus consumable = fx.corpus;
  const ShardedBuild build = compressor.Compress(std::move(consumable));
  EXPECT_TRUE(consumable.empty());
  EXPECT_EQ(build.total_bits(), fx.sys->compressed().total_bits());
}

TEST(Sharded, OpenRejectsOverlappingMemberLists) {
  // Structurally valid manifest whose member lists do not partition the
  // global space (same index in two shards): Open must refuse to route.
  ShardFixture fx;
  std::vector<std::string> files;
  ShardOptions opts;
  opts.num_shards = 2;
  const ShardedCompressor compressor(fx.net, *fx.grid, fx.params,
                                     core::StiuParams{16, 900}, opts);
  const ShardedBuild build = compressor.Compress(fx.corpus);
  const std::string manifest_path = fx.TempPath("set_bad.utcq");
  std::string error;
  ASSERT_TRUE(build.Save(manifest_path, &error)) << error;
  files.push_back(manifest_path);
  files.push_back(ShardArchivePath(manifest_path, 0));
  files.push_back(ShardArchivePath(manifest_path, 1));

  // Rewrite the manifest with both shards claiming indices 0..count-1: each
  // list is strictly ascending and sized to match its shard archive, so
  // only the routing check (every global claimed exactly once) can catch
  // the overlap.
  archive::ShardManifest tampered;
  tampered.policy = static_cast<uint8_t>(build.plan.policy);
  tampered.shards.resize(2);
  for (uint32_t s = 0; s < 2; ++s) {
    tampered.shards[s].file = s == 0 ? "set_bad.utcq.shard-000"
                                     : "set_bad.utcq.shard-001";
    for (uint32_t i = 0; i < build.plan.members[s].size(); ++i) {
      tampered.shards[s].members.push_back(i);
    }
  }
  ASSERT_TRUE(archive::SaveBytesAtomic(
      archive::EncodeShardManifest(tampered), manifest_path, &error))
      << error;

  ShardedCorpus sharded;
  EXPECT_FALSE(sharded.Open(fx.net, manifest_path, &error));
  EXPECT_FALSE(sharded.is_open());
  ShardFixture::Cleanup(files);
}

}  // namespace
}  // namespace utcq::shard
