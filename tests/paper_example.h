#ifndef UTCQ_TESTS_PAPER_EXAMPLE_H_
#define UTCQ_TESTS_PAPER_EXAMPLE_H_

#include <vector>

#include "network/road_network.h"
#include "traj/types.h"

namespace utcq::test {

/// The paper's running example: the road network of Fig. 2 and the
/// uncertain trajectory Tu^1 with instances Tu^1_1, Tu^1_2, Tu^1_3
/// (Tables 2-4). Edge insertion order is arranged so outgoing edge numbers
/// match the paper:
///   E(Tu^1_1) = <1,2,1,2,2,0,4,1,0>
///   E(Tu^1_2) = <1,1,1,2,2,0,4,1,0>
///   E(Tu^1_3) = <1,2,1,2,2,0,4,1,2>
struct PaperExample {
  network::RoadNetwork net;
  traj::UncertainTrajectory tu;
  // Path edge ids of the main corridor, for convenience in tests.
  std::vector<network::EdgeId> corridor;  // (v1->v2) ... (v7->v8)
  network::EdgeId e_v2_v10 = 0;
  network::EdgeId e_v10_v4 = 0;
  network::EdgeId e_v8_v9 = 0;
  network::VertexId v[11] = {};  // v[1]..v[10]
};

inline PaperExample MakePaperExample() {
  PaperExample ex;
  auto& net = ex.net;
  // Geometry loosely follows Fig. 2: a west-east corridor with v10 above
  // (the detour) and v9 below right. Coordinates in meters.
  ex.v[1] = net.AddVertex(0, 0);
  ex.v[2] = net.AddVertex(200, 0);
  ex.v[3] = net.AddVertex(400, 0);
  ex.v[4] = net.AddVertex(600, 0);
  ex.v[5] = net.AddVertex(700, 0);
  ex.v[6] = net.AddVertex(900, 0);
  ex.v[7] = net.AddVertex(1100, 0);
  ex.v[8] = net.AddVertex(1100, -200);
  ex.v[9] = net.AddVertex(1100, -400);
  ex.v[10] = net.AddVertex(400, 150);

  // Insertion order fixes the outgoing edge numbers.
  const auto e12 = net.AddEdge(ex.v[1], ex.v[2]);   // v1 #1
  ex.e_v2_v10 = net.AddEdge(ex.v[2], ex.v[10]);     // v2 #1
  const auto e23 = net.AddEdge(ex.v[2], ex.v[3]);   // v2 #2
  const auto e34 = net.AddEdge(ex.v[3], ex.v[4]);   // v3 #1
  ex.e_v10_v4 = net.AddEdge(ex.v[10], ex.v[4]);     // v10 #1
  net.AddEdge(ex.v[4], ex.v[10]);                   // v4 #1 (filler)
  const auto e45 = net.AddEdge(ex.v[4], ex.v[5]);   // v4 #2
  net.AddEdge(ex.v[5], ex.v[4]);                    // v5 #1 (filler)
  const auto e56 = net.AddEdge(ex.v[5], ex.v[6]);   // v5 #2
  net.AddEdge(ex.v[6], ex.v[5]);                    // v6 #1 (filler)
  net.AddEdge(ex.v[6], ex.v[3]);                    // v6 #2 (filler)
  net.AddEdge(ex.v[6], ex.v[10]);                   // v6 #3 (filler)
  const auto e67 = net.AddEdge(ex.v[6], ex.v[7]);   // v6 #4
  const auto e78 = net.AddEdge(ex.v[7], ex.v[8]);   // v7 #1
  net.AddEdge(ex.v[8], ex.v[7]);                    // v8 #1 (filler)
  ex.e_v8_v9 = net.AddEdge(ex.v[8], ex.v[9]);       // v8 #2

  ex.corridor = {e12, e23, e34, e45, e56, e67, e78};

  // Shared time sequence: 5:03:25 ... 5:27:25 with the paper's intervals
  // (240, 241, 240, 239, 240, 240).
  ex.tu.id = 1;
  ex.tu.times = {18205, 18445, 18686, 18926, 19165, 19405, 19645};

  traj::TrajectoryInstance i1;  // Tu^1_1
  i1.path = ex.corridor;
  i1.locations = {{0, 0.875}, {2, 0.25}, {4, 0.5}, {4, 0.875},
                  {5, 0.5},   {6, 0.0},  {6, 0.875}};
  i1.probability = 0.75;

  traj::TrajectoryInstance i2;  // Tu^1_2 (detour via v10)
  i2.path = {e12, ex.e_v2_v10, ex.e_v10_v4, e45, e56, e67, e78};
  i2.locations = {{0, 0.875}, {1, 0.25}, {4, 0.5}, {4, 0.875},
                  {5, 0.5},   {6, 0.0},  {6, 0.875}};
  i2.probability = 0.2;

  traj::TrajectoryInstance i3;  // Tu^1_3 (extends to v9)
  i3.path = {e12, e23, e34, e45, e56, e67, e78, ex.e_v8_v9};
  i3.locations = {{0, 0.875}, {2, 0.25}, {4, 0.5}, {4, 0.875},
                  {5, 0.5},   {6, 0.0},  {7, 0.5}};
  i3.probability = 0.05;

  ex.tu.instances = {i1, i2, i3};
  return ex;
}

}  // namespace utcq::test

#endif  // UTCQ_TESTS_PAPER_EXAMPLE_H_
