#include <gtest/gtest.h>

#include "common/rng.h"
#include "paper_example.h"
#include "traj/edit_distance.h"
#include "traj/generator.h"
#include "traj/interpolate.h"
#include "traj/statistics.h"
#include "traj/types.h"
#include "test_fixtures.h"

namespace utcq::traj {
namespace {

// ------------------------------------------------- representation builders

TEST(Types, PaperEdgeSequences) {
  const auto ex = test::MakePaperExample();
  const auto e1 = BuildEdgeSequence(ex.net, ex.tu.instances[0]);
  const auto e2 = BuildEdgeSequence(ex.net, ex.tu.instances[1]);
  const auto e3 = BuildEdgeSequence(ex.net, ex.tu.instances[2]);
  EXPECT_EQ(e1, (std::vector<uint32_t>{1, 2, 1, 2, 2, 0, 4, 1, 0}));
  EXPECT_EQ(e2, (std::vector<uint32_t>{1, 1, 1, 2, 2, 0, 4, 1, 0}));
  EXPECT_EQ(e3, (std::vector<uint32_t>{1, 2, 1, 2, 2, 0, 4, 1, 2}));
}

TEST(Types, PaperTimeFlagBits) {
  const auto ex = test::MakePaperExample();
  const auto t1 = BuildTimeFlagBits(ex.tu.instances[0]);
  const auto t2 = BuildTimeFlagBits(ex.tu.instances[1]);
  EXPECT_EQ(t1, (std::vector<uint8_t>{1, 0, 1, 0, 1, 1, 1, 1, 1}));  // Table 2
  EXPECT_EQ(t2, (std::vector<uint8_t>{1, 1, 0, 0, 1, 1, 1, 1, 1}));
  // The count of 1s equals the location count.
  int ones = 0;
  for (const auto b : t1) ones += b;
  EXPECT_EQ(ones, 7);
}

TEST(Types, ReconstructInstanceRejectsOutOfRangeStartVertex) {
  // Regression (found by fuzz_archive): a crafted valid-CRC archive can
  // carry any 32-bit start vertex; reconstruction must refuse it instead
  // of indexing past the adjacency table.
  const auto ex = test::MakePaperExample();
  const auto bad_sv =
      static_cast<network::VertexId>(ex.net.num_vertices()) + 7;
  EXPECT_EQ(ReconstructInstance(ex.net, bad_sv, {1}, {1}, {0.5}, 1.0),
            std::nullopt);
  EXPECT_EQ(ex.net.OutEdge(bad_sv, 1), network::kInvalidEdge);
}

TEST(Types, StartVertexAndValidate) {
  const auto ex = test::MakePaperExample();
  EXPECT_EQ(StartVertex(ex.net, ex.tu.instances[0]), ex.v[1]);
  EXPECT_EQ(Validate(ex.net, ex.tu), "");
}

TEST(Types, ValidateCatchesDisconnectedPath) {
  auto ex = test::MakePaperExample();
  std::swap(ex.tu.instances[0].path[1], ex.tu.instances[0].path[3]);
  EXPECT_NE(Validate(ex.net, ex.tu), "");
}

TEST(Types, ValidateCatchesBadProbabilities) {
  auto ex = test::MakePaperExample();
  ex.tu.instances[0].probability = 0.2;
  EXPECT_NE(Validate(ex.net, ex.tu), "");
}

TEST(Types, MeasureRawSizeComponents) {
  const auto ex = test::MakePaperExample();
  const ComponentSizes s = MeasureRawSize(ex.net, ex.tu);
  EXPECT_EQ(s.t_bits, 32u * 7);
  EXPECT_EQ(s.sv_bits, 32u * 3);
  EXPECT_EQ(s.e_bits, 32u * (9 + 9 + 9));
  EXPECT_EQ(s.d_bits, 32u * 7 * 3);
  EXPECT_EQ(s.tflag_bits, 9u * 3);
  EXPECT_EQ(s.p_bits, 32u * 3);
}

// ---------------------------------------------------------- edit distance

TEST(EditDistance, Basics) {
  EXPECT_EQ(EditDistance({}, {}), 0u);
  EXPECT_EQ(EditDistance({1, 2, 3}, {1, 2, 3}), 0u);
  EXPECT_EQ(EditDistance({1, 2, 3}, {1, 3}), 1u);
  EXPECT_EQ(EditDistance({1, 2, 3}, {4, 5, 6}), 3u);
  EXPECT_EQ(EditDistance({}, {1, 2}), 2u);
}

TEST(EditDistance, BandedAgreesWithinBand) {
  common::Rng rng(2);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<uint32_t> a, b;
    const int n = static_cast<int>(rng.UniformInt(0, 20));
    const int m = static_cast<int>(rng.UniformInt(0, 20));
    for (int i = 0; i < n; ++i) a.push_back(static_cast<uint32_t>(rng.UniformInt(0, 4)));
    for (int i = 0; i < m; ++i) b.push_back(static_cast<uint32_t>(rng.UniformInt(0, 4)));
    const size_t exact = EditDistance(a, b);
    const size_t banded = EditDistanceBanded(a, b, 9);
    if (exact <= 9) {
      EXPECT_EQ(banded, exact);
    } else {
      EXPECT_EQ(banded, 10u);
    }
  }
}

// ---------------------------------------------------------------- generator

class GeneratorPerProfile : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorPerProfile, ProducesValidTrajectories) {
  const auto profiles = AllProfiles();
  const DatasetProfile& profile = profiles[static_cast<size_t>(GetParam())];
  const auto net = test::MakeSmallCity(profile, 16);
  UncertainTrajectoryGenerator gen(net, profile, 7);
  const auto corpus = gen.GenerateCorpus(40);
  ASSERT_EQ(corpus.size(), 40u);
  for (const auto& tu : corpus) {
    EXPECT_EQ(Validate(net, tu), "") << "profile " << profile.name;
    EXPECT_GE(tu.instances.size(),
              static_cast<size_t>(profile.min_instances));
  }
}

TEST_P(GeneratorPerProfile, IntervalMixTracksProfile) {
  const auto profiles = AllProfiles();
  const DatasetProfile& profile = profiles[static_cast<size_t>(GetParam())];
  const auto net = test::MakeSmallCity(profile, 16);
  UncertainTrajectoryGenerator gen(net, profile, 13);
  const auto corpus = gen.GenerateCorpus(250);
  const IntervalHistogram h =
      ComputeIntervalHistogram(corpus, profile.default_interval_s);
  ASSERT_GT(h.total, 500u);
  const double expected =
      profile.deviations.zero + profile.deviations.one;
  EXPECT_NEAR(h.within_one(), expected, 0.06) << profile.name;
}

TEST_P(GeneratorPerProfile, InstancesSimilarWithinTrajectory) {
  const auto profiles = AllProfiles();
  const DatasetProfile& profile = profiles[static_cast<size_t>(GetParam())];
  const auto net = test::MakeSmallCity(profile, 16);
  UncertainTrajectoryGenerator gen(net, profile, 23);
  const auto corpus = gen.GenerateCorpus(150);
  common::Rng rng(5);
  const auto within = ComputeWithinDistances(net, corpus, rng);
  const auto across = ComputeAcrossDistances(net, corpus, rng, 400);
  // Fig. 4b shape: within-trajectory distances concentrate at <= 5; across
  // pairs are far less similar.
  EXPECT_GT(within.at_most_five(), 0.6) << profile.name;
  EXPECT_GT(across.at_least_nine(), within.at_least_nine()) << profile.name;
}

INSTANTIATE_TEST_SUITE_P(Profiles, GeneratorPerProfile,
                         ::testing::Values(0, 1, 2));

TEST(Generator, DeterministicAcrossRuns) {
  common::Rng net_rng(100);
  const auto profile = ChengduProfile();
  network::CityParams small = profile.city;
  small.rows = 12;
  small.cols = 12;
  const auto net = network::GenerateCity(net_rng, small);
  UncertainTrajectoryGenerator g1(net, profile, 99);
  UncertainTrajectoryGenerator g2(net, profile, 99);
  const auto a = g1.Generate();
  const auto b = g2.Generate();
  EXPECT_EQ(a.times, b.times);
  ASSERT_EQ(a.instances.size(), b.instances.size());
  for (size_t i = 0; i < a.instances.size(); ++i) {
    EXPECT_EQ(a.instances[i].path, b.instances[i].path);
  }
}

TEST(Generator, RawTrajectoryFollowsTruePath) {
  common::Rng net_rng(100);
  const auto profile = ChengduProfile();
  network::CityParams small = profile.city;
  small.rows = 12;
  small.cols = 12;
  const auto net = network::GenerateCity(net_rng, small);
  UncertainTrajectoryGenerator gen(net, profile, 3);
  const auto rt = gen.GenerateRaw();
  ASSERT_GE(rt.raw.size(), 2u);
  ASSERT_GE(rt.true_path.size(), 2u);
  for (size_t i = 1; i < rt.raw.size(); ++i) {
    EXPECT_GT(rt.raw[i].t, rt.raw[i - 1].t);
  }
}

// --------------------------------------------------------------- statistics

TEST(Statistics, SummaryCountsInstancesAndEdges) {
  const auto ex = test::MakePaperExample();
  UncertainCorpus corpus{ex.tu};
  const CorpusSummary s = Summarize(ex.net, corpus);
  EXPECT_EQ(s.trajectories, 1u);
  EXPECT_DOUBLE_EQ(s.avg_instances, 3.0);
  EXPECT_EQ(s.max_instances, 3u);
  EXPECT_EQ(s.max_edges, 8u);
  EXPECT_GT(s.raw_bytes, 0u);
}

TEST(Statistics, AverageRunLength) {
  UncertainCorpus corpus(1);
  corpus[0].times = {0, 10, 20, 30, 45, 60};  // one change among 5 intervals
  EXPECT_DOUBLE_EQ(AverageRunLength(corpus), 5.0);
}

// ------------------------------------------------------------ interpolation

TEST(Interpolate, PositionAtSampleTimes) {
  const auto ex = test::MakePaperExample();
  const auto& inst = ex.tu.instances[0];
  const auto pos0 =
      PositionAtTime(ex.net, inst, ex.tu.times, ex.tu.times.front());
  ASSERT_TRUE(pos0.has_value());
  EXPECT_EQ(pos0->edge, inst.path[0]);
  EXPECT_NEAR(pos0->ndist, 0.875 * ex.net.edge(inst.path[0]).length, 1e-6);
  const auto pos_last =
      PositionAtTime(ex.net, inst, ex.tu.times, ex.tu.times.back());
  ASSERT_TRUE(pos_last.has_value());
  EXPECT_EQ(pos_last->edge, inst.path[6]);
}

TEST(Interpolate, PositionOutsideSpanIsEmpty) {
  const auto ex = test::MakePaperExample();
  const auto& inst = ex.tu.instances[0];
  EXPECT_FALSE(
      PositionAtTime(ex.net, inst, ex.tu.times, ex.tu.times.front() - 1)
          .has_value());
  EXPECT_FALSE(
      PositionAtTime(ex.net, inst, ex.tu.times, ex.tu.times.back() + 1)
          .has_value());
}

TEST(Interpolate, MidpointBetweenSamples) {
  // Two locations on one 100 m edge at rd 0.0 and 1.0, 100 s apart: at t=50
  // the object sits mid-edge.
  network::RoadNetwork net;
  net.AddVertex(0, 0);
  net.AddVertex(100, 0);
  const auto e = net.AddEdge(0, 1);
  TrajectoryInstance inst;
  inst.path = {e};
  inst.locations = {{0, 0.0}, {0, 1.0}};
  inst.probability = 1.0;
  const std::vector<Timestamp> times = {0, 100};
  const auto pos = PositionAtTime(net, inst, times, 50);
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(pos->edge, e);
  EXPECT_NEAR(pos->ndist, 50.0, 1e-9);
}

TEST(Interpolate, TimesAtPositionInverseOfPosition) {
  network::RoadNetwork net;
  net.AddVertex(0, 0);
  net.AddVertex(100, 0);
  net.AddVertex(200, 0);
  const auto e1 = net.AddEdge(0, 1);
  const auto e2 = net.AddEdge(1, 2);
  TrajectoryInstance inst;
  inst.path = {e1, e2};
  inst.locations = {{0, 0.0}, {1, 1.0}};
  inst.probability = 1.0;
  const std::vector<Timestamp> times = {0, 200};
  const auto hits = TimesAtPosition(net, inst, times, e1, 0.5);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 50);  // 50 m of 200 m at constant speed
  const auto hits2 = TimesAtPosition(net, inst, times, e2, 0.5);
  ASSERT_EQ(hits2.size(), 1u);
  EXPECT_EQ(hits2[0], 150);
}

TEST(Interpolate, TimesAtPositionOutsideSampledSpanEmpty) {
  const auto ex = test::MakePaperExample();
  const auto& inst = ex.tu.instances[0];
  // rd 0.1 on the first edge lies before l0 (rd 0.875): not covered.
  const auto hits =
      TimesAtPosition(ex.net, inst, ex.tu.times, inst.path[0], 0.1);
  EXPECT_TRUE(hits.empty());
}

TEST(Interpolate, ReconstructInstanceRoundTrip) {
  const auto ex = test::MakePaperExample();
  for (const auto& inst : ex.tu.instances) {
    const auto entries = BuildEdgeSequence(ex.net, inst);
    const auto tflag = BuildTimeFlagBits(inst);
    std::vector<double> rds;
    for (const auto& loc : inst.locations) rds.push_back(loc.rd);
    const auto rebuilt =
        ReconstructInstance(ex.net, StartVertex(ex.net, inst), entries, tflag,
                            rds, inst.probability);
    ASSERT_TRUE(rebuilt.has_value());
    EXPECT_EQ(rebuilt->path, inst.path);
    ASSERT_EQ(rebuilt->locations.size(), inst.locations.size());
    for (size_t i = 0; i < inst.locations.size(); ++i) {
      EXPECT_EQ(rebuilt->locations[i].path_index,
                inst.locations[i].path_index);
      EXPECT_DOUBLE_EQ(rebuilt->locations[i].rd, inst.locations[i].rd);
    }
  }
}

TEST(Interpolate, ReconstructRejectsCorruptEntries) {
  const auto ex = test::MakePaperExample();
  const auto& inst = ex.tu.instances[0];
  auto entries = BuildEdgeSequence(ex.net, inst);
  const auto tflag = BuildTimeFlagBits(inst);
  std::vector<double> rds(inst.locations.size(), 0.5);
  entries[0] = 7;  // v1 has a single outgoing edge: number 7 cannot resolve
  EXPECT_FALSE(ReconstructInstance(ex.net, ex.v[1], entries, tflag, rds, 1.0)
                   .has_value());
}

}  // namespace
}  // namespace utcq::traj
