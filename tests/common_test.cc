#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/bitstream.h"
#include "common/exp_golomb.h"
#include "common/pddp.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/varint.h"
#include "common/wah_bitmap.h"

namespace utcq::common {
namespace {

// ---------------------------------------------------------------- bitstream

TEST(BitStream, SingleBits) {
  BitWriter w;
  w.PutBit(true);
  w.PutBit(false);
  w.PutBit(true);
  EXPECT_EQ(w.size_bits(), 3u);
  BitReader r(w);
  EXPECT_TRUE(r.GetBit());
  EXPECT_FALSE(r.GetBit());
  EXPECT_TRUE(r.GetBit());
  EXPECT_FALSE(r.overflow());
}

TEST(BitStream, MultiBitRoundTrip) {
  BitWriter w;
  w.PutBits(0b101101, 6);
  w.PutBits(0xDEADBEEF, 32);
  w.PutBits(0, 0);  // zero width writes nothing
  w.PutBits(1, 1);
  BitReader r(w);
  EXPECT_EQ(r.GetBits(6), 0b101101u);
  EXPECT_EQ(r.GetBits(32), 0xDEADBEEFu);
  EXPECT_EQ(r.GetBits(1), 1u);
}

TEST(BitStream, SeekReadsAtArbitraryPositions) {
  BitWriter w;
  for (int i = 0; i < 100; ++i) w.PutBits(static_cast<uint64_t>(i), 7);
  BitReader r(w);
  r.Seek(7 * 42);
  EXPECT_EQ(r.GetBits(7), 42u);
  r.Seek(7 * 99);
  EXPECT_EQ(r.GetBits(7), 99u);
  r.Seek(0);
  EXPECT_EQ(r.GetBits(7), 0u);
}

TEST(BitStream, OverflowSetsFlag) {
  BitWriter w;
  w.PutBits(3, 2);
  BitReader r(w);
  r.GetBits(2);
  EXPECT_FALSE(r.overflow());
  r.GetBit();
  EXPECT_TRUE(r.overflow());
}

TEST(BitStream, AppendConcatenates) {
  BitWriter a;
  a.PutBits(0b1011, 4);
  BitWriter b;
  b.PutBits(0b001, 3);
  a.Append(b);
  BitReader r(a);
  EXPECT_EQ(r.GetBits(7), 0b1011001u);
}

TEST(BitStream, BitAt) {
  BitWriter w;
  w.PutBits(0b10110, 5);
  EXPECT_TRUE(w.BitAt(0));
  EXPECT_FALSE(w.BitAt(1));
  EXPECT_TRUE(w.BitAt(2));
  EXPECT_TRUE(w.BitAt(3));
  EXPECT_FALSE(w.BitAt(4));
}

TEST(BitsFor, Values) {
  EXPECT_EQ(BitsFor(0), 0);
  EXPECT_EQ(BitsFor(1), 1);
  EXPECT_EQ(BitsFor(2), 2);
  EXPECT_EQ(BitsFor(3), 2);
  EXPECT_EQ(BitsFor(4), 3);
  EXPECT_EQ(BitsFor(7), 3);
  EXPECT_EQ(BitsFor(8), 4);
  EXPECT_EQ(BitsFor(255), 8);
  EXPECT_EQ(BitsFor(256), 9);
}

// ------------------------------------------------------------------- varint

TEST(Varint, RoundTripSmallAndLarge) {
  BitWriter w;
  const std::vector<uint64_t> values = {0,    1,       127,        128,
                                        300,  16383,   16384,      1u << 20,
                                        ~0ull >> 1, 0xFFFFFFFFFFFFFFFFull};
  for (const auto v : values) PutVarint(w, v);
  BitReader r(w);
  for (const auto v : values) EXPECT_EQ(GetVarint(r), v);
}

TEST(Varint, SignedZigZag) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagDecode(ZigZagEncode(-123456)), -123456);
  BitWriter w;
  for (int64_t v = -70; v <= 70; v += 7) PutSignedVarint(w, v);
  BitReader r(w);
  for (int64_t v = -70; v <= 70; v += 7) EXPECT_EQ(GetSignedVarint(r), v);
}

// --------------------------------------------------------------- exp-golomb

TEST(ExpGolomb, Order0KnownCodewords) {
  BitWriter w;
  PutExpGolomb(w, 0);  // "1"
  EXPECT_EQ(w.size_bits(), 1u);
  w.Clear();
  PutExpGolomb(w, 1);  // "010"
  EXPECT_EQ(w.size_bits(), 3u);
  w.Clear();
  PutExpGolomb(w, 6);  // "00111"
  EXPECT_EQ(w.size_bits(), 5u);
  EXPECT_EQ(ExpGolombLength(0), 1);
  EXPECT_EQ(ExpGolombLength(1), 3);
  EXPECT_EQ(ExpGolombLength(6), 5);
}

class ExpGolombRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ExpGolombRoundTrip, Sweep) {
  const int k = GetParam();
  BitWriter w;
  for (uint64_t v = 0; v < 600; ++v) PutExpGolomb(w, v, k);
  PutExpGolomb(w, 1'000'000'007ull, k);
  BitReader r(w);
  for (uint64_t v = 0; v < 600; ++v) EXPECT_EQ(GetExpGolomb(r, k), v);
  EXPECT_EQ(GetExpGolomb(r, k), 1'000'000'007ull);
  EXPECT_FALSE(r.overflow());
}

INSTANTIATE_TEST_SUITE_P(Orders, ExpGolombRoundTrip,
                         ::testing::Values(0, 1, 2, 3, 5));

TEST(ImprovedExpGolomb, PaperWorkedExample) {
  // Section 4.4: <..., 0, 1, 0, -1, 0, 0> encodes as
  // <..., 0, 1000, 0, 1010, 0, 0> — 12 bits total for the six deltas.
  BitWriter w;
  const std::vector<int64_t> deltas = {0, 1, 0, -1, 0, 0};
  for (const auto d : deltas) PutImprovedExpGolomb(w, d);
  EXPECT_EQ(w.size_bits(), 12u);
  // Spot-check the exact codewords.
  BitWriter one;
  PutImprovedExpGolomb(one, 1);
  ASSERT_EQ(one.size_bits(), 4u);
  EXPECT_TRUE(one.BitAt(0));   // 1
  EXPECT_FALSE(one.BitAt(1));  // 0
  EXPECT_FALSE(one.BitAt(2));  // sign +
  EXPECT_FALSE(one.BitAt(3));  // offset 0
  BitWriter neg;
  PutImprovedExpGolomb(neg, -1);
  ASSERT_EQ(neg.size_bits(), 4u);
  EXPECT_TRUE(neg.BitAt(0));
  EXPECT_FALSE(neg.BitAt(1));
  EXPECT_TRUE(neg.BitAt(2));  // sign -
  EXPECT_FALSE(neg.BitAt(3));
  BitReader r(w);
  for (const auto d : deltas) EXPECT_EQ(GetImprovedExpGolomb(r), d);
}

TEST(ImprovedExpGolomb, GroupBoundaries) {
  // Group j covers [2^j - 1, 2^{j+1} - 2]: 0 | 1,2 | 3..6 | 7..14 | ...
  EXPECT_EQ(ImprovedExpGolombLength(0), 1);
  EXPECT_EQ(ImprovedExpGolombLength(1), 4);
  EXPECT_EQ(ImprovedExpGolombLength(2), 4);
  EXPECT_EQ(ImprovedExpGolombLength(3), 6);
  EXPECT_EQ(ImprovedExpGolombLength(6), 6);
  EXPECT_EQ(ImprovedExpGolombLength(7), 8);
  EXPECT_EQ(ImprovedExpGolombLength(-1), 4);
  EXPECT_EQ(ImprovedExpGolombLength(-6), 6);
}

TEST(ImprovedExpGolomb, RoundTripSweep) {
  BitWriter w;
  for (int64_t d = -300; d <= 300; ++d) PutImprovedExpGolomb(w, d);
  BitReader r(w);
  for (int64_t d = -300; d <= 300; ++d) EXPECT_EQ(GetImprovedExpGolomb(r), d);
}

// ------------------------------------------------- adversarial bit streams
//
// Decoders face archive bytes that passed the container CRC but can still
// hold arbitrary bit patterns (crafted or miscompressed). Structurally
// invalid codes must latch overflow() and return a harmless value instead
// of shifting out of range or decoding out-of-contract values.

TEST(ExpGolomb, OverlongZeroRunIsRejected) {
  // 100 zeros then a 1: a "unary prefix" no encoder produces (the shifted
  // value would need 101 bits). Must not reach the 1 << n shift.
  BitWriter w;
  w.PutRun(false, 100);
  w.PutBit(true);
  w.PutBits(0xFFFFFFFF, 32);
  BitReader r(w);
  EXPECT_EQ(GetExpGolomb(r), 0u);
  EXPECT_TRUE(r.overflow());
}

TEST(ExpGolomb, LongestValidPrefixStillDecodes) {
  // 63 zeros is the longest prefix a valid order-0 code can have; the cap
  // must not cut into the valid range.
  BitWriter w;
  w.PutRun(false, 63);
  w.PutBits(uint64_t{1} << 63, 64);  // terminator + 63 payload bits
  BitReader r(w);
  EXPECT_EQ(GetExpGolomb(r), (uint64_t{1} << 63) - 1);
  EXPECT_FALSE(r.overflow());
}

TEST(ExpGolomb, TruncatedPrefixSetsOverflow) {
  BitWriter w;
  w.PutRun(false, 5);  // stream ends inside the unary prefix
  BitReader r(w);
  EXPECT_EQ(GetExpGolomb(r), 0u);
  EXPECT_TRUE(r.overflow());
}

TEST(ImprovedExpGolomb, OverlongOneRunIsRejected) {
  BitWriter w;
  w.PutRun(true, 80);
  w.PutBit(false);
  w.PutBits(0, 32);
  BitReader r(w);
  EXPECT_EQ(GetImprovedExpGolomb(r), 0);
  EXPECT_TRUE(r.overflow());
}

TEST(ImprovedExpGolomb, TruncatedGroupSetsOverflow) {
  BitWriter w;
  w.PutRun(true, 3);  // stream ends inside the unary group id
  BitReader r(w);
  EXPECT_EQ(GetImprovedExpGolomb(r), 0);
  EXPECT_TRUE(r.overflow());
}

TEST(Pddp, OversizedLengthFieldIsRejected) {
  // eta = 1/512: I_max = 9, so the 4-bit length field can express 10..15,
  // which no encoder emits. Decoding one must fail loudly, not produce a
  // 15-bit "code".
  const PddpCodec codec(1.0 / 512);
  ASSERT_EQ(codec.max_code_bits(), 9);
  ASSERT_EQ(codec.length_field_bits(), 4);
  BitWriter w;
  w.PutBits(15, 4);  // length field > max_bits_
  w.PutBits(0x7FFF, 15);
  BitReader r(w);
  EXPECT_EQ(codec.Decode(r), 0.0);
  EXPECT_TRUE(r.overflow());
}

TEST(Pddp, MaxLengthCodeStillDecodes) {
  const PddpCodec codec(1.0 / 512);
  BitWriter w;
  w.PutBits(static_cast<uint64_t>(codec.max_code_bits()),
            codec.length_field_bits());
  w.PutBits((uint64_t{1} << codec.max_code_bits()) - 1,
            codec.max_code_bits());
  BitReader r(w);
  const double v = codec.Decode(r);
  EXPECT_FALSE(r.overflow());
  EXPECT_GT(v, 0.99);
  EXPECT_LT(v, 1.0);
}

TEST(Pddp, TruncatedPayloadSetsOverflow) {
  const PddpCodec codec(1.0 / 512);
  BitWriter w;
  w.PutBits(9, 4);  // declares 9 code bits...
  w.PutBits(0, 3);  // ...but only 3 follow
  BitReader r(w);
  codec.Decode(r);
  EXPECT_TRUE(r.overflow());
}

// --------------------------------------------------------------------- pddp

class PddpErrorBound : public ::testing::TestWithParam<double> {};

TEST_P(PddpErrorBound, BoundHoldsAcrossUnitInterval) {
  // Table 7's eta ranges: 1/8 .. 1/128 for D, 1/128 .. 1/2048 for p.
  const double eta = GetParam();
  const PddpCodec codec(eta);
  Rng rng(42);
  BitWriter w;
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) values.push_back(rng.Uniform(0.0, 1.0));
  values.push_back(0.0);
  values.push_back(1.0);
  values.push_back(0.5);
  values.push_back(0.875);
  for (const double v : values) codec.Encode(w, v);
  BitReader r(w);
  for (const double v : values) {
    const double decoded = codec.Decode(r);
    EXPECT_LE(std::abs(decoded - v), eta + 1e-12) << "value " << v;
    EXPECT_EQ(decoded, codec.Quantize(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Etas, PddpErrorBound,
                         ::testing::Values(1.0 / 8, 1.0 / 16, 1.0 / 32,
                                           1.0 / 64, 1.0 / 128, 1.0 / 256,
                                           1.0 / 512, 1.0 / 1024, 1.0 / 2048));

TEST(Pddp, ShortValuesGetShortCodes) {
  const PddpCodec codec(1.0 / 128);
  // 0.875 = 0.111b: 3 code bits (+3 length bits); an irrational-ish value
  // needs the full 7.
  EXPECT_LE(codec.CodeLength(0.875), codec.length_field_bits() + 3);
  EXPECT_LE(codec.CodeLength(0.0), codec.length_field_bits());
  EXPECT_GE(codec.CodeLength(0.3333), codec.length_field_bits() + 6);
}

TEST(Pddp, CodeLengthMatchesStream) {
  const PddpCodec codec(1.0 / 64);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.Uniform(0.0, 1.0);
    BitWriter w;
    codec.Encode(w, v);
    EXPECT_EQ(static_cast<int>(w.size_bits()), codec.CodeLength(v));
  }
}

TEST(PddpTree, DeduplicatesAndIndexes) {
  const PddpCodec codec(1.0 / 128);
  PddpTree tree(codec);
  tree.Insert(0.5);
  tree.Insert(0.5);
  tree.Insert(0.875);
  tree.Insert(0.25);
  EXPECT_EQ(tree.total_values(), 4u);
  EXPECT_EQ(tree.distinct_codes(), 3u);
  EXPECT_GE(tree.trie_nodes(), tree.distinct_codes());
  const auto idx = tree.IndexOf(0.875);
  ASSERT_GE(idx, 0);
  EXPECT_DOUBLE_EQ(tree.ValueAt(static_cast<size_t>(idx)), 0.875);
  EXPECT_EQ(tree.IndexOf(0.12345), -1);
}

// ---------------------------------------------------------------------- wah

TEST(WahBitmap, RoundTripPatterns) {
  const std::vector<std::vector<uint8_t>> patterns = {
      {},
      {1},
      {0, 1, 0, 1, 1, 1, 0},
      std::vector<uint8_t>(200, 0),
      std::vector<uint8_t>(200, 1),
  };
  for (const auto& bits : patterns) {
    const WahBitmap bm = WahBitmap::Compress(bits);
    EXPECT_EQ(bm.Decompress(), bits);
  }
}

TEST(WahBitmap, LongRunsCompress) {
  std::vector<uint8_t> bits(31 * 100, 0);  // 100 all-zero groups
  const WahBitmap bm = WahBitmap::Compress(bits);
  EXPECT_LT(bm.size_bits(), bits.size() / 10);
  EXPECT_EQ(bm.Decompress(), bits);
}

TEST(WahBitmap, MixedRunsAndLiterals) {
  Rng rng(5);
  std::vector<uint8_t> bits;
  for (int block = 0; block < 40; ++block) {
    const uint8_t fill = rng.Bernoulli(0.5) ? 1 : 0;
    const size_t len = static_cast<size_t>(rng.UniformInt(1, 120));
    for (size_t i = 0; i < len; ++i) bits.push_back(fill);
    for (int i = 0; i < 5; ++i) bits.push_back(rng.Bernoulli(0.5) ? 1 : 0);
  }
  const WahBitmap bm = WahBitmap::Compress(bits);
  EXPECT_EQ(bm.Decompress(), bits);
}

// ---------------------------------------------------------------------- rng

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(Rng, WeightedRespectsZeroWeights) {
  Rng rng(9);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.Weighted(weights), 1u);
}

TEST(EffectiveThreads, ClampsToHardwareAndTaskCount) {
  const unsigned hw = DefaultThreads();
  // Requesting more threads than the hardware offers must not report (or
  // spawn) phantom parallelism — the BENCH_shard.json "threads: 8 on a
  // 1-core box" bug. (The clamp only applies when the hardware width is
  // determinable; DefaultThreads() == hardware_concurrency() then.)
  if (std::thread::hardware_concurrency() != 0) {
    EXPECT_EQ(EffectiveThreads(8, 8 * hw), std::min(hw, 8u));
  }
  EXPECT_LE(EffectiveThreads(1000, 0), hw);
  EXPECT_EQ(EffectiveThreads(1, 16), 1u);   // one task, one worker
  EXPECT_EQ(EffectiveThreads(0, 16), 1u);   // degenerate n stays sane
  EXPECT_GE(EffectiveThreads(4, 2), 1u);
  EXPECT_LE(EffectiveThreads(4, 2), 2u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> counts(257);
  for (auto& c : counts) c = 0;
  ParallelFor(counts.size(), 8, [&](size_t i) { ++counts[i]; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

}  // namespace
}  // namespace utcq::common
