#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "archive/archive.h"
#include "common/rng.h"
#include "common/serial.h"
#include "core/utcq.h"
#include "network/generator.h"
#include "traj/generator.h"
#include "traj/profiles.h"
#include "test_fixtures.h"

namespace utcq::archive {
namespace {

/// A small compressed corpus + StIU index, the write side of every test.
struct ArchiveFixture {
  ArchiveFixture() {
    const auto profile = traj::ChengduProfile();
    net = test::MakeSmallCity(profile, 14);
    traj::UncertainTrajectoryGenerator gen(net, profile, 7070);
    corpus = gen.GenerateCorpus(50);
    grid = std::make_unique<network::GridIndex>(net, 16);
    core::UtcqParams params;
    params.default_interval_s = profile.default_interval_s;
    sys = std::make_unique<core::UtcqSystem>(net, *grid, corpus, params,
                                             core::StiuParams{16, 900});
  }

  std::string TempPath(const std::string& name) const {
    return ::testing::TempDir() + "/" + name;
  }

  network::RoadNetwork net;
  traj::UncertainCorpus corpus;
  std::unique_ptr<network::GridIndex> grid;
  std::unique_ptr<core::UtcqSystem> sys;
};

TEST(Archive, SaveLoadResaveIsBitExact) {
  ArchiveFixture fx;
  const ArchiveWriter writer(fx.sys->compressed(), &fx.sys->index());
  const std::vector<uint8_t> first = writer.Serialize();

  ArchiveReader reader;
  std::string error;
  ASSERT_TRUE(reader.OpenBytes(first, &error)) << error;

  // Re-encoding the loaded payload must reproduce the input byte for byte:
  // the container has exactly one serialization of any corpus.
  const std::vector<uint8_t> second = EncodeArchive(reader.payload());
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(first, second);
}

TEST(Archive, FileRoundTripPreservesEveryStreamAndMeta) {
  ArchiveFixture fx;
  const std::string path = fx.TempPath("roundtrip.utcq");
  std::string error;
  ASSERT_TRUE(ArchiveWriter(fx.sys->compressed(), &fx.sys->index())
                  .Save(path, &error))
      << error;

  ArchiveReader reader;
  ASSERT_TRUE(reader.Open(path, &error)) << error;
  std::remove(path.c_str());

  const core::CompressedCorpus& cc = fx.sys->compressed();
  const ArchivePayload& payload = reader.payload();
  EXPECT_EQ(payload.entry_bits, cc.entry_bits());
  EXPECT_EQ(payload.params.default_interval_s, cc.params().default_interval_s);
  EXPECT_EQ(payload.t.size_bits, cc.t_stream().size_bits());
  EXPECT_EQ(payload.t.bytes, cc.t_stream().bytes());
  EXPECT_EQ(payload.ref.bytes, cc.ref_stream().bytes());
  EXPECT_EQ(payload.nref.bytes, cc.nref_stream().bytes());
  EXPECT_EQ(payload.structure.bytes, cc.structure_stream().bytes());
  ASSERT_EQ(payload.metas.size(), cc.num_trajectories());
  for (size_t j = 0; j < payload.metas.size(); ++j) {
    const core::TrajMeta& a = payload.metas[j];
    const core::TrajMeta& b = cc.meta(j);
    EXPECT_EQ(a.t_pos, b.t_pos);
    EXPECT_EQ(a.n_points, b.n_points);
    ASSERT_EQ(a.refs.size(), b.refs.size());
    ASSERT_EQ(a.nrefs.size(), b.nrefs.size());
    EXPECT_EQ(a.roles, b.roles);
    for (size_t r = 0; r < a.refs.size(); ++r) {
      EXPECT_EQ(a.refs[r].offset, b.refs[r].offset);
      EXPECT_EQ(a.refs[r].d_pos, b.refs[r].d_pos);
      EXPECT_EQ(a.refs[r].p_quantized, b.refs[r].p_quantized);
    }
  }
}

TEST(Archive, LoadedCorpusDecodesIdenticallyToLiveCorpus) {
  ArchiveFixture fx;
  ArchiveReader reader;
  ASSERT_TRUE(reader.OpenBytes(
      ArchiveWriter(fx.sys->compressed(), &fx.sys->index()).Serialize()));

  const core::UtcqDecoder live(fx.net, fx.sys->compressed());
  const core::UtcqDecoder loaded(fx.net, reader.view());
  const auto live_corpus = live.DecompressAll();
  const auto loaded_corpus = loaded.DecompressAll();
  ASSERT_EQ(live_corpus.size(), loaded_corpus.size());
  for (size_t j = 0; j < live_corpus.size(); ++j) {
    EXPECT_EQ(live_corpus[j].times, loaded_corpus[j].times);
    ASSERT_EQ(live_corpus[j].instances.size(),
              loaded_corpus[j].instances.size());
    for (size_t w = 0; w < live_corpus[j].instances.size(); ++w) {
      EXPECT_EQ(live_corpus[j].instances[w].path,
                loaded_corpus[j].instances[w].path);
      EXPECT_EQ(live_corpus[j].instances[w].probability,
                loaded_corpus[j].instances[w].probability);
    }
  }
}

TEST(Archive, LoadedQueriesMatchLiveQueries) {
  ArchiveFixture fx;
  const std::string path = fx.TempPath("queries.utcq");
  ASSERT_TRUE(
      ArchiveWriter(fx.sys->compressed(), &fx.sys->index()).Save(path));

  // A fresh process: only the network (shared, corpus-independent state)
  // and the file. The live system's memory is not consulted.
  ArchiveReader reader;
  std::string error;
  ASSERT_TRUE(reader.Open(path, &error)) << error;
  std::remove(path.c_str());
  ASSERT_TRUE(reader.has_index());
  const network::GridIndex grid(fx.net, reader.index_cells_per_side());
  const auto index = reader.LoadIndex(grid, &error);
  ASSERT_NE(index, nullptr) << error;
  const core::UtcqQueryProcessor loaded(fx.net, reader.view(), *index);

  const core::UtcqQueryProcessor& live = fx.sys->queries();
  size_t where_hits = 0;
  size_t when_hits = 0;
  for (size_t j = 0; j < fx.corpus.size(); j += 5) {
    const auto& tu = fx.corpus[j];
    const auto t_mid = (tu.times.front() + tu.times.back()) / 2;
    for (const double alpha : {0.0, 0.2, 0.5}) {
      const auto a = live.Where(j, t_mid, alpha);
      const auto b = loaded.Where(j, t_mid, alpha);
      ASSERT_EQ(a.size(), b.size()) << "traj " << j << " alpha " << alpha;
      where_hits += a.size();
      for (size_t k = 0; k < a.size(); ++k) {
        EXPECT_EQ(a[k].instance, b[k].instance);
        EXPECT_EQ(a[k].probability, b[k].probability);
        EXPECT_EQ(a[k].position.edge, b[k].position.edge);
        EXPECT_EQ(a[k].position.ndist, b[k].position.ndist);
      }
    }
    // when() against the first location of the first instance's path.
    const auto& inst = tu.instances.front();
    const auto edge = inst.path[inst.locations.front().path_index];
    const double rd = inst.locations.front().rd;
    const auto a = live.When(j, edge, rd, 0.1);
    const auto b = loaded.When(j, edge, rd, 0.1);
    ASSERT_EQ(a.size(), b.size()) << "traj " << j;
    when_hits += a.size();
    for (size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].instance, b[k].instance);
      EXPECT_EQ(a[k].t, b[k].t);
    }
  }
  EXPECT_GT(where_hits, 0u);
  EXPECT_GT(when_hits, 0u);

  // range() over a window around the first trajectory's start.
  const auto& inst0 = fx.corpus[0].instances.front();
  const auto& e0 = fx.net.edge(inst0.path.front());
  const auto& v0 = fx.net.vertex(e0.from);
  const network::Rect re{v0.x - 800, v0.y - 800, v0.x + 800, v0.y + 800};
  const auto tq = fx.corpus[0].times.front();
  for (const double alpha : {0.1, 0.5, 0.9}) {
    EXPECT_EQ(live.Range(re, tq, alpha), loaded.Range(re, tq, alpha))
        << "alpha " << alpha;
  }
}

TEST(Archive, ReloadedStiuTuplesMatch) {
  ArchiveFixture fx;
  ArchiveReader reader;
  ASSERT_TRUE(reader.OpenBytes(
      ArchiveWriter(fx.sys->compressed(), &fx.sys->index()).Serialize()));
  const network::GridIndex grid(fx.net, reader.index_cells_per_side());
  const auto index = reader.LoadIndex(grid);
  ASSERT_NE(index, nullptr);

  const core::StiuIndex& live = fx.sys->index();
  EXPECT_EQ(index->time_partition_s(), live.time_partition_s());
  for (size_t j = 0; j < fx.corpus.size(); ++j) {
    const auto& a = live.TemporalOf(j);
    const auto& b = index->TemporalOf(j);
    ASSERT_EQ(a.size(), b.size()) << "traj " << j;
    for (size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].t_start, b[k].t_start);
      EXPECT_EQ(a[k].t_no, b[k].t_no);
      EXPECT_EQ(a[k].t_pos, b[k].t_pos);
    }
  }
  for (network::RegionId re = 0; re < grid.num_regions(); ++re) {
    const auto& ra = live.RefTuplesIn(re);
    const auto& rb = index->RefTuplesIn(re);
    ASSERT_EQ(ra.size(), rb.size()) << "region " << re;
    for (size_t k = 0; k < ra.size(); ++k) {
      EXPECT_EQ(ra[k].traj, rb[k].traj);
      EXPECT_EQ(ra[k].ref_idx, rb[k].ref_idx);
      EXPECT_EQ(ra[k].fv_id, rb[k].fv_id);
      EXPECT_EQ(ra[k].d_pos, rb[k].d_pos);
      EXPECT_EQ(ra[k].p_total, rb[k].p_total);
      EXPECT_EQ(ra[k].p_max, rb[k].p_max);
      EXPECT_EQ(ra[k].ref_passes, rb[k].ref_passes);
    }
    const auto& na = live.NrefTuplesIn(re);
    const auto& nb = index->NrefTuplesIn(re);
    ASSERT_EQ(na.size(), nb.size()) << "region " << re;
    for (size_t k = 0; k < na.size(); ++k) {
      EXPECT_EQ(na[k].traj, nb[k].traj);
      EXPECT_EQ(na[k].nref_idx, nb[k].nref_idx);
      EXPECT_EQ(na[k].ma_pos, nb[k].ma_pos);
    }
  }
}

TEST(Archive, ArchiveWithoutIndexStillDecodes) {
  ArchiveFixture fx;
  ArchiveReader reader;
  ASSERT_TRUE(reader.OpenBytes(
      ArchiveWriter(fx.sys->compressed()).Serialize()));
  EXPECT_FALSE(reader.has_index());
  std::string error;
  EXPECT_EQ(reader.LoadIndex(*fx.grid, &error), nullptr);
  const core::UtcqDecoder decoder(fx.net, reader.view());
  EXPECT_EQ(decoder.DecodeTimes(0), fx.corpus[0].times);
}

TEST(Archive, RejectsTruncationBadMagicAndBitRot) {
  ArchiveFixture fx;
  const std::vector<uint8_t> good =
      ArchiveWriter(fx.sys->compressed(), &fx.sys->index()).Serialize();
  ArchiveReader reader;
  std::string error;

  // Truncated: checksum of the shortened image cannot match.
  std::vector<uint8_t> truncated(good.begin(), good.end() - 10);
  EXPECT_FALSE(reader.OpenBytes(truncated, &error));
  EXPECT_FALSE(reader.is_open());

  // Empty / shorter than any header.
  EXPECT_FALSE(reader.OpenBytes({}, &error));
  EXPECT_FALSE(reader.OpenBytes({'U', 'T'}, &error));

  // Bad magic.
  std::vector<uint8_t> bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(reader.OpenBytes(bad_magic, &error));
  EXPECT_NE(error.find("magic"), std::string::npos);

  // One flipped payload byte: caught by the checksum.
  std::vector<uint8_t> bit_rot = good;
  bit_rot[good.size() / 2] ^= 0x04;
  EXPECT_FALSE(reader.OpenBytes(bit_rot, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos);

  // Future format version (byte 8 is the version's little-endian low byte);
  // the footer is re-stamped so the version check, not the checksum, fires.
  std::vector<uint8_t> future = good;
  future[8] = 99;
  const uint32_t crc = common::Crc32(future.data(), future.size() - 4);
  for (int i = 0; i < 4; ++i) {
    future[future.size() - 4 + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  EXPECT_FALSE(reader.OpenBytes(future, &error));
  EXPECT_NE(error.find("version"), std::string::npos);

  // A version-1 image still opens: v2 only appended the shard-manifest
  // tag; the payload shapes of tags 1-7 are unchanged (§6 append-only
  // rule), so pre-shard archives remain readable.
  std::vector<uint8_t> v1 = good;
  v1[8] = 1;
  const uint32_t v1_crc = common::Crc32(v1.data(), v1.size() - 4);
  for (int i = 0; i < 4; ++i) {
    v1[v1.size() - 4 + i] = static_cast<uint8_t>(v1_crc >> (8 * i));
  }
  EXPECT_TRUE(reader.OpenBytes(v1, &error)) << error;
  EXPECT_TRUE(reader.is_open());

  // The pristine image still opens after all those copies.
  EXPECT_TRUE(reader.OpenBytes(good, &error)) << error;
  EXPECT_TRUE(reader.is_open());
}

TEST(Archive, RejectsHostileStiuSections) {
  // CRC-valid archives whose StIU section lies about its shape must fail
  // LoadIndex cleanly instead of OOMing or leaving an index that queries
  // out of bounds.
  ArchiveFixture fx;
  ArchiveReader reader;
  ASSERT_TRUE(reader.OpenBytes(
      ArchiveWriter(fx.sys->compressed(), &fx.sys->index()).Serialize()));
  ArchivePayload payload = reader.payload();
  std::string error;

  // Claims zero trajectories while the metas section has 50.
  {
    common::ByteWriter stiu;
    stiu.PutVarint(16);                      // cells_per_side
    stiu.PutSignedVarint(900);               // time_partition_s
    stiu.PutVarint(0);                       // num_trajs
    stiu.PutVarint(0);                       // num_partitions
    stiu.PutVarint(fx.grid->num_regions());  // num_regions
    for (uint32_t re = 0; re < 2 * fx.grid->num_regions(); ++re) {
      stiu.PutVarint(0);  // empty ref + nref tuple lists
    }
    payload.stiu = stiu.Release();
    ArchiveReader hostile;
    ASSERT_TRUE(hostile.OpenBytes(EncodeArchive(payload), &error)) << error;
    EXPECT_EQ(hostile.LoadIndex(*fx.grid, &error), nullptr);
    EXPECT_NE(error.find("trajectory count"), std::string::npos) << error;
  }

  // Claims an absurd trajectory count (would OOM a naive resize).
  {
    common::ByteWriter stiu;
    stiu.PutVarint(16);
    stiu.PutSignedVarint(900);
    stiu.PutVarint(uint64_t{1} << 60);  // num_trajs
    stiu.PutVarint(0);
    stiu.PutVarint(fx.grid->num_regions());
    payload.stiu = stiu.Release();
    ArchiveReader hostile;
    ASSERT_TRUE(hostile.OpenBytes(EncodeArchive(payload), &error)) << error;
    EXPECT_EQ(hostile.LoadIndex(*fx.grid, &error), nullptr);
  }
}

TEST(Archive, RejectsMetasWithDuplicateOrigIndex) {
  // Two metas claiming the same instance slot would leave another slot at
  // the default role and decode nrefs[0] out of bounds; the reader must
  // reject the section instead.
  ArchiveFixture fx;
  ArchiveReader reader;
  ASSERT_TRUE(reader.OpenBytes(
      ArchiveWriter(fx.sys->compressed(), &fx.sys->index()).Serialize()));
  ArchivePayload payload = reader.payload();
  core::TrajMeta* victim = nullptr;
  for (auto& m : payload.metas) {
    if (!m.refs.empty() && !m.nrefs.empty()) {
      victim = &m;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  victim->nrefs[0].orig_index = victim->refs[0].orig_index;
  std::string error;
  ArchiveReader hostile;
  EXPECT_FALSE(hostile.OpenBytes(EncodeArchive(payload), &error));
  EXPECT_NE(error.find("metas"), std::string::npos) << error;
}

TEST(Archive, RejectsStiuTuplePointingOutsideMetas) {
  ArchiveFixture fx;
  ArchiveReader reader;
  ASSERT_TRUE(reader.OpenBytes(
      ArchiveWriter(fx.sys->compressed(), &fx.sys->index()).Serialize()));
  ArchivePayload payload = reader.payload();

  // A structurally valid StIU section (right trajectory count, every
  // trajectory covered) whose one spatial tuple names a ref index that
  // does not exist in the metas.
  common::ByteWriter stiu;
  stiu.PutVarint(16);                      // cells_per_side
  stiu.PutSignedVarint(900);               // time_partition_s
  stiu.PutVarint(payload.metas.size());    // num_trajs
  stiu.PutVarint(0);                       // num_partitions
  stiu.PutVarint(fx.grid->num_regions());  // num_regions
  for (size_t j = 0; j < payload.metas.size(); ++j) {
    stiu.PutVarint(1);  // one temporal tuple
    stiu.PutVarint(0);  // t_start delta
    stiu.PutVarint(0);  // t_no
    stiu.PutVarint(0);  // t_pos
  }
  for (uint32_t re = 0; re < fx.grid->num_regions(); ++re) {
    if (re == 0) {
      stiu.PutVarint(1);  // one hostile ref tuple
      stiu.PutVarint(0);  // traj
      stiu.PutVarint(1u << 20);  // ref_idx: far outside metas[0].refs
      stiu.PutU32(0);            // fv_id
      stiu.PutVarint(0);         // fv_no
      stiu.PutVarint(0);         // d_no
      stiu.PutVarint(0);         // d_pos
      stiu.PutF32(0.5f);
      stiu.PutF32(0.5f);
      stiu.PutU8(1);
    } else {
      stiu.PutVarint(0);
    }
  }
  for (uint32_t re = 0; re < fx.grid->num_regions(); ++re) {
    stiu.PutVarint(0);  // no nref tuples
  }
  payload.stiu = stiu.Release();

  std::string error;
  ArchiveReader hostile;
  ASSERT_TRUE(hostile.OpenBytes(EncodeArchive(payload), &error)) << error;
  EXPECT_EQ(hostile.LoadIndex(*fx.grid, &error), nullptr);
  EXPECT_NE(error.find("outside the metas"), std::string::npos) << error;
}

TEST(Archive, OpenMissingFileFails) {
  ArchiveReader reader;
  std::string error;
  EXPECT_FALSE(reader.Open("/nonexistent/dir/archive.utcq", &error));
  EXPECT_FALSE(reader.is_open());
}

/// Restamps the CRC-32 footer after a deliberate image mutation, so the
/// section being tested — not the checksum — is what rejects the input.
void RestampCrc(std::vector<uint8_t>* image) {
  const uint32_t crc = common::Crc32(image->data(), image->size() - 4);
  for (int i = 0; i < 4; ++i) {
    (*image)[image->size() - 4 + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
}

/// Splices a hand-built section into a serialized image: the section body
/// is appended ahead of the CRC footer, the section-count varint (a single
/// byte at offset 12 for these small archives) is bumped, and the footer
/// is restamped. This reaches tag-9 shapes EncodeArchive can never emit.
std::vector<uint8_t> WithExtraSection(std::vector<uint8_t> image, uint64_t tag,
                                      const common::ByteWriter& body) {
  common::ByteWriter section;
  section.PutVarint(tag);
  const std::vector<uint8_t> payload = body.bytes();
  section.PutBlob(payload.data(), payload.size());
  const std::vector<uint8_t>& sec = section.bytes();
  image.insert(image.end() - 4, sec.begin(), sec.end());
  EXPECT_LT(image[12], 0x7F);  // still a single-byte varint after the bump
  image[12] += 1;
  RestampCrc(&image);
  return image;
}

TEST(Archive, V3RoundTripPreservesSyncTables) {
  // The default UtcqParams emit sync points (t_sync_interval = 32), so the
  // fixture's archive is already stamped format v3.
  ArchiveFixture fx;
  EXPECT_EQ(ArchiveWriter(fx.sys->compressed(), &fx.sys->index())
                .Serialize()[8],
            3u);  // version little-endian low byte

  // A dense interval guarantees the fixture's short trajectories actually
  // carry sync points, so the table round-trip is exercised non-vacuously.
  core::UtcqParams params;
  params.default_interval_s = traj::ChengduProfile().default_interval_s;
  params.t_sync_interval = 4;
  const core::UtcqSystem sys2(fx.net, *fx.grid, fx.corpus, params,
                              core::StiuParams{16, 900});
  const std::vector<uint8_t> bytes =
      ArchiveWriter(sys2.compressed(), &sys2.index()).Serialize();
  EXPECT_EQ(bytes[8], 3u);

  ArchiveReader reader;
  std::string error;
  ASSERT_TRUE(reader.OpenBytes(bytes, &error)) << error;
  const ArchivePayload& payload = reader.payload();
  EXPECT_EQ(payload.format_version, kFormatVersion);
  EXPECT_EQ(payload.params.t_sync_interval, 4u);

  // The loaded tables must match the live corpus sync for sync.
  const core::CompressedCorpus& cc = sys2.compressed();
  size_t total_syncs = 0;
  ASSERT_EQ(payload.metas.size(), cc.num_trajectories());
  for (size_t j = 0; j < payload.metas.size(); ++j) {
    const auto& loaded = payload.metas[j].t_syncs;
    const auto& live = cc.meta(j).t_syncs;
    ASSERT_EQ(loaded.size(), live.size());
    for (size_t s = 0; s < loaded.size(); ++s) {
      EXPECT_EQ(loaded[s].entry, live[s].entry);
      EXPECT_EQ(loaded[s].t, live[s].t);
      EXPECT_EQ(loaded[s].bit, live[s].bit);
    }
    total_syncs += loaded.size();
  }
  EXPECT_GT(total_syncs, 0u);

  // Re-encoding the loaded payload reproduces the image byte for byte,
  // sync tables included.
  EXPECT_EQ(EncodeArchive(payload), bytes);
}

TEST(Archive, SyncFreeCorpusWritesV2ThatRoundTripsBitExact) {
  // With sync emission disabled the writer must stamp format v2 and emit
  // no kTSyncIndex section at all — pre-v3 readers stay compatible, and
  // the §6 single-serialization rule holds across the downgrade.
  ArchiveFixture fx;
  core::UtcqParams params;
  params.default_interval_s = traj::ChengduProfile().default_interval_s;
  params.t_sync_interval = 0;
  const core::UtcqSystem sys2(fx.net, *fx.grid, fx.corpus, params,
                              core::StiuParams{16, 900});
  const std::vector<uint8_t> bytes =
      ArchiveWriter(sys2.compressed(), &sys2.index()).Serialize();
  EXPECT_EQ(bytes[8], 2u);

  ArchiveReader reader;
  std::string error;
  ASSERT_TRUE(reader.OpenBytes(bytes, &error)) << error;
  EXPECT_EQ(reader.payload().format_version, 2u);
  EXPECT_EQ(reader.payload().params.t_sync_interval, 0u);
  for (const core::TrajMeta& m : reader.payload().metas) {
    EXPECT_TRUE(m.t_syncs.empty());
  }

  // Re-encoding the loaded v2 payload reproduces the v2 image exactly —
  // format_version is preserved, not silently upgraded to v3.
  EXPECT_EQ(EncodeArchive(reader.payload()), bytes);

  // And the sync-free archive answers brackets identically (the seek path
  // simply never upgrades its scan start).
  const core::UtcqDecoder plain(fx.net, reader.view());
  const core::UtcqDecoder synced(fx.net, fx.sys->compressed());
  for (size_t j = 0; j < 5; ++j) {
    const auto times = synced.DecodeTimes(j);
    ASSERT_FALSE(times.empty());
    const traj::Timestamp probe = times[times.size() / 2];
    const auto a = plain.BracketTime(j, probe, 0, times.front(),
                                     reader.payload().metas[j].t_pos);
    const auto b = synced.BracketTime(j, probe, 0, times.front(),
                                      fx.sys->compressed().meta(j).t_pos);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a.has_value()) {
      EXPECT_EQ(a->index, b->index);
      EXPECT_EQ(a->t0, b->t0);
      EXPECT_EQ(a->t1, b->t1);
    }
  }
}

TEST(Archive, RejectsCraftedSyncTables) {
  // CRC-valid v3 archives whose skip tables lie — about entry order, entry
  // range, or bit offsets — must be rejected at open (§6 discipline): a
  // trusted hostile table would aim the seek path at arbitrary bit
  // positions.  K=2 guarantees multi-sync tables to mutate.
  ArchiveFixture fx;
  core::UtcqParams params;
  params.default_interval_s = traj::ChengduProfile().default_interval_s;
  params.t_sync_interval = 2;
  const core::UtcqSystem sys2(fx.net, *fx.grid, fx.corpus, params,
                              core::StiuParams{16, 900});
  ArchiveReader reader;
  std::string error;
  ASSERT_TRUE(reader.OpenBytes(
      ArchiveWriter(sys2.compressed(), &sys2.index()).Serialize(), &error))
      << error;

  core::TrajMeta* victim = nullptr;
  size_t victim_j = 0;
  ArchivePayload base = reader.payload();
  for (size_t j = 0; j < base.metas.size(); ++j) {
    if (base.metas[j].t_syncs.size() >= 2) {
      victim = &base.metas[j];
      victim_j = j;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);

  // Non-monotone entry indices: the delta coding makes a repeated entry a
  // zero delta, which the section parser refuses.
  {
    ArchivePayload payload = base;
    auto& syncs = payload.metas[victim_j].t_syncs;
    syncs[1].entry = syncs[0].entry;
    ArchiveReader hostile;
    EXPECT_FALSE(hostile.OpenBytes(EncodeArchive(payload), &error));
    EXPECT_NE(error.find("sync-index"), std::string::npos) << error;
  }

  // Entry index at/after the last decodable bracket start.
  {
    ArchivePayload payload = base;
    auto& syncs = payload.metas[victim_j].t_syncs;
    syncs.back().entry = payload.metas[victim_j].n_points;
    ArchiveReader hostile;
    EXPECT_FALSE(hostile.OpenBytes(EncodeArchive(payload), &error));
    EXPECT_NE(error.find("sync-index"), std::string::npos) << error;
  }

  // Bit offset past the end of the T stream.
  {
    ArchivePayload payload = base;
    auto& syncs = payload.metas[victim_j].t_syncs;
    syncs.back().bit = payload.t.size_bits;
    ArchiveReader hostile;
    EXPECT_FALSE(hostile.OpenBytes(EncodeArchive(payload), &error));
    EXPECT_NE(error.find("sync-index"), std::string::npos) << error;
  }

  // The unmutated payload still re-encodes and opens — the rejections
  // above came from the mutations, not the harness.
  ArchiveReader ok;
  EXPECT_TRUE(ok.OpenBytes(EncodeArchive(base), &error)) << error;
}

TEST(Archive, RejectsHandBuiltSyncSections) {
  // Tag-9 shapes the writer can never produce: a zero sync interval, and a
  // table set whose trajectory count disagrees with the metas. Both are
  // spliced into a sync-free (v2) image so the crafted section is the only
  // kTSyncIndex present.
  ArchiveFixture fx;
  core::UtcqParams params;
  params.default_interval_s = traj::ChengduProfile().default_interval_s;
  params.t_sync_interval = 0;
  const core::UtcqSystem sys2(fx.net, *fx.grid, fx.corpus, params,
                              core::StiuParams{16, 900});
  const std::vector<uint8_t> v2 =
      ArchiveWriter(sys2.compressed(), &sys2.index()).Serialize();
  constexpr uint64_t kTag = 9;  // SectionTag::kTSyncIndex
  std::string error;

  // Sync interval zero.
  {
    common::ByteWriter body;
    body.PutVarint(0);  // interval — must be >= 1
    body.PutVarint(sys2.compressed().num_trajectories());
    for (size_t j = 0; j < sys2.compressed().num_trajectories(); ++j) {
      body.PutVarint(0);  // no syncs for this trajectory
    }
    ArchiveReader hostile;
    EXPECT_FALSE(hostile.OpenBytes(WithExtraSection(v2, kTag, body), &error));
    EXPECT_NE(error.find("sync-index"), std::string::npos) << error;
  }

  // Trajectory count disagrees with the metas section.
  {
    common::ByteWriter body;
    body.PutVarint(2);  // interval
    body.PutVarint(1);  // one table; metas carry 50 trajectories
    body.PutVarint(0);
    ArchiveReader hostile;
    EXPECT_FALSE(hostile.OpenBytes(WithExtraSection(v2, kTag, body), &error));
    EXPECT_NE(error.find("sync-index"), std::string::npos) << error;
  }

  // A structurally valid spliced table is accepted — the helper builds
  // openable images, so the rejections above are the section's doing.
  {
    common::ByteWriter body;
    body.PutVarint(2);
    body.PutVarint(sys2.compressed().num_trajectories());
    for (size_t j = 0; j < sys2.compressed().num_trajectories(); ++j) {
      body.PutVarint(0);
    }
    ArchiveReader fine;
    EXPECT_TRUE(fine.OpenBytes(WithExtraSection(v2, kTag, body), &error))
        << error;
    EXPECT_EQ(fine.payload().params.t_sync_interval, 2u);
  }
}

}  // namespace
}  // namespace utcq::archive
