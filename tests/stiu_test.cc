#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/utcq.h"
#include "network/generator.h"
#include "paper_example.h"
#include "traj/generator.h"
#include "traj/profiles.h"
#include "test_fixtures.h"

namespace utcq::core {
namespace {

struct StiuFixture {
  StiuFixture() {
    const auto profile = traj::ChengduProfile();
    net = test::MakeSmallCity(profile, 14);
    traj::UncertainTrajectoryGenerator gen(net, profile, 606);
    corpus = gen.GenerateCorpus(60);
    grid = std::make_unique<network::GridIndex>(net, 16);
    params.default_interval_s = profile.default_interval_s;
    sys = std::make_unique<UtcqSystem>(net, *grid, corpus, params,
                                       StiuParams{16, 900});
  }
  network::RoadNetwork net;
  traj::UncertainCorpus corpus;
  std::unique_ptr<network::GridIndex> grid;
  UtcqParams params;
  std::unique_ptr<UtcqSystem> sys;
};

TEST(StiuIndex, TemporalTuplesCoverEveryPartitionOfTheSpan) {
  StiuFixture fx;
  for (size_t j = 0; j < fx.corpus.size(); ++j) {
    const auto& tuples = fx.sys->index().TemporalOf(j);
    ASSERT_FALSE(tuples.empty());
    EXPECT_EQ(tuples.front().t_no, 0u);
    EXPECT_EQ(tuples.front().t_start, fx.corpus[j].times.front());
    for (size_t k = 1; k < tuples.size(); ++k) {
      EXPECT_GT(tuples[k].t_start, tuples[k - 1].t_start);
      EXPECT_GT(tuples[k].t_no, tuples[k - 1].t_no);
      // Each tuple starts a new 900 s partition.
      EXPECT_NE(tuples[k].t_start / 900, tuples[k - 1].t_start / 900);
    }
  }
}

TEST(StiuIndex, BracketFromAnyTupleMatchesBracketFromStart) {
  // The t_pos bit offsets must let a partial decode starting at *any*
  // temporal tuple agree with a decode from the beginning of the stream.
  StiuFixture fx;
  const auto decoder = fx.sys->decoder();
  for (size_t j = 0; j < fx.corpus.size(); ++j) {
    const auto& tu = fx.corpus[j];
    const auto& tuples = fx.sys->index().TemporalOf(j);
    const auto& first = tuples.front();
    for (traj::Timestamp t = tu.times.front(); t <= tu.times.back();
         t += std::max<traj::Timestamp>(
             (tu.times.back() - tu.times.front()) / 7, 1)) {
      const auto via_index = fx.sys->index().TemporalTupleFor(j, t);
      const auto a = decoder.BracketTime(j, t, via_index.t_no,
                                         via_index.t_start, via_index.t_pos);
      const auto b =
          decoder.BracketTime(j, t, first.t_no, first.t_start, first.t_pos);
      ASSERT_EQ(a.has_value(), b.has_value()) << "traj " << j << " t " << t;
      if (a.has_value()) {
        EXPECT_EQ(a->index, b->index);
        EXPECT_EQ(a->t0, b->t0);
        EXPECT_EQ(a->t1, b->t1);
        // And the bracket is correct against the raw time sequence.
        EXPECT_EQ(a->t0, tu.times[a->index]);
        if (a->index + 1 < tu.times.size()) {
          EXPECT_EQ(a->t1, tu.times[a->index + 1]);
        }
        EXPECT_LE(a->t0, t);
        EXPECT_GE(a->t1, t);
      }
    }
  }
}

TEST(StiuIndex, SpatialTuplesAreComplete) {
  // Every region an instance's path overlaps must be reachable via a tuple
  // (the conservative completeness the range candidate generation needs).
  StiuFixture fx;
  const auto& meta_of = fx.sys->compressed();
  for (size_t j = 0; j < fx.corpus.size(); ++j) {
    const TrajMeta& meta = meta_of.meta(j);
    for (size_t w = 0; w < fx.corpus[j].instances.size(); ++w) {
      const auto& inst = fx.corpus[j].instances[w];
      const auto [is_ref, idx] = meta.roles[w];
      for (const auto e : inst.path) {
        for (const auto re : fx.grid->RegionsOfEdge(e)) {
          bool found = false;
          if (is_ref) {
            for (const auto& rt : fx.sys->index().RefTuplesIn(re)) {
              found = found || (rt.traj == j && rt.ref_idx == idx &&
                                rt.ref_passes);
            }
          } else {
            for (const auto& nt : fx.sys->index().NrefTuplesIn(re)) {
              found = found || (nt.traj == j && nt.nref_idx == idx);
            }
          }
          EXPECT_TRUE(found) << "traj " << j << " inst " << w << " region "
                             << re;
        }
      }
    }
  }
}

TEST(StiuIndex, RefTupleAggregatesAreConsistent) {
  StiuFixture fx;
  for (network::RegionId re = 0; re < fx.grid->num_regions(); ++re) {
    for (const auto& rt : fx.sys->index().RefTuplesIn(re)) {
      const TrajMeta& meta = fx.sys->compressed().meta(rt.traj);
      // p_total covers at least the members that contributed p_max and the
      // reference itself when it passes.
      double lower = rt.p_max;
      if (rt.ref_passes) lower += meta.refs[rt.ref_idx].p_quantized;
      EXPECT_GE(rt.p_total + 1e-6, lower);
      EXPECT_GE(rt.p_max, 0.0f);
      if (rt.ref_passes) {
        EXPECT_LT(rt.fv_no, meta.refs[rt.ref_idx].e_len);
      }
    }
  }
}

TEST(StiuIndex, PaperExampleTuples) {
  // Fig. 5: Tu^1_1 is the reference; the spatial tuples near the corridor
  // start must name it with fv = SV and carry p_total = 1 (all three
  // instances pass the first region).
  const auto ex = test::MakePaperExample();
  const traj::UncertainCorpus corpus{ex.tu};
  const network::GridIndex grid(ex.net, 4);
  UtcqParams params;
  params.default_interval_s = 240;
  const UtcqSystem sys(ex.net, grid, corpus, params, StiuParams{4, 900});

  const auto re0 = grid.RegionOf(ex.net.vertex(ex.v[1]).x + 1,
                                 ex.net.vertex(ex.v[1]).y + 1);
  bool found = false;
  for (const auto& rt : sys.index().RefTuplesIn(re0)) {
    if (rt.traj != 0 || !rt.ref_passes) continue;
    found = true;
    EXPECT_EQ(rt.fv_id, ex.v[1]);  // SV special case of Section 5.2
    EXPECT_EQ(rt.fv_no, 0u);
    EXPECT_NEAR(rt.p_total, 1.0, 0.02);  // all instances start here
    EXPECT_NEAR(rt.p_max, 0.2, 0.01);    // max non-reference probability
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace utcq::core
