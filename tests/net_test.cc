// Network serving tier (DESIGN.md §14). Three layers, tested in order of
// distance from a socket:
//   1. net::wire — every request/response payload encodes→decodes
//      bit-exact, every decoder rejects truncation/trailing/out-of-range
//      input, and the FrameAssembler splits pipelined multi-frame buffers
//      correctly at arbitrary byte boundaries.
//   2. net::Session — the socket-free protocol state machine: hello
//      gating, version negotiation, typed error codes, pipelined kQuery
//      runs folding into ExecuteBatch, goodbye.
//   3. net::TcpServer + net::Client — real loopback TCP: answers
//      identical to in-process execution, pipelining, concurrent clients,
//      ingest upload, overload rejection and drain-then-close shutdown
//      leaking no sessions.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/serial.h"
#include "core/utcq.h"
#include "ingest/ingestor.h"
#include "net/client.h"
#include "net/tcp_server.h"
#include "net/wire.h"
#include "network/generator.h"
#include "network/grid_index.h"
#include "serve/query_engine.h"
#include "test_fixtures.h"
#include "traj/generator.h"
#include "traj/profiles.h"

namespace utcq::net {
namespace {

// ----------------------------------------------------------- wire fixture

Frame MakeFrame(Op op, uint64_t id, std::vector<uint8_t> payload = {}) {
  Frame f;
  f.op = op;
  f.request_id = id;
  f.payload = std::move(payload);
  return f;
}

std::vector<uint8_t> PayloadOf(const std::function<void(common::ByteWriter*)>& fn) {
  common::ByteWriter w;
  fn(&w);
  return w.Release();
}

/// The canonical-encoding contract: encode → decode → re-encode must be
/// byte-identical, and the decoded value must equal the original.
template <typename T, typename EncodeFn, typename DecodeFn>
void ExpectBitExactRoundTrip(const T& value, EncodeFn encode,
                             DecodeFn decode) {
  common::ByteWriter w;
  encode(value, &w);
  const std::vector<uint8_t> bytes = w.bytes();
  common::ByteReader r(bytes);
  T decoded{};
  ASSERT_TRUE(decode(&r, &decoded));
  EXPECT_TRUE(decoded == value);
  common::ByteWriter again;
  encode(decoded, &again);
  EXPECT_EQ(again.bytes(), bytes) << "re-encode is not byte-identical";
}

TEST(Wire, HelloRoundTripsBitExact) {
  HelloRequest req;
  req.min_version = 1;
  req.max_version = 3;
  req.features = 0x55;
  ExpectBitExactRoundTrip(req, EncodeHelloRequest, DecodeHelloRequest);

  HelloResponse resp;
  resp.version = 1;
  resp.features = 0;
  resp.num_trajectories = 12345;
  resp.query_enabled = true;
  resp.ingest_enabled = false;
  ExpectBitExactRoundTrip(resp, EncodeHelloResponse, DecodeHelloResponse);
}

TEST(Wire, QueryRequestRoundTripsBitExactAllKinds) {
  const auto where = serve::QueryRequest::MakeWhere(7, -1234567, 0.35);
  const auto when = serve::QueryRequest::MakeWhen(9, 42, 0.625, 0.2);
  const auto range = serve::QueryRequest::MakeRange(
      network::Rect{-10.5, 3.25, 900.0, 1200.75}, 86400, 0.5);
  for (const auto& req : {where, when, range}) {
    common::ByteWriter w;
    EncodeQueryRequest(req, &w);
    const std::vector<uint8_t> bytes = w.bytes();
    common::ByteReader r(bytes);
    serve::QueryRequest decoded;
    ASSERT_TRUE(DecodeQueryRequest(&r, &decoded));
    ASSERT_TRUE(FinishPayload(r));
    EXPECT_EQ(decoded.kind, req.kind);
    EXPECT_EQ(decoded.traj, req.traj);
    EXPECT_EQ(decoded.t, req.t);
    EXPECT_EQ(decoded.edge, req.edge);
    EXPECT_EQ(decoded.rd, req.rd);
    EXPECT_EQ(decoded.alpha, req.alpha);
    EXPECT_EQ(decoded.region.min_x, req.region.min_x);
    EXPECT_EQ(decoded.region.max_y, req.region.max_y);
    common::ByteWriter again;
    EncodeQueryRequest(decoded, &again);
    EXPECT_EQ(again.bytes(), bytes);
  }
}

TEST(Wire, QueryResultRoundTripsBitExactWithHits) {
  serve::QueryResult where;
  where.kind = serve::QueryKind::kWhere;
  where.where = {{3, 0.25, {11, 0.75}}, {1, 0.125, {0, 0.0}}};
  serve::QueryResult when;
  when.kind = serve::QueryKind::kWhen;
  when.when = {{2, 0.5, -100}, {0, 1.0, 7200}};
  serve::QueryResult range;
  range.kind = serve::QueryKind::kRange;
  range.range = {5, 0, 2, 300000};  // engine order is preserved verbatim
  for (const auto& result : {where, when, range}) {
    common::ByteWriter w;
    EncodeQueryResult(result, &w);
    const std::vector<uint8_t> bytes = w.bytes();
    common::ByteReader r(bytes);
    serve::QueryResult decoded;
    ASSERT_TRUE(DecodeQueryResult(&r, &decoded));
    ASSERT_TRUE(FinishPayload(r));
    EXPECT_TRUE(decoded.where == result.where);
    EXPECT_TRUE(decoded.when == result.when);
    EXPECT_TRUE(decoded.range == result.range);
    common::ByteWriter again;
    EncodeQueryResult(decoded, &again);
    EXPECT_EQ(again.bytes(), bytes);
  }
}

TEST(Wire, BatchAndIngestAndStatsRoundTripBitExact) {
  {
    const std::vector<serve::QueryRequest> reqs = {
        serve::QueryRequest::MakeWhere(0, 10, 0.1),
        serve::QueryRequest::MakeWhen(1, 2, 0.5, 0.2),
        serve::QueryRequest::MakeRange({0, 0, 1, 1}, 5, 0.3)};
    common::ByteWriter w;
    EncodeBatchRequest(reqs, &w);
    const std::vector<uint8_t> bytes = w.bytes();
    common::ByteReader r(bytes);
    std::vector<serve::QueryRequest> decoded;
    ASSERT_TRUE(DecodeBatchRequest(&r, &decoded));
    ASSERT_TRUE(FinishPayload(r));
    ASSERT_EQ(decoded.size(), reqs.size());
    common::ByteWriter again;
    EncodeBatchRequest(decoded, &again);
    EXPECT_EQ(again.bytes(), bytes);
  }
  ExpectBitExactRoundTrip(IngestPointRequest{77, {1.5, -2.5, 1234}},
                          EncodeIngestPoint, DecodeIngestPoint);
  ExpectBitExactRoundTrip(IngestEndRequest{77}, EncodeIngestEnd,
                          DecodeIngestEnd);
  ExpectBitExactRoundTrip(IngestAdvanceRequest{-5000}, EncodeIngestAdvance,
                          DecodeIngestAdvance);
  ExpectBitExactRoundTrip(
      IngestAck{matching::AppendStatus::kDroppedOutOfOrder, 3},
      EncodeIngestAck, DecodeIngestAck);
  StatsResponse stats;
  stats.has_engine = true;
  stats.queries = 10;
  stats.batches = 2;
  stats.cache_hits = 7;
  stats.cache_misses = 3;
  stats.bytes_decoded = 4096;
  stats.p50_latency_us = 12.5;
  stats.p99_latency_us = 90.25;
  stats.has_ingest = true;
  stats.points = 500;
  stats.accepted = 480;
  stats.trajectories_sealed = 4;
  stats.open_sessions = 2;
  ExpectBitExactRoundTrip(stats, EncodeStatsResponse, DecodeStatsResponse);
}

TEST(Wire, ErrorFramesCarryCodes) {
  for (const ErrorCode code :
       {ErrorCode::kBadVersion, ErrorCode::kBadOpcode, ErrorCode::kMalformed,
        ErrorCode::kNotSupported, ErrorCode::kFrameTooLarge,
        ErrorCode::kShuttingDown, ErrorCode::kInternal,
        ErrorCode::kHelloRequired, ErrorCode::kOverloaded}) {
    const Frame frame = MakeErrorFrame(99, code, "details");
    EXPECT_EQ(frame.op, Op::kError);
    EXPECT_EQ(frame.request_id, 99u);
    common::ByteReader r(frame.payload);
    ErrorBody body;
    ASSERT_TRUE(DecodeErrorBody(&r, &body));
    EXPECT_EQ(body.code, code);
    EXPECT_EQ(body.message, "details");
    EXPECT_STRNE(ErrorCodeName(code), "unknown");
  }
  // Messages are capped, never rejected on the encode side.
  const Frame big = MakeErrorFrame(1, ErrorCode::kInternal,
                                   std::string(4096, 'x'));
  common::ByteReader r(big.payload);
  ErrorBody body;
  ASSERT_TRUE(DecodeErrorBody(&r, &body));
  EXPECT_EQ(body.message.size(), kMaxErrorMessageBytes);
}

TEST(Wire, DecodersRejectTruncationAndTrailingBytes) {
  // One (payload, own-decoder) pair per message family. The opcode — not
  // the payload — selects the decoder, so the invariant is that each
  // payload's OWN decoder accepts it exactly and rejects every strict
  // prefix (truncation) and any trailing byte.
  struct Case {
    const char* name;
    std::vector<uint8_t> payload;
    std::function<bool(const std::vector<uint8_t>&)> decode;
  };
  const std::vector<Case> cases = {
      {"where",
       PayloadOf([](common::ByteWriter* w) {
         EncodeQueryRequest(serve::QueryRequest::MakeWhere(3, 99, 0.25), w);
       }),
       [](const std::vector<uint8_t>& b) {
         common::ByteReader r(b);
         serve::QueryRequest out;
         return DecodeQueryRequest(&r, &out) && FinishPayload(r);
       }},
      {"range",
       PayloadOf([](common::ByteWriter* w) {
         EncodeQueryRequest(
             serve::QueryRequest::MakeRange({0, 0, 10, 10}, 50, 0.5), w);
       }),
       [](const std::vector<uint8_t>& b) {
         common::ByteReader r(b);
         serve::QueryRequest out;
         return DecodeQueryRequest(&r, &out) && FinishPayload(r);
       }},
      {"ingest_point",
       PayloadOf([](common::ByteWriter* w) {
         EncodeIngestPoint(IngestPointRequest{1, {2.0, 3.0, 4}}, w);
       }),
       [](const std::vector<uint8_t>& b) {
         common::ByteReader r(b);
         IngestPointRequest out;
         return DecodeIngestPoint(&r, &out);
       }},
      {"stats",
       PayloadOf([](common::ByteWriter* w) {
         EncodeStatsResponse(StatsResponse{}, w);
       }),
       [](const std::vector<uint8_t>& b) {
         common::ByteReader r(b);
         StatsResponse out;
         return DecodeStatsResponse(&r, &out);
       }},
      {"error",
       PayloadOf([](common::ByteWriter* w) {
         EncodeErrorBody({ErrorCode::kMalformed, "msg"}, w);
       }),
       [](const std::vector<uint8_t>& b) {
         common::ByteReader r(b);
         ErrorBody out;
         return DecodeErrorBody(&r, &out);
       }},
      {"metrics",
       PayloadOf([](common::ByteWriter* w) {
         obs::MetricRegistry reg;
         reg.GetCounter("a.count").Add(3);
         reg.GetGauge("b.level").Set(-7);
         reg.GetHistogram("c.latency_ns").Record(1234);
         EncodeMetricsResponse(reg.Snapshot(), w);
       }),
       [](const std::vector<uint8_t>& b) {
         common::ByteReader r(b);
         obs::RegistrySnapshot out;
         return DecodeMetricsResponse(&r, &out);
       }},
  };
  for (const Case& c : cases) {
    ASSERT_TRUE(c.decode(c.payload)) << c.name;
    for (size_t cut = 0; cut < c.payload.size(); ++cut) {
      EXPECT_FALSE(c.decode(
          std::vector<uint8_t>(c.payload.begin(), c.payload.begin() + cut)))
          << c.name << ": truncation at byte " << cut << " accepted";
    }
    std::vector<uint8_t> padded = c.payload;
    padded.push_back(0);
    EXPECT_FALSE(c.decode(padded)) << c.name << ": trailing byte accepted";
  }
}

TEST(Wire, DecodersRejectOutOfRangeValues) {
  {
    // Trajectory id that does not fit uint32_t.
    common::ByteWriter w;
    w.PutU8(0);  // kWhere
    w.PutVarint(uint64_t{1} << 40);
    w.PutSignedVarint(0);
    w.PutF64(0.5);
    common::ByteReader r(w.bytes());
    serve::QueryRequest out;
    EXPECT_FALSE(DecodeQueryRequest(&r, &out));
  }
  {
    // Non-finite alpha.
    common::ByteWriter w;
    w.PutU8(0);
    w.PutVarint(1);
    w.PutSignedVarint(0);
    w.PutF64(std::numeric_limits<double>::quiet_NaN());
    common::ByteReader r(w.bytes());
    serve::QueryRequest out;
    EXPECT_FALSE(DecodeQueryRequest(&r, &out));
  }
  {
    // Unknown query kind.
    common::ByteWriter w;
    w.PutU8(7);
    common::ByteReader r(w.bytes());
    serve::QueryRequest out;
    EXPECT_FALSE(DecodeQueryRequest(&r, &out));
  }
  {
    // Crafted hit count far beyond the remaining bytes must be rejected
    // before any allocation.
    common::ByteWriter w;
    w.PutU8(0);  // where result
    w.PutVarint(uint64_t{1} << 50);
    common::ByteReader r(w.bytes());
    serve::QueryResult out;
    EXPECT_FALSE(DecodeQueryResult(&r, &out));
  }
  {
    // AppendStatus outside the enum.
    common::ByteWriter w;
    w.PutU8(200);
    w.PutVarint(0);
    common::ByteReader r(w.bytes());
    IngestAck out;
    EXPECT_FALSE(DecodeIngestAck(&r, &out));
  }
  {
    // Error code 0 and error message over the cap.
    common::ByteWriter w;
    w.PutU16(0);
    w.PutBlob("x", 1);
    common::ByteReader r(w.bytes());
    ErrorBody out;
    EXPECT_FALSE(DecodeErrorBody(&r, &out));
    common::ByteWriter w2;
    w2.PutU16(static_cast<uint16_t>(ErrorCode::kInternal));
    const std::string huge(kMaxErrorMessageBytes + 1, 'y');
    w2.PutBlob(huge.data(), huge.size());
    common::ByteReader r2(w2.bytes());
    EXPECT_FALSE(DecodeErrorBody(&r2, &out));
  }
  {
    // NaN ingest coordinates are NOT a wire error: the ingestor owns that
    // judgment (it answers kDroppedNotFinite).
    common::ByteWriter w;
    EncodeIngestPoint(
        {5, {std::numeric_limits<double>::quiet_NaN(), 0.0, 1}}, &w);
    common::ByteReader r(w.bytes());
    IngestPointRequest out;
    EXPECT_TRUE(DecodeIngestPoint(&r, &out));
    EXPECT_TRUE(std::isnan(out.point.x));
  }
}

// ---------------------------------------------------------- metrics wire

TEST(Wire, MetricsResponseRoundTripsCanonically) {
  obs::MetricRegistry reg;
  reg.GetCounter("net.requests.query").Add(41);
  reg.GetCounter("serve.cache.hits").Add(7);
  reg.GetGauge("net.connections.open").Set(3);
  reg.GetGauge("serve.cache.resident_bytes").Set(-12);  // signed survives
  obs::Histogram& h = reg.GetHistogram("net.handle_ns");
  h.Record(5);
  h.Record(5);
  h.Record(900);
  h.Record(123456789);
  reg.GetHistogram("serve.engine.batch_size");  // empty histogram ships too
  const obs::RegistrySnapshot snap = reg.Snapshot();

  common::ByteWriter w;
  EncodeMetricsResponse(snap, &w);
  const std::vector<uint8_t> bytes = w.bytes();
  common::ByteReader r(bytes);
  obs::RegistrySnapshot got;
  ASSERT_TRUE(DecodeMetricsResponse(&r, &got));

  ASSERT_EQ(got.counters.size(), snap.counters.size());
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    EXPECT_EQ(got.counters[i], snap.counters[i]);
  }
  ASSERT_EQ(got.gauges.size(), snap.gauges.size());
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    EXPECT_EQ(got.gauges[i], snap.gauges[i]);
  }
  ASSERT_EQ(got.histograms.size(), snap.histograms.size());
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    EXPECT_EQ(got.histograms[i].first, snap.histograms[i].first);
    EXPECT_EQ(got.histograms[i].second.count, snap.histograms[i].second.count);
    EXPECT_EQ(got.histograms[i].second.sum, snap.histograms[i].second.sum);
    EXPECT_EQ(got.histograms[i].second.buckets,
              snap.histograms[i].second.buckets);
  }

  // Canonical: re-encoding the decoded snapshot is byte-identical.
  common::ByteWriter again;
  EncodeMetricsResponse(got, &again);
  EXPECT_EQ(again.bytes(), bytes);
}

TEST(Wire, MetricsDecoderRejectsMalformedPayloads) {
  const auto rejects = [](const std::vector<uint8_t>& payload) {
    common::ByteReader r(payload);
    obs::RegistrySnapshot out;
    return !DecodeMetricsResponse(&r, &out);
  };
  // Unknown payload version.
  EXPECT_TRUE(rejects(PayloadOf([](common::ByteWriter* w) {
    w->PutU8(kMetricsPayloadVersion + 1);
    w->PutVarint(0);
  })));
  // Unknown instrument kind tag.
  EXPECT_TRUE(rejects(PayloadOf([](common::ByteWriter* w) {
    w->PutU8(kMetricsPayloadVersion);
    w->PutVarint(1);
    w->PutU8(3);  // kinds are 0/1/2
    w->PutBlob("a", 1);
    w->PutVarint(0);
  })));
  // Empty instrument name.
  EXPECT_TRUE(rejects(PayloadOf([](common::ByteWriter* w) {
    w->PutU8(kMetricsPayloadVersion);
    w->PutVarint(1);
    w->PutU8(0);
    w->PutBlob("", 0);
    w->PutVarint(1);
  })));
  // Name over the cap (bytes actually present, so only the cap rejects).
  EXPECT_TRUE(rejects(PayloadOf([](common::ByteWriter* w) {
    w->PutU8(kMetricsPayloadVersion);
    w->PutVarint(1);
    w->PutU8(0);
    const std::string huge(kMaxMetricNameBytes + 1, 'n');
    w->PutBlob(huge.data(), huge.size());
    w->PutVarint(1);
  })));
  // Names out of order across instruments.
  EXPECT_TRUE(rejects(PayloadOf([](common::ByteWriter* w) {
    w->PutU8(kMetricsPayloadVersion);
    w->PutVarint(2);
    w->PutU8(0);
    w->PutBlob("b", 1);
    w->PutVarint(1);
    w->PutU8(0);
    w->PutBlob("a", 1);
    w->PutVarint(1);
  })));
  // Duplicate name (ordering is strict).
  EXPECT_TRUE(rejects(PayloadOf([](common::ByteWriter* w) {
    w->PutU8(kMetricsPayloadVersion);
    w->PutVarint(2);
    w->PutU8(0);
    w->PutBlob("a", 1);
    w->PutVarint(1);
    w->PutU8(1);
    w->PutBlob("a", 1);
    w->PutSignedVarint(1);
  })));
  // Histogram bucket index outside the compile-time layout.
  EXPECT_TRUE(rejects(PayloadOf([](common::ByteWriter* w) {
    w->PutU8(kMetricsPayloadVersion);
    w->PutVarint(1);
    w->PutU8(2);
    w->PutBlob("h", 1);
    w->PutVarint(10);  // sum
    w->PutVarint(1);   // one bucket
    w->PutVarint(obs::Histogram::kNumBuckets);
    w->PutVarint(1);
  })));
  // Zero bucket count (the encoding is sparse; zeros are non-canonical).
  EXPECT_TRUE(rejects(PayloadOf([](common::ByteWriter* w) {
    w->PutU8(kMetricsPayloadVersion);
    w->PutVarint(1);
    w->PutU8(2);
    w->PutBlob("h", 1);
    w->PutVarint(0);
    w->PutVarint(1);
    w->PutVarint(4);
    w->PutVarint(0);
  })));
  // Bucket indices out of order.
  EXPECT_TRUE(rejects(PayloadOf([](common::ByteWriter* w) {
    w->PutU8(kMetricsPayloadVersion);
    w->PutVarint(1);
    w->PutU8(2);
    w->PutBlob("h", 1);
    w->PutVarint(0);
    w->PutVarint(2);
    w->PutVarint(9);
    w->PutVarint(1);
    w->PutVarint(4);
    w->PutVarint(1);
  })));
  // Crafted instrument count far beyond the remaining bytes: rejected
  // before any allocation.
  EXPECT_TRUE(rejects(PayloadOf([](common::ByteWriter* w) {
    w->PutU8(kMetricsPayloadVersion);
    w->PutVarint(uint64_t{1} << 50);
  })));
}

// ------------------------------------------------------- frame assembling

std::vector<Frame> TestFrames() {
  return {
      MakeFrame(Op::kHello, 1,
                PayloadOf([](common::ByteWriter* w) {
                  EncodeHelloRequest(HelloRequest{}, w);
                })),
      MakeFrame(Op::kStats, 2),  // empty payload
      MakeFrame(Op::kQuery, 3,
                PayloadOf([](common::ByteWriter* w) {
                  EncodeQueryRequest(
                      serve::QueryRequest::MakeWhere(1, 100, 0.5), w);
                })),
      MakeFrame(Op::kError, 0,
                MakeErrorFrame(0, ErrorCode::kShuttingDown, "bye").payload),
      MakeFrame(Op::kIngestPoint, 4,
                PayloadOf([](common::ByteWriter* w) {
                  EncodeIngestPoint({9, {1.0, 2.0, 3}}, w);
                })),
  };
}

TEST(FrameAssembler, SplitsPipelinedBuffersAtArbitraryBoundaries) {
  const std::vector<Frame> frames = TestFrames();
  std::vector<uint8_t> stream;
  for (const Frame& f : frames) AppendFrame(f, &stream);

  // Every split of the pipelined buffer into two pushes, plus a
  // byte-by-byte pass, must yield the same frames.
  for (size_t cut = 0; cut <= stream.size(); ++cut) {
    FrameAssembler assembler;
    assembler.Push(stream.data(), cut);
    assembler.Push(stream.data() + cut, stream.size() - cut);
    Frame out;
    ErrorCode err;
    for (const Frame& want : frames) {
      ASSERT_EQ(assembler.Next(&out, &err), FrameAssembler::Status::kFrame)
          << "cut at byte " << cut;
      EXPECT_TRUE(out == want);
    }
    EXPECT_EQ(assembler.Next(&out, &err), FrameAssembler::Status::kNeedMore);
    EXPECT_EQ(assembler.buffered_bytes(), 0u);
  }
  {
    FrameAssembler assembler;
    size_t produced = 0;
    Frame out;
    ErrorCode err;
    for (size_t i = 0; i < stream.size(); ++i) {
      assembler.Push(&stream[i], 1);
      while (assembler.Next(&out, &err) == FrameAssembler::Status::kFrame) {
        ASSERT_LT(produced, frames.size());
        EXPECT_TRUE(out == frames[produced]);
        ++produced;
      }
    }
    EXPECT_EQ(produced, frames.size());
  }
}

TEST(FrameAssembler, FramingErrorsLatchTerminally) {
  {
    // Length below the fixed header size.
    common::ByteWriter w;
    w.PutU32(kFrameOverheadBytes - 1);
    FrameAssembler assembler;
    assembler.Push(w.bytes().data(), w.bytes().size());
    Frame out;
    ErrorCode err;
    ASSERT_EQ(assembler.Next(&out, &err), FrameAssembler::Status::kBad);
    EXPECT_EQ(err, ErrorCode::kMalformed);
    EXPECT_TRUE(assembler.bad());
  }
  {
    // Length beyond the cap: rejected before any allocation.
    common::ByteWriter w;
    w.PutU32(kMaxFrameBytes + 1);
    FrameAssembler assembler;
    assembler.Push(w.bytes().data(), w.bytes().size());
    Frame out;
    ErrorCode err;
    ASSERT_EQ(assembler.Next(&out, &err), FrameAssembler::Status::kBad);
    EXPECT_EQ(err, ErrorCode::kFrameTooLarge);
    // Terminal: pushing a perfectly valid frame afterwards changes nothing.
    const std::vector<uint8_t> good = EncodeFrame(MakeFrame(Op::kStats, 1));
    assembler.Push(good.data(), good.size());
    ASSERT_EQ(assembler.Next(&out, &err), FrameAssembler::Status::kBad);
    EXPECT_EQ(err, ErrorCode::kFrameTooLarge);
  }
  {
    // Nonzero reserved field.
    common::ByteWriter w;
    w.PutU32(kFrameOverheadBytes);
    w.PutU8(kProtocolVersion);
    w.PutU8(static_cast<uint8_t>(Op::kStats));
    w.PutU16(0xBEEF);
    w.PutU64(1);
    FrameAssembler assembler;
    assembler.Push(w.bytes().data(), w.bytes().size());
    Frame out;
    ErrorCode err;
    ASSERT_EQ(assembler.Next(&out, &err), FrameAssembler::Status::kBad);
    EXPECT_EQ(err, ErrorCode::kMalformed);
  }
  {
    // An unsupported *version* is NOT a framing error: the header layout
    // is version-fixed, so the frame is yielded and the session layer
    // answers kBadVersion.
    Frame odd = MakeFrame(Op::kStats, 5);
    odd.version = 9;
    const std::vector<uint8_t> bytes = EncodeFrame(odd);
    FrameAssembler assembler;
    assembler.Push(bytes.data(), bytes.size());
    Frame out;
    ErrorCode err;
    ASSERT_EQ(assembler.Next(&out, &err), FrameAssembler::Status::kFrame);
    EXPECT_EQ(out.version, 9);
  }
}

// -------------------------------------------------------- engine fixture

struct NetFixture {
  NetFixture() {
    const auto profile = traj::ChengduProfile();
    net = test::MakeSmallCity(profile, 12);
    corpus = test::MakeSmallCorpus(net, profile, 4242, 24);
    grid = std::make_unique<network::GridIndex>(net, 16);
    params.default_interval_s = profile.default_interval_s;
    sys = std::make_unique<core::UtcqSystem>(net, *grid, corpus, params,
                                             core::StiuParams{16, 900});
    gen = std::make_unique<traj::UncertainTrajectoryGenerator>(net, profile,
                                                               909);
  }

  std::vector<serve::QueryRequest> MakeWorkload(size_t count,
                                                uint64_t seed) const {
    std::vector<serve::QueryRequest> reqs;
    common::Rng rng(seed);
    const auto bbox = net.bounding_box();
    for (size_t i = 0; i < count; ++i) {
      const auto j =
          static_cast<uint32_t>(rng.UniformInt(0, corpus.size() - 1));
      const auto& tu = corpus[j];
      const double alpha = rng.Uniform(0.1, 0.6);
      switch (rng.UniformInt(0, 2)) {
        case 0:
          reqs.push_back(serve::QueryRequest::MakeWhere(
              j, rng.UniformInt(tu.times.front(), tu.times.back()), alpha));
          break;
        case 1: {
          const auto& path = tu.instances.front().path;
          reqs.push_back(serve::QueryRequest::MakeWhen(
              j, path[rng.UniformInt(0, path.size() - 1)],
              rng.Uniform(0.0, 1.0), alpha));
          break;
        }
        default: {
          const double cx = rng.Uniform(bbox.min_x, bbox.max_x);
          const double cy = rng.Uniform(bbox.min_y, bbox.max_y);
          const double half = rng.Uniform(200.0, 900.0);
          reqs.push_back(serve::QueryRequest::MakeRange(
              {cx - half, cy - half, cx + half, cy + half},
              rng.UniformInt(tu.times.front(), tu.times.back()), alpha));
          break;
        }
      }
    }
    return reqs;
  }

  static bool SameResult(const serve::QueryResult& a,
                         const serve::QueryResult& b) {
    return a.where == b.where && a.when == b.when && a.range == b.range;
  }

  network::RoadNetwork net;
  traj::UncertainCorpus corpus;
  std::unique_ptr<network::GridIndex> grid;
  core::UtcqParams params;
  std::unique_ptr<core::UtcqSystem> sys;
  std::unique_ptr<traj::UncertainTrajectoryGenerator> gen;
};

NetFixture& Fixture() {
  static NetFixture* fixture = new NetFixture();
  return *fixture;
}

std::vector<Frame> SplitFrames(const std::vector<uint8_t>& bytes) {
  FrameAssembler assembler;
  assembler.Push(bytes.data(), bytes.size());
  std::vector<Frame> frames;
  Frame out;
  ErrorCode err;
  while (assembler.Next(&out, &err) == FrameAssembler::Status::kFrame) {
    frames.push_back(std::move(out));
  }
  EXPECT_FALSE(assembler.bad());
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
  return frames;
}

Frame HelloFrame(uint64_t id = 1) {
  return MakeFrame(Op::kHello, id, PayloadOf([](common::ByteWriter* w) {
                     EncodeHelloRequest(HelloRequest{}, w);
                   }));
}

ErrorBody ErrorOf(const Frame& frame) {
  EXPECT_EQ(frame.op, Op::kError);
  common::ByteReader r(frame.payload);
  ErrorBody body;
  EXPECT_TRUE(DecodeErrorBody(&r, &body));
  return body;
}

// ----------------------------------------------------------- the session

TEST(Session, RequiresHelloFirst) {
  NetFixture& f = Fixture();
  serve::QueryEngine engine(f.sys->queries());
  Session session(&engine, nullptr, 64);
  std::vector<uint8_t> out;
  const Frame query = MakeFrame(Op::kQuery, 9, PayloadOf([](auto* w) {
    EncodeQueryRequest(serve::QueryRequest::MakeWhere(0, 1, 0.1), w);
  }));
  EXPECT_FALSE(session.HandleFrames({query}, &out));
  const auto frames = SplitFrames(out);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(ErrorOf(frames[0]).code, ErrorCode::kHelloRequired);
  EXPECT_EQ(frames[0].request_id, 9u);
  EXPECT_FALSE(session.helloed());
}

TEST(Session, HelloNegotiatesVersionAndAdvertisesCapabilities) {
  NetFixture& f = Fixture();
  serve::QueryEngine engine(f.sys->queries());
  {
    Session session(&engine, nullptr, 64);
    std::vector<uint8_t> out;
    ASSERT_TRUE(session.HandleFrames({HelloFrame()}, &out));
    const auto frames = SplitFrames(out);
    ASSERT_EQ(frames.size(), 1u);
    ASSERT_EQ(frames[0].op, Op::kHelloOk);
    EXPECT_EQ(frames[0].request_id, 1u);
    common::ByteReader r(frames[0].payload);
    HelloResponse resp;
    ASSERT_TRUE(DecodeHelloResponse(&r, &resp));
    EXPECT_EQ(resp.version, kProtocolVersion);
    EXPECT_EQ(resp.features, 0u);
    EXPECT_EQ(resp.num_trajectories, engine.num_trajectories());
    EXPECT_TRUE(resp.query_enabled);
    EXPECT_FALSE(resp.ingest_enabled);
    EXPECT_TRUE(session.helloed());
  }
  {
    // No version overlap → kBadVersion and the connection closes.
    Session session(&engine, nullptr, 64);
    std::vector<uint8_t> out;
    HelloRequest req;
    req.min_version = 2;
    req.max_version = 5;
    const Frame hello = MakeFrame(
        Op::kHello, 1,
        PayloadOf([&](auto* w) { EncodeHelloRequest(req, w); }));
    EXPECT_FALSE(session.HandleFrames({hello}, &out));
    const auto frames = SplitFrames(out);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(ErrorOf(frames[0]).code, ErrorCode::kBadVersion);
  }
}

TEST(Session, AnswersIdenticalToEngineAndFoldsPipelinedRuns) {
  NetFixture& f = Fixture();
  serve::QueryEngine engine(f.sys->queries());
  const auto workload = f.MakeWorkload(24, 11);

  // One pipelined burst: hello + every query in one HandleFrames call.
  std::vector<Frame> burst = {HelloFrame()};
  for (size_t i = 0; i < workload.size(); ++i) {
    burst.push_back(MakeFrame(Op::kQuery, 100 + i, PayloadOf([&](auto* w) {
                                EncodeQueryRequest(workload[i], w);
                              })));
  }
  Session session(&engine, nullptr, 1024);
  std::vector<uint8_t> out;
  ASSERT_TRUE(session.HandleFrames(burst, &out));
  const auto frames = SplitFrames(out);
  ASSERT_EQ(frames.size(), 1 + workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    const Frame& reply = frames[1 + i];
    ASSERT_EQ(reply.op, Op::kResult) << "query #" << i;
    EXPECT_EQ(reply.request_id, 100 + i) << "responses must keep order";
    common::ByteReader r(reply.payload);
    serve::QueryResult got;
    ASSERT_TRUE(DecodeQueryResult(&r, &got));
    ASSERT_TRUE(FinishPayload(r));
    EXPECT_TRUE(NetFixture::SameResult(got, engine.Execute(workload[i])))
        << "network answer differs from in-process, query #" << i;
  }
  // The whole run folded into one ExecuteBatch call (plus the comparison
  // Executes above): exactly 1 batch on the engine's counters.
  EXPECT_EQ(engine.stats().batches, 1u);
}

TEST(Session, ErrorPolicyPerOpcode) {
  NetFixture& f = Fixture();
  serve::QueryEngine engine(f.sys->queries());
  Session session(&engine, nullptr, 64);
  std::vector<uint8_t> out;
  ASSERT_TRUE(session.HandleFrames({HelloFrame()}, &out));
  out.clear();

  // Unknown opcode: answered, connection stays open.
  ASSERT_TRUE(
      session.HandleFrames({MakeFrame(static_cast<Op>(0x5E), 2)}, &out));
  // A response opcode sent as a request: same.
  ASSERT_TRUE(session.HandleFrames({MakeFrame(Op::kResult, 3)}, &out));
  // Malformed query payload: kMalformed, stays open.
  ASSERT_TRUE(session.HandleFrames(
      {MakeFrame(Op::kQuery, 4, {0xFF, 0xFF, 0xFF})}, &out));
  // Ingest on a query-only endpoint: kNotSupported, stays open.
  ASSERT_TRUE(session.HandleFrames(
      {MakeFrame(Op::kIngestEnd, 5, PayloadOf([](auto* w) {
                   EncodeIngestEnd(IngestEndRequest{1}, w);
                 }))},
      &out));
  // A second hello: kBadOpcode, stays open.
  ASSERT_TRUE(session.HandleFrames({HelloFrame(6)}, &out));
  const auto frames = SplitFrames(out);
  ASSERT_EQ(frames.size(), 5u);
  EXPECT_EQ(ErrorOf(frames[0]).code, ErrorCode::kBadOpcode);
  EXPECT_EQ(ErrorOf(frames[1]).code, ErrorCode::kBadOpcode);
  EXPECT_EQ(ErrorOf(frames[2]).code, ErrorCode::kMalformed);
  EXPECT_EQ(ErrorOf(frames[3]).code, ErrorCode::kNotSupported);
  EXPECT_EQ(ErrorOf(frames[4]).code, ErrorCode::kBadOpcode);
  for (size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].request_id, 2 + i);
  }

  // A frame with the wrong negotiated version: kBadVersion, closes.
  out.clear();
  Frame wrong = MakeFrame(Op::kStats, 7);
  wrong.version = 3;
  EXPECT_FALSE(session.HandleFrames({wrong}, &out));
  const auto closing = SplitFrames(out);
  ASSERT_EQ(closing.size(), 1u);
  EXPECT_EQ(ErrorOf(closing[0]).code, ErrorCode::kBadVersion);

  // Goodbye on a fresh session: kGoodbyeOk, closes.
  Session bye(&engine, nullptr, 64);
  out.clear();
  ASSERT_TRUE(bye.HandleFrames({HelloFrame()}, &out));
  EXPECT_FALSE(bye.HandleFrames({MakeFrame(Op::kGoodbye, 2)}, &out));
  const auto all = SplitFrames(out);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[1].op, Op::kGoodbyeOk);
  EXPECT_EQ(all[1].request_id, 2u);
}

// ------------------------------------------------------------ TCP layers

TEST(TcpServer, QueriesBatchesAndStatsMatchInProcess) {
  NetFixture& f = Fixture();
  serve::QueryEngine engine(f.sys->queries());
  TcpServer server(&engine, nullptr);
  ASSERT_TRUE(server.Start());
  ASSERT_NE(server.port(), 0);

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()))
      << client.last_status().message;
  EXPECT_TRUE(client.hello().query_enabled);
  EXPECT_FALSE(client.hello().ingest_enabled);
  EXPECT_EQ(client.hello().num_trajectories, engine.num_trajectories());

  const auto workload = f.MakeWorkload(18, 21);
  for (const auto& req : workload) {
    serve::QueryResult got;
    const auto status = client.Query(req, &got);
    ASSERT_TRUE(status.ok) << status.message;
    EXPECT_TRUE(NetFixture::SameResult(got, engine.Execute(req)));
  }

  std::vector<serve::QueryResult> batch;
  ASSERT_TRUE(client.Batch(workload, &batch).ok);
  const auto local = engine.ExecuteBatch(workload);
  ASSERT_EQ(batch.size(), local.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(NetFixture::SameResult(batch[i], local[i]));
  }

  StatsResponse stats;
  ASSERT_TRUE(client.Stats(&stats).ok);
  EXPECT_TRUE(stats.has_engine);
  EXPECT_FALSE(stats.has_ingest);
  EXPECT_GE(stats.queries, workload.size());

  client.Close();
  server.Shutdown();
  EXPECT_EQ(server.active_connections(), 0u);
}

TEST(TcpServer, PipelinedBurstMatchesInProcessInOrder) {
  NetFixture& f = Fixture();
  serve::QueryEngine engine(f.sys->queries());
  TcpServer server(&engine, nullptr);
  ASSERT_TRUE(server.Start());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  const auto workload = f.MakeWorkload(32, 31);
  std::vector<uint64_t> ids;
  for (const auto& req : workload) ids.push_back(client.SendQuery(req));
  ASSERT_TRUE(client.Flush());
  const auto local = engine.ExecuteBatch(workload);
  for (size_t i = 0; i < workload.size(); ++i) {
    uint64_t id = 0;
    serve::QueryResult got;
    const auto status = client.Receive(&id, &got);
    ASSERT_TRUE(status.ok) << status.message;
    EXPECT_EQ(id, ids[i]) << "pipelined responses must keep request order";
    EXPECT_TRUE(NetFixture::SameResult(got, local[i]));
  }
  client.Close();
  server.Shutdown();
}

TEST(TcpServer, IngestsPointsOverTheWire) {
  NetFixture& f = Fixture();
  matching::OnlineMatchParams match;
  match.match.gps_sigma_m = 15.0;
  match.match.max_instances = 6;
  ingest::SessionLimits limits;
  limits.max_points = 400;
  limits.idle_timeout_s = 300;
  std::atomic<size_t> sealed{0};
  ingest::StreamIngestor ingestor(
      f.net, *f.grid, match, limits,
      [&sealed](traj::UncertainTrajectory&&, ingest::SealReason) {
        sealed.fetch_add(1);
      });

  TcpServer server(nullptr, &ingestor);
  ASSERT_TRUE(server.Start());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  EXPECT_FALSE(client.hello().query_enabled);
  EXPECT_TRUE(client.hello().ingest_enabled);

  const auto raw = f.gen->GenerateRaw().raw;
  ASSERT_GE(raw.size(), 4u);
  size_t accepted = 0;
  for (const auto& p : raw) {
    IngestAck ack;
    ASSERT_TRUE(client.IngestPoint(7, p, &ack).ok);
    if (ack.status == matching::AppendStatus::kAccepted) ++accepted;
  }
  EXPECT_GT(accepted, 0u);
  // A NaN point is acknowledged as a typed drop, not a protocol error.
  {
    IngestAck ack;
    const traj::RawPoint bad{std::numeric_limits<double>::quiet_NaN(), 0.0,
                             raw.back().t + 10};
    ASSERT_TRUE(client.IngestPoint(7, bad, &ack).ok);
    EXPECT_EQ(ack.status, matching::AppendStatus::kDroppedNotFinite);
  }
  IngestAck end_ack;
  ASSERT_TRUE(client.IngestEnd(7, &end_ack).ok);
  EXPECT_EQ(end_ack.status, matching::AppendStatus::kAccepted);
  EXPECT_EQ(end_ack.sealed, sealed.load());
  EXPECT_EQ(ingestor.open_sessions(), 0u);
  EXPECT_EQ(ingestor.stats().points, raw.size() + 1);

  // A query opcode on the ingest-only endpoint: typed kNotSupported.
  serve::QueryResult unused;
  const auto status =
      client.Query(serve::QueryRequest::MakeWhere(0, 1, 0.1), &unused);
  EXPECT_FALSE(status.ok);
  EXPECT_TRUE(status.server_error);
  EXPECT_EQ(status.code, ErrorCode::kNotSupported);

  client.Close();
  server.Shutdown();
  EXPECT_EQ(server.active_connections(), 0u);
}

TEST(TcpServer, ConcurrentClientsAllMatchInProcess) {
  NetFixture& f = Fixture();
  serve::QueryEngine engine(f.sys->queries());
  TcpServer server(&engine, nullptr);
  ASSERT_TRUE(server.Start());

  constexpr int kClients = 4;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.Connect("127.0.0.1", server.port())) {
        failures.fetch_add(1);
        return;
      }
      const auto workload = f.MakeWorkload(12, 1000 + c);
      for (const auto& req : workload) {
        serve::QueryResult got;
        if (!client.Query(req, &got).ok) {
          failures.fetch_add(1);
          return;
        }
        if (!NetFixture::SameResult(got, engine.Execute(req))) {
          mismatches.fetch_add(1);
        }
      }
      client.Close();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  server.Shutdown();
  EXPECT_EQ(server.active_connections(), 0u);
  EXPECT_EQ(server.counters().connections_accepted,
            static_cast<uint64_t>(kClients));
}

TEST(TcpServer, RejectsConnectionsBeyondTheLimit) {
  NetFixture& f = Fixture();
  serve::QueryEngine engine(f.sys->queries());
  ServerOptions opts;
  opts.max_connections = 1;
  TcpServer server(&engine, nullptr, opts);
  ASSERT_TRUE(server.Start());

  Client first;
  ASSERT_TRUE(first.Connect("127.0.0.1", server.port()));
  // Ensure the first connection is fully registered before the second.
  StatsResponse stats;
  ASSERT_TRUE(first.Stats(&stats).ok);

  Client second;
  EXPECT_FALSE(second.Connect("127.0.0.1", server.port()));
  // When the overload error outruns the close, it carries the typed code;
  // a transport-level failure is also acceptable, never a hang.
  if (second.last_status().server_error) {
    EXPECT_EQ(second.last_status().code, ErrorCode::kOverloaded);
  }

  first.Close();
  server.Shutdown();
  EXPECT_EQ(server.counters().connections_rejected, 1u);
}

TEST(TcpServer, ShutdownDrainsFlushesAndLeaksNoSessions) {
  NetFixture& f = Fixture();
  serve::QueryEngine engine(f.sys->queries());
  TcpServer server(&engine, nullptr);
  ASSERT_TRUE(server.Start());

  // Three idle connections are open when Shutdown fires: each must be
  // woken, drained and joined — never leaked, never hung.
  Client a, b, c;
  ASSERT_TRUE(a.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(b.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(c.Connect("127.0.0.1", server.port()));
  ASSERT_EQ(server.active_connections(), 3u);

  // One of them has a full pipelined burst already answered — proving the
  // server processed frames on this connection before the drain.
  const auto workload = f.MakeWorkload(8, 51);
  std::vector<uint64_t> ids;
  for (const auto& req : workload) ids.push_back(a.SendQuery(req));
  ASSERT_TRUE(a.Flush());
  for (size_t i = 0; i < workload.size(); ++i) {
    uint64_t id = 0;
    serve::QueryResult got;
    ASSERT_TRUE(a.Receive(&id, &got).ok);
  }

  server.Shutdown();
  EXPECT_EQ(server.active_connections(), 0u);
  EXPECT_FALSE(server.running());

  // The clients see clean EOFs, not hangs.
  Frame unused;
  EXPECT_FALSE(a.ReceiveFrame(&unused));
  EXPECT_FALSE(b.ReceiveFrame(&unused));

  // The server object is reusable: Start() again binds a fresh port.
  ASSERT_TRUE(server.Start());
  Client again;
  EXPECT_TRUE(again.Connect("127.0.0.1", server.port()));
  again.Close();
  server.Shutdown();
}

// -------------------------------------------------------- metrics serving

TEST(Session, MetricsErrorPolicy) {
  NetFixture& f = Fixture();
  serve::QueryEngine engine(f.sys->queries());
  // A directly-constructed Session with no registry has nothing to export:
  // typed kNotSupported, connection stays open.
  {
    Session session(&engine, nullptr, 64);
    std::vector<uint8_t> out;
    ASSERT_TRUE(session.HandleFrames({HelloFrame()}, &out));
    out.clear();
    ASSERT_TRUE(session.HandleFrames({MakeFrame(Op::kMetrics, 2)}, &out));
    const auto frames = SplitFrames(out);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(ErrorOf(frames[0]).code, ErrorCode::kNotSupported);
  }
  // The request payload is specified empty; anything else is kMalformed.
  {
    obs::MetricRegistry reg;
    Session session(&engine, nullptr, 64, &reg);
    std::vector<uint8_t> out;
    ASSERT_TRUE(session.HandleFrames({HelloFrame()}, &out));
    out.clear();
    ASSERT_TRUE(
        session.HandleFrames({MakeFrame(Op::kMetrics, 2, {0x00})}, &out));
    const auto frames = SplitFrames(out);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(ErrorOf(frames[0]).code, ErrorCode::kMalformed);
  }
}

TEST(TcpServer, MetricsReconcileExactlyWithTheIssuedWorkload) {
  NetFixture& f = Fixture();
  // One registry spans the engine and the server, so the exported snapshot
  // carries serve.* and net.* series together.
  obs::MetricRegistry reg;
  serve::EngineOptions eopts;
  eopts.registry = &reg;
  serve::QueryEngine engine(f.sys->queries(), eopts);
  ServerOptions sopts;
  sopts.registry = &reg;
  TcpServer server(&engine, nullptr, sopts);
  ASSERT_TRUE(server.Start());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  const auto workload = f.MakeWorkload(23, 77);
  for (const auto& req : workload) {
    serve::QueryResult got;
    ASSERT_TRUE(client.Query(req, &got).ok);
  }
  StatsResponse stats_resp;
  ASSERT_TRUE(client.Stats(&stats_resp).ok);
  // One malformed query: must land in net.errors, not in the query count
  // (the counter tracks requests received, so the bad frame still counts
  // as a query request).
  client.SendFrame(MakeFrame(Op::kQuery, 9999, {0xFF}));
  Frame err_frame;
  ASSERT_TRUE(client.ReceiveFrame(&err_frame));
  EXPECT_EQ(err_frame.op, Op::kError);

  obs::RegistrySnapshot snap;
  ASSERT_TRUE(client.Metrics(&snap).ok) << client.last_status().message;

  const auto counter = [&snap](const std::string& name) -> uint64_t {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "counter " << name << " missing from the snapshot";
    return 0;
  };
  // Requests by opcode reconcile exactly with what this client issued on
  // the lone connection: 1 hello, queries + 1 malformed, 1 stats. The
  // metrics fetch itself was counted before the snapshot was taken.
  EXPECT_EQ(counter("net.requests.hello"), 1u);
  EXPECT_EQ(counter("net.requests.query"), workload.size() + 1);
  EXPECT_EQ(counter("net.requests.stats"), 1u);
  EXPECT_EQ(counter("net.requests.metrics"), 1u);
  EXPECT_EQ(counter("net.errors"), 1u);

  // Cache accounting: hits + misses == the engine's own lookup totals,
  // and the exported counters equal EngineStats exactly.
  const auto es = engine.stats();
  EXPECT_EQ(counter("serve.cache.hits"), es.cache_hits);
  EXPECT_EQ(counter("serve.cache.misses"), es.cache_misses);
  EXPECT_EQ(counter("serve.cache.hits") + counter("serve.cache.misses"),
            es.cache_hits + es.cache_misses);
  EXPECT_EQ(counter("serve.engine.queries"), es.queries);
  EXPECT_EQ(es.queries, workload.size());

  // The connection gauge reads 1 while this client is connected.
  int64_t open = -1;
  for (const auto& [n, v] : snap.gauges) {
    if (n == "net.connections.open") open = v;
  }
  EXPECT_EQ(open, 1);

  // Latency spans were recorded for every HandleFrames call.
  bool found_handle = false;
  for (const auto& [n, h] : snap.histograms) {
    if (n == "net.handle_ns") {
      found_handle = true;
      EXPECT_GT(h.count, 0u);
    }
  }
  EXPECT_TRUE(found_handle);

  client.Close();
  server.Shutdown();

  // After the drain the gauge returns to zero.
  const obs::RegistrySnapshot after = reg.Snapshot();
  for (const auto& [n, v] : after.gauges) {
    if (n == "net.connections.open") EXPECT_EQ(v, 0);
  }
}

TEST(TcpServer, OwnedRegistryAnswersMetricsWhenNonePassed) {
  NetFixture& f = Fixture();
  serve::QueryEngine engine(f.sys->queries());
  TcpServer server(&engine, nullptr);  // no registry in the options
  ASSERT_TRUE(server.Start());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  obs::RegistrySnapshot snap;
  ASSERT_TRUE(client.Metrics(&snap).ok) << client.last_status().message;
  // The server-owned registry still carries the net.* series (the engine
  // keeps its private registry, so serve.* is absent here).
  bool saw_hello = false;
  for (const auto& [n, v] : snap.counters) {
    if (n == "net.requests.hello") {
      saw_hello = true;
      EXPECT_EQ(v, 1u);
    }
  }
  EXPECT_TRUE(saw_hello);
  client.Close();
  server.Shutdown();
}

}  // namespace
}  // namespace utcq::net
