// Streaming ingestion subsystem: online sessions seal into a live shard,
// the flusher freezes generations into an append-log archive set, and a
// QueryEngine over the tier answers across live + sealed. The load-bearing
// pins: (1) stream-then-flush equals batch — the flushed archive is byte-
// identical to batch compression of the same sealed trajectories, and
// every query answers identically; (2) a crash injected between archive
// write and manifest swap leaves the on-disk set exactly pre-flush, never
// torn; (3) ingest, flush and queries can race without tearing a snapshot.

#include <atomic>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "archive/archive.h"
#include "common/rng.h"
#include "core/encoder.h"
#include "core/query.h"
#include "core/stiu_index.h"
#include "ingest/streaming_service.h"
#include "matching/online_viterbi.h"
#include "network/generator.h"
#include "serve/query_engine.h"
#include "shard/sharded.h"
#include "traj/generator.h"
#include "traj/profiles.h"
#include "test_fixtures.h"

namespace utcq::ingest {
namespace {

struct IngestFixture {
  IngestFixture() {
    const auto profile = traj::ChengduProfile();
    net = test::MakeSmallCity(profile, 14);
    grid = std::make_unique<network::GridIndex>(net, 16);

    auto gen_profile = profile;
    gen_profile.gps_noise_m = 8.0;
    gen = std::make_unique<traj::UncertainTrajectoryGenerator>(
        net, gen_profile, 909);

    opts.match.match.gps_sigma_m = 15.0;
    opts.match.match.max_instances = 6;
    opts.match.max_pending_steps = 0;  // batch-equal matching by default
    opts.limits.max_points = 400;
    opts.limits.idle_timeout_s = 300;
    opts.params.default_interval_s = profile.default_interval_s;
    opts.index_params = core::StiuParams{16, 900};
  }

  std::string TempPath(const std::string& name) const {
    return ::testing::TempDir() + "/" + name;
  }

  static void Cleanup(const std::string& manifest, size_t generations) {
    for (uint32_t g = 0; g < generations; ++g) {
      std::remove(shard::ShardArchivePath(manifest, g).c_str());
    }
    std::remove(manifest.c_str());
  }

  /// Pushes each raw stream as its own vehicle, round-robin across
  /// vehicles (the realistic interleaving), then ends the sessions in
  /// vehicle order. Returns the number of trajectories sealed.
  size_t IngestRaws(StreamingService& svc,
                    const std::vector<traj::RawTrajectory>& raws,
                    uint64_t first_vehicle = 0) const {
    size_t cursor = 0;
    bool more = true;
    while (more) {
      more = false;
      for (size_t v = 0; v < raws.size(); ++v) {
        if (cursor < raws[v].size()) {
          svc.Push(first_vehicle + v, raws[v][cursor]);
          more = more || cursor + 1 < raws[v].size();
        }
      }
      ++cursor;
    }
    size_t sealed = 0;
    for (size_t v = 0; v < raws.size(); ++v) {
      sealed += svc.EndSession(first_vehicle + v);
    }
    return sealed;
  }

  std::vector<traj::RawTrajectory> MakeRaws(size_t count) {
    std::vector<traj::RawTrajectory> raws;
    for (size_t i = 0; i < count; ++i) {
      raws.push_back(gen->GenerateRaw().raw);
    }
    return raws;
  }

  /// Batch ground truth over a trajectory list: the same compression and
  /// index parameters the live shard and flusher use.
  struct Batch {
    core::CompressedCorpus cc;
    std::vector<std::vector<core::NrefFactorLayout>> layouts;
    std::unique_ptr<core::StiuIndex> index;
    std::unique_ptr<core::UtcqQueryProcessor> queries;
  };
  std::unique_ptr<Batch> CompressBatch(
      const traj::UncertainCorpus& corpus) const {
    auto batch = std::make_unique<Batch>();
    const core::UtcqCompressor compressor(net, opts.params);
    batch->cc = compressor.Compress(corpus, &batch->layouts);
    core::StiuParams iparams = opts.index_params;
    iparams.cells_per_side = grid->cells_per_side();
    batch->index = std::make_unique<core::StiuIndex>(
        net, *grid, corpus, batch->cc.view(), batch->layouts, iparams);
    batch->queries = std::make_unique<core::UtcqQueryProcessor>(
        net, batch->cc.view(), *batch->index);
    return batch;
  }

  /// Mixed workload over `corpus`, answered through `engine` and compared
  /// hit-for-hit against the batch processor. Returns mismatches.
  size_t CompareWorkload(serve::QueryEngine& engine,
                         const core::UtcqQueryProcessor& batch,
                         const traj::UncertainCorpus& corpus, size_t count,
                         uint64_t seed) const {
    common::Rng rng(seed);
    const auto bbox = net.bounding_box();
    size_t mismatches = 0;
    for (size_t i = 0; i < count; ++i) {
      const auto j =
          static_cast<uint32_t>(rng.UniformInt(0, corpus.size() - 1));
      const auto& tu = corpus[j];
      const double alpha = rng.Uniform(0.1, 0.6);
      const auto t = rng.UniformInt(tu.times.front(), tu.times.back());
      if (engine.Where(j, t, alpha) != batch.Where(j, t, alpha)) {
        ++mismatches;
      }
      const auto& path = tu.instances.front().path;
      const network::EdgeId edge =
          path[static_cast<size_t>(rng.UniformInt(0, path.size() - 1))];
      const double rd = rng.Uniform(0.0, 1.0);
      if (engine.When(j, edge, rd, alpha) != batch.When(j, edge, rd, alpha)) {
        ++mismatches;
      }
      const double cx = rng.Uniform(bbox.min_x, bbox.max_x);
      const double cy = rng.Uniform(bbox.min_y, bbox.max_y);
      const network::Rect re{cx - 600, cy - 600, cx + 600, cy + 600};
      if (engine.Range(re, t, alpha) != batch.Range(re, t, alpha)) {
        ++mismatches;
      }
    }
    return mismatches;
  }

  network::RoadNetwork net;
  std::unique_ptr<network::GridIndex> grid;
  std::unique_ptr<traj::UncertainTrajectoryGenerator> gen;
  StreamingOptions opts;
};

IngestFixture& Fixture() {
  static IngestFixture* fixture = new IngestFixture();
  return *fixture;
}

TEST(OnlineViterbi, BoundedLagCommitsAndStaysValid) {
  IngestFixture& f = Fixture();
  matching::OnlineMatchParams params;
  params.match = f.opts.match.match;
  params.max_pending_steps = 4;
  matching::OnlineViterbi viterbi(f.net, *f.grid, params);

  common::Rng pick(3);
  size_t max_pending = 0;
  size_t accepted = 0;
  traj::RawTrajectory raw;
  for (int trial = 0; trial < 6 && raw.size() < 24; ++trial) {
    raw = f.gen->GenerateRaw().raw;
  }
  ASSERT_GE(raw.size(), 10u);
  for (const auto& p : raw) {
    const auto r = viterbi.Append(p);
    if (r.status == matching::AppendStatus::kAccepted) ++accepted;
    max_pending = std::max(max_pending, viterbi.pending_steps());
    EXPECT_LE(viterbi.pending_steps(), params.max_pending_steps);
  }
  ASSERT_GE(accepted, 8u);
  // The lag bound forced/let the matcher commit a prefix long before the
  // stream ended.
  EXPECT_GT(viterbi.committed_points(), 0u);
  const auto tu = viterbi.Finish();
  ASSERT_TRUE(tu.has_value());
  EXPECT_EQ(traj::Validate(f.net, *tu), "");
  EXPECT_EQ(tu->times.size(), accepted);
}

TEST(StreamingService, SealsOnMaxLengthIdleTimeoutAndExplicitEnd) {
  IngestFixture& f = Fixture();
  const std::string path = f.TempPath("ingest_seal.utcq");
  auto opts = f.opts;
  opts.limits.max_points = 12;
  StreamingService svc(f.net, *f.grid, path, opts);
  std::string error;
  ASSERT_TRUE(svc.Open(&error)) << error;

  // Long stream on one vehicle: max-length seals fire mid-stream.
  traj::RawTrajectory raw;
  traj::Timestamp shift = 0;
  for (int i = 0; i < 3; ++i) {
    auto piece = f.gen->GenerateRaw().raw;
    traj::Timestamp base =
        raw.empty() ? 0 : raw.back().t + 10 - piece.front().t;
    // Stitch pieces into one long in-order stream (gaps under max_gap_s).
    for (auto p : piece) {
      p.t += base + shift;
      raw.push_back(p);
    }
  }
  for (const auto& p : raw) svc.Push(7, p);
  const auto mid_stats = svc.stats();
  EXPECT_GT(mid_stats.trajectories_sealed, 0u)
      << "max-length must seal while the session stays open";
  EXPECT_EQ(svc.open_sessions(), 1u);

  // Idle timeout: the stream goes silent, the sweeper seals and closes.
  const size_t sealed_before = svc.stats().trajectories_sealed;
  svc.AdvanceTime(raw.back().t + opts.limits.idle_timeout_s + 1);
  EXPECT_EQ(svc.open_sessions(), 0u);
  EXPECT_GE(svc.stats().sessions_closed, 1u);
  (void)sealed_before;

  // Explicit end on a fresh short session.
  auto raw2 = f.gen->GenerateRaw().raw;
  for (const auto& p : raw2) svc.Push(8, p);
  EXPECT_EQ(svc.open_sessions(), 1u);
  svc.EndSession(8);
  EXPECT_EQ(svc.open_sessions(), 0u);

  // Every sealed trajectory is structurally valid.
  for (const auto& tu : svc.LiveTrajectories()) {
    EXPECT_EQ(traj::Validate(f.net, tu), "");
  }
  IngestFixture::Cleanup(path, svc.num_generations());
}

TEST(StreamingService, GapBreaksSealMidStream) {
  IngestFixture& f = Fixture();
  const std::string path = f.TempPath("ingest_gap.utcq");
  StreamingService svc(f.net, *f.grid, path, f.opts);
  ASSERT_TRUE(svc.Open());

  traj::RawTrajectory raw;
  for (int trial = 0; trial < 6 && raw.size() < 12; ++trial) {
    raw = f.gen->GenerateRaw().raw;
  }
  ASSERT_GE(raw.size(), 12u);
  // Two hours of silence mid-trip.
  for (size_t i = raw.size() / 2; i < raw.size(); ++i) raw[i].t += 7200;
  for (const auto& p : raw) svc.Push(1, p);
  const auto stats = svc.stats();
  EXPECT_GE(stats.segment_breaks, 1u);
  EXPECT_GE(stats.trajectories_sealed, 1u)
      << "the pre-gap half must have been sealed by the break";
  svc.EndSession(1);
  for (const auto& tu : svc.LiveTrajectories()) {
    EXPECT_EQ(traj::Validate(f.net, tu), "");
    // No sealed trajectory spans the gap.
    EXPECT_TRUE(tu.times.back() <= raw[raw.size() / 2 - 1].t ||
                tu.times.front() >= raw[raw.size() / 2].t);
  }
  IngestFixture::Cleanup(path, svc.num_generations());
}

TEST(StreamingService, StreamThenFlushEqualsBatchBitExactly) {
  IngestFixture& f = Fixture();
  const std::string path = f.TempPath("ingest_equals_batch.utcq");
  StreamingService svc(f.net, *f.grid, path, f.opts);
  std::string error;
  ASSERT_TRUE(svc.Open(&error)) << error;

  const auto raws = f.MakeRaws(10);
  const size_t sealed = f.IngestRaws(svc, raws);
  ASSERT_GE(sealed, 6u);
  const traj::UncertainCorpus corpus = svc.LiveTrajectories();
  ASSERT_EQ(corpus.size(), svc.num_live());
  const auto batch = f.CompressBatch(corpus);

  // --- pre-flush: the live tail answers exactly like the batch build ---
  serve::QueryEngine live_engine(svc);
  EXPECT_EQ(live_engine.num_trajectories(), corpus.size());
  EXPECT_EQ(f.CompareWorkload(live_engine, *batch->queries, corpus, 40, 11),
            0u);

  // --- flush, then: the archive generation is byte-identical to batch
  // compression of the same sealed trajectories ---
  ASSERT_TRUE(svc.Flush(&error)) << error;
  EXPECT_EQ(svc.num_live(), 0u);
  EXPECT_EQ(svc.num_sealed(), corpus.size());
  EXPECT_EQ(svc.num_generations(), 1u);

  std::vector<uint8_t> flushed_bytes;
  ASSERT_TRUE(archive::ReadFileBytes(shard::ShardArchivePath(path, 0),
                                     &flushed_bytes, &error))
      << error;
  const std::vector<uint8_t> batch_bytes =
      archive::ArchiveWriter(batch->cc, batch->index.get()).Serialize();
  EXPECT_EQ(flushed_bytes, batch_bytes)
      << "stream-then-flush must equal batch compression bit for bit";

  // --- post-flush: the sealed set still answers identically ---
  serve::QueryEngine sealed_engine(svc);
  EXPECT_EQ(f.CompareWorkload(sealed_engine, *batch->queries, corpus, 40, 12),
            0u);

  // --- restart: a fresh service over the same manifest serves the same ---
  StreamingService reopened(f.net, *f.grid, path, f.opts);
  ASSERT_TRUE(reopened.Open(&error)) << error;
  EXPECT_EQ(reopened.num_sealed(), corpus.size());
  serve::QueryEngine reopened_engine(reopened);
  EXPECT_EQ(
      f.CompareWorkload(reopened_engine, *batch->queries, corpus, 40, 13),
      0u);

  IngestFixture::Cleanup(path, svc.num_generations());
}

TEST(StreamingService, LivePlusSealedMergeAnswersAcrossBothTiers) {
  IngestFixture& f = Fixture();
  const std::string path = f.TempPath("ingest_mixed.utcq");
  StreamingService svc(f.net, *f.grid, path, f.opts);
  std::string error;
  ASSERT_TRUE(svc.Open(&error)) << error;

  // Generation 0 sealed on disk, a second wave left live.
  const auto first = f.MakeRaws(6);
  ASSERT_GE(f.IngestRaws(svc, first, 0), 4u);
  traj::UncertainCorpus combined = svc.LiveTrajectories();
  ASSERT_TRUE(svc.Flush(&error)) << error;
  const auto second = f.MakeRaws(5);
  ASSERT_GE(f.IngestRaws(svc, second, 100), 3u);
  for (const auto& tu : svc.LiveTrajectories()) combined.push_back(tu);

  ASSERT_GT(svc.num_sealed(), 0u);
  ASSERT_GT(svc.num_live(), 0u);
  ASSERT_EQ(combined.size(), svc.num_trajectories());
  // Ids were assigned at seal time and survive the flush: combined[j] is
  // global id j.
  for (size_t j = 0; j < combined.size(); ++j) {
    EXPECT_EQ(combined[j].id, j);
  }

  const auto batch = f.CompressBatch(combined);
  serve::QueryEngine engine(svc);
  EXPECT_EQ(engine.num_trajectories(), combined.size());
  EXPECT_EQ(f.CompareWorkload(engine, *batch->queries, combined, 60, 21),
            0u);

  // Flushing the live tail must not change a single answer (same engine,
  // same cache, new tier split mid-test).
  ASSERT_TRUE(svc.Flush(&error)) << error;
  EXPECT_EQ(svc.num_live(), 0u);
  EXPECT_EQ(svc.num_generations(), 2u);
  EXPECT_EQ(f.CompareWorkload(engine, *batch->queries, combined, 60, 22),
            0u);

  IngestFixture::Cleanup(path, svc.num_generations());
}

TEST(StreamingService, CrashBetweenArchiveWriteAndManifestSwapIsNeverTorn) {
  IngestFixture& f = Fixture();
  const std::string path = f.TempPath("ingest_crash.utcq");
  StreamingService svc(f.net, *f.grid, path, f.opts);
  std::string error;
  ASSERT_TRUE(svc.Open(&error)) << error;

  const auto first = f.MakeRaws(5);
  ASSERT_GE(f.IngestRaws(svc, first, 0), 3u);
  const size_t gen0_count = svc.num_live();
  ASSERT_TRUE(svc.Flush(&error)) << error;

  const auto second = f.MakeRaws(4);
  ASSERT_GE(f.IngestRaws(svc, second, 50), 2u);
  const size_t live_count = svc.num_live();

  // Kill the flush between archive write and manifest swap.
  svc.set_flush_hook([] { return false; });
  EXPECT_FALSE(svc.Flush(&error));
  EXPECT_NE(error.find("after-archive-write"), std::string::npos) << error;

  // In-process: nothing was lost or published.
  EXPECT_EQ(svc.num_generations(), 1u);
  EXPECT_EQ(svc.num_sealed(), gen0_count);
  EXPECT_EQ(svc.num_live(), live_count);

  // On disk: a reopen sees exactly the pre-flush set — the orphaned
  // generation file exists but the manifest never names it.
  {
    StreamingService reopened(f.net, *f.grid, path, f.opts);
    ASSERT_TRUE(reopened.Open(&error)) << error;
    EXPECT_EQ(reopened.num_sealed(), gen0_count);
    EXPECT_EQ(reopened.num_generations(), 1u);
  }

  // Retry after the "crash": the flush completes and publishes everything.
  svc.set_flush_hook(nullptr);
  ASSERT_TRUE(svc.Flush(&error)) << error;
  EXPECT_EQ(svc.num_generations(), 2u);
  EXPECT_EQ(svc.num_sealed(), gen0_count + live_count);
  EXPECT_EQ(svc.num_live(), 0u);
  {
    StreamingService reopened(f.net, *f.grid, path, f.opts);
    ASSERT_TRUE(reopened.Open(&error)) << error;
    EXPECT_EQ(reopened.num_sealed(), gen0_count + live_count);
    EXPECT_EQ(reopened.num_generations(), 2u);
  }

  IngestFixture::Cleanup(path, svc.num_generations());
}

TEST(StreamingService, ConcurrentIngestWhileQuerying) {
  IngestFixture& f = Fixture();
  const std::string path = f.TempPath("ingest_concurrent.utcq");
  StreamingService svc(f.net, *f.grid, path, f.opts);
  std::string error;
  ASSERT_TRUE(svc.Open(&error)) << error;

  // A sealed baseline so queries have something stable to chew on.
  const auto first = f.MakeRaws(5);
  ASSERT_GE(f.IngestRaws(svc, first, 0), 3u);
  traj::UncertainCorpus combined = svc.LiveTrajectories();
  ASSERT_TRUE(svc.Flush(&error)) << error;
  const size_t baseline = combined.size();

  serve::QueryEngine engine(svc);
  const auto bbox = f.net.bounding_box();
  std::atomic<bool> stop{false};
  std::atomic<size_t> executed{0};
  std::atomic<size_t> torn{0};

  // Query thread: hammers the engine while ingestion reshapes the tier.
  // Every answer must come from a consistent snapshot: point queries on
  // the stable baseline must answer non-torn (their data never changes),
  // and no request may crash regardless of how ids race the seals.
  std::thread querier([&] {
    common::Rng rng(31);
    while (!stop.load()) {
      const auto j =
          static_cast<uint32_t>(rng.UniformInt(0, 2 * baseline - 1));
      const auto& tu = combined[j % baseline];
      const auto t = rng.UniformInt(tu.times.front(), tu.times.back());
      engine.Where(j, t, 0.3);
      const double cx = rng.Uniform(bbox.min_x, bbox.max_x);
      const double cy = rng.Uniform(bbox.min_y, bbox.max_y);
      engine.Range({cx - 500, cy - 500, cx + 500, cy + 500}, t, 0.4);
      executed.fetch_add(1);
    }
  });

  std::thread flusher_thread([&] {
    while (!stop.load()) {
      std::string flush_error;
      if (!svc.Flush(&flush_error)) {
        torn.fetch_add(1);
      }
      std::this_thread::yield();
    }
  });

  const auto second = f.MakeRaws(6);
  f.IngestRaws(svc, second, 200);
  while (executed.load() < 50) std::this_thread::yield();
  stop.store(true);
  querier.join();
  flusher_thread.join();
  EXPECT_EQ(torn.load(), 0u) << "concurrent flushes must never fail";

  // Quiesced: everything survived the storm, and the stable baseline
  // still answers exactly like its batch build.
  ASSERT_TRUE(svc.Flush(&error)) << error;
  EXPECT_GT(svc.num_sealed(), baseline);
  {
    StreamingService reopened(f.net, *f.grid, path, f.opts);
    ASSERT_TRUE(reopened.Open(&error)) << error;
    EXPECT_EQ(reopened.num_sealed(), svc.num_sealed());
  }
  const auto batch = f.CompressBatch(combined);
  EXPECT_EQ(f.CompareWorkload(engine, *batch->queries, combined, 30, 41),
            0u);

  IngestFixture::Cleanup(path, svc.num_generations());
}

TEST(StreamingService, EmptyServiceAnswersEmpty) {
  IngestFixture& f = Fixture();
  const std::string path = f.TempPath("ingest_empty.utcq");
  StreamingService svc(f.net, *f.grid, path, f.opts);
  ASSERT_TRUE(svc.Open());
  serve::QueryEngine engine(svc);
  EXPECT_EQ(engine.num_trajectories(), 0u);
  EXPECT_TRUE(engine.Where(0, 100, 0.3).empty());
  EXPECT_TRUE(engine.When(3, 0, 0.5, 0.3).empty());
  EXPECT_TRUE(engine.Range({0, 0, 1000, 1000}, 100, 0.3).empty());
  // Flushing nothing is a no-op success, publishing nothing.
  std::string error;
  EXPECT_TRUE(svc.Flush(&error)) << error;
  EXPECT_EQ(svc.num_generations(), 0u);
}

// ---------------------------------------------------------- crash matrix
//
// The declarative crash/fault matrix (DESIGN.md §11): a simulated process
// crash is injected at *every* publication step of a flush, on both a
// fresh set and one with an already-published generation, and each case
// asserts the single durability invariant — a reopen from disk sees either
// exactly the pre-flush set or exactly the post-flush set, never a torn
// one — plus loss-freedom: whatever the reopen is missing is still
// recoverable (pre-publication crashes retry; post-publication crashes
// already persisted everything).

class FlushCrashMatrix
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FlushCrashMatrix, EveryReopenIsFullyPreOrFullyPostFlush) {
  const auto step = static_cast<FlushStep>(std::get<0>(GetParam()));
  const bool with_prior_generation = std::get<1>(GetParam()) == 1;
  IngestFixture& f = Fixture();
  SCOPED_TRACE(std::string("crash at ") + FlushStepName(step) +
               (with_prior_generation ? " on generation 1"
                                      : " on generation 0"));

  const std::string path =
      f.TempPath("crash_matrix_" + std::to_string(std::get<0>(GetParam())) +
                 "_" + std::to_string(std::get<1>(GetParam())) + ".utcq");
  traj::UncertainTrajectoryGenerator gen(f.net, traj::ChengduProfile(), 555);
  const auto corpus = gen.GenerateCorpus(8);

  core::StiuParams iparams = f.opts.index_params;
  iparams.cells_per_side = f.grid->cells_per_side();
  LiveShard live(f.net, *f.grid, f.opts.params, iparams);
  Flusher flusher(f.net, path);
  std::string error;
  std::shared_ptr<const shard::ShardedCorpus> sealed;
  ASSERT_TRUE(flusher.Open(&error, &sealed)) << error;

  size_t base_count = 0;
  if (with_prior_generation) {
    for (size_t j = 0; j < 3; ++j) live.Append(corpus[j]);
    const auto snap = live.Snapshot();
    ASSERT_TRUE(flusher.Flush(*snap, &error, &sealed)) << error;
    live.DropFlushed(snap->count());
    base_count = 3;
  }
  for (size_t j = base_count; j < corpus.size(); ++j) live.Append(corpus[j]);
  const size_t tail_count = corpus.size() - base_count;
  const auto snap = live.Snapshot();
  ASSERT_NE(snap, nullptr);

  // Crash exactly at the parameterized step.
  flusher.set_crash_hook([step](FlushStep s) { return s != step; });
  std::shared_ptr<const shard::ShardedCorpus> unused;
  EXPECT_FALSE(flusher.Flush(*snap, &error, &unused));
  EXPECT_NE(error.find(FlushStepName(step)), std::string::npos) << error;
  EXPECT_EQ(unused, nullptr);

  // Steps strictly before the manifest swap leave the pre-flush set; steps
  // at or after it have durably published the generation.
  const bool published = step >= FlushStep::kAfterManifestSwap;

  // Simulated restart: a fresh flusher reads only the disk.
  {
    Flusher restarted(f.net, path);
    std::shared_ptr<const shard::ShardedCorpus> reopened;
    ASSERT_TRUE(restarted.Open(&error, &reopened)) << error;
    const size_t want =
        published ? base_count + tail_count : base_count;
    EXPECT_EQ(restarted.num_sealed(), want);
    EXPECT_EQ(restarted.num_generations(),
              (with_prior_generation ? 1u : 0u) + (published ? 1u : 0u));
    ASSERT_EQ(reopened != nullptr, want > 0);
    if (reopened != nullptr) {
      EXPECT_EQ(reopened->num_trajectories(), want);
    }

    // Loss-freedom: after a pre-publication crash the recovered process
    // retries the flush (the live shard still holds the tail) and ends up
    // with everything published; after a post-publication crash everything
    // already is.
    if (!published) {
      std::shared_ptr<const shard::ShardedCorpus> retried;
      ASSERT_TRUE(restarted.Flush(*snap, &error, &retried)) << error;
      ASSERT_NE(retried, nullptr);
      EXPECT_EQ(retried->num_trajectories(), corpus.size());
    }
  }

  // Whatever the path, the final on-disk set now holds the full corpus and
  // its point queries answer from every generation.
  {
    Flusher final_open(f.net, path);
    std::shared_ptr<const shard::ShardedCorpus> full;
    ASSERT_TRUE(final_open.Open(&error, &full)) << error;
    ASSERT_NE(full, nullptr);
    ASSERT_EQ(full->num_trajectories(), corpus.size());
    for (size_t j = 0; j < corpus.size(); ++j) {
      EXPECT_FALSE(
          full->Where(j, corpus[j].times.front(), 0.0).empty())
          << "trajectory " << j;
    }
  }

  IngestFixture::Cleanup(path, 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllSteps, FlushCrashMatrix,
    ::testing::Combine(
        ::testing::Values(
            static_cast<int>(FlushStep::kBeforeArchiveWrite),
            static_cast<int>(FlushStep::kAfterArchiveWrite),
            static_cast<int>(FlushStep::kAfterManifestSwap),
            static_cast<int>(FlushStep::kBeforeHandoff)),
        ::testing::Values(0, 1)));

}  // namespace
}  // namespace utcq::ingest
