#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/plain_query.h"
#include "core/utcq.h"
#include "network/generator.h"
#include "ted/ted_compress.h"
#include "traj/generator.h"
#include "traj/profiles.h"
#include "traj/statistics.h"
#include "test_fixtures.h"

namespace utcq {
namespace {

struct ProfileFixture {
  explicit ProfileFixture(const traj::DatasetProfile& p, size_t trajectories)
      : profile(p) {
    net = test::MakeSmallCity(profile, 18);
    traj::UncertainTrajectoryGenerator gen(net, profile, 2024);
    corpus = gen.GenerateCorpus(trajectories);
  }
  traj::DatasetProfile profile;
  network::RoadNetwork net;
  traj::UncertainCorpus corpus;
};

class EndToEnd : public ::testing::TestWithParam<int> {};

TEST_P(EndToEnd, UtcqBeatsTedOnRatioAndTime) {
  const auto profiles = traj::AllProfiles();
  ProfileFixture fx(profiles[static_cast<size_t>(GetParam())], 150);

  // --- UTCQ ---
  core::UtcqParams uparams;
  uparams.default_interval_s = fx.profile.default_interval_s;
  uparams.eta_p = fx.profile.eta_p;
  uparams.num_pivots = fx.profile.name == "DK" ? 2 : 1;
  common::Stopwatch uw;
  core::UtcqCompressor ucomp(fx.net, uparams);
  const auto cc = ucomp.Compress(fx.corpus);
  const double utime = uw.ElapsedSeconds();

  // --- TED baseline ---
  ted::TedParams tparams;
  tparams.eta_p = fx.profile.eta_p;
  common::Stopwatch tw;
  ted::TedCompressor tcomp(fx.net, tparams);
  const auto tc = tcomp.Compress(fx.corpus);
  const double ttime = tw.ElapsedSeconds();
  (void)utime;
  (void)ttime;

  const auto raw = traj::MeasureRawSize(fx.net, fx.corpus);
  const double utcq_cr = static_cast<double>(raw.total()) /
                         static_cast<double>(cc.compressed_bits().total());
  const double ted_cr = static_cast<double>(raw.total()) /
                        static_cast<double>(tc.compressed_bits().total());

  // Table 8 shape: UTCQ compresses at least ~1.8x better than TED.
  EXPECT_GT(utcq_cr, ted_cr * 1.5) << fx.profile.name;
  EXPECT_GT(utcq_cr, 5.0) << fx.profile.name;

  // Component shape: SIAR beats TED's (i,t) pairs; referential T' beats
  // raw bit-strings (TED T' ratio is exactly 1).
  const double utcq_t = static_cast<double>(raw.t_bits) /
                        static_cast<double>(cc.compressed_bits().t_bits);
  const double ted_t = static_cast<double>(raw.t_bits) /
                       static_cast<double>(tc.compressed_bits().t_bits);
  EXPECT_GT(utcq_t, ted_t) << fx.profile.name;
  const double ted_tflag =
      static_cast<double>(raw.tflag_bits) /
      static_cast<double>(tc.compressed_bits().tflag_bits);
  EXPECT_DOUBLE_EQ(ted_tflag, 1.0);
  const double utcq_tflag =
      static_cast<double>(raw.tflag_bits) /
      static_cast<double>(cc.compressed_bits().tflag_bits);
  EXPECT_GT(utcq_tflag, 1.3) << fx.profile.name;

  // TED's matrix transformation dominates the memory comparison.
  EXPECT_GT(tc.peak_memory_bytes(), cc.peak_memory_bytes())
      << fx.profile.name;
}

INSTANTIATE_TEST_SUITE_P(Profiles, EndToEnd, ::testing::Values(0, 1, 2));

TEST(EndToEnd, MorePivotsImproveOrHoldCompression) {
  ProfileFixture fx(traj::HangzhouProfile(), 100);
  const auto raw = traj::MeasureRawSize(fx.net, fx.corpus);
  double prev_cr = 0.0;
  double first_cr = 0.0;
  double last_cr = 0.0;
  for (int pivots = 1; pivots <= 4; ++pivots) {
    core::UtcqParams params;
    params.default_interval_s = fx.profile.default_interval_s;
    params.eta_p = fx.profile.eta_p;
    params.num_pivots = pivots;
    core::UtcqCompressor comp(fx.net, params);
    const auto cc = comp.Compress(fx.corpus);
    const double cr = static_cast<double>(raw.total()) /
                      static_cast<double>(cc.compressed_bits().total());
    if (pivots == 1) first_cr = cr;
    last_cr = cr;
    prev_cr = cr;
  }
  (void)prev_cr;
  // Fig. 8 shape: the ratio does not degrade with more pivots.
  EXPECT_GE(last_cr, first_cr * 0.98);
}

TEST(EndToEnd, FullPipelineSmallCorpusFullFidelity) {
  ProfileFixture fx(traj::ChengduProfile(), 60);
  core::UtcqParams params;
  params.default_interval_s = fx.profile.default_interval_s;
  const network::GridIndex grid(fx.net, 16);
  const core::UtcqSystem sys(fx.net, grid, fx.corpus, params, {16, 1800});

  // Round-trip fidelity of the whole pipeline.
  const auto rebuilt = sys.decoder().DecompressAll();
  ASSERT_EQ(rebuilt.size(), fx.corpus.size());
  size_t instances = 0;
  for (size_t j = 0; j < fx.corpus.size(); ++j) {
    ASSERT_EQ(rebuilt[j].instances.size(), fx.corpus[j].instances.size());
    for (size_t w = 0; w < fx.corpus[j].instances.size(); ++w) {
      EXPECT_EQ(rebuilt[j].instances[w].path,
                fx.corpus[j].instances[w].path);
      ++instances;
    }
  }
  EXPECT_GT(instances, 100u);

  // The report is self-consistent.
  const auto& report = sys.report();
  EXPECT_GT(report.total, 1.0);
  EXPECT_EQ(report.compressed_bits, sys.compressed().total_bits());
  EXPECT_GT(sys.index_size_bytes(), 0u);
}

TEST(EndToEnd, StatisticsMatchPaperShape) {
  ProfileFixture fx(traj::DenmarkProfile(), 200);
  const auto h = traj::ComputeIntervalHistogram(
      fx.corpus, fx.profile.default_interval_s);
  EXPECT_GT(h.within_one(), 0.85);  // DK: 93% in the paper
  common::Rng rng(8);
  const auto within = traj::ComputeWithinDistances(fx.net, fx.corpus, rng);
  EXPECT_GT(within.at_most_five(), 0.7);  // 88% in the paper
}

TEST(EndToEnd, IndexSizeScalesWithPartitioning) {
  ProfileFixture fx(traj::ChengduProfile(), 80);
  core::UtcqParams params;
  params.default_interval_s = fx.profile.default_interval_s;

  const network::GridIndex g8(fx.net, 8);
  const network::GridIndex g64(fx.net, 64);
  const core::UtcqSystem coarse(fx.net, g8, fx.corpus, params, {8, 3600});
  const core::UtcqSystem fine(fx.net, g64, fx.corpus, params, {64, 600});
  // Finer grids and shorter partitions yield a larger index (Fig. 9).
  EXPECT_GT(fine.index().spatial_size_bytes(),
            coarse.index().spatial_size_bytes());
  EXPECT_GT(fine.index().temporal_size_bytes(),
            coarse.index().temporal_size_bytes());
}

}  // namespace
}  // namespace utcq
