#include <gtest/gtest.h>

#include "common/rng.h"
#include "network/generator.h"
#include "paper_example.h"
#include "ted/ted_compress.h"
#include "ted/ted_index.h"
#include "ted/ted_query.h"
#include "ted/ted_repr.h"
#include "traj/generator.h"
#include "traj/profiles.h"

namespace utcq::ted {
namespace {

TEST(TedTimePairs, PaperExampleAnchors) {
  // Intervals (240, 241, 240, 239, 240, 240) keep indexes {0,1,2,3,4,6}
  // (Section 2.2's worked example).
  const std::vector<traj::Timestamp> times = {18205, 18445, 18686, 18926,
                                              19165, 19405, 19645};
  const auto pairs = BuildTimePairs(times);
  std::vector<uint32_t> kept;
  for (const auto& [i, t] : pairs) kept.push_back(i);
  EXPECT_EQ(kept, (std::vector<uint32_t>{0, 1, 2, 3, 4, 6}));
  EXPECT_EQ(ExpandTimePairs(pairs), times);
}

TEST(TedTimePairs, ConstantIntervalKeepsTwoAnchors) {
  std::vector<traj::Timestamp> times;
  for (int i = 0; i < 20; ++i) times.push_back(100 + 10 * i);
  const auto pairs = BuildTimePairs(times);
  EXPECT_EQ(pairs.size(), 2u);
  EXPECT_EQ(ExpandTimePairs(pairs), times);
}

TEST(TedTimePairs, SingleAndEmpty) {
  EXPECT_TRUE(BuildTimePairs({}).empty());
  const auto one = BuildTimePairs({42});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(ExpandTimePairs(one), (std::vector<traj::Timestamp>{42}));
}

TEST(TedTimePairs, RandomRoundTrip) {
  common::Rng rng(44);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<traj::Timestamp> times{rng.UniformInt(0, 10000)};
    const int n = static_cast<int>(rng.UniformInt(1, 60));
    for (int i = 0; i < n; ++i) {
      times.push_back(times.back() + rng.UniformInt(1, 50));
    }
    EXPECT_EQ(ExpandTimePairs(BuildTimePairs(times)), times);
  }
}

class TedCompressModes : public ::testing::TestWithParam<bool> {};

TEST_P(TedCompressModes, RoundTripPaperExample) {
  const auto ex = test::MakePaperExample();
  const traj::UncertainCorpus corpus{ex.tu};
  TedParams params;
  params.matrix_compression = GetParam();
  TedCompressor compressor(ex.net, params);
  const TedCompressed cc = compressor.Compress(corpus);

  EXPECT_EQ(cc.DecodeTimes(0), ex.tu.times);
  for (size_t w = 0; w < 3; ++w) {
    const auto inst = cc.DecodeInstance(ex.net, 0, w);
    ASSERT_TRUE(inst.has_value()) << "instance " << w;
    EXPECT_EQ(inst->path, ex.tu.instances[w].path);
    ASSERT_EQ(inst->locations.size(), ex.tu.instances[w].locations.size());
    for (size_t i = 0; i < inst->locations.size(); ++i) {
      EXPECT_EQ(inst->locations[i].path_index,
                ex.tu.instances[w].locations[i].path_index);
      EXPECT_NEAR(inst->locations[i].rd,
                  ex.tu.instances[w].locations[i].rd, params.eta_d + 1e-12);
    }
    EXPECT_NEAR(inst->probability, ex.tu.instances[w].probability,
                params.eta_p + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(MatrixOnOff, TedCompressModes,
                         ::testing::Values(true, false));

TEST(TedCompress, MatrixModeNeverLosesToPlainOnE) {
  common::Rng net_rng(100);
  const auto profile = traj::ChengduProfile();
  network::CityParams small = profile.city;
  small.rows = 16;
  small.cols = 16;
  const auto net = network::GenerateCity(net_rng, small);
  traj::UncertainTrajectoryGenerator gen(net, profile, 71);
  const auto corpus = gen.GenerateCorpus(80);

  TedParams with_matrix;
  TedParams plain;
  plain.matrix_compression = false;
  const auto a = TedCompressor(net, with_matrix).Compress(corpus);
  const auto b = TedCompressor(net, plain).Compress(corpus);
  // Column bases can only trim bits (headers cost a little; on realistic
  // corpora the saving dominates).
  EXPECT_LE(a.compressed_bits().e_bits, b.compressed_bits().e_bits * 1.05);
  // The matrix transformation is exactly what inflates TED's working set.
  EXPECT_GT(a.peak_memory_bytes(), b.peak_memory_bytes());
}

TEST(TedCompress, RoundTripOnGeneratedCorpus) {
  common::Rng net_rng(100);
  const auto profile = traj::DenmarkProfile();
  network::CityParams small = profile.city;
  small.rows = 16;
  small.cols = 16;
  const auto net = network::GenerateCity(net_rng, small);
  traj::UncertainTrajectoryGenerator gen(net, profile, 81);
  const auto corpus = gen.GenerateCorpus(50);

  TedParams params;
  const TedCompressed cc = TedCompressor(net, params).Compress(corpus);
  for (size_t j = 0; j < corpus.size(); ++j) {
    EXPECT_EQ(cc.DecodeTimes(j), corpus[j].times);
    for (size_t w = 0; w < corpus[j].instances.size(); ++w) {
      const auto inst = cc.DecodeInstance(net, j, w);
      ASSERT_TRUE(inst.has_value()) << j << "/" << w;
      EXPECT_EQ(inst->path, corpus[j].instances[w].path);
    }
  }
}

TEST(TedIndexAndQuery, AgreesWithDirectEvaluation) {
  const auto ex = test::MakePaperExample();
  const traj::UncertainCorpus corpus{ex.tu};
  TedParams params;
  const TedCompressed cc = TedCompressor(ex.net, params).Compress(corpus);
  const network::GridIndex grid(ex.net, 8);
  const TedIndex index(ex.net, grid, cc, 900);
  const TedQueryProcessor queries(ex.net, cc, index);

  // where at 5:21:25 with alpha 0.25: only Tu^1_1 (p 0.75) qualifies.
  const auto where = queries.Where(0, 19285, 0.25);
  ASSERT_EQ(where.size(), 1u);
  EXPECT_EQ(where[0].instance, 0u);

  // alpha 0.1 admits Tu^1_2 as well.
  EXPECT_EQ(queries.Where(0, 19285, 0.1).size(), 2u);

  // when on the first corridor edge at rd 0.875 (l0's position).
  const auto when =
      queries.When(0, ex.corridor[0], 0.875, 0.0);
  ASSERT_GE(when.size(), 3u);
  for (const auto& hit : when) EXPECT_EQ(hit.t, ex.tu.times[0]);

  // range around the corridor start at the first sample time.
  const network::Rect around{100, -100, 300, 100};
  const auto range = queries.Range(around, ex.tu.times[0], 0.5);
  ASSERT_EQ(range.size(), 1u);
  EXPECT_EQ(range[0], 0u);
  // A far-away box matches nothing.
  EXPECT_TRUE(queries.Range({5000, 5000, 6000, 6000}, ex.tu.times[0], 0.5)
                  .empty());
}

TEST(TedIndex, SizeGrowsWithFinerGrid) {
  common::Rng net_rng(100);
  const auto profile = traj::ChengduProfile();
  network::CityParams small = profile.city;
  small.rows = 16;
  small.cols = 16;
  const auto net = network::GenerateCity(net_rng, small);
  traj::UncertainTrajectoryGenerator gen(net, profile, 97);
  const auto corpus = gen.GenerateCorpus(40);
  TedParams params;
  const TedCompressed cc = TedCompressor(net, params).Compress(corpus);
  const network::GridIndex g8(net, 8);
  const network::GridIndex g32(net, 32);
  const TedIndex i8(net, g8, cc, 1800);
  const TedIndex i32(net, g32, cc, 1800);
  EXPECT_GE(i32.SizeBytes(), i8.SizeBytes());
}

}  // namespace
}  // namespace utcq::ted
