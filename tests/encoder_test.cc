#include <gtest/gtest.h>

#include "archive/archive.h"
#include "common/exp_golomb.h"
#include "common/rng.h"
#include "common/varint.h"
#include "core/decoder.h"
#include "core/encoder.h"
#include "network/generator.h"
#include "paper_example.h"
#include "traj/generator.h"
#include "traj/profiles.h"
#include "test_fixtures.h"

namespace utcq::core {
namespace {

UtcqParams PaperParams() {
  UtcqParams p;
  p.default_interval_s = 240;
  p.eta_d = 1.0 / 128.0;
  p.eta_p = 1.0 / 512.0;
  p.num_pivots = 1;
  return p;
}

TEST(Encoder, PaperExampleRoundTrip) {
  const auto ex = test::MakePaperExample();
  const traj::UncertainCorpus corpus{ex.tu};
  UtcqCompressor compressor(ex.net, PaperParams());
  const CompressedCorpus cc = compressor.Compress(corpus);
  ASSERT_EQ(cc.num_trajectories(), 1u);

  UtcqDecoder decoder(ex.net, cc);
  // Times are lossless.
  EXPECT_EQ(decoder.DecodeTimes(0), ex.tu.times);

  const auto rebuilt = decoder.DecompressAll();
  ASSERT_EQ(rebuilt.size(), 1u);
  ASSERT_EQ(rebuilt[0].instances.size(), 3u);
  for (size_t w = 0; w < 3; ++w) {
    const auto& orig = ex.tu.instances[w];
    const auto& got = rebuilt[0].instances[w];
    EXPECT_EQ(got.path, orig.path) << "instance " << w;
    ASSERT_EQ(got.locations.size(), orig.locations.size());
    for (size_t i = 0; i < orig.locations.size(); ++i) {
      EXPECT_EQ(got.locations[i].path_index, orig.locations[i].path_index);
      EXPECT_NEAR(got.locations[i].rd, orig.locations[i].rd,
                  PaperParams().eta_d + 1e-12);
    }
    EXPECT_NEAR(got.probability, orig.probability,
                PaperParams().eta_p + 1e-12);
  }
}

TEST(Encoder, ReferenceSharingShrinksNonReferences) {
  const auto ex = test::MakePaperExample();
  const traj::UncertainCorpus corpus{ex.tu};
  UtcqCompressor compressor(ex.net, PaperParams());
  const CompressedCorpus cc = compressor.Compress(corpus);
  const TrajMeta& meta = cc.meta(0);
  // Example 2: Tu^1_1 is the single reference; Tu^1_2, Tu^1_3 in its Rrs.
  ASSERT_EQ(meta.refs.size(), 1u);
  EXPECT_EQ(meta.refs[0].orig_index, 0u);
  ASSERT_EQ(meta.nrefs.size(), 2u);
  // A non-reference costs far fewer bits than the reference's E block.
  const uint64_t nref_bits =
      cc.nref_stream().size_bits();  // both non-references together
  const uint64_t ref_bits = cc.ref_stream().size_bits();
  EXPECT_LT(nref_bits, ref_bits);
}

TEST(Encoder, SingleInstanceTrajectory) {
  auto ex = test::MakePaperExample();
  ex.tu.instances.resize(1);
  ex.tu.instances[0].probability = 1.0;
  const traj::UncertainCorpus corpus{ex.tu};
  UtcqCompressor compressor(ex.net, PaperParams());
  const CompressedCorpus cc = compressor.Compress(corpus);
  UtcqDecoder decoder(ex.net, cc);
  const auto rebuilt = decoder.DecompressAll();
  ASSERT_EQ(rebuilt[0].instances.size(), 1u);
  EXPECT_EQ(rebuilt[0].instances[0].path, ex.tu.instances[0].path);
}

TEST(Encoder, BracketTimePartialDecode) {
  const auto ex = test::MakePaperExample();
  const traj::UncertainCorpus corpus{ex.tu};
  UtcqCompressor compressor(ex.net, PaperParams());
  const CompressedCorpus cc = compressor.Compress(corpus);
  UtcqDecoder decoder(ex.net, cc);

  // Header in the T stream: n varint (16 bits) + 17-bit t0.
  common::BitReader r(cc.t_stream().bytes().data(),
                      cc.t_stream().size_bits());
  r.Seek(cc.meta(0).t_pos);
  common::GetVarint(r);
  r.GetBits(17);
  const uint64_t first_delta_pos = r.position();

  // 5:21:25 = 19285 sits between samples 4 (19165) and 5 (19405).
  const auto bracket =
      decoder.BracketTime(0, 19285, 0, ex.tu.times[0], first_delta_pos);
  ASSERT_TRUE(bracket.has_value());
  EXPECT_EQ(bracket->index, 4u);
  EXPECT_EQ(bracket->t0, 19165);
  EXPECT_EQ(bracket->t1, 19405);

  // Exactly at a sample.
  const auto at_sample =
      decoder.BracketTime(0, 18445, 0, ex.tu.times[0], first_delta_pos);
  ASSERT_TRUE(at_sample.has_value());
  EXPECT_LE(at_sample->t0, 18445);
  EXPECT_GE(at_sample->t1, 18445);

  // Outside the span.
  EXPECT_FALSE(decoder.BracketTime(0, 18204, 0, ex.tu.times[0],
                                   first_delta_pos)
                   .has_value());
  EXPECT_FALSE(decoder.BracketTime(0, 99999, 0, ex.tu.times[0],
                                   first_delta_pos)
                   .has_value());
}

class EncoderProfileRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(EncoderProfileRoundTrip, LosslessButForQuantization) {
  const auto profiles = traj::AllProfiles();
  const auto& profile = profiles[static_cast<size_t>(GetParam())];
  const auto net = test::MakeSmallCity(profile, 16);
  traj::UncertainTrajectoryGenerator gen(net, profile, 51);
  const auto corpus = gen.GenerateCorpus(60);

  UtcqParams params;
  params.default_interval_s = profile.default_interval_s;
  params.eta_p = profile.eta_p;
  params.num_pivots = profile.name == "DK" ? 2 : 1;
  UtcqCompressor compressor(net, params);
  const CompressedCorpus cc = compressor.Compress(corpus);
  UtcqDecoder decoder(net, cc);
  const auto rebuilt = decoder.DecompressAll();

  ASSERT_EQ(rebuilt.size(), corpus.size());
  for (size_t j = 0; j < corpus.size(); ++j) {
    EXPECT_EQ(rebuilt[j].times, corpus[j].times) << "traj " << j;
    ASSERT_EQ(rebuilt[j].instances.size(), corpus[j].instances.size());
    for (size_t w = 0; w < corpus[j].instances.size(); ++w) {
      const auto& orig = corpus[j].instances[w];
      const auto& got = rebuilt[j].instances[w];
      // Paths and location structure are lossless.
      ASSERT_EQ(got.path, orig.path) << "traj " << j << " inst " << w;
      ASSERT_EQ(got.locations.size(), orig.locations.size());
      for (size_t i = 0; i < orig.locations.size(); ++i) {
        EXPECT_EQ(got.locations[i].path_index, orig.locations[i].path_index);
        // Same-edge monotonicity clamping can add at most one more eta.
        EXPECT_NEAR(got.locations[i].rd, orig.locations[i].rd,
                    2 * params.eta_d + 1e-12);
      }
      EXPECT_NEAR(got.probability, orig.probability, params.eta_p + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, EncoderProfileRoundTrip,
                         ::testing::Values(0, 1, 2));

TEST(Encoder, CompressedSmallerThanRaw) {
  common::Rng net_rng(100);
  const auto profile = traj::ChengduProfile();
  network::CityParams small = profile.city;
  small.rows = 16;
  small.cols = 16;
  const auto net = network::GenerateCity(net_rng, small);
  traj::UncertainTrajectoryGenerator gen(net, profile, 61);
  const auto corpus = gen.GenerateCorpus(120);

  UtcqParams params;
  params.default_interval_s = profile.default_interval_s;
  UtcqCompressor compressor(net, params);
  const CompressedCorpus cc = compressor.Compress(corpus);
  const auto raw = traj::MeasureRawSize(net, corpus);
  EXPECT_LT(cc.total_bits(), raw.total() / 4)
      << "expected a compression ratio well above 4";
  // Component accounting matches the stream totals.
  const auto& bits = cc.compressed_bits();
  EXPECT_EQ(bits.total(), cc.total_bits());
}

TEST(Encoder, IncrementalAppendEqualsBatchBitExactly) {
  // The streaming live shard grows its corpus one AppendTrajectory at a
  // time; the whole stream-then-flush == batch guarantee reduces to this:
  // Begin + Append* produces the very bytes Compress does.
  common::Rng net_rng(404);
  const auto profile = traj::ChengduProfile();
  network::CityParams city = profile.city;
  city.rows = 10;
  city.cols = 10;
  const network::RoadNetwork net = network::GenerateCity(net_rng, city);
  traj::UncertainTrajectoryGenerator gen(net, profile, 12);
  const traj::UncertainCorpus corpus = gen.GenerateCorpus(30);

  UtcqParams params = PaperParams();
  params.default_interval_s = profile.default_interval_s;
  const UtcqCompressor compressor(net, params);

  std::vector<std::vector<NrefFactorLayout>> batch_layouts;
  const CompressedCorpus batch = compressor.Compress(corpus, &batch_layouts);

  CompressedCorpus incr = compressor.Begin();
  std::vector<std::vector<NrefFactorLayout>> incr_layouts;
  for (const traj::UncertainTrajectory& tu : corpus) {
    incr_layouts.emplace_back();
    compressor.AppendTrajectory(tu, &incr, &incr_layouts.back());
  }

  EXPECT_EQ(batch.t_stream().size_bits(), incr.t_stream().size_bits());
  EXPECT_EQ(batch.t_stream().bytes(), incr.t_stream().bytes());
  EXPECT_EQ(batch.ref_stream().size_bits(), incr.ref_stream().size_bits());
  EXPECT_EQ(batch.ref_stream().bytes(), incr.ref_stream().bytes());
  EXPECT_EQ(batch.nref_stream().size_bits(), incr.nref_stream().size_bits());
  EXPECT_EQ(batch.nref_stream().bytes(), incr.nref_stream().bytes());
  EXPECT_EQ(batch.structure_stream().size_bits(),
            incr.structure_stream().size_bits());
  EXPECT_EQ(batch.structure_stream().bytes(),
            incr.structure_stream().bytes());
  EXPECT_EQ(batch.num_trajectories(), incr.num_trajectories());
  EXPECT_EQ(batch.compressed_bits().total(), incr.compressed_bits().total());

  ASSERT_EQ(batch_layouts.size(), incr_layouts.size());
  for (size_t j = 0; j < batch_layouts.size(); ++j) {
    ASSERT_EQ(batch_layouts[j].size(), incr_layouts[j].size()) << j;
    for (size_t k = 0; k < batch_layouts[j].size(); ++k) {
      EXPECT_EQ(batch_layouts[j][k].factor_entry_start,
                incr_layouts[j][k].factor_entry_start);
      EXPECT_EQ(batch_layouts[j][k].factor_bit_offset,
                incr_layouts[j][k].factor_bit_offset);
    }
  }

  // Metas and params included: the serialized archives agree byte for byte.
  EXPECT_EQ(archive::ArchiveWriter(batch).Serialize(),
            archive::ArchiveWriter(incr).Serialize());
}

// Bit position of trajectory j's first T delta (header skipped) — the
// start state of the StIU's first temporal tuple.
uint64_t FirstDeltaPos(const CompressedCorpus& cc, size_t j) {
  common::BitReader r(cc.t_stream().bytes().data(),
                      cc.t_stream().size_bits());
  r.Seek(cc.meta(j).t_pos);
  common::GetVarint(r);
  r.GetBits(17);
  return r.position();
}

TEST(Encoder, BracketBoundariesPinnedAtSamples) {
  // §16 boundary contract, pinned on the paper example's known times: a
  // query exactly at sample k brackets at {k-1, t_{k-1}, t_k} (at
  // {0, t_0, t_1} for k == 0), identically on the bitstream-scan path and
  // the expanded-times path, with or without a sync table.
  const auto ex = test::MakePaperExample();
  const traj::UncertainCorpus corpus{ex.tu};
  for (const uint32_t sync_k : {0u, 2u}) {
    UtcqParams params = PaperParams();
    params.t_sync_interval = sync_k;
    UtcqCompressor compressor(ex.net, params);
    const CompressedCorpus cc = compressor.Compress(corpus);
    UtcqDecoder decoder(ex.net, cc);
    const auto times = decoder.DecodeTimes(0);
    ASSERT_EQ(times, ex.tu.times);
    const uint64_t first_delta = FirstDeltaPos(cc, 0);
    const uint32_t n = cc.meta(0).n_points;

    for (uint32_t k = 0; k < n; ++k) {
      UtcqDecoder::SeekStats seek;
      const auto via_stream = decoder.BracketTime(0, times[k], 0, times[0],
                                                  first_delta, &seek);
      const auto via_times =
          UtcqDecoder::BracketInTimes(times, n, times[k], 0, times[0]);
      ASSERT_TRUE(via_stream.has_value()) << "K=" << sync_k << " k=" << k;
      ASSERT_TRUE(via_times.has_value());
      const uint32_t expect = k == 0 ? 0 : k - 1;
      EXPECT_EQ(via_stream->index, expect) << "K=" << sync_k << " k=" << k;
      EXPECT_EQ(via_stream->t0, times[expect]);
      EXPECT_EQ(via_stream->t1, times[expect + 1]);
      EXPECT_EQ(via_times->index, via_stream->index);
      EXPECT_EQ(via_times->t0, via_stream->t0);
      EXPECT_EQ(via_times->t1, via_stream->t1);
    }
    // Outside the span on both sides.
    EXPECT_FALSE(decoder.BracketTime(0, times.front() - 1, 0, times[0],
                                     first_delta)
                     .has_value());
    EXPECT_FALSE(decoder.BracketTime(0, times.back() + 1, 0, times[0],
                                     first_delta)
                     .has_value());
    EXPECT_FALSE(UtcqDecoder::BracketInTimes(times, n, times.back() + 1, 0,
                                             times[0])
                     .has_value());
  }
}

TEST(Encoder, SyncSeekBracketsMatchFullScanEverywhere) {
  // K=2 corpus: nearly every bracket start upgrades through the sync
  // table. The seek path must agree with the expanded-times scan for every
  // probe — every sample time (the equality boundary the strict
  // `sync.t < t` comparison protects), every midpoint, and both
  // out-of-span sides — and the sweep must actually take seeks.
  common::Rng net_rng(100);
  const auto profile = traj::ChengduProfile();
  network::CityParams small = profile.city;
  small.rows = 16;
  small.cols = 16;
  const auto net = network::GenerateCity(net_rng, small);
  traj::UncertainTrajectoryGenerator gen(net, profile, 61);
  const auto corpus = gen.GenerateCorpus(40);

  UtcqParams params;
  params.default_interval_s = profile.default_interval_s;
  params.t_sync_interval = 2;
  UtcqCompressor compressor(net, params);
  const CompressedCorpus cc = compressor.Compress(corpus);
  UtcqDecoder decoder(net, cc);

  uint64_t seeks = 0;
  for (size_t j = 0; j < cc.num_trajectories(); ++j) {
    const TrajMeta& meta = cc.meta(j);
    const auto times = decoder.DecodeTimes(j);
    ASSERT_EQ(times.size(), meta.n_points);
    std::vector<traj::Timestamp> probes;
    for (size_t i = 0; i < times.size(); ++i) {
      probes.push_back(times[i]);
      if (i + 1 < times.size() && times[i + 1] > times[i] + 1) {
        probes.push_back(times[i] + (times[i + 1] - times[i]) / 2);
      }
    }
    probes.push_back(times.front() - 1);
    probes.push_back(times.back() + 1);

    const uint64_t first_delta = FirstDeltaPos(cc, j);
    for (const traj::Timestamp t : probes) {
      UtcqDecoder::SeekStats seek;
      const auto via_seek =
          decoder.BracketTime(j, t, 0, times.front(), first_delta, &seek);
      const auto via_scan =
          UtcqDecoder::BracketInTimes(times, meta.n_points, t, 0,
                                      times.front());
      seeks += seek.sync_seeks;
      ASSERT_EQ(via_seek.has_value(), via_scan.has_value())
          << "traj " << j << " t=" << t;
      if (via_seek.has_value()) {
        EXPECT_EQ(via_seek->index, via_scan->index)
            << "traj " << j << " t=" << t;
        EXPECT_EQ(via_seek->t0, via_scan->t0);
        EXPECT_EQ(via_seek->t1, via_scan->t1);
      }
    }
  }
  EXPECT_GT(seeks, 0u) << "the sweep never took the seek upgrade";
}

TEST(Encoder, DecodeRangeIntoMatchesFullDecode) {
  common::Rng net_rng(100);
  const auto profile = traj::ChengduProfile();
  network::CityParams small = profile.city;
  small.rows = 16;
  small.cols = 16;
  const auto net = network::GenerateCity(net_rng, small);
  traj::UncertainTrajectoryGenerator gen(net, profile, 77);
  const auto corpus = gen.GenerateCorpus(20);

  UtcqParams params;
  params.default_interval_s = profile.default_interval_s;
  params.t_sync_interval = 2;
  UtcqCompressor compressor(net, params);
  const CompressedCorpus cc = compressor.Compress(corpus);
  UtcqDecoder decoder(net, cc);

  std::vector<traj::Timestamp> window;
  uint64_t tail_seeks = 0;
  for (size_t j = 0; j < cc.num_trajectories(); ++j) {
    std::vector<traj::Timestamp> full;
    const uint64_t full_bits = decoder.DecodeTimesInto(j, &full);
    ASSERT_GT(full_bits, 0u);
    const uint32_t n = static_cast<uint32_t>(full.size());

    // Every window shape: full span, singletons at both ends, interior.
    const std::pair<uint32_t, uint32_t> windows[] = {
        {0, n - 1}, {0, 0}, {n - 1, n - 1}, {n / 2, n - 1}, {n / 3, n / 2}};
    for (const auto& [first, last] : windows) {
      if (first > last) continue;
      UtcqDecoder::SeekStats seek;
      const uint64_t bits = decoder.DecodeRangeInto(j, first, last, &window,
                                                    &seek);
      ASSERT_EQ(window.size(), size_t{last - first + 1})
          << "traj " << j << " [" << first << "," << last << "]";
      for (uint32_t i = first; i <= last; ++i) {
        ASSERT_EQ(window[i - first], full[i]) << "traj " << j << " i=" << i;
      }
      EXPECT_LE(bits, full_bits);
      // A tail window past the first sync point must skip the prefix.
      if (first >= 2 && n > 4) {
        EXPECT_LT(bits, full_bits) << "traj " << j << " first=" << first;
        tail_seeks += seek.sync_seeks;
      }
    }

    // Clamping and degenerate inputs.
    EXPECT_EQ(decoder.DecodeRangeInto(j, n, n + 5, &window), 0u);
    EXPECT_TRUE(window.empty());
    const uint64_t clamped = decoder.DecodeRangeInto(j, 0, n + 100, &window);
    EXPECT_GT(clamped, 0u);
    EXPECT_EQ(window.size(), full.size());
    EXPECT_EQ(window, full);
  }
  EXPECT_GT(tail_seeks, 0u) << "tail windows never started from a sync";
}

TEST(Encoder, SyncTablesMatchStreamPositions) {
  // Each recorded sync must restate exactly what a scan from the block
  // start knows when it has expanded `entry` entries: the accumulated
  // timestamp and the reader's bit position. K on/off must not change the
  // stream bytes (syncs live in the metas only).
  common::Rng net_rng(404);
  const auto profile = traj::ChengduProfile();
  network::CityParams city = profile.city;
  city.rows = 10;
  city.cols = 10;
  const auto net = network::GenerateCity(net_rng, city);
  traj::UncertainTrajectoryGenerator gen(net, profile, 12);
  const auto corpus = gen.GenerateCorpus(30);

  UtcqParams params = PaperParams();
  params.default_interval_s = profile.default_interval_s;
  params.t_sync_interval = 4;
  UtcqCompressor with_syncs(net, params);
  const CompressedCorpus cc = with_syncs.Compress(corpus);
  params.t_sync_interval = 0;
  UtcqCompressor without(net, params);
  const CompressedCorpus plain = without.Compress(corpus);

  EXPECT_EQ(cc.t_stream().bytes(), plain.t_stream().bytes());
  EXPECT_EQ(cc.t_stream().size_bits(), plain.t_stream().size_bits());

  UtcqDecoder decoder(net, cc);
  size_t total_syncs = 0;
  for (size_t j = 0; j < cc.num_trajectories(); ++j) {
    const TrajMeta& meta = cc.meta(j);
    EXPECT_TRUE(plain.meta(j).t_syncs.empty());
    const auto times = decoder.DecodeTimes(j);
    common::BitReader r(cc.t_stream().bytes().data(),
                        cc.t_stream().size_bits());
    r.Seek(meta.t_pos);
    common::GetVarint(r);
    r.GetBits(17);
    uint32_t entry = 0;
    size_t next_sync = 0;
    while (entry + 1 < meta.n_points && next_sync < meta.t_syncs.size()) {
      common::GetImprovedExpGolomb(r);
      ++entry;
      const TSync& s = meta.t_syncs[next_sync];
      if (s.entry != entry) continue;
      EXPECT_EQ(s.t, times[entry]) << "traj " << j << " entry " << entry;
      EXPECT_EQ(s.bit, r.position()) << "traj " << j << " entry " << entry;
      EXPECT_EQ(entry % 4, 0u);
      EXPECT_LT(entry + 1, meta.n_points);
      ++next_sync;
      ++total_syncs;
    }
    EXPECT_EQ(next_sync, meta.t_syncs.size()) << "traj " << j;
  }
  EXPECT_GT(total_syncs, 0u);
}

TEST(Encoder, MorePivotsNeverCrash) {
  const auto ex = test::MakePaperExample();
  const traj::UncertainCorpus corpus{ex.tu};
  for (int pivots = 1; pivots <= 5; ++pivots) {
    UtcqParams params = PaperParams();
    params.num_pivots = pivots;
    UtcqCompressor compressor(ex.net, params);
    const CompressedCorpus cc = compressor.Compress(corpus);
    UtcqDecoder decoder(ex.net, cc);
    EXPECT_EQ(decoder.DecompressAll()[0].instances[0].path,
              ex.tu.instances[0].path);
  }
}

}  // namespace
}  // namespace utcq::core
