// Behavioural pinning of the persistent work-stealing pool (DESIGN.md §12):
// exactly-once index coverage, nesting, zero-worker degradation, drain-
// before-join shutdown, and many external threads sharing one pool. The
// strategy-matrix ctest pass reruns this file under every kernel tier, and
// the TSan CI job runs it under ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace utcq::common {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, 4, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, FreeParallelForRunsOnSharedPool) {
  constexpr size_t kN = 2000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(kN, 0, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, NestedParallelForCompletes) {
  // A worker running an outer task issues its own inner loop. The caller
  // of each loop participates in that loop, so this must terminate even
  // when every worker is already busy with outer tasks.
  ThreadPool pool(2);
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 64;
  std::atomic<size_t> total{0};
  pool.ParallelFor(kOuter, 4, [&](size_t) {
    pool.ParallelFor(kInner, 4, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), kOuter * kInner);
}

TEST(ThreadPool, ZeroWorkerPoolRunsEverythingInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);
  const auto caller = std::this_thread::get_id();
  std::atomic<int> ran{0};
  pool.Submit([&] {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 1);  // inline: done before Submit returned
  pool.ParallelFor(100, 8, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 101);
}

TEST(ThreadPool, DestructorDrainsSubmittedTasks) {
  // Everything submitted before destruction begins still runs: the dtor
  // drains, then joins.
  std::atomic<int> ran{0};
  constexpr int kTasks = 200;
  {
    ThreadPool pool(3);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPool, ManyExternalThreadsShareOnePool) {
  // The serving shape: concurrent batch executors all fanning out through
  // the same pool. Each caller participates in its own loop, so progress
  // never depends on a worker being free.
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr size_t kN = 800;
  std::vector<std::atomic<size_t>> sums(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < 5; ++round) {
        pool.ParallelFor(kN, 3, [&](size_t i) {
          sums[c].fetch_add(i, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  constexpr size_t kWant = 5 * (kN * (kN - 1)) / 2;
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(sums[c].load(), kWant) << "caller " << c;
  }
}

TEST(ThreadPool, SubmitFromWorkerUsesOwnQueue) {
  // A task submitted from inside a worker lands on that worker's deque and
  // still runs (LIFO locally or stolen); the pool drains it by destruction.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    pool.ParallelFor(8, 3, [&](size_t) {
      pool.Submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, TaskSubmittedDuringDestructorDrainStillRuns) {
  // The dtor drains before joining, and a draining task may legally submit
  // a follow-up (it was "submitted before destruction" transitively — the
  // worker that runs it is still in its scavenging loop). Both generations
  // must have run by the time the dtor returns.
  std::atomic<int> first{0};
  std::atomic<int> followup{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] {
        first.fetch_add(1, std::memory_order_relaxed);
        pool.Submit(
            [&] { followup.fetch_add(1, std::memory_order_relaxed); });
      });
    }
    // Destruction begins here, very likely while tasks are still queued.
  }
  EXPECT_EQ(first.load(), 50);
  EXPECT_EQ(followup.load(), 50);
}

TEST(ThreadPool, ReentrantSubmitChainFromWorkerCompletes) {
  // A task submitted from a worker may itself submit from that worker, and
  // so on: the chain lands on the worker's own deque (LIFO) and the whole
  // depth must drain before the dtor joins.
  constexpr int kDepth = 64;
  std::atomic<int> ran{0};
  {
    // Declared before the pool: the dtor drains tasks that call back into
    // chain, so chain must outlive the pool.
    std::function<void(ThreadPool&, int)> chain = [&](ThreadPool& pool,
                                                      int depth) {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (depth + 1 < kDepth) {
        pool.Submit([&chain, &pool, depth] { chain(pool, depth + 1); });
      }
    };
    ThreadPool pool(2);
    pool.Submit([&chain, &pool] { chain(pool, 0); });
  }
  EXPECT_EQ(ran.load(), kDepth);
}

TEST(ThreadPool, ZeroWorkerPoolHandlesReentrancyAndNesting) {
  // The inline degradation path must survive the same shapes the threaded
  // path does: re-entrant Submit (runs inline, depth-first) and nested
  // ParallelFor, all on the caller's thread.
  ThreadPool pool(0);
  const auto caller = std::this_thread::get_id();
  std::atomic<int> ran{0};
  std::function<void(int)> chain = [&](int depth) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ran.fetch_add(1, std::memory_order_relaxed);
    if (depth + 1 < 16) {
      pool.Submit([&, depth] { chain(depth + 1); });
    }
  };
  pool.Submit([&] { chain(0); });
  EXPECT_EQ(ran.load(), 16);  // inline: whole chain done before return
  std::atomic<size_t> total{0};
  pool.ParallelFor(8, 4, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    pool.ParallelFor(8, 4, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64u);
}

TEST(ThreadPool, EffectiveThreadsNeverBelowOneAndClampsToN) {
  // Hardware width varies across hosts; only the host-independent clamps
  // are pinned here.
  EXPECT_EQ(EffectiveThreads(0, 8), 1u);
  EXPECT_EQ(EffectiveThreads(1, 8), 1u);
  EXPECT_LE(EffectiveThreads(3, 8), 3u);
  EXPECT_GE(EffectiveThreads(3, 8), 1u);
  EXPECT_GE(EffectiveThreads(100, 0), 1u);
}

}  // namespace
}  // namespace utcq::common
