#include <gtest/gtest.h>

#include "common/rng.h"
#include "network/csv_io.h"
#include "network/generator.h"
#include "network/geometry.h"
#include "network/grid_index.h"
#include "network/road_network.h"

namespace utcq::network {
namespace {

TEST(RoadNetwork, OutgoingEdgeNumbersAreOneBasedInsertionOrder) {
  RoadNetwork net;
  const auto a = net.AddVertex(0, 0);
  const auto b = net.AddVertex(1, 0);
  const auto c = net.AddVertex(0, 1);
  const auto e1 = net.AddEdge(a, b);
  const auto e2 = net.AddEdge(a, c);
  EXPECT_EQ(net.edge(e1).out_number, 1u);
  EXPECT_EQ(net.edge(e2).out_number, 2u);
  EXPECT_EQ(net.OutEdge(a, 1), e1);
  EXPECT_EQ(net.OutEdge(a, 2), e2);
  EXPECT_EQ(net.OutEdge(a, 3), kInvalidEdge);
  EXPECT_EQ(net.OutEdge(a, 0), kInvalidEdge);
  EXPECT_EQ(net.max_out_degree(), 2u);
}

TEST(RoadNetwork, EdgeNumberBitsCoverRepeatMarkerAndMaxDegree) {
  RoadNetwork net;
  const auto a = net.AddVertex(0, 0);
  std::vector<VertexId> outs;
  for (int i = 0; i < 8; ++i) outs.push_back(net.AddVertex(i + 1.0, 0));
  for (const auto v : outs) net.AddEdge(a, v);
  // Entries take values 0..8 (0 is the repeat marker): 4 bits are needed.
  EXPECT_EQ(net.max_out_degree(), 8u);
  EXPECT_GE(net.edge_number_bits(), 4);
}

TEST(RoadNetwork, EuclideanLengthDefault) {
  RoadNetwork net;
  const auto a = net.AddVertex(0, 0);
  const auto b = net.AddVertex(3, 4);
  const auto e = net.AddEdge(a, b);
  EXPECT_DOUBLE_EQ(net.edge(e).length, 5.0);
  const auto f = net.AddEdge(b, a, 42.0);
  EXPECT_DOUBLE_EQ(net.edge(f).length, 42.0);
}

TEST(RoadNetwork, ShortestPathOnChain) {
  RoadNetwork net;
  std::vector<VertexId> vs;
  for (int i = 0; i < 5; ++i) vs.push_back(net.AddVertex(i * 10.0, 0));
  std::vector<EdgeId> chain;
  for (int i = 0; i < 4; ++i) chain.push_back(net.AddEdge(vs[i], vs[i + 1]));
  const auto path = net.ShortestPath(vs[0], vs[4], 1000.0);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, chain);
  EXPECT_DOUBLE_EQ(net.ShortestPathCost(vs[0], vs[4], 1000.0), 40.0);
}

TEST(RoadNetwork, ShortestPathRespectsBudget) {
  RoadNetwork net;
  const auto a = net.AddVertex(0, 0);
  const auto b = net.AddVertex(100, 0);
  net.AddEdge(a, b);
  EXPECT_FALSE(net.ShortestPath(a, b, 50.0).has_value());
  EXPECT_TRUE(net.ShortestPath(a, b, 150.0).has_value());
}

TEST(RoadNetwork, ShortestPathPicksCheaperRoute) {
  RoadNetwork net;
  const auto a = net.AddVertex(0, 0);
  const auto b = net.AddVertex(10, 0);
  const auto c = net.AddVertex(5, 5);
  net.AddEdge(a, b, 100.0);           // direct but expensive
  const auto e1 = net.AddEdge(a, c, 10.0);
  const auto e2 = net.AddEdge(c, b, 10.0);
  const auto path = net.ShortestPath(a, b, 1000.0);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<EdgeId>{e1, e2}));
}

TEST(RoadNetwork, PointOnEdgeInterpolates) {
  RoadNetwork net;
  const auto a = net.AddVertex(0, 0);
  const auto b = net.AddVertex(100, 0);
  const auto e = net.AddEdge(a, b);
  const Vertex mid = net.PointOnEdge(e, 50.0);
  EXPECT_DOUBLE_EQ(mid.x, 50.0);
  EXPECT_DOUBLE_EQ(mid.y, 0.0);
}

TEST(Generator, CityHasExpectedOutDegreeRange) {
  common::Rng rng(11);
  CityParams params;
  params.rows = 20;
  params.cols = 20;
  const RoadNetwork net = GenerateCity(rng, params);
  EXPECT_GT(net.num_vertices(), 300u);
  EXPECT_GT(net.average_out_degree(), 1.8);
  EXPECT_LT(net.average_out_degree(), 3.6);
}

TEST(Generator, RingRadialConnected) {
  common::Rng rng(3);
  const RoadNetwork net = GenerateRingRadial(rng, 3, 8, 100.0);
  EXPECT_EQ(net.num_vertices(), 1u + 3 * 8);
  // Center reaches an outer-ring vertex.
  EXPECT_TRUE(net.ShortestPath(0, net.num_vertices() - 1, 5000.0).has_value());
}

TEST(GridIndex, RegionOfCornersAndCenter) {
  RoadNetwork net;
  net.AddVertex(0, 0);
  net.AddVertex(100, 100);
  net.AddEdge(0, 1);
  const GridIndex grid(net, 4);
  EXPECT_EQ(grid.num_regions(), 16u);
  EXPECT_EQ(grid.RegionOf(1, 1), 0u);
  EXPECT_EQ(grid.RegionOf(99, 99), 15u);
  // Points outside clamp to border cells.
  EXPECT_EQ(grid.RegionOf(-50, -50), 0u);
  EXPECT_EQ(grid.RegionOf(500, 500), 15u);
}

TEST(GridIndex, EdgeSpansMultipleRegions) {
  RoadNetwork net;
  net.AddVertex(5, 5);
  net.AddVertex(95, 5);
  const auto e = net.AddEdge(0, 1);
  net.AddVertex(5, 95);  // stretch the bbox to 2D
  net.AddVertex(95, 95);
  net.AddEdge(2, 3);
  const GridIndex grid(net, 4);
  const auto& regions = grid.RegionsOfEdge(e);
  EXPECT_EQ(regions.size(), 4u);  // bottom row, left to right
  for (const auto re : regions) {
    const auto& edges = grid.EdgesInRegion(re);
    EXPECT_NE(std::find(edges.begin(), edges.end(), e), edges.end());
  }
}

TEST(GridIndex, EdgesNearFindsProjection) {
  RoadNetwork net;
  net.AddVertex(0, 0);
  net.AddVertex(100, 0);
  net.AddVertex(0, 80);
  net.AddVertex(100, 80);
  const auto low = net.AddEdge(0, 1);
  const auto high = net.AddEdge(2, 3);
  const GridIndex grid(net, 8);
  const auto near_low = grid.EdgesNear(50, 5, 10.0);
  ASSERT_EQ(near_low.size(), 1u);
  EXPECT_EQ(near_low[0], low);
  const auto near_both = grid.EdgesNear(50, 40, 45.0);
  EXPECT_EQ(near_both.size(), 2u);
  double offset = 0.0;
  EXPECT_NEAR(grid.DistanceToEdge(50, 5, low, &offset), 5.0, 1e-9);
  EXPECT_NEAR(offset, 50.0, 1e-9);
  EXPECT_NEAR(grid.DistanceToEdge(50, 40, high, &offset), 40.0, 1e-9);
}

TEST(GridIndex, RegionsInRect) {
  RoadNetwork net;
  net.AddVertex(0, 0);
  net.AddVertex(100, 100);
  net.AddEdge(0, 1);
  const GridIndex grid(net, 4);
  const auto regions = grid.RegionsInRect({10, 10, 40, 40});
  EXPECT_EQ(regions.size(), 4u);  // cells (0,0),(1,0),(0,1),(1,1)
  const auto all = grid.RegionsInRect({-10, -10, 200, 200});
  EXPECT_EQ(all.size(), 16u);
}

TEST(Geometry, SegmentInsideRect) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(SegmentInsideRect(1, 1, 9, 9, r));
  EXPECT_FALSE(SegmentInsideRect(1, 1, 11, 9, r));
}

TEST(Geometry, SegmentIntersectsRect) {
  const Rect r{0, 0, 10, 10};
  // Crossing without endpoints inside.
  EXPECT_TRUE(SegmentIntersectsRect(-5, 5, 15, 5, r));
  // Corner clip.
  EXPECT_TRUE(SegmentIntersectsRect(-1, 5, 5, 11, r));
  // Fully outside.
  EXPECT_FALSE(SegmentIntersectsRect(-5, -5, -1, 20, r));
  EXPECT_FALSE(SegmentIntersectsRect(11, 0, 20, 10, r));
  // Endpoint inside.
  EXPECT_TRUE(SegmentIntersectsRect(5, 5, 50, 50, r));
}

TEST(Geometry, SegmentsIntersectCollinearAndCrossing) {
  EXPECT_TRUE(SegmentsIntersect(0, 0, 10, 10, 0, 10, 10, 0));
  EXPECT_FALSE(SegmentsIntersect(0, 0, 1, 1, 5, 5, 6, 6));
  EXPECT_TRUE(SegmentsIntersect(0, 0, 10, 0, 5, 0, 15, 0));  // collinear touch
}

TEST(CsvIo, SaveLoadRoundTrip) {
  common::Rng rng(17);
  CityParams params;
  params.rows = 6;
  params.cols = 6;
  const RoadNetwork net = GenerateCity(rng, params);
  const std::string prefix = ::testing::TempDir() + "/utcq_net";
  ASSERT_TRUE(SaveCsv(net, prefix));
  const auto loaded = LoadCsv(prefix);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->num_vertices(), net.num_vertices());
  ASSERT_EQ(loaded->num_edges(), net.num_edges());
  for (EdgeId e = 0; e < net.num_edges(); ++e) {
    EXPECT_EQ(loaded->edge(e).from, net.edge(e).from);
    EXPECT_EQ(loaded->edge(e).to, net.edge(e).to);
    EXPECT_DOUBLE_EQ(loaded->edge(e).length, net.edge(e).length);
    EXPECT_EQ(loaded->edge(e).out_number, net.edge(e).out_number);
  }
}

TEST(CsvIo, LoadMissingFilesFails) {
  EXPECT_FALSE(LoadCsv("/nonexistent/path/prefix").has_value());
}

}  // namespace
}  // namespace utcq::network
