// Query-serving layer: the engine must be result-identical to the uncached
// processors under every cache state — cold, warm, thrashing at tiny byte
// budgets, and hammered concurrently — and the batched API must equal
// one-at-a-time execution exactly.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/utcq.h"
#include "network/generator.h"
#include "serve/decoded_cache.h"
#include "serve/query_engine.h"
#include "shard/sharded.h"
#include "ted/ted_compress.h"
#include "ted/ted_index.h"
#include "ted/ted_query.h"
#include "traj/generator.h"
#include "traj/profiles.h"
#include "test_fixtures.h"

namespace utcq::serve {
namespace {

struct ServeFixture {
  ServeFixture() {
    const auto profile = traj::ChengduProfile();
    net = test::MakeSmallCity(profile, 14);
    traj::UncertainTrajectoryGenerator gen(net, profile, 777);
    corpus = gen.GenerateCorpus(50);
    grid = std::make_unique<network::GridIndex>(net, 16);
    params.default_interval_s = profile.default_interval_s;
    sys = std::make_unique<core::UtcqSystem>(net, *grid, corpus, params,
                                             core::StiuParams{16, 900});
  }

  /// A deterministic mixed query workload over the fixture corpus.
  std::vector<QueryRequest> MakeWorkload(size_t count, uint64_t seed) const {
    std::vector<QueryRequest> reqs;
    common::Rng rng(seed);
    const auto bbox = net.bounding_box();
    for (size_t i = 0; i < count; ++i) {
      const auto j =
          static_cast<uint32_t>(rng.UniformInt(0, corpus.size() - 1));
      const auto& tu = corpus[j];
      const double alpha = rng.Uniform(0.1, 0.6);
      switch (rng.UniformInt(0, 2)) {
        case 0:
          reqs.push_back(QueryRequest::MakeWhere(
              j, rng.UniformInt(tu.times.front(), tu.times.back()), alpha));
          break;
        case 1: {
          const auto& path = tu.instances.front().path;
          reqs.push_back(QueryRequest::MakeWhen(
              j, path[rng.UniformInt(0, path.size() - 1)],
              rng.Uniform(0.0, 1.0), alpha));
          break;
        }
        default: {
          const double cx = rng.Uniform(bbox.min_x, bbox.max_x);
          const double cy = rng.Uniform(bbox.min_y, bbox.max_y);
          const double half = rng.Uniform(200.0, 900.0);
          reqs.push_back(QueryRequest::MakeRange(
              {cx - half, cy - half, cx + half, cy + half},
              rng.UniformInt(tu.times.front(), tu.times.back()), alpha));
          break;
        }
      }
    }
    return reqs;
  }

  /// Ground truth: the uncached processor's answer.
  QueryResult Uncached(const QueryRequest& req) const {
    QueryResult expected;
    expected.kind = req.kind;
    switch (req.kind) {
      case QueryKind::kWhere:
        expected.where = sys->queries().Where(req.traj, req.t, req.alpha);
        break;
      case QueryKind::kWhen:
        expected.when =
            sys->queries().When(req.traj, req.edge, req.rd, req.alpha);
        break;
      case QueryKind::kRange:
        expected.range = sys->queries().Range(req.region, req.t, req.alpha);
        break;
    }
    return expected;
  }

  static bool SameResult(const QueryResult& a, const QueryResult& b) {
    return a.where == b.where && a.when == b.when && a.range == b.range;
  }

  network::RoadNetwork net;
  traj::UncertainCorpus corpus;
  std::unique_ptr<network::GridIndex> grid;
  core::UtcqParams params;
  std::unique_ptr<core::UtcqSystem> sys;
};

ServeFixture& Fixture() {
  static ServeFixture* fixture = new ServeFixture();
  return *fixture;
}

TEST(DecodedTrajCache, LruEvictsLeastRecentlyUsed) {
  // Single cache shard so the eviction order is fully deterministic.
  const size_t unit = [&] {
    traj::DecodedTraj probe;
    probe.times.resize(100);
    return probe.ApproxBytes();
  }();

  DecodedTrajCache cache(2 * unit, 1);
  std::atomic<int> decodes{0};
  auto counted = [&](uint64_t key) {
    return cache.GetOrDecode(key, [&, key] {
      ++decodes;
      traj::DecodedTraj dt;
      dt.times.resize(100);
      (void)key;
      return dt;
    });
  };

  counted(1);
  counted(2);
  EXPECT_EQ(decodes.load(), 2);
  counted(1);  // hit; makes key 2 the LRU victim
  EXPECT_EQ(decodes.load(), 2);
  counted(3);  // evicts 2
  EXPECT_NE(cache.Peek(1), nullptr);
  EXPECT_EQ(cache.Peek(2), nullptr);
  EXPECT_NE(cache.Peek(3), nullptr);
  counted(2);  // re-decodes
  EXPECT_EQ(decodes.load(), 4);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_GE(stats.evictions, 2u);
  EXPECT_LE(stats.resident_bytes, cache.budget_bytes());
}

TEST(DecodedTrajCache, PinsSurviveEviction) {
  traj::DecodedTraj big;
  big.times.resize(4096);
  const size_t bytes = big.ApproxBytes();

  DecodedTrajCache cache(bytes / 2, 1);  // nothing fits
  const auto pin = cache.GetOrDecode(7, [&] { return big; });
  ASSERT_NE(pin, nullptr);
  EXPECT_EQ(pin->times.size(), 4096u);
  // The entry was evicted on insert (over budget), but the pin holds it.
  EXPECT_EQ(cache.Peek(7), nullptr);
  EXPECT_EQ(cache.stats().resident_entries, 0u);
  EXPECT_EQ(pin->times.size(), 4096u);
}

TEST(QueryEngine, MatchesUncachedColdAndWarm) {
  ServeFixture& f = Fixture();
  QueryEngine engine(f.sys->queries());
  const auto reqs = f.MakeWorkload(120, 9001);
  for (int pass = 0; pass < 2; ++pass) {  // cold, then fully warm
    for (const auto& req : reqs) {
      EXPECT_TRUE(ServeFixture::SameResult(engine.Execute(req),
                                           f.Uncached(req)))
          << "pass " << pass;
    }
  }
  const auto stats = engine.stats();
  EXPECT_EQ(stats.queries, 240u);
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(stats.cache_misses, 0u);
}

TEST(QueryEngine, WhenOnForeignEdgesMatchesWithoutDecoding) {
  ServeFixture& f = Fixture();
  QueryEngine engine(f.sys->queries());
  // Sweep edges regardless of whether trajectory 0 passes them: the
  // index-only rejection must agree with the uncached answer, and edges
  // the trajectory never passes must not cost a decode.
  size_t rejected = 0;
  for (network::EdgeId e = 0; e < 40; ++e) {
    const auto got = engine.When(0, e, 0.5, 0.2);
    EXPECT_EQ(got, f.sys->queries().When(0, e, 0.5, 0.2)) << "edge " << e;
    if (!f.sys->queries().MayPassEdge(0, e)) {
      EXPECT_TRUE(got.empty());
      ++rejected;
    }
  }
  ASSERT_GT(rejected, 0u);  // the sweep must hit foreign edges
  // Only passed-edge queries may have pinned the trajectory: rejections
  // shy of the cache leave no miss traffic behind.
  EXPECT_LE(engine.stats().cache_misses, 1u);
}

TEST(QueryEngine, PartialDecodeNeverTouchesTheCache) {
  // A partial decode must never land in the DecodedTrajCache under the
  // full-decode key: a later query hitting that entry would trust a stale
  // prefix as the complete trajectory. The partial path is structurally
  // cache-free — force it on over a warm-cache budget and the cache must
  // stay empty in both directions (no inserts, no hits, no misses).
  ServeFixture& f = Fixture();
  core::UtcqParams params = f.params;
  params.t_sync_interval = 2;  // dense sync tables so the seek path engages
  const core::UtcqSystem sys2(f.net, *f.grid, f.corpus, params,
                              core::StiuParams{16, 900});

  EngineOptions popts;
  popts.partial_decode = PartialDecode::kAlways;
  QueryEngine partial(sys2.queries(), popts);

  const auto reqs = f.MakeWorkload(120, 2026);
  std::vector<QueryResult> got;
  got.reserve(reqs.size());
  for (const auto& req : reqs) got.push_back(partial.Execute(req));

  const EngineStats ps = partial.stats();
  EXPECT_GT(ps.partial_queries, 0u);
  EXPECT_GT(ps.decode_bytes_partial, 0u);
  EXPECT_GT(ps.sync_seeks, 0u);
  EXPECT_EQ(ps.cache_resident_bytes, 0u);
  EXPECT_EQ(ps.cache_resident_entries, 0u);
  EXPECT_EQ(ps.cache_hits + ps.cache_misses, 0u);

  // The partial answers are hit-for-hit identical to the full-decode
  // engine over the same corpus (and to the uncached oracle).
  QueryEngine full(sys2.queries());
  for (size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_TRUE(ServeFixture::SameResult(got[i], full.Execute(reqs[i])))
        << "request " << i;
    EXPECT_TRUE(ServeFixture::SameResult(got[i], f.Uncached(reqs[i])))
        << "request " << i;
  }

  // After partial traffic, a full-decode engine's first pin of a
  // trajectory is a genuine miss that materializes the complete decode:
  // resident bytes equal the whole trajectory exactly, not a prefix.
  QueryEngine fresh(sys2.queries());
  (void)fresh.Where(0, f.corpus[0].times.front(), 0.3);
  const core::UtcqDecoder decoder(f.net, sys2.compressed());
  const auto st = fresh.stats();
  EXPECT_EQ(st.cache_misses, 1u);
  EXPECT_EQ(st.cache_resident_bytes, decoder.DecodeTraj(0).ApproxBytes());
  EXPECT_EQ(st.partial_queries, 0u);
}

TEST(QueryEngine, TinyBudgetEvictionStaysCorrect) {
  ServeFixture& f = Fixture();
  EngineOptions opts;
  opts.cache_budget_bytes = 512;  // far below one decoded trajectory
  QueryEngine engine(f.sys->queries(), opts);
  const auto reqs = f.MakeWorkload(80, 4242);
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& req : reqs) {
      EXPECT_TRUE(ServeFixture::SameResult(engine.Execute(req),
                                           f.Uncached(req)));
    }
  }
  const auto stats = engine.stats();
  EXPECT_GT(stats.cache_evictions, 0u);
  EXPECT_LE(stats.cache_resident_bytes, opts.cache_budget_bytes);
  EXPECT_EQ(stats.cache_hits, 0u);  // nothing can stay resident
}

TEST(QueryEngine, BatchEqualsSequential) {
  ServeFixture& f = Fixture();
  const auto reqs = f.MakeWorkload(150, 31337);

  QueryEngine batch_engine(f.sys->queries());
  const auto batched = batch_engine.ExecuteBatch(reqs);
  ASSERT_EQ(batched.size(), reqs.size());

  QueryEngine seq_engine(f.sys->queries());
  for (size_t i = 0; i < reqs.size(); ++i) {
    const QueryResult sequential = seq_engine.Execute(reqs[i]);
    EXPECT_TRUE(ServeFixture::SameResult(batched[i], sequential)) << i;
    EXPECT_TRUE(ServeFixture::SameResult(batched[i], f.Uncached(reqs[i])))
        << i;
  }
  EXPECT_EQ(batch_engine.stats().batches, 1u);
  EXPECT_EQ(batch_engine.stats().queries, reqs.size());
}

TEST(QueryEngine, ConcurrentMixedQueriesMatchUncached) {
  ServeFixture& f = Fixture();
  // Budget sized so the working set does not fully fit: threads race
  // hits, misses, and evictions against each other.
  EngineOptions opts;
  opts.cache_budget_bytes = 64 * 1024;
  opts.cache_shards = 4;
  QueryEngine engine(f.sys->queries(), opts);

  const auto reqs = f.MakeWorkload(100, 5150);
  std::vector<QueryResult> expected;
  expected.reserve(reqs.size());
  for (const auto& req : reqs) expected.push_back(f.Uncached(req));

  constexpr int kThreads = 4;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread walks the workload at its own offset so cache states
      // interleave differently per thread.
      for (size_t i = 0; i < reqs.size(); ++i) {
        const size_t k = (i + static_cast<size_t>(t) * 25) % reqs.size();
        if (!ServeFixture::SameResult(engine.Execute(reqs[k]), expected[k])) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(engine.stats().queries, static_cast<size_t>(kThreads) * reqs.size());
}

TEST(QueryEngine, ShardedBackendMatchesAndSharesCache) {
  ServeFixture& f = Fixture();
  shard::ShardOptions sopts;
  sopts.num_shards = 4;
  const shard::ShardedCompressor compressor(f.net, *f.grid, f.params,
                                            core::StiuParams{16, 900}, sopts);
  const shard::ShardedBuild build = compressor.Compress(f.corpus);
  const std::string manifest = ::testing::TempDir() + "/serve_set.utcq";
  std::string error;
  ASSERT_TRUE(build.Save(manifest, &error)) << error;
  shard::ShardedCorpus sharded;
  ASSERT_TRUE(sharded.Open(f.net, manifest, &error)) << error;

  QueryEngine engine(sharded);
  EXPECT_EQ(engine.num_trajectories(), f.corpus.size());
  const auto reqs = f.MakeWorkload(120, 2718);
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& req : reqs) {
      const QueryResult got = engine.Execute(req);
      // The sharded set is pinned result-identical to the unsharded system
      // (shard_test), so the unsharded processor is ground truth here too.
      EXPECT_TRUE(ServeFixture::SameResult(got, f.Uncached(req)));
    }
  }
  // Range fan-out ran through the shared cache: its candidate pins must
  // show up as engine cache traffic.
  EXPECT_GT(engine.stats().cache_hits, 0u);

  // Batch over the sharded backend as well.
  QueryEngine batch_engine(sharded);
  const auto batched = batch_engine.ExecuteBatch(reqs);
  for (size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_TRUE(ServeFixture::SameResult(batched[i], f.Uncached(reqs[i])));
  }

  for (uint32_t s = 0; s < build.plan.num_shards(); ++s) {
    std::remove(shard::ShardArchivePath(manifest, s).c_str());
  }
  std::remove(manifest.c_str());
}

TEST(TedDecodedHandle, MatchesUncachedQueries) {
  ServeFixture& f = Fixture();
  ted::TedParams tparams;
  const ted::TedCompressed cc =
      ted::TedCompressor(f.net, tparams).Compress(f.corpus);
  const ted::TedIndex index(f.net, *f.grid, cc, 900);
  const ted::TedQueryProcessor queries(f.net, cc, index);

  common::Rng rng(606);
  const auto bbox = f.net.bounding_box();
  for (int trial = 0; trial < 40; ++trial) {
    const auto j =
        static_cast<uint32_t>(rng.UniformInt(0, f.corpus.size() - 1));
    const auto& tu = f.corpus[j];
    const traj::DecodedTraj dt = queries.DecodeTraj(j);
    const auto t = rng.UniformInt(tu.times.front(), tu.times.back());
    const double alpha = rng.Uniform(0.1, 0.6);
    EXPECT_EQ(queries.Where(j, t, alpha, dt), queries.Where(j, t, alpha));
    const auto& path = tu.instances.front().path;
    const network::EdgeId edge = path[rng.UniformInt(0, path.size() - 1)];
    EXPECT_EQ(queries.When(j, edge, 0.5, alpha, dt),
              queries.When(j, edge, 0.5, alpha));

    const double cx = rng.Uniform(bbox.min_x, bbox.max_x);
    const double cy = rng.Uniform(bbox.min_y, bbox.max_y);
    const network::Rect re{cx - 500, cy - 500, cx + 500, cy + 500};
    // Provider-backed Range: decode every candidate through a one-shot map.
    const traj::DecodedProvider provider = [&](uint32_t cand) {
      return std::make_shared<const traj::DecodedTraj>(
          queries.DecodeTraj(cand));
    };
    EXPECT_EQ(queries.Range(re, t, alpha, provider),
              queries.Range(re, t, alpha));
  }
}

TEST(QueryEngine, OutOfRangeTrajectoryAnswersEmpty) {
  ServeFixture& f = Fixture();
  QueryEngine engine(f.sys->queries());
  const auto n = static_cast<uint32_t>(engine.num_trajectories());
  // Untrusted ids past the corpus answer empty instead of reading past
  // the routing table / meta array.
  EXPECT_TRUE(engine.Where(n, 100, 0.3).empty());
  EXPECT_TRUE(engine.When(n + 5, 0, 0.5, 0.3).empty());
  const std::vector<QueryRequest> reqs = {
      QueryRequest::MakeWhere(n + 1, 100, 0.3),
      QueryRequest::MakeWhere(0, f.corpus[0].times.front(), 0.3)};
  const auto results = engine.ExecuteBatch(reqs);
  EXPECT_TRUE(results[0].where.empty());
  EXPECT_EQ(results[1].where, f.sys->queries().Where(
                                  0, f.corpus[0].times.front(), 0.3));
  EXPECT_EQ(engine.stats().queries, 4u);
}

TEST(QueryEngine, StatsReportLatencyPercentiles) {
  ServeFixture& f = Fixture();
  QueryEngine engine(f.sys->queries());
  const auto reqs = f.MakeWorkload(60, 99);
  engine.ExecuteBatch(reqs);
  const auto stats = engine.stats();
  EXPECT_GT(stats.p50_latency_us, 0.0);
  EXPECT_GE(stats.p99_latency_us, stats.p50_latency_us);
  EXPECT_GT(stats.bytes_decoded, 0u);
}

/// Advances by a programmable step on every read, so each query's
/// latency (two reads: start and finish) is exactly `step` nanoseconds —
/// the slow-query log becomes fully deterministic.
struct StepClock : obs::Clock {
  mutable uint64_t now = 0;
  uint64_t step = 0;
  uint64_t NowNanos() const override { return now += step; }
};

TEST(QueryEngine, SlowQueryLogRetainsTheWorstDeterministically) {
  ServeFixture& f = Fixture();
  StepClock clock;
  EngineOptions opts;
  opts.clock = &clock;
  opts.slow_query_threshold_us = 1;
  opts.slow_query_log_size = 4;
  QueryEngine engine(f.sys->queries(), opts);

  // Below threshold: never logged, cache misses included.
  clock.step = 100;  // 0.1 µs per query
  for (int i = 0; i < 3; ++i) {
    engine.Where(0, f.corpus[0].times.front(), 0.3);
  }
  EXPECT_EQ(engine.stats().slow_queries, 0u);
  EXPECT_TRUE(engine.slow_queries().empty());

  // Six slow queries on one trajectory with rising synthetic latencies
  // (2..7 µs), then one slower miss on a fresh trajectory (10 µs). The
  // log holds 4 entries: it must retain exactly the worst four.
  for (uint64_t us = 2; us <= 7; ++us) {
    clock.step = us * 1000;
    engine.Where(1, f.corpus[1].times.front(), 0.3);
  }
  clock.step = 10 * 1000;
  engine.Where(2, f.corpus[2].times.front(), 0.3);

  const auto slow = engine.slow_queries();
  ASSERT_EQ(slow.size(), 4u);
  EXPECT_EQ(engine.stats().slow_queries, 4u);
  // Sorted slowest first: 10, 7, 6, 5 µs — the 2/3/4 µs entries were
  // displaced.
  EXPECT_DOUBLE_EQ(slow[0].latency_us, 10.0);
  EXPECT_DOUBLE_EQ(slow[1].latency_us, 7.0);
  EXPECT_DOUBLE_EQ(slow[2].latency_us, 6.0);
  EXPECT_DOUBLE_EQ(slow[3].latency_us, 5.0);
  // The 10 µs query decoded trajectory 2 for the first time: a miss with
  // its decode cost attributed. The others were warm repeats.
  EXPECT_EQ(slow[0].traj, 2u);
  EXPECT_FALSE(slow[0].cache_hit);
  EXPECT_GT(slow[0].decode_bytes, 0u);
  for (size_t i = 1; i < slow.size(); ++i) {
    EXPECT_EQ(slow[i].traj, 1u);
    EXPECT_TRUE(slow[i].cache_hit);
    EXPECT_EQ(slow[i].decode_bytes, 0u);
    EXPECT_EQ(slow[i].kind, QueryKind::kWhere);
  }
}

TEST(QueryEngine, ZeroThresholdDisablesTheSlowQueryLog) {
  ServeFixture& f = Fixture();
  StepClock clock;
  clock.step = 1000 * 1000;  // every query takes a synthetic 1 ms
  EngineOptions opts;
  opts.clock = &clock;
  opts.slow_query_threshold_us = 0;  // disabled
  QueryEngine engine(f.sys->queries(), opts);
  engine.Where(0, f.corpus[0].times.front(), 0.3);
  EXPECT_TRUE(engine.slow_queries().empty());
  EXPECT_EQ(engine.stats().slow_queries, 0u);
}

TEST(QueryEngine, SharedRegistryExportsTheEngineCountersExactly) {
  ServeFixture& f = Fixture();
  obs::MetricRegistry registry;
  EngineOptions opts;
  opts.registry = &registry;
  QueryEngine engine(f.sys->queries(), opts);
  const auto reqs = f.MakeWorkload(40, 123);
  engine.ExecuteBatch(reqs);
  for (const auto& req : reqs) engine.Execute(req);

  const auto stats = engine.stats();
  const auto snap = registry.Snapshot();
  const auto counter = [&snap](const std::string& name) -> uint64_t {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "counter " << name << " missing";
    return 0;
  };
  EXPECT_EQ(counter("serve.engine.queries"), stats.queries);
  EXPECT_EQ(counter("serve.engine.queries"), 2 * reqs.size());
  EXPECT_EQ(counter("serve.engine.batches"), stats.batches);
  EXPECT_EQ(counter("serve.cache.hits"), stats.cache_hits);
  EXPECT_EQ(counter("serve.cache.misses"), stats.cache_misses);
  // Every pin the workload took is accounted: hits + misses covers all
  // cache lookups, and the evictions counter matches.
  EXPECT_EQ(counter("serve.cache.evictions"), stats.cache_evictions);
}

}  // namespace
}  // namespace utcq::serve
