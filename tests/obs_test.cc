// Observability layer: the histogram's compile-time bucket layout must be
// exactly the documented log-linear scheme (the wire encoding ships bare
// bucket indices, so the layout IS the protocol), snapshots must stay
// internally consistent under concurrent writers, and the registry must
// hand out one instrument per name — same reference every call, one kind
// per name, sorted snapshots.

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/clock.h"
#include "obs/exposition.h"
#include "obs/metrics.h"

namespace utcq::obs {
namespace {

/// Deterministic time source: tests advance it by hand.
struct FakeClock : Clock {
  uint64_t now_ns = 0;
  uint64_t NowNanos() const override { return now_ns; }
};

// --- bucket layout ----------------------------------------------------------

TEST(HistogramLayout, ValuesBelow16GetExactWidthOneBuckets) {
  for (uint64_t v = 0; v < 2 * Histogram::kSubBuckets; ++v) {
    const uint32_t index = Histogram::BucketIndex(v);
    EXPECT_EQ(index, v);
    EXPECT_EQ(Histogram::BucketLowerBound(index), v);
    EXPECT_EQ(Histogram::BucketWidth(index), 1u);
  }
}

TEST(HistogramLayout, OctaveBoundaries) {
  // The first log-bucketed octave starts at 16: [16,17] share a width-2
  // bucket, 31 ends the octave, 32 opens the next (width 4).
  EXPECT_EQ(Histogram::BucketIndex(15), 15u);
  EXPECT_EQ(Histogram::BucketIndex(16), 16u);
  EXPECT_EQ(Histogram::BucketIndex(17), 16u);
  EXPECT_EQ(Histogram::BucketIndex(31), 23u);
  EXPECT_EQ(Histogram::BucketIndex(32), 24u);
  EXPECT_EQ(Histogram::BucketWidth(16), 2u);
  EXPECT_EQ(Histogram::BucketWidth(24), 4u);
}

TEST(HistogramLayout, LowerBoundInvertsBucketIndex) {
  for (uint32_t index = 0; index < Histogram::kNumBuckets; ++index) {
    const uint64_t lower = Histogram::BucketLowerBound(index);
    const uint64_t width = Histogram::BucketWidth(index);
    // The bucket covers [lower, lower + width): both ends map back.
    EXPECT_EQ(Histogram::BucketIndex(lower), index);
    EXPECT_EQ(Histogram::BucketIndex(lower + width - 1), index);
    // One past the end lands in the next bucket (the top bucket ends at
    // UINT64_MAX, so there is no past-the-end value to check there).
    if (index + 1 < Histogram::kNumBuckets) {
      EXPECT_EQ(Histogram::BucketIndex(lower + width), index + 1);
    }
  }
  // The layout covers the full uint64 range.
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), Histogram::kNumBuckets - 1);
}

TEST(HistogramLayout, BucketIndexIsMonotone) {
  uint32_t prev = Histogram::BucketIndex(0);
  for (uint64_t v = 1; v < 4096; ++v) {
    const uint32_t index = Histogram::BucketIndex(v);
    EXPECT_GE(index, prev) << "v=" << v;
    prev = index;
  }
}

// --- snapshots and percentiles ----------------------------------------------

TEST(Histogram, EmptySnapshotIsExactlyEmpty) {
  Histogram h;
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_TRUE(snap.buckets.empty());
  EXPECT_EQ(snap.Percentile(0.5), 0.0);
  EXPECT_EQ(snap.p999(), 0.0);
}

TEST(Histogram, SmallValuePercentilesAreExact) {
  Histogram h;
  for (uint64_t v = 1; v <= 10; ++v) h.Record(v);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 10u);
  EXPECT_EQ(snap.sum, 55u);
  EXPECT_EQ(snap.buckets.size(), 10u);
  EXPECT_EQ(snap.Percentile(0.0), 1.0);
  EXPECT_EQ(snap.p50(), 5.0);
  EXPECT_EQ(snap.Percentile(1.0), 10.0);
}

TEST(Histogram, CountIsAlwaysTheSumOfBucketCounts) {
  Histogram h;
  for (uint64_t v = 0; v < 1000; ++v) h.Record(v * 37);
  const HistogramSnapshot snap = h.Snapshot();
  uint64_t total = 0;
  uint32_t prev_index = 0;
  for (size_t i = 0; i < snap.buckets.size(); ++i) {
    const auto& [index, n] = snap.buckets[i];
    if (i > 0) EXPECT_GT(index, prev_index);  // strictly ascending
    EXPECT_GT(n, 0u);                         // sparse: no empty buckets
    prev_index = index;
    total += n;
  }
  EXPECT_EQ(snap.count, total);
  EXPECT_EQ(snap.count, 1000u);
}

TEST(Histogram, PercentileErrorIsBoundedByBucketWidth) {
  Histogram h;
  const uint64_t value = 1'000'000;
  for (int i = 0; i < 100; ++i) h.Record(value);
  const HistogramSnapshot snap = h.Snapshot();
  const double p = snap.p50();
  // All mass in one bucket: the estimate stays inside it (~12.5% wide).
  EXPECT_GE(p, static_cast<double>(value) * 0.875);
  EXPECT_LE(p, static_cast<double>(value) * 1.125);
}

TEST(Histogram, MergeFromAddsCountsSumsAndBuckets) {
  Histogram a;
  Histogram b;
  a.Record(3);
  a.Record(100);
  b.Record(3);
  b.Record(5000);
  HistogramSnapshot sa = a.Snapshot();
  const HistogramSnapshot sb = b.Snapshot();
  sa.MergeFrom(sb);
  EXPECT_EQ(sa.count, 4u);
  EXPECT_EQ(sa.sum, 3u + 100u + 3u + 5000u);
  // The shared bucket (value 3, exact) merged; indices stay ascending.
  uint64_t total = 0;
  for (size_t i = 0; i < sa.buckets.size(); ++i) {
    if (i > 0) EXPECT_GT(sa.buckets[i].first, sa.buckets[i - 1].first);
    total += sa.buckets[i].second;
  }
  EXPECT_EQ(total, 4u);
  EXPECT_EQ(sa.buckets.front().first, Histogram::BucketIndex(3));
  EXPECT_EQ(sa.buckets.front().second, 2u);
}

TEST(Histogram, ConcurrentRecordLosesNothing) {
  // Run under TSan in CI: Record is relaxed atomics only, so this is also
  // the data-race check for the hot-path write.
  Histogram h;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(i % 97 + static_cast<uint64_t>(t));
      }
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  uint64_t want_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      want_sum += i % 97 + static_cast<uint64_t>(t);
    }
  }
  EXPECT_EQ(snap.sum, want_sum);
}

TEST(Histogram, SnapshotIsMonotoneUnderMoreRecords) {
  Histogram h;
  h.Record(10);
  const HistogramSnapshot s1 = h.Snapshot();
  h.Record(20);
  h.Record(30);
  const HistogramSnapshot s2 = h.Snapshot();
  EXPECT_LT(s1.count, s2.count);
  EXPECT_LT(s1.sum, s2.sum);
}

// --- registry ---------------------------------------------------------------

TEST(MetricRegistry, SameNameReturnsSameInstrument) {
  MetricRegistry reg;
  Counter& a = reg.GetCounter("serve.cache.hits");
  Counter& b = reg.GetCounter("serve.cache.hits");
  EXPECT_EQ(&a, &b);
  a.Increment();
  b.Add(2);
  EXPECT_EQ(a.value(), 3u);
}

TEST(MetricRegistry, SnapshotIsSortedAndComplete) {
  MetricRegistry reg;
  reg.GetCounter("b.count").Add(2);
  reg.GetCounter("a.count").Add(1);
  reg.GetGauge("z.depth").Set(-4);
  reg.GetHistogram("m.latency_ns").Record(42);
  const RegistrySnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.count");
  EXPECT_EQ(snap.counters[0].second, 1u);
  EXPECT_EQ(snap.counters[1].first, "b.count");
  EXPECT_EQ(snap.counters[1].second, 2u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, -4);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);
}

TEST(MetricRegistryDeathTest, OneKindPerNameIsEnforced) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MetricRegistry reg;
  reg.GetCounter("serve.queries");
  EXPECT_DEATH(reg.GetGauge("serve.queries"), "different kinds");
}

// --- trace spans ------------------------------------------------------------

TEST(ScopedTimer, RecordsElapsedNanosOnDestruction) {
  FakeClock clock;
  Histogram h;
  {
    ScopedTimer timer(h, clock);
    clock.now_ns += 1500;
    EXPECT_EQ(timer.ElapsedNanos(), 1500u);
  }
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 1500u);
}

TEST(Clock, RealClockIsMonotone) {
  const Clock& clock = Clock::Real();
  const uint64_t a = clock.NowNanos();
  const uint64_t b = clock.NowNanos();
  EXPECT_GE(b, a);
}

// --- text exposition --------------------------------------------------------

TEST(Exposition, RendersEveryKindWithSanitizedNames) {
  MetricRegistry reg;
  reg.GetCounter("net.requests.query").Add(7);
  reg.GetGauge("net.connections.open").Set(2);
  Histogram& h = reg.GetHistogram("serve.latency_ns.where");
  h.Record(5);
  h.Record(5);
  h.Record(100);
  const std::string text = ToPrometheusText(reg.Snapshot());

  EXPECT_NE(text.find("# TYPE utcq_net_requests_query counter\n"
                      "utcq_net_requests_query 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE utcq_net_connections_open gauge\n"
                      "utcq_net_connections_open 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE utcq_serve_latency_ns_where histogram\n"),
            std::string::npos);
  // Cumulative buckets: the exact value-5 bucket holds 2, the bucket
  // holding 100 brings the running total to 3, and +Inf equals count.
  EXPECT_NE(text.find("utcq_serve_latency_ns_where_bucket{le=\"5\"} 2\n"),
            std::string::npos);
  const uint32_t b100 = Histogram::BucketIndex(100);
  const uint64_t le100 = Histogram::BucketLowerBound(b100) +
                         Histogram::BucketWidth(b100) - 1;
  EXPECT_NE(text.find("_bucket{le=\"" + std::to_string(le100) + "\"} 3\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("utcq_serve_latency_ns_where_bucket{le=\"+Inf\"} 3\n"),
      std::string::npos);
  EXPECT_NE(text.find("utcq_serve_latency_ns_where_sum 110\n"),
            std::string::npos);
  EXPECT_NE(text.find("utcq_serve_latency_ns_where_count 3\n"),
            std::string::npos);
}

TEST(Exposition, EmptyRegistryRendersEmpty) {
  MetricRegistry reg;
  EXPECT_TRUE(ToPrometheusText(reg.Snapshot()).empty());
}

}  // namespace
}  // namespace utcq::obs
