#include <gtest/gtest.h>

#include "core/fjd.h"
#include "core/pivot.h"
#include "core/reference_selection.h"
#include "paper_example.h"
#include "traj/types.h"

namespace utcq::core {
namespace {

std::vector<std::vector<uint32_t>> PaperEntrySequences() {
  const auto ex = test::MakePaperExample();
  std::vector<std::vector<uint32_t>> seqs;
  for (const auto& inst : ex.tu.instances) {
    seqs.push_back(traj::BuildEdgeSequence(ex.net, inst));
  }
  return seqs;
}

// ---------------------------------------------------------------- pivots

TEST(Pivot, PaperPivotRepresentations) {
  const auto seqs = PaperEntrySequences();
  // piv_1 = Tu^1_3 (Section 4.3): Com_E(Tu^1_1, piv_1) = <(0,8), (5,1)>.
  const auto com1 = FactorizeAgainstPivot(seqs[2], seqs[0]);
  ASSERT_EQ(com1.factors.size(), 2u);
  EXPECT_EQ(com1.factors[0], (std::pair<uint32_t, uint32_t>{0, 8}));
  EXPECT_EQ(com1.factors[1], (std::pair<uint32_t, uint32_t>{5, 1}));
  EXPECT_EQ(com1.total_factors, 2u);

  // Com_E(Tu^1_2, piv_1) = <(0,1), (0,1), (2,6), (5,1)> (Example 1).
  const auto com2 = FactorizeAgainstPivot(seqs[2], seqs[1]);
  ASSERT_EQ(com2.factors.size(), 4u);
  EXPECT_EQ(com2.factors[0], (std::pair<uint32_t, uint32_t>{0, 1}));
  EXPECT_EQ(com2.factors[1], (std::pair<uint32_t, uint32_t>{0, 1}));
  EXPECT_EQ(com2.factors[2], (std::pair<uint32_t, uint32_t>{2, 6}));
  EXPECT_EQ(com2.factors[3], (std::pair<uint32_t, uint32_t>{5, 1}));
}

TEST(Pivot, AbsentSymbolsCountedButOmitted) {
  const std::vector<uint32_t> pivot = {1, 2, 1};
  const std::vector<uint32_t> target = {1, 9, 2};  // 9 absent
  const auto com = FactorizeAgainstPivot(pivot, target);
  EXPECT_EQ(com.total_factors, 3u);
  EXPECT_EQ(com.factors.size(), 2u);
}

TEST(Pivot, SelectPivotsPicksFarthestInstance) {
  const auto seqs = PaperEntrySequences();
  // Seeded at instance 0, the farthest instance (most factors against
  // Tu^1_1) is Tu^1_2 (the detour): it becomes the first pivot.
  const auto pivots = SelectPivots(seqs, 1, 0);
  ASSERT_EQ(pivots.size(), 1u);
  EXPECT_EQ(pivots[0], 1u);
  // Two pivots never repeat.
  const auto two = SelectPivots(seqs, 2, 0);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_NE(two[0], two[1]);
}

TEST(Pivot, RepresentAgainstPivotsShapes) {
  const auto seqs = PaperEntrySequences();
  const auto reprs = RepresentAgainstPivots(seqs, {2u, 0u});
  ASSERT_EQ(reprs.size(), 2u);
  ASSERT_EQ(reprs[0].size(), 3u);
  // Every sequence representable against itself with one factor.
  EXPECT_EQ(reprs[0][2].factors.size(), 1u);
  EXPECT_EQ(reprs[1][0].factors.size(), 1u);
}

// ------------------------------------------------------------------ FJD

TEST(Fjd, PaperExample1ExactValue) {
  const auto seqs = PaperEntrySequences();
  const auto com_w = FactorizeAgainstPivot(seqs[2], seqs[0]);  // Tu^1_1
  const auto com_v = FactorizeAgainstPivot(seqs[2], seqs[1]);  // Tu^1_2
  // FJD(Tu^1_1 -> Tu^1_2, piv_1) = (1/8 + 1/8 + 3/4 + 1) / 4 = 1/2.
  EXPECT_DOUBLE_EQ(Fjd(com_w, com_v), 0.5);
}

TEST(Fjd, IdenticalRepresentationsScoreOne) {
  const auto seqs = PaperEntrySequences();
  const auto com = FactorizeAgainstPivot(seqs[2], seqs[0]);
  EXPECT_DOUBLE_EQ(Fjd(com, com), 1.0);
}

TEST(Fjd, DisjointFactorsScoreZero) {
  PivotCom a;
  a.factors = {{0, 3}};
  a.total_factors = 1;
  PivotCom b;
  b.factors = {{10, 3}};
  b.total_factors = 1;
  EXPECT_DOUBLE_EQ(Fjd(a, b), 0.0);
}

TEST(Fjd, ScoreMatrixZeroDiagonalAndSvGate) {
  const auto ex = test::MakePaperExample();
  const auto seqs = PaperEntrySequences();
  const auto reprs = RepresentAgainstPivots(seqs, {2u});
  std::vector<double> probs = {0.75, 0.2, 0.05};
  std::vector<uint32_t> svs = {1, 1, 2};  // pretend Tu^1_3 starts elsewhere
  const auto sm = BuildScoreMatrix(reprs, probs, svs);
  EXPECT_DOUBLE_EQ(sm[0][0], 0.0);
  EXPECT_DOUBLE_EQ(sm[1][1], 0.0);
  EXPECT_GT(sm[0][1], 0.0);
  EXPECT_DOUBLE_EQ(sm[0][2], 0.0);  // different SV
  EXPECT_DOUBLE_EQ(sm[2][0], 0.0);
  // Probability weighting: representing by Tu^1_1 scores higher than the
  // reverse direction (p = 0.75 vs 0.2) given symmetric FJD inputs.
  EXPECT_GT(sm[0][1], sm[1][0]);
}

TEST(Fjd, PaperScoreMatrixPrefersHighProbabilityReference) {
  const auto ex = test::MakePaperExample();
  const auto seqs = PaperEntrySequences();
  const auto reprs = RepresentAgainstPivots(seqs, {2u});
  std::vector<double> probs(3);
  std::vector<uint32_t> svs(3);
  for (size_t w = 0; w < 3; ++w) {
    probs[w] = ex.tu.instances[w].probability;
    svs[w] = traj::StartVertex(ex.net, ex.tu.instances[w]);
  }
  const auto sm = BuildScoreMatrix(reprs, probs, svs);
  const auto plan = SelectReferences(sm);
  // Tu^1_1 (p = 0.75) becomes the reference; both others join its Rrs
  // (Example 2's outcome).
  ASSERT_EQ(plan.references.size(), 1u);
  EXPECT_EQ(plan.references[0], 0u);
  EXPECT_EQ(plan.Rrs(0), (std::vector<uint32_t>{1, 2}));
}

// ------------------------------------------------------ Algorithm 1 greedy

TEST(ReferenceSelection, EmptyAndSingleton) {
  EXPECT_TRUE(SelectReferences({}).references.empty());
  const auto plan = SelectReferences({{0.0}});
  ASSERT_EQ(plan.references.size(), 1u);
  EXPECT_EQ(plan.references[0], 0u);
  EXPECT_TRUE(plan.IsReference(0));
}

TEST(ReferenceSelection, AllZeroScoresMakeEveryoneStandalone) {
  const std::vector<std::vector<double>> sm(4, std::vector<double>(4, 0.0));
  const auto plan = SelectReferences(sm);
  EXPECT_EQ(plan.references.size(), 4u);
  for (uint32_t w = 0; w < 4; ++w) EXPECT_TRUE(plan.IsReference(w));
}

TEST(ReferenceSelection, GreedyPicksMaxAndEnforcesConstraints) {
  // 0 represents 1 (0.9, global max); after that 1 may not represent 2
  // even though 0.8 would be next — 1 is already represented. 2 ends up
  // standalone unless someone else can take it (0 can: 0.3).
  std::vector<std::vector<double>> sm = {
      {0.0, 0.9, 0.3},
      {0.0, 0.0, 0.8},
      {0.0, 0.0, 0.0},
  };
  const auto plan = SelectReferences(sm);
  ASSERT_GE(plan.references.size(), 1u);
  EXPECT_EQ(plan.references[0], 0u);
  EXPECT_EQ(plan.ref_of[1], 0);
  EXPECT_EQ(plan.ref_of[2], 0);  // 0 also takes 2 via SM[0][2] = 0.3
}

TEST(ReferenceSelection, ReferenceCannotBeRepresented) {
  // Global max makes 0 a reference; the tempting SM[1][0] = 0.85 must then
  // be discarded (column-0 removal, line 7 of Algorithm 1).
  std::vector<std::vector<double>> sm = {
      {0.0, 0.9, 0.0},
      {0.85, 0.0, 0.0},
      {0.0, 0.0, 0.0},
  };
  const auto plan = SelectReferences(sm);
  EXPECT_TRUE(plan.IsReference(0));
  EXPECT_EQ(plan.ref_of[1], 0);
  EXPECT_TRUE(plan.IsReference(2));  // standalone leftover
  // 0 must still be a reference, never represented.
  EXPECT_LT(plan.ref_of[0], 0);
}

TEST(ReferenceSelection, SingleOrderOnly) {
  // Chain temptation 0->1 (0.9), 1->2 (0.89): single-order compression
  // forbids 1 (now represented) from representing 2; 0->2 (0.5) wins.
  std::vector<std::vector<double>> sm = {
      {0.0, 0.9, 0.5},
      {0.0, 0.0, 0.89},
      {0.0, 0.0, 0.0},
  };
  const auto plan = SelectReferences(sm);
  EXPECT_EQ(plan.ref_of[1], 0);
  EXPECT_EQ(plan.ref_of[2], 0);
  EXPECT_EQ(plan.references.size(), 1u);
}

TEST(ReferenceSelection, RrsMembership) {
  std::vector<std::vector<double>> sm = {
      {0.0, 0.9, 0.8, 0.0},
      {0.0, 0.0, 0.0, 0.0},
      {0.0, 0.0, 0.0, 0.0},
      {0.0, 0.0, 0.0, 0.0},
  };
  const auto plan = SelectReferences(sm);
  EXPECT_EQ(plan.Rrs(0), (std::vector<uint32_t>{1, 2}));
  // Instance 3 is standalone with empty Rrs.
  ASSERT_EQ(plan.references.size(), 2u);
  EXPECT_EQ(plan.references[1], 3u);
  EXPECT_TRUE(plan.Rrs(1).empty());
}

}  // namespace
}  // namespace utcq::core
