// Verification-subsystem self-checks and the error-path coverage the
// differential harness leans on: the oracle's own semantics on the paper
// example, workload-generator determinism, and the empty / out-of-range
// inputs every public query API must answer (not crash) on.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/plain_query.h"
#include "core/utcq.h"
#include "ingest/flusher.h"
#include "ingest/live_shard.h"
#include "network/grid_index.h"
#include "paper_example.h"
#include "serve/decoded_cache.h"
#include "serve/query_engine.h"
#include "serve/tier.h"
#include "shard/sharded.h"
#include "ted/ted_compress.h"
#include "ted/ted_index.h"
#include "ted/ted_query.h"
#include "test_fixtures.h"
#include "verify/oracle.h"
#include "verify/workload.h"

namespace utcq {
namespace {

// ------------------------------------------------------------ the oracle

TEST(Oracle, MatchesPlainEngineOnExactData) {
  // On un-quantized data the oracle and the plain reference engine are two
  // independent implementations of the same definitions; their Where /
  // Range answers must agree (When differs only by the deliberate
  // tolerance widening, exercised below).
  const auto ex = test::MakePaperExample();
  const traj::UncertainCorpus corpus{ex.tu};
  const verify::Oracle oracle(ex.net, corpus, /*eta_d=*/0.0);
  const core::PlainQueryEngine plain(ex.net, corpus);

  for (const traj::Timestamp t :
       {ex.tu.times.front(), ex.tu.times.front() + 100, traj::Timestamp{19285},
        ex.tu.times.back()}) {
    for (const double alpha : {0.0, 0.1, 0.25, 0.5, 0.9}) {
      const auto got = oracle.Where(0, t, alpha);
      const auto want = plain.Where(0, t, alpha);
      ASSERT_EQ(got.size(), want.size()) << "t=" << t << " alpha=" << alpha;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].instance, want[i].instance);
        EXPECT_DOUBLE_EQ(got[i].probability, want[i].probability);
      }
    }
  }

  const auto bbox = ex.net.bounding_box();
  const network::Rect everywhere{bbox.min_x, bbox.min_y, bbox.max_x,
                                 bbox.max_y};
  EXPECT_EQ(oracle.Range(everywhere, 18325, 0.5),
            plain.Range(everywhere, 18325, 0.5));
  EXPECT_EQ(oracle.Range({5000, 5000, 6000, 6000}, 18325, 0.1),
            plain.Range({5000, 5000, 6000, 6000}, 18325, 0.1));
}

TEST(Oracle, OutOfSpanAndOutOfRangeAnswerEmpty) {
  const auto ex = test::MakePaperExample();
  const traj::UncertainCorpus corpus{ex.tu};
  const verify::Oracle oracle(ex.net, corpus, 1.0 / 128.0);
  EXPECT_TRUE(oracle.Where(0, ex.tu.times.front() - 1, 0.0).empty());
  EXPECT_TRUE(oracle.Where(0, ex.tu.times.back() + 1, 0.0).empty());
  EXPECT_TRUE(oracle.Where(7, 18205, 0.0).empty());
  EXPECT_TRUE(oracle.When(7, ex.corridor[0], 0.5, 0.0).empty());
  EXPECT_DOUBLE_EQ(oracle.OverlapMass(7, {0, 0, 1, 1}, 18205), 0.0);
}

TEST(Oracle, WhenAppliesTheSameToleranceAsTheEngines) {
  const auto ex = test::MakePaperExample();
  const traj::UncertainCorpus corpus{ex.tu};
  const verify::Oracle oracle(ex.net, corpus, 1.0 / 128.0);
  // All three instances pass l0's position at t0 (paper Example / Table 2).
  const auto hits = oracle.When(0, ex.corridor[0], 0.875, 0.0);
  ASSERT_EQ(hits.size(), 3u);
  for (const auto& h : hits) EXPECT_EQ(h.t, ex.tu.times[0]);
}

// ------------------------------------------------------- workload generator

TEST(WorkloadGen, DeterministicInSeed) {
  verify::WorkloadGen a(12345);
  verify::WorkloadGen b(12345);
  const auto wa = a.Generate();
  const auto wb = b.Generate();
  ASSERT_EQ(wa.corpus.size(), wb.corpus.size());
  for (size_t j = 0; j < wa.corpus.size(); ++j) {
    EXPECT_EQ(wa.corpus[j].times, wb.corpus[j].times);
    ASSERT_EQ(wa.corpus[j].instances.size(), wb.corpus[j].instances.size());
    for (size_t w = 0; w < wa.corpus[j].instances.size(); ++w) {
      EXPECT_EQ(wa.corpus[j].instances[w], wb.corpus[j].instances[w]);
    }
  }
  ASSERT_EQ(wa.queries.size(), wb.queries.size());
  EXPECT_EQ(wa.net.num_edges(), wb.net.num_edges());

  verify::WorkloadGen c(12346);
  const auto wc = c.Generate();
  EXPECT_NE(wa.net.num_edges() == wc.net.num_edges() &&
                wa.corpus.size() == wc.corpus.size() &&
                wa.corpus.front().times == wc.corpus.front().times,
            true)
      << "adjacent seeds should not reproduce the same workload";
}

TEST(WorkloadGen, ProducesDegenerateShapesAndInvalidCases) {
  verify::WorkloadGen gen(7);
  const auto w = gen.Generate();
  // The three degenerate-but-valid shapes ride at the end of the corpus.
  ASSERT_GE(w.corpus.size(), 3u);
  const auto& single_edge = w.corpus[w.corpus.size() - 3];
  EXPECT_EQ(single_edge.instances.front().path.size(), 1u);
  const auto& zero_duration = w.corpus[w.corpus.size() - 2];
  EXPECT_EQ(zero_duration.times.size(), 1u);
  const auto& longest = w.corpus.back();
  EXPECT_GE(longest.instances.front().path.size(), 40u);
  for (const auto& tu : w.corpus) {
    EXPECT_EQ(traj::Validate(w.net, tu), "") << tu.id;
  }
  ASSERT_FALSE(w.invalid.empty());
  for (const auto& tu : w.invalid) {
    EXPECT_NE(traj::Validate(w.net, tu), "");
  }
  // The mix exercises out-of-range ids on purpose.
  bool has_out_of_range = false;
  for (const auto& q : w.queries) {
    if (q.kind != verify::QueryCase::Kind::kRange &&
        q.traj >= w.corpus.size()) {
      has_out_of_range = true;
    }
  }
  EXPECT_TRUE(has_out_of_range);
}

// ------------------------------------------------- error-path coverage

struct ErrorPathFixture {
  ErrorPathFixture()
      : profile(traj::ChengduProfile()),
        net(test::MakeSmallCity(profile, 10)),
        grid(net, 16),
        corpus(test::MakeSmallCorpus(net, profile, 321, 12)) {
    params.default_interval_s = profile.default_interval_s;
    sys = std::make_unique<core::UtcqSystem>(net, grid, corpus, params,
                                             core::StiuParams{16, 900});
  }
  traj::DatasetProfile profile;
  network::RoadNetwork net;
  network::GridIndex grid;
  traj::UncertainCorpus corpus;
  core::UtcqParams params;
  std::unique_ptr<core::UtcqSystem> sys;
};

ErrorPathFixture& Fixture() {
  static auto* fixture = new ErrorPathFixture();
  return *fixture;
}

TEST(ErrorPaths, OutOfRangeTrajectoryIdsOnEveryQueryApi) {
  ErrorPathFixture& f = Fixture();
  const uint32_t bad = static_cast<uint32_t>(f.corpus.size()) + 7;
  const network::EdgeId edge = f.corpus[0].instances[0].path[0];

  // Core processor.
  EXPECT_TRUE(f.sys->queries().Where(bad, 1000, 0.0).empty());
  EXPECT_TRUE(f.sys->queries().When(bad, edge, 0.5, 0.0).empty());

  // TED baseline processor.
  ted::TedParams tparams;
  const ted::TedCompressor tcomp(f.net, tparams);
  const ted::TedCompressed tc = tcomp.Compress(f.corpus);
  const ted::TedIndex tindex(f.net, f.grid, tc, 900);
  const ted::TedQueryProcessor tq(f.net, tc, tindex);
  EXPECT_TRUE(tq.Where(bad, 1000, 0.0).empty());
  EXPECT_TRUE(tq.When(bad, edge, 0.5, 0.0).empty());

  // Sharded corpus (opened).
  const shard::ShardedCompressor scomp(f.net, f.grid, f.params,
                                       core::StiuParams{16, 900},
                                       shard::ShardOptions{2, 1});
  const auto build = scomp.Compress(f.corpus);
  const std::string manifest =
      ::testing::TempDir() + "/verify_errorpaths.utcq";
  std::string error;
  ASSERT_TRUE(build.Save(manifest, &error)) << error;
  shard::ShardedCorpus sharded;
  ASSERT_TRUE(sharded.Open(f.net, manifest, &error)) << error;
  EXPECT_TRUE(sharded.Where(bad, 1000, 0.0).empty());
  EXPECT_TRUE(sharded.When(bad, edge, 0.5, 0.0).empty());

  // Serving engine over both backings.
  serve::QueryEngine single_engine(f.sys->queries());
  EXPECT_TRUE(single_engine.Where(bad, 1000, 0.0).empty());
  EXPECT_TRUE(single_engine.When(bad, edge, 0.5, 0.0).empty());
  serve::QueryEngine sharded_engine(sharded);
  EXPECT_TRUE(sharded_engine.Where(bad, 1000, 0.0).empty());
  EXPECT_TRUE(sharded_engine.When(bad, edge, 0.5, 0.0).empty());

  std::remove(manifest.c_str());
  for (uint32_t s = 0; s < 2; ++s) {
    std::remove(shard::ShardArchivePath(manifest, s).c_str());
  }
}

TEST(ErrorPaths, EmptyCorpusAnswersEmptyEverywhere) {
  ErrorPathFixture& f = Fixture();
  const traj::UncertainCorpus empty;
  const core::UtcqCompressor compressor(f.net, f.params);
  std::vector<std::vector<core::NrefFactorLayout>> layouts;
  const core::CompressedCorpus cc = compressor.Compress(empty, &layouts);
  EXPECT_EQ(cc.num_trajectories(), 0u);
  const core::StiuIndex index(f.net, f.grid, empty, cc.view(), layouts,
                              core::StiuParams{16, 900});
  const core::UtcqQueryProcessor qp(f.net, cc.view(), index);
  EXPECT_TRUE(qp.Where(0, 1000, 0.0).empty());
  EXPECT_TRUE(qp.When(0, 0, 0.5, 0.0).empty());
  EXPECT_TRUE(qp.Range({0, 0, 1e6, 1e6}, 1000, 0.0).empty());

  serve::QueryEngine engine(qp);
  EXPECT_EQ(engine.num_trajectories(), 0u);
  EXPECT_TRUE(engine.Where(0, 1000, 0.0).empty());
  EXPECT_TRUE(engine.Range({0, 0, 1e6, 1e6}, 1000, 0.0).empty());
}

TEST(ErrorPaths, UnopenedShardSetAnswersEmpty) {
  const shard::ShardedCorpus unopened;
  EXPECT_FALSE(unopened.is_open());
  EXPECT_EQ(unopened.num_trajectories(), 0u);
  EXPECT_TRUE(unopened.Where(0, 1000, 0.0).empty());
  EXPECT_TRUE(unopened.When(0, 0, 0.5, 0.0).empty());
  EXPECT_TRUE(unopened.Range({0, 0, 1e6, 1e6}, 1000, 0.0).empty());
}

TEST(ErrorPaths, TierWithEmptyLiveTailServesSealedOnly) {
  ErrorPathFixture& f = Fixture();
  // A sealed-only snapshot (live == nullptr) is exactly the state right
  // after a full flush; every global id routes to the sealed set and
  // nothing indexes into the missing tail.
  ingest::LiveShard live(f.net, f.grid, f.params, core::StiuParams{16, 900});
  const std::string manifest =
      ::testing::TempDir() + "/verify_tier_empty_live.utcq";
  ingest::Flusher flusher(f.net, manifest);
  std::string error;
  std::shared_ptr<const shard::ShardedCorpus> sealed;
  ASSERT_TRUE(flusher.Open(&error, &sealed)) << error;
  for (size_t j = 0; j < 4; ++j) live.Append(f.corpus[j]);
  const auto snap = live.Snapshot();
  ASSERT_TRUE(flusher.Flush(*snap, &error, &sealed)) << error;
  live.DropFlushed(snap->count());

  auto tier_snap = std::make_shared<serve::TierSnapshot>();
  tier_snap->sealed = sealed;
  tier_snap->live = live.Snapshot();  // nullptr: the shard is empty
  EXPECT_EQ(tier_snap->live, nullptr);

  const test::FixedTier tier(tier_snap);
  serve::QueryEngine engine(tier);
  EXPECT_EQ(engine.num_trajectories(), 4u);
  EXPECT_FALSE(engine.Where(0, f.corpus[0].times.front(), 0.0).empty());
  EXPECT_TRUE(engine.Where(4, 1000, 0.0).empty());   // first missing id
  EXPECT_TRUE(engine.Where(99, 1000, 0.0).empty());  // far out of range
  const auto bbox = f.net.bounding_box();
  (void)engine.Range({bbox.min_x, bbox.min_y, bbox.max_x, bbox.max_y},
                     f.corpus[0].times.front(), 0.05);

  std::remove(manifest.c_str());
  std::remove(shard::ShardArchivePath(manifest, 0).c_str());
}

TEST(ErrorPaths, ZeroByteCacheBudgetDecodesEveryTimeAndStaysEmpty) {
  ErrorPathFixture& f = Fixture();

  // The cache itself: a 0-byte budget must serve every lookup by decode,
  // retain nothing, and still pin the handed-out value for the caller.
  serve::DecodedTrajCache cache(0, 4);
  const auto decode = [&f] { return f.sys->decoder().DecodeTraj(0); };
  const auto a = cache.GetOrDecode(1, decode);
  const auto b = cache.GetOrDecode(1, decode);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->times, b->times);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.resident_entries, 0u);
  EXPECT_EQ(stats.resident_bytes, 0u);
  EXPECT_EQ(cache.Peek(1), nullptr);

  // And through the engine: a 0-budget engine answers exactly like the
  // uncached processor.
  serve::EngineOptions opts;
  opts.cache_budget_bytes = 0;
  serve::QueryEngine engine(f.sys->queries(), opts);
  for (uint32_t j = 0; j < 4; ++j) {
    const auto t = f.corpus[j].times.front();
    const auto got = engine.Where(j, t, 0.0);
    const auto want = f.sys->queries().Where(j, t, 0.0);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], want[i]);
  }
  EXPECT_EQ(engine.stats().cache_resident_entries, 0u);
}

}  // namespace
}  // namespace utcq
