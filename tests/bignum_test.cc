#include <gtest/gtest.h>

#include "common/bignum.h"
#include "common/rng.h"

namespace utcq::common {
namespace {

TEST(BigNum, ZeroAndSmallValues) {
  BigNum z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.BitLength(), 0);
  BigNum one(1);
  EXPECT_FALSE(one.IsZero());
  EXPECT_EQ(one.BitLength(), 1);
  BigNum big(0xFFFFFFFFFFFFull);
  EXPECT_EQ(big.BitLength(), 48);
}

TEST(BigNum, MulAddDivModInverse) {
  BigNum n;
  const std::vector<std::pair<uint32_t, uint32_t>> digits = {
      {7, 3}, {12, 11}, {5, 0}, {1000003, 999999}, {2, 1}};
  for (size_t i = digits.size(); i-- > 0;) {
    n.MulAdd(digits[i].first, digits[i].second);
  }
  for (const auto& [base, digit] : digits) {
    EXPECT_EQ(n.DivMod(base), digit);
  }
  EXPECT_TRUE(n.IsZero());
}

TEST(BigNum, MixedRadixRoundTripWide) {
  // 40 digits of varying bases exceed 64 bits comfortably.
  common::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint32_t> bases(40);
    std::vector<uint32_t> digits(40);
    for (size_t i = 0; i < bases.size(); ++i) {
      bases[i] = static_cast<uint32_t>(rng.UniformInt(1, 9));
      digits[i] = static_cast<uint32_t>(rng.UniformInt(0, bases[i] - 1));
    }
    BigNum n;
    for (size_t i = bases.size(); i-- > 0;) n.MulAdd(bases[i], digits[i]);
    for (size_t i = 0; i < bases.size(); ++i) {
      ASSERT_EQ(n.DivMod(bases[i]), digits[i]) << "trial " << trial;
    }
  }
}

TEST(BigNum, BitSerializationRoundTrip) {
  common::Rng rng(9);
  for (int trial = 0; trial < 40; ++trial) {
    BigNum n;
    for (int i = 0; i < 10; ++i) {
      n.MulAdd(static_cast<uint32_t>(rng.UniformInt(2, 1 << 20)),
               static_cast<uint32_t>(rng.UniformInt(0, 1000)));
    }
    const int width = n.BitLength() + static_cast<int>(rng.UniformInt(0, 7));
    BitWriter w;
    n.WriteBits(w, width);
    EXPECT_EQ(w.size_bits(), static_cast<size_t>(width));
    BitReader r(w);
    BigNum back = BigNum::ReadBits(r, width);
    EXPECT_EQ(back.limbs(), n.limbs()) << "trial " << trial;
  }
}

TEST(BigNum, WidthCapsHighBits) {
  BigNum n(0b1011);
  BitWriter w;
  n.WriteBits(w, 4);
  BitReader r(w);
  EXPECT_EQ(r.GetBits(4), 0b1011u);
}

}  // namespace
}  // namespace utcq::common
