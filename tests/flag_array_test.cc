#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/flag_array.h"
#include "core/improved_ted.h"
#include "core/referential.h"
#include "paper_example.h"

namespace utcq::core {
namespace {

TEST(FlagArray, OnesBeforePrefixCounts) {
  const FlagArray fa({1, 0, 1, 1, 0});
  EXPECT_EQ(fa.OnesBefore(0), 0u);
  EXPECT_EQ(fa.OnesBefore(1), 1u);
  EXPECT_EQ(fa.OnesBefore(2), 1u);
  EXPECT_EQ(fa.OnesBefore(3), 2u);
  EXPECT_EQ(fa.OnesBefore(5), 3u);
  EXPECT_EQ(fa.size(), 5u);
}

uint32_t BruteOnesInPrefix(const std::vector<uint8_t>& bits, uint32_t q) {
  uint32_t ones = 0;
  for (uint32_t i = 0; i < q && i < bits.size(); ++i) ones += bits[i] ? 1 : 0;
  return ones;
}

TEST(FlagArray, OnesInNrefPrefixPaperExample) {
  const auto ex = test::MakePaperExample();
  const auto r1 = BuildInstanceRepr(ex.net, ex.tu.instances[0]);
  const auto r2 = BuildInstanceRepr(ex.net, ex.tu.instances[1]);
  const FlagArray omega(r1.tflag_trimmed);
  TflagCom com;
  com.mode = TflagMode::kFactors;
  ASSERT_TRUE(FactorizeTflagFactors(r1.tflag_trimmed, r2.tflag_trimmed,
                                    &com.factors, &com.last_has_m,
                                    &com.last_m));
  for (uint32_t q = 0; q <= r2.tflag_trimmed.size(); ++q) {
    EXPECT_EQ(OnesInNrefPrefix(com, r1.tflag_trimmed, omega, q),
              BruteOnesInPrefix(r2.tflag_trimmed, q))
        << "q = " << q;
  }
}

TEST(FlagArray, OnesInNrefPrefixAllModes) {
  common::Rng rng(13);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t ref_len = static_cast<size_t>(rng.UniformInt(1, 24));
    const size_t tgt_len = static_cast<size_t>(rng.UniformInt(1, 24));
    std::vector<uint8_t> ref(ref_len), target(tgt_len);
    for (auto& b : ref) b = rng.Bernoulli(0.7) ? 1 : 0;
    for (auto& b : target) b = rng.Bernoulli(0.7) ? 1 : 0;
    const auto com = FactorizeTflag(ref, target);
    const FlagArray omega(ref);
    for (uint32_t q = 0; q <= target.size(); ++q) {
      EXPECT_EQ(OnesInNrefPrefix(com, ref, omega, q, target),
                BruteOnesInPrefix(target, q))
          << "trial " << trial << " q " << q << " mode "
          << static_cast<int>(com.mode);
    }
  }
}

TEST(FlagArray, GammaMatchesOriginalBitString) {
  common::Rng rng(29);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t entries = static_cast<size_t>(rng.UniformInt(2, 20));
    std::vector<uint8_t> ref_trim(entries - 2), tgt_trim(entries - 2);
    for (auto& b : ref_trim) b = rng.Bernoulli(0.6) ? 1 : 0;
    for (auto& b : tgt_trim) b = rng.Bernoulli(0.6) ? 1 : 0;
    const auto com = FactorizeTflag(ref_trim, tgt_trim);
    const FlagArray omega(ref_trim);

    const auto original = UntrimTimeFlags(tgt_trim, entries);
    uint32_t running = 0;
    for (uint32_t g = 0; g < entries; ++g) {
      running += original[g] ? 1 : 0;
      EXPECT_EQ(GammaNref(com, ref_trim, omega, g,
                          static_cast<uint32_t>(entries), tgt_trim),
                running)
          << "trial " << trial << " g " << g;
    }
  }
}

TEST(FlagArray, GammaDegenerateLengths) {
  const FlagArray omega({});
  TflagCom identical;  // mode kIdentical
  EXPECT_EQ(GammaNref(identical, {}, omega, 0, 1), 1u);
  EXPECT_EQ(GammaNref(identical, {}, omega, 0, 2), 1u);
  EXPECT_EQ(GammaNref(identical, {}, omega, 1, 2), 2u);
  EXPECT_EQ(GammaNref(identical, {}, omega, 0, 0), 0u);
}

}  // namespace
}  // namespace utcq::core
