// Differential pinning of the strategy kernel tiers (DESIGN.md §12).
//
// Every kernel of every supported tier is compared against the kBitloop
// reference table on the same inputs: return values, cursor positions and
// overflow() latching must match bit-for-bit — on clean streams, truncated
// streams, structurally invalid codes and buffers whose final partial byte
// carries garbage padding. The suite closes with corpus-level proof: full
// decompression and the three probabilistic queries produce identical
// results under every tier.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/bitstream.h"
#include "common/exp_golomb.h"
#include "common/pddp.h"
#include "common/rng.h"
#include "core/utcq.h"
#include "network/grid_index.h"
#include "strategies/strategies.h"
#include "test_fixtures.h"
#include "traj/generator.h"
#include "traj/profiles.h"

namespace utcq {
namespace {

using common::BitReader;
using common::BitWriter;
using common::Rng;
using strategies::Kernels;
using strategies::Tier;

/// The tiers a differential test iterates: every supported non-reference
/// tier (the reference itself is the oracle).
std::vector<Tier> SupportedTestTiers() {
  std::vector<Tier> tiers;
  for (const Tier t : {Tier::kScalar, Tier::kSse42, Tier::kAvx2}) {
    if (strategies::TierSupported(t)) tiers.push_back(t);
  }
  return tiers;
}

const Kernels& Reference() {
  const Kernels* ref = strategies::KernelsFor(Tier::kBitloop);
  EXPECT_NE(ref, nullptr);
  return *ref;
}

/// Restores the startup-active table after a test that calls SetActive.
class ActiveTierGuard {
 public:
  ActiveTierGuard() : saved_(strategies::Active().tier) {}
  ~ActiveTierGuard() { strategies::SetActive(saved_); }

 private:
  Tier saved_;
};

/// A random byte buffer viewed as `size_bits` bits. The bytes beyond the
/// last valid bit stay random on purpose: PeekBits64-based kernels must
/// mask that padding to the phantom zeros the bit loop reads.
struct RandomStream {
  std::vector<uint8_t> bytes;
  size_t size_bits = 0;

  BitReader reader() const { return BitReader(bytes.data(), size_bits); }
};

RandomStream MakeRandomStream(Rng& rng, size_t max_bytes) {
  RandomStream s;
  const size_t n = static_cast<size_t>(rng.UniformInt(1, max_bytes));
  s.bytes.resize(n);
  for (auto& b : s.bytes) {
    b = static_cast<uint8_t>(rng.UniformInt(0, 255));
  }
  s.size_bits = n * 8 - static_cast<size_t>(rng.UniformInt(0, 7));
  return s;
}

void ExpectSameState(const BitReader& got, const BitReader& want,
                     const char* tier, const char* what) {
  EXPECT_EQ(got.position(), want.position()) << tier << ": " << what;
  EXPECT_EQ(got.overflow(), want.overflow()) << tier << ": " << what;
}

TEST(StrategyPlumbing, BaselineTiersAlwaysSupported) {
  EXPECT_TRUE(strategies::TierSupported(Tier::kBitloop));
  EXPECT_TRUE(strategies::TierSupported(Tier::kScalar));
  EXPECT_NE(strategies::BestSupportedTier(), Tier::kBitloop);
  EXPECT_TRUE(strategies::TierSupported(strategies::BestSupportedTier()));
  // The active table is one of the supported ones and self-describes.
  const Kernels& active = strategies::Active();
  EXPECT_TRUE(strategies::TierSupported(active.tier));
  EXPECT_STREQ(active.name, strategies::TierName(active.tier));
}

TEST(StrategyPlumbing, KernelsForAgreesWithTierSupported) {
  for (int i = 0; i < strategies::kNumTiers; ++i) {
    const Tier t = static_cast<Tier>(i);
    EXPECT_EQ(strategies::KernelsFor(t) != nullptr,
              strategies::TierSupported(t))
        << strategies::TierName(t);
  }
}

TEST(StrategyPlumbing, ParseTierRoundTrips) {
  for (int i = 0; i < strategies::kNumTiers; ++i) {
    const Tier t = static_cast<Tier>(i);
    Tier parsed;
    ASSERT_TRUE(strategies::ParseTier(strategies::TierName(t), &parsed));
    EXPECT_EQ(parsed, t);
  }
  Tier parsed;
  EXPECT_FALSE(strategies::ParseTier("avx512", &parsed));
  EXPECT_FALSE(strategies::ParseTier("", &parsed));
}

TEST(StrategyPlumbing, SetActiveSwapsAndRestores) {
  ActiveTierGuard guard;
  for (int i = 0; i < strategies::kNumTiers; ++i) {
    const Tier t = static_cast<Tier>(i);
    if (!strategies::TierSupported(t)) {
      EXPECT_FALSE(strategies::SetActive(t));
      continue;
    }
    ASSERT_TRUE(strategies::SetActive(t));
    EXPECT_EQ(strategies::Active().tier, t);
  }
}

TEST(StrategyKernels, GetBitsMatchesReference) {
  const uint64_t seed = test::BaseSeed(1001);
  Rng rng(seed);
  const Kernels& ref = Reference();
  for (const Tier tier : SupportedTestTiers()) {
    const Kernels& ks = *strategies::KernelsFor(tier);
    for (int trial = 0; trial < 200; ++trial) {
      const RandomStream s = MakeRandomStream(rng, 40);
      BitReader got = s.reader();
      BitReader want = s.reader();
      // Read width sequences that cross word boundaries, hit the end and
      // keep reading past it (phantom zeros + latched overflow).
      while (!want.overflow()) {
        const int width = static_cast<int>(rng.UniformInt(0, 64));
        EXPECT_EQ(ks.get_bits(got, width), ref.get_bits(want, width))
            << strategies::TierName(tier) << " seed=" << seed
            << " pos=" << want.position();
        ExpectSameState(got, want, strategies::TierName(tier), "get_bits");
      }
      // A read after the latch behaves identically too.
      EXPECT_EQ(ks.get_bits(got, 17), ref.get_bits(want, 17));
      ExpectSameState(got, want, strategies::TierName(tier), "post-latch");
    }
  }
}

TEST(StrategyKernels, UnaryScansMatchReferenceOnRandomStreams) {
  const uint64_t seed = test::BaseSeed(1002);
  Rng rng(seed);
  const Kernels& ref = Reference();
  for (const Tier tier : SupportedTestTiers()) {
    const Kernels& ks = *strategies::KernelsFor(tier);
    for (int trial = 0; trial < 300; ++trial) {
      // Biased bits make long runs (including overlong ones) likely.
      const double p_one = rng.Uniform(0.02, 0.98);
      BitWriter w;
      const int nbits = static_cast<int>(rng.UniformInt(1, 400));
      for (int i = 0; i < nbits; ++i) w.PutBit(rng.Bernoulli(p_one));
      const bool zeros = rng.Bernoulli(0.5);
      const int max_run = static_cast<int>(rng.UniformInt(0, 80));

      BitReader got(w);
      BitReader want(w);
      auto scan = zeros ? ks.scan_zero_run : ks.scan_one_run;
      auto ref_scan = zeros ? ref.scan_zero_run : ref.scan_one_run;
      while (true) {
        const int a = scan(got, max_run);
        const int b = ref_scan(want, max_run);
        EXPECT_EQ(a, b) << strategies::TierName(tier) << " seed=" << seed
                        << " zeros=" << zeros << " max_run=" << max_run
                        << " pos=" << want.position();
        ExpectSameState(got, want, strategies::TierName(tier), "scan");
        if (a != b || a < 0) break;
      }
    }
  }
}

TEST(StrategyKernels, UnaryScansMatchReferenceOnCraftedStreams) {
  const Kernels& ref = Reference();
  // Runs straddling the crafted edges: exactly max_run, one over, truncated
  // by the stream end, empty stream, and a run ending in garbage padding.
  struct Case {
    size_t run;        // leading non-terminator bits
    bool terminated;   // whether a terminator bit follows
    size_t trailing;   // extra random-ish bits after the terminator
    int max_run;
  };
  const Case cases[] = {
      {0, true, 10, 63},   {1, true, 0, 63},    {63, true, 5, 63},
      {64, true, 5, 63},   {62, true, 0, 62},   {63, true, 0, 62},
      {10, false, 0, 63},  {0, false, 0, 63},   {70, false, 0, 63},
      {5, true, 3, 5},     {6, true, 3, 5},     {64, false, 0, 63},
      {65, false, 0, 63},  {128, true, 1, 200}, {130, false, 0, 200},
  };
  for (const Tier tier : SupportedTestTiers()) {
    const Kernels& ks = *strategies::KernelsFor(tier);
    for (const bool zeros : {true, false}) {
      for (const Case& c : cases) {
        BitWriter w;
        w.PutRun(!zeros ? true : false, c.run);
        if (c.terminated) w.PutBit(zeros);
        for (size_t i = 0; i < c.trailing; ++i) w.PutBit((i & 1) != 0);

        // Garbage padding: view one bit fewer than written so the byte's
        // tail carries stale bits past size_bits.
        for (const size_t shrink : {size_t{0}, size_t{1}}) {
          if (shrink > w.size_bits()) continue;
          const size_t bits = w.size_bits() - shrink;
          BitReader got(w.bytes().data(), bits);
          BitReader want(w.bytes().data(), bits);
          auto scan = zeros ? ks.scan_zero_run : ks.scan_one_run;
          auto ref_scan = zeros ? ref.scan_zero_run : ref.scan_one_run;
          EXPECT_EQ(scan(got, c.max_run), ref_scan(want, c.max_run))
              << strategies::TierName(tier) << " zeros=" << zeros
              << " run=" << c.run << " max_run=" << c.max_run
              << " shrink=" << shrink;
          ExpectSameState(got, want, strategies::TierName(tier), "crafted");
        }
      }
    }
  }
}

TEST(StrategyKernels, UnaryScansMatchReferenceWithPreLatchedOverflow) {
  const Kernels& ref = Reference();
  BitWriter w;
  w.PutRun(false, 20);
  for (const Tier tier : SupportedTestTiers()) {
    const Kernels& ks = *strategies::KernelsFor(tier);
    BitReader got(w);
    BitReader want(w);
    got.MarkOverflow();
    want.MarkOverflow();
    EXPECT_EQ(ks.scan_zero_run(got, 63), ref.scan_zero_run(want, 63))
        << strategies::TierName(tier);
    ExpectSameState(got, want, strategies::TierName(tier), "pre-latched");
    EXPECT_EQ(ks.scan_one_run(got, 62), ref.scan_one_run(want, 62))
        << strategies::TierName(tier);
    ExpectSameState(got, want, strategies::TierName(tier), "pre-latched");
  }
}

TEST(StrategyKernels, ReadFieldsAndUnpackBitsMatchReference) {
  const uint64_t seed = test::BaseSeed(1003);
  Rng rng(seed);
  const Kernels& ref = Reference();
  for (const Tier tier : SupportedTestTiers()) {
    const Kernels& ks = *strategies::KernelsFor(tier);
    for (int trial = 0; trial < 200; ++trial) {
      const RandomStream s = MakeRandomStream(rng, 64);
      // Widths both sides of the AVX2 kernel's kMaxSimdFieldWidth split,
      // plus degenerate width 0; counts that overrun the stream exercise
      // the tail/overflow path.
      const int width = static_cast<int>(rng.UniformInt(0, 20));
      const size_t n = static_cast<size_t>(rng.UniformInt(0, 80));

      BitReader got = s.reader();
      BitReader want = s.reader();
      std::vector<uint32_t> out_got(n + 1, 0xA5A5A5A5u);
      std::vector<uint32_t> out_want(n + 1, 0xA5A5A5A5u);
      ks.read_fields(got, width, out_got.data(), n);
      ref.read_fields(want, width, out_want.data(), n);
      EXPECT_EQ(out_got, out_want)
          << strategies::TierName(tier) << " seed=" << seed
          << " width=" << width << " n=" << n;
      ExpectSameState(got, want, strategies::TierName(tier), "read_fields");

      BitReader bgot = s.reader();
      BitReader bwant = s.reader();
      const size_t skip = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(s.size_bits)));
      bgot.Advance(skip);
      bwant.Advance(skip);
      std::vector<uint8_t> bits_got(n + 1, 0xEE);
      std::vector<uint8_t> bits_want(n + 1, 0xEE);
      ks.unpack_bits(bgot, bits_got.data(), n);
      ref.unpack_bits(bwant, bits_want.data(), n);
      EXPECT_EQ(bits_got, bits_want)
          << strategies::TierName(tier) << " seed=" << seed << " n=" << n
          << " skip=" << skip;
      ExpectSameState(bgot, bwant, strategies::TierName(tier), "unpack_bits");
    }
  }
}

TEST(StrategyKernels, CodecsMatchReferenceThroughSetActive) {
  // The integration-shaped differential: the real codec entry points
  // (GetExpGolomb / GetImprovedExpGolomb / PddpCodec::Decode) dispatch
  // through Active(), so decoding one stream under each tier must yield
  // identical values, cursor positions and overflow state.
  ActiveTierGuard guard;
  const uint64_t seed = test::BaseSeed(1004);
  Rng rng(seed);
  const common::PddpCodec pddp(0.001);

  for (int trial = 0; trial < 50; ++trial) {
    BitWriter w;
    std::vector<int> ops;      // 0: eg(k), 1: improved, 2: pddp
    std::vector<int> ks_ord;   // order k per eg op
    const int n_ops = static_cast<int>(rng.UniformInt(1, 120));
    for (int i = 0; i < n_ops; ++i) {
      const int op = static_cast<int>(rng.UniformInt(0, 2));
      ops.push_back(op);
      int k = 0;
      switch (op) {
        case 0: {
          k = static_cast<int>(rng.UniformInt(0, 8));
          const uint64_t v = static_cast<uint64_t>(
              rng.UniformInt(0, rng.Bernoulli(0.2) ? 2000000 : 200));
          common::PutExpGolomb(w, v, k);
          break;
        }
        case 1:
          common::PutImprovedExpGolomb(w, rng.UniformInt(-5000, 5000));
          break;
        default:
          pddp.Encode(w, rng.Uniform(0.0, 1.0));
          break;
      }
      ks_ord.push_back(k);
    }
    // Half the trials truncate the stream mid-code to pin the overflow
    // paths through the real codecs.
    size_t bits = w.size_bits();
    if (rng.Bernoulli(0.5)) {
      bits = static_cast<size_t>(rng.UniformInt(0, bits));
    }

    struct Run {
      std::vector<uint64_t> eg;
      std::vector<int64_t> ieg;
      std::vector<double> pd;
      size_t pos;
      bool overflow;
    };
    auto decode_all = [&](Tier tier) {
      EXPECT_TRUE(strategies::SetActive(tier));
      Run run;
      BitReader r(w.bytes().data(), bits);
      for (int i = 0; i < n_ops; ++i) {
        switch (ops[i]) {
          case 0:
            run.eg.push_back(common::GetExpGolomb(r, ks_ord[i]));
            break;
          case 1:
            run.ieg.push_back(common::GetImprovedExpGolomb(r));
            break;
          default:
            run.pd.push_back(pddp.Decode(r));
            break;
        }
      }
      run.pos = r.position();
      run.overflow = r.overflow();
      return run;
    };

    const Run want = decode_all(Tier::kBitloop);
    for (const Tier tier : SupportedTestTiers()) {
      const Run got = decode_all(tier);
      EXPECT_EQ(got.eg, want.eg)
          << strategies::TierName(tier) << " seed=" << seed;
      EXPECT_EQ(got.ieg, want.ieg)
          << strategies::TierName(tier) << " seed=" << seed;
      ASSERT_EQ(got.pd.size(), want.pd.size()) << strategies::TierName(tier);
      for (size_t i = 0; i < want.pd.size(); ++i) {
        // Bitwise double equality, not approximate.
        EXPECT_EQ(std::memcmp(&got.pd[i], &want.pd[i], sizeof(double)), 0)
            << strategies::TierName(tier) << " seed=" << seed << " i=" << i;
      }
      EXPECT_EQ(got.pos, want.pos) << strategies::TierName(tier);
      EXPECT_EQ(got.overflow, want.overflow) << strategies::TierName(tier);
    }
  }
}

TEST(StrategyKernels, PddpDecodeRejectsOversizedLengthLikeReference) {
  const Kernels& ref = Reference();
  // A length field beyond max_bits: structurally invalid (no real codec
  // writes one), must latch overflow after consuming exactly the length
  // field. Driven with raw kernel parameters because a real PddpCodec's
  // field width cannot represent an out-of-range length.
  constexpr int kLengthBits = 4;
  constexpr int kMaxBits = 7;
  BitWriter w;
  w.PutBits(kMaxBits + 2, kLengthBits);
  w.PutBits(0x5A5A5A5A5A5A5Aull, 56);  // bits a buggy kernel might consume
  w.PutBits(0xFF, 8);                  // pad past one peek window
  for (const Tier tier : SupportedTestTiers()) {
    const Kernels& ks = *strategies::KernelsFor(tier);
    BitReader got(w);
    BitReader want(w);
    const double a = ks.pddp_decode(got, kLengthBits, kMaxBits);
    const double b = ref.pddp_decode(want, kLengthBits, kMaxBits);
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
        << strategies::TierName(tier);
    EXPECT_TRUE(got.overflow());
    EXPECT_EQ(got.position(), static_cast<size_t>(kLengthBits));
    ExpectSameState(got, want, strategies::TierName(tier), "pddp oversize");
  }
}

TEST(StrategyKernels, BatchedDeltaDecodeMatchesReference) {
  const uint64_t seed = test::BaseSeed(1006);
  Rng rng(seed);
  for (int trial = 0; trial < 300; ++trial) {
    // A run of improved Exp-Golomb deltas biased toward the group-0 codes
    // real time streams are made of, with occasional large outliers.
    const int count = static_cast<int>(rng.UniformInt(0, 80));
    BitWriter w;
    std::vector<int64_t> want_vals;
    for (int i = 0; i < count; ++i) {
      int64_t delta = 0;
      const int shape = static_cast<int>(rng.UniformInt(0, 9));
      if (shape >= 7) {
        delta = rng.UniformInt(-5000, 5000);
      } else if (shape >= 4) {
        delta = rng.UniformInt(-3, 3);
      }
      common::PutImprovedExpGolomb(w, delta);
      want_vals.push_back(delta);
    }
    // Half the trials truncate the stream mid-code; the batch must stop at
    // the same symbol with the same cursor and overflow state.
    size_t bits = w.size_bits();
    if (trial % 2 == 1 && bits > 0) {
      bits -= static_cast<size_t>(rng.UniformInt(1, bits));
    }
    const BitReader base(w.bytes().data(), bits);
    // Ask for more symbols than were written sometimes: the short-count
    // return path must agree too.
    const size_t ask =
        static_cast<size_t>(count) + static_cast<size_t>(rng.UniformInt(0, 2));
    std::vector<int64_t> want(ask, -777), got(ask, -777);
    BitReader want_r = base;
    const size_t want_n = Reference().decode_ieg(want_r, want.data(), ask);
    for (const Tier tier : SupportedTestTiers()) {
      const Kernels& ks = *strategies::KernelsFor(tier);
      BitReader got_r = base;
      std::fill(got.begin(), got.end(), -777);
      const size_t got_n = ks.decode_ieg(got_r, got.data(), ask);
      EXPECT_EQ(got_n, want_n) << strategies::TierName(tier);
      EXPECT_EQ(got, want) << strategies::TierName(tier);
      ExpectSameState(got_r, want_r, strategies::TierName(tier),
                      "decode_ieg");
    }
    // On clean full-length streams the decoded deltas are the encoder's.
    if (trial % 2 == 0) {
      ASSERT_EQ(want_n, static_cast<size_t>(count));
      for (int i = 0; i < count; ++i) EXPECT_EQ(want[i], want_vals[i]);
    }
  }
}

TEST(StrategyKernels, BatchedPddpRunMatchesReference) {
  const uint64_t seed = test::BaseSeed(1007);
  Rng rng(seed);
  const common::PddpCodec codec(0.001);
  for (int trial = 0; trial < 200; ++trial) {
    const int count = static_cast<int>(rng.UniformInt(0, 60));
    BitWriter w;
    for (int i = 0; i < count; ++i) {
      codec.Encode(w, rng.Uniform(0.0, 1.0));
    }
    size_t bits = w.size_bits();
    if (trial % 2 == 1 && bits > 0) {
      bits -= static_cast<size_t>(rng.UniformInt(1, bits));
    }
    const BitReader base(w.bytes().data(), bits);
    std::vector<double> want(static_cast<size_t>(count), -1.0);
    std::vector<double> got(static_cast<size_t>(count), -1.0);
    BitReader want_r = base;
    Reference().pddp_run(want_r, codec.length_field_bits(),
                         codec.max_code_bits(), want.data(), want.size());
    for (const Tier tier : SupportedTestTiers()) {
      const Kernels& ks = *strategies::KernelsFor(tier);
      BitReader got_r = base;
      std::fill(got.begin(), got.end(), -1.0);
      ks.pddp_run(got_r, codec.length_field_bits(), codec.max_code_bits(),
                  got.data(), got.size());
      EXPECT_EQ(std::memcmp(got.data(), want.data(),
                            want.size() * sizeof(double)),
                0)
          << strategies::TierName(tier);
      ExpectSameState(got_r, want_r, strategies::TierName(tier), "pddp_run");
    }
  }
}

TEST(StrategyKernels, FloatKernelsAreBitExact) {
  const uint64_t seed = test::BaseSeed(1005);
  Rng rng(seed);
  for (const Tier tier : SupportedTestTiers()) {
    const Kernels& ks = *strategies::KernelsFor(tier);
    for (int trial = 0; trial < 100; ++trial) {
      // Sizes around the AVX2 4-lane width, magnitudes where contraction
      // or reassociation would visibly change the rounding.
      const size_t n = static_cast<size_t>(rng.UniformInt(0, 13));
      std::vector<double> a(n), b(n), c(n), got(n, -1.0), want(n, -2.0);
      for (size_t i = 0; i < n; ++i) {
        a[i] = rng.Uniform(-1e7, 1e7);
        b[i] = rng.Uniform(-1e7, 1e7);
        c[i] = rng.Uniform(-1e3, 1e3);
      }
      const double f = rng.Uniform(-2.0, 2.0);

      ks.lerp(a.data(), b.data(), f, got.data(), n);
      for (size_t i = 0; i < n; ++i) want[i] = a[i] + (b[i] - a[i]) * f;
      EXPECT_EQ(std::memcmp(got.data(), want.data(), n * sizeof(double)), 0)
          << strategies::TierName(tier) << " lerp seed=" << seed;

      ks.mul_add(a.data(), b.data(), c.data(), got.data(), n);
      for (size_t i = 0; i < n; ++i) want[i] = a[i] + b[i] * c[i];
      EXPECT_EQ(std::memcmp(got.data(), want.data(), n * sizeof(double)), 0)
          << strategies::TierName(tier) << " mul_add seed=" << seed;
    }
  }
}

TEST(StrategyCorpus, AllTiersDecodeAndQueryIdentically) {
  // End-to-end: one compressed corpus, decompressed and queried under
  // every tier. Hit-for-hit identical — positions and probabilities are
  // compared as exact doubles, not approximately.
  ActiveTierGuard guard;
  const auto profile = traj::ChengduProfile();
  const auto net = test::MakeSmallCity(profile, 14);
  const auto corpus = test::MakeSmallCorpus(net, profile, 2024, 40);

  core::UtcqParams params;
  params.default_interval_s = profile.default_interval_s;
  const network::GridIndex grid(net, 8);
  const core::UtcqSystem sys(net, grid, corpus, params, {8, 900});

  struct TierRun {
    traj::UncertainCorpus decoded;
    std::vector<std::vector<traj::WhereHit>> where;
    std::vector<std::vector<traj::WhenHit>> when;
    std::vector<traj::RangeResult> range;
  };
  const auto bbox = net.bounding_box();
  auto run_tier = [&](Tier tier) {
    EXPECT_TRUE(strategies::SetActive(tier));
    TierRun run;
    run.decoded = sys.decoder().DecompressAll();
    Rng rng(7);  // same query workload for every tier
    for (int q = 0; q < 30; ++q) {
      const size_t j =
          static_cast<size_t>(rng.UniformInt(0, corpus.size() - 1));
      const auto& tu = corpus[j];
      const traj::Timestamp t =
          tu.times.front() +
          rng.UniformInt(0, std::max<int64_t>(
                                tu.times.back() - tu.times.front(), 1));
      const double alpha = rng.Uniform(0.05, 0.8);
      run.where.push_back(sys.queries().Where(j, t, alpha));

      const auto& inst0 = tu.instances.front();
      const auto& loc = inst0.locations[static_cast<size_t>(
          rng.UniformInt(0, inst0.locations.size() - 1))];
      run.when.push_back(sys.queries().When(
          j, inst0.path[loc.path_index], loc.rd, alpha));

      const double cx = rng.Uniform(bbox.min_x, bbox.max_x);
      const double cy = rng.Uniform(bbox.min_y, bbox.max_y);
      const double half = rng.Uniform(100.0, 600.0);
      run.range.push_back(sys.queries().Range(
          {cx - half, cy - half, cx + half, cy + half}, t, alpha));
    }
    return run;
  };

  const TierRun want = run_tier(Tier::kBitloop);
  ASSERT_EQ(want.decoded.size(), corpus.size());
  for (const Tier tier : SupportedTestTiers()) {
    const TierRun got = run_tier(tier);
    ASSERT_EQ(got.decoded.size(), want.decoded.size())
        << strategies::TierName(tier);
    for (size_t j = 0; j < want.decoded.size(); ++j) {
      EXPECT_EQ(got.decoded[j].id, want.decoded[j].id);
      EXPECT_EQ(got.decoded[j].times, want.decoded[j].times)
          << strategies::TierName(tier) << " traj " << j;
      EXPECT_EQ(got.decoded[j].instances, want.decoded[j].instances)
          << strategies::TierName(tier) << " traj " << j;
    }
    EXPECT_EQ(got.where, want.where) << strategies::TierName(tier);
    EXPECT_EQ(got.when, want.when) << strategies::TierName(tier);
    EXPECT_EQ(got.range, want.range) << strategies::TierName(tier);
  }
}

}  // namespace
}  // namespace utcq
