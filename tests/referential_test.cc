#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/improved_ted.h"
#include "core/referential.h"
#include "paper_example.h"
#include "traj/types.h"

namespace utcq::core {
namespace {

// --------------------------------------------------- improved TED & SIAR

TEST(ImprovedTed, PaperTable3Representation) {
  const auto ex = test::MakePaperExample();
  const auto r1 = BuildInstanceRepr(ex.net, ex.tu.instances[0]);
  const auto r2 = BuildInstanceRepr(ex.net, ex.tu.instances[1]);
  const auto r3 = BuildInstanceRepr(ex.net, ex.tu.instances[2]);
  EXPECT_EQ(r1.entries, (std::vector<uint32_t>{1, 2, 1, 2, 2, 0, 4, 1, 0}));
  // Trimmed time flags (Table 3 drops the always-1 first/last bits).
  EXPECT_EQ(r1.tflag_trimmed, (std::vector<uint8_t>{0, 1, 0, 1, 1, 1, 1}));
  EXPECT_EQ(r2.tflag_trimmed, (std::vector<uint8_t>{1, 0, 0, 1, 1, 1, 1}));
  EXPECT_EQ(r3.tflag_trimmed, (std::vector<uint8_t>{0, 1, 0, 1, 1, 1, 1}));
  EXPECT_DOUBLE_EQ(r1.p, 0.75);
  EXPECT_EQ(r1.sv, ex.v[1]);
  EXPECT_EQ(r2.sv, ex.v[1]);
}

TEST(ImprovedTed, UntrimRestoresSentinelBits) {
  EXPECT_EQ(UntrimTimeFlags({0, 1, 0}, 5),
            (std::vector<uint8_t>{1, 0, 1, 0, 1}));
  EXPECT_EQ(UntrimTimeFlags({}, 2), (std::vector<uint8_t>{1, 1}));
  EXPECT_EQ(UntrimTimeFlags({}, 1), (std::vector<uint8_t>{1}));
  EXPECT_TRUE(UntrimTimeFlags({}, 0).empty());
}

TEST(Siar, PaperExampleDeltas) {
  // <5:03:25, 0, 1, 0, -1, 0, 0> with Ts = 240 (Section 4.1).
  const std::vector<traj::Timestamp> times = {18205, 18445, 18686, 18926,
                                              19165, 19405, 19645};
  const auto deltas = SiarDeltas(times, 240);
  EXPECT_EQ(deltas, (std::vector<int64_t>{0, 1, 0, -1, 0, 0}));
  EXPECT_EQ(SiarExpand(18205, deltas, 240), times);
}

TEST(Siar, RoundTripRandom) {
  common::Rng rng(31);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<traj::Timestamp> times{rng.UniformInt(0, 1000)};
    const int64_t ts = rng.UniformInt(1, 30);
    for (int i = 0; i < 30; ++i) {
      times.push_back(times.back() + std::max<int64_t>(1, ts + rng.UniformInt(-5, 60)));
    }
    const auto deltas = SiarDeltas(times, ts);
    EXPECT_EQ(SiarExpand(times[0], deltas, ts), times);
  }
}

// ------------------------------------------------------------- E factors

TEST(FactorizeE, PaperTable4ComE) {
  const auto ex = test::MakePaperExample();
  const auto ref = traj::BuildEdgeSequence(ex.net, ex.tu.instances[0]);
  const auto nref1 = traj::BuildEdgeSequence(ex.net, ex.tu.instances[1]);
  const auto nref2 = traj::BuildEdgeSequence(ex.net, ex.tu.instances[2]);

  // Com_E(Nref_11, Ref_1) = <(0,1,1), (2,7)>.
  const auto f1 = FactorizeE(ref, nref1);
  ASSERT_EQ(f1.size(), 2u);
  EXPECT_EQ(f1[0], (EFactor{0, 1, 1, false}));
  EXPECT_EQ(f1[1], (EFactor{2, 7, std::nullopt, false}));

  // Com_E(Nref_12, Ref_1) = <(0,8,2)>.
  const auto f2 = FactorizeE(ref, nref2);
  ASSERT_EQ(f2.size(), 1u);
  EXPECT_EQ(f2[0], (EFactor{0, 8, 2, false}));

  EXPECT_EQ(ExpandE(ref, f1), nref1);
  EXPECT_EQ(ExpandE(ref, f2), nref2);
}

TEST(FactorizeE, CaseBForAbsentSymbol) {
  // Section 4.2's example: E(Tu^1_4) = <3,2,1,2,2> against Ref_1: the
  // leading 3 does not occur in the reference -> factor (9, 3).
  const auto ex = test::MakePaperExample();
  const auto ref = traj::BuildEdgeSequence(ex.net, ex.tu.instances[0]);
  const std::vector<uint32_t> target = {3, 2, 1, 2, 2};
  const auto factors = FactorizeE(ref, target);
  ASSERT_GE(factors.size(), 2u);
  EXPECT_TRUE(factors[0].case_b);
  EXPECT_EQ(factors[0].s, ref.size());
  EXPECT_EQ(*factors[0].m, 3u);
  EXPECT_EQ(ExpandE(ref, factors), target);
}

TEST(FactorizeE, IdenticalSequencesYieldOneCompleteFactor) {
  const std::vector<uint32_t> seq = {1, 2, 3, 2, 1};
  const auto factors = FactorizeE(seq, seq);
  ASSERT_EQ(factors.size(), 1u);
  EXPECT_EQ(factors[0], (EFactor{0, 5, std::nullopt, false}));
}

TEST(FactorizeE, RandomRoundTrip) {
  common::Rng rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t ref_len = static_cast<size_t>(rng.UniformInt(1, 40));
    const size_t tgt_len = static_cast<size_t>(rng.UniformInt(1, 40));
    std::vector<uint32_t> ref(ref_len), target(tgt_len);
    for (auto& v : ref) v = static_cast<uint32_t>(rng.UniformInt(0, 5));
    for (auto& v : target) v = static_cast<uint32_t>(rng.UniformInt(0, 7));
    const auto factors = FactorizeE(ref, target);
    EXPECT_EQ(ExpandE(ref, factors), target);
  }
}

TEST(FactorizeE, MutatedCopiesProduceFewFactors) {
  common::Rng rng(78);
  std::vector<uint32_t> ref(60);
  for (auto& v : ref) v = static_cast<uint32_t>(rng.UniformInt(1, 4));
  auto target = ref;
  target[20] = 5;
  target[40] = 6;
  const auto factors = FactorizeE(ref, target);
  EXPECT_LE(factors.size(), 3u);
  EXPECT_EQ(ExpandE(ref, factors), target);
}

// ------------------------------------------------------------ T' factors

TEST(FactorizeTflag, PaperTable4ComTflag) {
  const auto ex = test::MakePaperExample();
  const auto r1 = BuildInstanceRepr(ex.net, ex.tu.instances[0]);
  const auto r2 = BuildInstanceRepr(ex.net, ex.tu.instances[1]);
  const auto r3 = BuildInstanceRepr(ex.net, ex.tu.instances[2]);

  // Com_T'(Nref_11, Ref_1) = <(1,2), (3,4)> (pure factorization; mode
  // selection may still prefer a literal when the strings are this short).
  TflagCom com1;
  com1.mode = TflagMode::kFactors;
  ASSERT_TRUE(FactorizeTflagFactors(r1.tflag_trimmed, r2.tflag_trimmed,
                                    &com1.factors, &com1.last_has_m,
                                    &com1.last_m));
  ASSERT_EQ(com1.factors.size(), 2u);
  EXPECT_EQ(com1.factors[0], (TFactor{1, 2}));
  EXPECT_EQ(com1.factors[1], (TFactor{3, 4}));
  EXPECT_FALSE(com1.last_has_m);
  EXPECT_EQ(ExpandTflag(r1.tflag_trimmed, com1, r2.tflag_trimmed.size()),
            r2.tflag_trimmed);
  // Whatever mode FactorizeTflag selects must round-trip as well.
  const auto chosen = FactorizeTflag(r1.tflag_trimmed, r2.tflag_trimmed);
  EXPECT_EQ(ExpandTflag(r1.tflag_trimmed, chosen, r2.tflag_trimmed.size(),
                        r2.tflag_trimmed),
            r2.tflag_trimmed);

  // Com_T'(Nref_12, Ref_1) = empty set (identical).
  const auto com2 = FactorizeTflag(r1.tflag_trimmed, r3.tflag_trimmed);
  EXPECT_EQ(com2.mode, TflagMode::kIdentical);
}

TEST(FactorizeTflag, LiteralFallbackOnDegenerateReference) {
  // A constant reference cannot express the opposite bit via inference.
  const std::vector<uint8_t> ref = {1, 1, 1, 1};
  const std::vector<uint8_t> target = {0, 0, 1, 0};
  const auto com = FactorizeTflag(ref, target);
  // Whatever mode was chosen must round-trip.
  EXPECT_EQ(ExpandTflag(ref, com, target.size(), target), target);
}

TEST(FactorizeTflag, RandomRoundTrip) {
  common::Rng rng(91);
  for (int trial = 0; trial < 400; ++trial) {
    const size_t ref_len = static_cast<size_t>(rng.UniformInt(1, 30));
    const size_t tgt_len = static_cast<size_t>(rng.UniformInt(1, 30));
    std::vector<uint8_t> ref(ref_len), target(tgt_len);
    for (auto& b : ref) b = rng.Bernoulli(0.7) ? 1 : 0;
    for (auto& b : target) b = rng.Bernoulli(0.7) ? 1 : 0;
    const auto com = FactorizeTflag(ref, target);
    EXPECT_EQ(ExpandTflag(ref, com, target.size(), target), target)
        << "trial " << trial;
  }
}

TEST(FactorizeTflag, SimilarStringsBeatLiteral) {
  // Realistic case: long mostly-1 flag strings differing in two bits.
  std::vector<uint8_t> ref(50, 1);
  ref[10] = 0;
  ref[30] = 0;
  auto target = ref;
  target[20] = 0;
  const auto com = FactorizeTflag(ref, target);
  EXPECT_EQ(com.mode, TflagMode::kFactors);
  EXPECT_LE(com.factors.size(), 3u);
  EXPECT_EQ(ExpandTflag(ref, com, target.size()), target);
}

// ------------------------------------------------------------- D factors

TEST(DiffD, PaperTable4ComD) {
  const auto ex = test::MakePaperExample();
  const auto r1 = BuildInstanceRepr(ex.net, ex.tu.instances[0]);
  const auto r2 = BuildInstanceRepr(ex.net, ex.tu.instances[1]);
  const auto r3 = BuildInstanceRepr(ex.net, ex.tu.instances[2]);
  const auto identity = [](double v) { return v; };

  // Com_D(Nref_11, Ref_1) = empty set; Com_D(Nref_12, Ref_1) = <(6, 0.5)>.
  EXPECT_TRUE(DiffD(r1.rds, r2.rds, identity).empty());
  const auto diff = DiffD(r1.rds, r3.rds, identity);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0].pos, 6u);
  EXPECT_DOUBLE_EQ(diff[0].rd, 0.5);
  EXPECT_EQ(ApplyD(r1.rds, diff), r3.rds);
}

TEST(DiffD, QuantizerSuppressesSubThresholdDifferences) {
  const auto quantize = [](double v) { return std::round(v * 8) / 8; };
  const std::vector<double> ref = {0.5, 0.25};
  // 0.51 ~ 0.5 on the 1/8 grid (no factor); 0.40 -> 0.375 != 0.25 (factor).
  const std::vector<double> target = {0.51, 0.40};
  const auto diff = DiffD(ref, target, quantize);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0].pos, 1u);
}

}  // namespace
}  // namespace utcq::core
