#include <gtest/gtest.h>

#include <limits>
#include <optional>

#include "common/rng.h"
#include "matching/hmm_matcher.h"
#include "network/generator.h"
#include "traj/generator.h"
#include "traj/profiles.h"
#include "traj/types.h"

namespace utcq::matching {
namespace {

struct MatcherFixture {
  MatcherFixture() {
    common::Rng net_rng(100);
    network::CityParams params;
    params.rows = 14;
    params.cols = 14;
    params.drop_probability = 0.05;
    net = network::GenerateCity(net_rng, params);
    grid = std::make_unique<network::GridIndex>(net, 16);
  }
  network::RoadNetwork net;
  std::unique_ptr<network::GridIndex> grid;
};

TEST(Candidates, NearestEdgesSortedByDistance) {
  MatcherFixture fx;
  const auto& v = fx.net.vertex(10);
  const auto cands =
      FindCandidates(*fx.grid, {v.x + 5.0, v.y + 5.0, 0}, 60.0, 4);
  ASSERT_FALSE(cands.empty());
  for (size_t i = 1; i < cands.size(); ++i) {
    EXPECT_GE(cands[i].distance, cands[i - 1].distance);
  }
  EXPECT_LE(cands.size(), 4u);
}

TEST(Candidates, EmissionDecaysWithDistance) {
  EXPECT_GT(EmissionLogProb(0.0, 20.0), EmissionLogProb(10.0, 20.0));
  EXPECT_GT(EmissionLogProb(10.0, 20.0), EmissionLogProb(50.0, 20.0));
}

TEST(HmmMatcher, ProducesValidUncertainTrajectory) {
  MatcherFixture fx;
  auto profile = traj::ChengduProfile();
  profile.gps_noise_m = 10.0;
  traj::UncertainTrajectoryGenerator gen(fx.net, profile, 7);

  MatchParams params;
  params.max_instances = 6;
  const HmmMatcher matcher(fx.net, *fx.grid, params);

  int matched = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const auto rt = gen.GenerateRaw();
    const auto tu = matcher.Match(rt.raw);
    if (!tu.has_value()) continue;
    ++matched;
    EXPECT_EQ(traj::Validate(fx.net, *tu), "");
    // Probabilities sorted descending, instance 1 most likely.
    for (size_t w = 1; w < tu->instances.size(); ++w) {
      EXPECT_LE(tu->instances[w].probability,
                tu->instances[w - 1].probability);
    }
  }
  EXPECT_GE(matched, 8) << "most clean traces should match";
}

TEST(HmmMatcher, LowNoiseRecoversTruePath) {
  MatcherFixture fx;
  auto profile = traj::ChengduProfile();
  profile.gps_noise_m = 4.0;  // nearly clean GPS
  traj::UncertainTrajectoryGenerator gen(fx.net, profile, 21);

  MatchParams params;
  params.gps_sigma_m = 10.0;
  const HmmMatcher matcher(fx.net, *fx.grid, params);

  int close = 0;
  int total = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto rt = gen.GenerateRaw();
    const auto tu = matcher.Match(rt.raw);
    if (!tu.has_value()) continue;
    ++total;
    // The top instance's edge set should mostly overlap the true path.
    const auto& top = tu->instances[0].path;
    size_t hits = 0;
    for (const auto e : top) {
      if (std::find(rt.true_path.begin(), rt.true_path.end(), e) !=
          rt.true_path.end()) {
        ++hits;
      }
    }
    if (hits * 10 >= top.size() * 7) ++close;
  }
  ASSERT_GT(total, 0);
  EXPECT_GE(close * 10, total * 6);
}

TEST(HmmMatcher, AmbiguousTracesYieldMultipleInstances) {
  MatcherFixture fx;
  auto profile = traj::HangzhouProfile();
  profile.gps_noise_m = 35.0;  // noisy: several plausible roads per point
  traj::UncertainTrajectoryGenerator gen(fx.net, profile, 29);

  MatchParams params;
  params.gps_sigma_m = 35.0;
  params.max_instances = 8;
  const HmmMatcher matcher(fx.net, *fx.grid, params);

  size_t multi = 0;
  size_t total = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const auto rt = gen.GenerateRaw();
    const auto tu = matcher.Match(rt.raw);
    if (!tu.has_value()) continue;
    ++total;
    if (tu->instances.size() > 1) ++multi;
    double sum = 0.0;
    for (const auto& inst : tu->instances) sum += inst.probability;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(multi * 2, total) << "noise should induce uncertainty";
}

TEST(HmmMatcher, RejectsDegenerateInput) {
  MatcherFixture fx;
  const HmmMatcher matcher(fx.net, *fx.grid, {});
  EXPECT_FALSE(matcher.Match({}).has_value());
  EXPECT_FALSE(matcher.Match({{0.0, 0.0, 10}}).has_value());
  // Points far outside the network cannot be matched.
  traj::RawTrajectory far{{1e7, 1e7, 0}, {1e7, 1e7, 10}};
  EXPECT_FALSE(matcher.Match(far).has_value());
}

/// Exact-equality helper: dropped garbage must leave the match *identical*
/// to matching the cleaned stream, not merely similar.
bool SameMatch(const std::optional<traj::UncertainTrajectory>& a,
               const std::optional<traj::UncertainTrajectory>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  if (a->times != b->times || a->instances.size() != b->instances.size()) {
    return false;
  }
  for (size_t w = 0; w < a->instances.size(); ++w) {
    if (!(a->instances[w] == b->instances[w])) return false;
  }
  return true;
}

TEST(HmmMatcher, LongGapBreaksInsteadOfBogusContinuity) {
  MatcherFixture fx;
  auto profile = traj::ChengduProfile();
  profile.gps_noise_m = 5.0;
  traj::UncertainTrajectoryGenerator gen(fx.net, profile, 55);
  const HmmMatcher matcher(fx.net, *fx.grid, {});

  int splits_seen = 0;
  for (int trial = 0; trial < 8 && splits_seen < 2; ++trial) {
    auto rt = gen.GenerateRaw();
    if (rt.raw.size() < 8) continue;
    if (!matcher.Match(rt.raw).has_value()) continue;
    // The vehicle goes silent for two hours mid-trip without moving: the
    // matcher must not stitch the halves into one continuous trajectory.
    traj::RawTrajectory gapped = rt.raw;
    for (size_t i = gapped.size() / 2; i < gapped.size(); ++i) {
      gapped[i].t += 7200;
    }
    EXPECT_FALSE(matcher.Match(gapped).has_value());

    const auto segments = matcher.MatchSegments(gapped);
    ASSERT_GE(segments.size(), 1u);
    EXPECT_LE(segments.size(), 2u);
    for (const auto& seg : segments) {
      EXPECT_EQ(traj::Validate(fx.net, seg), "");
      // No segment spans the gap.
      EXPECT_TRUE(seg.times.back() <= gapped[gapped.size() / 2 - 1].t ||
                  seg.times.front() >= gapped[gapped.size() / 2].t);
    }
    if (segments.size() == 2) {
      EXPECT_LT(segments[0].times.back(), segments[1].times.front());
      ++splits_seen;
    }

    // With the gap check disabled the old (bridging) behaviour remains
    // available explicitly.
    MatchParams no_gap;
    no_gap.max_gap_s = 0;
    const HmmMatcher bridger(fx.net, *fx.grid, no_gap);
    EXPECT_TRUE(bridger.Match(gapped).has_value());
  }
  EXPECT_GE(splits_seen, 1) << "no trial produced an actual two-way split";
}

TEST(HmmMatcher, NonFinitePointsAreDroppedExactly) {
  MatcherFixture fx;
  auto profile = traj::ChengduProfile();
  profile.gps_noise_m = 5.0;
  traj::UncertainTrajectoryGenerator gen(fx.net, profile, 61);
  const HmmMatcher matcher(fx.net, *fx.grid, {});
  auto rt = gen.GenerateRaw();
  ASSERT_GE(rt.raw.size(), 4u);

  traj::RawTrajectory poisoned = rt.raw;
  const auto mid_t = (rt.raw[1].t + rt.raw[2].t) / 2;
  poisoned.insert(poisoned.begin() + 2,
                  {std::numeric_limits<double>::quiet_NaN(),
                   std::numeric_limits<double>::infinity(), mid_t});
  EXPECT_TRUE(SameMatch(matcher.Match(poisoned), matcher.Match(rt.raw)));
}

TEST(HmmMatcher, OutOfOrderPointsAreDroppedExactly) {
  MatcherFixture fx;
  auto profile = traj::ChengduProfile();
  profile.gps_noise_m = 5.0;
  traj::UncertainTrajectoryGenerator gen(fx.net, profile, 67);
  const HmmMatcher matcher(fx.net, *fx.grid, {});
  auto rt = gen.GenerateRaw();
  ASSERT_GE(rt.raw.size(), 5u);

  // A fix stamped *before* its predecessors (clock jump) must be skipped.
  traj::RawTrajectory jumbled = rt.raw;
  traj::RawPoint stale = jumbled[3];
  stale.t = jumbled[0].t - 5;
  jumbled.insert(jumbled.begin() + 3, stale);
  EXPECT_TRUE(SameMatch(matcher.Match(jumbled), matcher.Match(rt.raw)));
}

TEST(HmmMatcher, TeleportedPointIsDroppedExactly) {
  MatcherFixture fx;
  auto profile = traj::ChengduProfile();
  profile.gps_noise_m = 5.0;
  traj::UncertainTrajectoryGenerator gen(fx.net, profile, 71);
  const HmmMatcher matcher(fx.net, *fx.grid, {});
  auto rt = gen.GenerateRaw();
  ASSERT_GE(rt.raw.size(), 4u);

  // A single fix far outside the network (no candidate within radius) is
  // skipped; the surrounding stream still matches as before.
  traj::RawTrajectory teleported = rt.raw;
  teleported.insert(teleported.begin() + 2,
                    {1e7, 1e7, (rt.raw[1].t + rt.raw[2].t) / 2});
  EXPECT_TRUE(SameMatch(matcher.Match(teleported), matcher.Match(rt.raw)));
}

TEST(HmmMatcher, MatchSegmentsEqualsMatchOnCleanTraces) {
  MatcherFixture fx;
  auto profile = traj::ChengduProfile();
  profile.gps_noise_m = 8.0;
  traj::UncertainTrajectoryGenerator gen(fx.net, profile, 83);
  const HmmMatcher matcher(fx.net, *fx.grid, {});
  int checked = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const auto rt = gen.GenerateRaw();
    const auto single = matcher.Match(rt.raw);
    const auto segments = matcher.MatchSegments(rt.raw);
    if (!single.has_value()) continue;
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_TRUE(SameMatch(
        single, std::optional<traj::UncertainTrajectory>(segments.front())));
    ++checked;
  }
  EXPECT_GE(checked, 3);
}

TEST(HmmMatcher, DropsDuplicateTimestamps) {
  MatcherFixture fx;
  auto profile = traj::ChengduProfile();
  profile.gps_noise_m = 5.0;
  traj::UncertainTrajectoryGenerator gen(fx.net, profile, 41);
  const HmmMatcher matcher(fx.net, *fx.grid, {});
  auto rt = gen.GenerateRaw();
  ASSERT_GE(rt.raw.size(), 3u);
  rt.raw[1].t = rt.raw[0].t;  // duplicate timestamp must be skipped
  const auto tu = matcher.Match(rt.raw);
  if (tu.has_value()) {
    for (size_t i = 1; i < tu->times.size(); ++i) {
      EXPECT_GT(tu->times[i], tu->times[i - 1]);
    }
  }
}

}  // namespace
}  // namespace utcq::matching
