#include <gtest/gtest.h>

#include "common/rng.h"
#include "matching/hmm_matcher.h"
#include "network/generator.h"
#include "traj/generator.h"
#include "traj/profiles.h"
#include "traj/types.h"

namespace utcq::matching {
namespace {

struct MatcherFixture {
  MatcherFixture() {
    common::Rng net_rng(100);
    network::CityParams params;
    params.rows = 14;
    params.cols = 14;
    params.drop_probability = 0.05;
    net = network::GenerateCity(net_rng, params);
    grid = std::make_unique<network::GridIndex>(net, 16);
  }
  network::RoadNetwork net;
  std::unique_ptr<network::GridIndex> grid;
};

TEST(Candidates, NearestEdgesSortedByDistance) {
  MatcherFixture fx;
  const auto& v = fx.net.vertex(10);
  const auto cands =
      FindCandidates(*fx.grid, {v.x + 5.0, v.y + 5.0, 0}, 60.0, 4);
  ASSERT_FALSE(cands.empty());
  for (size_t i = 1; i < cands.size(); ++i) {
    EXPECT_GE(cands[i].distance, cands[i - 1].distance);
  }
  EXPECT_LE(cands.size(), 4u);
}

TEST(Candidates, EmissionDecaysWithDistance) {
  EXPECT_GT(EmissionLogProb(0.0, 20.0), EmissionLogProb(10.0, 20.0));
  EXPECT_GT(EmissionLogProb(10.0, 20.0), EmissionLogProb(50.0, 20.0));
}

TEST(HmmMatcher, ProducesValidUncertainTrajectory) {
  MatcherFixture fx;
  auto profile = traj::ChengduProfile();
  profile.gps_noise_m = 10.0;
  traj::UncertainTrajectoryGenerator gen(fx.net, profile, 7);

  MatchParams params;
  params.max_instances = 6;
  const HmmMatcher matcher(fx.net, *fx.grid, params);

  int matched = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const auto rt = gen.GenerateRaw();
    const auto tu = matcher.Match(rt.raw);
    if (!tu.has_value()) continue;
    ++matched;
    EXPECT_EQ(traj::Validate(fx.net, *tu), "");
    // Probabilities sorted descending, instance 1 most likely.
    for (size_t w = 1; w < tu->instances.size(); ++w) {
      EXPECT_LE(tu->instances[w].probability,
                tu->instances[w - 1].probability);
    }
  }
  EXPECT_GE(matched, 8) << "most clean traces should match";
}

TEST(HmmMatcher, LowNoiseRecoversTruePath) {
  MatcherFixture fx;
  auto profile = traj::ChengduProfile();
  profile.gps_noise_m = 4.0;  // nearly clean GPS
  traj::UncertainTrajectoryGenerator gen(fx.net, profile, 21);

  MatchParams params;
  params.gps_sigma_m = 10.0;
  const HmmMatcher matcher(fx.net, *fx.grid, params);

  int close = 0;
  int total = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto rt = gen.GenerateRaw();
    const auto tu = matcher.Match(rt.raw);
    if (!tu.has_value()) continue;
    ++total;
    // The top instance's edge set should mostly overlap the true path.
    const auto& top = tu->instances[0].path;
    size_t hits = 0;
    for (const auto e : top) {
      if (std::find(rt.true_path.begin(), rt.true_path.end(), e) !=
          rt.true_path.end()) {
        ++hits;
      }
    }
    if (hits * 10 >= top.size() * 7) ++close;
  }
  ASSERT_GT(total, 0);
  EXPECT_GE(close * 10, total * 6);
}

TEST(HmmMatcher, AmbiguousTracesYieldMultipleInstances) {
  MatcherFixture fx;
  auto profile = traj::HangzhouProfile();
  profile.gps_noise_m = 35.0;  // noisy: several plausible roads per point
  traj::UncertainTrajectoryGenerator gen(fx.net, profile, 29);

  MatchParams params;
  params.gps_sigma_m = 35.0;
  params.max_instances = 8;
  const HmmMatcher matcher(fx.net, *fx.grid, params);

  size_t multi = 0;
  size_t total = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const auto rt = gen.GenerateRaw();
    const auto tu = matcher.Match(rt.raw);
    if (!tu.has_value()) continue;
    ++total;
    if (tu->instances.size() > 1) ++multi;
    double sum = 0.0;
    for (const auto& inst : tu->instances) sum += inst.probability;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(multi * 2, total) << "noise should induce uncertainty";
}

TEST(HmmMatcher, RejectsDegenerateInput) {
  MatcherFixture fx;
  const HmmMatcher matcher(fx.net, *fx.grid, {});
  EXPECT_FALSE(matcher.Match({}).has_value());
  EXPECT_FALSE(matcher.Match({{0.0, 0.0, 10}}).has_value());
  // Points far outside the network cannot be matched.
  traj::RawTrajectory far{{1e7, 1e7, 0}, {1e7, 1e7, 10}};
  EXPECT_FALSE(matcher.Match(far).has_value());
}

TEST(HmmMatcher, DropsDuplicateTimestamps) {
  MatcherFixture fx;
  auto profile = traj::ChengduProfile();
  profile.gps_noise_m = 5.0;
  traj::UncertainTrajectoryGenerator gen(fx.net, profile, 41);
  const HmmMatcher matcher(fx.net, *fx.grid, {});
  auto rt = gen.GenerateRaw();
  ASSERT_GE(rt.raw.size(), 3u);
  rt.raw[1].t = rt.raw[0].t;  // duplicate timestamp must be skipped
  const auto tu = matcher.Match(rt.raw);
  if (tu.has_value()) {
    for (size_t i = 1; i < tu->times.size(); ++i) {
      EXPECT_GT(tu->times[i], tu->times[i - 1]);
    }
  }
}

}  // namespace
}  // namespace utcq::matching
