#ifndef UTCQ_TESTS_TEST_FIXTURES_H_
#define UTCQ_TESTS_TEST_FIXTURES_H_

// Shared construction of the tiny test networks and corpora every suite
// runs on, deduplicating the per-file copies that used to live in
// tests/*_test.cc. All randomness routes through common::Rng with explicit
// seeds; randomized suites obtain their base seed from test::BaseSeed so a
// failure is reproducible with `<test> --seed=N` (or UTCQ_SEED=N).

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "common/rng.h"
#include "network/generator.h"
#include "network/road_network.h"
#include "serve/tier.h"
#include "traj/generator.h"
#include "traj/profiles.h"
#include "traj/types.h"

namespace utcq::test {

/// Fixed-snapshot tier source: freezes one sealed+live split and serves
/// it, isolating serving-path checks from ingestion concurrency (which
/// tests/ingest_test.cc covers with a real StreamingService).
class FixedTier final : public serve::TierSource {
 public:
  explicit FixedTier(std::shared_ptr<const serve::TierSnapshot> snap)
      : snap_(std::move(snap)) {}
  std::shared_ptr<const serve::TierSnapshot> Acquire() const override {
    return snap_;
  }

 private:
  std::shared_ptr<const serve::TierSnapshot> snap_;
};

/// Every suite's network derives from this seed so fixtures across files
/// agree on the map they test against.
inline constexpr uint64_t kNetworkSeed = 100;

/// The small perturbed-grid city used by the cross-layer suites: the
/// profile's city parameters shrunk to `side` x `side` blocks, generated
/// deterministically from `seed`.
inline network::RoadNetwork MakeSmallCity(const traj::DatasetProfile& profile,
                                          uint32_t side = 14,
                                          uint64_t seed = kNetworkSeed) {
  common::Rng net_rng(seed);
  network::CityParams small = profile.city;
  small.rows = side;
  small.cols = side;
  return network::GenerateCity(net_rng, small);
}

/// A profile-shaped corpus over `net`, deterministic in `seed`.
inline traj::UncertainCorpus MakeSmallCorpus(
    const network::RoadNetwork& net, const traj::DatasetProfile& profile,
    uint64_t seed, size_t count) {
  traj::UncertainTrajectoryGenerator gen(net, profile, seed);
  return gen.GenerateCorpus(count);
}

namespace internal {
/// 0 means "no override"; randomized suites treat any non-zero value as
/// the base seed to rerun with.
inline uint64_t seed_override = 0;
}  // namespace internal

/// Called by test mains that accept --seed=N on the command line.
inline void SetSeedOverride(uint64_t seed) { internal::seed_override = seed; }

/// Base seed for a randomized suite: --seed=N (via SetSeedOverride) wins,
/// then the UTCQ_SEED environment variable, then `fallback`. Failure
/// messages should echo the value so any run is reproducible.
inline uint64_t BaseSeed(uint64_t fallback) {
  if (internal::seed_override != 0) return internal::seed_override;
  if (const char* env = std::getenv("UTCQ_SEED")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && v != 0) return static_cast<uint64_t>(v);
  }
  return fallback;
}

}  // namespace utcq::test

#endif  // UTCQ_TESTS_TEST_FIXTURES_H_
