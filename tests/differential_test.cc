// Randomized differential harness (DESIGN.md §11): every seeded workload is
// run through every real query path — the raw UtcqQueryProcessor, a sharded
// archive set reopened from disk, the serving QueryEngine cold / warm /
// batched, the live+sealed streaming tier and its reopened append-log set,
// the TED baseline, and the network tier (a real TCP round trip through
// src/net/'s server and client) — and every answer is checked hit-for-hit
// against verify::Oracle, a brute-force scan of the decompressed corpus
// with no index, no pruning and no cache. Failures print the workload
// seed; rerun a single workload with:
//   differential_test --seed=<seed> --gtest_filter='*Workloads*/0'

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/utcq.h"
#include "ingest/flusher.h"
#include "ingest/live_shard.h"
#include "net/client.h"
#include "net/tcp_server.h"
#include "network/grid_index.h"
#include "serve/query_engine.h"
#include "serve/tier.h"
#include "shard/sharded.h"
#include "ted/ted_compress.h"
#include "ted/ted_index.h"
#include "ted/ted_query.h"
#include "test_fixtures.h"
#include "verify/oracle.h"
#include "verify/workload.h"

namespace utcq {
namespace {

using traj::Timestamp;
using verify::QueryCase;

constexpr uint64_t kDefaultBaseSeed = 20260728;
constexpr int kNumWorkloads = 50;

// ----------------------------------------------------------- comparators

/// Positions are compared as points on the map: partial T decompression may
/// start its bracket scan mid-sequence, which can move an interpolated
/// offset by a floating-point ulp and, exactly at a vertex, name the
/// adjacent edge instead. Identical answers, different coordinates frames —
/// so compare the planar point, to sub-micrometre tolerance.
testing::AssertionResult SamePosition(const network::RoadNetwork& net,
                                      const traj::NetworkPosition& a,
                                      const traj::NetworkPosition& b) {
  const network::Vertex pa = net.PointOnEdge(a.edge, a.ndist);
  const network::Vertex pb = net.PointOnEdge(b.edge, b.ndist);
  const double d = std::hypot(pa.x - pb.x, pa.y - pb.y);
  if (d <= 1e-6) return testing::AssertionSuccess();
  return testing::AssertionFailure()
         << "positions differ by " << d << " m: (edge " << a.edge << ", nd "
         << a.ndist << ") vs (edge " << b.edge << ", nd " << b.ndist << ")";
}

void ExpectWhereEqual(const network::RoadNetwork& net,
                      std::vector<traj::WhereHit> got,
                      std::vector<traj::WhereHit> want) {
  const auto by_instance = [](const traj::WhereHit& a,
                              const traj::WhereHit& b) {
    return a.instance < b.instance;
  };
  std::sort(got.begin(), got.end(), by_instance);
  std::sort(want.begin(), want.end(), by_instance);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].instance, want[i].instance);
    EXPECT_DOUBLE_EQ(got[i].probability, want[i].probability);
    EXPECT_TRUE(SamePosition(net, got[i].position, want[i].position));
  }
}

void ExpectWhenEqual(std::vector<traj::WhenHit> got,
                     std::vector<traj::WhenHit> want) {
  const auto order = [](const traj::WhenHit& a, const traj::WhenHit& b) {
    return std::tie(a.instance, a.t) < std::tie(b.instance, b.t);
  };
  std::sort(got.begin(), got.end(), order);
  std::sort(want.begin(), want.end(), order);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].instance, want[i].instance);
    EXPECT_EQ(got[i].t, want[i].t);
    EXPECT_DOUBLE_EQ(got[i].probability, want[i].probability);
  }
}

/// Range answers must agree as sets; a trajectory may differ only when its
/// overlap mass ties alpha to within summation-order noise (the engines
/// accumulate quantized probabilities in index order, the oracle in
/// instance order).
void ExpectRangeEqual(traj::RangeResult got, traj::RangeResult want,
                      const verify::Oracle& oracle, const QueryCase& q) {
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  if (got == want) return;
  std::vector<uint32_t> diff;
  std::set_symmetric_difference(got.begin(), got.end(), want.begin(),
                                want.end(), std::back_inserter(diff));
  for (const uint32_t j : diff) {
    const double mass = oracle.OverlapMass(j, q.region, q.t);
    EXPECT_LE(std::abs(mass - q.alpha), 1e-9)
        << "trajectory " << j << " flipped with mass " << mass
        << " vs alpha " << q.alpha;
  }
}

// ------------------------------------------------------------ query paths

/// One real path under test: the three query entry points, uniformly
/// global-indexed so the oracle result applies to every path.
struct QueryPath {
  std::string name;
  std::function<std::vector<traj::WhereHit>(uint32_t, Timestamp, double)>
      where;
  std::function<std::vector<traj::WhenHit>(uint32_t, network::EdgeId, double,
                                           double)>
      when;
  std::function<traj::RangeResult(const network::Rect&, Timestamp, double)>
      range;
};

QueryPath PathOf(const std::string& name, const core::UtcqQueryProcessor& qp) {
  return {name,
          [&qp](uint32_t j, Timestamp t, double a) { return qp.Where(j, t, a); },
          [&qp](uint32_t j, network::EdgeId e, double rd, double a) {
            return qp.When(j, e, rd, a);
          },
          [&qp](const network::Rect& re, Timestamp tq, double a) {
            return qp.Range(re, tq, a);
          }};
}

QueryPath PathOf(const std::string& name, const shard::ShardedCorpus& sc) {
  return {name,
          [&sc](uint32_t j, Timestamp t, double a) { return sc.Where(j, t, a); },
          [&sc](uint32_t j, network::EdgeId e, double rd, double a) {
            return sc.When(j, e, rd, a);
          },
          [&sc](const network::Rect& re, Timestamp tq, double a) {
            return sc.Range(re, tq, a);
          }};
}

QueryPath PathOf(const std::string& name, serve::QueryEngine& engine) {
  return {name,
          [&engine](uint32_t j, Timestamp t, double a) {
            return engine.Where(j, t, a);
          },
          [&engine](uint32_t j, network::EdgeId e, double rd, double a) {
            return engine.When(j, e, rd, a);
          },
          [&engine](const network::Rect& re, Timestamp tq, double a) {
            return engine.Range(re, tq, a);
          }};
}

QueryPath PathOf(const std::string& name, const ted::TedQueryProcessor& qp) {
  return {name,
          [&qp](uint32_t j, Timestamp t, double a) { return qp.Where(j, t, a); },
          [&qp](uint32_t j, network::EdgeId e, double rd, double a) {
            return qp.When(j, e, rd, a);
          },
          [&qp](const network::Rect& re, Timestamp tq, double a) {
            return qp.Range(re, tq, a);
          }};
}

void RunPath(const network::RoadNetwork& net, const verify::Oracle& oracle,
             const std::vector<QueryCase>& queries, const QueryPath& path) {
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryCase& q = queries[i];
    SCOPED_TRACE(path.name + " query #" + std::to_string(i));
    switch (q.kind) {
      case QueryCase::Kind::kWhere:
        ExpectWhereEqual(net, path.where(q.traj, q.t, q.alpha),
                         oracle.Where(q.traj, q.t, q.alpha));
        break;
      case QueryCase::Kind::kWhen:
        ExpectWhenEqual(path.when(q.traj, q.edge, q.rd, q.alpha),
                        oracle.When(q.traj, q.edge, q.rd, q.alpha));
        break;
      case QueryCase::Kind::kRange:
        ExpectRangeEqual(path.range(q.region, q.t, q.alpha),
                         oracle.Range(q.region, q.t, q.alpha), oracle, q);
        break;
    }
  }
}

serve::QueryRequest ToRequest(const QueryCase& q) {
  switch (q.kind) {
    case QueryCase::Kind::kWhere:
      return serve::QueryRequest::MakeWhere(q.traj, q.t, q.alpha);
    case QueryCase::Kind::kWhen:
      return serve::QueryRequest::MakeWhen(q.traj, q.edge, q.rd, q.alpha);
    case QueryCase::Kind::kRange:
      break;
  }
  return serve::QueryRequest::MakeRange(q.region, q.t, q.alpha);
}

/// Batched execution must equal the oracle too (and thereby one-at-a-time
/// execution).
void RunBatch(const network::RoadNetwork& net, const verify::Oracle& oracle,
              const std::vector<QueryCase>& queries, serve::QueryEngine& engine,
              const std::string& label) {
  std::vector<serve::QueryRequest> requests;
  requests.reserve(queries.size());
  for (const QueryCase& q : queries) requests.push_back(ToRequest(q));
  const auto results = engine.ExecuteBatch(requests);
  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryCase& q = queries[i];
    SCOPED_TRACE(label + " batch query #" + std::to_string(i));
    switch (q.kind) {
      case QueryCase::Kind::kWhere:
        ExpectWhereEqual(net, results[i].where,
                         oracle.Where(q.traj, q.t, q.alpha));
        break;
      case QueryCase::Kind::kWhen:
        ExpectWhenEqual(results[i].when,
                        oracle.When(q.traj, q.edge, q.rd, q.alpha));
        break;
      case QueryCase::Kind::kRange:
        ExpectRangeEqual(results[i].range,
                         oracle.Range(q.region, q.t, q.alpha), oracle, q);
        break;
    }
  }
}

// ----------------------------------------------------------- tier plumbing

std::string TempPath(const std::string& name) {
  // Seed-keyed names alone collide when the strategy matrix runs several
  // tier variants of this binary concurrently under ctest -j; the pid keeps
  // each process's archives (and any debris from an aborted run) private.
  return ::testing::TempDir() + "/pid" + std::to_string(::getpid()) + "_" +
         name;
}

// ------------------------------------------------------------ the harness

void RunWorkload(uint64_t seed) {
  SCOPED_TRACE("workload seed " + std::to_string(seed) +
               " — rerun: differential_test --seed=" + std::to_string(seed) +
               " --gtest_filter='*Workloads*/0'");
  verify::WorkloadGen gen(seed);
  verify::Workload w = gen.Generate();

  // The generator's contract: the corpus validates, the degenerate shapes
  // are rejected before they could reach a compressor.
  for (const auto& tu : w.corpus) {
    ASSERT_EQ(traj::Validate(w.net, tu), "") << "trajectory " << tu.id;
  }
  ASSERT_FALSE(w.invalid.empty());
  for (const auto& tu : w.invalid) {
    EXPECT_NE(traj::Validate(w.net, tu), "");
  }

  const network::GridIndex grid(w.net, 16);
  const core::StiuParams index_params{16, 900};

  // --- path 1: the in-memory processor over the live compression run ---
  const core::UtcqSystem sys(w.net, grid, w.corpus, w.params, index_params);

  // The oracle scans the decompressed corpus: the naive rescan of exactly
  // the data every engine reconstructs (quantization included).
  const traj::UncertainCorpus decoded = sys.decoder().DecompressAll();
  ASSERT_EQ(decoded.size(), w.corpus.size());
  const verify::Oracle oracle(w.net, decoded, w.params.eta_d);

  RunPath(w.net, oracle, w.queries, PathOf("processor", sys.queries()));

  std::vector<std::string> files;

  // --- path 2: sharded archive set, saved and reopened from disk ---
  {
    shard::ShardOptions sopts;
    sopts.num_shards = 1 + static_cast<uint32_t>(seed % 3);
    sopts.policy = (seed % 2 == 0) ? shard::ShardPolicy::kHash
                                   : shard::ShardPolicy::kTimePartition;
    const shard::ShardedCompressor scomp(w.net, grid, w.params, index_params,
                                         sopts);
    const shard::ShardedBuild build = scomp.Compress(w.corpus);
    const std::string manifest =
        TempPath("diff_shard_" + std::to_string(seed) + ".utcq");
    std::string error;
    ASSERT_TRUE(build.Save(manifest, &error)) << error;
    files.push_back(manifest);
    for (uint32_t s = 0; s < build.plan.num_shards(); ++s) {
      files.push_back(shard::ShardArchivePath(manifest, s));
    }
    shard::ShardedCorpus sharded;
    ASSERT_TRUE(sharded.Open(w.net, manifest, &error)) << error;
    RunPath(w.net, oracle, w.queries, PathOf("sharded", sharded));

    // --- path 3: the serving engine over the sharded set, cold → warm →
    // batched, under a deliberately tight cache budget ---
    serve::EngineOptions eopts;
    eopts.cache_budget_bytes = 1 << 20;
    serve::QueryEngine engine(sharded, eopts);
    RunPath(w.net, oracle, w.queries, PathOf("engine-sharded-cold", engine));
    RunPath(w.net, oracle, w.queries, PathOf("engine-sharded-warm", engine));
    RunBatch(w.net, oracle, w.queries, engine, "engine-sharded");
  }

  // --- path 4: the serving engine over the single corpus ---
  {
    serve::QueryEngine engine(sys.queries());
    RunPath(w.net, oracle, w.queries, PathOf("engine-single-cold", engine));
    RunPath(w.net, oracle, w.queries, PathOf("engine-single-warm", engine));
    RunBatch(w.net, oracle, w.queries, engine, "engine-single");
  }

  // --- path 5: the streaming tier — half flushed into the sealed set,
  // half served from the live tail — then the whole set reopened ---
  {
    const std::string manifest =
        TempPath("diff_tier_" + std::to_string(seed) + ".utcq");
    ingest::LiveShard live(w.net, grid, w.params, index_params);
    ingest::Flusher flusher(w.net, manifest);
    std::string error;
    std::shared_ptr<const shard::ShardedCorpus> sealed;
    ASSERT_TRUE(flusher.Open(&error, &sealed)) << error;

    const size_t half = w.corpus.size() / 2;
    for (size_t j = 0; j < half; ++j) live.Append(w.corpus[j]);
    const auto first = live.Snapshot();
    ASSERT_NE(first, nullptr);
    ASSERT_TRUE(flusher.Flush(*first, &error, &sealed)) << error;
    files.push_back(shard::ShardArchivePath(manifest, 0));
    live.DropFlushed(first->count());
    for (size_t j = half; j < w.corpus.size(); ++j) live.Append(w.corpus[j]);

    auto snap = std::make_shared<serve::TierSnapshot>();
    snap->sealed = sealed;
    snap->live = live.Snapshot();
    ASSERT_EQ(snap->num_trajectories(), w.corpus.size());
    const test::FixedTier tier(snap);
    serve::QueryEngine engine(tier);
    RunPath(w.net, oracle, w.queries, PathOf("tier-live+sealed", engine));
    RunBatch(w.net, oracle, w.queries, engine, "tier-live+sealed");

    // Flush the tail and reopen the append-log set from scratch: the
    // durable path must answer like everything else.
    const auto rest = live.Snapshot();
    ASSERT_NE(rest, nullptr);
    ASSERT_TRUE(flusher.Flush(*rest, &error, &sealed)) << error;
    files.push_back(shard::ShardArchivePath(manifest, 1));
    files.push_back(manifest);

    ingest::Flusher reopened(w.net, manifest);
    std::shared_ptr<const shard::ShardedCorpus> resealed;
    ASSERT_TRUE(reopened.Open(&error, &resealed)) << error;
    ASSERT_NE(resealed, nullptr);
    ASSERT_EQ(resealed->num_trajectories(), w.corpus.size());
    RunPath(w.net, oracle, w.queries, PathOf("tier-reopened", *resealed));
  }

  // --- path 6: the TED baseline against its own decompressed corpus ---
  {
    ted::TedParams tparams;
    tparams.eta_p = w.params.eta_p;
    tparams.eta_d = w.params.eta_d;
    const ted::TedCompressor tcomp(w.net, tparams);
    const ted::TedCompressed tc = tcomp.Compress(w.corpus);
    const ted::TedIndex tindex(w.net, grid, tc, index_params.time_partition_s);
    const ted::TedQueryProcessor tq(w.net, tc, tindex);

    traj::UncertainCorpus ted_decoded(w.corpus.size());
    for (size_t j = 0; j < w.corpus.size(); ++j) {
      const traj::DecodedTraj dt = tq.DecodeTraj(j);
      ted_decoded[j].id = j;
      ted_decoded[j].times = dt.times;
      ted_decoded[j].instances.resize(dt.ref_insts.size());
      for (size_t wi = 0; wi < dt.ref_insts.size(); ++wi) {
        if (dt.ref_insts[wi].has_value()) {
          ted_decoded[j].instances[wi] = *dt.ref_insts[wi];
        }
      }
    }
    const verify::Oracle ted_oracle(w.net, ted_decoded, tparams.eta_d);
    RunPath(w.net, ted_oracle, w.queries, PathOf("ted", tq));
  }

  // --- path 7: the network tier — the same engine behind a real TCP
  // server (src/net/, DESIGN.md §14; distinct from src/network/, the road
  // graph), answered through the client library. The wire adds a codec
  // layer but must stay *hit-for-hit byte-identical* to the in-process
  // engine, so every network answer is compared with operator== against
  // Execute/ExecuteBatch before the oracle pass — no tolerance, no
  // reordering. Single queries round-trip one at a time; the whole
  // workload then rides one pipelined burst. Ephemeral port: the strategy
  // matrix runs several instances of this binary concurrently.
  {
    serve::QueryEngine engine(sys.queries());
    net::TcpServer server(&engine, nullptr);
    ASSERT_TRUE(server.Start());
    net::Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()))
        << client.last_status().message;

    const auto networked = [&](const serve::QueryRequest& req) {
      serve::QueryResult got;
      const net::Client::Status status = client.Query(req, &got);
      EXPECT_TRUE(status.ok) << status.message;
      const serve::QueryResult local = engine.Execute(req);
      EXPECT_TRUE(got.where == local.where && got.when == local.when &&
                  got.range == local.range)
          << "network answer differs from in-process answer";
      return got;
    };
    const QueryPath path{
        "network",
        [&](uint32_t j, Timestamp t, double a) {
          return networked(serve::QueryRequest::MakeWhere(j, t, a)).where;
        },
        [&](uint32_t j, network::EdgeId e, double rd, double a) {
          return networked(serve::QueryRequest::MakeWhen(j, e, rd, a)).when;
        },
        [&](const network::Rect& re, Timestamp tq, double a) {
          return networked(serve::QueryRequest::MakeRange(re, tq, a)).range;
        }};
    RunPath(w.net, oracle, w.queries, path);

    // Pipelined burst: the server folds the run into ExecuteBatch; the
    // responses must come back in request order and bit-identical.
    std::vector<serve::QueryRequest> requests;
    std::vector<uint64_t> ids;
    for (const QueryCase& q : w.queries) {
      requests.push_back(ToRequest(q));
      ids.push_back(client.SendQuery(requests.back()));
    }
    ASSERT_TRUE(client.Flush());
    const std::vector<serve::QueryResult> local =
        engine.ExecuteBatch(requests);
    for (size_t i = 0; i < requests.size(); ++i) {
      uint64_t id = 0;
      serve::QueryResult got;
      const net::Client::Status status = client.Receive(&id, &got);
      ASSERT_TRUE(status.ok) << status.message;
      ASSERT_EQ(id, ids[i]) << "pipelined responses out of order";
      EXPECT_TRUE(got.where == local[i].where && got.when == local[i].when &&
                  got.range == local[i].range)
          << "pipelined network answer differs, query #" << i;
    }

    client.Close();
    server.Shutdown();
    EXPECT_EQ(server.active_connections(), 0u) << "leaked sessions";
  }

  // --- path 8: the serving engine with partial decode forced on, over a
  // recompression with a dense sync interval (K=2) — every query answers
  // from the seekable bitstreams (archive v3, DESIGN.md §16) and must be
  // hit-for-hit identical to the oracle and the full-decode engine. Sync
  // emission is meta-only, so the K=2 corpus decodes identically to the
  // workload corpus; the oracle carries over unchanged.
  {
    core::UtcqParams dense = w.params;
    dense.t_sync_interval = 2;
    const core::UtcqSystem dsys(w.net, grid, w.corpus, dense, index_params);
    serve::EngineOptions eopts;
    eopts.partial_decode = serve::PartialDecode::kAlways;
    serve::QueryEngine engine(dsys.queries(), eopts);
    RunPath(w.net, oracle, w.queries, PathOf("engine-partial", engine));
    RunBatch(w.net, oracle, w.queries, engine, "engine-partial");
    const serve::EngineStats stats = engine.stats();
    EXPECT_GT(stats.partial_queries, 0u);
    EXPECT_EQ(stats.cache_resident_bytes, 0u)
        << "partial decode leaked state into the full-decode cache";
  }

  for (const std::string& f : files) std::remove(f.c_str());
}

class Workloads : public ::testing::TestWithParam<int> {};

TEST_P(Workloads, AllPathsMatchTheOracle) {
  RunWorkload(test::BaseSeed(kDefaultBaseSeed) +
              static_cast<uint64_t>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Differential, Workloads,
                         ::testing::Range(0, kNumWorkloads));

}  // namespace
}  // namespace utcq

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      utcq::test::SetSeedOverride(std::strtoull(arg.c_str() + 7, nullptr, 10));
    }
  }
  return RUN_ALL_TESTS();
}
