// Metrics scrape CLI (DESIGN.md §15): connects to a running utcq server,
// fetches its instrument snapshot over the kMetrics opcode and prints it
// in Prometheus text exposition format — the quickest way to eyeball a
// live server and the glue a scrape-agent sidecar would wrap.
//
//   metrics_dump [host] <port>
//
// Exits 0 on a successful dump, 1 on connect/protocol failure, 2 on
// usage errors.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "net/client.h"
#include "obs/exposition.h"
#include "obs/metrics.h"

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr, "usage: %s [host] <port>\n", argv[0]);
    return 2;
  }
  const std::string host = argc == 3 ? argv[1] : "127.0.0.1";
  const long port = std::strtol(argv[argc - 1], nullptr, 10);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "metrics_dump: bad port '%s'\n", argv[argc - 1]);
    return 2;
  }

  utcq::net::Client client;
  if (!client.Connect(host, static_cast<uint16_t>(port))) {
    std::fprintf(stderr, "metrics_dump: connect to %s:%ld failed: %s\n",
                 host.c_str(), port, client.last_status().message.c_str());
    return 1;
  }
  utcq::obs::RegistrySnapshot snap;
  const utcq::net::Client::Status status = client.Metrics(&snap);
  if (!status.ok) {
    std::fprintf(stderr, "metrics_dump: kMetrics failed (%s): %s\n",
                 status.server_error
                     ? utcq::net::ErrorCodeName(status.code)
                     : "transport",
                 status.message.c_str());
    return 1;
  }
  const std::string text = utcq::obs::ToPrometheusText(snap);
  std::fwrite(text.data(), 1, text.size(), stdout);
  return 0;
}
