// Strategy-matrix launcher: forces one kernel tier via UTCQ_STRATEGY and
// execs a test binary under it. The ctest matrix wraps the codec-heavy
// suites with this for every tier; a tier the build or CPU cannot run
// exits 77 — ctest's SKIP_RETURN_CODE — so unsupported tiers report as
// SKIPPED rather than silently passing without testing anything.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>

#include "strategies/strategies.h"

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <tier> <binary> [args...]\n", argv[0]);
    return 2;
  }
  utcq::strategies::Tier tier;
  if (!utcq::strategies::ParseTier(argv[1], &tier)) {
    std::fprintf(stderr, "strategy_runner: unknown tier '%s'\n", argv[1]);
    return 2;
  }
  if (!utcq::strategies::TierSupported(tier)) {
    std::fprintf(stderr,
                 "strategy_runner: tier '%s' is not supported by this "
                 "build/CPU; skipping\n",
                 argv[1]);
    return 77;
  }
  setenv("UTCQ_STRATEGY", argv[1], 1);
  execvp(argv[2], argv + 2);
  std::perror("strategy_runner: execvp");
  return 2;
}
