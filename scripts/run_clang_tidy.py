#!/usr/bin/env python3
"""Run the repo's curated clang-tidy profile over compile_commands.json.

Drives clang-tidy (tools/lint/clang-tidy.yml, WarningsAsErrors: '*') over
every first-party translation unit recorded in the build's
compile_commands.json — src/ sources only; tests, benches, fuzzers and
third-party TUs are out of scope for the lint gate. Exits nonzero if any
TU produces a diagnostic, printing each offender's output.

Usage:
    cmake -B build -S .          # CMAKE_EXPORT_COMPILE_COMMANDS is ON
    python3 scripts/run_clang_tidy.py -p build [-j N] [--clang-tidy BIN]
"""

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CONFIG_FILE = os.path.join(REPO_ROOT, "tools", "lint", "clang-tidy.yml")


def find_clang_tidy(explicit):
    """Resolve the clang-tidy binary, tolerating versioned names."""
    candidates = [explicit] if explicit else []
    candidates += ["clang-tidy"]
    # CI images often ship only a versioned binary; prefer newest.
    candidates += [f"clang-tidy-{v}" for v in range(21, 11, -1)]
    for name in candidates:
        path = shutil.which(name)
        if path:
            return path
    return None


def first_party_sources(build_dir):
    """src/ TUs from compile_commands.json, deduplicated and sorted."""
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        sys.exit(
            f"error: {db_path} not found — configure with "
            "`cmake -B build -S .` first (compile-command export is on "
            "by default)"
        )
    with open(db_path, encoding="utf-8") as f:
        db = json.load(f)
    src_prefix = os.path.join(REPO_ROOT, "src") + os.sep
    files = set()
    for entry in db:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"])
        )
        if path.startswith(src_prefix):
            files.add(path)
    return sorted(files)


def run_one(clang_tidy, build_dir, path):
    proc = subprocess.run(
        [
            clang_tidy,
            f"--config-file={CONFIG_FILE}",
            "-p",
            build_dir,
            "--quiet",
            path,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    return path, proc.returncode, proc.stdout, proc.stderr


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-p",
        "--build-dir",
        default=os.path.join(REPO_ROOT, "build"),
        help="build directory holding compile_commands.json (default: build)",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=os.cpu_count() or 1,
        help="parallel clang-tidy processes (default: all cores)",
    )
    parser.add_argument(
        "--clang-tidy",
        default=None,
        help="clang-tidy binary (default: first of clang-tidy, clang-tidy-N)",
    )
    args = parser.parse_args()

    clang_tidy = find_clang_tidy(args.clang_tidy)
    if clang_tidy is None:
        sys.exit(
            "error: no clang-tidy binary found on PATH "
            "(looked for clang-tidy and clang-tidy-12..21)"
        )

    files = first_party_sources(os.path.abspath(args.build_dir))
    if not files:
        sys.exit("error: compile_commands.json lists no src/ sources")

    print(f"{os.path.basename(clang_tidy)}: {len(files)} TUs, "
          f"config {os.path.relpath(CONFIG_FILE, REPO_ROOT)}")

    failed = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as ex:
        futures = [
            ex.submit(run_one, clang_tidy, os.path.abspath(args.build_dir), f)
            for f in files
        ]
        for fut in concurrent.futures.as_completed(futures):
            path, rc, out, err = fut.result()
            rel = os.path.relpath(path, REPO_ROOT)
            if rc != 0:
                failed.append(rel)
                print(f"\n--- {rel} ---")
                if out.strip():
                    print(out.strip())
                if err.strip():
                    print(err.strip(), file=sys.stderr)
            else:
                print(f"  ok {rel}")

    if failed:
        print(
            f"\nclang-tidy: {len(failed)}/{len(files)} TUs with findings: "
            + ", ".join(sorted(failed)),
            file=sys.stderr,
        )
        return 1
    print(f"clang-tidy: all {len(files)} TUs clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
