#!/usr/bin/env python3
"""Gate CI on the line coverage of src/.

Reads an lcov tracefile (as emitted by `llvm-cov export -format=lcov` or by
lcov/gcov tooling), aggregates DA: line records for files under src/, and
fails when the covered-line percentage drops below the floor recorded in
scripts/coverage_floor.txt.

The floor is a ratchet: it holds the value measured when the coverage gate
was merged (minus a small cross-tool margin — gcov and llvm-cov count
slightly different line sets), and maintainers bump it as real coverage
grows. It must never be lowered to make a red build green.

Usage: check_coverage.py <tracefile.lcov> [--floor-file scripts/coverage_floor.txt]
"""

import argparse
import os
import sys
from collections import defaultdict


def parse_lcov(path):
    """Returns {source_file: {line: max_hit_count}}."""
    files = defaultdict(dict)
    current = None
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        for raw in fh:
            line = raw.strip()
            if line.startswith("SF:"):
                current = line[3:]
            elif line.startswith("DA:") and current is not None:
                parts = line[3:].split(",")
                if len(parts) < 2:
                    continue
                try:
                    lineno, hits = int(parts[0]), int(parts[1])
                except ValueError:
                    continue
                prev = files[current].get(lineno, 0)
                files[current][lineno] = max(prev, hits)
            elif line == "end_of_record":
                current = None
    return files


def src_key(path, repo_root):
    """Repo-relative key for files under <repo_root>/src/, else None.

    Anchored to the repo checkout, not a bare "/src/" substring: coverage
    builds may compile third-party sources from paths like
    /usr/src/googletest, which must never count toward the gate.
    """
    normalized = os.path.abspath(path).replace("\\", "/")
    anchor = repo_root.rstrip("/") + "/src/"
    if normalized.startswith(anchor):
        return "src/" + normalized[len(anchor):]
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("tracefile")
    parser.add_argument(
        "--floor-file",
        default=os.path.join(os.path.dirname(__file__), "coverage_floor.txt"),
    )
    parser.add_argument(
        "--repo-root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="checkout root; only files under <root>/src/ are counted",
    )
    args = parser.parse_args()
    repo_root = os.path.abspath(args.repo_root).replace("\\", "/")

    with open(args.floor_file, "r", encoding="utf-8") as fh:
        floor = None
        for line in fh:
            line = line.split("#", 1)[0].strip()
            if line:
                floor = float(line)
                break
    if floor is None:
        print(f"no floor value found in {args.floor_file}", file=sys.stderr)
        return 2

    per_file = defaultdict(lambda: [0, 0])  # key -> [covered, instrumented]
    for path, lines in parse_lcov(args.tracefile).items():
        key = src_key(path, repo_root)
        if key is None:
            continue
        per_file[key][1] += len(lines)
        per_file[key][0] += sum(1 for hits in lines.values() if hits > 0)

    total_covered = sum(v[0] for v in per_file.values())
    total_lines = sum(v[1] for v in per_file.values())
    if total_lines == 0:
        print("tracefile contains no src/ lines — wrong file?", file=sys.stderr)
        return 2

    percent = 100.0 * total_covered / total_lines
    print(f"src/ line coverage: {total_covered}/{total_lines} = {percent:.2f}%"
          f" (floor {floor:.2f}%)")
    for key in sorted(per_file, key=lambda k: per_file[k][0] / max(1, per_file[k][1])):
        covered, lines = per_file[key]
        pct = 100.0 * covered / max(1, lines)
        if pct < 100.0:
            print(f"  {pct:6.2f}%  {key} ({covered}/{lines})")

    if percent < floor:
        print(f"FAIL: coverage {percent:.2f}% is below the floor {floor:.2f}%",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
