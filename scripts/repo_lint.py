#!/usr/bin/env python3
"""Repo-invariant lint pass (DESIGN.md §13).

Enforces the structural concurrency/performance invariants that neither the
compiler nor clang-tidy can express, by scanning first-party sources:

  R1 thread-outside-pool     std::thread only in src/common/thread_pool.{h,cc}
                             — all parallelism goes through the shared pool.
  R2 mutex-outside-common    std::mutex / lock_guard / unique_lock /
                             scoped_lock / condition_variable / call_once /
                             once_flag (and the <mutex> / <condition_variable>
                             / <shared_mutex> headers) only in
                             src/common/mutex.h — everything else uses the
                             annotated common::Mutex so -Wthread-safety sees
                             every acquisition.
  R3 raw-rng                 std::mt19937 / random_device /
                             default_random_engine only in
                             src/common/rng.{h,cc} — seeds stay controlled
                             and reproducible.
  R4 alloc-in-kernel         no allocation in src/strategies/ — decode
                             kernels run per-point on the query path; any
                             new/push_back/resize/reserve there is a design
                             regression.
  R5 alloc-in-decode-into    no *fresh container construction* inside
                             Decode*Into bodies (src/core/decoder.cc). The
                             *Into contract reuses caller scratch —
                             clear/reserve/push_back on parameters is the
                             point and stays legal; declaring a new local
                             container (or new/make_unique/malloc) defeats it.
  R6 wall-clock-in-hot-path  no clock reads in src/core, src/strategies,
                             src/ted, src/traj — decode/query results must
                             be time-independent; timing belongs to callers
                             (common/stopwatch.h) and the bench/serve layers.
  R7 socket-outside-net      socket/poll syscalls and the networking headers
                             (<sys/socket.h>, <netinet/*>, <arpa/inet.h>,
                             <poll.h>) only under src/net/ — every other
                             layer stays socket-free so it can be tested,
                             fuzzed and reused in-process (DESIGN.md §14).
  R8 adhoc-atomic-counter    integer std::atomic declarations and
                             fetch_add/fetch_sub only under src/obs/ and
                             src/common/ — ad-hoc counter families bypass
                             the MetricRegistry (no snapshot, no wire
                             export, no naming discipline; DESIGN.md §15).
                             Atomic flags (std::atomic<bool>) and atomic
                             pointers stay legal everywhere.

A finding can be waived inline with `// repo-lint: allow(<rule>)` on the
offending line, but every waiver should carry a justification comment.

Usage: python3 scripts/repo_lint.py              (exits nonzero with findings)
       python3 scripts/repo_lint.py --self-test  (run the rule regression
                                                  suite: known-bad snippets
                                                  must trip, known-good must
                                                  not)
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SCAN_DIRS = ("src", "tools")
SOURCE_EXTS = (".h", ".cc")

ALLOW_RE = re.compile(r"//\s*repo-lint:\s*allow\(([a-z0-9-]+)\)")
LINE_COMMENT_RE = re.compile(r"//.*$")


def repo_files():
    for top in SCAN_DIRS:
        for dirpath, _dirnames, filenames in os.walk(
            os.path.join(REPO_ROOT, top)
        ):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    yield os.path.join(dirpath, name)


def rel(path):
    return os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")


class Finding:
    def __init__(self, rule, path, lineno, line, message):
        self.rule = rule
        self.path = path
        self.lineno = lineno
        self.line = line.strip()
        self.message = message

    def __str__(self):
        return (
            f"{rel(self.path)}:{self.lineno}: [{self.rule}] {self.message}\n"
            f"    {self.line}"
        )


def strip_comment(line):
    """Drop a trailing // comment so commented-out code can't trip rules."""
    return LINE_COMMENT_RE.sub("", line)


def scan_lines(path, lines, rule, pattern, message, findings):
    for lineno, raw in enumerate(lines, start=1):
        if pattern.search(strip_comment(raw)):
            allow = ALLOW_RE.search(raw)
            if allow and allow.group(1) == rule:
                continue
            findings.append(Finding(rule, path, lineno, raw, message))


# --- R1/R2/R3: symbol confinement rules -------------------------------------

R1_PATTERN = re.compile(r"\bstd::thread\b|#include\s*<thread>")
R1_ALLOWED = {"src/common/thread_pool.h", "src/common/thread_pool.cc"}

R2_PATTERN = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock|condition_variable|"
    r"condition_variable_any|once_flag|call_once)\b"
    r"|#include\s*<(mutex|condition_variable|shared_mutex)>"
)
R2_ALLOWED = {"src/common/mutex.h"}

R3_PATTERN = re.compile(
    r"\bstd::(mt19937(_64)?|random_device|default_random_engine|minstd_rand0?)\b"
)
R3_ALLOWED = {"src/common/rng.h", "src/common/rng.cc"}

# --- R4: allocation tokens banned wholesale in the kernel TUs ---------------

R4_PATTERN = re.compile(
    r"\bnew\b|\bmalloc\s*\(|\bcalloc\s*\(|\bmake_unique\b|\bmake_shared\b"
    r"|\.push_back\s*\(|\.emplace_back\s*\(|\.resize\s*\(|\.reserve\s*\("
    r"|\bstd::(vector|string|deque|map|unordered_map|set|unordered_set)\s*<"
)

# --- R5: fresh containers inside Decode*Into bodies -------------------------

DECODE_INTO_RE = re.compile(r"\bDecode\w*Into\s*\(")
R5_PATTERN = re.compile(
    r"\bstd::(vector|string|deque|map|unordered_map|set|unordered_set)\s*<"
    r"[^;]*\b\w+\s*[;{(=]"  # a *declaration* of a local container
    r"|\bnew\b|\bmake_unique\b|\bmake_shared\b|\bmalloc\s*\("
)

# --- R6: wall-clock reads in decode/query layers ----------------------------

R6_PATTERN = re.compile(
    r"\bstd::chrono\b|\bsteady_clock\b|\bsystem_clock\b"
    r"|\bhigh_resolution_clock\b|\bgettimeofday\s*\(|\bclock_gettime\s*\("
    r"|[^\w.]time\s*\(\s*(NULL|nullptr|0)?\s*\)"
)
R6_DIRS = ("src/core/", "src/strategies/", "src/ted/", "src/traj/")

# --- R7: socket/poll syscalls confined to the serving tier ------------------

R7_PATTERN = re.compile(
    r"#include\s*<(sys/socket\.h|netinet/[\w/]+\.h|arpa/inet\.h|poll\.h"
    r"|sys/epoll\.h)>"
    r"|::(socket|bind|listen|accept4?|connect|recv|recvfrom|send|sendto"
    r"|poll|epoll_create1?|shutdown|getsockname|setsockopt|inet_pton)\s*\("
)
R7_DIR = "src/net/"

# --- R8: ad-hoc atomic counters outside the metrics layer -------------------
# Integer atomics are how bespoke stats grow: a fetch_add here, a counter
# struct there, none of it snapshotable or exported. The obs layer owns
# counting (obs::Counter/Gauge/Histogram); the pool keeps its own atomics
# because its pending-count is a scheduling mechanism, not a metric.
# std::atomic<bool> flags and std::atomic<T*> pointers do not match.

R8_PATTERN = re.compile(
    r"\.fetch_(add|sub)\s*\("
    r"|\bstd::atomic\s*<\s*(u?int\d+_t|std::u?int\d+_t|size_t|std::size_t"
    r"|ptrdiff_t|std::ptrdiff_t|unsigned(\s+(int|long|long\s+long|short"
    r"|char))?|signed(\s+(int|long|long\s+long|short|char))?"
    r"|int|long(\s+long)?|short|char)\s*>"
)
R8_ALLOWED_PREFIXES = ("src/obs/", "src/common/")


def decode_into_bodies(lines):
    """Yield (start_lineno, body_lines) for each Decode*Into definition,
    found by brace matching from the signature line. Body lines start after
    the line holding the opening brace, so parameter declarations in the
    signature (themselves container types) never trip the rule."""
    text_lines = [strip_comment(l) for l in lines]
    i = 0
    n = len(text_lines)
    while i < n:
        if DECODE_INTO_RE.search(text_lines[i]):
            # Find the opening brace of the definition (skip declarations,
            # which hit ';' first).
            depth = 0
            j = i
            opened = False
            open_line = None
            while j < n:
                for ch in text_lines[j]:
                    if not opened:
                        if ch == ";":
                            j = None
                            break
                        if ch == "{":
                            opened = True
                            open_line = j
                            depth = 1
                    else:
                        if ch == "{":
                            depth += 1
                        elif ch == "}":
                            depth -= 1
                            if depth == 0:
                                break
                if j is None or (opened and depth == 0):
                    break
                j += 1
            if j is not None and opened:
                yield i + 1, list(range(open_line + 1, min(j + 1, n)))
                i = j
        i += 1


def check_file(path, r, lines, findings):
    """Apply every rule to one file (r is the repo-relative path that rule
    allow-lists match against; path is what findings print)."""
    if r not in R1_ALLOWED:
        scan_lines(
            path, lines, "thread-outside-pool", R1_PATTERN,
            "raw std::thread outside common/thread_pool — use the shared "
            "ThreadPool", findings,
        )
    if r not in R2_ALLOWED:
        scan_lines(
            path, lines, "mutex-outside-common", R2_PATTERN,
            "raw std synchronization outside common/mutex.h — use the "
            "annotated common::Mutex/MutexLock/CondVar", findings,
        )
    if r not in R3_ALLOWED:
        scan_lines(
            path, lines, "raw-rng", R3_PATTERN,
            "raw std random engine outside common/rng — use common::Rng",
            findings,
        )
    if r.startswith("src/strategies/"):
        scan_lines(
            path, lines, "alloc-in-kernel", R4_PATTERN,
            "allocation in a decode-kernel TU — kernels must stay "
            "allocation-free", findings,
        )
    if r == "src/core/decoder.cc":
        body_linenos = set()
        for _start, linenos in decode_into_bodies(lines):
            body_linenos.update(linenos)
        for idx in sorted(body_linenos):
            raw = lines[idx]
            if R5_PATTERN.search(strip_comment(raw)):
                allow = ALLOW_RE.search(raw)
                if allow and allow.group(1) == "alloc-in-decode-into":
                    continue
                findings.append(Finding(
                    "alloc-in-decode-into", path, idx + 1, raw,
                    "fresh container construction inside a Decode*Into "
                    "body — reuse caller scratch (DESIGN.md §12)",
                ))
    if any(r.startswith(d) for d in R6_DIRS):
        scan_lines(
            path, lines, "wall-clock-in-hot-path", R6_PATTERN,
            "clock read in a decode/query layer — results must be "
            "time-independent; time in callers via common/stopwatch",
            findings,
        )
    if not r.startswith(R7_DIR):
        scan_lines(
            path, lines, "socket-outside-net", R7_PATTERN,
            "socket/poll syscall or networking header outside src/net/ "
            "— the serving tier owns all sockets (DESIGN.md §14)",
            findings,
        )
    if not any(r.startswith(p) for p in R8_ALLOWED_PREFIXES):
        scan_lines(
            path, lines, "adhoc-atomic-counter", R8_PATTERN,
            "integer std::atomic / fetch_add outside src/obs/ and "
            "src/common/ — count through obs::MetricRegistry instruments "
            "so stats are snapshotable and exported (DESIGN.md §15)",
            findings,
        )


def check(findings):
    for path in repo_files():
        r = rel(path)
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        check_file(path, r, lines, findings)


# --- self-test: the rules themselves are load-bearing -----------------------
# Each case is (description, repo-relative path, source text, expected rule
# names). Known-bad snippets must trip exactly the listed rules; known-good
# snippets (allowed location, waiver, or a benign look-alike) must stay
# clean. A rule edit that silently stops matching fails here, not in a
# future PR that reintroduces the banned pattern.

SELF_TEST_CASES = [
    # R1
    ("std::thread outside the pool trips",
     "src/serve/x.cc", "std::thread t(Run);\n", ["thread-outside-pool"]),
    ("<thread> include outside the pool trips",
     "src/core/x.cc", "#include <thread>\n", ["thread-outside-pool"]),
    ("std::thread inside the pool is allowed",
     "src/common/thread_pool.cc", "std::thread t(Run);\n", []),
    ("inline waiver suppresses the finding",
     "src/serve/x.cc",
     "std::thread t(Run);  // repo-lint: allow(thread-outside-pool)\n", []),
    # R2
    ("std::mutex outside common/mutex.h trips",
     "src/core/x.cc", "std::mutex m_;\n", ["mutex-outside-common"]),
    ("<mutex> include outside common/mutex.h trips",
     "src/net/x.cc", "#include <mutex>\n", ["mutex-outside-common"]),
    ("std::mutex inside common/mutex.h is allowed",
     "src/common/mutex.h", "std::mutex m_;\n", []),
    ("the annotated common::Mutex does not trip",
     "src/core/x.cc", "common::Mutex m_;\n", []),
    # R3
    ("std::mt19937 outside common/rng trips",
     "src/ted/x.cc", "std::mt19937 gen(42);\n", ["raw-rng"]),
    ("std::mt19937 inside common/rng is allowed",
     "src/common/rng.cc", "std::mt19937 gen(seed);\n", []),
    # R4
    ("push_back in a kernel TU trips",
     "src/strategies/x.cc", "out.push_back(v);\n", ["alloc-in-kernel"]),
    ("std::vector declaration in a kernel TU trips",
     "src/strategies/x.cc", "std::vector<int> tmp;\n", ["alloc-in-kernel"]),
    ("push_back outside the kernels does not trip R4",
     "src/core/x.cc", "out.push_back(v);\n", []),
    # R5
    ("fresh local container inside a Decode*Into body trips",
     "src/core/decoder.cc",
     "void DecodeTimesInto(size_t j, std::vector<int>* out) {\n"
     "  std::vector<int> tmp;\n"
     "}\n",
     ["alloc-in-decode-into"]),
    ("reusing the caller's scratch inside Decode*Into is allowed",
     "src/core/decoder.cc",
     "void DecodeTimesInto(size_t j, std::vector<int>* out) {\n"
     "  out->clear();\n"
     "  out->push_back(1);\n"
     "}\n",
     []),
    ("container parameters in the Decode*Into signature do not trip",
     "src/core/decoder.cc",
     "void DecodeTimesInto(size_t j, std::vector<int>* out);\n", []),
    # R6
    ("steady_clock read in src/core trips",
     "src/core/x.cc",
     "const auto t0 = std::chrono::steady_clock::now();\n",
     ["wall-clock-in-hot-path"]),
    ("clock reads in the serving tier are fine",
     "src/serve/x.cc",
     "const auto t0 = std::chrono::steady_clock::now();\n", []),
    # R7
    ("socket header outside src/net trips",
     "src/serve/x.cc", "#include <sys/socket.h>\n", ["socket-outside-net"]),
    ("socket syscall inside src/net is allowed",
     "src/net/x.cc", "const int fd = ::socket(AF_INET, SOCK_STREAM, 0);\n",
     []),
    # R8
    ("integer atomic member outside obs/common trips",
     "src/serve/x.h", "std::atomic<uint64_t> hits_{0};\n",
     ["adhoc-atomic-counter"]),
    ("fetch_add outside obs/common trips",
     "src/net/x.cc",
     "hits_.fetch_add(1, std::memory_order_relaxed);\n",
     ["adhoc-atomic-counter"]),
    ("atomic size_t outside obs/common trips",
     "src/ingest/x.h", "std::atomic<size_t> depth_{0};\n",
     ["adhoc-atomic-counter"]),
    ("atomic bool flag stays legal everywhere",
     "src/net/x.h", "std::atomic<bool> stopping_{false};\n", []),
    ("atomic pointer stays legal everywhere",
     "src/strategies/x.cc",
     "std::atomic<const Kernels*> g_active{nullptr};\n", []),
    ("obs::Counter inside src/obs keeps its atomic",
     "src/obs/metrics.h",
     "  void Add(uint64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }\n",
     []),
    ("the pool's pending count stays legal",
     "src/common/thread_pool.cc",
     "pending_.fetch_add(1, std::memory_order_release);\n", []),
]


def self_test():
    failures = 0
    for description, r, source, expected in SELF_TEST_CASES:
        findings = []
        check_file(r, r, source.splitlines(), findings)
        got = sorted({f.rule for f in findings})
        if got != sorted(expected):
            failures += 1
            print(f"FAIL {description}\n"
                  f"     path {r}: expected {sorted(expected)}, got {got}")
        else:
            print(f"ok   {description}")
    if failures:
        print(f"\nrepo_lint --self-test: {failures} case(s) failed",
              file=sys.stderr)
        return 1
    print(f"repo_lint --self-test: {len(SELF_TEST_CASES)} cases passed")
    return 0


def main():
    if "--self-test" in sys.argv[1:]:
        return self_test()
    findings = []
    check(findings)
    if findings:
        for f in findings:
            print(f)
        print(f"\nrepo_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("repo_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
