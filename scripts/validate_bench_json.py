#!/usr/bin/env python3
"""Validates the BENCH_*.json baselines the benches emit.

CI runs this after the bench-smoke job: a baseline that parses but carries
NaN/inf (a zero-division that slipped through a guard), a missing key, or
an empty run list would poison every later perf comparison silently.

Usage: validate_bench_json.py FILE [FILE...]
"""

import json
import math
import sys

REQUIRED = {
    "shard_scaling": {
        "keys": ["bench", "trajectories", "threads_available",
                 "query_equivalence_checked", "query_equivalence_mismatches",
                 "runs"],
        "list_keys": {"runs": ["shards", "threads", "seconds",
                               "speedup_vs_1shard", "total_bits"]},
    },
    "query_serving": {
        "keys": ["bench", "trajectories", "threads_available",
                 "threads_effective_batch", "equivalence_mismatches",
                 "cold_qps", "warm_qps", "warm_over_cold", "warm_hit_rate",
                 "cold_bracketed_qps", "decode_bytes_partial",
                 "decode_bytes_full_cold", "sync_seeks",
                 "p50_latency_us", "p99_latency_us", "batch_runs",
                 "budget_runs"],
        "list_keys": {
            "batch_runs": ["batch_size", "seconds", "qps", "hit_rate"],
            "budget_runs": ["budget_bytes", "qps", "hit_rate",
                            "resident_bytes"],
        },
    },
    "decode": {
        "keys": ["bench", "trajectories", "decode_reps", "payload_bytes",
                 "threads_available", "threads_effective",
                 "equivalence_mismatches", "best_tier",
                 "best_speedup_vs_bitloop", "tiers"],
        "list_keys": {
            "tiers": ["tier", "decode_seconds", "decode_mbps", "qps",
                      "speedup_vs_bitloop"],
        },
    },
    "ingest": {
        "keys": ["bench", "raw_streams", "points", "matched_trajectories",
                 "threads_available", "equivalence_mismatches",
                 "ingest_seconds", "points_per_sec", "seal_p50_ms",
                 "seal_p99_ms", "flush_seconds", "sealed_over_live",
                 "query_runs"],
        "list_keys": {
            "query_runs": ["mode", "seconds", "qps", "queries"],
        },
    },
    "serve_net": {
        "keys": ["bench", "trajectories", "queries_per_run",
                 "equivalence_mismatches", "connections_accepted",
                 "frames_handled", "closed_loop_qps", "closed_loop_p50_us",
                 "closed_loop_p99_us", "pipelined_qps",
                 "pipelined_over_closed", "connection_runs",
                 "open_loop_runs"],
        "list_keys": {
            "connection_runs": ["connections", "total_qps"],
            "open_loop_runs": ["offered_qps", "achieved_qps", "p50_us",
                               "p99_us", "p999_us"],
        },
    },
}


def check_metrics(doc, errors):
    """Every baseline embeds its obs::MetricRegistry snapshot: counters,
    gauges and reduced histograms. Counters are non-negative by type and
    histogram percentiles must be ordered — a violation means the snapshot
    or the reduction code regressed, not the workload."""
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        errors.append("metrics: missing or not an object")
        return
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            errors.append(f"metrics.{section}: missing or not an object")
            return
    for name, value in metrics["counters"].items():
        if not isinstance(value, int) or value < 0:
            errors.append(f"metrics.counters.{name} = {value!r}"
                          " (expected non-negative integer)")
    for name, value in metrics["gauges"].items():
        if not isinstance(value, int):
            errors.append(f"metrics.gauges.{name} = {value!r}"
                          " (expected integer)")
    for name, hist in metrics["histograms"].items():
        if not isinstance(hist, dict):
            errors.append(f"metrics.histograms.{name}: not an object")
            continue
        for key in ("count", "sum", "p50", "p90", "p99", "p999"):
            if key not in hist:
                errors.append(f"metrics.histograms.{name}: missing {key}")
        count = hist.get("count", 0)
        if not isinstance(count, int) or count < 0:
            errors.append(f"metrics.histograms.{name}.count = {count!r}"
                          " (expected non-negative integer)")
        quantiles = [hist.get(k, 0) for k in ("p50", "p90", "p99", "p999")]
        if any(not isinstance(q, (int, float)) for q in quantiles):
            errors.append(f"metrics.histograms.{name}: non-numeric quantile")
        elif sorted(quantiles) != quantiles:
            errors.append(f"metrics.histograms.{name}: percentiles not"
                          f" ordered {quantiles}")
        if count == 0 and any(q != 0 for q in quantiles):
            errors.append(f"metrics.histograms.{name}: zero count with"
                          " nonzero percentiles")


def check_numbers(path, node, errors):
    """Every numeric leaf must be finite — NaN/inf means a guard failed."""
    if isinstance(node, dict):
        for key, value in node.items():
            check_numbers(f"{path}.{key}", value, errors)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            check_numbers(f"{path}[{i}]", value, errors)
    elif isinstance(node, float) and not math.isfinite(node):
        errors.append(f"{path}: non-finite number {node!r}")


def validate(filename):
    errors = []
    try:
        with open(filename) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"cannot parse: {e}"]

    bench = doc.get("bench")
    spec = REQUIRED.get(bench)
    if spec is None:
        return [f"unknown or missing bench name: {bench!r}"]

    for key in spec["keys"]:
        if key not in doc:
            errors.append(f"missing key: {key}")
    for list_key, entry_keys in spec["list_keys"].items():
        entries = doc.get(list_key)
        if not isinstance(entries, list) or not entries:
            errors.append(f"{list_key}: missing or empty")
            continue
        for i, entry in enumerate(entries):
            for key in entry_keys:
                if key not in entry:
                    errors.append(f"{list_key}[{i}]: missing key {key}")

    check_numbers(bench, doc, errors)
    check_metrics(doc, errors)

    # Semantic floors: equivalence must hold and throughputs must be real
    # measurements, not zero-division fallbacks.
    for key in ("query_equivalence_mismatches", "equivalence_mismatches"):
        if doc.get(key, 0) != 0:
            errors.append(f"{key} = {doc[key]} (expected 0)")
    if bench == "query_serving":
        for key in ("cold_qps", "warm_qps", "cold_bracketed_qps"):
            if not doc.get(key, 0) > 0:
                errors.append(f"{key} = {doc.get(key)} (expected > 0)")
        # The v3 partial-decode gate, re-checked on the recorded baseline:
        # the bracketed path must have engaged the seek tables and consumed
        # strictly less compressed stream than the full cold decodes.
        if not doc.get("sync_seeks", 0) > 0:
            errors.append(f"sync_seeks = {doc.get('sync_seeks')}"
                          " (expected > 0)")
        partial = doc.get("decode_bytes_partial", 0)
        full = doc.get("decode_bytes_full_cold", 0)
        if not 0 < partial < full:
            errors.append(f"decode_bytes_partial = {partial} (expected in"
                          f" (0, decode_bytes_full_cold = {full}))")
    if bench == "shard_scaling":
        for i, run in enumerate(doc.get("runs", [])):
            if not run.get("seconds", 0) > 0:
                errors.append(f"runs[{i}].seconds = {run.get('seconds')}"
                              " (expected > 0)")
    if bench == "decode":
        # The first entry is the bitloop baseline; an optimized tier slower
        # than it (speedup floor 1.0) means the dispatch layer regressed.
        if not doc.get("best_speedup_vs_bitloop", 0) >= 1.0:
            errors.append("best_speedup_vs_bitloop = "
                          f"{doc.get('best_speedup_vs_bitloop')}"
                          " (expected >= 1.0)")
        for i, run in enumerate(doc.get("tiers", [])):
            for key in ("decode_mbps", "qps"):
                if not run.get(key, 0) > 0:
                    errors.append(f"tiers[{i}].{key} = {run.get(key)}"
                                  " (expected > 0)")
    if bench == "ingest":
        if not doc.get("points_per_sec", 0) > 0:
            errors.append(f"points_per_sec = {doc.get('points_per_sec')}"
                          " (expected > 0)")
        if not doc.get("seal_p99_ms", 0) >= doc.get("seal_p50_ms", 0):
            errors.append("seal_p99_ms < seal_p50_ms")
        for i, run in enumerate(doc.get("query_runs", [])):
            if not run.get("qps", 0) > 0:
                errors.append(f"query_runs[{i}].qps = {run.get('qps')}"
                              " (expected > 0)")
    if bench == "serve_net":
        for key in ("closed_loop_qps", "pipelined_qps"):
            if not doc.get(key, 0) > 0:
                errors.append(f"{key} = {doc.get(key)} (expected > 0)")
        # Latency percentiles must be ordered within every open-loop run,
        # and an open-loop run never achieves more than it was offered
        # (small timer slack allowed).
        for i, run in enumerate(doc.get("open_loop_runs", [])):
            p50 = run.get("p50_us", 0)
            p99 = run.get("p99_us", 0)
            p999 = run.get("p999_us", 0)
            if not (p50 <= p99 <= p999):
                errors.append(f"open_loop_runs[{i}]: percentiles not"
                              f" ordered ({p50}, {p99}, {p999})")
            if run.get("achieved_qps", 0) > 1.10 * run.get("offered_qps", 0):
                errors.append(f"open_loop_runs[{i}]: achieved_qps exceeds"
                              " offered_qps by more than 10%")
        for i, run in enumerate(doc.get("connection_runs", [])):
            if not run.get("total_qps", 0) > 0:
                errors.append(f"connection_runs[{i}].total_qps ="
                              f" {run.get('total_qps')} (expected > 0)")
    return errors


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    failed = False
    for filename in sys.argv[1:]:
        errors = validate(filename)
        if errors:
            failed = True
            print(f"FAIL {filename}")
            for error in errors:
                print(f"  {error}")
        else:
            print(f"OK   {filename}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
