#include "shard/sharded.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace utcq::shard {

namespace {

/// Splits a manifest path into (directory prefix incl. trailing '/',
/// basename). Save records shard filenames relative to the directory and
/// Open resolves them against it — both sides must split identically.
std::pair<std::string, std::string> SplitDirBase(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return {"", path};
  return {path.substr(0, slash + 1), path.substr(slash + 1)};
}

void Accumulate(core::QueryStats* into, const core::QueryStats& from) {
  into->candidates += from.candidates;
  into->pruned_lemma1 += from.pruned_lemma1;
  into->pruned_lemma2 += from.pruned_lemma2;
  into->pruned_lemma4 += from.pruned_lemma4;
  into->accepted_lemma3 += from.accepted_lemma3;
  into->instances_decoded += from.instances_decoded;
  into->stream_bits_read += from.stream_bits_read;
  into->sync_seeks += from.sync_seeks;
}

}  // namespace

std::string ShardArchivePath(const std::string& manifest_path,
                             uint32_t shard) {
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), ".shard-%03u", shard);
  return manifest_path + suffix;
}

ShardPlan MakeShardPlan(const traj::UncertainCorpus& corpus,
                        const ShardOptions& opts) {
  ShardPlan plan;
  plan.policy = opts.policy;
  const uint32_t n = std::max<uint32_t>(1, opts.num_shards);
  const int64_t window = std::max<int64_t>(1, opts.time_window_s);
  plan.time_window_s = opts.policy == ShardPolicy::kTimePartition ? window : 0;
  plan.members.resize(n);
  for (uint32_t j = 0; j < corpus.size(); ++j) {
    uint32_t s = 0;
    switch (opts.policy) {
      case ShardPolicy::kAppendLog:
        // Not a planner policy — append-log sets are written generation by
        // generation by ingest::Flusher. A stray request gets the default
        // hash layout rather than a crash or a skewed single shard.
        [[fallthrough]];
      case ShardPolicy::kHash:
        // Sequential trajectory ids must not all land in the same few
        // shards, so the id is mixed before the modulo.
        s = static_cast<uint32_t>(common::SplitMix64(corpus[j].id) % n);
        break;
      case ShardPolicy::kTimePartition: {
        const traj::Timestamp t0 =
            corpus[j].times.empty() ? 0 : corpus[j].times.front();
        // Timestamps can be negative (day-relative clock); keep the modulo
        // in [0, n) rather than indexing members with a wrapped negative.
        int64_t m = (t0 / window) % static_cast<int64_t>(n);
        if (m < 0) m += n;
        s = static_cast<uint32_t>(m);
        break;
      }
    }
    plan.members[s].push_back(j);  // j ascending => members ascending
  }
  return plan;
}

uint64_t ShardedBuild::total_bits() const {
  uint64_t total = 0;
  for (const auto& s : shards) total += s->corpus.total_bits();
  return total;
}

traj::ComponentSizes ShardedBuild::compressed_bits() const {
  traj::ComponentSizes total;
  for (const auto& s : shards) total += s->corpus.compressed_bits();
  return total;
}

bool ShardedBuild::Save(const std::string& manifest_path,
                        std::string* error) const {
  const auto [dir, base] = SplitDirBase(manifest_path);

  archive::ShardManifest manifest;
  manifest.policy = static_cast<uint8_t>(plan.policy);
  manifest.time_partition_s = plan.time_window_s;
  manifest.shards.resize(shards.size());
  for (uint32_t s = 0; s < shards.size(); ++s) {
    manifest.shards[s].file = ShardArchivePath(base, s);
    manifest.shards[s].members = plan.members[s];
    const archive::ArchiveWriter writer(shards[s]->corpus,
                                        shards[s]->index.get());
    if (!writer.Save(dir + manifest.shards[s].file, error)) return false;
  }
  // The manifest is written last: it is the publication point of the set,
  // and it must never name a shard file that is not fully on disk.
  return archive::SaveBytesAtomic(archive::EncodeShardManifest(manifest),
                                  manifest_path, error);
}

ShardedCompressor::ShardedCompressor(const network::RoadNetwork& net,
                                     const network::GridIndex& grid,
                                     core::UtcqParams params,
                                     core::StiuParams index_params,
                                     ShardOptions opts)
    : net_(net),
      grid_(grid),
      params_(params),
      index_params_(index_params),
      opts_(opts) {
  index_params_.cells_per_side = grid.cells_per_side();
}

std::unique_ptr<CompressedShard> ShardedCompressor::CompressOneShard(
    const traj::UncertainCorpus& sub) const {
  auto shard = std::make_unique<CompressedShard>();
  const core::UtcqCompressor compressor(net_, params_);
  std::vector<std::vector<core::NrefFactorLayout>> layouts;
  shard->corpus = compressor.Compress(sub, &layouts);
  shard->index = std::make_unique<core::StiuIndex>(
      net_, grid_, sub, shard->corpus, layouts, index_params_);
  return shard;
}

ShardedBuild ShardedCompressor::Compress(
    const traj::UncertainCorpus& corpus) const {
  ShardedBuild build;
  build.plan = MakeShardPlan(corpus, opts_);
  const uint32_t n = build.plan.num_shards();
  build.shards.resize(n);
  // Every shard is an independent single-threaded compression over shared
  // immutable inputs (network, grid, params); the only cross-thread writes
  // are to each worker's own build.shards slot. The shard's trajectories
  // are copied worker-locally just in time, bounding the extra working set
  // to the shards in flight rather than the whole corpus. ParallelFor runs
  // this on the persistent shared pool — the same workers that serve query
  // fan-out — so repeated builds pay no thread start-up.
  common::ParallelFor(n, opts_.num_threads, [&](size_t s) {
    traj::UncertainCorpus sub;
    sub.reserve(build.plan.members[s].size());
    for (const uint32_t j : build.plan.members[s]) sub.push_back(corpus[j]);
    build.shards[s] = CompressOneShard(sub);
  });
  return build;
}

ShardedBuild ShardedCompressor::Compress(traj::UncertainCorpus&& corpus) const {
  ShardedBuild build;
  build.plan = MakeShardPlan(corpus, opts_);
  const uint32_t n = build.plan.num_shards();
  // Moving each trajectory into its shard costs pointer swaps, not payload
  // copies: peak memory stays at one corpus for ingest pipelines that are
  // done with the raw data.
  std::vector<traj::UncertainCorpus> subs(n);
  for (uint32_t s = 0; s < n; ++s) {
    subs[s].reserve(build.plan.members[s].size());
    for (const uint32_t j : build.plan.members[s]) {
      subs[s].push_back(std::move(corpus[j]));
    }
  }
  corpus.clear();
  build.shards.resize(n);
  common::ParallelFor(n, opts_.num_threads, [&](size_t s) {
    build.shards[s] = CompressOneShard(subs[s]);
  });
  return build;
}

bool ShardedCorpus::Open(const network::RoadNetwork& net,
                         const std::string& manifest_path,
                         std::string* error) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };

  std::vector<uint8_t> bytes;
  if (!archive::ReadFileBytes(manifest_path, &bytes, error)) return false;
  archive::ShardManifest manifest;
  if (!DecodeShardManifest(bytes.data(), bytes.size(), &manifest, error)) {
    return false;
  }
  if (manifest.shards.empty()) return fail("manifest names no shards");

  const std::string dir = SplitDirBase(manifest_path).first;

  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(manifest.shards.size());
  uint32_t cells = 0;
  for (const archive::ShardManifest::Shard& entry : manifest.shards) {
    auto shard = std::make_unique<Shard>();
    if (!shard->reader.Open(dir + entry.file, error)) return false;
    if (!shard->reader.has_index()) {
      return fail("shard " + entry.file + " carries no StIU index");
    }
    if (shard->reader.payload().metas.size() != entry.members.size()) {
      return fail("shard " + entry.file +
                  " trajectory count disagrees with the manifest");
    }
    if (cells == 0) {
      cells = shard->reader.index_cells_per_side();
    } else if (shard->reader.index_cells_per_side() != cells) {
      return fail("shard " + entry.file +
                  " was indexed over a different grid resolution");
    }
    shards.push_back(std::move(shard));
  }

  auto grid = std::make_unique<network::GridIndex>(net, cells);
  for (size_t s = 0; s < shards.size(); ++s) {
    shards[s]->index = shards[s]->reader.LoadIndex(*grid, error);
    if (shards[s]->index == nullptr) return false;
    shards[s]->queries = std::make_unique<core::UtcqQueryProcessor>(
        net, shards[s]->reader.view(), *shards[s]->index);
  }

  // Routing table: every global index must be claimed exactly once across
  // the member lists, or point queries would mis-route or walk off a shard.
  const size_t total = manifest.num_trajectories();
  constexpr uint32_t kUnrouted = UINT32_MAX;
  std::vector<std::pair<uint32_t, uint32_t>> route(total, {kUnrouted, 0});
  for (uint32_t s = 0; s < manifest.shards.size(); ++s) {
    const auto& members = manifest.shards[s].members;
    for (uint32_t local = 0; local < members.size(); ++local) {
      const uint32_t global = members[local];
      if (global >= total || route[global].first != kUnrouted) {
        return fail("manifest member lists do not partition the corpus");
      }
      route[global] = {s, local};
    }
  }

  net_ = &net;
  grid_ = std::move(grid);
  manifest_ = std::move(manifest);
  shards_ = std::move(shards);
  route_ = std::move(route);
  return true;
}

std::vector<traj::WhereHit> ShardedCorpus::Where(
    size_t traj_idx, traj::Timestamp t, double alpha,
    core::QueryStats* stats) const {
  // Untrusted / out-of-range ids (and the unopened corpus, whose routing
  // table is empty) answer empty instead of walking off the table.
  if (traj_idx >= route_.size()) return {};
  const auto [s, local] = route_[traj_idx];
  return shards_[s]->queries->Where(local, t, alpha, stats);
}

std::vector<traj::WhenHit> ShardedCorpus::When(size_t traj_idx,
                                               network::EdgeId edge, double rd,
                                               double alpha,
                                               core::QueryStats* stats) const {
  if (traj_idx >= route_.size()) return {};
  const auto [s, local] = route_[traj_idx];
  return shards_[s]->queries->When(local, edge, rd, alpha, stats);
}

traj::RangeResult ShardedCorpus::Range(const network::Rect& region,
                                       traj::Timestamp tq, double alpha,
                                       core::QueryStats* stats,
                                       unsigned num_threads,
                                       const ShardDecodedProvider& provider) const {
  std::vector<traj::RangeResult> partial(shards_.size());
  std::vector<core::QueryStats> shard_stats(shards_.size());
  common::ParallelFor(shards_.size(), num_threads, [&](size_t s) {
    core::QueryStats* sstats = stats != nullptr ? &shard_stats[s] : nullptr;
    if (provider) {
      const traj::DecodedProvider local_provider =
          [&provider, s](uint32_t local) {
            return provider(static_cast<uint32_t>(s), local);
          };
      partial[s] = shards_[s]->queries->Range(region, tq, alpha,
                                              local_provider, sstats);
    } else {
      partial[s] = shards_[s]->queries->Range(region, tq, alpha, sstats);
    }
  });

  traj::RangeResult merged;
  for (size_t s = 0; s < partial.size(); ++s) {
    for (const uint32_t local : partial[s]) {
      merged.push_back(manifest_.shards[s].members[local]);
    }
    if (stats != nullptr) Accumulate(stats, shard_stats[s]);
  }
  std::sort(merged.begin(), merged.end());
  return merged;
}

}  // namespace utcq::shard
