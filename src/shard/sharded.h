#ifndef UTCQ_SHARD_SHARDED_H_
#define UTCQ_SHARD_SHARDED_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "core/encoder.h"
#include "core/query.h"
#include "core/stiu_index.h"
#include "network/grid_index.h"
#include "traj/decoded.h"
#include "traj/types.h"

namespace utcq::shard {

/// Decoded-trajectory lookup addressed by (shard, local index) — the
/// sharded counterpart of traj::DecodedProvider, supplied by the serving
/// layer so a Range fan-out shares one cache across shards.
using ShardDecodedProvider =
    std::function<std::shared_ptr<const traj::DecodedTraj>(uint32_t shard,
                                                           uint32_t local)>;

/// How trajectories are assigned to shards. Values are persisted in the
/// shard manifest (archive::ShardManifest::policy): append-only, never
/// renumber.
enum class ShardPolicy : uint8_t {
  /// Shard by a mix of the trajectory id — uniform load regardless of
  /// ingestion order. The default.
  kHash = 0,
  /// Shard by the trajectory's start-time window: trajectories beginning in
  /// the same `time_window_s` window land in the same shard (modulo the
  /// shard count), so time-bounded scans touch few shards.
  kTimePartition = 1,
  /// Streaming flush log (DESIGN.md §10): each shard is one flush
  /// generation, members are the contiguous global ids sealed between two
  /// flushes, in seal order. Written by ingest::Flusher, never by
  /// MakeShardPlan.
  kAppendLog = 2,
};

struct ShardOptions {
  uint32_t num_shards = 8;
  /// Worker threads for compression and fan-out; 0 picks
  /// common::DefaultThreads().
  unsigned num_threads = 0;
  ShardPolicy policy = ShardPolicy::kHash;
  /// Window length for kTimePartition (seconds).
  int64_t time_window_s = 3600;
};

/// Assignment of the corpus's global trajectory indices to shards:
/// members[s] lists shard s's global indices, strictly ascending. The
/// local index of a trajectory within its shard is its position in that
/// list — the invariant every routing decision rests on.
struct ShardPlan {
  ShardPolicy policy = ShardPolicy::kHash;
  int64_t time_window_s = 0;
  std::vector<std::vector<uint32_t>> members;

  uint32_t num_shards() const { return static_cast<uint32_t>(members.size()); }
};

ShardPlan MakeShardPlan(const traj::UncertainCorpus& corpus,
                        const ShardOptions& opts);

/// Path of shard `shard`'s archive file for a manifest at `manifest_path` —
/// the naming scheme ShardedBuild::Save writes and the manifest records
/// (relative to its own directory). Callers managing set files (cleanup,
/// replication) derive names through this instead of re-rolling the suffix.
std::string ShardArchivePath(const std::string& manifest_path,
                             uint32_t shard);

/// One compressed shard: an independent CompressedCorpus plus its StIU
/// index, both built over the shard's sub-corpus only.
struct CompressedShard {
  core::CompressedCorpus corpus;
  std::unique_ptr<core::StiuIndex> index;
};

/// Write-side product of a sharded compression run: the plan plus one
/// CompressedShard per shard. Save writes the multi-file archive set —
/// per-shard §6 containers next to a §8 manifest, shards first so the
/// manifest only ever names files that exist.
struct ShardedBuild {
  ShardPlan plan;
  std::vector<std::unique_ptr<CompressedShard>> shards;

  /// Sum of the shards' compressed payloads in bits.
  uint64_t total_bits() const;
  /// Per-component compressed sizes summed across shards.
  traj::ComponentSizes compressed_bits() const;

  /// Writes `manifest_path` plus one `<manifest>.shard-NNN` file per shard
  /// in the same directory.
  bool Save(const std::string& manifest_path,
            std::string* error = nullptr) const;
};

/// Parallel compression pipeline: partitions a corpus by the shard policy
/// and compresses the shards concurrently. Each shard runs the existing
/// single-threaded UtcqCompressor + StIU build unchanged — shards share
/// only the immutable road network and grid, so no locking is involved.
class ShardedCompressor {
 public:
  /// `net` and `grid` must outlive the compressor and every build it
  /// returns. index_params.cells_per_side is forced to the grid's.
  ShardedCompressor(const network::RoadNetwork& net,
                    const network::GridIndex& grid, core::UtcqParams params,
                    core::StiuParams index_params, ShardOptions opts);

  /// Borrowing build: each worker copies its shard's trajectories just in
  /// time, so at most num_threads sub-corpora are materialized at once.
  ShardedBuild Compress(const traj::UncertainCorpus& corpus) const;

  /// Consuming build for ingest pipelines that are done with the raw
  /// corpus: trajectories are *moved* into their shards (no payload
  /// copies), keeping peak memory at one corpus. `corpus` is left empty.
  ShardedBuild Compress(traj::UncertainCorpus&& corpus) const;

  const ShardOptions& options() const { return opts_; }

 private:
  std::unique_ptr<CompressedShard> CompressOneShard(
      const traj::UncertainCorpus& sub) const;

  const network::RoadNetwork& net_;
  const network::GridIndex& grid_;
  core::UtcqParams params_;
  core::StiuParams index_params_;
  ShardOptions opts_;
};

/// Read-side of a sharded archive set: opens the manifest and every shard
/// archive, then serves the three probabilistic queries over the global
/// trajectory space. Where/When route to the owning shard through the
/// manifest's member lists; Range fans out across all shards in parallel
/// and merges the hits back to global indices. Results are identical to an
/// unsharded corpus over the same trajectories (pinned by tests).
class ShardedCorpus {
 public:
  ShardedCorpus() = default;

  /// Opens manifest + shards. `net` must be the network the corpus was
  /// compressed against and must outlive this object. On failure returns
  /// false and leaves the corpus unopened.
  bool Open(const network::RoadNetwork& net, const std::string& manifest_path,
            std::string* error = nullptr);

  bool is_open() const { return !shards_.empty(); }
  size_t num_shards() const { return shards_.size(); }
  size_t num_trajectories() const { return route_.size(); }
  const archive::ShardManifest& manifest() const { return manifest_; }

  /// Shard and local index owning global trajectory `j`.
  std::pair<uint32_t, uint32_t> Route(size_t j) const { return route_[j]; }

  /// Shard `s`'s query processor, for callers (the serving layer) that
  /// route point queries themselves and pass decoded handles through.
  const core::UtcqQueryProcessor& shard_queries(uint32_t s) const {
    return *shards_[s]->queries;
  }

  std::vector<traj::WhereHit> Where(size_t traj_idx, traj::Timestamp t,
                                    double alpha,
                                    core::QueryStats* stats = nullptr) const;
  std::vector<traj::WhenHit> When(size_t traj_idx, network::EdgeId edge,
                                  double rd, double alpha,
                                  core::QueryStats* stats = nullptr) const;

  /// Fan-out range query; trajectory ids in the result are global. With
  /// num_threads == 0 the manifest's shard count and DefaultThreads()
  /// bound the parallelism. A non-empty `provider` serves per-shard decoded
  /// handles (from the engine's cache) to every shard's member walk.
  traj::RangeResult Range(const network::Rect& region, traj::Timestamp tq,
                          double alpha, core::QueryStats* stats = nullptr,
                          unsigned num_threads = 0,
                          const ShardDecodedProvider& provider = nullptr) const;

 private:
  struct Shard {
    archive::ArchiveReader reader;
    std::unique_ptr<core::StiuIndex> index;
    std::unique_ptr<core::UtcqQueryProcessor> queries;
  };

  const network::RoadNetwork* net_ = nullptr;
  std::unique_ptr<network::GridIndex> grid_;
  archive::ShardManifest manifest_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Global trajectory index -> (shard, local index).
  std::vector<std::pair<uint32_t, uint32_t>> route_;
};

}  // namespace utcq::shard

#endif  // UTCQ_SHARD_SHARDED_H_
