// AVX2 tier. Compiled with -mavx2 -mbmi -mbmi2 -mlzcnt -mpopcnt (this file
// only; never -mfma — FMA contraction would change the interpolation
// doubles and break cross-tier bit-exactness; the _mm256_mul_pd/_mm256_add_pd
// intrinsics below never contract). On top of the shared word kernels —
// whose clz-based run scans compile to LZCNT here — this tier adds batched
// 256-bit kernels:
//
//  - read_fields: four fixed-width fields extracted per iteration from one
//    byte-swapped 64-bit window via VPSRLVQ variable shifts,
//  - unpack_bits: 32 flag bits exploded to 0/1 bytes per iteration with a
//    byte-replicating VPSHUFB + per-byte bit masks,
//  - lerp / mul_add: 4-wide double interpolation.

#include "strategies/tier_tables.h"

#if defined(UTCQ_HAVE_AVX2_KERNELS)

#include <immintrin.h>

#include <cstring>

#include "strategies/word_kernels.h"

namespace utcq::strategies {
namespace {

// read_fields widths are node-id widths (BitsFor over counts), comfortably
// within 14 bits for every corpus the bench or tests build; 4 fields plus a
// 7-bit byte-alignment lead then fit one 64-bit window: 7 + 4*14 <= 63.
constexpr int kMaxSimdFieldWidth = 14;

void Avx2ReadFields(common::BitReader& r, int width, uint32_t* out, size_t n) {
  if (width <= 0) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  // The SIMD path reads raw 8-byte windows, so require the whole batch plus
  // a 64-bit cushion to be in-range; the tail (or any odd-shaped call)
  // drops to the word kernel, which carries the overflow semantics.
  const uint64_t total = static_cast<uint64_t>(width) * n;
  if (width > kMaxSimdFieldWidth || r.remaining() < total + 64) {
    WordReadFields(r, width, out, n);
    return;
  }
  const uint8_t* data = r.data();
  size_t pos = r.position();
  const __m256i vmask = _mm256_set1_epi64x(
      static_cast<long long>((uint64_t{1} << width) - 1));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const size_t byte = pos >> 3;
    const int lead = static_cast<int>(pos & 7);
    uint64_t w;
    std::memcpy(&w, data + byte, 8);
    w = __builtin_bswap64(w);
    const int base = 64 - lead;
    const __m256i shifts = _mm256_set_epi64x(base - 4 * width, base - 3 * width,
                                             base - 2 * width, base - width);
    const __m256i fields = _mm256_and_si256(
        _mm256_srlv_epi64(_mm256_set1_epi64x(static_cast<long long>(w)),
                          shifts),
        vmask);
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), fields);
    out[i] = static_cast<uint32_t>(lanes[0]);
    out[i + 1] = static_cast<uint32_t>(lanes[1]);
    out[i + 2] = static_cast<uint32_t>(lanes[2]);
    out[i + 3] = static_cast<uint32_t>(lanes[3]);
    pos += static_cast<size_t>(4 * width);
  }
  r.Seek(pos);
  for (; i < n; ++i) {
    out[i] = static_cast<uint32_t>(r.GetBits(width));
  }
}

void Avx2UnpackBits(common::BitReader& r, uint8_t* out, size_t n) {
  // Per 128-bit lane, VPSHUFB replicates each source byte across the eight
  // output bytes whose bits it holds; AND with descending bit weights and
  // a compare-to-self turn "bit set" into 0xFF, masked down to 0/1.
  const __m256i sel =
      _mm256_setr_epi8(3, 3, 3, 3, 3, 3, 3, 3, 2, 2, 2, 2, 2, 2, 2, 2, 1, 1,
                       1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0);
  const __m256i weights = _mm256_setr_epi8(
      static_cast<char>(0x80), 0x40, 0x20, 0x10, 8, 4, 2, 1,
      static_cast<char>(0x80), 0x40, 0x20, 0x10, 8, 4, 2, 1,
      static_cast<char>(0x80), 0x40, 0x20, 0x10, 8, 4, 2, 1,
      static_cast<char>(0x80), 0x40, 0x20, 0x10, 8, 4, 2, 1);
  const __m256i ones = _mm256_set1_epi8(1);
  size_t i = 0;
  while (n - i >= 32 && r.remaining() >= 64) {
    const uint32_t hi = static_cast<uint32_t>(r.PeekBits64() >> 32);
    __m256i v = _mm256_shuffle_epi8(_mm256_set1_epi32(static_cast<int>(hi)),
                                    sel);
    v = _mm256_and_si256(v, weights);
    v = _mm256_and_si256(_mm256_cmpeq_epi8(v, weights), ones);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
    r.Advance(32);
    i += 32;
  }
  if (i < n) WordUnpackBits(r, out + i, n - i);
}

void Avx2Lerp(const double* d0, const double* d1, double f, double* out,
              size_t n) {
  const __m256d vf = _mm256_set1_pd(f);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d a = _mm256_loadu_pd(d0 + i);
    const __m256d b = _mm256_loadu_pd(d1 + i);
    _mm256_storeu_pd(
        out + i, _mm256_add_pd(a, _mm256_mul_pd(_mm256_sub_pd(b, a), vf)));
  }
  for (; i < n; ++i) {
    out[i] = d0[i] + (d1[i] - d0[i]) * f;
  }
}

void Avx2MulAdd(const double* base, const double* x, const double* scale,
                double* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i,
                     _mm256_add_pd(_mm256_loadu_pd(base + i),
                                   _mm256_mul_pd(_mm256_loadu_pd(x + i),
                                                 _mm256_loadu_pd(scale + i))));
  }
  for (; i < n; ++i) {
    out[i] = base[i] + x[i] * scale[i];
  }
}

}  // namespace
}  // namespace utcq::strategies

#endif  // UTCQ_HAVE_AVX2_KERNELS

namespace utcq::strategies::detail {

#if defined(UTCQ_HAVE_AVX2_KERNELS)

const Kernels* Avx2Kernels() {
  static const Kernels k = {
      &WordGetBits,    &WordScanZeroRun, &WordScanOneRun,
      &Avx2ReadFields, &Avx2UnpackBits,  &WordPddpDecode,
      &WordDecodeIeg,  &WordPddpRun,     &Avx2Lerp,
      &Avx2MulAdd,     Tier::kAvx2,      "avx2",
  };
  return &k;
}

#else

const Kernels* Avx2Kernels() { return nullptr; }

#endif

}  // namespace utcq::strategies::detail
