#ifndef UTCQ_STRATEGIES_TIER_TABLES_H_
#define UTCQ_STRATEGIES_TIER_TABLES_H_

#include "strategies/strategies.h"

// Internal to src/strategies/: one accessor per kernel translation unit.
// Each TU is compiled with its own ISA flags (CMake sets per-file
// COMPILE_OPTIONS), so the only thing allowed to cross the TU boundary is
// the filled-in table — never an inline function that two TUs could merge
// under different instruction sets.

namespace utcq::strategies::detail {

const Kernels* BitloopKernels();
const Kernels* ScalarKernels();

/// nullptr when the toolchain couldn't build this tier's TU with its ISA
/// flags (the TU still compiles, as a stub, so the link never breaks).
const Kernels* Sse42Kernels();
const Kernels* Avx2Kernels();

}  // namespace utcq::strategies::detail

#endif  // UTCQ_STRATEGIES_TIER_TABLES_H_
