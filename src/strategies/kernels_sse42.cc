// SSE4.2 tier: the shared word kernels recompiled with -msse4.2 -mpopcnt
// (CMake sets the flags on this file only). The bit-manipulation kernels
// are word-level scalar code either way; what this tier buys is the
// compiler scheduling them with POPCNT/SSE4.2 available, and a dispatch
// rung between "any x86-64" and "AVX2 + BMI2" that the strategy-matrix
// tests exercise on hardware too old for the top tier.
//
// When CMake can't get the flags through the toolchain it omits
// UTCQ_HAVE_SSE42_KERNELS and this TU collapses to a stub returning
// nullptr, which TierSupported reports as "not compiled in".

#include "strategies/tier_tables.h"

#if defined(UTCQ_HAVE_SSE42_KERNELS)
#include "strategies/word_kernels.h"
#endif

namespace utcq::strategies::detail {

#if defined(UTCQ_HAVE_SSE42_KERNELS)

const Kernels* Sse42Kernels() {
  static const Kernels k = {
      &WordGetBits,    &WordScanZeroRun, &WordScanOneRun,
      &WordReadFields, &WordUnpackBits,  &WordPddpDecode,
      &WordDecodeIeg,  &WordPddpRun,     &ScalarLerp,
      &ScalarMulAdd,   Tier::kSse42,     "sse42",
  };
  return &k;
}

#else

const Kernels* Sse42Kernels() { return nullptr; }

#endif

}  // namespace utcq::strategies::detail
