#ifndef UTCQ_STRATEGIES_WORD_KERNELS_H_
#define UTCQ_STRATEGIES_WORD_KERNELS_H_

// Kernel bodies shared by the per-tier translation units. Include this ONLY
// from kernels_*.cc files. Everything lives in an anonymous namespace on
// purpose: each tier TU is compiled with different ISA flags, and giving
// these functions external (or `inline`) linkage would let the linker merge
// an AVX2-compiled body into the scalar table — an ODR violation that would
// crash older CPUs. Internal linkage means every TU carries its own copy,
// compiled under exactly its own flags.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "common/bitstream.h"

namespace utcq::strategies {
namespace {

// ---------------------------------------------------------------------------
// Bit-at-a-time reference kernels (the kBitloop tier). These replicate the
// pre-optimization loops byte-for-byte — including which bits get consumed
// before overflow latches on truncated or overlong input — because they are
// the oracle the word/SIMD kernels are differential-pinned against, and the
// baseline bench_decode measures speedups from.
// ---------------------------------------------------------------------------

// The seed decoder pulled every bit through an out-of-line
// BitReader::GetBit call. BitReader's primitives are force-inlined now (an
// optimization this PR made for the word kernels), so the reference tier
// routes each bit through this noinline shim: the baseline must keep
// paying the per-bit call the pre-optimization code paid, not silently
// inherit the PR's own improvements into the denominator of its speedups.
[[maybe_unused]] __attribute__((noinline)) bool BitloopGetBit(
    common::BitReader& r) {
  return r.GetBit();
}

[[maybe_unused]] uint64_t BitloopGetBits(common::BitReader& r, int width) {
  uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    v = (v << 1) | static_cast<uint64_t>(BitloopGetBit(r));
  }
  return v;
}

[[maybe_unused]] int BitloopScanZeroRun(common::BitReader& r, int max_run) {
  int n = 0;
  while (!BitloopGetBit(r)) {
    ++n;
    if (r.overflow()) return -1;
    if (n > max_run) {
      r.MarkOverflow();
      return -1;
    }
  }
  return n;
}

[[maybe_unused]] int BitloopScanOneRun(common::BitReader& r, int max_run) {
  int j = 0;
  while (BitloopGetBit(r)) {
    ++j;
    if (r.overflow()) return -1;
    if (j > max_run) {
      r.MarkOverflow();
      return -1;
    }
  }
  // A truncated stream ends the run with a phantom 0 bit; report the
  // failure instead of letting the caller decode the garbage that follows.
  if (r.overflow()) return -1;
  return j;
}

[[maybe_unused]] void BitloopReadFields(common::BitReader& r, int width, uint32_t* out,
                       size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint32_t>(BitloopGetBits(r, width));
  }
}

[[maybe_unused]] void BitloopUnpackBits(common::BitReader& r, uint8_t* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = BitloopGetBit(r) ? 1 : 0;
  }
}

[[maybe_unused]] double BitloopPddpDecode(common::BitReader& r, int length_bits, int max_bits) {
  const int length = static_cast<int>(BitloopGetBits(r, length_bits));
  if (length > max_bits) {
    r.MarkOverflow();
    return 0.0;
  }
  const uint64_t code = BitloopGetBits(r, length);
  if (length == 0) return 0.0;
  return static_cast<double>(code) / std::ldexp(1.0, length);
}

[[maybe_unused]] size_t BitloopDecodeIeg(common::BitReader& r, int64_t* out,
                                         size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const int j = BitloopScanOneRun(r, 62);
    int64_t delta = 0;
    if (j > 0) {
      const bool negative = BitloopGetBits(r, 1) != 0;
      const uint64_t offset = BitloopGetBits(r, j);
      const int64_t magnitude =
          static_cast<int64_t>(offset + ((uint64_t{1} << j) - 1));
      delta = negative ? -magnitude : magnitude;
    }
    if (r.overflow()) return i;
    out[i] = delta;
  }
  return n;
}

[[maybe_unused]] void BitloopPddpRun(common::BitReader& r, int length_bits,
                                     int max_bits, double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = BitloopPddpDecode(r, length_bits, max_bits);
  }
}

// The interpolation loops predate batching, so the "reference" is simply
// the same elementwise arithmetic; all tiers share one expression (and no
// tier is compiled with FMA contraction) so doubles match bit-for-bit.
[[maybe_unused]] void ScalarLerp(const double* d0, const double* d1, double f, double* out,
                size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = d0[i] + (d1[i] - d0[i]) * f;
  }
}

[[maybe_unused]] void ScalarMulAdd(const double* base, const double* x, const double* scale,
                  double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = base[i] + x[i] * scale[i];
  }
}

// ---------------------------------------------------------------------------
// Word-at-a-time kernels (kScalar; recompiled with SSE4.2/AVX2 flags by the
// higher tiers). Built on BitReader::PeekBits64, whose phantom-zero masking
// of the stream tail makes run scans safe on untrusted archives.
// ---------------------------------------------------------------------------

[[maybe_unused]] int Clz64(uint64_t w) {
  // __builtin_clzll is undefined at 0; with -mlzcnt the branch compiles to
  // the lzcnt instruction's native 0 -> 64.
  return w == 0 ? 64 : __builtin_clzll(w);
}

[[maybe_unused]] uint64_t WordGetBits(common::BitReader& r, int width) {
  return r.GetBits(width);
}

// Shared body of the two run scans, 64 bits per peek (`ones` complements
// the window, turning a one-run into a leading-zero count either way).
// Replicates the bitloop consumption exactly: a run longer than max_run
// consumes max_run + 1 run bits then latches overflow; a run truncated by
// the end of the stream consumes every remaining bit then latches
// overflow. Codec callers cap runs below 64, but the kernel contract takes
// any max_run >= 0, so a window full of run bits loops to the next one.
[[maybe_unused]] int ScanRunWindows(common::BitReader& r, bool ones, int max_run) {
  int run = 0;  // run bits consumed by earlier windows (always <= max_run)
  while (true) {
    const size_t rem = r.remaining();
    const uint64_t w = ones ? ~r.PeekBits64() : r.PeekBits64();
    const int lead = Clz64(w);
    if (lead < 64 && static_cast<size_t>(lead) < rem) {
      // Terminator found, inside both the window and the stream.
      if (run + lead > max_run) {
        r.Advance(static_cast<size_t>(max_run - run) + 1);
        r.MarkOverflow();
        return -1;
      }
      r.Advance(static_cast<size_t>(lead) + 1);
      return run + lead;
    }
    if (rem < 64) {
      // Every remaining bit is a run bit (phantom bits past the end never
      // count as stream content): truncated run.
      if (run + static_cast<int64_t>(rem) > max_run) {
        r.Advance(static_cast<size_t>(max_run - run) + 1);
      } else {
        r.Advance(rem);
      }
      r.MarkOverflow();
      return -1;
    }
    // A full window of run bits; consume it and keep scanning.
    if (run + 64 > max_run) {
      r.Advance(static_cast<size_t>(max_run - run) + 1);
      r.MarkOverflow();
      return -1;
    }
    r.Advance(64);
    run += 64;
  }
}

[[maybe_unused]] int WordScanZeroRun(common::BitReader& r, int max_run) {
  // A reader whose overflow already latched takes the bitloop path: the
  // reference loops check overflow() mid-run and bail after one bit, and
  // the poisoned-stream case is not worth a second semantics.
  if (r.overflow()) return BitloopScanZeroRun(r, max_run);
  return ScanRunWindows(r, /*ones=*/false, max_run);
}

[[maybe_unused]] int WordScanOneRun(common::BitReader& r, int max_run) {
  if (r.overflow()) return BitloopScanOneRun(r, max_run);
  return ScanRunWindows(r, /*ones=*/true, max_run);
}

[[maybe_unused]] void WordReadFields(common::BitReader& r, int width, uint32_t* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint32_t>(r.GetBits(width));
  }
}

[[maybe_unused]] void WordUnpackBits(common::BitReader& r, uint8_t* out, size_t n) {
  size_t i = 0;
  while (i < n && r.remaining() >= 64) {
    const uint64_t w = r.PeekBits64();
    const size_t take = std::min<size_t>(n - i, 64);
    for (size_t b = 0; b < take; ++b) {
      out[i + b] = static_cast<uint8_t>((w >> (63 - b)) & 1u);
    }
    r.Advance(take);
    i += take;
  }
  for (; i < n; ++i) {
    out[i] = r.GetBit() ? 1 : 0;
  }
}

// Batch of improved Exp-Golomb deltas. The win over per-symbol dispatch is
// that the scan and field reads below are direct intra-TU calls the
// compiler inlines, keeping the reader state in registers across symbols —
// at one-bit group-0 codes the indirect call was most of the cost. The
// sign bit and the j-bit offset are one (j + 1)-bit read: same consumed
// bits, and the sign lands in the extracted word's MSB.
[[maybe_unused]] size_t WordDecodeIeg(common::BitReader& r, int64_t* out,
                                      size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const int j = WordScanOneRun(r, 62);
    int64_t delta = 0;
    if (j > 0) {
      const uint64_t bits = r.GetBits(j + 1);
      const uint64_t offset = bits & ((uint64_t{1} << j) - 1);
      const int64_t magnitude =
          static_cast<int64_t>(offset + ((uint64_t{1} << j) - 1));
      delta = (bits >> j) & 1 ? -magnitude : magnitude;
    }
    if (r.overflow()) return i;
    out[i] = delta;
  }
  return n;
}

[[maybe_unused]] double WordPddpDecode(common::BitReader& r, int length_bits, int max_bits) {
  if (length_bits > 0 && r.remaining() >= 64) {
    const uint64_t w = r.PeekBits64();
    const int length = static_cast<int>(w >> (64 - length_bits));
    if (length > max_bits) {
      // Reject after consuming only the length field, as the codec does.
      r.Advance(static_cast<size_t>(length_bits));
      r.MarkOverflow();
      return 0.0;
    }
    if (length_bits + length <= 64) {
      if (length == 0) {
        r.Advance(static_cast<size_t>(length_bits));
        return 0.0;
      }
      const uint64_t code = (w >> (64 - length_bits - length)) &
                            ((uint64_t{1} << length) - 1);
      r.Advance(static_cast<size_t>(length_bits + length));
      return static_cast<double>(code) / std::ldexp(1.0, length);
    }
    r.Advance(static_cast<size_t>(length_bits));
    const uint64_t code = r.GetBits(length);
    return static_cast<double>(code) / std::ldexp(1.0, length);
  }
  // Stream tail (or degenerate zero-width length field): the plain reads
  // already carry the phantom-zero / overflow-latch semantics.
  const int length = static_cast<int>(r.GetBits(length_bits));
  if (length > max_bits) {
    r.MarkOverflow();
    return 0.0;
  }
  const uint64_t code = r.GetBits(length);
  if (length == 0) return 0.0;
  return static_cast<double>(code) / std::ldexp(1.0, length);
}

[[maybe_unused]] void WordPddpRun(common::BitReader& r, int length_bits,
                                  int max_bits, double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = WordPddpDecode(r, length_bits, max_bits);
  }
}

}  // namespace
}  // namespace utcq::strategies

#endif  // UTCQ_STRATEGIES_WORD_KERNELS_H_
