#include "strategies/strategies.h"

#include <atomic>
#include <cstdlib>

#include "strategies/tier_tables.h"

namespace utcq::strategies {
namespace {

// Runtime CPUID checks, gated so non-x86 builds fall through to scalar.
// The compiled-in check (table != nullptr) is separate: a build whose
// toolchain lacked the ISA flags reports the tier unsupported even on
// capable hardware.

bool CpuHasSse42() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("sse4.2") && __builtin_cpu_supports("popcnt");
#else
  return false;
#endif
}

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  // LZCNT (ABM) has shipped on every AVX2+BMI part ever made, and the
  // kernels guard the clz-of-zero case anyway, so it isn't probed.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("bmi") &&
         __builtin_cpu_supports("bmi2") && __builtin_cpu_supports("popcnt");
#else
  return false;
#endif
}

std::atomic<const Kernels*> g_active{nullptr};

const Kernels* ResolveStartupTier() {
  Tier tier = BestSupportedTier();
  // getenv is only mt-unsafe against a concurrent setenv; nothing in this
  // process mutates the environment, and this runs once at first decode.
  if (const char* env = std::getenv("UTCQ_STRATEGY")) {  // NOLINT(concurrency-mt-unsafe)
    Tier forced;
    if (ParseTier(env, &forced) && TierSupported(forced)) tier = forced;
  }
  return KernelsFor(tier);
}

}  // namespace

bool TierSupported(Tier tier) {
  switch (tier) {
    case Tier::kBitloop:
    case Tier::kScalar:
      return true;
    case Tier::kSse42:
      return detail::Sse42Kernels() != nullptr && CpuHasSse42();
    case Tier::kAvx2:
      return detail::Avx2Kernels() != nullptr && CpuHasAvx2();
  }
  return false;
}

Tier BestSupportedTier() {
  if (TierSupported(Tier::kAvx2)) return Tier::kAvx2;
  if (TierSupported(Tier::kSse42)) return Tier::kSse42;
  return Tier::kScalar;
}

const Kernels* KernelsFor(Tier tier) {
  if (!TierSupported(tier)) return nullptr;
  switch (tier) {
    case Tier::kBitloop:
      return detail::BitloopKernels();
    case Tier::kScalar:
      return detail::ScalarKernels();
    case Tier::kSse42:
      return detail::Sse42Kernels();
    case Tier::kAvx2:
      return detail::Avx2Kernels();
  }
  return nullptr;
}

const Kernels& Active() {
  const Kernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    // Install-if-still-null: racing first callers may each resolve the
    // startup tier (idempotent — CPUID + env are stable), and a CAS loser
    // adopts whatever won, including a concurrent SetActive. Never
    // overwriting a non-null value is what makes SetActive safe to call
    // without forcing resolution first, and it keeps this TU free of
    // locks (no std::mutex outside common/ — scripts/repo_lint.py).
    const Kernels* resolved = ResolveStartupTier();
    const Kernels* expected = nullptr;
    if (g_active.compare_exchange_strong(expected, resolved,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      k = resolved;
    } else {
      k = expected;
    }
  }
  return *k;
}

bool SetActive(Tier tier) {
  const Kernels* k = KernelsFor(tier);
  if (k == nullptr) return false;
  g_active.store(k, std::memory_order_release);
  return true;
}

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kBitloop:
      return "bitloop";
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse42:
      return "sse42";
    case Tier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ParseTier(std::string_view name, Tier* out) {
  if (name == "bitloop") {
    *out = Tier::kBitloop;
  } else if (name == "scalar") {
    *out = Tier::kScalar;
  } else if (name == "sse42") {
    *out = Tier::kSse42;
  } else if (name == "avx2") {
    *out = Tier::kAvx2;
  } else {
    return false;
  }
  return true;
}

}  // namespace utcq::strategies
