#ifndef UTCQ_STRATEGIES_STRATEGIES_H_
#define UTCQ_STRATEGIES_STRATEGIES_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/bitstream.h"

namespace utcq::strategies {

/// Kernel tiers, ordered worst to best. Following kvazaar's `strategies/`
/// idiom, every tier implements the same kernel contract and one table is
/// picked at startup from CPUID; `UTCQ_STRATEGY` overrides the pick for
/// testing (the strategy-matrix ctest pass forces each tier in turn).
///
///  - kBitloop: the pre-optimization bit-at-a-time reference loops. Never
///    auto-selected; kept as the honest baseline the SIMD speedup claims
///    are measured against (bench_decode) and the oracle the other tiers
///    are differential-pinned to.
///  - kScalar: portable word-at-a-time kernels (64-bit loads + shift/mask,
///    clz-based unary scans). The floor every build has.
///  - kSse42: the same word kernels compiled for SSE4.2/POPCNT hardware.
///  - kAvx2: adds 256-bit batched kernels (multi-field extraction via
///    variable shifts, bit-unpacking, 4-wide double interpolation) and
///    LZCNT unary scans.
enum class Tier : uint8_t { kBitloop = 0, kScalar = 1, kSse42 = 2, kAvx2 = 3 };

inline constexpr int kNumTiers = 4;

/// The dispatch table. Every kernel is bit-exact against the kBitloop
/// reference: identical return values, identical cursor positions on
/// success paths, and identical overflow()-latch behaviour on truncated or
/// structurally invalid input (DESIGN.md §12 states the full contract).
/// Floating-point kernels perform the same elementwise operation sequence
/// as the scalar code and are built without FMA contraction, so doubles
/// are identical across tiers too.
struct Kernels {
  /// Fixed-width MSB-first field read; contract of BitReader::GetBits.
  uint64_t (*get_bits)(common::BitReader& r, int width);

  /// Unary-run scans: count 0s (1s) up to the terminating 1 (0), consuming
  /// run + terminator. Returns the run length, or -1 with overflow()
  /// latched when the run is truncated by the end of the stream or exceeds
  /// `max_run` (no valid encoder output does).
  int (*scan_zero_run)(common::BitReader& r, int max_run);
  int (*scan_one_run)(common::BitReader& r, int max_run);

  /// `n` fixed-width fields into out[0..n): the entry-stream walk of
  /// reference-instance decode. Semantics of n successive get_bits calls.
  void (*read_fields)(common::BitReader& r, int width, uint32_t* out,
                      size_t n);

  /// `n` single bits into 0/1 bytes: the time-flag literal walk. Semantics
  /// of n successive GetBit calls.
  void (*unpack_bits)(common::BitReader& r, uint8_t* out, size_t n);

  /// One PDDP code: a `length_bits`-wide length field followed by that many
  /// code bits. Length fields beyond `max_bits` latch overflow() and
  /// decode to 0.0 (mirrors PddpCodec::Decode).
  double (*pddp_decode)(common::BitReader& r, int length_bits, int max_bits);

  /// Up to `n` improved Exp-Golomb deltas (the shared-times stream) into
  /// out: exactly the per-symbol composition scan_one_run(62) + sign +
  /// offset, batched so the calls stay inside one tier's TU. Returns how
  /// many symbols decoded cleanly; a short count means overflow() latched
  /// on the next symbol (whose bits are consumed but not stored).
  size_t (*decode_ieg)(common::BitReader& r, int64_t* out, size_t n);

  /// `n` PDDP codes into out[0..n): composition of n pddp_decode calls
  /// (the per-point rd stream of reference-instance decode).
  void (*pddp_run)(common::BitReader& r, int length_bits, int max_bits,
                   double* out, size_t n);

  /// out[i] = d0[i] + (d1[i] - d0[i]) * f — the constant-speed offset
  /// interpolation of Where/Range, batched over instances sharing one
  /// time bracket.
  void (*lerp)(const double* d0, const double* d1, double f, double* out,
               size_t n);

  /// out[i] = base[i] + x[i] * scale[i] — the mapped-location path-offset
  /// expansion of When's TimesAtPosition.
  void (*mul_add)(const double* base, const double* x, const double* scale,
                  double* out, size_t n);

  Tier tier;
  const char* name;
};

/// The active table. Resolved exactly once, on first call: the best
/// CPUID-supported tier, unless the UTCQ_STRATEGY environment variable
/// names a supported tier ("scalar", "sse42", "avx2", "bitloop"). An env
/// value naming an unsupported or unknown tier falls back to the best
/// supported one (the strategy-matrix runner refuses to launch tests on
/// hosts lacking the forced tier instead — SKIP, never a silent PASS).
const Kernels& Active();

/// True when `tier`'s kernels are compiled in and the CPU can run them.
bool TierSupported(Tier tier);

/// Best tier this build + CPU supports (never kBitloop).
Tier BestSupportedTier();

/// `tier`'s table, or nullptr when unsupported.
const Kernels* KernelsFor(Tier tier);

/// Swaps the active table (benchmarks and the per-tier differential
/// tests). Returns false — leaving the active table unchanged — when the
/// tier is unsupported. Not safe to call concurrently with decoding.
bool SetActive(Tier tier);

const char* TierName(Tier tier);
bool ParseTier(std::string_view name, Tier* out);

}  // namespace utcq::strategies

#endif  // UTCQ_STRATEGIES_STRATEGIES_H_
