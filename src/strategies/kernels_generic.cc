// The two tiers every build ships: the bit-at-a-time reference (kBitloop)
// and the portable word-at-a-time kernels (kScalar). This TU is compiled
// with the project's baseline flags only — no ISA extensions — so the
// scalar table is safe on any x86-64 (or non-x86) host.

#include "strategies/tier_tables.h"
#include "strategies/word_kernels.h"

namespace utcq::strategies::detail {

const Kernels* BitloopKernels() {
  static const Kernels k = {
      &BitloopGetBits,    &BitloopScanZeroRun, &BitloopScanOneRun,
      &BitloopReadFields, &BitloopUnpackBits,  &BitloopPddpDecode,
      &BitloopDecodeIeg,  &BitloopPddpRun,     &ScalarLerp,
      &ScalarMulAdd,      Tier::kBitloop,      "bitloop",
  };
  return &k;
}

const Kernels* ScalarKernels() {
  static const Kernels k = {
      &WordGetBits,    &WordScanZeroRun, &WordScanOneRun,
      &WordReadFields, &WordUnpackBits,  &WordPddpDecode,
      &WordDecodeIeg,  &WordPddpRun,     &ScalarLerp,
      &ScalarMulAdd,   Tier::kScalar,    "scalar",
  };
  return &k;
}

}  // namespace utcq::strategies::detail
