#ifndef UTCQ_ARCHIVE_ARCHIVE_H_
#define UTCQ_ARCHIVE_ARCHIVE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bitstream.h"
#include "core/corpus_meta.h"
#include "core/corpus_view.h"
#include "core/encoder.h"
#include "core/stiu_index.h"
#include "network/grid_index.h"
#include "traj/types.h"

namespace utcq::archive {

/// On-disk corpus container (DESIGN.md §6): a versioned binary file holding
/// everything needed to answer where/when/range queries without the original
/// uncompressed corpus — compression parameters, the four UTCQ bit streams,
/// per-trajectory metas, and (optionally) the StIU tuple lists. The road
/// network itself is *not* archived; it is shared corpus-independent state
/// the caller provides on open.
///
/// Layout (all multi-byte integers little-endian; varints are LEB128):
///
///   offset 0   : 8-byte magic "UTCQARC\0"
///              : u32 format version (kFormatVersion)
///              : varint section count
///   per section: varint tag, varint payload length, payload bytes
///   footer     : u32 CRC-32 (IEEE) of every preceding byte
///
/// Readers skip unknown section tags (forward compatibility within a major
/// version) and reject missing required sections, bad magic, newer versions,
/// truncation, and checksum mismatches.
inline constexpr char kMagic[8] = {'U', 'T', 'C', 'Q', 'A', 'R', 'C', '\0'};
/// Version 2 added the shard-manifest tag (§6 append-only rule: new tag,
/// version bump; the payload shapes of tags 1-7 are unchanged, so version-1
/// files still open). Version 3 added the T-stream sync index (tag 9,
/// DESIGN.md §16) the same way: v1/v2 files still open (their trajectories
/// simply carry no skip tables), and v3 readers skip nothing new.
inline constexpr uint32_t kFormatVersion = 3;

/// Section tags. Values are part of the on-disk format: never renumber,
/// only append.
enum class SectionTag : uint64_t {
  kParams = 1,         // UtcqParams + entry_bits + size accounting
  kTStream = 2,        // SIAR-coded shared time sequences
  kRefStream = 3,      // reference payloads
  kNrefStream = 4,     // referential non-reference payloads
  kStructure = 5,      // per-trajectory role bitmaps
  kMetas = 6,          // TrajMeta records (bit positions into the streams)
  kStiu = 7,           // serialized StIU tuple lists (optional)
  kShardManifest = 8,  // shard-set manifest (sole section of manifest files)
  kTSyncIndex = 9,     // per-trajectory T-stream sync tables (v3, optional)
};

/// The decoded contents of an archive, owning every buffer a CorpusView
/// needs. This is the neutral middle ground the writer serializes *from*
/// and the reader deserializes *into* — re-encoding a loaded payload is
/// byte-identical to the original file, which the round-trip tests pin down.
struct ArchivePayload {
  struct Stream {
    std::vector<uint8_t> bytes;
    uint64_t size_bits = 0;

    common::BitSpan span() const { return {bytes.data(), size_bits}; }
  };

  core::UtcqParams params;
  int entry_bits = 4;
  traj::ComponentSizes compressed_bits;
  Stream t, ref, nref, structure;
  std::vector<core::TrajMeta> metas;
  /// Container version this payload was decoded from, stamped back on
  /// re-encode so round-trips stay byte-identical (a v2 file must not come
  /// back labelled v3). Payloads built in memory carry the current version.
  uint32_t format_version = kFormatVersion;
  /// Serialized StIU section payload; empty when the archive carries none.
  std::vector<uint8_t> stiu;
  /// Grid resolution the StIU tuples were built over (from the StIU
  /// section); 0 when no index is archived.
  uint32_t stiu_cells_per_side = 0;
};

/// Description of a multi-shard archive set (DESIGN.md §8): N per-shard
/// corpus archives plus this manifest, itself stored in the §6 container
/// framing as a single kShardManifest section. The manifest records how the
/// global trajectory space was partitioned so readers can route point
/// queries and merge fan-out results; `policy` is the shard layer's
/// ShardPolicy value, opaque to the container format.
struct ShardManifest {
  struct Shard {
    /// Archive filename, relative to the manifest's directory. Decoding
    /// rejects absolute paths and ".." components (an untrusted manifest
    /// must not name files outside that directory).
    std::string file;
    /// Global trajectory index of each local index, strictly ascending.
    std::vector<uint32_t> members;
  };

  uint8_t policy = 0;
  /// Policy parameter (window seconds for time partitioning; 0 otherwise).
  int64_t time_partition_s = 0;
  std::vector<Shard> shards;

  /// Total trajectories across all shards.
  size_t num_trajectories() const;
};

/// Serializes a payload into the container format (header + sections +
/// checksum footer).
std::vector<uint8_t> EncodeArchive(const ArchivePayload& payload);

/// Parses and validates a container. Returns false (with a reason in
/// `*error`) on bad magic, unsupported version, truncation, checksum
/// mismatch, or a structurally invalid required section.
bool DecodeArchive(const uint8_t* data, size_t size, ArchivePayload* out,
                   std::string* error);

/// Serializes a shard manifest as a container whose only section is
/// kShardManifest.
std::vector<uint8_t> EncodeShardManifest(const ShardManifest& manifest);

/// Parses and validates a manifest container: same header/footer checks as
/// DecodeArchive, plus manifest-specific structure (safe relative filenames,
/// strictly ascending member lists, counts bounded by the payload).
bool DecodeShardManifest(const uint8_t* data, size_t size, ShardManifest* out,
                         std::string* error);

/// Writes `bytes` to `path` atomically (temp file + fsync + rename), the
/// §6 durability rule every archive-set file goes through.
bool SaveBytesAtomic(const std::vector<uint8_t>& bytes,
                     const std::string& path, std::string* error = nullptr);

/// Reads a whole file into `*out`. Returns false (with a reason) when the
/// file cannot be opened or read completely.
bool ReadFileBytes(const std::string& path, std::vector<uint8_t>* out,
                   std::string* error = nullptr);

/// Write-side entry point: captures a compressed corpus (and optionally its
/// StIU index) and saves it as one self-contained file.
class ArchiveWriter {
 public:
  explicit ArchiveWriter(const core::CompressedCorpus& corpus,
                         const core::StiuIndex* index = nullptr);

  /// Serializes to bytes without touching the filesystem (tests, custom
  /// transports).
  std::vector<uint8_t> Serialize() const;

  /// Writes the container to `path` (atomically: temp file + rename).
  bool Save(const std::string& path, std::string* error = nullptr) const;

 private:
  const core::CompressedCorpus& corpus_;
  const core::StiuIndex* index_;
};

/// Read-side entry point: opens a container, validates it, and exposes the
/// immutable CorpusView plus the reloaded StIU index. The reader owns every
/// byte the view borrows, so it must outlive all views, decoders and query
/// processors derived from it.
class ArchiveReader {
 public:
  ArchiveReader() = default;

  /// Reads and validates the file. On failure returns false, describes the
  /// problem in `*error`, and leaves the reader empty.
  bool Open(const std::string& path, std::string* error = nullptr);

  /// Same, over an in-memory image (takes ownership of the bytes).
  bool OpenBytes(std::vector<uint8_t> bytes, std::string* error = nullptr);

  bool is_open() const { return open_; }
  const core::UtcqParams& params() const { return payload_.params; }
  const ArchivePayload& payload() const { return payload_; }

  /// Immutable read-side over the loaded streams; identical in behaviour to
  /// the view of the live CompressedCorpus this archive was saved from.
  core::CorpusView view() const;

  /// True when the archive carries StIU tuples.
  bool has_index() const { return !payload_.stiu.empty(); }

  /// Grid resolution to rebuild the spatial grid with before LoadIndex.
  uint32_t index_cells_per_side() const { return payload_.stiu_cells_per_side; }

  /// Rebuilds the StIU index from the archived tuples. `grid` must have
  /// been constructed with index_cells_per_side() cells; returns nullptr
  /// (with a reason) on mismatch or when no index is archived.
  std::unique_ptr<core::StiuIndex> LoadIndex(
      const network::GridIndex& grid, std::string* error = nullptr) const;

 private:
  bool open_ = false;
  ArchivePayload payload_;
};

}  // namespace utcq::archive

#endif  // UTCQ_ARCHIVE_ARCHIVE_H_
