#include "archive/archive.h"

#include <cstdio>
#include <cstring>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/serial.h"

namespace utcq::archive {

using common::ByteReader;
using common::ByteWriter;

namespace {

bool GetStream(ByteReader& in, ArchivePayload::Stream* stream) {
  stream->size_bits = in.GetVarint();
  // Bound before computing the byte count: a size_bits near 2^64 would wrap
  // (size_bits + 7) / 8 to a tiny number and fake a consistent section.
  if (stream->size_bits > in.remaining() * 8) return false;
  const size_t bytes = (stream->size_bits + 7) / 8;
  if (bytes != in.remaining()) return false;  // length field must agree
  stream->bytes.resize(bytes);
  in.GetBytes(stream->bytes.data(), bytes);
  return in.ok();
}

void PutParams(ByteWriter& out, const core::UtcqParams& params,
               int entry_bits, const traj::ComponentSizes& bits) {
  out.PutF64(params.eta_d);
  out.PutF64(params.eta_p);
  out.PutVarint(static_cast<uint64_t>(params.num_pivots));
  out.PutSignedVarint(params.default_interval_s);
  out.PutU8(params.disable_referential ? 1 : 0);
  out.PutVarint(static_cast<uint64_t>(entry_bits));
  out.PutVarint(bits.t_bits);
  out.PutVarint(bits.sv_bits);
  out.PutVarint(bits.e_bits);
  out.PutVarint(bits.d_bits);
  out.PutVarint(bits.tflag_bits);
  out.PutVarint(bits.p_bits);
}

bool GetParams(ByteReader& in, ArchivePayload* p) {
  p->params.eta_d = in.GetF64();
  p->params.eta_p = in.GetF64();
  p->params.num_pivots = static_cast<int>(in.GetVarint());
  p->params.default_interval_s = in.GetSignedVarint();
  p->params.disable_referential = in.GetU8() != 0;
  p->entry_bits = static_cast<int>(in.GetVarint());
  p->compressed_bits.t_bits = in.GetVarint();
  p->compressed_bits.sv_bits = in.GetVarint();
  p->compressed_bits.e_bits = in.GetVarint();
  p->compressed_bits.d_bits = in.GetVarint();
  p->compressed_bits.tflag_bits = in.GetVarint();
  p->compressed_bits.p_bits = in.GetVarint();
  // PDDP codecs require an error bound in (0, 1); entry fields are bounded
  // by the 32-bit vertex ids.
  return in.ok() && p->params.eta_d > 0.0 && p->params.eta_d < 1.0 &&
         p->params.eta_p > 0.0 && p->params.eta_p < 1.0 &&
         p->entry_bits >= 0 && p->entry_bits <= 32;
}

void PutMetas(ByteWriter& out, const std::vector<core::TrajMeta>& metas) {
  out.PutVarint(metas.size());
  for (const core::TrajMeta& m : metas) {
    out.PutVarint(m.t_pos);
    out.PutVarint(m.n_points);
    out.PutSignedVarint(m.t_first);
    out.PutSignedVarint(m.t_last);
    out.PutVarint(m.refs.size());
    for (const core::RefMeta& rm : m.refs) {
      out.PutVarint(rm.orig_index);
      out.PutVarint(rm.offset);
      out.PutVarint(rm.e_len);
      out.PutVarint(rm.d_pos);
      out.PutF32(rm.p_quantized);
    }
    out.PutVarint(m.nrefs.size());
    for (const core::NrefMeta& nm : m.nrefs) {
      out.PutVarint(nm.orig_index);
      out.PutVarint(nm.ref_pos);
      out.PutVarint(nm.offset);
      out.PutVarint(nm.e_len);
      out.PutF32(nm.p_quantized);
    }
    // Roles are fully determined by the (orig_index -> ref/nref) maps above;
    // re-derived on load instead of stored.
  }
}

bool GetMetas(ByteReader& in, std::vector<core::TrajMeta>* metas) {
  const uint64_t n = in.GetVarint();
  // Each trajectory costs at least a few bytes; a count exceeding the
  // remaining payload means a corrupt length that would OOM resize().
  if (n > in.remaining()) return false;
  metas->resize(n);
  for (core::TrajMeta& m : *metas) {
    m.t_pos = in.GetVarint();
    m.n_points = static_cast<uint32_t>(in.GetVarint());
    m.t_first = in.GetSignedVarint();
    m.t_last = in.GetSignedVarint();
    const uint64_t n_refs = in.GetVarint();
    if (n_refs > in.remaining()) return false;
    m.refs.resize(n_refs);
    for (core::RefMeta& rm : m.refs) {
      rm.orig_index = static_cast<uint32_t>(in.GetVarint());
      rm.offset = in.GetVarint();
      rm.e_len = static_cast<uint32_t>(in.GetVarint());
      rm.d_pos = in.GetVarint();
      rm.p_quantized = in.GetF32();
    }
    const uint64_t n_nrefs = in.GetVarint();
    if (n_nrefs > in.remaining()) return false;
    m.nrefs.resize(n_nrefs);
    for (core::NrefMeta& nm : m.nrefs) {
      nm.orig_index = static_cast<uint32_t>(in.GetVarint());
      nm.ref_pos = static_cast<uint32_t>(in.GetVarint());
      nm.offset = in.GetVarint();
      nm.e_len = static_cast<uint32_t>(in.GetVarint());
      nm.p_quantized = in.GetF32();
    }
    // Rebuild the role table. Every instance slot must be claimed exactly
    // once: a duplicate orig_index would leave another slot at the default
    // {false, 0}, which decodes nrefs[0] out of bounds later.
    m.roles.assign(m.refs.size() + m.nrefs.size(), {false, 0});
    std::vector<uint8_t> claimed(m.roles.size(), 0);
    for (uint32_t r = 0; r < m.refs.size(); ++r) {
      if (m.refs[r].orig_index >= m.roles.size()) return false;
      if (claimed[m.refs[r].orig_index]++ != 0) return false;
      m.roles[m.refs[r].orig_index] = {true, r};
    }
    for (uint32_t k = 0; k < m.nrefs.size(); ++k) {
      if (m.nrefs[k].orig_index >= m.roles.size()) return false;
      if (m.nrefs[k].ref_pos >= m.refs.size()) return false;
      if (claimed[m.nrefs[k].orig_index]++ != 0) return false;
      m.roles[m.nrefs[k].orig_index] = {false, k};
    }
  }
  return in.ok();
}

size_t VarintLen(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Borrowed inputs of one archive image — the common ground of "save a live
/// corpus" (spans borrow the BitWriters directly; the streams are copied
/// only once, into the output buffer) and "re-encode a loaded payload".
struct ArchiveRef {
  const core::UtcqParams* params;
  int entry_bits;
  const traj::ComponentSizes* compressed_bits;
  common::BitSpan t, ref, nref, structure;
  const std::vector<core::TrajMeta>* metas;
  const uint8_t* stiu;
  size_t stiu_size;
};

std::vector<uint8_t> EncodeArchiveRef(const ArchiveRef& p) {
  ByteWriter params_body;
  PutParams(params_body, *p.params, p.entry_bits, *p.compressed_bits);
  ByteWriter metas_body;
  PutMetas(metas_body, *p.metas);

  ByteWriter out;
  out.PutBytes(kMagic, sizeof(kMagic));
  out.PutU32(kFormatVersion);
  out.PutVarint(6 + (p.stiu_size > 0 ? 1 : 0));
  out.PutVarint(static_cast<uint64_t>(SectionTag::kParams));
  out.PutBlob(params_body.bytes().data(), params_body.size());
  const std::pair<SectionTag, const common::BitSpan*> streams[] = {
      {SectionTag::kTStream, &p.t},
      {SectionTag::kRefStream, &p.ref},
      {SectionTag::kNrefStream, &p.nref},
      {SectionTag::kStructure, &p.structure},
  };
  for (const auto& [tag, span] : streams) {
    out.PutVarint(static_cast<uint64_t>(tag));
    out.PutVarint(VarintLen(span->size_bits) + span->size_bytes());
    out.PutVarint(span->size_bits);
    out.PutBytes(span->data, span->size_bytes());
  }
  out.PutVarint(static_cast<uint64_t>(SectionTag::kMetas));
  out.PutBlob(metas_body.bytes().data(), metas_body.size());
  if (p.stiu_size > 0) {
    out.PutVarint(static_cast<uint64_t>(SectionTag::kStiu));
    out.PutBlob(p.stiu, p.stiu_size);
  }
  const uint32_t crc = common::Crc32(out.bytes().data(), out.size());
  out.PutU32(crc);
  return out.Release();
}

}  // namespace

std::vector<uint8_t> EncodeArchive(const ArchivePayload& payload) {
  return EncodeArchiveRef({&payload.params, payload.entry_bits,
                           &payload.compressed_bits, payload.t.span(),
                           payload.ref.span(), payload.nref.span(),
                           payload.structure.span(), &payload.metas,
                           payload.stiu.data(), payload.stiu.size()});
}

bool DecodeArchive(const uint8_t* data, size_t size, ArchivePayload* out,
                   std::string* error) {
  const auto fail = [error](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };

  if (size < sizeof(kMagic) + sizeof(uint32_t) * 2) {
    return fail("archive truncated: shorter than header + footer");
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return fail("bad magic: not a UTCQ archive");
  }
  const uint32_t stored_crc = ByteReader(data + size - 4, 4).GetU32();
  if (common::Crc32(data, size - 4) != stored_crc) {
    return fail("checksum mismatch: archive corrupt or truncated");
  }

  ByteReader in(data, size - 4);
  in.Skip(sizeof(kMagic));
  const uint32_t version = in.GetU32();
  if (version == 0 || version > kFormatVersion) {
    return fail("unsupported archive format version");
  }

  *out = ArchivePayload{};
  bool have_params = false;
  bool have_metas = false;
  bool have_streams[4] = {false, false, false, false};
  const uint64_t section_count = in.GetVarint();
  for (uint64_t i = 0; i < section_count; ++i) {
    const uint64_t tag = in.GetVarint();
    const uint64_t length = in.GetVarint();
    const uint8_t* body = in.BorrowBytes(length);
    if (body == nullptr) return fail("section table truncated");
    ByteReader section(body, length);
    switch (static_cast<SectionTag>(tag)) {
      case SectionTag::kParams:
        if (!GetParams(section, out)) return fail("invalid params section");
        have_params = true;
        break;
      case SectionTag::kTStream:
        if (!GetStream(section, &out->t)) return fail("invalid T stream");
        have_streams[0] = true;
        break;
      case SectionTag::kRefStream:
        if (!GetStream(section, &out->ref)) return fail("invalid ref stream");
        have_streams[1] = true;
        break;
      case SectionTag::kNrefStream:
        if (!GetStream(section, &out->nref)) {
          return fail("invalid nref stream");
        }
        have_streams[2] = true;
        break;
      case SectionTag::kStructure:
        if (!GetStream(section, &out->structure)) {
          return fail("invalid structure stream");
        }
        have_streams[3] = true;
        break;
      case SectionTag::kMetas:
        if (!GetMetas(section, &out->metas)) {
          return fail("invalid metas section");
        }
        have_metas = true;
        break;
      case SectionTag::kStiu: {
        out->stiu.assign(body, body + length);
        // Peek the cells_per_side the tuples were built over (first field
        // of the StIU payload) so callers can rebuild a matching grid.
        ByteReader peek(body, length);
        out->stiu_cells_per_side = static_cast<uint32_t>(peek.GetVarint());
        if (!peek.ok()) return fail("invalid StIU section");
        break;
      }
      default:
        break;  // unknown section: skip (forward compatibility)
    }
  }
  if (!in.ok()) return fail("archive parse overran the buffer");
  if (!have_params || !have_metas || !have_streams[0] || !have_streams[1] ||
      !have_streams[2] || !have_streams[3]) {
    return fail("archive missing a required section");
  }

  // Cross-section sanity: every meta bit position must land inside its
  // stream, or later partial decodes would read out of bounds.
  for (const core::TrajMeta& m : out->metas) {
    if (m.t_pos > out->t.size_bits) return fail("meta t_pos out of range");
    // n_points drives decode-side allocations; a trajectory with n points
    // stores n-1 SIAR deltas of >= 1 bit each in the T stream.
    if (m.n_points > out->t.size_bits + 1) {
      return fail("meta n_points exceeds the T stream");
    }
    for (const core::RefMeta& rm : m.refs) {
      if (rm.offset > out->ref.size_bits || rm.d_pos > out->ref.size_bits) {
        return fail("ref meta offset out of range");
      }
    }
    for (const core::NrefMeta& nm : m.nrefs) {
      if (nm.offset > out->nref.size_bits) {
        return fail("nref meta offset out of range");
      }
    }
  }
  return true;
}

ArchiveWriter::ArchiveWriter(const core::CompressedCorpus& corpus,
                             const core::StiuIndex* index)
    : corpus_(corpus), index_(index) {}

std::vector<uint8_t> ArchiveWriter::Serialize() const {
  // Streams are borrowed straight from the corpus's BitWriters: the only
  // copy of the compressed payload is into the output image itself.
  ByteWriter stiu;
  if (index_ != nullptr) index_->Serialize(stiu);
  return EncodeArchiveRef(
      {&corpus_.params(), corpus_.entry_bits(), &corpus_.compressed_bits(),
       corpus_.t_stream().span(), corpus_.ref_stream().span(),
       corpus_.nref_stream().span(), corpus_.structure_stream().span(),
       &corpus_.metas(), stiu.bytes().data(), stiu.size()});
}

bool ArchiveWriter::Save(const std::string& path, std::string* error) const {
  const std::vector<uint8_t> bytes = Serialize();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + tmp + " for writing";
    return false;
  }
  // Atomicity needs durability: the data blocks must be on disk before the
  // rename publishes the new name, or a crash can lose both old and new
  // archive (rename is metadata-only; the page cache holds the payload).
  bool synced = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  synced = std::fflush(f) == 0 && synced;
#ifndef _WIN32
  synced = ::fsync(::fileno(f)) == 0 && synced;
#endif
  synced = std::fclose(f) == 0 && synced;
  if (!synced) {
    std::remove(tmp.c_str());
    if (error != nullptr) *error = "short write to " + tmp;
    return false;
  }
#ifdef _WIN32
  // POSIX rename replaces an existing target atomically; Windows refuses,
  // so drop the old archive first (losing atomicity, which the platform
  // cannot offer through std::rename anyway).
  std::remove(path.c_str());
#endif
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    if (error != nullptr) *error = "cannot rename " + tmp + " to " + path;
    return false;
  }
#ifndef _WIN32
  // Persist the rename itself (the directory entry).
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
#endif
  return true;
}

bool ArchiveReader::Open(const std::string& path, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::fseek(f, 0, SEEK_END);
  const long file_size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes;
  if (file_size > 0) {
    bytes.resize(static_cast<size_t>(file_size));
    if (std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
      std::fclose(f);
      if (error != nullptr) *error = "short read from " + path;
      return false;
    }
  }
  std::fclose(f);
  return OpenBytes(std::move(bytes), error);
}

bool ArchiveReader::OpenBytes(std::vector<uint8_t> bytes, std::string* error) {
  open_ = false;
  payload_ = ArchivePayload{};
  ArchivePayload parsed;
  if (!DecodeArchive(bytes.data(), bytes.size(), &parsed, error)) {
    return false;
  }
  payload_ = std::move(parsed);
  open_ = true;
  return true;
}

core::CorpusView ArchiveReader::view() const {
  return core::CorpusView(payload_.params, payload_.entry_bits,
                          payload_.t.span(), payload_.ref.span(),
                          payload_.nref.span(), payload_.structure.span(),
                          payload_.metas.data(), payload_.metas.size());
}

std::unique_ptr<core::StiuIndex> ArchiveReader::LoadIndex(
    const network::GridIndex& grid, std::string* error) const {
  if (!has_index()) {
    if (error != nullptr) *error = "archive carries no StIU section";
    return nullptr;
  }
  if (grid.num_regions() !=
      payload_.stiu_cells_per_side * payload_.stiu_cells_per_side) {
    if (error != nullptr) {
      *error = "grid resolution does not match the archived StIU tuples";
    }
    return nullptr;
  }
  ByteReader in(payload_.stiu);
  auto index = std::make_unique<core::StiuIndex>(grid, in);
  if (!in.ok()) {
    if (error != nullptr) *error = "StIU section failed to parse";
    return nullptr;
  }
  // The index must agree with the metas section it was archived with:
  // queries index temporal_ by trajectory id, and every trajectory has at
  // least one temporal tuple by construction (times are never empty).
  if (index->num_trajectories() != payload_.metas.size()) {
    if (error != nullptr) {
      *error = "StIU trajectory count disagrees with the metas section";
    }
    return nullptr;
  }
  for (size_t j = 0; j < index->num_trajectories(); ++j) {
    if (index->TemporalOf(j).empty()) {
      if (error != nullptr) {
        *error = "StIU section has a trajectory with no temporal tuples";
      }
      return nullptr;
    }
  }
  // Spatial tuples feed straight into meta(traj).refs[ref_idx] /
  // .nrefs[nref_idx] on the query path; reject any that point outside the
  // metas section rather than letting queries index out of bounds.
  for (network::RegionId re = 0; re < grid.num_regions(); ++re) {
    for (const auto& rt : index->RefTuplesIn(re)) {
      if (rt.traj >= payload_.metas.size() ||
          rt.ref_idx >= payload_.metas[rt.traj].refs.size()) {
        if (error != nullptr) {
          *error = "StIU ref tuple points outside the metas section";
        }
        return nullptr;
      }
    }
    for (const auto& nt : index->NrefTuplesIn(re)) {
      if (nt.traj >= payload_.metas.size() ||
          nt.nref_idx >= payload_.metas[nt.traj].nrefs.size()) {
        if (error != nullptr) {
          *error = "StIU nref tuple points outside the metas section";
        }
        return nullptr;
      }
    }
  }
  return index;
}

}  // namespace utcq::archive
