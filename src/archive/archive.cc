#include "archive/archive.h"

#include <cstdio>
#include <cstring>
#include <functional>
#include <set>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/serial.h"

namespace utcq::archive {

using common::ByteReader;
using common::ByteWriter;

namespace {

/// Format bound on the StIU grid resolution. The paper sweeps 8..128 cells
/// per side; 4096 (16.7M regions) is far beyond any sane configuration,
/// and readers size per-region structures from this value before any
/// cross-check can run — it must not be attacker-scale.
constexpr uint32_t kMaxStiuCellsPerSide = 4096;

bool GetStream(ByteReader& in, ArchivePayload::Stream* stream) {
  stream->size_bits = in.GetVarint();
  // Bound before computing the byte count: a size_bits near 2^64 would wrap
  // (size_bits + 7) / 8 to a tiny number and fake a consistent section.
  if (stream->size_bits > in.remaining() * 8) return false;
  const size_t bytes = (stream->size_bits + 7) / 8;
  if (bytes != in.remaining()) return false;  // length field must agree
  stream->bytes.resize(bytes);
  in.GetBytes(stream->bytes.data(), bytes);
  return in.ok();
}

void PutParams(ByteWriter& out, const core::UtcqParams& params,
               int entry_bits, const traj::ComponentSizes& bits) {
  out.PutF64(params.eta_d);
  out.PutF64(params.eta_p);
  out.PutVarint(static_cast<uint64_t>(params.num_pivots));
  out.PutSignedVarint(params.default_interval_s);
  out.PutU8(params.disable_referential ? 1 : 0);
  out.PutVarint(static_cast<uint64_t>(entry_bits));
  out.PutVarint(bits.t_bits);
  out.PutVarint(bits.sv_bits);
  out.PutVarint(bits.e_bits);
  out.PutVarint(bits.d_bits);
  out.PutVarint(bits.tflag_bits);
  out.PutVarint(bits.p_bits);
}

bool GetParams(ByteReader& in, ArchivePayload* p) {
  p->params.eta_d = in.GetF64();
  p->params.eta_p = in.GetF64();
  p->params.num_pivots = static_cast<int>(in.GetVarint());
  p->params.default_interval_s = in.GetSignedVarint();
  p->params.disable_referential = in.GetU8() != 0;
  p->entry_bits = static_cast<int>(in.GetVarint());
  p->compressed_bits.t_bits = in.GetVarint();
  p->compressed_bits.sv_bits = in.GetVarint();
  p->compressed_bits.e_bits = in.GetVarint();
  p->compressed_bits.d_bits = in.GetVarint();
  p->compressed_bits.tflag_bits = in.GetVarint();
  p->compressed_bits.p_bits = in.GetVarint();
  // PDDP codecs require an error bound in (0, 1); entry fields are bounded
  // by the 32-bit vertex ids.
  return in.ok() && p->params.eta_d > 0.0 && p->params.eta_d < 1.0 &&
         p->params.eta_p > 0.0 && p->params.eta_p < 1.0 &&
         p->entry_bits >= 0 && p->entry_bits <= 32;
}

void PutMetas(ByteWriter& out, const std::vector<core::TrajMeta>& metas) {
  out.PutVarint(metas.size());
  for (const core::TrajMeta& m : metas) {
    out.PutVarint(m.t_pos);
    out.PutVarint(m.n_points);
    out.PutSignedVarint(m.t_first);
    out.PutSignedVarint(m.t_last);
    out.PutVarint(m.refs.size());
    for (const core::RefMeta& rm : m.refs) {
      out.PutVarint(rm.orig_index);
      out.PutVarint(rm.offset);
      out.PutVarint(rm.e_len);
      out.PutVarint(rm.d_pos);
      out.PutF32(rm.p_quantized);
    }
    out.PutVarint(m.nrefs.size());
    for (const core::NrefMeta& nm : m.nrefs) {
      out.PutVarint(nm.orig_index);
      out.PutVarint(nm.ref_pos);
      out.PutVarint(nm.offset);
      out.PutVarint(nm.e_len);
      out.PutF32(nm.p_quantized);
    }
    // Roles are fully determined by the (orig_index -> ref/nref) maps above;
    // re-derived on load instead of stored.
  }
}

bool GetMetas(ByteReader& in, std::vector<core::TrajMeta>* metas) {
  const uint64_t n = in.GetVarint();
  // Each trajectory costs at least a few bytes; a count exceeding the
  // remaining payload means a corrupt length that would OOM resize().
  if (n > in.remaining()) return false;
  metas->resize(n);
  for (core::TrajMeta& m : *metas) {
    m.t_pos = in.GetVarint();
    m.n_points = static_cast<uint32_t>(in.GetVarint());
    m.t_first = in.GetSignedVarint();
    m.t_last = in.GetSignedVarint();
    const uint64_t n_refs = in.GetVarint();
    if (n_refs > in.remaining()) return false;
    m.refs.resize(n_refs);
    for (core::RefMeta& rm : m.refs) {
      rm.orig_index = static_cast<uint32_t>(in.GetVarint());
      rm.offset = in.GetVarint();
      rm.e_len = static_cast<uint32_t>(in.GetVarint());
      rm.d_pos = in.GetVarint();
      rm.p_quantized = in.GetF32();
    }
    const uint64_t n_nrefs = in.GetVarint();
    if (n_nrefs > in.remaining()) return false;
    m.nrefs.resize(n_nrefs);
    for (core::NrefMeta& nm : m.nrefs) {
      nm.orig_index = static_cast<uint32_t>(in.GetVarint());
      nm.ref_pos = static_cast<uint32_t>(in.GetVarint());
      nm.offset = in.GetVarint();
      nm.e_len = static_cast<uint32_t>(in.GetVarint());
      nm.p_quantized = in.GetF32();
    }
    // Rebuild the role table. Every instance slot must be claimed exactly
    // once: a duplicate orig_index would leave another slot at the default
    // {false, 0}, which decodes nrefs[0] out of bounds later.
    m.roles.assign(m.refs.size() + m.nrefs.size(), {false, 0});
    std::vector<uint8_t> claimed(m.roles.size(), 0);
    for (uint32_t r = 0; r < m.refs.size(); ++r) {
      if (m.refs[r].orig_index >= m.roles.size()) return false;
      if (claimed[m.refs[r].orig_index]++ != 0) return false;
      m.roles[m.refs[r].orig_index] = {true, r};
    }
    for (uint32_t k = 0; k < m.nrefs.size(); ++k) {
      if (m.nrefs[k].orig_index >= m.roles.size()) return false;
      if (m.nrefs[k].ref_pos >= m.refs.size()) return false;
      if (claimed[m.nrefs[k].orig_index]++ != 0) return false;
      m.roles[m.nrefs[k].orig_index] = {false, k};
    }
  }
  return in.ok();
}

void PutTSyncIndex(ByteWriter& out, uint32_t interval,
                   const std::vector<core::TrajMeta>& metas) {
  out.PutVarint(interval);
  out.PutVarint(metas.size());
  for (const core::TrajMeta& m : metas) {
    out.PutVarint(m.t_syncs.size());
    // Entries and bit offsets are strictly ascending within a table (each
    // sync sits >= K entries and >= K delta codes past the previous one),
    // so delta coding keeps a sync at ~3 bytes.
    uint32_t prev_entry = 0;
    traj::Timestamp prev_t = 0;
    uint64_t prev_bit = 0;
    for (const core::TSync& s : m.t_syncs) {
      out.PutVarint(s.entry - prev_entry);
      out.PutSignedVarint(s.t - prev_t);
      out.PutVarint(s.bit - prev_bit);
      prev_entry = s.entry;
      prev_t = s.t;
      prev_bit = s.bit;
    }
  }
}

/// Parses the tag-9 payload into per-trajectory tables. Structural checks
/// only (counts bounded by the payload, interval >= 1, strictly ascending
/// entries and bit offsets, no wraparound); the cross-section checks
/// against metas and the T stream run after the walk, since tag 9 may
/// precede both in a crafted file.
bool GetTSyncIndex(ByteReader& in, uint32_t* interval,
                   std::vector<std::vector<core::TSync>>* tables) {
  const uint64_t k = in.GetVarint();
  // Interval 0 means "no sync points", which is expressed by omitting the
  // section entirely; a present table claiming 0 is crafted.
  if (k == 0 || k > UINT32_MAX) return false;
  *interval = static_cast<uint32_t>(k);
  const uint64_t n = in.GetVarint();
  if (n > in.remaining()) return false;  // >= 1 byte (count) per trajectory
  tables->resize(n);
  for (std::vector<core::TSync>& table : *tables) {
    const uint64_t count = in.GetVarint();
    if (count > in.remaining()) return false;  // >= 3 bytes per sync
    table.resize(count);
    uint32_t prev_entry = 0;
    traj::Timestamp prev_t = 0;
    uint64_t prev_bit = 0;
    for (size_t i = 0; i < table.size(); ++i) {
      const uint64_t de = in.GetVarint();
      // A zero delta is a duplicate (or, for the first sync, entry 0 —
      // the block start needs no sync); a huge one wraps prev + de back
      // below prev and smuggles a non-monotone table past the check.
      if (de == 0 || de > UINT32_MAX - prev_entry) return false;
      const int64_t dt = in.GetSignedVarint();
      const uint64_t db = in.GetVarint();
      if (i != 0 && db == 0) return false;  // each sync is >= 1 code later
      if (db > UINT64_MAX - prev_bit) return false;
      table[i].entry = prev_entry + static_cast<uint32_t>(de);
      table[i].t = static_cast<traj::Timestamp>(
          static_cast<uint64_t>(prev_t) + static_cast<uint64_t>(dt));
      table[i].bit = prev_bit + db;
      prev_entry = table[i].entry;
      prev_t = table[i].t;
      prev_bit = table[i].bit;
    }
  }
  return in.ok();
}

size_t VarintLen(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Borrowed inputs of one archive image — the common ground of "save a live
/// corpus" (spans borrow the BitWriters directly; the streams are copied
/// only once, into the output buffer) and "re-encode a loaded payload".
struct ArchiveRef {
  const core::UtcqParams* params;
  int entry_bits;
  const traj::ComponentSizes* compressed_bits;
  common::BitSpan t, ref, nref, structure;
  const std::vector<core::TrajMeta>* metas;
  const uint8_t* stiu;
  size_t stiu_size;
  /// Version stamped into the header; the sync index (tag 9) is written
  /// iff t_sync_interval > 0, regardless of version, so re-encoding a
  /// loaded payload reproduces the original byte-for-byte.
  uint32_t format_version;
  uint32_t t_sync_interval;
};

std::vector<uint8_t> EncodeArchiveRef(const ArchiveRef& p) {
  ByteWriter params_body;
  PutParams(params_body, *p.params, p.entry_bits, *p.compressed_bits);
  ByteWriter metas_body;
  PutMetas(metas_body, *p.metas);

  ByteWriter out;
  out.PutBytes(kMagic, sizeof(kMagic));
  out.PutU32(p.format_version);
  out.PutVarint(6 + (p.stiu_size > 0 ? 1 : 0) +
                (p.t_sync_interval > 0 ? 1 : 0));
  out.PutVarint(static_cast<uint64_t>(SectionTag::kParams));
  out.PutBlob(params_body.bytes().data(), params_body.size());
  const std::pair<SectionTag, const common::BitSpan*> streams[] = {
      {SectionTag::kTStream, &p.t},
      {SectionTag::kRefStream, &p.ref},
      {SectionTag::kNrefStream, &p.nref},
      {SectionTag::kStructure, &p.structure},
  };
  for (const auto& [tag, span] : streams) {
    out.PutVarint(static_cast<uint64_t>(tag));
    out.PutVarint(VarintLen(span->size_bits) + span->size_bytes());
    out.PutVarint(span->size_bits);
    out.PutBytes(span->data, span->size_bytes());
  }
  out.PutVarint(static_cast<uint64_t>(SectionTag::kMetas));
  out.PutBlob(metas_body.bytes().data(), metas_body.size());
  if (p.stiu_size > 0) {
    out.PutVarint(static_cast<uint64_t>(SectionTag::kStiu));
    out.PutBlob(p.stiu, p.stiu_size);
  }
  if (p.t_sync_interval > 0) {
    ByteWriter sync_body;
    PutTSyncIndex(sync_body, p.t_sync_interval, *p.metas);
    out.PutVarint(static_cast<uint64_t>(SectionTag::kTSyncIndex));
    out.PutBlob(sync_body.bytes().data(), sync_body.size());
  }
  const uint32_t crc = common::Crc32(out.bytes().data(), out.size());
  out.PutU32(crc);
  return out.Release();
}

/// Shared container-envelope walk: validates magic, the CRC footer, and a
/// version within [min_version, kFormatVersion], then iterates the section
/// table invoking on_section(tag, body, length) — with the spin guard, so a
/// crafted section count (up to 2^64-1) fails on the first exhausted read
/// instead of iterating 2^64 times. Both decoders parse through this one
/// function; envelope fixes land exactly once. `kind` names the container
/// in error strings. on_section aborts the walk by returning false (having
/// set *error itself).
bool ForEachSection(
    const uint8_t* data, size_t size, uint32_t min_version,
    const std::string& kind, std::string* error,
    const std::function<bool(uint64_t, const uint8_t*, uint64_t)>&
        on_section) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (size < sizeof(kMagic) + sizeof(uint32_t) * 2) {
    return fail(kind + " truncated: shorter than header + footer");
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return fail("bad magic: not a UTCQ " + kind);
  }
  const uint32_t stored_crc = ByteReader(data + size - 4, 4).GetU32();
  if (common::Crc32(data, size - 4) != stored_crc) {
    return fail("checksum mismatch: " + kind + " corrupt or truncated");
  }
  ByteReader in(data, size - 4);
  in.Skip(sizeof(kMagic));
  const uint32_t version = in.GetU32();
  if (version < min_version || version > kFormatVersion) {
    return fail("unsupported " + kind + " format version");
  }
  const uint64_t section_count = in.GetVarint();
  for (uint64_t i = 0; i < section_count; ++i) {
    if (!in.ok()) return fail(kind + " section table truncated");
    const uint64_t tag = in.GetVarint();
    const uint64_t length = in.GetVarint();
    const uint8_t* body = in.BorrowBytes(length);
    if (body == nullptr) return fail(kind + " section table truncated");
    if (!on_section(tag, body, length)) return false;
  }
  if (!in.ok()) return fail(kind + " parse overran the buffer");
  return true;
}

/// A manifest filename must stay inside the manifest's own directory: plain
/// relative paths only, no absolute paths, no ".." components, no NULs.
bool SafeRelativeFilename(const std::string& name) {
  if (name.empty() || name.front() == '/' || name.front() == '\\') {
    return false;
  }
  if (name.find('\0') != std::string::npos) return false;
  size_t start = 0;
  while (start <= name.size()) {
    const size_t end = name.find_first_of("/\\", start);
    const std::string part =
        name.substr(start, end == std::string::npos ? end : end - start);
    if (part == "..") return false;
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return true;
}

}  // namespace

size_t ShardManifest::num_trajectories() const {
  size_t total = 0;
  for (const Shard& s : shards) total += s.members.size();
  return total;
}

std::vector<uint8_t> EncodeShardManifest(const ShardManifest& manifest) {
  ByteWriter body;
  body.PutU8(manifest.policy);
  body.PutSignedVarint(manifest.time_partition_s);
  body.PutVarint(manifest.shards.size());
  for (const ShardManifest::Shard& s : manifest.shards) {
    body.PutBlob(s.file.data(), s.file.size());
    body.PutVarint(s.members.size());
    // Members are strictly ascending; delta coding keeps dense assignments
    // (round-robin, contiguous ranges) at a byte or two per trajectory.
    uint32_t prev = 0;
    for (size_t i = 0; i < s.members.size(); ++i) {
      body.PutVarint(i == 0 ? s.members[0] : s.members[i] - prev);
      prev = s.members[i];
    }
  }

  ByteWriter out;
  out.PutBytes(kMagic, sizeof(kMagic));
  out.PutU32(kFormatVersion);
  out.PutVarint(1);  // section count
  out.PutVarint(static_cast<uint64_t>(SectionTag::kShardManifest));
  out.PutBlob(body.bytes().data(), body.size());
  out.PutU32(common::Crc32(out.bytes().data(), out.size()));
  return out.Release();
}

bool DecodeShardManifest(const uint8_t* data, size_t size, ShardManifest* out,
                         std::string* error) {
  const auto fail = [error](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };

  *out = ShardManifest{};
  bool have_manifest = false;
  const bool walked = ForEachSection(
      data, size, /*min_version=*/2, "manifest", error,
      [&](uint64_t tag, const uint8_t* body, uint64_t length) {
        if (static_cast<SectionTag>(tag) != SectionTag::kShardManifest) {
          return true;  // unknown section: skip (forward compatibility)
        }
        ByteReader section(body, length);
        out->policy = section.GetU8();
        out->time_partition_s = section.GetSignedVarint();
        const uint64_t num_shards = section.GetVarint();
        // Every shard costs at least a filename blob and a member count.
        if (num_shards > section.remaining()) {
          return fail("manifest shard count exceeds the payload");
        }
        out->shards.resize(num_shards);
        for (ShardManifest::Shard& s : out->shards) {
          const uint64_t name_len = section.GetVarint();
          const uint8_t* name = section.BorrowBytes(name_len);
          if (name == nullptr) return fail("manifest filename truncated");
          s.file.assign(reinterpret_cast<const char*>(name), name_len);
          if (!SafeRelativeFilename(s.file)) {
            return fail("manifest filename escapes the manifest directory");
          }
          const uint64_t num_members = section.GetVarint();
          if (num_members > section.remaining()) {
            return fail("manifest member count exceeds the payload");
          }
          s.members.resize(num_members);
          uint64_t prev = 0;
          for (size_t m = 0; m < s.members.size(); ++m) {
            const uint64_t delta = section.GetVarint();
            // Deltas must advance and must not wrap prev + delta back
            // below prev (a crafted delta near 2^64 would otherwise
            // smuggle a non-ascending list past this check).
            if (m != 0 && (delta == 0 || delta > UINT32_MAX - prev)) {
              return fail("manifest member list is not strictly ascending");
            }
            const uint64_t value = m == 0 ? delta : prev + delta;
            if (value > UINT32_MAX) {
              return fail("manifest member list is not strictly ascending");
            }
            s.members[m] = static_cast<uint32_t>(value);
            prev = value;
          }
        }
        if (!section.ok()) return fail("manifest section failed to parse");
        have_manifest = true;
        return true;
      });
  if (!walked) return false;
  if (!have_manifest) return fail("container has no shard-manifest section");
  // Two entries naming one file would pass the per-shard count checks and
  // the member-partition check while routing half the global space to the
  // wrong trajectories; a shard file belongs to exactly one shard.
  std::set<std::string> names;
  for (const ShardManifest::Shard& s : out->shards) {
    if (!names.insert(s.file).second) {
      return fail("manifest names a shard file twice");
    }
  }
  return true;
}

std::vector<uint8_t> EncodeArchive(const ArchivePayload& payload) {
  return EncodeArchiveRef({&payload.params, payload.entry_bits,
                           &payload.compressed_bits, payload.t.span(),
                           payload.ref.span(), payload.nref.span(),
                           payload.structure.span(), &payload.metas,
                           payload.stiu.data(), payload.stiu.size(),
                           payload.format_version,
                           payload.params.t_sync_interval});
}

bool DecodeArchive(const uint8_t* data, size_t size, ArchivePayload* out,
                   std::string* error) {
  const auto fail = [error](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };

  *out = ArchivePayload{};
  // Pre-v3 semantics until a sync index proves otherwise: the in-memory
  // default K would otherwise leak into payloads loaded from v1/v2 files
  // (and re-encode them with a sync section the original never had).
  out->params.t_sync_interval = 0;
  bool have_params = false;
  bool have_metas = false;
  bool have_streams[4] = {false, false, false, false};
  bool have_syncs = false;
  uint32_t sync_interval = 0;
  std::vector<std::vector<core::TSync>> sync_tables;
  const bool walked = ForEachSection(
      data, size, /*min_version=*/1, "archive", error,
      [&](uint64_t tag, const uint8_t* body, uint64_t length) {
        ByteReader section(body, length);
        switch (static_cast<SectionTag>(tag)) {
          case SectionTag::kParams:
            if (!GetParams(section, out)) {
              return fail("invalid params section");
            }
            have_params = true;
            break;
          case SectionTag::kTStream:
            if (!GetStream(section, &out->t)) return fail("invalid T stream");
            have_streams[0] = true;
            break;
          case SectionTag::kRefStream:
            if (!GetStream(section, &out->ref)) {
              return fail("invalid ref stream");
            }
            have_streams[1] = true;
            break;
          case SectionTag::kNrefStream:
            if (!GetStream(section, &out->nref)) {
              return fail("invalid nref stream");
            }
            have_streams[2] = true;
            break;
          case SectionTag::kStructure:
            if (!GetStream(section, &out->structure)) {
              return fail("invalid structure stream");
            }
            have_streams[3] = true;
            break;
          case SectionTag::kMetas:
            if (!GetMetas(section, &out->metas)) {
              return fail("invalid metas section");
            }
            have_metas = true;
            break;
          case SectionTag::kStiu: {
            out->stiu.assign(body, body + length);
            // Peek the cells_per_side the tuples were built over (first
            // field of the StIU payload) so callers can rebuild a matching
            // grid.
            ByteReader peek(body, length);
            const uint64_t cells = peek.GetVarint();
            if (!peek.ok() || cells == 0 || cells > kMaxStiuCellsPerSide) {
              return fail("invalid StIU section");
            }
            out->stiu_cells_per_side = static_cast<uint32_t>(cells);
            break;
          }
          case SectionTag::kTSyncIndex:
            if (!GetTSyncIndex(section, &sync_interval, &sync_tables)) {
              return fail("invalid sync-index section");
            }
            have_syncs = true;
            break;
          default:
            break;  // unknown section: skip (forward compatibility)
        }
        return true;
      });
  if (!walked) return false;
  if (!have_params || !have_metas || !have_streams[0] || !have_streams[1] ||
      !have_streams[2] || !have_streams[3]) {
    return fail("archive missing a required section");
  }
  // The envelope was validated by the walk; keep the stored version so a
  // re-encode stamps the same header the file arrived with.
  out->format_version = ByteReader(data + sizeof(kMagic), 4).GetU32();

  // Cross-section sanity: every meta bit position must land inside its
  // stream, or later partial decodes would read out of bounds.
  for (const core::TrajMeta& m : out->metas) {
    if (m.t_pos > out->t.size_bits) return fail("meta t_pos out of range");
    // n_points drives decode-side allocations; a trajectory with n points
    // stores n-1 SIAR deltas of >= 1 bit each in the T stream.
    if (m.n_points > out->t.size_bits + 1) {
      return fail("meta n_points exceeds the T stream");
    }
    for (const core::RefMeta& rm : m.refs) {
      if (rm.offset > out->ref.size_bits || rm.d_pos > out->ref.size_bits) {
        return fail("ref meta offset out of range");
      }
    }
    for (const core::NrefMeta& nm : m.nrefs) {
      if (nm.offset > out->nref.size_bits) {
        return fail("nref meta offset out of range");
      }
    }
  }

  // Merge the sync index into the metas (tag 9 may have preceded tag 6 in
  // a crafted file, so the cross-section checks run only now): each table
  // belongs to the same-position trajectory, every entry must leave at
  // least one more entry to scan toward, and every bit offset must leave
  // at least one delta code in the T stream.
  if (have_syncs) {
    if (sync_tables.size() != out->metas.size()) {
      return fail("sync-index trajectory count disagrees with the metas");
    }
    for (size_t j = 0; j < sync_tables.size(); ++j) {
      for (const core::TSync& s : sync_tables[j]) {
        if (s.entry + 1 >= out->metas[j].n_points) {
          return fail("sync-index entry out of range");
        }
        if (s.bit >= out->t.size_bits) {
          return fail("sync-index bit offset past the T stream");
        }
      }
      out->metas[j].t_syncs = std::move(sync_tables[j]);
    }
    out->params.t_sync_interval = sync_interval;
  }
  return true;
}

ArchiveWriter::ArchiveWriter(const core::CompressedCorpus& corpus,
                             const core::StiuIndex* index)
    : corpus_(corpus), index_(index) {}

std::vector<uint8_t> ArchiveWriter::Serialize() const {
  // Streams are borrowed straight from the corpus's BitWriters: the only
  // copy of the compressed payload is into the output image itself.
  ByteWriter stiu;
  if (index_ != nullptr) index_->Serialize(stiu);
  // A corpus built without sync points (K == 0) serializes as v2: the
  // image carries nothing a v2 reader cannot parse, so it should not
  // claim a version that locks v2 readers out.
  const uint32_t interval = corpus_.params().t_sync_interval;
  return EncodeArchiveRef(
      {&corpus_.params(), corpus_.entry_bits(), &corpus_.compressed_bits(),
       corpus_.t_stream().span(), corpus_.ref_stream().span(),
       corpus_.nref_stream().span(), corpus_.structure_stream().span(),
       &corpus_.metas(), stiu.bytes().data(), stiu.size(),
       interval > 0 ? kFormatVersion : 2, interval});
}

bool ArchiveWriter::Save(const std::string& path, std::string* error) const {
  return SaveBytesAtomic(Serialize(), path, error);
}

bool SaveBytesAtomic(const std::vector<uint8_t>& bytes,
                     const std::string& path, std::string* error) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + tmp + " for writing";
    return false;
  }
  // Atomicity needs durability: the data blocks must be on disk before the
  // rename publishes the new name, or a crash can lose both old and new
  // archive (rename is metadata-only; the page cache holds the payload).
  bool synced = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  synced = std::fflush(f) == 0 && synced;
#ifndef _WIN32
  synced = ::fsync(::fileno(f)) == 0 && synced;
#endif
  synced = std::fclose(f) == 0 && synced;
  if (!synced) {
    std::remove(tmp.c_str());
    if (error != nullptr) *error = "short write to " + tmp;
    return false;
  }
#ifdef _WIN32
  // POSIX rename replaces an existing target atomically; Windows refuses,
  // so drop the old archive first (losing atomicity, which the platform
  // cannot offer through std::rename anyway).
  std::remove(path.c_str());
#endif
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    if (error != nullptr) *error = "cannot rename " + tmp + " to " + path;
    return false;
  }
#ifndef _WIN32
  // Persist the rename itself (the directory entry).
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
#endif
  return true;
}

bool ReadFileBytes(const std::string& path, std::vector<uint8_t>* out,
                   std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::fseek(f, 0, SEEK_END);
  const long file_size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out->clear();
  if (file_size > 0) {
    out->resize(static_cast<size_t>(file_size));
    if (std::fread(out->data(), 1, out->size(), f) != out->size()) {
      std::fclose(f);
      if (error != nullptr) *error = "short read from " + path;
      return false;
    }
  }
  std::fclose(f);
  return true;
}

bool ArchiveReader::Open(const std::string& path, std::string* error) {
  std::vector<uint8_t> bytes;
  if (!ReadFileBytes(path, &bytes, error)) return false;
  return OpenBytes(std::move(bytes), error);
}

bool ArchiveReader::OpenBytes(std::vector<uint8_t> bytes, std::string* error) {
  open_ = false;
  payload_ = ArchivePayload{};
  ArchivePayload parsed;
  if (!DecodeArchive(bytes.data(), bytes.size(), &parsed, error)) {
    return false;
  }
  payload_ = std::move(parsed);
  open_ = true;
  return true;
}

core::CorpusView ArchiveReader::view() const {
  return core::CorpusView(payload_.params, payload_.entry_bits,
                          payload_.t.span(), payload_.ref.span(),
                          payload_.nref.span(), payload_.structure.span(),
                          payload_.metas.data(), payload_.metas.size());
}

std::unique_ptr<core::StiuIndex> ArchiveReader::LoadIndex(
    const network::GridIndex& grid, std::string* error) const {
  if (!has_index()) {
    if (error != nullptr) *error = "archive carries no StIU section";
    return nullptr;
  }
  if (grid.num_regions() != uint64_t{payload_.stiu_cells_per_side} *
                                payload_.stiu_cells_per_side) {
    if (error != nullptr) {
      *error = "grid resolution does not match the archived StIU tuples";
    }
    return nullptr;
  }
  ByteReader in(payload_.stiu);
  auto index = std::make_unique<core::StiuIndex>(grid, in);
  if (!in.ok()) {
    if (error != nullptr) *error = "StIU section failed to parse";
    return nullptr;
  }
  // The index must agree with the metas section it was archived with:
  // queries index temporal_ by trajectory id, and every trajectory has at
  // least one temporal tuple by construction (times are never empty).
  if (index->num_trajectories() != payload_.metas.size()) {
    if (error != nullptr) {
      *error = "StIU trajectory count disagrees with the metas section";
    }
    return nullptr;
  }
  for (size_t j = 0; j < index->num_trajectories(); ++j) {
    if (index->TemporalOf(j).empty()) {
      if (error != nullptr) {
        *error = "StIU section has a trajectory with no temporal tuples";
      }
      return nullptr;
    }
  }
  // Spatial tuples feed straight into meta(traj).refs[ref_idx] /
  // .nrefs[nref_idx] on the query path; reject any that point outside the
  // metas section rather than letting queries index out of bounds.
  for (network::RegionId re = 0; re < grid.num_regions(); ++re) {
    for (const auto& rt : index->RefTuplesIn(re)) {
      if (rt.traj >= payload_.metas.size() ||
          rt.ref_idx >= payload_.metas[rt.traj].refs.size()) {
        if (error != nullptr) {
          *error = "StIU ref tuple points outside the metas section";
        }
        return nullptr;
      }
    }
    for (const auto& nt : index->NrefTuplesIn(re)) {
      if (nt.traj >= payload_.metas.size() ||
          nt.nref_idx >= payload_.metas[nt.traj].nrefs.size()) {
        if (error != nullptr) {
          *error = "StIU nref tuple points outside the metas section";
        }
        return nullptr;
      }
    }
  }
  return index;
}

}  // namespace utcq::archive
