#ifndef UTCQ_NET_WIRE_H_
#define UTCQ_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/serial.h"
#include "ingest/ingestor.h"
#include "matching/online_viterbi.h"
#include "obs/metrics.h"
#include "serve/query_engine.h"
#include "traj/types.h"

/// The wire protocol of the network serving tier (DESIGN.md §14).
///
/// Naming note: `src/net/` is the *transport* layer — TCP server, client
/// library and this socket-free framing/codec module. It is distinct from
/// `src/network/`, which models the *road network* the trajectories live
/// on. Everything in this directory serializes or moves bytes; nothing in
/// it knows what an edge or a vertex is beyond the ids it copies.
///
/// This header is deliberately socket-free: every frame and message codec
/// operates on in-memory byte buffers (common::ByteWriter/ByteReader), so
/// the whole protocol is unit-testable and fuzzable without a network
/// (tests/net_test.cc, fuzz/fuzz_wire.cc). The TCP layers (tcp_server.h,
/// client.h) are thin pumps around these functions.

namespace utcq::net {

/// The only protocol version this build speaks. The frame header layout
/// (length, version, opcode, reserved, request id) is fixed for every
/// future version — see DESIGN.md §14 "Versioning".
inline constexpr uint8_t kProtocolVersion = 1;

/// Upper bound on the frame length field: a frame advertising more than
/// this is rejected before any allocation (same crafted-count discipline
/// as the archive decoder, DESIGN.md §6).
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;

/// Bytes of header covered by the length field (version + opcode +
/// reserved + request id); the payload follows.
inline constexpr uint32_t kFrameOverheadBytes = 12;

/// Opcode space: requests in [0x01, 0x7F], responses in [0x80, 0xFF].
enum class Op : uint8_t {
  // --- requests ---
  kHello = 0x01,
  kQuery = 0x02,
  kBatch = 0x03,
  kIngestPoint = 0x04,
  kIngestEnd = 0x05,
  kIngestAdvanceTime = 0x06,
  kStats = 0x07,
  kGoodbye = 0x08,
  kMetrics = 0x09,
  // --- responses ---
  kHelloOk = 0x81,
  kResult = 0x82,
  kBatchResult = 0x83,
  kIngestAck = 0x84,
  kStatsResult = 0x85,
  kGoodbyeOk = 0x86,
  kMetricsResult = 0x87,
  kError = 0xFF,
};

const char* OpName(Op op);

/// Typed error codes carried by kError frames (DESIGN.md §14 error table).
enum class ErrorCode : uint16_t {
  /// No version overlap (Hello) or a frame carried an unsupported version.
  kBadVersion = 1,
  /// Opcode unknown to this server, or a response opcode sent as a request.
  kBadOpcode = 2,
  /// Frame or payload violates the encoding rules (truncated payload,
  /// trailing bytes, non-finite double, out-of-range id, nonzero reserved).
  kMalformed = 3,
  /// The opcode is valid but this endpoint does not serve it (e.g. ingest
  /// ops on a query-only server).
  kNotSupported = 4,
  /// The length field exceeded kMaxFrameBytes.
  kFrameTooLarge = 5,
  /// The server is draining for shutdown and takes no new work.
  kShuttingDown = 6,
  /// Unexpected server-side failure.
  kInternal = 7,
  /// A non-Hello request arrived before version negotiation completed.
  kHelloRequired = 8,
  /// The server is at its connection limit.
  kOverloaded = 9,
};

const char* ErrorCodeName(ErrorCode code);

/// One decoded frame: the fixed header fields plus the opaque payload the
/// per-opcode codecs below interpret.
struct Frame {
  uint8_t version = kProtocolVersion;
  Op op = Op::kHello;
  /// Client-chosen correlation id, echoed verbatim in the response.
  /// Connection-level errors not tied to a request use id 0.
  uint64_t request_id = 0;
  std::vector<uint8_t> payload;

  bool operator==(const Frame&) const = default;
};

/// Serializes `frame` (header + payload) onto `out`.
void AppendFrame(const Frame& frame, std::vector<uint8_t>* out);
std::vector<uint8_t> EncodeFrame(const Frame& frame);

/// Incremental frame splitter: feed raw bytes in whatever chunks the
/// transport delivers (a pipelined burst, a single byte, a frame split at
/// any boundary) and pull complete frames out. Framing errors — a length
/// field out of bounds or a nonzero reserved field — latch the assembler
/// bad: the byte stream can no longer be trusted and the connection must
/// close after the error is reported. A frame with an *unsupported
/// version* is NOT a framing error: the header layout is version-fixed, so
/// the frame is yielded intact and the session layer answers kBadVersion.
class FrameAssembler {
 public:
  enum class Status : uint8_t {
    kFrame,     ///< `out` holds the next complete frame.
    kNeedMore,  ///< No complete frame buffered; feed more bytes.
    kBad,       ///< Framing violated; `err` says how. Terminal.
  };

  void Push(const uint8_t* data, size_t size);

  /// Extracts the next complete frame. After kBad, every later call
  /// returns kBad with the same code.
  Status Next(Frame* out, ErrorCode* err);

  size_t buffered_bytes() const { return buf_.size() - pos_; }
  bool bad() const { return bad_; }

 private:
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;  // consumed prefix; compacted when it grows past half
  bool bad_ = false;
  ErrorCode bad_code_ = ErrorCode::kMalformed;
};

// ---------------------------------------------------------------- payloads
//
// Every Decode* returns false on any violation of the encoding rules —
// truncation, trailing bytes, malformed varint, an id that does not fit
// its type, a non-finite double in a field that must be finite — without
// crashing or allocating unbounded memory. Every Encode* writes the
// canonical form (minimal varints), so decode-then-re-encode of a valid
// payload is byte-identical.

struct HelloRequest {
  /// Inclusive version range the client speaks.
  uint8_t min_version = kProtocolVersion;
  uint8_t max_version = kProtocolVersion;
  /// Feature bits requested; none are defined in v1 (must echo back 0).
  uint64_t features = 0;

  bool operator==(const HelloRequest&) const = default;
};

struct HelloResponse {
  /// The version every later frame on this connection must carry.
  uint8_t version = kProtocolVersion;
  uint64_t features = 0;
  /// Global trajectory count of the served engine (0 when ingest-only).
  uint64_t num_trajectories = 0;
  bool query_enabled = false;
  bool ingest_enabled = false;

  bool operator==(const HelloResponse&) const = default;
};

struct IngestPointRequest {
  uint64_t vehicle = 0;
  traj::RawPoint point;

  // Spelled out because traj::RawPoint itself has no operator==. Exact
  // double comparison is intentional: the codec is bit-exact.
  bool operator==(const IngestPointRequest& o) const {
    return vehicle == o.vehicle && point.x == o.point.x &&
           point.y == o.point.y && point.t == o.point.t;
  }
};

/// kIngestEnd carries `vehicle`; kIngestAdvanceTime carries `now`.
struct IngestEndRequest {
  uint64_t vehicle = 0;

  bool operator==(const IngestEndRequest&) const = default;
};

struct IngestAdvanceRequest {
  traj::Timestamp now = 0;

  bool operator==(const IngestAdvanceRequest&) const = default;
};

/// Response to every ingest op. For kIngestPoint, `status` is the
/// matching::AppendStatus of the pushed point and `sealed` is 0 (seals a
/// push triggers are observable via kStats). For kIngestEnd and
/// kIngestAdvanceTime, `status` is kAccepted and `sealed` counts the
/// trajectories the call sealed.
struct IngestAck {
  matching::AppendStatus status = matching::AppendStatus::kAccepted;
  uint64_t sealed = 0;

  bool operator==(const IngestAck&) const = default;
};

struct StatsResponse {
  bool has_engine = false;
  uint64_t queries = 0;
  uint64_t batches = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t bytes_decoded = 0;
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  bool has_ingest = false;
  uint64_t points = 0;
  uint64_t accepted = 0;
  uint64_t trajectories_sealed = 0;
  uint64_t open_sessions = 0;

  bool operator==(const StatsResponse&) const = default;
};

struct ErrorBody {
  ErrorCode code = ErrorCode::kInternal;
  /// Human-oriented detail; bounded (kMaxErrorMessageBytes) and never
  /// required for program logic — the code is the contract.
  std::string message;

  bool operator==(const ErrorBody&) const = default;
};

inline constexpr size_t kMaxErrorMessageBytes = 1024;

void EncodeHelloRequest(const HelloRequest& req, common::ByteWriter* w);
bool DecodeHelloRequest(common::ByteReader* r, HelloRequest* out);
void EncodeHelloResponse(const HelloResponse& resp, common::ByteWriter* w);
bool DecodeHelloResponse(common::ByteReader* r, HelloResponse* out);

/// serve::QueryRequest with a leading kind byte (0 where, 1 when,
/// 2 range); the same encoding serves kQuery payloads and kBatch entries.
void EncodeQueryRequest(const serve::QueryRequest& req,
                        common::ByteWriter* w);
bool DecodeQueryRequest(common::ByteReader* r, serve::QueryRequest* out);

/// serve::QueryResult with a leading kind byte; hit order is preserved
/// exactly as the engine produced it, so network answers can be compared
/// hit-for-hit against in-process answers.
void EncodeQueryResult(const serve::QueryResult& result,
                       common::ByteWriter* w);
bool DecodeQueryResult(common::ByteReader* r, serve::QueryResult* out);

/// kBatch payload: varint count then that many QueryRequests.
void EncodeBatchRequest(const std::vector<serve::QueryRequest>& reqs,
                        common::ByteWriter* w);
bool DecodeBatchRequest(common::ByteReader* r,
                        std::vector<serve::QueryRequest>* out);

/// kBatchResult payload: varint count then that many QueryResults,
/// results[i] answering requests[i].
void EncodeBatchResult(const std::vector<serve::QueryResult>& results,
                       common::ByteWriter* w);
bool DecodeBatchResult(common::ByteReader* r,
                       std::vector<serve::QueryResult>* out);

void EncodeIngestPoint(const IngestPointRequest& req, common::ByteWriter* w);
bool DecodeIngestPoint(common::ByteReader* r, IngestPointRequest* out);
void EncodeIngestEnd(const IngestEndRequest& req, common::ByteWriter* w);
bool DecodeIngestEnd(common::ByteReader* r, IngestEndRequest* out);
void EncodeIngestAdvance(const IngestAdvanceRequest& req,
                         common::ByteWriter* w);
bool DecodeIngestAdvance(common::ByteReader* r, IngestAdvanceRequest* out);
void EncodeIngestAck(const IngestAck& ack, common::ByteWriter* w);
bool DecodeIngestAck(common::ByteReader* r, IngestAck* out);

void EncodeStatsResponse(const StatsResponse& stats, common::ByteWriter* w);
bool DecodeStatsResponse(common::ByteReader* r, StatsResponse* out);

/// Payload-format version of kMetricsResult, negotiated independently of
/// the frame protocol version so the instrument encoding can evolve
/// without a protocol bump.
inline constexpr uint8_t kMetricsPayloadVersion = 1;

/// Longest instrument name accepted on the wire; a registry name past
/// this is a registration bug, not a runtime condition.
inline constexpr size_t kMaxMetricNameBytes = 256;

/// kMetricsResult payload: u8 payload version, varint instrument count,
/// then per instrument — in strictly ascending name order, the three
/// kinds merged into one stream — a u8 kind tag (0 counter, 1 gauge,
/// 2 histogram), a bounded name blob, and the value: varint (counter),
/// signed varint (gauge), or `varint sum, varint nonzero-bucket count,
/// (varint index, varint count) pairs with strictly ascending indices
/// below obs::Histogram::kNumBuckets and counts > 0` (histogram — the
/// fixed compile-time bucket layout is what makes bare indices
/// sufficient; the decoded total count is derived from the pairs).
/// The kMetrics request itself carries no payload.
void EncodeMetricsResponse(const obs::RegistrySnapshot& snap,
                           common::ByteWriter* w);
bool DecodeMetricsResponse(common::ByteReader* r, obs::RegistrySnapshot* out);

void EncodeErrorBody(const ErrorBody& body, common::ByteWriter* w);
bool DecodeErrorBody(common::ByteReader* r, ErrorBody* out);

/// A payload decode is only complete when the reader consumed exactly the
/// payload with every read in bounds; the per-type decoders above all
/// finish through this.
bool FinishPayload(const common::ByteReader& r);

/// Convenience: a complete kError frame for `request_id`.
Frame MakeErrorFrame(uint64_t request_id, ErrorCode code,
                     std::string message);

}  // namespace utcq::net

#endif  // UTCQ_NET_WIRE_H_
