#include "net/tcp_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <optional>
#include <string>
#include <utility>

namespace utcq::net {

namespace {

/// Frames a connection thread pulls out of the assembler per Session
/// hand-off. Bounds the latency between receiving a burst and flushing
/// its first responses; pipelined runs inside one chunk still fold.
constexpr size_t kMaxFramesPerChunk = 4096;

void SetSendTimeout(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Blocking best-effort send of a complete buffer; false once the peer is
/// gone (or SO_SNDTIMEO expired, i.e. the peer stopped reading).
bool SendAll(int fd, const uint8_t* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n =
        ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------- Session

Session::Session(serve::QueryEngine* engine, ingest::StreamIngestor* ingestor,
                 size_t max_pipeline_batch, obs::MetricRegistry* registry,
                 const obs::Clock* clock)
    : engine_(engine),
      ingestor_(ingestor),
      max_pipeline_batch_(max_pipeline_batch == 0 ? 1 : max_pipeline_batch),
      registry_(registry) {
  if (registry_ == nullptr) return;  // socket-free unit-test construction
  clock_ = clock != nullptr ? clock : &obs::Clock::Real();
  for (size_t i = 0; i < kNumRequestOps; ++i) {
    const Op op = static_cast<Op>(i + 1);
    request_counters_[i] =
        &registry_->GetCounter(std::string("net.requests.") + OpName(op));
  }
  unknown_requests_ = &registry_->GetCounter("net.requests.unknown");
  errors_counter_ = &registry_->GetCounter("net.errors");
  handle_ns_ = &registry_->GetHistogram("net.handle_ns");
}

void Session::CountRequest(Op op) {
  if (registry_ == nullptr) return;
  const size_t raw = static_cast<size_t>(op);
  if (raw >= 1 && raw <= kNumRequestOps) {
    request_counters_[raw - 1]->Increment();
  } else {
    unknown_requests_->Increment();
  }
}

void Session::AppendError(uint64_t request_id, ErrorCode code,
                          std::string message, std::vector<uint8_t>* out) {
  AppendFrame(MakeErrorFrame(request_id, code, std::move(message)), out);
  ++errors_sent_;
  if (errors_counter_ != nullptr) errors_counter_->Increment();
}

void Session::HandleFramingError(ErrorCode code, std::vector<uint8_t>* out) {
  AppendError(0, code, "broken frame stream", out);
}

bool Session::HandleHello(const Frame& frame, std::vector<uint8_t>* out) {
  if (frame.op != Op::kHello) {
    AppendError(frame.request_id, ErrorCode::kHelloRequired,
                "first frame must be hello", out);
    return false;
  }
  common::ByteReader r(frame.payload);
  HelloRequest req;
  if (!DecodeHelloRequest(&r, &req)) {
    AppendError(frame.request_id, ErrorCode::kMalformed, "bad hello payload",
                out);
    return false;
  }
  if (req.min_version > kProtocolVersion ||
      req.max_version < kProtocolVersion) {
    AppendError(frame.request_id, ErrorCode::kBadVersion,
                "no common protocol version", out);
    return false;
  }
  HelloResponse resp;
  resp.version = kProtocolVersion;
  resp.features = 0;  // v1 defines none; requested bits are not granted
  resp.num_trajectories = engine_ == nullptr ? 0 : engine_->num_trajectories();
  resp.query_enabled = engine_ != nullptr;
  resp.ingest_enabled = ingestor_ != nullptr;
  common::ByteWriter w;
  EncodeHelloResponse(resp, &w);
  Frame reply;
  reply.op = Op::kHelloOk;
  reply.request_id = frame.request_id;
  reply.payload = w.Release();
  AppendFrame(reply, out);
  helloed_ = true;
  return true;
}

void Session::HandleQueryRun(const std::vector<Frame>& frames, size_t begin,
                             size_t end, std::vector<uint8_t>* out) {
  // Decode every payload first; a malformed entry is answered kMalformed
  // in place while the valid ones still fold into one ExecuteBatch call.
  std::vector<serve::QueryRequest> requests;
  std::vector<ptrdiff_t> slot(end - begin, -1);
  for (size_t i = begin; i < end; ++i) {
    common::ByteReader r(frames[i].payload);
    serve::QueryRequest req;
    if (DecodeQueryRequest(&r, &req) && FinishPayload(r)) {
      slot[i - begin] = static_cast<ptrdiff_t>(requests.size());
      requests.push_back(req);
    }
  }
  std::vector<serve::QueryResult> results;
  if (!requests.empty()) {
    results = requests.size() == 1
                  ? std::vector<serve::QueryResult>{engine_->Execute(
                        requests.front())}
                  : engine_->ExecuteBatch(requests);
  }
  for (size_t i = begin; i < end; ++i) {
    const ptrdiff_t s = slot[i - begin];
    if (s < 0) {
      AppendError(frames[i].request_id, ErrorCode::kMalformed,
                  "bad query payload", out);
      continue;
    }
    common::ByteWriter w;
    EncodeQueryResult(results[static_cast<size_t>(s)], &w);
    Frame reply;
    reply.op = Op::kResult;
    reply.request_id = frames[i].request_id;
    reply.payload = w.Release();
    AppendFrame(reply, out);
  }
}

bool Session::HandleOne(const Frame& frame, std::vector<uint8_t>* out) {
  common::ByteReader r(frame.payload);
  switch (frame.op) {
    case Op::kHello:
      // Renegotiation is not a thing in v1; the stream is still framed,
      // so answer and stay open.
      AppendError(frame.request_id, ErrorCode::kBadOpcode,
                  "hello already completed", out);
      return true;

    case Op::kQuery: {
      // Single query outside a run (HandleFrames folds runs itself).
      if (engine_ == nullptr) {
        AppendError(frame.request_id, ErrorCode::kNotSupported,
                    "no query engine on this endpoint", out);
        return true;
      }
      serve::QueryRequest req;
      if (!DecodeQueryRequest(&r, &req) || !FinishPayload(r)) {
        AppendError(frame.request_id, ErrorCode::kMalformed,
                    "bad query payload", out);
        return true;
      }
      common::ByteWriter w;
      EncodeQueryResult(engine_->Execute(req), &w);
      Frame reply;
      reply.op = Op::kResult;
      reply.request_id = frame.request_id;
      reply.payload = w.Release();
      AppendFrame(reply, out);
      return true;
    }

    case Op::kBatch: {
      if (engine_ == nullptr) {
        AppendError(frame.request_id, ErrorCode::kNotSupported,
                    "no query engine on this endpoint", out);
        return true;
      }
      std::vector<serve::QueryRequest> requests;
      if (!DecodeBatchRequest(&r, &requests) || !FinishPayload(r)) {
        AppendError(frame.request_id, ErrorCode::kMalformed,
                    "bad batch payload", out);
        return true;
      }
      common::ByteWriter w;
      EncodeBatchResult(engine_->ExecuteBatch(requests), &w);
      Frame reply;
      reply.op = Op::kBatchResult;
      reply.request_id = frame.request_id;
      reply.payload = w.Release();
      AppendFrame(reply, out);
      return true;
    }

    case Op::kIngestPoint:
    case Op::kIngestEnd:
    case Op::kIngestAdvanceTime: {
      if (ingestor_ == nullptr) {
        AppendError(frame.request_id, ErrorCode::kNotSupported,
                    "no ingestor on this endpoint", out);
        return true;
      }
      IngestAck ack;
      bool ok = false;
      if (frame.op == Op::kIngestPoint) {
        IngestPointRequest req;
        if ((ok = DecodeIngestPoint(&r, &req))) {
          ack.status = ingestor_->Push(req.vehicle, req.point);
          ack.sealed = 0;
        }
      } else if (frame.op == Op::kIngestEnd) {
        IngestEndRequest req;
        if ((ok = DecodeIngestEnd(&r, &req))) {
          ack.status = matching::AppendStatus::kAccepted;
          ack.sealed = ingestor_->EndSession(req.vehicle);
        }
      } else {
        IngestAdvanceRequest req;
        if ((ok = DecodeIngestAdvance(&r, &req))) {
          ack.status = matching::AppendStatus::kAccepted;
          ack.sealed = ingestor_->AdvanceTime(req.now);
        }
      }
      if (!ok) {
        AppendError(frame.request_id, ErrorCode::kMalformed,
                    "bad ingest payload", out);
        return true;
      }
      common::ByteWriter w;
      EncodeIngestAck(ack, &w);
      Frame reply;
      reply.op = Op::kIngestAck;
      reply.request_id = frame.request_id;
      reply.payload = w.Release();
      AppendFrame(reply, out);
      return true;
    }

    case Op::kStats: {
      if (!frame.payload.empty()) {
        AppendError(frame.request_id, ErrorCode::kMalformed,
                    "stats takes no payload", out);
        return true;
      }
      StatsResponse stats;
      if (engine_ != nullptr) {
        const serve::EngineStats es = engine_->stats();
        stats.has_engine = true;
        stats.queries = es.queries;
        stats.batches = es.batches;
        stats.cache_hits = es.cache_hits;
        stats.cache_misses = es.cache_misses;
        stats.bytes_decoded = es.bytes_decoded;
        stats.p50_latency_us = es.p50_latency_us;
        stats.p99_latency_us = es.p99_latency_us;
      }
      if (ingestor_ != nullptr) {
        const ingest::IngestStats is = ingestor_->stats();
        stats.has_ingest = true;
        stats.points = is.points;
        stats.accepted = is.accepted;
        stats.trajectories_sealed = is.trajectories_sealed;
        stats.open_sessions = ingestor_->open_sessions();
      }
      common::ByteWriter w;
      EncodeStatsResponse(stats, &w);
      Frame reply;
      reply.op = Op::kStatsResult;
      reply.request_id = frame.request_id;
      reply.payload = w.Release();
      AppendFrame(reply, out);
      return true;
    }

    case Op::kMetrics: {
      if (!frame.payload.empty()) {
        AppendError(frame.request_id, ErrorCode::kMalformed,
                    "metrics takes no payload", out);
        return true;
      }
      if (registry_ == nullptr) {
        AppendError(frame.request_id, ErrorCode::kNotSupported,
                    "no metric registry on this endpoint", out);
        return true;
      }
      common::ByteWriter w;
      EncodeMetricsResponse(registry_->Snapshot(), &w);
      Frame reply;
      reply.op = Op::kMetricsResult;
      reply.request_id = frame.request_id;
      reply.payload = w.Release();
      AppendFrame(reply, out);
      return true;
    }

    case Op::kGoodbye: {
      Frame reply;
      reply.op = Op::kGoodbyeOk;
      reply.request_id = frame.request_id;
      AppendFrame(reply, out);
      return false;  // clean close after the flush
    }

    default:
      // Unknown request opcode, or a response opcode sent as a request.
      AppendError(frame.request_id, ErrorCode::kBadOpcode, "bad opcode", out);
      return true;
  }
}

bool Session::HandleFrames(const std::vector<Frame>& frames,
                           std::vector<uint8_t>* out) {
  // One timer for the whole hand-off: a folded pipelined run is one
  // engine execution, so it is deliberately one `net.handle_ns` sample
  // too (DESIGN.md §15).
  std::optional<obs::ScopedTimer> timer;
  if (handle_ns_ != nullptr) timer.emplace(*handle_ns_, *clock_);
  size_t i = 0;
  while (i < frames.size()) {
    const Frame& frame = frames[i];
    ++frames_handled_;
    CountRequest(frame.op);
    if (!helloed_) {
      if (!HandleHello(frame, out)) return false;
      ++i;
      continue;
    }
    if (frame.version != kProtocolVersion) {
      AppendError(frame.request_id, ErrorCode::kBadVersion,
                  "frame version differs from negotiated version", out);
      return false;
    }
    if (frame.op == Op::kQuery && engine_ != nullptr) {
      // Fold the pipelined run [i, end) into one batched execution.
      size_t end = i + 1;
      while (end < frames.size() && frames[end].op == Op::kQuery &&
             frames[end].version == kProtocolVersion &&
             end - i < max_pipeline_batch_) {
        ++end;
      }
      frames_handled_ += end - i - 1;
      for (size_t j = i + 1; j < end; ++j) CountRequest(frames[j].op);
      HandleQueryRun(frames, i, end, out);
      i = end;
      continue;
    }
    if (!HandleOne(frame, out)) return false;
    ++i;
  }
  return true;
}

// --------------------------------------------------------------- Receiver

Receiver::Receiver(int fd, Session session, size_t max_write_buffer_bytes,
                   obs::MetricRegistry* registry)
    : fd_(fd),
      session_(std::move(session)),
      max_write_buffer_bytes_(
          max_write_buffer_bytes == 0 ? 1 : max_write_buffer_bytes) {
  if (registry != nullptr) {
    bytes_in_ = &registry->GetCounter("net.bytes.in");
    bytes_out_ = &registry->GetCounter("net.bytes.out");
  }
}

bool Receiver::FlushPending() {
  if (pending_.empty()) return true;
  const bool ok = SendAll(fd_, pending_.data(), pending_.size());
  if (ok && bytes_out_ != nullptr) bytes_out_->Add(pending_.size());
  pending_.clear();
  return ok;
}

bool Receiver::DrainAssembler() {
  for (;;) {
    std::vector<Frame> frames;
    Frame frame;
    ErrorCode err = ErrorCode::kMalformed;
    FrameAssembler::Status status = FrameAssembler::Status::kNeedMore;
    while (frames.size() < kMaxFramesPerChunk) {
      status = assembler_.Next(&frame, &err);
      if (status != FrameAssembler::Status::kFrame) break;
      frames.push_back(std::move(frame));
    }
    if (status == FrameAssembler::Status::kBad) {
      // Answer the complete frames that preceded the break, then report.
      if (!frames.empty()) session_.HandleFrames(frames, &pending_);
      session_.HandleFramingError(err, &pending_);
      return false;
    }
    if (frames.empty()) return true;
    if (!session_.HandleFrames(frames, &pending_)) return false;
    // Backpressure: responses beyond the bound are pushed into the socket
    // (blocking) before any more frames are taken — a client that stops
    // reading stops being served.
    if (pending_.size() >= max_write_buffer_bytes_ && !FlushPending()) {
      return false;
    }
  }
}

uint64_t Receiver::Run() {
  std::vector<uint8_t> buf(64 * 1024);
  for (;;) {
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // EOF or shutdown(SHUT_RD): drain then close
    if (bytes_in_ != nullptr) bytes_in_->Add(static_cast<uint64_t>(n));
    assembler_.Push(buf.data(), static_cast<size_t>(n));
    if (!DrainAssembler()) break;
    if (!FlushPending()) break;
  }
  FlushPending();  // drain-then-close: last responses still go out
  return session_.frames_handled();
}

// -------------------------------------------------------------- TcpServer

TcpServer::TcpServer(serve::QueryEngine* engine,
                     ingest::StreamIngestor* ingestor, ServerOptions opts)
    : engine_(engine), ingestor_(ingestor), opts_(opts) {
  registry_ = opts_.registry;
  if (registry_ == nullptr) {
    owned_registry_ = std::make_unique<obs::MetricRegistry>();
    registry_ = owned_registry_.get();
  }
  clock_ = opts_.clock != nullptr ? opts_.clock : &obs::Clock::Real();
  conns_accepted_ = &registry_->GetCounter("net.connections.accepted");
  conns_rejected_ = &registry_->GetCounter("net.connections.rejected");
  conns_open_ = &registry_->GetGauge("net.connections.open");
}

TcpServer::~TcpServer() { Shutdown(); }

bool TcpServer::Start() {
  if (running_.load(std::memory_order_acquire)) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opts_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, opts_.listen_backlog) < 0 ||
      ::pipe2(wake_pipe_, O_CLOEXEC) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  running_.store(true, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  // Dedicated acceptor; see the threading note in tcp_server.h.
  accept_thread_ = std::thread([this] { AcceptLoop(); });  // repo-lint: allow(thread-outside-pool)
  return true;
}

void TcpServer::ReapFinished() {
  for (size_t i = 0; i < connections_.size();) {
    Connection* conn = connections_[i].get();
    if (conn->done.load(std::memory_order_acquire)) {
      if (conn->thread.joinable()) conn->thread.join();
      ::close(conn->fd);
      conns_open_->Sub(1);
      connections_.erase(connections_.begin() + static_cast<ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void TcpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, /*timeout_ms=*/250);
    {
      common::MutexLock lock(mu_);
      ReapFinished();
    }
    if (ready <= 0 || (fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    SetSendTimeout(fd, opts_.send_timeout_ms);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    common::MutexLock lock(mu_);
    if (connections_.size() >= opts_.max_connections) {
      // Answer with a typed error so the client can tell overload from a
      // network failure, then close. Best effort; the fd is closed either
      // way and the count never exceeds the bound.
      const std::vector<uint8_t> bytes = EncodeFrame(
          MakeErrorFrame(0, ErrorCode::kOverloaded, "connection limit"));
      SendAll(fd, bytes.data(), bytes.size());
      ::close(fd);
      ++rejected_;
      conns_rejected_->Increment();
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    // Dedicated per-connection thread; see the note in tcp_server.h.
    conn->thread = std::thread([this, raw] {  // repo-lint: allow(thread-outside-pool)
      Receiver receiver(
          raw->fd,
          Session(engine_, ingestor_, opts_.max_pipeline_batch, registry_,
                  clock_),
          opts_.max_write_buffer_bytes, registry_);
      const uint64_t frames = receiver.Run();
      // The fd stays open: the server owns it and closes it after join,
      // so Shutdown()'s shutdown(SHUT_RD) can never hit a recycled fd.
      ::shutdown(raw->fd, SHUT_WR);
      common::MutexLock lock(mu_);
      frames_handled_ += frames;
      raw->done.store(true, std::memory_order_release);
    });
    ++accepted_;
    conns_accepted_->Increment();
    conns_open_->Add(1);
    connections_.push_back(std::move(conn));
  }
}

void TcpServer::Shutdown() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Wake the acceptor out of poll() via the self-pipe and retire it first,
  // so no new connection can race the drain below.
  const char byte = 0;
  [[maybe_unused]] const ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
  if (accept_thread_.joinable()) accept_thread_.join();

  // Wake every connection out of its blocking read. The read side sees
  // EOF, drains frames already received, flushes its responses and exits
  // (drain-then-close). SHUT_RD leaves the write side intact for the
  // flush; a client that stops reading is bounded by SO_SNDTIMEO.
  std::vector<std::unique_ptr<Connection>> conns;
  {
    common::MutexLock lock(mu_);
    conns.swap(connections_);
  }
  for (const auto& conn : conns) ::shutdown(conn->fd, SHUT_RD);
  for (const auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
    ::close(conn->fd);
    conns_open_->Sub(1);
  }

  ::close(listen_fd_);
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  listen_fd_ = wake_pipe_[0] = wake_pipe_[1] = -1;
}

size_t TcpServer::active_connections() const {
  common::MutexLock lock(mu_);
  size_t active = 0;
  for (const auto& conn : connections_) {
    if (!conn->done.load(std::memory_order_acquire)) ++active;
  }
  return active;
}

ServerCounters TcpServer::counters() const {
  common::MutexLock lock(mu_);
  ServerCounters counters;
  counters.connections_accepted = accepted_;
  counters.connections_rejected = rejected_;
  counters.frames_handled = frames_handled_;
  return counters;
}

}  // namespace utcq::net
