#ifndef UTCQ_NET_TCP_SERVER_H_
#define UTCQ_NET_TCP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
// Blocking socket I/O must not occupy (or deadlock on) the shared compute
// pool — ThreadPool::Shared() can legitimately have zero workers — so the
// serving tier owns dedicated threads, one per connection plus the
// acceptor. Waived per DESIGN.md §14 "Threading".
#include <thread>  // repo-lint: allow(thread-outside-pool)
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "ingest/ingestor.h"
#include "net/wire.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "serve/query_engine.h"

/// The network serving tier (DESIGN.md §14): a TCP front over the batched
/// serve::QueryEngine and the ingest::StreamIngestor.
///
/// Naming note: `src/net/` is the transport layer; `src/network/` models
/// the road network queries run against. The two never include each other.
///
/// Layering, smallest piece first:
///   - net::Session    — the per-connection protocol state machine. Fully
///                       socket-free: frames in, response bytes out. All
///                       version negotiation, dispatch, pipelining into
///                       ExecuteBatch and error-code policy lives here, so
///                       all of it is unit-testable without a network.
///   - net::Receiver   — the per-connection pump: reads the socket into a
///                       FrameAssembler, hands frame runs to the Session,
///                       writes the response bytes back with a bounded
///                       write buffer for backpressure.
///   - net::TcpServer  — owns listen/accept, the connection table and the
///                       drain-then-close shutdown handshake.

namespace utcq::net {

struct ServerOptions {
  /// 0 binds an ephemeral port; read the real one from port() after
  /// Start(). Listens on 127.0.0.1 only — this tier has no auth story yet
  /// (ROADMAP item 1 follow-on).
  uint16_t port = 0;
  int listen_backlog = 64;
  /// Connections beyond this are answered with kOverloaded and closed.
  size_t max_connections = 64;
  /// Backpressure bound: once this many encoded response bytes are
  /// pending on a connection, the Receiver stops reading and blocks in
  /// send() until the client drains — TCP flow control then pushes back
  /// on the client's writes.
  size_t max_write_buffer_bytes = 1u << 20;
  /// Upper bound on kQuery frames folded into one ExecuteBatch call when
  /// a pipelined burst is waiting in the assembler.
  size_t max_pipeline_batch = 1024;
  /// SO_SNDTIMEO applied to every accepted socket: a client that stops
  /// reading for this long is treated as dead, which keeps a graceful
  /// shutdown from hanging in a blocked send. 0 disables the timeout.
  int send_timeout_ms = 5000;
  /// Where the server's `net.*` instruments live and what kMetrics
  /// exports (DESIGN.md §15). nullptr = the server owns a private
  /// registry; pass the registry shared with the engine/ingestor for a
  /// unified export of every layer.
  obs::MetricRegistry* registry = nullptr;
  /// Time source for the frame-handling histogram; nullptr = the real
  /// steady clock.
  const obs::Clock* clock = nullptr;
};

/// The protocol state machine for one connection. Socket-free by
/// construction: HandleFrames() consumes decoded frames and appends
/// encoded response frames to a byte buffer; the caller moves the bytes.
///
/// Dispatch policy (normative spec: DESIGN.md §14):
///   - First frame must be kHello (else kHelloRequired, close). Hello
///     picks the highest mutually supported version or fails kBadVersion.
///   - A post-Hello frame whose version differs from the negotiated one is
///     answered kBadVersion and the connection closes.
///   - kBadOpcode / kNotSupported are answered and the connection stays
///     open; the stream is still well-framed.
///   - A run of consecutive kQuery frames is folded into one
///     QueryEngine::ExecuteBatch call; responses keep request order.
///   - kGoodbye is answered kGoodbyeOk and the connection closes cleanly.
class Session {
 public:
  /// Either engine may be null: a query-only or ingest-only endpoint
  /// answers the other family's requests with kNotSupported. `registry`
  /// is both what kMetrics snapshots and where the session's own `net.*`
  /// instruments live; with nullptr the session records nothing and
  /// answers kMetrics with kNotSupported (a TcpServer always passes one).
  Session(serve::QueryEngine* engine, ingest::StreamIngestor* ingestor,
          size_t max_pipeline_batch, obs::MetricRegistry* registry = nullptr,
          const obs::Clock* clock = nullptr);

  /// Processes `frames` in order, appending response bytes to `out`.
  /// Returns false when the connection must close after `out` is flushed
  /// (goodbye, protocol violation, or hello failure).
  bool HandleFrames(const std::vector<Frame>& frames,
                    std::vector<uint8_t>* out);

  /// Appends the error frame a broken byte stream is answered with before
  /// the transport closes (FrameAssembler::kBad).
  void HandleFramingError(ErrorCode code, std::vector<uint8_t>* out);

  bool helloed() const { return helloed_; }
  uint64_t frames_handled() const { return frames_handled_; }
  uint64_t errors_sent() const { return errors_sent_; }

 private:
  bool HandleHello(const Frame& frame, std::vector<uint8_t>* out);
  /// Answers frames[begin, end): a run of kQuery folded into one batch.
  void HandleQueryRun(const std::vector<Frame>& frames, size_t begin,
                      size_t end, std::vector<uint8_t>* out);
  bool HandleOne(const Frame& frame, std::vector<uint8_t>* out);
  void AppendError(uint64_t request_id, ErrorCode code, std::string message,
                   std::vector<uint8_t>* out);
  /// Bumps the `net.requests.<opname>` counter for a consumed request
  /// frame (no-op without a registry). Response opcodes arriving as
  /// requests land on `net.requests.unknown`.
  void CountRequest(Op op);

  serve::QueryEngine* engine_;
  ingest::StreamIngestor* ingestor_;
  const size_t max_pipeline_batch_;
  /// What kMetrics exports; nullptr disables the opcode and every
  /// instrument below. Raw pointers: the registry outlives the session
  /// (TcpServer owns it or the caller does), and Session stays copyable
  /// into its Receiver.
  obs::MetricRegistry* registry_ = nullptr;
  const obs::Clock* clock_ = nullptr;
  /// `net.requests.<opname>`, indexed by request opcode - 1; see
  /// CountRequest.
  static constexpr size_t kNumRequestOps =
      static_cast<size_t>(Op::kMetrics);
  obs::Counter* request_counters_[kNumRequestOps] = {};
  obs::Counter* unknown_requests_ = nullptr;
  obs::Counter* errors_counter_ = nullptr;
  obs::Histogram* handle_ns_ = nullptr;
  bool helloed_ = false;
  uint64_t frames_handled_ = 0;
  uint64_t errors_sent_ = 0;
};

/// Pumps one connected socket: recv → FrameAssembler → Session →
/// bounded write buffer → send. Owns no fd — the server does — and runs
/// until EOF, a protocol close, or the server's shutdown(SHUT_RD) wakes
/// the blocking read. Already-received frames are drained and their
/// responses flushed before returning (drain-then-close).
class Receiver {
 public:
  /// `registry` (nullable) receives the connection's `net.bytes.{in,out}`
  /// traffic counters.
  Receiver(int fd, Session session, size_t max_write_buffer_bytes,
           obs::MetricRegistry* registry = nullptr);

  /// Blocks until the connection is done. Returns the number of frames
  /// the session handled.
  uint64_t Run();

 private:
  /// Drains every complete frame out of the assembler through the
  /// session. Returns false when the connection must close.
  bool DrainAssembler();
  bool FlushPending();

  const int fd_;
  Session session_;
  const size_t max_write_buffer_bytes_;
  FrameAssembler assembler_;
  std::vector<uint8_t> pending_;
  obs::Counter* bytes_in_ = nullptr;
  obs::Counter* bytes_out_ = nullptr;
};

/// Counters exposed for tests and the load generator.
struct ServerCounters {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;
  uint64_t frames_handled = 0;
};

class TcpServer {
 public:
  /// Either backend may be null (see Session). Both must outlive the
  /// server.
  TcpServer(serve::QueryEngine* engine, ingest::StreamIngestor* ingestor,
            ServerOptions opts = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens and starts the accept thread. False (with the listen
  /// socket closed) if the port cannot be bound.
  bool Start();

  /// Graceful drain-then-close: stop accepting, wake every connection out
  /// of its blocking read via shutdown(SHUT_RD), let each Receiver drain
  /// already-received frames and flush its responses, then join every
  /// thread and close every fd. Idempotent; also run by the destructor.
  void Shutdown();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (the real one when opts.port was 0). 0 before Start().
  uint16_t port() const { return port_; }
  size_t active_connections() const;
  ServerCounters counters() const;
  /// The registry this server records into and serves over kMetrics —
  /// opts.registry, or the server's own when none was passed.
  obs::MetricRegistry& registry() const { return *registry_; }

 private:
  struct Connection {
    int fd = -1;
    // Dedicated per-connection thread; see the <thread> include note.
    std::thread thread;  // repo-lint: allow(thread-outside-pool)
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ReapFinished() UTCQ_REQUIRES(mu_);

  serve::QueryEngine* engine_;
  ingest::StreamIngestor* ingestor_;
  const ServerOptions opts_;
  /// Effective registry (opts_.registry or owned_registry_) and clock,
  /// handed to every Session/Receiver. Declared before the instrument
  /// pointers they back.
  std::unique_ptr<obs::MetricRegistry> owned_registry_;
  obs::MetricRegistry* registry_ = nullptr;
  const obs::Clock* clock_ = nullptr;
  obs::Counter* conns_accepted_ = nullptr;
  obs::Counter* conns_rejected_ = nullptr;
  obs::Gauge* conns_open_ = nullptr;

  int listen_fd_ = -1;
  /// Self-pipe: Shutdown() writes one byte to wake the accept loop's
  /// poll() without racing the listen fd's lifetime.
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  // Dedicated acceptor thread; see the <thread> include note.
  std::thread accept_thread_;  // repo-lint: allow(thread-outside-pool)

  mutable common::Mutex mu_;
  std::vector<std::unique_ptr<Connection>> connections_ UTCQ_GUARDED_BY(mu_);
  uint64_t accepted_ UTCQ_GUARDED_BY(mu_) = 0;
  uint64_t rejected_ UTCQ_GUARDED_BY(mu_) = 0;
  uint64_t frames_handled_ UTCQ_GUARDED_BY(mu_) = 0;
};

}  // namespace utcq::net

#endif  // UTCQ_NET_TCP_SERVER_H_
