#include "net/wire.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

namespace utcq::net {

namespace {

bool Finite(double v) { return std::isfinite(v); }

/// Reads a varint that must fit `uint32_t` (trajectory ids, edge ids,
/// instance ids). An oversized value is an encoding violation, not a
/// truncation, so it fails the decode rather than wrapping.
bool GetVarint32(common::ByteReader* r, uint32_t* out) {
  const uint64_t v = r->GetVarint();
  if (!r->ok() || v > std::numeric_limits<uint32_t>::max()) return false;
  *out = static_cast<uint32_t>(v);
  return true;
}

/// Bounds a decoded element count against the bytes actually present:
/// `min_bytes_per_entry` is the smallest possible wire size of one entry,
/// so any count the remaining payload cannot carry is rejected before the
/// vector resize — the same crafted-count rule the archive decoder follows
/// (DESIGN.md §6 robustness rules).
bool BoundedCount(const common::ByteReader& r, uint64_t count,
                  size_t min_bytes_per_entry, size_t* out) {
  if (count > r.remaining() / min_bytes_per_entry) return false;
  *out = static_cast<size_t>(count);
  return true;
}

}  // namespace

const char* OpName(Op op) {
  switch (op) {
    case Op::kHello: return "hello";
    case Op::kQuery: return "query";
    case Op::kBatch: return "batch";
    case Op::kIngestPoint: return "ingest-point";
    case Op::kIngestEnd: return "ingest-end";
    case Op::kIngestAdvanceTime: return "ingest-advance-time";
    case Op::kStats: return "stats";
    case Op::kGoodbye: return "goodbye";
    case Op::kMetrics: return "metrics";
    case Op::kHelloOk: return "hello-ok";
    case Op::kResult: return "result";
    case Op::kBatchResult: return "batch-result";
    case Op::kIngestAck: return "ingest-ack";
    case Op::kStatsResult: return "stats-result";
    case Op::kGoodbyeOk: return "goodbye-ok";
    case Op::kMetricsResult: return "metrics-result";
    case Op::kError: return "error";
  }
  return "unknown";
}

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadVersion: return "bad-version";
    case ErrorCode::kBadOpcode: return "bad-opcode";
    case ErrorCode::kMalformed: return "malformed";
    case ErrorCode::kNotSupported: return "not-supported";
    case ErrorCode::kFrameTooLarge: return "frame-too-large";
    case ErrorCode::kShuttingDown: return "shutting-down";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kHelloRequired: return "hello-required";
    case ErrorCode::kOverloaded: return "overloaded";
  }
  return "unknown";
}

// ----------------------------------------------------------------- framing

void AppendFrame(const Frame& frame, std::vector<uint8_t>* out) {
  common::ByteWriter w;
  w.PutU32(kFrameOverheadBytes + static_cast<uint32_t>(frame.payload.size()));
  w.PutU8(frame.version);
  w.PutU8(static_cast<uint8_t>(frame.op));
  w.PutU16(0);  // reserved: zero on send, rejected nonzero on receive
  w.PutU64(frame.request_id);
  w.PutBytes(frame.payload.data(), frame.payload.size());
  const auto& bytes = w.bytes();
  out->insert(out->end(), bytes.begin(), bytes.end());
}

std::vector<uint8_t> EncodeFrame(const Frame& frame) {
  std::vector<uint8_t> out;
  AppendFrame(frame, &out);
  return out;
}

void FrameAssembler::Push(const uint8_t* data, size_t size) {
  if (bad_ || size == 0) return;
  // Compact the consumed prefix before it dominates the buffer, so a
  // long-lived pipelining connection never grows the buffer unboundedly.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + size);
}

FrameAssembler::Status FrameAssembler::Next(Frame* out, ErrorCode* err) {
  if (bad_) {
    if (err != nullptr) *err = bad_code_;
    return Status::kBad;
  }
  const size_t avail = buf_.size() - pos_;
  if (avail < 4) return Status::kNeedMore;
  common::ByteReader len_reader(buf_.data() + pos_, 4);
  const uint32_t length = len_reader.GetU32();
  if (length < kFrameOverheadBytes || length > kMaxFrameBytes) {
    bad_ = true;
    bad_code_ = length > kMaxFrameBytes ? ErrorCode::kFrameTooLarge
                                        : ErrorCode::kMalformed;
    if (err != nullptr) *err = bad_code_;
    return Status::kBad;
  }
  if (avail < 4u + length) return Status::kNeedMore;

  common::ByteReader r(buf_.data() + pos_ + 4, length);
  out->version = r.GetU8();
  out->op = static_cast<Op>(r.GetU8());
  const uint16_t reserved = r.GetU16();
  out->request_id = r.GetU64();
  if (!r.ok() || reserved != 0) {
    bad_ = true;
    bad_code_ = ErrorCode::kMalformed;
    if (err != nullptr) *err = bad_code_;
    return Status::kBad;
  }
  const size_t payload_size = length - kFrameOverheadBytes;
  const uint8_t* payload = r.BorrowBytes(payload_size);
  out->payload.assign(payload, payload + payload_size);
  pos_ += 4u + length;
  return Status::kFrame;
}

// ---------------------------------------------------------------- payloads

bool FinishPayload(const common::ByteReader& r) {
  return r.ok() && r.remaining() == 0;
}

void EncodeHelloRequest(const HelloRequest& req, common::ByteWriter* w) {
  w->PutU8(req.min_version);
  w->PutU8(req.max_version);
  w->PutVarint(req.features);
}

bool DecodeHelloRequest(common::ByteReader* r, HelloRequest* out) {
  out->min_version = r->GetU8();
  out->max_version = r->GetU8();
  out->features = r->GetVarint();
  return FinishPayload(*r) && out->min_version <= out->max_version &&
         out->min_version >= 1;
}

void EncodeHelloResponse(const HelloResponse& resp, common::ByteWriter* w) {
  w->PutU8(resp.version);
  w->PutVarint(resp.features);
  w->PutVarint(resp.num_trajectories);
  w->PutU8(resp.query_enabled ? 1 : 0);
  w->PutU8(resp.ingest_enabled ? 1 : 0);
}

bool DecodeHelloResponse(common::ByteReader* r, HelloResponse* out) {
  out->version = r->GetU8();
  out->features = r->GetVarint();
  out->num_trajectories = r->GetVarint();
  const uint8_t query = r->GetU8();
  const uint8_t ingest = r->GetU8();
  if (!FinishPayload(*r) || query > 1 || ingest > 1) return false;
  out->query_enabled = query == 1;
  out->ingest_enabled = ingest == 1;
  return true;
}

void EncodeQueryRequest(const serve::QueryRequest& req,
                        common::ByteWriter* w) {
  w->PutU8(static_cast<uint8_t>(req.kind));
  switch (req.kind) {
    case serve::QueryKind::kWhere:
      w->PutVarint(req.traj);
      w->PutSignedVarint(req.t);
      w->PutF64(req.alpha);
      break;
    case serve::QueryKind::kWhen:
      w->PutVarint(req.traj);
      w->PutVarint(req.edge);
      w->PutF64(req.rd);
      w->PutF64(req.alpha);
      break;
    case serve::QueryKind::kRange:
      w->PutF64(req.region.min_x);
      w->PutF64(req.region.min_y);
      w->PutF64(req.region.max_x);
      w->PutF64(req.region.max_y);
      w->PutSignedVarint(req.t);
      w->PutF64(req.alpha);
      break;
  }
}

bool DecodeQueryRequest(common::ByteReader* r, serve::QueryRequest* out) {
  *out = serve::QueryRequest{};
  const uint8_t kind = r->GetU8();
  if (!r->ok() || kind > static_cast<uint8_t>(serve::QueryKind::kRange)) {
    return false;
  }
  out->kind = static_cast<serve::QueryKind>(kind);
  switch (out->kind) {
    case serve::QueryKind::kWhere:
      if (!GetVarint32(r, &out->traj)) return false;
      out->t = r->GetSignedVarint();
      out->alpha = r->GetF64();
      break;
    case serve::QueryKind::kWhen:
      if (!GetVarint32(r, &out->traj)) return false;
      if (!GetVarint32(r, &out->edge)) return false;
      out->rd = r->GetF64();
      out->alpha = r->GetF64();
      if (!Finite(out->rd)) return false;
      break;
    case serve::QueryKind::kRange:
      out->region.min_x = r->GetF64();
      out->region.min_y = r->GetF64();
      out->region.max_x = r->GetF64();
      out->region.max_y = r->GetF64();
      out->t = r->GetSignedVarint();
      out->alpha = r->GetF64();
      if (!Finite(out->region.min_x) || !Finite(out->region.min_y) ||
          !Finite(out->region.max_x) || !Finite(out->region.max_y)) {
        return false;
      }
      break;
  }
  return r->ok() && Finite(out->alpha);
}

void EncodeQueryResult(const serve::QueryResult& result,
                       common::ByteWriter* w) {
  w->PutU8(static_cast<uint8_t>(result.kind));
  switch (result.kind) {
    case serve::QueryKind::kWhere:
      w->PutVarint(result.where.size());
      for (const traj::WhereHit& hit : result.where) {
        w->PutVarint(hit.instance);
        w->PutF64(hit.probability);
        w->PutVarint(hit.position.edge);
        w->PutF64(hit.position.ndist);
      }
      break;
    case serve::QueryKind::kWhen:
      w->PutVarint(result.when.size());
      for (const traj::WhenHit& hit : result.when) {
        w->PutVarint(hit.instance);
        w->PutF64(hit.probability);
        w->PutSignedVarint(hit.t);
      }
      break;
    case serve::QueryKind::kRange:
      w->PutVarint(result.range.size());
      for (const uint32_t id : result.range) w->PutVarint(id);
      break;
  }
}

bool DecodeQueryResult(common::ByteReader* r, serve::QueryResult* out) {
  *out = serve::QueryResult{};
  const uint8_t kind = r->GetU8();
  if (!r->ok() || kind > static_cast<uint8_t>(serve::QueryKind::kRange)) {
    return false;
  }
  out->kind = static_cast<serve::QueryKind>(kind);
  size_t n = 0;
  switch (out->kind) {
    case serve::QueryKind::kWhere:
      // Smallest where-hit: 1 (instance) + 8 (prob) + 1 (edge) + 8 (ndist).
      if (!BoundedCount(*r, r->GetVarint(), 18, &n)) return false;
      out->where.resize(n);
      for (traj::WhereHit& hit : out->where) {
        if (!GetVarint32(r, &hit.instance)) return false;
        hit.probability = r->GetF64();
        if (!GetVarint32(r, &hit.position.edge)) return false;
        hit.position.ndist = r->GetF64();
      }
      break;
    case serve::QueryKind::kWhen:
      // Smallest when-hit: 1 (instance) + 8 (prob) + 1 (t).
      if (!BoundedCount(*r, r->GetVarint(), 10, &n)) return false;
      out->when.resize(n);
      for (traj::WhenHit& hit : out->when) {
        if (!GetVarint32(r, &hit.instance)) return false;
        hit.probability = r->GetF64();
        hit.t = r->GetSignedVarint();
      }
      break;
    case serve::QueryKind::kRange:
      if (!BoundedCount(*r, r->GetVarint(), 1, &n)) return false;
      out->range.resize(n);
      for (uint32_t& id : out->range) {
        if (!GetVarint32(r, &id)) return false;
      }
      break;
  }
  return r->ok();
}

void EncodeBatchRequest(const std::vector<serve::QueryRequest>& reqs,
                        common::ByteWriter* w) {
  w->PutVarint(reqs.size());
  for (const serve::QueryRequest& req : reqs) EncodeQueryRequest(req, w);
}

bool DecodeBatchRequest(common::ByteReader* r,
                        std::vector<serve::QueryRequest>* out) {
  size_t n = 0;
  // Smallest request: kind + traj + t + alpha = 1 + 1 + 1 + 8.
  if (!BoundedCount(*r, r->GetVarint(), 11, &n)) return false;
  out->resize(n);
  for (serve::QueryRequest& req : *out) {
    if (!DecodeQueryRequest(r, &req)) return false;
  }
  return r->ok();
}

void EncodeBatchResult(const std::vector<serve::QueryResult>& results,
                       common::ByteWriter* w) {
  w->PutVarint(results.size());
  for (const serve::QueryResult& result : results) {
    EncodeQueryResult(result, w);
  }
}

bool DecodeBatchResult(common::ByteReader* r,
                       std::vector<serve::QueryResult>* out) {
  size_t n = 0;
  // Smallest result: kind + zero count = 2 bytes.
  if (!BoundedCount(*r, r->GetVarint(), 2, &n)) return false;
  out->resize(n);
  for (serve::QueryResult& result : *out) {
    if (!DecodeQueryResult(r, &result)) return false;
  }
  return r->ok();
}

void EncodeIngestPoint(const IngestPointRequest& req, common::ByteWriter* w) {
  w->PutVarint(req.vehicle);
  w->PutF64(req.point.x);
  w->PutF64(req.point.y);
  w->PutSignedVarint(req.point.t);
}

bool DecodeIngestPoint(common::ByteReader* r, IngestPointRequest* out) {
  out->vehicle = r->GetVarint();
  // Non-finite coordinates pass through deliberately: the ingestor types
  // that drop as kDroppedNotFinite, which the client should observe.
  out->point.x = r->GetF64();
  out->point.y = r->GetF64();
  out->point.t = r->GetSignedVarint();
  return FinishPayload(*r);
}

void EncodeIngestEnd(const IngestEndRequest& req, common::ByteWriter* w) {
  w->PutVarint(req.vehicle);
}

bool DecodeIngestEnd(common::ByteReader* r, IngestEndRequest* out) {
  out->vehicle = r->GetVarint();
  return FinishPayload(*r);
}

void EncodeIngestAdvance(const IngestAdvanceRequest& req,
                         common::ByteWriter* w) {
  w->PutSignedVarint(req.now);
}

bool DecodeIngestAdvance(common::ByteReader* r, IngestAdvanceRequest* out) {
  out->now = r->GetSignedVarint();
  return FinishPayload(*r);
}

void EncodeIngestAck(const IngestAck& ack, common::ByteWriter* w) {
  w->PutU8(static_cast<uint8_t>(ack.status));
  w->PutVarint(ack.sealed);
}

bool DecodeIngestAck(common::ByteReader* r, IngestAck* out) {
  const uint8_t status = r->GetU8();
  out->sealed = r->GetVarint();
  if (!FinishPayload(*r) ||
      status > static_cast<uint8_t>(matching::AppendStatus::kSegmentBreak)) {
    return false;
  }
  out->status = static_cast<matching::AppendStatus>(status);
  return true;
}

void EncodeStatsResponse(const StatsResponse& stats, common::ByteWriter* w) {
  w->PutU8(stats.has_engine ? 1 : 0);
  if (stats.has_engine) {
    w->PutVarint(stats.queries);
    w->PutVarint(stats.batches);
    w->PutVarint(stats.cache_hits);
    w->PutVarint(stats.cache_misses);
    w->PutVarint(stats.bytes_decoded);
    w->PutF64(stats.p50_latency_us);
    w->PutF64(stats.p99_latency_us);
  }
  w->PutU8(stats.has_ingest ? 1 : 0);
  if (stats.has_ingest) {
    w->PutVarint(stats.points);
    w->PutVarint(stats.accepted);
    w->PutVarint(stats.trajectories_sealed);
    w->PutVarint(stats.open_sessions);
  }
}

bool DecodeStatsResponse(common::ByteReader* r, StatsResponse* out) {
  *out = StatsResponse{};
  const uint8_t has_engine = r->GetU8();
  if (!r->ok() || has_engine > 1) return false;
  out->has_engine = has_engine == 1;
  if (out->has_engine) {
    out->queries = r->GetVarint();
    out->batches = r->GetVarint();
    out->cache_hits = r->GetVarint();
    out->cache_misses = r->GetVarint();
    out->bytes_decoded = r->GetVarint();
    out->p50_latency_us = r->GetF64();
    out->p99_latency_us = r->GetF64();
  }
  const uint8_t has_ingest = r->GetU8();
  if (!r->ok() || has_ingest > 1) return false;
  out->has_ingest = has_ingest == 1;
  if (out->has_ingest) {
    out->points = r->GetVarint();
    out->accepted = r->GetVarint();
    out->trajectories_sealed = r->GetVarint();
    out->open_sessions = r->GetVarint();
  }
  return FinishPayload(*r);
}

namespace {

/// Kind tags of the kMetricsResult instrument stream.
constexpr uint8_t kMetricCounter = 0;
constexpr uint8_t kMetricGauge = 1;
constexpr uint8_t kMetricHistogram = 2;

void PutMetricName(const std::string& name, common::ByteWriter* w) {
  w->PutBlob(name.data(), name.size());
}

void PutHistogram(const obs::HistogramSnapshot& h, common::ByteWriter* w) {
  w->PutVarint(h.sum);
  w->PutVarint(h.buckets.size());
  for (const auto& [index, count] : h.buckets) {
    w->PutVarint(index);
    w->PutVarint(count);
  }
}

}  // namespace

void EncodeMetricsResponse(const obs::RegistrySnapshot& snap,
                           common::ByteWriter* w) {
  w->PutU8(kMetricsPayloadVersion);
  w->PutVarint(snap.counters.size() + snap.gauges.size() +
               snap.histograms.size());
  // Three-way merge of the per-kind vectors (each already name-sorted by
  // MetricRegistry::Snapshot, and names are unique across kinds) into the
  // single strictly-ascending stream the decoder demands.
  size_t ci = 0;
  size_t gi = 0;
  size_t hi = 0;
  while (ci < snap.counters.size() || gi < snap.gauges.size() ||
         hi < snap.histograms.size()) {
    const std::string* counter_name =
        ci < snap.counters.size() ? &snap.counters[ci].first : nullptr;
    const std::string* gauge_name =
        gi < snap.gauges.size() ? &snap.gauges[gi].first : nullptr;
    const std::string* histogram_name =
        hi < snap.histograms.size() ? &snap.histograms[hi].first : nullptr;
    const std::string* next = counter_name;
    if (next == nullptr || (gauge_name != nullptr && *gauge_name < *next)) {
      next = gauge_name;
    }
    if (next == nullptr ||
        (histogram_name != nullptr && *histogram_name < *next)) {
      next = histogram_name;
    }
    if (next == counter_name) {
      w->PutU8(kMetricCounter);
      PutMetricName(*counter_name, w);
      w->PutVarint(snap.counters[ci].second);
      ++ci;
    } else if (next == gauge_name) {
      w->PutU8(kMetricGauge);
      PutMetricName(*gauge_name, w);
      w->PutSignedVarint(snap.gauges[gi].second);
      ++gi;
    } else {
      w->PutU8(kMetricHistogram);
      PutMetricName(*histogram_name, w);
      PutHistogram(snap.histograms[hi].second, w);
      ++hi;
    }
  }
}

bool DecodeMetricsResponse(common::ByteReader* r,
                           obs::RegistrySnapshot* out) {
  *out = obs::RegistrySnapshot{};
  const uint8_t version = r->GetU8();
  if (!r->ok() || version != kMetricsPayloadVersion) return false;
  size_t n = 0;
  // Smallest instrument: kind + 1-byte name blob + 1-byte value = 4.
  if (!BoundedCount(*r, r->GetVarint(), 4, &n)) return false;
  std::string prev_name;
  for (size_t i = 0; i < n; ++i) {
    const uint8_t kind = r->GetU8();
    const uint64_t name_len = r->GetVarint();
    if (!r->ok() || kind > kMetricHistogram || name_len == 0 ||
        name_len > kMaxMetricNameBytes || name_len > r->remaining()) {
      return false;
    }
    const uint8_t* name_bytes =
        r->BorrowBytes(static_cast<size_t>(name_len));
    if (name_bytes == nullptr) return false;
    std::string name(reinterpret_cast<const char*>(name_bytes),
                     static_cast<size_t>(name_len));
    // The ascending-name rule makes the encoding canonical (one byte
    // stream per snapshot) and implies cross-kind uniqueness for free.
    if (i > 0 && name <= prev_name) return false;
    prev_name = name;
    switch (kind) {
      case kMetricCounter: {
        const uint64_t value = r->GetVarint();
        if (!r->ok()) return false;
        out->counters.emplace_back(std::move(name), value);
        break;
      }
      case kMetricGauge: {
        const int64_t value = r->GetSignedVarint();
        if (!r->ok()) return false;
        out->gauges.emplace_back(std::move(name), value);
        break;
      }
      default: {
        obs::HistogramSnapshot h;
        h.sum = r->GetVarint();
        size_t num_buckets = 0;
        // Smallest bucket entry: varint index + varint count = 2 bytes.
        if (!BoundedCount(*r, r->GetVarint(), 2, &num_buckets)) return false;
        h.buckets.reserve(num_buckets);
        uint32_t prev_index = 0;
        for (size_t b = 0; b < num_buckets; ++b) {
          uint32_t index = 0;
          if (!GetVarint32(r, &index)) return false;
          const uint64_t count = r->GetVarint();
          if (!r->ok() || index >= obs::Histogram::kNumBuckets ||
              count == 0 || (b > 0 && index <= prev_index)) {
            return false;
          }
          prev_index = index;
          h.count += count;
          h.buckets.emplace_back(index, count);
        }
        out->histograms.emplace_back(std::move(name), std::move(h));
        break;
      }
    }
  }
  return FinishPayload(*r);
}

void EncodeErrorBody(const ErrorBody& body, common::ByteWriter* w) {
  w->PutU16(static_cast<uint16_t>(body.code));
  const size_t len = std::min(body.message.size(), kMaxErrorMessageBytes);
  w->PutBlob(body.message.data(), len);
}

bool DecodeErrorBody(common::ByteReader* r, ErrorBody* out) {
  const uint16_t code = r->GetU16();
  const uint64_t len = r->GetVarint();
  if (!r->ok() || len > kMaxErrorMessageBytes || len > r->remaining()) {
    return false;
  }
  const uint8_t* bytes = r->BorrowBytes(static_cast<size_t>(len));
  if (bytes == nullptr || !FinishPayload(*r)) return false;
  if (code < static_cast<uint16_t>(ErrorCode::kBadVersion) ||
      code > static_cast<uint16_t>(ErrorCode::kOverloaded)) {
    return false;
  }
  out->code = static_cast<ErrorCode>(code);
  out->message.assign(reinterpret_cast<const char*>(bytes),
                      static_cast<size_t>(len));
  return true;
}

Frame MakeErrorFrame(uint64_t request_id, ErrorCode code,
                     std::string message) {
  common::ByteWriter w;
  EncodeErrorBody({code, std::move(message)}, &w);
  Frame frame;
  frame.op = Op::kError;
  frame.request_id = request_id;
  frame.payload = w.Release();
  return frame;
}

}  // namespace utcq::net
