#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace utcq::net {

namespace {

bool SendAll(int fd, const uint8_t* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

Client::~Client() { Close(); }

Client::Status Client::TransportError(std::string message) {
  Status status;
  status.ok = false;
  status.server_error = false;
  status.message = std::move(message);
  last_status_ = status;
  return status;
}

bool Client::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    TransportError("socket() failed");
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    TransportError("bad host address (IPv4 literal required)");
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Close();
    TransportError("connect() failed");
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  Frame request;
  request.op = Op::kHello;
  request.request_id = next_request_id_++;
  common::ByteWriter w;
  EncodeHelloRequest(HelloRequest{}, &w);
  request.payload = w.Release();

  Frame reply;
  const Status status = Exchange(request, Op::kHelloOk, &reply);
  if (!status.ok) {
    Close();
    return false;
  }
  common::ByteReader r(reply.payload);
  if (!DecodeHelloResponse(&r, &hello_)) {
    Close();
    TransportError("bad hello response payload");
    return false;
  }
  last_status_ = Status{.ok = true, .server_error = false, .code = ErrorCode::kInternal, .message = {}};
  return true;
}

void Client::Close() {
  if (fd_ >= 0) {
    // Best-effort goodbye; the server closes either way on EOF.
    Frame goodbye;
    goodbye.op = Op::kGoodbye;
    goodbye.request_id = next_request_id_++;
    const std::vector<uint8_t> bytes = EncodeFrame(goodbye);
    SendAll(fd_, bytes.data(), bytes.size());
    ::close(fd_);
    fd_ = -1;
  }
  hello_ = HelloResponse{};
  assembler_ = FrameAssembler{};
  outbox_.clear();
}

bool Client::SendFrame(const Frame& frame) {
  if (fd_ < 0) return false;
  const std::vector<uint8_t> bytes = EncodeFrame(frame);
  if (!SendAll(fd_, bytes.data(), bytes.size())) {
    TransportError("send() failed");
    return false;
  }
  return true;
}

bool Client::ReceiveFrame(Frame* out) {
  if (fd_ < 0) return false;
  std::vector<uint8_t> buf(16 * 1024);
  for (;;) {
    ErrorCode err = ErrorCode::kMalformed;
    const FrameAssembler::Status status = assembler_.Next(out, &err);
    if (status == FrameAssembler::Status::kFrame) return true;
    if (status == FrameAssembler::Status::kBad) {
      TransportError("broken frame stream from server");
      return false;
    }
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      TransportError("connection closed by server");
      return false;
    }
    assembler_.Push(buf.data(), static_cast<size_t>(n));
  }
}

Client::Status Client::Exchange(const Frame& request, Op expected,
                                Frame* reply) {
  if (fd_ < 0) return TransportError("not connected");
  if (!SendFrame(request)) return last_status_;
  if (!ReceiveFrame(reply)) return last_status_;
  if (reply->op == Op::kError) {
    Status status;
    status.server_error = true;
    common::ByteReader r(reply->payload);
    ErrorBody body;
    if (DecodeErrorBody(&r, &body)) {
      status.code = body.code;
      status.message = std::move(body.message);
    } else {
      status.message = "undecodable error frame";
    }
    last_status_ = status;
    return status;
  }
  if (reply->op != expected || reply->request_id != request.request_id) {
    return TransportError("response opcode or id mismatch");
  }
  last_status_ = Status{.ok = true, .server_error = false, .code = ErrorCode::kInternal, .message = {}};
  return last_status_;
}

Client::Status Client::Query(const serve::QueryRequest& req,
                             serve::QueryResult* out) {
  Frame request;
  request.op = Op::kQuery;
  request.request_id = next_request_id_++;
  common::ByteWriter w;
  EncodeQueryRequest(req, &w);
  request.payload = w.Release();
  Frame reply;
  Status status = Exchange(request, Op::kResult, &reply);
  if (!status.ok) return status;
  common::ByteReader r(reply.payload);
  if (!DecodeQueryResult(&r, out) || !FinishPayload(r)) {
    return TransportError("bad result payload");
  }
  return status;
}

Client::Status Client::Batch(const std::vector<serve::QueryRequest>& reqs,
                             std::vector<serve::QueryResult>* out) {
  Frame request;
  request.op = Op::kBatch;
  request.request_id = next_request_id_++;
  common::ByteWriter w;
  EncodeBatchRequest(reqs, &w);
  request.payload = w.Release();
  Frame reply;
  Status status = Exchange(request, Op::kBatchResult, &reply);
  if (!status.ok) return status;
  common::ByteReader r(reply.payload);
  if (!DecodeBatchResult(&r, out) || !FinishPayload(r) ||
      out->size() != reqs.size()) {
    return TransportError("bad batch result payload");
  }
  return status;
}

Client::Status Client::IngestPoint(uint64_t vehicle,
                                   const traj::RawPoint& point,
                                   IngestAck* out) {
  Frame request;
  request.op = Op::kIngestPoint;
  request.request_id = next_request_id_++;
  common::ByteWriter w;
  EncodeIngestPoint(IngestPointRequest{vehicle, point}, &w);
  request.payload = w.Release();
  Frame reply;
  Status status = Exchange(request, Op::kIngestAck, &reply);
  if (!status.ok) return status;
  common::ByteReader r(reply.payload);
  if (!DecodeIngestAck(&r, out)) return TransportError("bad ingest ack");
  return status;
}

Client::Status Client::IngestEnd(uint64_t vehicle, IngestAck* out) {
  Frame request;
  request.op = Op::kIngestEnd;
  request.request_id = next_request_id_++;
  common::ByteWriter w;
  EncodeIngestEnd(IngestEndRequest{vehicle}, &w);
  request.payload = w.Release();
  Frame reply;
  Status status = Exchange(request, Op::kIngestAck, &reply);
  if (!status.ok) return status;
  common::ByteReader r(reply.payload);
  if (!DecodeIngestAck(&r, out)) return TransportError("bad ingest ack");
  return status;
}

Client::Status Client::IngestAdvance(traj::Timestamp now, IngestAck* out) {
  Frame request;
  request.op = Op::kIngestAdvanceTime;
  request.request_id = next_request_id_++;
  common::ByteWriter w;
  EncodeIngestAdvance(IngestAdvanceRequest{now}, &w);
  request.payload = w.Release();
  Frame reply;
  Status status = Exchange(request, Op::kIngestAck, &reply);
  if (!status.ok) return status;
  common::ByteReader r(reply.payload);
  if (!DecodeIngestAck(&r, out)) return TransportError("bad ingest ack");
  return status;
}

Client::Status Client::Stats(StatsResponse* out) {
  Frame request;
  request.op = Op::kStats;
  request.request_id = next_request_id_++;
  Frame reply;
  Status status = Exchange(request, Op::kStatsResult, &reply);
  if (!status.ok) return status;
  common::ByteReader r(reply.payload);
  if (!DecodeStatsResponse(&r, out)) {
    return TransportError("bad stats payload");
  }
  return status;
}

Client::Status Client::Metrics(obs::RegistrySnapshot* out) {
  Frame request;
  request.op = Op::kMetrics;
  request.request_id = next_request_id_++;
  Frame reply;
  Status status = Exchange(request, Op::kMetricsResult, &reply);
  if (!status.ok) return status;
  common::ByteReader r(reply.payload);
  if (!DecodeMetricsResponse(&r, out)) {
    return TransportError("bad metrics payload");
  }
  return status;
}

uint64_t Client::SendQuery(const serve::QueryRequest& req) {
  Frame request;
  request.op = Op::kQuery;
  request.request_id = next_request_id_++;
  common::ByteWriter w;
  EncodeQueryRequest(req, &w);
  request.payload = w.Release();
  AppendFrame(request, &outbox_);
  return request.request_id;
}

bool Client::Flush() {
  if (fd_ < 0) return false;
  if (outbox_.empty()) return true;
  const bool ok = SendAll(fd_, outbox_.data(), outbox_.size());
  outbox_.clear();
  if (!ok) TransportError("send() failed");
  return ok;
}

Client::Status Client::Receive(uint64_t* request_id,
                               serve::QueryResult* out) {
  Frame reply;
  if (!ReceiveFrame(&reply)) return last_status_;
  *request_id = reply.request_id;
  if (reply.op == Op::kError) {
    Status status;
    status.server_error = true;
    common::ByteReader r(reply.payload);
    ErrorBody body;
    if (DecodeErrorBody(&r, &body)) {
      status.code = body.code;
      status.message = std::move(body.message);
    } else {
      status.message = "undecodable error frame";
    }
    last_status_ = status;
    return status;
  }
  if (reply.op != Op::kResult) {
    return TransportError("unexpected response opcode");
  }
  common::ByteReader r(reply.payload);
  if (!DecodeQueryResult(&r, out) || !FinishPayload(r)) {
    return TransportError("bad result payload");
  }
  last_status_ = Status{.ok = true, .server_error = false, .code = ErrorCode::kInternal, .message = {}};
  return last_status_;
}

}  // namespace utcq::net
