#ifndef UTCQ_NET_CLIENT_H_
#define UTCQ_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/wire.h"
#include "serve/query_engine.h"
#include "traj/types.h"

/// Client half of the network serving tier (DESIGN.md §14) — the exact
/// mirror of the server's Session policy, built on the same socket-free
/// net::wire codecs. Two API layers:
///
///   - The sync calls (Query, Batch, Ingest*, Stats) send one request and
///     block for its response; each returns a Status carrying the typed
///     ErrorCode when the server answered kError.
///   - The pipelined half (SendQuery / Flush / Receive) separates the
///     write and read sides, so a caller can keep many requests in flight
///     on one connection — this is what the load generator and the
///     differential harness drive.
///
/// Not thread-safe: one Client per thread, like a socket.

namespace utcq::net {

class Client {
 public:
  /// The outcome of one request/response exchange.
  struct Status {
    /// Transport and protocol both fine; the out-param is filled.
    bool ok = false;
    /// True when the server answered a well-formed kError frame; `code`
    /// and `message` then carry its body. False with !ok means the
    /// transport failed (connect/send/recv/framing).
    bool server_error = false;
    ErrorCode code = ErrorCode::kInternal;
    std::string message;
  };

  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects and completes the Hello handshake. False on refusal at
  /// either level (details in last_status()).
  bool Connect(const std::string& host, uint16_t port);

  /// Goodbye handshake then close. Safe on a dead connection.
  void Close();

  bool connected() const { return fd_ >= 0; }
  /// The server's Hello response (valid while connected()).
  const HelloResponse& hello() const { return hello_; }
  const Status& last_status() const { return last_status_; }

  // --- sync API ---

  Status Query(const serve::QueryRequest& req, serve::QueryResult* out);
  Status Batch(const std::vector<serve::QueryRequest>& reqs,
               std::vector<serve::QueryResult>* out);
  Status IngestPoint(uint64_t vehicle, const traj::RawPoint& point,
                     IngestAck* out);
  Status IngestEnd(uint64_t vehicle, IngestAck* out);
  Status IngestAdvance(traj::Timestamp now, IngestAck* out);
  Status Stats(StatsResponse* out);
  /// Fetches the server's full instrument snapshot (kMetrics). A server
  /// without a registry answers kNotSupported (surfaced as server_error).
  Status Metrics(obs::RegistrySnapshot* out);

  // --- pipelined API ---

  /// Queues one kQuery frame in the local write buffer and returns its
  /// request id. Nothing hits the socket until Flush().
  uint64_t SendQuery(const serve::QueryRequest& req);
  /// Writes the queued frames in one burst (one writev-sized send), which
  /// is what lets the server fold them into a single ExecuteBatch.
  bool Flush();
  /// Blocks for the next response frame. On a kResult, fills request_id +
  /// out and returns ok. On a kError, returns server_error with the code.
  Status Receive(uint64_t* request_id, serve::QueryResult* out);

  // --- frame-level access (tests, load generator) ---

  /// Sends one raw frame immediately. Exposed so tests can inject
  /// malformed, mis-versioned or unknown-opcode frames.
  bool SendFrame(const Frame& frame);
  /// Blocks for the next frame off the wire.
  bool ReceiveFrame(Frame* out);

 private:
  Status Exchange(const Frame& request, Op expected, Frame* reply);
  Status TransportError(std::string message);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  HelloResponse hello_;
  FrameAssembler assembler_;
  std::vector<uint8_t> outbox_;
  Status last_status_;
};

}  // namespace utcq::net

#endif  // UTCQ_NET_CLIENT_H_
