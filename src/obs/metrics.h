#ifndef UTCQ_OBS_METRICS_H_
#define UTCQ_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace utcq::obs {

/// Unified metrics layer (DESIGN.md §15). Three instrument kinds —
/// monotonic Counter, signed Gauge, log-bucketed Histogram — owned by a
/// MetricRegistry and read out as immutable snapshots. Every instrument's
/// write path is a handful of relaxed atomic adds: no locks, no
/// allocation, so recording is legal inside the decode/serve hot paths
/// that repo_lint R4/R5 keep allocation-free.
///
/// Ownership: instruments live in their registry and are handed out by
/// reference; components resolve their instruments once at construction
/// and never touch the registry (which does lock) on the hot path.

/// Monotonic event counter.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous signed level (resident bytes, open connections, queue
/// depth). Mutated by deltas so concurrent writers compose; Set is for
/// single-writer gauges only.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Sub(int64_t delta) { Add(-delta); }
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Read-side view of a Histogram: total count, sum of recorded values and
/// the sparse list of non-empty buckets, from which percentiles are
/// extracted. `count` is derived from the bucket counts, so it is always
/// exactly their sum — a snapshot is internally consistent even when
/// taken under concurrent writers.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  /// (bucket index, count) with strictly ascending indices and counts > 0.
  std::vector<std::pair<uint32_t, uint64_t>> buckets;

  /// Value at quantile q in [0, 1]. Exact for values < 16 (width-1
  /// buckets); within at most one sub-bucket width (~12.5%) above, with
  /// linear interpolation inside the bucket. Returns 0.0 for an empty
  /// histogram.
  double Percentile(double q) const;
  double p50() const { return Percentile(0.50); }
  double p90() const { return Percentile(0.90); }
  double p99() const { return Percentile(0.99); }
  double p999() const { return Percentile(0.999); }

  /// Adds `other`'s samples into this snapshot (used to aggregate the
  /// per-kind latency histograms into one distribution).
  void MergeFrom(const HistogramSnapshot& other);
};

/// Fixed-layout log-linear histogram over uint64 values (HdrHistogram's
/// bucketing scheme). Each power-of-two octave is split into
/// 2^kSubBucketBits sub-buckets, so any value maps to a bucket whose
/// width is at most value/8 — bounded ~12.5% relative error at every
/// scale — and the layout is a compile-time constant shared by every
/// histogram, which is what lets the wire encoding ship bare bucket
/// indices (DESIGN.md §14).
///
/// Record() is two relaxed fetch_adds: lock-free, allocation-free,
/// wait-free on x86. Memory: kNumBuckets * 8 bytes (~4 KiB) per
/// histogram, paid once at registration.
class Histogram {
 public:
  static constexpr uint32_t kSubBucketBits = 3;  // 8 sub-buckets per octave
  static constexpr uint32_t kSubBuckets = 1u << kSubBucketBits;
  /// Values < 2*kSubBuckets get exact width-1 buckets; each octave above
  /// contributes kSubBuckets buckets, up to the 2^63 octave.
  static constexpr uint32_t kNumBuckets =
      2 * kSubBuckets + (63 - kSubBucketBits) * kSubBuckets;  // 496

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Maps a value to its bucket. Total order preserving: monotone in v,
  /// exact (width 1) for v < 16.
  static constexpr uint32_t BucketIndex(uint64_t v) {
    if (v < 2 * kSubBuckets) return static_cast<uint32_t>(v);
    const uint32_t log = 63 - static_cast<uint32_t>(std::countl_zero(v));
    const uint32_t sub = static_cast<uint32_t>(
        (v >> (log - kSubBucketBits)) - kSubBuckets);
    return (log - kSubBucketBits + 1) * kSubBuckets + sub;
  }

  /// Smallest value landing in bucket `index` (inverse of BucketIndex).
  static constexpr uint64_t BucketLowerBound(uint32_t index) {
    if (index < 2 * kSubBuckets) return index;
    const uint32_t log = index / kSubBuckets + kSubBucketBits - 1;
    const uint64_t sub = index % kSubBuckets;
    return (uint64_t{1} << log) + (sub << (log - kSubBucketBits));
  }

  /// Width of bucket `index` (the bucket covers [lower, lower + width)).
  static constexpr uint64_t BucketWidth(uint32_t index) {
    if (index < 2 * kSubBuckets) return 1;
    return uint64_t{1} << (index / kSubBuckets - 1);
  }

  /// Hot-path write: two relaxed atomic adds, nothing else.
  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// Consistent-by-construction read: count is the sum of the bucket
  /// counts captured, never a separately raced total. `sum` may lag the
  /// captured buckets by in-flight Records (it is forced to 0 when no
  /// bucket has been captured, so empty snapshots are exactly empty).
  HistogramSnapshot Snapshot() const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

/// One instrument sample set, sorted by name within each kind. Produced
/// by MetricRegistry::Snapshot, shipped over the wire as kMetricsResult
/// (src/net/wire.h) and rendered by obs::ToPrometheusText.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Name-keyed owner of instruments. Get* registers on first use and
/// returns a reference that stays valid for the registry's lifetime;
/// calling Get* again with the same name returns the same instrument, so
/// independently-constructed components can share one series. Registering
/// the same name as two different kinds is a programming error and
/// aborts (the wire encoding requires one kind per name).
///
/// Components take a `MetricRegistry*` and treat nullptr as "own a
/// private registry": per-instance stats stay exact in tests while a
/// server wires every layer into one registry (usually Global()) for
/// export.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Captures every instrument, names sorted ascending within each kind
  /// (and unique across kinds, by the one-kind-per-name rule).
  RegistrySnapshot Snapshot() const;

  /// The process-wide registry. Process-scoped components (the shared
  /// ThreadPool) always register here; request-scoped components only
  /// when told to.
  static MetricRegistry& Global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& GetEntry(std::string_view name, Kind kind);

  mutable common::Mutex mu_;
  /// std::map: stable node addresses (references survive later inserts)
  /// and already sorted for Snapshot.
  std::map<std::string, Entry, std::less<>> entries_ UTCQ_GUARDED_BY(mu_);
};

}  // namespace utcq::obs

#endif  // UTCQ_OBS_METRICS_H_
