#ifndef UTCQ_OBS_CLOCK_H_
#define UTCQ_OBS_CLOCK_H_

#include <cstdint>

#include "obs/metrics.h"

namespace utcq::obs {

/// Injectable monotonic time source for the timing boundaries.
///
/// The clock-injection rule (DESIGN.md §15): src/core, src/strategies,
/// src/ted and src/traj never read a clock — repo_lint R6 enforces it —
/// so all timing happens where requests enter the system (serve, ingest,
/// net, bench). Those layers take a `const Clock*` with nullptr meaning
/// Real(), which is what lets tests drive latency histograms and the
/// slow-query log deterministically with a fake clock.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonic nanoseconds since an arbitrary epoch. Latency instruments
  /// record nanoseconds so sub-microsecond operations still land in
  /// non-zero buckets; readers convert to µs for reporting.
  virtual uint64_t NowNanos() const = 0;

  /// The process steady clock.
  static const Clock& Real();
};

/// Measures a scope and records the elapsed nanoseconds into a
/// histogram — the trace-span primitive. Construction and destruction
/// are two clock reads and one Histogram::Record: no locks, no
/// allocation.
class ScopedTimer {
 public:
  ScopedTimer(Histogram& histogram, const Clock& clock)
      : histogram_(histogram), clock_(clock), start_(clock.NowNanos()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { histogram_.Record(ElapsedNanos()); }

  uint64_t ElapsedNanos() const {
    const uint64_t now = clock_.NowNanos();
    return now > start_ ? now - start_ : 0;
  }

 private:
  Histogram& histogram_;
  const Clock& clock_;
  const uint64_t start_;
};

}  // namespace utcq::obs

#endif  // UTCQ_OBS_CLOCK_H_
