#include "obs/metrics.h"

#include <cstdio>
#include <cstdlib>

namespace utcq::obs {

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile sample among `count` samples, matching the
  // nearest-rank-with-interpolation convention the old QueryEngine latency
  // ring used: rank 0 is the minimum, rank count-1 the maximum.
  const double rank = q * static_cast<double>(count - 1);
  uint64_t below = 0;
  for (const auto& [index, n] : buckets) {
    const double cumulative = static_cast<double>(below + n);
    if (cumulative > rank) {
      const double lower =
          static_cast<double>(Histogram::BucketLowerBound(index));
      const uint64_t width = Histogram::BucketWidth(index);
      if (width <= 1) return lower;  // exact bucket: the value itself
      // Spread the bucket's samples uniformly over [lower, lower+width-1]
      // and interpolate to the fractional rank within the bucket.
      const double within =
          (rank - static_cast<double>(below)) / static_cast<double>(n);
      return lower + static_cast<double>(width - 1) * within;
    }
    below += n;
  }
  // Unreachable when count == sum of bucket counts; keep a sane fallback.
  return buckets.empty()
             ? 0.0
             : static_cast<double>(
                   Histogram::BucketLowerBound(buckets.back().first));
}

void HistogramSnapshot::MergeFrom(const HistogramSnapshot& other) {
  std::vector<std::pair<uint32_t, uint64_t>> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  size_t i = 0;
  size_t j = 0;
  while (i < buckets.size() || j < other.buckets.size()) {
    if (j == other.buckets.size() ||
        (i < buckets.size() && buckets[i].first < other.buckets[j].first)) {
      merged.push_back(buckets[i++]);
    } else if (i == buckets.size() ||
               other.buckets[j].first < buckets[i].first) {
      merged.push_back(other.buckets[j++]);
    } else {
      merged.emplace_back(buckets[i].first,
                          buckets[i].second + other.buckets[j].second);
      ++i;
      ++j;
    }
  }
  buckets = std::move(merged);
  count += other.count;
  sum += other.sum;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  // Read sum first: a Record() racing with the snapshot bumps its bucket
  // before its sum, so reading in the opposite order keeps the captured
  // sum from including samples whose buckets we then miss.
  snap.sum = sum_.load(std::memory_order_relaxed);
  for (uint32_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) {
      snap.buckets.emplace_back(i, n);
      snap.count += n;
    }
  }
  if (snap.count == 0) snap.sum = 0;
  return snap;
}

MetricRegistry::Entry& MetricRegistry::GetEntry(std::string_view name,
                                                Kind kind) {
  common::MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  } else if (it->second.kind != kind) {
    std::fprintf(stderr,
                 "MetricRegistry: instrument '%.*s' registered twice with "
                 "different kinds\n",
                 static_cast<int>(name.size()), name.data());
    std::abort();
  }
  return it->second;
}

Counter& MetricRegistry::GetCounter(std::string_view name) {
  return *GetEntry(name, Kind::kCounter).counter;
}

Gauge& MetricRegistry::GetGauge(std::string_view name) {
  return *GetEntry(name, Kind::kGauge).gauge;
}

Histogram& MetricRegistry::GetHistogram(std::string_view name) {
  return *GetEntry(name, Kind::kHistogram).histogram;
}

RegistrySnapshot MetricRegistry::Snapshot() const {
  RegistrySnapshot snap;
  common::MutexLock lock(mu_);
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        snap.counters.emplace_back(name, entry.counter->value());
        break;
      case Kind::kGauge:
        snap.gauges.emplace_back(name, entry.gauge->value());
        break;
      case Kind::kHistogram:
        snap.histograms.emplace_back(name, entry.histogram->Snapshot());
        break;
    }
  }
  return snap;
}

MetricRegistry& MetricRegistry::Global() {
  // Function-local static: any component that registers at construction
  // forces the registry to be constructed first and therefore destroyed
  // after it (the shared ThreadPool relies on this, thread_pool.cc).
  static MetricRegistry registry;
  return registry;
}

}  // namespace utcq::obs
