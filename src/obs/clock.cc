#include "obs/clock.h"

#include <chrono>

namespace utcq::obs {

namespace {

class RealClock final : public Clock {
 public:
  uint64_t NowNanos() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

}  // namespace

const Clock& Clock::Real() {
  static const RealClock clock;
  return clock;
}

}  // namespace utcq::obs
