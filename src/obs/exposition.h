#ifndef UTCQ_OBS_EXPOSITION_H_
#define UTCQ_OBS_EXPOSITION_H_

#include <string>

#include "obs/metrics.h"

namespace utcq::obs {

/// Renders a registry snapshot in the Prometheus text exposition format
/// (one `# TYPE` line per series; histograms as cumulative `_bucket{le=}`
/// series plus `_sum`/`_count`). Instrument names are dotted lowercase
/// internally; here dots become underscores and everything gains a
/// `utcq_` prefix, e.g. `serve.cache.hits` → `utcq_serve_cache_hits`.
///
/// Bucket `le` labels are the largest value the bucket holds (recorded
/// values are integers, so `le` is exact, not a lossy boundary).
std::string ToPrometheusText(const RegistrySnapshot& snapshot);

}  // namespace utcq::obs

#endif  // UTCQ_OBS_EXPOSITION_H_
