#include "obs/exposition.h"

#include <cinttypes>
#include <cstdio>

namespace utcq::obs {

namespace {

std::string SanitizedName(const std::string& name) {
  std::string out = "utcq_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendU64(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void AppendI64(std::string& out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

}  // namespace

std::string ToPrometheusText(const RegistrySnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = SanitizedName(name);
    out += "# TYPE " + metric + " counter\n" + metric + " ";
    AppendU64(out, value);
    out += "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = SanitizedName(name);
    out += "# TYPE " + metric + " gauge\n" + metric + " ";
    AppendI64(out, value);
    out += "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string metric = SanitizedName(name);
    out += "# TYPE " + metric + " histogram\n";
    uint64_t cumulative = 0;
    for (const auto& [index, count] : hist.buckets) {
      cumulative += count;
      const uint64_t le = Histogram::BucketLowerBound(index) +
                          Histogram::BucketWidth(index) - 1;
      out += metric + "_bucket{le=\"";
      AppendU64(out, le);
      out += "\"} ";
      AppendU64(out, cumulative);
      out += "\n";
    }
    out += metric + "_bucket{le=\"+Inf\"} ";
    AppendU64(out, hist.count);
    out += "\n" + metric + "_sum ";
    AppendU64(out, hist.sum);
    out += "\n" + metric + "_count ";
    AppendU64(out, hist.count);
    out += "\n";
  }
  return out;
}

}  // namespace utcq::obs
