#include "ted/ted_query.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_set>

namespace utcq::ted {

using network::Rect;
using traj::NetworkPosition;
using traj::Timestamp;
using traj::TrajectoryInstance;

namespace {

/// Trusts a handle only when its shape matches the trajectory's meta (the
/// baseline stores every instance in ref_insts; see traj::DecodedTraj).
const traj::DecodedTraj* UsableHandle(const TedTrajMeta& meta,
                                      const traj::DecodedTraj* dt) {
  if (dt == nullptr) return nullptr;
  if (dt->times.size() != meta.n_points ||
      dt->ref_insts.size() != meta.instances.size() ||
      !dt->nref_insts.empty()) {
    return nullptr;
  }
  return dt;
}

}  // namespace

traj::DecodedTraj TedQueryProcessor::DecodeTraj(size_t traj_idx) const {
  const TedTrajMeta& meta = compressed_.meta(traj_idx);
  traj::DecodedTraj dt;
  dt.times = compressed_.DecodeTimes(traj_idx);
  dt.ref_insts.resize(meta.instances.size());
  for (size_t w = 0; w < meta.instances.size(); ++w) {
    dt.ref_insts[w] = compressed_.DecodeInstance(net_, traj_idx, w);
  }
  return dt;
}

std::vector<traj::WhereHit> TedQueryProcessor::Where(size_t traj_idx,
                                                     Timestamp t,
                                                     double alpha) const {
  return WhereImpl(traj_idx, t, alpha, nullptr);
}

std::vector<traj::WhereHit> TedQueryProcessor::Where(
    size_t traj_idx, Timestamp t, double alpha,
    const traj::DecodedTraj& dt) const {
  return WhereImpl(traj_idx, t, alpha, &dt);
}

std::vector<traj::WhereHit> TedQueryProcessor::WhereImpl(
    size_t traj_idx, Timestamp t, double alpha,
    const traj::DecodedTraj* dt) const {
  std::vector<traj::WhereHit> hits;
  if (traj_idx >= compressed_.num_trajectories()) return hits;
  const TedTrajMeta& meta = compressed_.meta(traj_idx);
  dt = UsableHandle(meta, dt);
  if (t < meta.t_first || t > meta.t_last) return hits;
  const std::vector<Timestamp> times_storage =
      dt != nullptr ? std::vector<Timestamp>()
                    : compressed_.DecodeTimes(traj_idx);
  const std::vector<Timestamp>& times =
      dt != nullptr ? dt->times : times_storage;
  for (size_t w = 0; w < meta.instances.size(); ++w) {
    if (meta.instances[w].p_quantized < alpha) continue;
    std::optional<TrajectoryInstance> inst_storage;
    const TrajectoryInstance* inst = traj::SlotOrDecode(
        dt, &traj::DecodedTraj::ref_insts, static_cast<uint32_t>(w),
        inst_storage,
        [&] { return compressed_.DecodeInstance(net_, traj_idx, w); });
    if (inst == nullptr) continue;
    const auto pos = traj::PositionAtTime(net_, *inst, times, t);
    if (pos.has_value()) {
      hits.push_back({static_cast<uint32_t>(w), inst->probability, *pos});
    }
  }
  return hits;
}

std::vector<traj::WhenHit> TedQueryProcessor::When(size_t traj_idx,
                                                   network::EdgeId edge,
                                                   double rd,
                                                   double alpha) const {
  return WhenImpl(traj_idx, edge, rd, alpha, nullptr);
}

std::vector<traj::WhenHit> TedQueryProcessor::When(
    size_t traj_idx, network::EdgeId edge, double rd, double alpha,
    const traj::DecodedTraj& dt) const {
  return WhenImpl(traj_idx, edge, rd, alpha, &dt);
}

std::vector<traj::WhenHit> TedQueryProcessor::WhenImpl(
    size_t traj_idx, network::EdgeId edge, double rd, double alpha,
    const traj::DecodedTraj* dt) const {
  std::vector<traj::WhenHit> hits;
  if (traj_idx >= compressed_.num_trajectories()) return hits;
  const TedTrajMeta& meta = compressed_.meta(traj_idx);
  dt = UsableHandle(meta, dt);
  const std::vector<Timestamp> times_storage =
      dt != nullptr ? std::vector<Timestamp>()
                    : compressed_.DecodeTimes(traj_idx);
  const std::vector<Timestamp>& times =
      dt != nullptr ? dt->times : times_storage;
  // Widen the sampled span by the D quantization error (see core query).
  const double tol =
      2.0 * compressed_.eta_d() * net_.edge(edge).length + 1e-6;
  for (size_t w = 0; w < meta.instances.size(); ++w) {
    if (meta.instances[w].p_quantized < alpha) continue;
    std::optional<TrajectoryInstance> inst_storage;
    const TrajectoryInstance* inst = traj::SlotOrDecode(
        dt, &traj::DecodedTraj::ref_insts, static_cast<uint32_t>(w),
        inst_storage,
        [&] { return compressed_.DecodeInstance(net_, traj_idx, w); });
    if (inst == nullptr) continue;
    for (const Timestamp t :
         traj::TimesAtPosition(net_, *inst, times, edge, rd, tol)) {
      hits.push_back({static_cast<uint32_t>(w), inst->probability, t});
    }
  }
  return hits;
}

traj::RangeResult TedQueryProcessor::Range(const Rect& region, Timestamp tq,
                                           double alpha) const {
  return RangeImpl(region, tq, alpha, nullptr);
}

traj::RangeResult TedQueryProcessor::Range(
    const Rect& region, Timestamp tq, double alpha,
    const traj::DecodedProvider& provider) const {
  return RangeImpl(region, tq, alpha, &provider);
}

traj::RangeResult TedQueryProcessor::RangeImpl(
    const Rect& region, Timestamp tq, double alpha,
    const traj::DecodedProvider* provider) const {
  traj::RangeResult result;

  // Candidate trajectories: active at tq and passing a region cell that
  // overlaps RE.
  const auto& active = index_.TrajectoriesAt(tq);
  std::unordered_set<uint32_t> active_set(active.begin(), active.end());

  std::unordered_set<uint32_t> candidates;
  for (const network::RegionId re : index_.grid().RegionsInRect(region)) {
    for (const TedIndex::SpatialTuple& tup : index_.InstancesIn(re)) {
      if (active_set.count(tup.traj) > 0) candidates.insert(tup.traj);
    }
  }

  std::vector<uint32_t> ordered(candidates.begin(), candidates.end());
  std::sort(ordered.begin(), ordered.end());
  for (const uint32_t j : ordered) {
    const TedTrajMeta& meta = compressed_.meta(j);
    if (tq < meta.t_first || tq > meta.t_last) continue;
    std::shared_ptr<const traj::DecodedTraj> pinned;
    if (provider != nullptr && *provider) pinned = (*provider)(j);
    const traj::DecodedTraj* dt = UsableHandle(meta, pinned.get());
    const std::vector<Timestamp> times_storage =
        dt != nullptr ? std::vector<Timestamp>() : compressed_.DecodeTimes(j);
    const std::vector<Timestamp>& times =
        dt != nullptr ? dt->times : times_storage;
    double overlap_p = 0.0;
    for (size_t w = 0; w < meta.instances.size(); ++w) {
      std::optional<TrajectoryInstance> inst_storage;
      const TrajectoryInstance* inst = traj::SlotOrDecode(
          dt, &traj::DecodedTraj::ref_insts, static_cast<uint32_t>(w),
          inst_storage,
          [&] { return compressed_.DecodeInstance(net_, j, w); });
      if (inst == nullptr) continue;
      const auto pos = traj::PositionAtTime(net_, *inst, times, tq);
      if (!pos.has_value()) continue;
      const network::Vertex xy = net_.PointOnEdge(pos->edge, pos->ndist);
      if (region.Contains(xy.x, xy.y)) {
        overlap_p += meta.instances[w].p_quantized;
      }
    }
    if (overlap_p >= alpha) result.push_back(j);
  }
  return result;
}

}  // namespace utcq::ted
