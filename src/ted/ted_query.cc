#include "ted/ted_query.h"

#include <algorithm>
#include <unordered_set>

namespace utcq::ted {

using network::Rect;
using traj::NetworkPosition;
using traj::Timestamp;

std::vector<traj::WhereHit> TedQueryProcessor::Where(size_t traj_idx,
                                                     Timestamp t,
                                                     double alpha) const {
  std::vector<traj::WhereHit> hits;
  const TedTrajMeta& meta = compressed_.meta(traj_idx);
  if (t < meta.t_first || t > meta.t_last) return hits;
  const auto times = compressed_.DecodeTimes(traj_idx);
  for (size_t w = 0; w < meta.instances.size(); ++w) {
    if (meta.instances[w].p_quantized < alpha) continue;
    const auto inst = compressed_.DecodeInstance(net_, traj_idx, w);
    if (!inst.has_value()) continue;
    const auto pos = traj::PositionAtTime(net_, *inst, times, t);
    if (pos.has_value()) {
      hits.push_back({static_cast<uint32_t>(w), inst->probability, *pos});
    }
  }
  return hits;
}

std::vector<traj::WhenHit> TedQueryProcessor::When(size_t traj_idx,
                                                   network::EdgeId edge,
                                                   double rd,
                                                   double alpha) const {
  std::vector<traj::WhenHit> hits;
  const TedTrajMeta& meta = compressed_.meta(traj_idx);
  const auto times = compressed_.DecodeTimes(traj_idx);
  // Widen the sampled span by the D quantization error (see core query).
  const double tol =
      2.0 * compressed_.eta_d() * net_.edge(edge).length + 1e-6;
  for (size_t w = 0; w < meta.instances.size(); ++w) {
    if (meta.instances[w].p_quantized < alpha) continue;
    const auto inst = compressed_.DecodeInstance(net_, traj_idx, w);
    if (!inst.has_value()) continue;
    for (const Timestamp t :
         traj::TimesAtPosition(net_, *inst, times, edge, rd, tol)) {
      hits.push_back({static_cast<uint32_t>(w), inst->probability, t});
    }
  }
  return hits;
}

traj::RangeResult TedQueryProcessor::Range(const Rect& region, Timestamp tq,
                                           double alpha) const {
  traj::RangeResult result;

  // Candidate trajectories: active at tq and passing a region cell that
  // overlaps RE.
  const auto& active = index_.TrajectoriesAt(tq);
  std::unordered_set<uint32_t> active_set(active.begin(), active.end());

  std::unordered_set<uint32_t> candidates;
  for (const network::RegionId re : index_.grid().RegionsInRect(region)) {
    for (const TedIndex::SpatialTuple& tup : index_.InstancesIn(re)) {
      if (active_set.count(tup.traj) > 0) candidates.insert(tup.traj);
    }
  }

  std::vector<uint32_t> ordered(candidates.begin(), candidates.end());
  std::sort(ordered.begin(), ordered.end());
  for (const uint32_t j : ordered) {
    const TedTrajMeta& meta = compressed_.meta(j);
    if (tq < meta.t_first || tq > meta.t_last) continue;
    const auto times = compressed_.DecodeTimes(j);
    double overlap_p = 0.0;
    for (size_t w = 0; w < meta.instances.size(); ++w) {
      const auto inst = compressed_.DecodeInstance(net_, j, w);
      if (!inst.has_value()) continue;
      const auto pos = traj::PositionAtTime(net_, *inst, times, tq);
      if (!pos.has_value()) continue;
      const network::Vertex xy = net_.PointOnEdge(pos->edge, pos->ndist);
      if (region.Contains(xy.x, xy.y)) {
        overlap_p += meta.instances[w].p_quantized;
      }
    }
    if (overlap_p >= alpha) result.push_back(j);
  }
  return result;
}

}  // namespace utcq::ted
