#ifndef UTCQ_TED_TED_REPR_H_
#define UTCQ_TED_TED_REPR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "traj/types.h"

namespace utcq::ted {

/// One (index, timestamp) anchor of TED's time-sequence representation.
using TimePair = std::pair<uint32_t, traj::Timestamp>;

/// Builds TED's T(Tr) representation (Section 2.2): timestamps with
/// unchanged sample intervals are omitted, i.e. the anchors are the
/// endpoints of maximal arithmetic runs. Reproduces the paper's example:
/// 7 timestamps with intervals (240,241,240,239,240,240) keep indexes
/// {0,1,2,3,4,6}.
std::vector<TimePair> BuildTimePairs(const std::vector<traj::Timestamp>& times);

/// Losslessly reconstructs the full time sequence from the anchors.
std::vector<traj::Timestamp> ExpandTimePairs(const std::vector<TimePair>& pairs);

}  // namespace utcq::ted

#endif  // UTCQ_TED_TED_REPR_H_
