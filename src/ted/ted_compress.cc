#include "ted/ted_compress.h"

#include <algorithm>
#include <map>

#include "common/bignum.h"
#include "common/varint.h"
#include "ted/ted_repr.h"
#include "traj/interpolate.h"

namespace utcq::ted {

using common::BitsFor;
using common::BitWriter;

TedCompressed TedCompressor::Compress(const traj::UncertainCorpus& corpus) const {
  TedCompressed out;
  out.params_ = params_;
  out.entry_bits_ = BitsFor(std::max<uint32_t>(net_.max_out_degree(), 1));
  out.d_codec_ = common::PddpCodec(params_.eta_d);
  out.p_codec_ = common::PddpCodec(params_.eta_p);

  common::MemoryTracker mem;

  // Entry vectors retained corpus-wide for the matrix transformation.
  struct PendingE {
    size_t traj;
    size_t inst;
    std::vector<uint32_t> entries;
  };
  std::vector<PendingE> pending;

  out.metas_.reserve(corpus.size());
  for (size_t j = 0; j < corpus.size(); ++j) {
    const traj::UncertainTrajectory& tu = corpus[j];
    TedTrajMeta meta;
    meta.n_points = static_cast<uint32_t>(tu.times.size());
    meta.t_first = tu.times.front();
    meta.t_last = tu.times.back();

    // --- T: (i, t) anchor pairs ---
    meta.t_pos = out.t_stream_.size_bits();
    const auto pairs = BuildTimePairs(tu.times);
    const size_t t_before = out.t_stream_.size_bits();
    common::PutVarint(out.t_stream_, tu.times.size());
    common::PutVarint(out.t_stream_, pairs.size());
    const int idx_bits = BitsFor(tu.times.size() - 1);
    for (const auto& [i, t] : pairs) {
      out.t_stream_.PutBits(i, idx_bits);
      out.t_stream_.PutBits(static_cast<uint64_t>(t), 17);
    }
    out.compressed_bits_.t_bits += out.t_stream_.size_bits() - t_before;

    // --- per instance ---
    for (size_t w = 0; w < tu.instances.size(); ++w) {
      const traj::TrajectoryInstance& inst = tu.instances[w];
      TedInstanceMeta im;

      im.sv_pos = out.sv_stream_.size_bits();
      out.sv_stream_.PutBits(traj::StartVertex(net_, inst), 32);
      out.compressed_bits_.e_bits += 32;  // SV folded into E (DESIGN §2)

      auto entries = traj::BuildEdgeSequence(net_, inst);
      im.e_len = static_cast<uint32_t>(entries.size());

      const auto tflag = traj::BuildTimeFlagBits(inst);
      im.tflag_pos = out.tflag_stream_.size_bits();
      for (const uint8_t b : tflag) out.tflag_stream_.PutBit(b != 0);
      out.compressed_bits_.tflag_bits += tflag.size();

      im.d_pos = out.d_stream_.size_bits();
      im.n_locs = static_cast<uint32_t>(inst.locations.size());
      const size_t d_before = out.d_stream_.size_bits();
      for (const auto& loc : inst.locations) {
        out.d_codec_.Encode(out.d_stream_, loc.rd);
      }
      out.compressed_bits_.d_bits += out.d_stream_.size_bits() - d_before;

      im.p_pos = out.p_stream_.size_bits();
      const size_t p_before = out.p_stream_.size_bits();
      out.p_codec_.Encode(out.p_stream_, inst.probability);
      out.compressed_bits_.p_bits += out.p_stream_.size_bits() - p_before;
      im.p_quantized =
          static_cast<float>(out.p_codec_.Quantize(inst.probability));

      if (params_.matrix_compression) {
        mem.Add(entries.size() * sizeof(uint32_t) + sizeof(PendingE));
        pending.push_back({j, w, std::move(entries)});
      } else {
        im.e_pos = out.e_plain_.size_bits();
        for (const uint32_t e : entries) {
          out.e_plain_.PutBits(e, out.entry_bits_);
        }
        out.compressed_bits_.e_bits += entries.size() * out.entry_bits_;
      }
      meta.instances.push_back(im);
    }
    out.metas_.push_back(std::move(meta));
  }

  if (params_.matrix_compression) {
    // Step ii: group codes by length; step iii: per-column bases.
    std::map<uint32_t, std::vector<size_t>> by_length;
    for (size_t i = 0; i < pending.size(); ++i) {
      by_length[static_cast<uint32_t>(pending[i].entries.size())].push_back(i);
    }
    mem.Add(pending.size() * sizeof(size_t) +
            by_length.size() * sizeof(std::vector<size_t>));

    const int base_field_bits = out.entry_bits_ + 1;  // bases reach 2^eb
    for (auto& [length, rows] : by_length) {
      TedGroup group;
      group.entry_count = length;
      group.rows = static_cast<uint32_t>(rows.size());
      group.col_bases.assign(length, 1);
      // Column maxima over the A x B matrix define the bases b_c.
      for (const size_t r : rows) {
        const auto& entries = pending[r].entries;
        for (uint32_t c = 0; c < length; ++c) {
          group.col_bases[c] = std::max(group.col_bases[c], entries[c] + 1);
        }
      }
      // Row width: ceil(log2(prod b_c)) via the maximum row value prod-1,
      // built digit-wise so no subtraction is needed.
      common::BigNum max_row;
      for (size_t c = length; c-- > 0;) {
        max_row.MulAdd(group.col_bases[c], group.col_bases[c] - 1);
      }
      group.row_width_bits = max_row.BitLength();
      mem.Add(static_cast<size_t>(group.row_width_bits) * rows.size() / 8 +
              length * sizeof(uint32_t));

      // Header: group length + row count (64) plus one base field per
      // column. Only keep the matrix when it beats plain coding — a group
      // of very few rows cannot amortize the header.
      const uint64_t header_bits =
          64 + static_cast<uint64_t>(base_field_bits) * length;
      const uint64_t matrix_bits =
          header_bits +
          static_cast<uint64_t>(group.row_width_bits) * rows.size();
      const uint64_t plain_bits = static_cast<uint64_t>(out.entry_bits_) *
                                  length * rows.size();
      if (matrix_bits >= plain_bits) {
        for (const size_t r : rows) {
          auto& im = out.metas_[pending[r].traj].instances[pending[r].inst];
          im.group = kNoGroup;
          im.e_pos = out.e_plain_.size_bits();
          for (const uint32_t e : pending[r].entries) {
            out.e_plain_.PutBits(e, out.entry_bits_);
          }
        }
        out.compressed_bits_.e_bits += plain_bits;
        continue;
      }

      const uint32_t group_id = static_cast<uint32_t>(out.groups_.size());
      uint32_t row_no = 0;
      for (const size_t r : rows) {
        auto& im = out.metas_[pending[r].traj].instances[pending[r].inst];
        im.group = group_id;
        im.row = row_no++;
        // Mixed-radix packing (Horner from the last digit).
        common::BigNum acc;
        const auto& entries = pending[r].entries;
        for (size_t c = length; c-- > 0;) {
          acc.MulAdd(group.col_bases[c], entries[c]);
        }
        acc.WriteBits(group.codes, group.row_width_bits);
      }
      out.compressed_bits_.e_bits += matrix_bits;
      out.groups_.push_back(std::move(group));
    }
  }

  out.peak_memory_ = mem.peak_bytes();
  return out;
}

TedCorpusView TedCompressed::view() const {
  std::vector<TedGroupView> groups;
  groups.reserve(groups_.size());
  for (const TedGroup& g : groups_) {
    groups.push_back({g.entry_count, g.col_bases.data(), g.row_width_bits,
                      g.codes.span()});
  }
  return TedCorpusView(params_.eta_d, params_.eta_p, entry_bits_,
                       params_.matrix_compression, t_stream_.span(),
                       sv_stream_.span(), e_plain_.span(),
                       tflag_stream_.span(), d_stream_.span(),
                       p_stream_.span(), std::move(groups), metas_.data(),
                       metas_.size());
}

std::vector<traj::Timestamp> TedCompressed::DecodeTimes(size_t traj_idx) const {
  return view().DecodeTimes(traj_idx);
}

std::optional<traj::TrajectoryInstance> TedCompressed::DecodeInstance(
    const network::RoadNetwork& net, size_t traj_idx, size_t inst_idx) const {
  return view().DecodeInstance(net, traj_idx, inst_idx);
}

}  // namespace utcq::ted
