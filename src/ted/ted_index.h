#ifndef UTCQ_TED_TED_INDEX_H_
#define UTCQ_TED_TED_INDEX_H_

#include <cstdint>
#include <vector>

#include "network/grid_index.h"
#include "ted/ted_compress.h"

namespace utcq::ted {

/// Spatio-temporal index over a TED-compressed corpus, after [40]: time
/// partitions list active trajectories; grid regions list the (trajectory,
/// instance) pairs passing them. Unlike StIU it carries no probability
/// aggregates and no referential metadata, so query processing must fully
/// decode every surviving candidate instance.
class TedIndex {
 public:
  struct SpatialTuple {
    uint32_t traj = 0;
    uint32_t inst = 0;
  };

  TedIndex(const network::RoadNetwork& net, const network::GridIndex& grid,
           const TedCorpusView& compressed, int64_t time_partition_s);

  /// Trajectories active in the partition containing `t`.
  const std::vector<uint32_t>& TrajectoriesAt(traj::Timestamp t) const;

  /// Instances passing region `re`.
  const std::vector<SpatialTuple>& InstancesIn(network::RegionId re) const {
    return spatial_[re];
  }

  int64_t time_partition_s() const { return time_partition_s_; }
  const network::GridIndex& grid() const { return grid_; }

  /// Index footprint in bytes (Fig. 9's TED index-size series).
  size_t SizeBytes() const;

 private:
  const network::GridIndex& grid_;
  int64_t time_partition_s_;
  std::vector<std::vector<uint32_t>> temporal_;
  std::vector<std::vector<SpatialTuple>> spatial_;
};

}  // namespace utcq::ted

#endif  // UTCQ_TED_TED_INDEX_H_
