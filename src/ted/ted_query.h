#ifndef UTCQ_TED_TED_QUERY_H_
#define UTCQ_TED_TED_QUERY_H_

#include <utility>
#include <vector>

#include "network/geometry.h"
#include "ted/ted_compress.h"
#include "ted/ted_index.h"
#include "traj/query_types.h"

namespace utcq::ted {

/// Probabilistic query processing on the TED baseline. The index narrows
/// candidates; every surviving instance is then *fully* decoded and
/// evaluated (the baseline has neither the probability aggregates of StIU
/// nor referential partial decompression, which is where UTCQ's query-time
/// advantage comes from). Consumes the immutable TedCorpusView; a live
/// TedCompressed converts implicitly.
class TedQueryProcessor {
 public:
  TedQueryProcessor(const network::RoadNetwork& net, TedCorpusView compressed,
                    const TedIndex& index)
      : net_(net), compressed_(std::move(compressed)), index_(index) {}

  /// where(Tu^j, t, alpha): positions at `t` of instances with p >= alpha.
  std::vector<traj::WhereHit> Where(size_t traj_idx, traj::Timestamp t,
                                    double alpha) const;

  /// when(Tu^j, <edge, rd>, alpha).
  std::vector<traj::WhenHit> When(size_t traj_idx, network::EdgeId edge,
                                  double rd, double alpha) const;

  /// range(Tu, RE, tq, alpha) over the whole corpus.
  traj::RangeResult Range(const network::Rect& region, traj::Timestamp tq,
                          double alpha) const;

 private:
  const network::RoadNetwork& net_;
  TedCorpusView compressed_;
  const TedIndex& index_;
};

}  // namespace utcq::ted

#endif  // UTCQ_TED_TED_QUERY_H_
