#ifndef UTCQ_TED_TED_QUERY_H_
#define UTCQ_TED_TED_QUERY_H_

#include <utility>
#include <vector>

#include "network/geometry.h"
#include "ted/ted_compress.h"
#include "ted/ted_index.h"
#include "traj/decoded.h"
#include "traj/query_types.h"

namespace utcq::ted {

/// Probabilistic query processing on the TED baseline. The index narrows
/// candidates; every surviving instance is then *fully* decoded and
/// evaluated (the baseline has neither the probability aggregates of StIU
/// nor referential partial decompression, which is where UTCQ's query-time
/// advantage comes from). Consumes the immutable TedCorpusView; a live
/// TedCompressed converts implicitly.
class TedQueryProcessor {
 public:
  TedQueryProcessor(const network::RoadNetwork& net, TedCorpusView compressed,
                    const TedIndex& index)
      : net_(net), compressed_(std::move(compressed)), index_(index) {}

  /// where(Tu^j, t, alpha): positions at `t` of instances with p >= alpha.
  std::vector<traj::WhereHit> Where(size_t traj_idx, traj::Timestamp t,
                                    double alpha) const;

  /// when(Tu^j, <edge, rd>, alpha).
  std::vector<traj::WhenHit> When(size_t traj_idx, network::EdgeId edge,
                                  double rd, double alpha) const;

  /// range(Tu, RE, tq, alpha) over the whole corpus.
  traj::RangeResult Range(const network::Rect& region, traj::Timestamp tq,
                          double alpha) const;

  /// Decodes trajectory `traj_idx` in full into the shared cacheable
  /// handle: ref_insts[w] is instance w in original order, nref_insts is
  /// empty (the baseline has no referential split).
  traj::DecodedTraj DecodeTraj(size_t traj_idx) const;

  /// Cached variants mirroring the core processor: identical results with
  /// the decode step served from a handle / provider instead of the
  /// bitstreams. A handle whose shape disagrees with the trajectory's meta
  /// falls back to inline decoding.
  std::vector<traj::WhereHit> Where(size_t traj_idx, traj::Timestamp t,
                                    double alpha,
                                    const traj::DecodedTraj& dt) const;
  std::vector<traj::WhenHit> When(size_t traj_idx, network::EdgeId edge,
                                  double rd, double alpha,
                                  const traj::DecodedTraj& dt) const;
  traj::RangeResult Range(const network::Rect& region, traj::Timestamp tq,
                          double alpha,
                          const traj::DecodedProvider& provider) const;

 private:
  std::vector<traj::WhereHit> WhereImpl(size_t traj_idx, traj::Timestamp t,
                                        double alpha,
                                        const traj::DecodedTraj* dt) const;
  std::vector<traj::WhenHit> WhenImpl(size_t traj_idx, network::EdgeId edge,
                                      double rd, double alpha,
                                      const traj::DecodedTraj* dt) const;
  traj::RangeResult RangeImpl(const network::Rect& region, traj::Timestamp tq,
                              double alpha,
                              const traj::DecodedProvider* provider) const;

  const network::RoadNetwork& net_;
  TedCorpusView compressed_;
  const TedIndex& index_;
};

}  // namespace utcq::ted

#endif  // UTCQ_TED_TED_QUERY_H_
