#ifndef UTCQ_TED_TED_VIEW_H_
#define UTCQ_TED_TED_VIEW_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitstream.h"
#include "common/pddp.h"
#include "network/road_network.h"
#include "traj/types.h"

namespace utcq::ted {

struct TedParams;
struct TedTrajMeta;

/// Borrowed view of one matrix-compressed E group: the column bases and the
/// packed row codes, without the owning BitWriter.
struct TedGroupView {
  uint32_t entry_count = 0;
  const uint32_t* col_bases = nullptr;
  int row_width_bits = 0;
  common::BitSpan codes;
};

/// Immutable, non-owning read-side of a TED-compressed corpus — the
/// baseline's counterpart of core::CorpusView. All decode paths (full
/// instance decode, time expansion) live here, reading borrowed BitSpans,
/// so TedIndex and TedQueryProcessor never touch the writer-backed
/// TedCompressed directly. The owner of the streams, groups and metas must
/// outlive the view.
class TedCorpusView {
 public:
  TedCorpusView() = default;
  TedCorpusView(double eta_d, double eta_p, int entry_bits,
                bool matrix_compression, common::BitSpan t,
                common::BitSpan sv, common::BitSpan e_plain,
                common::BitSpan tflag, common::BitSpan d, common::BitSpan p,
                std::vector<TedGroupView> groups, const TedTrajMeta* metas,
                size_t num_trajectories)
      : eta_d_(eta_d),
        eta_p_(eta_p),
        entry_bits_(entry_bits),
        matrix_compression_(matrix_compression),
        d_codec_(eta_d),
        p_codec_(eta_p),
        t_(t),
        sv_(sv),
        e_plain_(e_plain),
        tflag_(tflag),
        d_(d),
        p_(p),
        groups_(std::move(groups)),
        metas_(metas),
        num_trajectories_(num_trajectories) {}

  /// Decodes the shared time sequence of trajectory `traj_idx`.
  std::vector<traj::Timestamp> DecodeTimes(size_t traj_idx) const;

  /// Fully decodes one instance (the baseline's query granularity).
  std::optional<traj::TrajectoryInstance> DecodeInstance(
      const network::RoadNetwork& net, size_t traj_idx,
      size_t inst_idx) const;

  size_t num_trajectories() const { return num_trajectories_; }
  const TedTrajMeta& meta(size_t i) const;  // defined where the type is known
  double eta_d() const { return eta_d_; }
  double eta_p() const { return eta_p_; }
  int entry_bits() const { return entry_bits_; }

 private:
  double eta_d_ = 1.0 / 128.0;
  double eta_p_ = 1.0 / 512.0;
  int entry_bits_ = 4;
  bool matrix_compression_ = true;
  common::PddpCodec d_codec_{1.0 / 128.0};
  common::PddpCodec p_codec_{1.0 / 512.0};
  common::BitSpan t_;
  common::BitSpan sv_;
  common::BitSpan e_plain_;
  common::BitSpan tflag_;
  common::BitSpan d_;
  common::BitSpan p_;
  std::vector<TedGroupView> groups_;
  const TedTrajMeta* metas_ = nullptr;
  size_t num_trajectories_ = 0;
};

}  // namespace utcq::ted

#endif  // UTCQ_TED_TED_VIEW_H_
