#include "ted/ted_index.h"

#include <algorithm>

namespace utcq::ted {

TedIndex::TedIndex(const network::RoadNetwork& net,
                   const network::GridIndex& grid,
                   const TedCorpusView& compressed, int64_t time_partition_s)
    : grid_(grid), time_partition_s_(std::max<int64_t>(time_partition_s, 1)) {
  const size_t partitions =
      static_cast<size_t>((traj::kSecondsPerDay + time_partition_s_ - 1) /
                          time_partition_s_);
  temporal_.resize(partitions);
  spatial_.resize(grid.num_regions());

  for (size_t j = 0; j < compressed.num_trajectories(); ++j) {
    const TedTrajMeta& meta = compressed.meta(j);
    const size_t first =
        static_cast<size_t>(meta.t_first / time_partition_s_);
    const size_t last = std::min(
        partitions - 1, static_cast<size_t>(meta.t_last / time_partition_s_));
    for (size_t p = first; p <= last; ++p) {
      temporal_[p].push_back(static_cast<uint32_t>(j));
    }
    for (size_t w = 0; w < meta.instances.size(); ++w) {
      const auto inst = compressed.DecodeInstance(net, j, w);
      if (!inst.has_value()) continue;
      std::vector<network::RegionId> seen;
      for (const network::EdgeId e : inst->path) {
        for (const network::RegionId re : grid.RegionsOfEdge(e)) {
          if (std::find(seen.begin(), seen.end(), re) == seen.end()) {
            seen.push_back(re);
            spatial_[re].push_back(
                {static_cast<uint32_t>(j), static_cast<uint32_t>(w)});
          }
        }
      }
    }
  }
}

const std::vector<uint32_t>& TedIndex::TrajectoriesAt(traj::Timestamp t) const {
  static const std::vector<uint32_t> kEmpty;
  if (t < 0) return kEmpty;
  const size_t p = static_cast<size_t>(t / time_partition_s_);
  if (p >= temporal_.size()) return kEmpty;
  return temporal_[p];
}

size_t TedIndex::SizeBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& v : temporal_) bytes += v.size() * sizeof(uint32_t);
  for (const auto& v : spatial_) bytes += v.size() * sizeof(SpatialTuple);
  return bytes;
}

}  // namespace utcq::ted
