#include "ted/ted_repr.h"

namespace utcq::ted {

std::vector<TimePair> BuildTimePairs(const std::vector<traj::Timestamp>& times) {
  std::vector<TimePair> pairs;
  const size_t n = times.size();
  if (n == 0) return pairs;
  pairs.emplace_back(0, times[0]);
  if (n == 1) return pairs;

  size_t pos = 0;
  while (pos + 1 < n) {
    // Extend the arithmetic run starting at `pos` as far as possible.
    const traj::Timestamp interval = times[pos + 1] - times[pos];
    size_t end = pos + 1;
    while (end + 1 < n && times[end + 1] - times[end] == interval) ++end;
    pairs.emplace_back(static_cast<uint32_t>(end), times[end]);
    pos = end;
  }
  return pairs;
}

std::vector<traj::Timestamp> ExpandTimePairs(const std::vector<TimePair>& pairs) {
  std::vector<traj::Timestamp> times;
  if (pairs.empty()) return times;
  times.push_back(pairs[0].second);
  for (size_t k = 1; k < pairs.size(); ++k) {
    const auto [i0, t0] = pairs[k - 1];
    const auto [i1, t1] = pairs[k];
    const uint32_t steps = i1 - i0;
    const traj::Timestamp interval = (t1 - t0) / static_cast<traj::Timestamp>(steps);
    for (uint32_t s = 1; s <= steps; ++s) {
      times.push_back(t0 + interval * static_cast<traj::Timestamp>(s));
    }
    // Guard against non-integral intervals (cannot happen for anchors built
    // by BuildTimePairs, but keep the expansion self-consistent).
    times.back() = t1;
  }
  return times;
}

}  // namespace utcq::ted
