#include "ted/ted_view.h"

#include "common/bignum.h"
#include "common/varint.h"
#include "ted/ted_compress.h"
#include "ted/ted_repr.h"
#include "traj/interpolate.h"

namespace utcq::ted {

using common::BitReader;
using common::BitsFor;

const TedTrajMeta& TedCorpusView::meta(size_t i) const { return metas_[i]; }

std::vector<traj::Timestamp> TedCorpusView::DecodeTimes(
    size_t traj_idx) const {
  const TedTrajMeta& meta = metas_[traj_idx];
  BitReader r(t_);
  r.Seek(meta.t_pos);
  const uint64_t n = common::GetVarint(r);
  const uint64_t pairs = common::GetVarint(r);
  const int idx_bits = BitsFor(n - 1);
  std::vector<TimePair> anchor;
  anchor.reserve(pairs);
  for (uint64_t i = 0; i < pairs; ++i) {
    const uint32_t idx = static_cast<uint32_t>(r.GetBits(idx_bits));
    const auto t = static_cast<traj::Timestamp>(r.GetBits(17));
    anchor.emplace_back(idx, t);
  }
  return ExpandTimePairs(anchor);
}

std::optional<traj::TrajectoryInstance> TedCorpusView::DecodeInstance(
    const network::RoadNetwork& net, size_t traj_idx, size_t inst_idx) const {
  const TedInstanceMeta& im = metas_[traj_idx].instances[inst_idx];

  BitReader sv_reader(sv_);
  sv_reader.Seek(im.sv_pos);
  const auto sv = static_cast<network::VertexId>(sv_reader.GetBits(32));

  std::vector<uint32_t> entries(im.e_len);
  if (matrix_compression_ && im.group != kNoGroup) {
    const TedGroupView& g = groups_[im.group];
    BitReader er(g.codes);
    er.Seek(static_cast<uint64_t>(im.row) * g.row_width_bits);
    common::BigNum acc = common::BigNum::ReadBits(er, g.row_width_bits);
    for (uint32_t c = 0; c < im.e_len; ++c) {
      entries[c] = acc.DivMod(g.col_bases[c]);
    }
  } else {
    BitReader er(e_plain_);
    er.Seek(im.e_pos);
    for (uint32_t c = 0; c < im.e_len; ++c) {
      entries[c] = static_cast<uint32_t>(er.GetBits(entry_bits_));
    }
  }

  std::vector<uint8_t> tflag(im.e_len);
  BitReader tr(tflag_);
  tr.Seek(im.tflag_pos);
  for (uint32_t i = 0; i < im.e_len; ++i) tflag[i] = tr.GetBit() ? 1 : 0;

  std::vector<double> rds(im.n_locs);
  BitReader dr(d_);
  dr.Seek(im.d_pos);
  for (uint32_t i = 0; i < im.n_locs; ++i) rds[i] = d_codec_.Decode(dr);

  BitReader pr(p_);
  pr.Seek(im.p_pos);
  const double p = p_codec_.Decode(pr);

  return traj::ReconstructInstance(net, sv, entries, tflag, rds, p);
}

}  // namespace utcq::ted
