#ifndef UTCQ_TED_TED_COMPRESS_H_
#define UTCQ_TED_TED_COMPRESS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitstream.h"
#include "common/memory_tracker.h"
#include "common/pddp.h"
#include "network/road_network.h"
#include "ted/ted_view.h"
#include "traj/types.h"

namespace utcq::ted {

/// Configuration of the TED baseline, as adapted by the paper's Section 6.1:
/// matrix (multiple-bases) compression of E is kept, bitmap compression of
/// T' is omitted (its compression ratio row is 1 in Table 8).
struct TedParams {
  double eta_d = 1.0 / 128.0;
  double eta_p = 1.0 / 512.0;
  bool matrix_compression = true;
};

/// A group of equal-length E codes packed as an A x B matrix with
/// *multiple bases* (step iii of Section 2.3): column c gets base
/// b_c = max_c + 1 and each row packs as the mixed-radix number
/// sum_c d_c * prod_{c'<c} b_{c'} in ceil(log2(prod b_c)) bits, exploiting
/// that the high bits of the fixed-width codes are usually 0. The
/// multiprecision encode/decode per row is what makes the baseline's
/// compression slow and its decode-heavy queries slower still.
struct TedGroup {
  uint32_t entry_count = 0;  // B
  uint32_t rows = 0;         // A
  std::vector<uint32_t> col_bases;
  int row_width_bits = 0;
  common::BitWriter codes;
};

/// Sentinel: the instance's E codes live in the plain stream, not a group
/// (small groups whose per-column header would not amortize).
inline constexpr uint32_t kNoGroup = 0xFFFFFFFFu;

/// Bit positions of one compressed instance within the corpus streams.
struct TedInstanceMeta {
  uint64_t sv_pos = 0;
  uint32_t group = kNoGroup;  // matrix mode when != kNoGroup
  uint32_t row = 0;
  uint64_t e_pos = 0;  // plain mode
  uint32_t e_len = 0;
  uint64_t tflag_pos = 0;
  uint64_t d_pos = 0;
  uint32_t n_locs = 0;
  uint64_t p_pos = 0;
  float p_quantized = 0.0f;  // cached for index construction
};

struct TedTrajMeta {
  uint64_t t_pos = 0;
  uint32_t n_points = 0;
  traj::Timestamp t_first = 0;
  traj::Timestamp t_last = 0;
  std::vector<TedInstanceMeta> instances;
};

/// The write-side product of TED compression. Decode paths live on
/// TedCorpusView (the baseline's immutable read-side); the DecodeTimes /
/// DecodeInstance members remain as convenience wrappers that delegate to a
/// freshly borrowed view.
class TedCompressed {
 public:
  /// Immutable read-side borrowing this corpus's bytes; the corpus must
  /// outlive the view.
  TedCorpusView view() const;

  /// The read path is written against TedCorpusView; a live corpus converts
  /// implicitly so call sites need not care which side they hold.
  operator TedCorpusView() const { return view(); }  // NOLINT

  /// Decodes the shared time sequence of trajectory `traj_idx`.
  std::vector<traj::Timestamp> DecodeTimes(size_t traj_idx) const;

  /// Fully decodes one instance (the baseline's query granularity).
  std::optional<traj::TrajectoryInstance> DecodeInstance(
      const network::RoadNetwork& net, size_t traj_idx,
      size_t inst_idx) const;

  size_t num_trajectories() const { return metas_.size(); }
  const TedTrajMeta& meta(size_t i) const { return metas_[i]; }
  const TedParams& params() const { return params_; }

  /// Per-component compressed bits (Table 8 accounting; SV and framing are
  /// folded into E, matching DESIGN.md §2).
  const traj::ComponentSizes& compressed_bits() const {
    return compressed_bits_;
  }
  size_t peak_memory_bytes() const { return peak_memory_; }

 private:
  friend class TedCompressor;

  TedParams params_{};
  int entry_bits_ = 4;
  common::PddpCodec d_codec_{1.0 / 128.0};
  common::PddpCodec p_codec_{1.0 / 512.0};
  common::BitWriter t_stream_;
  common::BitWriter sv_stream_;
  common::BitWriter e_plain_;
  common::BitWriter tflag_stream_;
  common::BitWriter d_stream_;
  common::BitWriter p_stream_;
  std::vector<TedGroup> groups_;
  std::vector<TedTrajMeta> metas_;
  traj::ComponentSizes compressed_bits_;
  size_t peak_memory_ = 0;
};

/// Compresses a corpus with the (adapted) TED pipeline. The grouped code
/// matrices are materialized corpus-wide before packing — the memory
/// behaviour the paper observes ("TED has to load all the E(.) for the
/// preparation of matrix transformation and partitioning").
class TedCompressor {
 public:
  TedCompressor(const network::RoadNetwork& net, TedParams params)
      : net_(net), params_(params) {}

  TedCompressed Compress(const traj::UncertainCorpus& corpus) const;

 private:
  const network::RoadNetwork& net_;
  TedParams params_;
};

}  // namespace utcq::ted

#endif  // UTCQ_TED_TED_COMPRESS_H_
