#ifndef UTCQ_NETWORK_GEOMETRY_H_
#define UTCQ_NETWORK_GEOMETRY_H_

#include "network/road_network.h"

namespace utcq::network {

/// Exact segment/rectangle predicates shared by every query engine (plain,
/// TED, UTCQ) so that Lemma 2's shortcuts are conservative with respect to
/// the same geometric semantics the ground truth uses.

/// True iff both endpoints (and hence the whole segment) lie inside `rect`.
bool SegmentInsideRect(double ax, double ay, double bx, double by,
                       const Rect& rect);

/// True iff the closed segment intersects the closed rectangle
/// (Cohen-Sutherland outcode test plus exact segment/edge intersection).
bool SegmentIntersectsRect(double ax, double ay, double bx, double by,
                           const Rect& rect);

/// True iff two closed segments intersect.
bool SegmentsIntersect(double ax, double ay, double bx, double by, double cx,
                       double cy, double dx, double dy);

}  // namespace utcq::network

#endif  // UTCQ_NETWORK_GEOMETRY_H_
