#include "network/generator.h"

#include <cmath>
#include <numbers>
#include <vector>

namespace utcq::network {

RoadNetwork GenerateCity(common::Rng& rng, const CityParams& p) {
  RoadNetwork net;
  std::vector<VertexId> grid(static_cast<size_t>(p.rows) * p.cols);
  for (uint32_t r = 0; r < p.rows; ++r) {
    for (uint32_t c = 0; c < p.cols; ++c) {
      const double jx = rng.Uniform(-1.0, 1.0) * p.jitter_fraction;
      const double jy = rng.Uniform(-1.0, 1.0) * p.jitter_fraction;
      grid[r * p.cols + c] =
          net.AddVertex((c + jx) * p.block_meters, (r + jy) * p.block_meters);
    }
  }

  auto link = [&](VertexId a, VertexId b) {
    if (rng.Bernoulli(p.drop_probability)) return;
    if (rng.Bernoulli(p.one_way_probability)) {
      if (rng.Bernoulli(0.5)) {
        net.AddEdge(a, b);
      } else {
        net.AddEdge(b, a);
      }
    } else {
      net.AddEdge(a, b);
      net.AddEdge(b, a);
    }
  };

  for (uint32_t r = 0; r < p.rows; ++r) {
    for (uint32_t c = 0; c < p.cols; ++c) {
      const VertexId v = grid[r * p.cols + c];
      if (c + 1 < p.cols) link(v, grid[r * p.cols + c + 1]);
      if (r + 1 < p.rows) link(v, grid[(r + 1) * p.cols + c]);
      if (r + 1 < p.rows && c + 1 < p.cols &&
          rng.Bernoulli(p.diagonal_probability)) {
        link(v, grid[(r + 1) * p.cols + c + 1]);
      }
    }
  }
  return net;
}

RoadNetwork GenerateRingRadial(common::Rng& rng, uint32_t rings,
                               uint32_t spokes, double ring_spacing_meters) {
  RoadNetwork net;
  const VertexId center = net.AddVertex(0.0, 0.0);
  std::vector<std::vector<VertexId>> ring_vertices(rings);
  for (uint32_t r = 0; r < rings; ++r) {
    const double radius = (r + 1) * ring_spacing_meters;
    for (uint32_t s = 0; s < spokes; ++s) {
      const double angle = 2.0 * std::numbers::pi * s / spokes +
                           rng.Uniform(-0.03, 0.03);
      ring_vertices[r].push_back(
          net.AddVertex(radius * std::cos(angle), radius * std::sin(angle)));
    }
  }
  // Ring links (both directions).
  for (uint32_t r = 0; r < rings; ++r) {
    for (uint32_t s = 0; s < spokes; ++s) {
      const VertexId a = ring_vertices[r][s];
      const VertexId b = ring_vertices[r][(s + 1) % spokes];
      net.AddEdge(a, b);
      net.AddEdge(b, a);
    }
  }
  // Radial links.
  for (uint32_t s = 0; s < spokes; ++s) {
    net.AddEdge(center, ring_vertices[0][s]);
    net.AddEdge(ring_vertices[0][s], center);
    for (uint32_t r = 0; r + 1 < rings; ++r) {
      net.AddEdge(ring_vertices[r][s], ring_vertices[r + 1][s]);
      net.AddEdge(ring_vertices[r + 1][s], ring_vertices[r][s]);
    }
  }
  return net;
}

}  // namespace utcq::network
