#include "network/grid_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace utcq::network {

GridIndex::GridIndex(const RoadNetwork& network, uint32_t cells_per_side)
    : network_(network),
      cells_per_side_(std::max<uint32_t>(cells_per_side, 1)),
      bbox_(network.bounding_box()) {
  // Guard against degenerate (empty or flat) bounding boxes.
  if (bbox_.width() <= 0) bbox_.max_x = bbox_.min_x + 1.0;
  if (bbox_.height() <= 0) bbox_.max_y = bbox_.min_y + 1.0;
  cell_w_ = bbox_.width() / cells_per_side_;
  cell_h_ = bbox_.height() / cells_per_side_;

  region_edges_.resize(num_regions());
  edge_regions_.resize(network.num_edges());
  for (EdgeId e = 0; e < network.num_edges(); ++e) {
    const Edge& ed = network.edge(e);
    const Vertex& a = network.vertex(ed.from);
    const Vertex& b = network.vertex(ed.to);
    // Sample densely enough that no crossed cell is skipped.
    const double step = std::min(cell_w_, cell_h_) / 2.0;
    const int samples =
        std::max(2, static_cast<int>(std::ceil(ed.length / step)) + 1);
    RegionId last = kInvalidRegion;
    for (int i = 0; i < samples; ++i) {
      const double f = static_cast<double>(i) / (samples - 1);
      const RegionId re = RegionOf(a.x + (b.x - a.x) * f, a.y + (b.y - a.y) * f);
      if (re != last) {
        // Deduplicate revisits (straight edges never revisit a cell, but be
        // safe for future curved geometry).
        if (std::find(edge_regions_[e].begin(), edge_regions_[e].end(), re) ==
            edge_regions_[e].end()) {
          edge_regions_[e].push_back(re);
          region_edges_[re].push_back(e);
        }
        last = re;
      }
    }
  }
}

RegionId GridIndex::RegionOf(double x, double y) const {
  const auto clamp_cell = [&](double v, double lo, double extent) {
    const int64_t c = static_cast<int64_t>((v - lo) / extent);
    return static_cast<uint32_t>(
        std::clamp<int64_t>(c, 0, cells_per_side_ - 1));
  };
  const uint32_t cx = clamp_cell(x, bbox_.min_x, cell_w_);
  const uint32_t cy = clamp_cell(y, bbox_.min_y, cell_h_);
  return cy * cells_per_side_ + cx;
}

double GridIndex::DistanceToEdge(double x, double y, EdgeId e,
                                 double* offset_on_edge) const {
  const Edge& ed = network_.edge(e);
  const Vertex& a = network_.vertex(ed.from);
  const Vertex& b = network_.vertex(ed.to);
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double len2 = dx * dx + dy * dy;
  double t = 0.0;
  if (len2 > 0) {
    t = std::clamp(((x - a.x) * dx + (y - a.y) * dy) / len2, 0.0, 1.0);
  }
  const double px = a.x + t * dx;
  const double py = a.y + t * dy;
  if (offset_on_edge != nullptr) *offset_on_edge = t * ed.length;
  return Distance(x, y, px, py);
}

std::vector<EdgeId> GridIndex::EdgesNear(double x, double y,
                                         double radius) const {
  std::vector<EdgeId> result;
  std::unordered_set<EdgeId> seen;
  const Rect probe{x - radius, y - radius, x + radius, y + radius};
  for (const RegionId re : RegionsInRect(probe)) {
    for (const EdgeId e : region_edges_[re]) {
      if (!seen.insert(e).second) continue;
      if (DistanceToEdge(x, y, e) <= radius) result.push_back(e);
    }
  }
  return result;
}

Rect GridIndex::RegionRect(RegionId re) const {
  const uint32_t cx = re % cells_per_side_;
  const uint32_t cy = re / cells_per_side_;
  return {bbox_.min_x + cx * cell_w_, bbox_.min_y + cy * cell_h_,
          bbox_.min_x + (cx + 1) * cell_w_, bbox_.min_y + (cy + 1) * cell_h_};
}

std::vector<RegionId> GridIndex::RegionsInRect(const Rect& rect) const {
  const auto cell_range = [&](double lo_v, double hi_v, double origin,
                              double extent) {
    int64_t lo = static_cast<int64_t>((lo_v - origin) / extent);
    int64_t hi = static_cast<int64_t>((hi_v - origin) / extent);
    lo = std::clamp<int64_t>(lo, 0, cells_per_side_ - 1);
    hi = std::clamp<int64_t>(hi, 0, cells_per_side_ - 1);
    return std::pair<uint32_t, uint32_t>(static_cast<uint32_t>(lo),
                                         static_cast<uint32_t>(hi));
  };
  const auto [x0, x1] = cell_range(rect.min_x, rect.max_x, bbox_.min_x, cell_w_);
  const auto [y0, y1] = cell_range(rect.min_y, rect.max_y, bbox_.min_y, cell_h_);
  std::vector<RegionId> out;
  out.reserve((x1 - x0 + 1) * (y1 - y0 + 1));
  for (uint32_t cy = y0; cy <= y1; ++cy) {
    for (uint32_t cx = x0; cx <= x1; ++cx) {
      out.push_back(cy * cells_per_side_ + cx);
    }
  }
  return out;
}

size_t GridIndex::SizeBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& v : region_edges_) bytes += v.size() * sizeof(EdgeId);
  for (const auto& v : edge_regions_) bytes += v.size() * sizeof(RegionId);
  return bytes;
}

}  // namespace utcq::network
