#include "network/csv_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

namespace utcq::network {

bool SaveCsv(const RoadNetwork& network, const std::string& prefix) {
  std::ofstream vf(prefix + ".vertices.csv");
  if (!vf) return false;
  vf << std::setprecision(17);  // doubles survive the decimal round trip
  vf << "id,x,y\n";
  for (VertexId v = 0; v < network.num_vertices(); ++v) {
    const Vertex& vx = network.vertex(v);
    vf << v << ',' << vx.x << ',' << vx.y << '\n';
  }

  std::ofstream ef(prefix + ".edges.csv");
  if (!ef) return false;
  ef << std::setprecision(17);
  ef << "from,to,length\n";
  for (EdgeId e = 0; e < network.num_edges(); ++e) {
    const Edge& ed = network.edge(e);
    ef << ed.from << ',' << ed.to << ',' << ed.length << '\n';
  }
  return true;
}

std::optional<RoadNetwork> LoadCsv(const std::string& prefix) {
  std::ifstream vf(prefix + ".vertices.csv");
  std::ifstream ef(prefix + ".edges.csv");
  if (!vf || !ef) return std::nullopt;

  RoadNetwork net;
  std::string line;
  std::getline(vf, line);  // header
  while (std::getline(vf, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string id, x, y;
    if (!std::getline(ss, id, ',') || !std::getline(ss, x, ',') ||
        !std::getline(ss, y, ',')) {
      return std::nullopt;
    }
    net.AddVertex(std::stod(x), std::stod(y));
  }

  std::getline(ef, line);  // header
  while (std::getline(ef, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string from, to, length;
    if (!std::getline(ss, from, ',') || !std::getline(ss, to, ',') ||
        !std::getline(ss, length, ',')) {
      return std::nullopt;
    }
    const auto f = static_cast<VertexId>(std::stoul(from));
    const auto t = static_cast<VertexId>(std::stoul(to));
    if (f >= net.num_vertices() || t >= net.num_vertices()) {
      return std::nullopt;
    }
    net.AddEdge(f, t, std::stod(length));
  }
  return net;
}

}  // namespace utcq::network
