#include "network/road_network.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>

namespace utcq::network {

double Distance(double ax, double ay, double bx, double by) {
  const double dx = ax - bx;
  const double dy = ay - by;
  return std::sqrt(dx * dx + dy * dy);
}

VertexId RoadNetwork::AddVertex(double x, double y) {
  const VertexId id = static_cast<VertexId>(vertices_.size());
  vertices_.push_back({x, y});
  out_edges_.emplace_back();
  bbox_.min_x = std::min(bbox_.min_x, x);
  bbox_.min_y = std::min(bbox_.min_y, y);
  bbox_.max_x = std::max(bbox_.max_x, x);
  bbox_.max_y = std::max(bbox_.max_y, y);
  return id;
}

EdgeId RoadNetwork::AddEdge(VertexId from, VertexId to, double length) {
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  if (length <= 0.0) {
    const Vertex& a = vertices_[from];
    const Vertex& b = vertices_[to];
    length = Distance(a.x, a.y, b.x, b.y);
    if (length <= 0.0) length = 1.0;  // degenerate zero-length edges
  }
  const uint32_t no = static_cast<uint32_t>(out_edges_[from].size()) + 1;
  edges_.push_back({from, to, length, no});
  out_edges_[from].push_back(id);
  max_out_degree_ = std::max(max_out_degree_, no);
  return id;
}

EdgeId RoadNetwork::OutEdge(VertexId v, uint32_t no) const {
  // Decoders resolve vertices from untrusted streams through this lookup;
  // an out-of-range vertex is "no such edge", not an out-of-bounds read.
  if (v >= out_edges_.size()) return kInvalidEdge;
  if (no == 0 || no > out_edges_[v].size()) return kInvalidEdge;
  return out_edges_[v][no - 1];
}

EdgeId RoadNetwork::FindEdge(VertexId from, VertexId to) const {
  for (const EdgeId e : out_edges_[from]) {
    if (edges_[e].to == to) return e;
  }
  return kInvalidEdge;
}

double RoadNetwork::average_out_degree() const {
  if (vertices_.empty()) return 0.0;
  return static_cast<double>(edges_.size()) /
         static_cast<double>(vertices_.size());
}

int RoadNetwork::edge_number_bits() const {
  // Entries take values 0..o (0 is the repeat marker), so the field must
  // cover o+1 distinct values; BitsFor(o) bits hold [0, o].
  const uint32_t o = std::max<uint32_t>(max_out_degree_, 1);
  int bits = 0;
  uint32_t n = o;
  while (n > 0) {
    ++bits;
    n >>= 1;
  }
  return bits;
}

Vertex RoadNetwork::PointOnEdge(EdgeId e, double dist) const {
  const Edge& ed = edges_[e];
  const Vertex& a = vertices_[ed.from];
  const Vertex& b = vertices_[ed.to];
  const double f = ed.length > 0 ? std::clamp(dist / ed.length, 0.0, 1.0) : 0.0;
  return {a.x + (b.x - a.x) * f, a.y + (b.y - a.y) * f};
}

namespace {

struct QueueEntry {
  double cost;
  VertexId vertex;
  bool operator>(const QueueEntry& o) const { return cost > o.cost; }
};

}  // namespace

std::optional<std::vector<EdgeId>> RoadNetwork::ShortestPath(
    VertexId from, VertexId to, double max_cost) const {
  if (from == to) return std::vector<EdgeId>{};
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  // Sparse maps: bounded searches touch a tiny fraction of the graph.
  std::unordered_map<VertexId, double> dist;
  std::unordered_map<VertexId, EdgeId> parent;
  auto dist_of = [&](VertexId v) {
    const auto it = dist.find(v);
    return it == dist.end() ? std::numeric_limits<double>::infinity()
                            : it->second;
  };

  pq.push({0.0, from});
  dist[from] = 0.0;
  while (!pq.empty()) {
    const auto [cost, v] = pq.top();
    pq.pop();
    if (cost > dist_of(v)) continue;
    if (v == to) break;
    if (cost > max_cost) break;
    for (const EdgeId e : out_edges_[v]) {
      const Edge& ed = edges_[e];
      const double next = cost + ed.length;
      if (next > max_cost) continue;
      if (next < dist_of(ed.to)) {
        dist[ed.to] = next;
        parent[ed.to] = e;
        pq.push({next, ed.to});
      }
    }
  }
  if (dist.find(to) == dist.end()) return std::nullopt;

  std::vector<EdgeId> path;
  VertexId v = to;
  while (v != from) {
    const auto it = parent.find(v);
    if (it == parent.end()) return std::nullopt;
    path.push_back(it->second);
    v = edges_[it->second].from;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double RoadNetwork::ShortestPathCost(VertexId from, VertexId to,
                                     double max_cost) const {
  const auto path = ShortestPath(from, to, max_cost);
  if (!path.has_value()) return std::numeric_limits<double>::infinity();
  double cost = 0.0;
  for (const EdgeId e : *path) cost += edges_[e].length;
  return cost;
}

}  // namespace utcq::network
