#ifndef UTCQ_NETWORK_GRID_INDEX_H_
#define UTCQ_NETWORK_GRID_INDEX_H_

#include <cstdint>
#include <vector>

#include "network/road_network.h"

namespace utcq::network {

using RegionId = uint32_t;
inline constexpr RegionId kInvalidRegion = std::numeric_limits<RegionId>::max();

/// Uniform grid partition of the road network's bounding box into
/// `cells_per_side`^2 regions (the `re_i` of Section 5.2) plus an
/// edge-to-region mapping.
///
/// Region membership of an edge is decided by sampling points along the
/// (straight) edge, which is exact for the synthetic networks where edges are
/// segments. Both the StIU spatial index, the TED baseline index and the
/// probabilistic map-matcher's candidate search run on this structure.
class GridIndex {
 public:
  GridIndex(const RoadNetwork& network, uint32_t cells_per_side);

  uint32_t cells_per_side() const { return cells_per_side_; }
  uint32_t num_regions() const { return cells_per_side_ * cells_per_side_; }

  /// Region containing point (x, y); points outside the bounding box clamp
  /// to the border cells.
  RegionId RegionOf(double x, double y) const;

  /// Regions an edge passes through, in travel order (deduplicated).
  const std::vector<RegionId>& RegionsOfEdge(EdgeId e) const {
    return edge_regions_[e];
  }

  /// Edges overlapping a region.
  const std::vector<EdgeId>& EdgesInRegion(RegionId re) const {
    return region_edges_[re];
  }

  /// Edges with any sampled point within `radius` of (x, y) — candidate
  /// search for map matching. Distances are point-to-segment.
  std::vector<EdgeId> EdgesNear(double x, double y, double radius) const;

  /// Geometric rectangle of a region.
  Rect RegionRect(RegionId re) const;

  /// All regions intersecting `rect` (range queries use this).
  std::vector<RegionId> RegionsInRect(const Rect& rect) const;

  /// Exact point-to-segment distance from (x, y) to edge `e`.
  double DistanceToEdge(double x, double y, EdgeId e,
                        double* offset_on_edge = nullptr) const;

  /// Approximate in-memory footprint, for the index-size metric (Fig. 9).
  size_t SizeBytes() const;

 private:
  const RoadNetwork& network_;
  uint32_t cells_per_side_;
  Rect bbox_;
  double cell_w_;
  double cell_h_;
  std::vector<std::vector<EdgeId>> region_edges_;
  std::vector<std::vector<RegionId>> edge_regions_;
};

}  // namespace utcq::network

#endif  // UTCQ_NETWORK_GRID_INDEX_H_
