#ifndef UTCQ_NETWORK_CSV_IO_H_
#define UTCQ_NETWORK_CSV_IO_H_

#include <optional>
#include <string>

#include "network/road_network.h"

namespace utcq::network {

/// Persists a network as two CSV files: `<prefix>.vertices.csv` with rows
/// `id,x,y` and `<prefix>.edges.csv` with rows `from,to,length`. The format
/// is intentionally compatible with common OSM graph exports so real road
/// graphs can be dropped in when available.
bool SaveCsv(const RoadNetwork& network, const std::string& prefix);

/// Loads a network written by SaveCsv (or an equivalent export). Vertices
/// must be consecutively numbered from 0. Returns nullopt on parse failure.
std::optional<RoadNetwork> LoadCsv(const std::string& prefix);

}  // namespace utcq::network

#endif  // UTCQ_NETWORK_CSV_IO_H_
