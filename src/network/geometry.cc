#include "network/geometry.h"

#include <algorithm>

namespace utcq::network {

bool SegmentInsideRect(double ax, double ay, double bx, double by,
                       const Rect& rect) {
  return rect.Contains(ax, ay) && rect.Contains(bx, by);
}

namespace {

int Orientation(double ax, double ay, double bx, double by, double cx,
                double cy) {
  const double v = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax);
  if (v > 0) return 1;
  if (v < 0) return -1;
  return 0;
}

bool OnSegment(double ax, double ay, double bx, double by, double px,
               double py) {
  return px >= std::min(ax, bx) && px <= std::max(ax, bx) &&
         py >= std::min(ay, by) && py <= std::max(ay, by);
}

}  // namespace

bool SegmentsIntersect(double ax, double ay, double bx, double by, double cx,
                       double cy, double dx, double dy) {
  const int o1 = Orientation(ax, ay, bx, by, cx, cy);
  const int o2 = Orientation(ax, ay, bx, by, dx, dy);
  const int o3 = Orientation(cx, cy, dx, dy, ax, ay);
  const int o4 = Orientation(cx, cy, dx, dy, bx, by);
  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && OnSegment(ax, ay, bx, by, cx, cy)) return true;
  if (o2 == 0 && OnSegment(ax, ay, bx, by, dx, dy)) return true;
  if (o3 == 0 && OnSegment(cx, cy, dx, dy, ax, ay)) return true;
  if (o4 == 0 && OnSegment(cx, cy, dx, dy, bx, by)) return true;
  return false;
}

bool SegmentIntersectsRect(double ax, double ay, double bx, double by,
                           const Rect& rect) {
  if (rect.Contains(ax, ay) || rect.Contains(bx, by)) return true;
  // Segment fully outside can still cross the rectangle: test all four
  // rectangle edges.
  return SegmentsIntersect(ax, ay, bx, by, rect.min_x, rect.min_y, rect.max_x,
                           rect.min_y) ||
         SegmentsIntersect(ax, ay, bx, by, rect.max_x, rect.min_y, rect.max_x,
                           rect.max_y) ||
         SegmentsIntersect(ax, ay, bx, by, rect.max_x, rect.max_y, rect.min_x,
                           rect.max_y) ||
         SegmentsIntersect(ax, ay, bx, by, rect.min_x, rect.max_y, rect.min_x,
                           rect.min_y);
}

}  // namespace utcq::network
