#ifndef UTCQ_NETWORK_ROAD_NETWORK_H_
#define UTCQ_NETWORK_ROAD_NETWORK_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

namespace utcq::network {

using VertexId = uint32_t;
using EdgeId = uint32_t;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// A road-network vertex: an intersection or end point with a planar
/// position (Definition 1). Coordinates are in meters in a local projection;
/// the synthetic generators and all geometry work in this plane.
struct Vertex {
  double x = 0.0;
  double y = 0.0;
};

/// A directed edge (vs -> ve) with its physical length and its 1-based
/// *outgoing edge number* w.r.t. vs (Definition 6). TED and UTCQ both encode
/// paths as sequences of outgoing edge numbers.
struct Edge {
  VertexId from = kInvalidVertex;
  VertexId to = kInvalidVertex;
  double length = 0.0;
  uint32_t out_number = 0;  // 1-based position among `from`'s outgoing edges
};

/// Axis-aligned rectangle used for bounding boxes and range-query regions.
struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  bool Contains(double x, double y) const {
    return x >= min_x && x <= max_x && y >= min_y && y <= max_y;
  }
  double width() const { return max_x - min_x; }
  double height() const { return max_y - min_y; }
};

/// Directed road-network graph G = (V, E) with stable outgoing-edge
/// numbering, the substrate every trajectory in this project lives on.
class RoadNetwork {
 public:
  RoadNetwork() = default;

  VertexId AddVertex(double x, double y);

  /// Adds edge (from -> to); assigns the next outgoing edge number of
  /// `from`. `length` <= 0 means "use Euclidean distance".
  EdgeId AddEdge(VertexId from, VertexId to, double length = -1.0);

  size_t num_vertices() const { return vertices_.size(); }
  size_t num_edges() const { return edges_.size(); }

  const Vertex& vertex(VertexId v) const { return vertices_[v]; }
  const Edge& edge(EdgeId e) const { return edges_[e]; }

  /// Outgoing edges of `v`, ordered by outgoing edge number (1-based).
  const std::vector<EdgeId>& out_edges(VertexId v) const {
    return out_edges_[v];
  }

  /// Edge leaving `v` with outgoing edge number `no` (1-based), or
  /// kInvalidEdge when out of range.
  EdgeId OutEdge(VertexId v, uint32_t no) const;

  /// Directed edge from -> to if present.
  EdgeId FindEdge(VertexId from, VertexId to) const;

  uint32_t max_out_degree() const { return max_out_degree_; }
  double average_out_degree() const;

  /// Bits per outgoing edge number: ceil(log2(o)) with o the maximum
  /// out-degree over all vertices (Section 2.3 step i).
  int edge_number_bits() const;

  Rect bounding_box() const { return bbox_; }

  /// Position `dist` meters from edge start along the (straight) edge.
  Vertex PointOnEdge(EdgeId e, double dist) const;

  /// Bounded Dijkstra from `from` to `to`; returns the edge-id path, or
  /// nullopt if `to` is unreachable within `max_cost` meters.
  std::optional<std::vector<EdgeId>> ShortestPath(VertexId from, VertexId to,
                                                  double max_cost) const;

  /// Network distance of the bounded shortest path, or +inf.
  double ShortestPathCost(VertexId from, VertexId to, double max_cost) const;

 private:
  std::vector<Vertex> vertices_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_edges_;
  uint32_t max_out_degree_ = 0;
  Rect bbox_{1e300, 1e300, -1e300, -1e300};
};

/// Euclidean distance helper.
double Distance(double ax, double ay, double bx, double by);

}  // namespace utcq::network

#endif  // UTCQ_NETWORK_ROAD_NETWORK_H_
