#ifndef UTCQ_NETWORK_GENERATOR_H_
#define UTCQ_NETWORK_GENERATOR_H_

#include <cstdint>

#include "common/rng.h"
#include "network/road_network.h"

namespace utcq::network {

/// Parameters for the perturbed-grid city generator.
///
/// The generator produces networks whose statistics track the paper's
/// Table 6: mean out-degree ~2.4-2.8 is obtained by dropping a fraction of
/// grid links and adding a few diagonals; block sizes set edge lengths
/// (~80-250 m in urban cores).
struct CityParams {
  uint32_t rows = 40;
  uint32_t cols = 40;
  double block_meters = 150.0;   // nominal block edge length
  double jitter_fraction = 0.2;  // vertex position jitter (fraction of block)
  double drop_probability = 0.12;     // fraction of grid links removed
  double diagonal_probability = 0.05; // extra diagonal shortcut links
  double one_way_probability = 0.15;  // links kept in one direction only
};

/// Generates a strongly-connected-ish urban grid network. Both directions of
/// a street are separate directed edges (Definition 1), except for one-way
/// streets.
RoadNetwork GenerateCity(common::Rng& rng, const CityParams& params);

/// Generates a ring-radial network (ring roads plus spokes), a second
/// topology used by examples and robustness tests.
RoadNetwork GenerateRingRadial(common::Rng& rng, uint32_t rings,
                               uint32_t spokes, double ring_spacing_meters);

}  // namespace utcq::network

#endif  // UTCQ_NETWORK_GENERATOR_H_
