#ifndef UTCQ_INGEST_SESSION_H_
#define UTCQ_INGEST_SESSION_H_

#include <cstdint>
#include <optional>

#include "matching/online_viterbi.h"
#include "network/grid_index.h"
#include "network/road_network.h"
#include "traj/types.h"

namespace utcq::ingest {

/// Why a session's open segment was sealed into a trajectory (DESIGN.md
/// §10 state machine).
enum class SealReason : uint8_t {
  kExplicitEnd = 0,  // the producer ended the session
  kIdleTimeout,      // no activity for SessionLimits::idle_timeout_s
  kMaxLength,        // the segment reached SessionLimits::max_points
  kStreamBreak,      // a long gap or HMM break inside the stream
};

const char* SealReasonName(SealReason reason);

/// Seal-policy knobs applied by the ingestor to every session.
struct SessionLimits {
  /// Matched points after which a segment is sealed even though the
  /// session stays open (bounds the size of any one trajectory).
  size_t max_points = 512;
  /// Stream-clock seconds of silence after which AdvanceTime seals and
  /// closes a session.
  int64_t idle_timeout_s = 300;
};

/// One vehicle's open ingestion state: the bounded-lag online matcher
/// buffering the matched prefix, plus the bookkeeping the seal policy
/// reads. Not thread-safe — the ingestor serializes access per session.
class IngestSession {
 public:
  IngestSession(const network::RoadNetwork& net,
                const network::GridIndex& grid,
                const matching::OnlineMatchParams& params, uint64_t vehicle)
      : vehicle_(vehicle), matcher_(net, grid, params) {}

  uint64_t vehicle() const { return vehicle_; }

  /// Stream time of the last point pushed (whatever its fate); the idle
  /// timer's anchor. Meaningless until has_activity().
  traj::Timestamp last_activity() const { return last_activity_; }
  bool has_activity() const { return has_activity_; }

  /// Matched points buffered in the open segment.
  size_t num_points() const { return matcher_.num_points(); }
  size_t pending_steps() const { return matcher_.pending_steps(); }

  /// Feeds one point through the online matcher. `completed` in the result
  /// carries any segment a stream break just closed.
  matching::OnlineViterbi::AppendResult Push(const traj::RawPoint& p) {
    if (!has_activity_ || p.t > last_activity_) last_activity_ = p.t;
    has_activity_ = true;
    return matcher_.Append(p);
  }

  /// Seals the open segment (nullopt when fewer than two points matched);
  /// the session can keep ingesting afterwards (max-length seals do).
  std::optional<traj::UncertainTrajectory> Seal() { return matcher_.Finish(); }

 private:
  uint64_t vehicle_;
  matching::OnlineViterbi matcher_;
  traj::Timestamp last_activity_ = 0;
  bool has_activity_ = false;
};

}  // namespace utcq::ingest

#endif  // UTCQ_INGEST_SESSION_H_
