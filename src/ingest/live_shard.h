#ifndef UTCQ_INGEST_LIVE_SHARD_H_
#define UTCQ_INGEST_LIVE_SHARD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/encoder.h"
#include "core/query.h"
#include "core/stiu_index.h"
#include "network/grid_index.h"
#include "network/road_network.h"
#include "serve/tier.h"
#include "traj/types.h"

namespace utcq::ingest {

/// One immutable snapshot of the live shard, the serve layer's LiveTail:
/// a query processor over the sealed-but-unflushed trajectories plus
/// everything it borrows (its own copy of the compressed streams, the StIU
/// index built over them). Handed out by shared_ptr, so queries keep
/// running against it while the shard appends, flushes and rebuilds.
class LiveSnapshot final : public serve::LiveTail {
 public:
  const core::UtcqQueryProcessor& queries() const override { return *qp_; }
  uint32_t count() const override { return count_; }

  /// Global trajectory id of local index 0 (== the sealed set's size at
  /// snapshot time).
  uint32_t base() const { return base_; }
  const core::CompressedCorpus& corpus() const { return cc_; }
  const core::StiuIndex& index() const { return *index_; }

 private:
  friend class LiveShard;
  LiveSnapshot() = default;

  core::CompressedCorpus cc_;
  std::unique_ptr<core::StiuIndex> index_;
  std::unique_ptr<core::UtcqQueryProcessor> qp_;
  uint32_t base_ = 0;
  uint32_t count_ = 0;
};

/// The in-memory live shard of the streaming tier (DESIGN.md §10): sealed
/// trajectories are appended one at a time onto an incrementally grown
/// CompressedCorpus (UtcqCompressor::AppendTrajectory — bit-identical to
/// the batch build of the same sequence, which is what makes flushing
/// equal batch compression). Queries go through Snapshot(), a cached
/// immutable view rebuilt lazily after a change; the flusher freezes the
/// current snapshot to disk and then calls DropFlushed.
///
/// All entry points are thread-safe behind one internal mutex; the
/// expensive per-append work (the trajectory's compression) runs inside
/// it, serializing seals — acceptable because seals are rare next to
/// points, and required because the streams are append-ordered.
class LiveShard {
 public:
  /// `net` and `grid` must outlive the shard and every snapshot it hands
  /// out. index_params.cells_per_side is forced to the grid's.
  LiveShard(const network::RoadNetwork& net, const network::GridIndex& grid,
            core::UtcqParams params, core::StiuParams index_params);

  /// Global id of the next trajectory to be appended == base() + size().
  uint32_t base() const;
  size_t size() const;

  /// Appends a sealed trajectory (assigning it the next global id, also
  /// returned) and invalidates the cached snapshot.
  uint32_t Append(traj::UncertainTrajectory tu);

  /// The current immutable read-side; nullptr while the shard is empty.
  /// Cached: repeated calls between changes return the same snapshot. A
  /// miss copies the state under the lock but runs the expensive StIU
  /// build *outside* it (version-checked install, bounded retries), so
  /// seals and other snapshot readers keep flowing while one rebuilds.
  std::shared_ptr<const LiveSnapshot> Snapshot() const;

  /// Removes the `count` oldest trajectories (just flushed into the sealed
  /// set), advances base accordingly, and rebuilds the compressed streams
  /// over whatever arrived since the flushed snapshot was taken.
  void DropFlushed(size_t count);

  /// Re-anchors the global id space under the sealed set; only legal while
  /// the shard is empty (service open/reopen).
  void ResetBase(uint32_t base);

  /// Copy of the sealed-but-unflushed trajectories (tests, introspection).
  std::vector<traj::UncertainTrajectory> Trajectories() const;

 private:
  /// Builds a snapshot from the members directly.
  std::shared_ptr<const LiveSnapshot> BuildLocked() const UTCQ_REQUIRES(mu_);

  const network::RoadNetwork& net_;
  const network::GridIndex& grid_;
  core::StiuParams index_params_;
  /// The incremental encoder: AppendTrajectory mutates its reference
  /// bookkeeping, so it moves only under mu_ (constructor use aside).
  core::UtcqCompressor compressor_ UTCQ_GUARDED_BY(mu_);

  mutable common::Mutex mu_;
  uint32_t base_ UTCQ_GUARDED_BY(mu_) = 0;
  /// Bumped by every mutation; Snapshot's optimistic build re-validates
  /// against it before installing.
  uint64_t version_ UTCQ_GUARDED_BY(mu_) = 0;
  std::vector<traj::UncertainTrajectory> trajs_ UTCQ_GUARDED_BY(mu_);
  std::vector<std::vector<core::NrefFactorLayout>> layouts_
      UTCQ_GUARDED_BY(mu_);
  core::CompressedCorpus cc_ UTCQ_GUARDED_BY(mu_);
  mutable std::shared_ptr<const LiveSnapshot> cached_ UTCQ_GUARDED_BY(mu_);
};

}  // namespace utcq::ingest

#endif  // UTCQ_INGEST_LIVE_SHARD_H_
