#include "ingest/streaming_service.h"

#include <utility>

namespace utcq::ingest {

StreamingService::StreamingService(const network::RoadNetwork& net,
                                   const network::GridIndex& grid,
                                   std::string manifest_path,
                                   StreamingOptions opts)
    : live_(net, grid, opts.params, opts.index_params),
      flusher_(net, std::move(manifest_path), opts.registry, opts.clock),
      ingestor_(net, grid, opts.match, opts.limits,
                [this](traj::UncertainTrajectory&& tu, SealReason) {
                  live_.Append(std::move(tu));
                },
                opts.registry, opts.clock) {}

bool StreamingService::Open(std::string* error) {
  common::MutexLock flush_lock(flush_mu_);
  std::shared_ptr<const shard::ShardedCorpus> sealed;
  if (!flusher_.Open(error, &sealed)) return false;
  common::MutexLock tier_lock(tier_mu_);
  sealed_ = std::move(sealed);
  live_.ResetBase(static_cast<uint32_t>(
      sealed_ != nullptr ? sealed_->num_trajectories() : 0));
  return true;
}

bool StreamingService::Flush(std::string* error) {
  common::MutexLock flush_lock(flush_mu_);
  // Freeze the current tail; seals landing after this go to indices past
  // the frozen count and survive the trim untouched.
  const std::shared_ptr<const LiveSnapshot> snap = live_.Snapshot();
  if (snap == nullptr) return true;  // nothing to flush
  std::shared_ptr<const shard::ShardedCorpus> fresh;
  if (!flusher_.Flush(*snap, error, &fresh)) return false;
  // Publication: swap the sealed set and trim the live shard under the
  // tier lock, atomically w.r.t. Acquire — a snapshot sees the flushed
  // trajectories in exactly one of the two parts, never both or neither.
  common::MutexLock tier_lock(tier_mu_);
  sealed_ = std::move(fresh);
  live_.DropFlushed(snap->count());
  return true;
}

std::shared_ptr<const serve::TierSnapshot> StreamingService::Acquire() const {
  // The live snapshot may need a rebuild (stream copy + StIU), which must
  // not happen under the tier lock — queries, seals and flush publication
  // would all serialize behind it. Build optimistically outside, then
  // validate the sealed/live pairing under the lock; a mismatch means a
  // flush published in between (rare — flushes gate on disk I/O), so
  // retrying converges quickly.
  auto out = std::make_shared<serve::TierSnapshot>();
  for (;;) {
    std::shared_ptr<const shard::ShardedCorpus> sealed;
    {
      common::MutexLock tier_lock(tier_mu_);
      sealed = sealed_;
    }
    std::shared_ptr<const LiveSnapshot> live = live_.Snapshot();
    common::MutexLock tier_lock(tier_mu_);
    if (sealed_ != sealed) continue;  // raced a flush publication
    const size_t sealed_n =
        sealed != nullptr ? sealed->num_trajectories() : 0;
    if (live != nullptr && live->base() != sealed_n) continue;  // stale tail
    out->sealed = std::move(sealed);
    out->live = std::move(live);
    return out;
  }
}

size_t StreamingService::num_sealed() const {
  common::MutexLock tier_lock(tier_mu_);
  return sealed_ != nullptr ? sealed_->num_trajectories() : 0;
}

size_t StreamingService::num_trajectories() const {
  common::MutexLock tier_lock(tier_mu_);
  return (sealed_ != nullptr ? sealed_->num_trajectories() : 0) +
         live_.size();
}

size_t StreamingService::num_generations() const {
  common::MutexLock flush_lock(flush_mu_);
  return flusher_.num_generations();
}

}  // namespace utcq::ingest
