#ifndef UTCQ_INGEST_FLUSHER_H_
#define UTCQ_INGEST_FLUSHER_H_

#include <functional>
#include <memory>
#include <string>

#include "archive/archive.h"
#include "ingest/live_shard.h"
#include "network/road_network.h"
#include "shard/sharded.h"

namespace utcq::ingest {

/// Durability mechanism of the streaming tier (DESIGN.md §10): freezes a
/// live-shard snapshot into the next generation of an append-log archive
/// set — one §6 container per flush next to a §8 manifest whose shard s is
/// flush generation s, members the contiguous global ids it sealed.
///
/// Crash consistency is the write order: the generation's archive is
/// written (atomically) *first*, the manifest swap (atomic rename) is the
/// publication point *last*. A crash anywhere in between leaves the old
/// manifest naming only fully-written archives — a reopen sees exactly the
/// pre-flush set, never a torn one; the orphaned archive file is simply
/// overwritten by the retry. The pre-publish hook injects that crash in
/// tests.
///
/// Not internally synchronized: the owning service serializes flushes and
/// keeps the returned corpus for publication under its own tier lock.
class Flusher {
 public:
  /// `net` must be the network every generation was compressed against and
  /// must outlive the flusher and every corpus it opens.
  Flusher(const network::RoadNetwork& net, std::string manifest_path);

  /// Opens the existing archive set. A missing manifest is a fresh, empty
  /// set (*sealed stays null); a present-but-invalid set fails.
  bool Open(std::string* error,
            std::shared_ptr<const shard::ShardedCorpus>* sealed);

  /// Writes `live` as the next generation and swaps the manifest. On
  /// success *new_sealed holds the reopened post-flush set (the caller
  /// publishes it together with LiveShard::DropFlushed). On failure —
  /// including a hook-injected crash — the on-disk set and this object
  /// still describe the pre-flush state, and nothing was lost from the
  /// live shard.
  bool Flush(const LiveSnapshot& live, std::string* error,
             std::shared_ptr<const shard::ShardedCorpus>* new_sealed);

  /// Crash-injection point for tests: runs between the archive write and
  /// the manifest swap; returning false aborts the flush right there.
  void set_pre_publish_hook(std::function<bool()> hook) {
    hook_ = std::move(hook);
  }

  const std::string& manifest_path() const { return manifest_path_; }
  size_t num_generations() const { return manifest_.shards.size(); }
  /// Trajectories in the published sealed set.
  size_t num_sealed() const { return manifest_.num_trajectories(); }

 private:
  const network::RoadNetwork& net_;
  std::string manifest_path_;
  archive::ShardManifest manifest_;  // the published set
  std::function<bool()> hook_;
};

}  // namespace utcq::ingest

#endif  // UTCQ_INGEST_FLUSHER_H_
