#ifndef UTCQ_INGEST_FLUSHER_H_
#define UTCQ_INGEST_FLUSHER_H_

#include <functional>
#include <memory>
#include <string>

#include "archive/archive.h"
#include "ingest/live_shard.h"
#include "network/road_network.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "shard/sharded.h"

namespace utcq::ingest {

/// Publication steps of one Flush, in execution order. The declarative
/// crash matrix (tests/ingest_test.cc, DESIGN.md §11) injects a simulated
/// crash before/after each transition and asserts the on-disk invariant:
/// a reopen after a crash at any step sees either exactly the pre-flush
/// set (steps before the manifest swap) or exactly the post-flush set
/// (steps at or after it) — never a torn one.
enum class FlushStep : uint8_t {
  /// Nothing written yet; the generation archive is about to be saved.
  kBeforeArchiveWrite = 0,
  /// Generation archive on disk (atomically), manifest not yet swapped —
  /// the orphan-archive window; a retry simply overwrites the file.
  kAfterArchiveWrite = 1,
  /// Manifest swapped (the publication point) and the flusher's in-memory
  /// manifest committed to match; the set is not yet reopened.
  kAfterManifestSwap = 2,
  /// Post-flush set reopened; the corpus is about to be handed to the
  /// caller for tier publication (sealed-swap + live-trim).
  kBeforeHandoff = 3,
};

inline constexpr FlushStep kAllFlushSteps[] = {
    FlushStep::kBeforeArchiveWrite, FlushStep::kAfterArchiveWrite,
    FlushStep::kAfterManifestSwap, FlushStep::kBeforeHandoff};

/// Human-readable step name (crash-matrix failure messages).
const char* FlushStepName(FlushStep step);

/// Durability mechanism of the streaming tier (DESIGN.md §10): freezes a
/// live-shard snapshot into the next generation of an append-log archive
/// set — one §6 container per flush next to a §8 manifest whose shard s is
/// flush generation s, members the contiguous global ids it sealed.
///
/// Crash consistency is the write order: the generation's archive is
/// written (atomically) *first*, the manifest swap (atomic rename) is the
/// publication point *last*. A crash anywhere in between leaves the old
/// manifest naming only fully-written archives — a reopen sees exactly the
/// pre-flush set, never a torn one; the orphaned archive file is simply
/// overwritten by the retry. The pre-publish hook injects that crash in
/// tests.
///
/// Not internally synchronized: the owning service serializes flushes and
/// keeps the returned corpus for publication under its own tier lock.
class Flusher {
 public:
  /// `net` must be the network every generation was compressed against and
  /// must outlive the flusher and every corpus it opens. Flush attempts /
  /// failures / retries and a duration histogram are registered under
  /// `ingest.flush.*` in `registry` (DESIGN.md §15; nullptr = private
  /// registry); durations are timed against `clock` (nullptr = real).
  Flusher(const network::RoadNetwork& net, std::string manifest_path,
          obs::MetricRegistry* registry = nullptr,
          const obs::Clock* clock = nullptr);

  /// Opens the existing archive set. A missing manifest is a fresh, empty
  /// set (*sealed stays null); a present-but-invalid set fails.
  bool Open(std::string* error,
            std::shared_ptr<const shard::ShardedCorpus>* sealed);

  /// Writes `live` as the next generation and swaps the manifest. On
  /// success *new_sealed holds the reopened post-flush set (the caller
  /// publishes it together with LiveShard::DropFlushed). On failure —
  /// including a hook-injected crash — the on-disk set and this object
  /// still describe the pre-flush state, and nothing was lost from the
  /// live shard.
  bool Flush(const LiveSnapshot& live, std::string* error,
             std::shared_ptr<const shard::ShardedCorpus>* new_sealed);

  /// Crash-injection matrix for tests: invoked at every FlushStep in
  /// order; returning false aborts the flush right there, simulating a
  /// process crash at that publication step. Steps at or after
  /// kAfterManifestSwap abort *after* the on-disk swap, so the flush
  /// "fails" yet the generation is durably published — exactly the state
  /// a real crash leaves, and this object's manifest stays committed to
  /// match the disk (a later flush can never overwrite the published
  /// archive).
  using CrashHook = std::function<bool(FlushStep)>;
  void set_crash_hook(CrashHook hook) { hook_ = std::move(hook); }

  /// Back-compat single-point hook: fires at kAfterArchiveWrite only (the
  /// original archive-written/manifest-not-swapped crash window).
  void set_pre_publish_hook(std::function<bool()> hook) {
    if (!hook) {
      hook_ = nullptr;
      return;
    }
    hook_ = [hook = std::move(hook)](FlushStep step) {
      return step != FlushStep::kAfterArchiveWrite || hook();
    };
  }

  const std::string& manifest_path() const { return manifest_path_; }
  size_t num_generations() const { return manifest_.shards.size(); }
  /// Trajectories in the published sealed set.
  size_t num_sealed() const { return manifest_.num_trajectories(); }

 private:
  bool FlushInternal(const LiveSnapshot& live, std::string* error,
                     std::shared_ptr<const shard::ShardedCorpus>* new_sealed);

  const network::RoadNetwork& net_;
  std::string manifest_path_;
  archive::ShardManifest manifest_;  // the published set
  CrashHook hook_;

  /// Declared before the instrument pointers so they outlive every use.
  std::unique_ptr<obs::MetricRegistry> owned_registry_;
  const obs::Clock* clock_ = nullptr;
  obs::Counter* flush_attempts_ = nullptr;
  obs::Counter* flush_failures_ = nullptr;
  obs::Counter* flush_retries_ = nullptr;
  obs::Histogram* flush_duration_ = nullptr;
  /// The previous Flush failed; the next attempt counts as a retry (the
  /// crash-recovery loop the crash matrix exercises). Unsynchronized like
  /// the rest of the flusher — the owning service serializes flushes.
  bool retry_pending_ = false;
};

}  // namespace utcq::ingest

#endif  // UTCQ_INGEST_FLUSHER_H_
