#ifndef UTCQ_INGEST_INGESTOR_H_
#define UTCQ_INGEST_INGESTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "ingest/session.h"
#include "matching/online_viterbi.h"
#include "network/grid_index.h"
#include "network/road_network.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "traj/types.h"

namespace utcq::ingest {

/// Point-in-time ingestion counters.
struct IngestStats {
  uint64_t points = 0;
  uint64_t accepted = 0;
  uint64_t dropped_not_finite = 0;
  uint64_t dropped_out_of_order = 0;
  uint64_t dropped_no_candidates = 0;
  uint64_t segment_breaks = 0;
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;
  /// Segments emitted to the sink as trajectories.
  uint64_t trajectories_sealed = 0;
  /// Segments closed with fewer than two matched points (nothing to emit).
  uint64_t segments_discarded = 0;
};

/// The session manager of the streaming tier: routes per-vehicle GPS
/// points into IngestSessions, applies the seal policy (explicit end /
/// idle timeout / max length / stream break), and hands every sealed
/// trajectory to the sink — in the service, the live shard's Append.
///
/// Concurrency: the session map is guarded by one mutex, each session by
/// its own, and every counter is a lock-free obs instrument, so producers
/// for different vehicles ingest in parallel and only same-vehicle pushes
/// serialize. A session being sealed-and-removed concurrently with a push
/// for the same vehicle is detected via a closed flag and the push retries
/// into a fresh session — points are never silently dropped into a dead
/// session.
///
/// Instruments live under `ingest.*` in `registry` (DESIGN.md §15;
/// nullptr = private registry). Seal latency — seal decision to sink
/// return — is timed against `clock` (nullptr = the real steady clock).
class StreamIngestor {
 public:
  using SealSink =
      std::function<void(traj::UncertainTrajectory&&, SealReason)>;

  /// `net`, `grid` and `sink` must outlive the ingestor. The sink is
  /// invoked without any ingestor lock held (it takes its own).
  StreamIngestor(const network::RoadNetwork& net,
                 const network::GridIndex& grid,
                 matching::OnlineMatchParams match, SessionLimits limits,
                 SealSink sink, obs::MetricRegistry* registry = nullptr,
                 const obs::Clock* clock = nullptr);

  /// Feeds one point of `vehicle`'s stream, opening a session on first
  /// contact. May emit up to two sealed trajectories: one when a stream
  /// break closes the previous segment, one when the new point fills the
  /// segment to max_points.
  matching::AppendStatus Push(uint64_t vehicle, const traj::RawPoint& p);

  /// Seals and closes `vehicle`'s session. Returns trajectories emitted
  /// (0 or 1).
  size_t EndSession(uint64_t vehicle);
  size_t EndAllSessions();

  /// Advances the stream clock: sessions silent since before
  /// `now - idle_timeout_s` are sealed and closed. Returns trajectories
  /// emitted.
  size_t AdvanceTime(traj::Timestamp now);

  size_t open_sessions() const;
  IngestStats stats() const;

 private:
  struct Entry {
    Entry(const network::RoadNetwork& net, const network::GridIndex& grid,
          const matching::OnlineMatchParams& params, uint64_t vehicle)
        : session(net, grid, params, vehicle) {}
    common::Mutex mu;
    IngestSession session UTCQ_GUARDED_BY(mu);
    /// sealed-and-removed; pushes must retry
    bool closed UTCQ_GUARDED_BY(mu) = false;
  };

  std::shared_ptr<Entry> GetOrCreate(uint64_t vehicle);
  /// Emits a closed segment (counting discards); `had_segment` is whether
  /// any matched point was buffered when the close fired.
  size_t EmitClosed(std::optional<traj::UncertainTrajectory>&& tu,
                    SealReason reason, bool had_segment);
  size_t CloseEntry(uint64_t vehicle, const std::shared_ptr<Entry>& entry,
                    SealReason reason);

  const network::RoadNetwork& net_;
  const network::GridIndex& grid_;
  matching::OnlineMatchParams match_;
  SessionLimits limits_;
  SealSink sink_;

  /// Declared before the instrument pointers so they outlive every use.
  std::unique_ptr<obs::MetricRegistry> owned_registry_;
  const obs::Clock* clock_ = nullptr;
  obs::Counter* points_ = nullptr;
  obs::Counter* accepted_ = nullptr;
  obs::Counter* dropped_not_finite_ = nullptr;
  obs::Counter* dropped_out_of_order_ = nullptr;
  obs::Counter* dropped_no_candidates_ = nullptr;
  obs::Counter* segment_breaks_ = nullptr;
  obs::Counter* sessions_opened_ = nullptr;
  obs::Counter* sessions_closed_ = nullptr;
  obs::Counter* trajectories_sealed_ = nullptr;
  obs::Counter* segments_discarded_ = nullptr;
  obs::Gauge* sessions_open_ = nullptr;
  obs::Histogram* seal_latency_ = nullptr;

  mutable common::Mutex map_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Entry>> sessions_
      UTCQ_GUARDED_BY(map_mu_);
};

}  // namespace utcq::ingest

#endif  // UTCQ_INGEST_INGESTOR_H_
