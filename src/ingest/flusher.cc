#include "ingest/flusher.h"

#include <filesystem>
#include <numeric>
#include <utility>

namespace utcq::ingest {

namespace {

/// Basename of a path — flush generations are recorded in the manifest
/// relative to its own directory, exactly like ShardedBuild::Save.
std::string BaseName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

const char* FlushStepName(FlushStep step) {
  switch (step) {
    case FlushStep::kBeforeArchiveWrite:
      return "before-archive-write";
    case FlushStep::kAfterArchiveWrite:
      return "after-archive-write";
    case FlushStep::kAfterManifestSwap:
      return "after-manifest-swap";
    case FlushStep::kBeforeHandoff:
      return "before-handoff";
  }
  return "unknown-step";
}

Flusher::Flusher(const network::RoadNetwork& net, std::string manifest_path,
                 obs::MetricRegistry* registry, const obs::Clock* clock)
    : net_(net), manifest_path_(std::move(manifest_path)) {
  manifest_.policy = static_cast<uint8_t>(shard::ShardPolicy::kAppendLog);
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::MetricRegistry>();
    registry = owned_registry_.get();
  }
  clock_ = clock != nullptr ? clock : &obs::Clock::Real();
  flush_attempts_ = &registry->GetCounter("ingest.flush.attempts");
  flush_failures_ = &registry->GetCounter("ingest.flush.failures");
  flush_retries_ = &registry->GetCounter("ingest.flush.retries");
  flush_duration_ = &registry->GetHistogram("ingest.flush.duration_ns");
}

bool Flusher::Open(std::string* error,
                   std::shared_ptr<const shard::ShardedCorpus>* sealed) {
  std::error_code ec;
  if (!std::filesystem::exists(manifest_path_, ec)) {
    manifest_ = archive::ShardManifest{};
    manifest_.policy = static_cast<uint8_t>(shard::ShardPolicy::kAppendLog);
    sealed->reset();
    return true;
  }
  auto corpus = std::make_shared<shard::ShardedCorpus>();
  if (!corpus->Open(net_, manifest_path_, error)) return false;
  manifest_ = corpus->manifest();
  *sealed = std::move(corpus);
  return true;
}

bool Flusher::Flush(const LiveSnapshot& live, std::string* error,
                    std::shared_ptr<const shard::ShardedCorpus>* new_sealed) {
  flush_attempts_->Increment();
  if (retry_pending_) flush_retries_->Increment();
  bool ok = false;
  {
    const obs::ScopedTimer timer(*flush_duration_, *clock_);
    ok = FlushInternal(live, error, new_sealed);
  }
  if (!ok) flush_failures_->Increment();
  retry_pending_ = !ok;
  return ok;
}

bool Flusher::FlushInternal(
    const LiveSnapshot& live, std::string* error,
    std::shared_ptr<const shard::ShardedCorpus>* new_sealed) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (live.count() == 0) return fail("refusing to flush an empty live shard");
  const size_t base = manifest_.num_trajectories();
  if (live.base() != base) {
    return fail("live snapshot base disagrees with the sealed set");
  }

  // Crash matrix: the hook simulates a process crash at the given step.
  const auto crash = [&](FlushStep step) {
    return hook_ && !hook_(step);
  };
  const auto crashed = [&fail](FlushStep step) {
    return fail(std::string("flush aborted by crash hook at step ") +
                FlushStepName(step));
  };
  if (crash(FlushStep::kBeforeArchiveWrite)) {
    return crashed(FlushStep::kBeforeArchiveWrite);
  }

  const uint32_t gen = static_cast<uint32_t>(manifest_.shards.size());
  // Step 1: the generation's archive, atomically, *before* any publication.
  // A leftover file from a crashed previous attempt is simply overwritten.
  const archive::ArchiveWriter writer(live.corpus(), &live.index());
  if (!writer.Save(shard::ShardArchivePath(manifest_path_, gen), error)) {
    return false;
  }

  // Injectable crash between archive write and manifest swap.
  if (crash(FlushStep::kAfterArchiveWrite)) {
    return crashed(FlushStep::kAfterArchiveWrite);
  }

  // Step 2: the manifest swap is the publication point.
  archive::ShardManifest next = manifest_;
  next.policy = static_cast<uint8_t>(shard::ShardPolicy::kAppendLog);
  next.time_partition_s = 0;
  archive::ShardManifest::Shard entry;
  entry.file = shard::ShardArchivePath(BaseName(manifest_path_), gen);
  entry.members.resize(live.count());
  std::iota(entry.members.begin(), entry.members.end(),
            static_cast<uint32_t>(base));
  next.shards.push_back(std::move(entry));
  if (!archive::SaveBytesAtomic(archive::EncodeShardManifest(next),
                                manifest_path_, error)) {
    return false;
  }

  // The swap published the generation: record it *before* the reopen (and
  // before any injected crash), so even a (freak) reopen failure can never
  // lead to a later flush overwriting an already-published archive file.
  manifest_ = std::move(next);

  if (crash(FlushStep::kAfterManifestSwap)) {
    return crashed(FlushStep::kAfterManifestSwap);
  }

  // Step 3: reopen the published set for the caller to swap in.
  auto corpus = std::make_shared<shard::ShardedCorpus>();
  if (!corpus->Open(net_, manifest_path_, error)) return false;

  if (crash(FlushStep::kBeforeHandoff)) {
    return crashed(FlushStep::kBeforeHandoff);
  }
  *new_sealed = std::move(corpus);
  return true;
}

}  // namespace utcq::ingest
