#include "ingest/session.h"

namespace utcq::ingest {

const char* SealReasonName(SealReason reason) {
  switch (reason) {
    case SealReason::kExplicitEnd:
      return "explicit-end";
    case SealReason::kIdleTimeout:
      return "idle-timeout";
    case SealReason::kMaxLength:
      return "max-length";
    case SealReason::kStreamBreak:
      return "stream-break";
  }
  return "unknown";
}

}  // namespace utcq::ingest
