#include "ingest/ingestor.h"

#include <utility>
#include <vector>

namespace utcq::ingest {

using matching::AppendStatus;

StreamIngestor::StreamIngestor(const network::RoadNetwork& net,
                               const network::GridIndex& grid,
                               matching::OnlineMatchParams match,
                               SessionLimits limits, SealSink sink,
                               obs::MetricRegistry* registry,
                               const obs::Clock* clock)
    : net_(net),
      grid_(grid),
      match_(match),
      limits_(limits),
      sink_(std::move(sink)) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::MetricRegistry>();
    registry = owned_registry_.get();
  }
  clock_ = clock != nullptr ? clock : &obs::Clock::Real();
  points_ = &registry->GetCounter("ingest.points");
  accepted_ = &registry->GetCounter("ingest.accepted");
  dropped_not_finite_ = &registry->GetCounter("ingest.dropped_not_finite");
  dropped_out_of_order_ =
      &registry->GetCounter("ingest.dropped_out_of_order");
  dropped_no_candidates_ =
      &registry->GetCounter("ingest.dropped_no_candidates");
  segment_breaks_ = &registry->GetCounter("ingest.segment_breaks");
  sessions_opened_ = &registry->GetCounter("ingest.sessions_opened");
  sessions_closed_ = &registry->GetCounter("ingest.sessions_closed");
  trajectories_sealed_ = &registry->GetCounter("ingest.trajectories_sealed");
  segments_discarded_ = &registry->GetCounter("ingest.segments_discarded");
  sessions_open_ = &registry->GetGauge("ingest.sessions.open");
  seal_latency_ = &registry->GetHistogram("ingest.seal_latency_ns");
}

std::shared_ptr<StreamIngestor::Entry> StreamIngestor::GetOrCreate(
    uint64_t vehicle) {
  common::MutexLock lock(map_mu_);
  auto it = sessions_.find(vehicle);
  if (it != sessions_.end()) return it->second;
  auto entry = std::make_shared<Entry>(net_, grid_, match_, vehicle);
  sessions_.emplace(vehicle, entry);
  sessions_opened_->Increment();
  sessions_open_->Add(1);
  return entry;
}

size_t StreamIngestor::EmitClosed(std::optional<traj::UncertainTrajectory>&& tu,
                                  SealReason reason, bool had_segment) {
  if (tu.has_value()) {
    // Seal latency: handing the sealed trajectory to the sink — in the
    // service, the live shard's incremental compress + index append.
    const obs::ScopedTimer timer(*seal_latency_, *clock_);
    trajectories_sealed_->Increment();
    sink_(std::move(*tu), reason);
    return 1;
  }
  if (had_segment) {
    segments_discarded_->Increment();
  }
  return 0;
}

AppendStatus StreamIngestor::Push(uint64_t vehicle, const traj::RawPoint& p) {
  for (;;) {
    const std::shared_ptr<Entry> entry = GetOrCreate(vehicle);
    std::optional<traj::UncertainTrajectory> broke;
    std::optional<traj::UncertainTrajectory> full;
    bool full_had_segment = false;
    AppendStatus status;
    {
      common::MutexLock lock(entry->mu);
      if (entry->closed) continue;  // raced a seal-and-remove; fresh session
      auto result = entry->session.Push(p);
      status = result.status;
      broke = std::move(result.completed);
      if (entry->session.num_points() >= limits_.max_points) {
        full_had_segment = entry->session.num_points() > 0;
        full = entry->session.Seal();
      }
    }
    points_->Increment();
    switch (status) {
      case AppendStatus::kAccepted:
        accepted_->Increment();
        break;
      case AppendStatus::kDroppedNotFinite:
        dropped_not_finite_->Increment();
        break;
      case AppendStatus::kDroppedOutOfOrder:
        dropped_out_of_order_->Increment();
        break;
      case AppendStatus::kDroppedNoCandidates:
        dropped_no_candidates_->Increment();
        break;
      case AppendStatus::kSegmentBreak:
        segment_breaks_->Increment();
        break;
    }
    // Emission outside the session lock: the sink locks the live shard.
    if (broke.has_value() || status == AppendStatus::kSegmentBreak) {
      EmitClosed(std::move(broke), SealReason::kStreamBreak,
                 /*had_segment=*/true);
    }
    if (full.has_value() || full_had_segment) {
      EmitClosed(std::move(full), SealReason::kMaxLength, full_had_segment);
    }
    return status;
  }
}

size_t StreamIngestor::CloseEntry(uint64_t vehicle,
                                  const std::shared_ptr<Entry>& entry,
                                  SealReason reason) {
  std::optional<traj::UncertainTrajectory> tu;
  bool had_segment = false;
  {
    common::MutexLock lock(entry->mu);
    if (entry->closed) return 0;
    had_segment = entry->session.num_points() > 0;
    tu = entry->session.Seal();
    entry->closed = true;
  }
  {
    common::MutexLock lock(map_mu_);
    auto it = sessions_.find(vehicle);
    if (it != sessions_.end() && it->second == entry) {
      sessions_.erase(it);
      sessions_open_->Sub(1);
    }
  }
  sessions_closed_->Increment();
  return EmitClosed(std::move(tu), reason, had_segment);
}

size_t StreamIngestor::EndSession(uint64_t vehicle) {
  std::shared_ptr<Entry> entry;
  {
    common::MutexLock lock(map_mu_);
    auto it = sessions_.find(vehicle);
    if (it == sessions_.end()) return 0;
    entry = it->second;
  }
  return CloseEntry(vehicle, entry, SealReason::kExplicitEnd);
}

size_t StreamIngestor::EndAllSessions() {
  std::vector<std::pair<uint64_t, std::shared_ptr<Entry>>> all;
  {
    common::MutexLock lock(map_mu_);
    all.assign(sessions_.begin(), sessions_.end());
  }
  size_t sealed = 0;
  for (auto& [vehicle, entry] : all) {
    sealed += CloseEntry(vehicle, entry, SealReason::kExplicitEnd);
  }
  return sealed;
}

size_t StreamIngestor::AdvanceTime(traj::Timestamp now) {
  std::vector<std::pair<uint64_t, std::shared_ptr<Entry>>> all;
  {
    common::MutexLock lock(map_mu_);
    all.assign(sessions_.begin(), sessions_.end());
  }
  size_t sealed = 0;
  for (auto& [vehicle, entry] : all) {
    bool idle;
    {
      common::MutexLock lock(entry->mu);
      idle = !entry->session.has_activity() ||
             now - entry->session.last_activity() > limits_.idle_timeout_s;
    }
    if (idle) sealed += CloseEntry(vehicle, entry, SealReason::kIdleTimeout);
  }
  return sealed;
}

size_t StreamIngestor::open_sessions() const {
  common::MutexLock lock(map_mu_);
  return sessions_.size();
}

IngestStats StreamIngestor::stats() const {
  IngestStats out;
  out.points = points_->value();
  out.accepted = accepted_->value();
  out.dropped_not_finite = dropped_not_finite_->value();
  out.dropped_out_of_order = dropped_out_of_order_->value();
  out.dropped_no_candidates = dropped_no_candidates_->value();
  out.segment_breaks = segment_breaks_->value();
  out.sessions_opened = sessions_opened_->value();
  out.sessions_closed = sessions_closed_->value();
  out.trajectories_sealed = trajectories_sealed_->value();
  out.segments_discarded = segments_discarded_->value();
  return out;
}

}  // namespace utcq::ingest
