#ifndef UTCQ_INGEST_STREAMING_SERVICE_H_
#define UTCQ_INGEST_STREAMING_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "ingest/flusher.h"
#include "ingest/ingestor.h"
#include "ingest/live_shard.h"
#include "ingest/session.h"
#include "network/grid_index.h"
#include "network/road_network.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "serve/tier.h"

namespace utcq::ingest {

/// Everything the streaming tier is tuned by, in one bundle.
struct StreamingOptions {
  /// Online map matching (bounded lag + the batch MatchParams).
  matching::OnlineMatchParams match;
  /// Seal policy.
  SessionLimits limits;
  /// Compression and StIU parameters of the live shard and every flushed
  /// generation (index cells are forced to the grid's resolution).
  core::UtcqParams params;
  core::StiuParams index_params;
  /// Where the ingest tier's `ingest.*` instruments live (DESIGN.md §15).
  /// nullptr = each component owns a private registry; a server passes one
  /// registry (shared with its QueryEngine) for unified export.
  obs::MetricRegistry* registry = nullptr;
  /// Time source for seal-latency / flush-duration histograms; nullptr =
  /// the real steady clock.
  const obs::Clock* clock = nullptr;
};

/// The streaming ingestion service (DESIGN.md §10) — the subsystem that
/// turns the batch compressor into something GPS points can be thrown at:
///
///   raw point --Push--> IngestSession (online Viterbi, bounded lag)
///     --seal--> LiveShard (incremental UtcqCompressor + StIU)
///     --Flush--> append-log archive set on disk (crash-consistent)
///
/// and the serving side: StreamingService is a serve::TierSource, so a
/// serve::QueryEngine constructed over it answers Where/When/Range across
/// the union of the flushed (sealed) set and the unflushed live tail under
/// a snapshot-consistent view. Stream-then-flush equals batch: flushing
/// writes exactly the bytes batch compression of the same sealed
/// trajectories would produce (pinned by tests/ingest_test.cc).
///
/// Thread safety: Push/EndSession/AdvanceTime, Flush, and Acquire may all
/// race freely. Ingestion locks per session + the live shard; Acquire
/// takes the tier lock; Flush does its disk work without blocking either
/// and takes the tier lock only for the final publication (sealed-set swap
/// + live-shard trim), which is what keeps every Acquire'd view exact.
class StreamingService final : public serve::TierSource {
 public:
  /// `net` and `grid` must outlive the service. `manifest_path` is where
  /// the sealed set lives; call Open() before anything else.
  StreamingService(const network::RoadNetwork& net,
                   const network::GridIndex& grid, std::string manifest_path,
                   StreamingOptions opts);

  /// Opens the sealed set (a missing manifest means a fresh service) and
  /// anchors the live shard's id space after it. Unflushed live data of a
  /// previous process is gone by design — a crash loses at most the tail
  /// sealed since the last Flush, never flushed generations.
  bool Open(std::string* error = nullptr);

  // --- ingestion ---
  matching::AppendStatus Push(uint64_t vehicle, const traj::RawPoint& p) {
    return ingestor_.Push(vehicle, p);
  }
  size_t EndSession(uint64_t vehicle) { return ingestor_.EndSession(vehicle); }
  size_t EndAllSessions() { return ingestor_.EndAllSessions(); }
  size_t AdvanceTime(traj::Timestamp now) {
    return ingestor_.AdvanceTime(now);
  }

  // --- durability ---
  /// Freezes the live shard into the next on-disk generation. A no-op
  /// success when the live shard is empty. Serialized against itself;
  /// ingestion and queries keep running throughout.
  bool Flush(std::string* error = nullptr);
  /// Crash-injection for tests; see Flusher::set_pre_publish_hook.
  void set_flush_hook(std::function<bool()> hook) {
    common::MutexLock flush_lock(flush_mu_);
    flusher_.set_pre_publish_hook(std::move(hook));
  }
  /// Full crash matrix (every FlushStep); see Flusher::set_crash_hook.
  void set_flush_crash_hook(Flusher::CrashHook hook) {
    common::MutexLock flush_lock(flush_mu_);
    flusher_.set_crash_hook(std::move(hook));
  }

  // --- serving (serve::TierSource) ---
  std::shared_ptr<const serve::TierSnapshot> Acquire() const override;

  // --- introspection ---
  IngestStats stats() const { return ingestor_.stats(); }
  size_t open_sessions() const { return ingestor_.open_sessions(); }
  size_t num_sealed() const;
  size_t num_live() const { return live_.size(); }
  size_t num_trajectories() const;
  size_t num_generations() const;
  std::string manifest_path() const {
    common::MutexLock flush_lock(flush_mu_);
    return flusher_.manifest_path();
  }
  /// Copy of the unflushed trajectories (tests pin stream==batch with it).
  std::vector<traj::UncertainTrajectory> LiveTrajectories() const {
    return live_.Trajectories();
  }

 private:
  LiveShard live_;
  /// Not internally synchronized (see Flusher docs) — every touch,
  /// including the inline hook setters above, holds flush_mu_.
  Flusher flusher_ UTCQ_GUARDED_BY(flush_mu_);
  StreamIngestor ingestor_;  // declared last: its sink appends into live_

  /// Guards the published tier (sealed_ + live_'s base/trim) against
  /// Acquire, so every snapshot sees sealed and live agreeing on the id
  /// split. Always taken before the live shard's internal lock — the
  /// flush publication point depends on this order (DESIGN.md §13).
  mutable common::Mutex tier_mu_;
  std::shared_ptr<const shard::ShardedCorpus> sealed_
      UTCQ_GUARDED_BY(tier_mu_);

  /// Serializes flushes (and Open) against each other only.
  mutable common::Mutex flush_mu_;
};

}  // namespace utcq::ingest

#endif  // UTCQ_INGEST_STREAMING_SERVICE_H_
