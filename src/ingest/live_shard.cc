#include "ingest/live_shard.h"

#include <utility>

namespace utcq::ingest {

LiveShard::LiveShard(const network::RoadNetwork& net,
                     const network::GridIndex& grid, core::UtcqParams params,
                     core::StiuParams index_params)
    : net_(net),
      grid_(grid),
      index_params_(index_params),
      compressor_(net, params),
      cc_(compressor_.Begin()) {
  index_params_.cells_per_side = grid.cells_per_side();
}

uint32_t LiveShard::base() const {
  common::MutexLock lock(mu_);
  return base_;
}

size_t LiveShard::size() const {
  common::MutexLock lock(mu_);
  return trajs_.size();
}

uint32_t LiveShard::Append(traj::UncertainTrajectory tu) {
  common::MutexLock lock(mu_);
  const uint32_t id = base_ + static_cast<uint32_t>(trajs_.size());
  tu.id = id;
  layouts_.emplace_back();
  compressor_.AppendTrajectory(tu, &cc_, &layouts_.back());
  trajs_.push_back(std::move(tu));
  ++version_;
  cached_.reset();
  return id;
}

std::shared_ptr<const LiveSnapshot> LiveShard::BuildLocked() const {
  auto snap = std::shared_ptr<LiveSnapshot>(new LiveSnapshot());
  // The snapshot owns a copy of the streams: later appends extend cc_'s
  // buffers (possibly reallocating) without invalidating the views below.
  snap->cc_ = cc_;
  snap->base_ = base_;
  snap->count_ = static_cast<uint32_t>(trajs_.size());
  snap->index_ = std::make_unique<core::StiuIndex>(
      net_, grid_, trajs_, snap->cc_.view(), layouts_, index_params_);
  snap->qp_ = std::make_unique<core::UtcqQueryProcessor>(
      net_, snap->cc_.view(), *snap->index_);
  return snap;
}

std::shared_ptr<const LiveSnapshot> LiveShard::Snapshot() const {
  // Optimistic path: copy the inputs under the lock, run the expensive
  // StIU build outside it, install only if nothing changed meanwhile — so
  // a rebuild never stalls seals or other readers. A seal storm can keep
  // invalidating the build; after a few attempts fall back to building
  // under the lock, which always makes progress.
  for (int attempt = 0; attempt < 3; ++attempt) {
    uint64_t version;
    auto snap = std::shared_ptr<LiveSnapshot>(new LiveSnapshot());
    traj::UncertainCorpus trajs;
    std::vector<std::vector<core::NrefFactorLayout>> layouts;
    {
      common::MutexLock lock(mu_);
      if (trajs_.empty()) return nullptr;
      if (cached_ != nullptr) return cached_;
      version = version_;
      snap->cc_ = cc_;
      snap->base_ = base_;
      snap->count_ = static_cast<uint32_t>(trajs_.size());
      trajs = trajs_;
      layouts = layouts_;
    }
    snap->index_ = std::make_unique<core::StiuIndex>(
        net_, grid_, trajs, snap->cc_.view(), layouts, index_params_);
    snap->qp_ = std::make_unique<core::UtcqQueryProcessor>(
        net_, snap->cc_.view(), *snap->index_);
    common::MutexLock lock(mu_);
    if (version_ == version) {
      cached_ = snap;
      return cached_;
    }
    // Stale build; a concurrent builder may have installed a fresh one.
    if (cached_ != nullptr) return cached_;
  }
  common::MutexLock lock(mu_);
  if (trajs_.empty()) return nullptr;
  if (cached_ == nullptr) cached_ = BuildLocked();
  return cached_;
}

void LiveShard::DropFlushed(size_t count) {
  common::MutexLock lock(mu_);
  if (count == 0) return;
  if (count > trajs_.size()) count = trajs_.size();
  trajs_.erase(trajs_.begin(),
               trajs_.begin() + static_cast<ptrdiff_t>(count));
  layouts_.erase(layouts_.begin(),
                 layouts_.begin() + static_cast<ptrdiff_t>(count));
  base_ += static_cast<uint32_t>(count);
  // Re-encode the survivors (seals that raced the flush) onto fresh
  // streams; per-trajectory encoding is position-independent, so their
  // decoded form — and thus any cached handle — is unchanged.
  cc_ = compressor_.Begin();
  std::vector<std::vector<core::NrefFactorLayout>> fresh;
  fresh.reserve(trajs_.size());
  for (const traj::UncertainTrajectory& tu : trajs_) {
    fresh.emplace_back();
    compressor_.AppendTrajectory(tu, &cc_, &fresh.back());
  }
  layouts_ = std::move(fresh);
  ++version_;
  cached_.reset();
}

void LiveShard::ResetBase(uint32_t base) {
  common::MutexLock lock(mu_);
  if (!trajs_.empty()) return;  // ids already handed out; never renumber
  base_ = base;
  ++version_;
  cached_.reset();
}

std::vector<traj::UncertainTrajectory> LiveShard::Trajectories() const {
  common::MutexLock lock(mu_);
  return trajs_;
}

}  // namespace utcq::ingest
