#include "matching/candidates.h"

#include <algorithm>
#include <cmath>

namespace utcq::matching {

std::vector<Candidate> FindCandidates(const network::GridIndex& grid,
                                      const traj::RawPoint& point,
                                      double radius, size_t max_candidates) {
  std::vector<Candidate> candidates;
  for (const network::EdgeId e : grid.EdgesNear(point.x, point.y, radius)) {
    double offset = 0.0;
    const double d = grid.DistanceToEdge(point.x, point.y, e, &offset);
    candidates.push_back({e, offset, d});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.distance < b.distance;
            });
  if (candidates.size() > max_candidates) candidates.resize(max_candidates);
  return candidates;
}

double EmissionLogProb(double distance, double sigma) {
  return -(distance * distance) / (2.0 * sigma * sigma);
}

}  // namespace utcq::matching
