#include "matching/online_viterbi.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace utcq::matching {

using network::EdgeId;
using traj::TrajectoryInstance;
using traj::UncertainTrajectory;

void OnlineViterbi::Step::Shrink() {
  cands.clear();
  cands.shrink_to_fit();
  hypos.clear();
  hypos.shrink_to_fit();
  transitions.clear();
}

OnlineViterbi::Transition OnlineViterbi::ComputeTransition(
    const Candidate& from, const Candidate& to, double budget_m) const {
  Transition tr;
  if (from.edge == to.edge && to.offset >= from.offset) {
    tr.feasible = true;
    tr.same_edge = true;
    tr.route_m = to.offset - from.offset;
    return tr;
  }
  const auto& e1 = net_.edge(from.edge);
  const auto& e2 = net_.edge(to.edge);
  const auto mid = net_.ShortestPath(e1.to, e2.from, budget_m);
  if (!mid.has_value()) return tr;
  double mid_len = 0.0;
  for (const EdgeId e : *mid) mid_len += net_.edge(e).length;
  tr.feasible = true;
  tr.appended = *mid;
  tr.appended.push_back(to.edge);
  tr.route_m = (e1.length - from.offset) + mid_len + to.offset;
  return tr;
}

OnlineViterbi::AppendResult OnlineViterbi::Append(const traj::RawPoint& p) {
  AppendResult res;
  if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
    res.status = AppendStatus::kDroppedNotFinite;
    return res;
  }
  if (has_last_t_ && p.t <= last_t_) {
    res.status = AppendStatus::kDroppedOutOfOrder;
    return res;
  }

  // A gap larger than max_gap_s must not be bridged as if the vehicle had
  // travelled it: close the segment first, then treat `p` as a fresh start.
  if (!steps_.empty() && params_.match.max_gap_s > 0 &&
      p.t - last_t_ > params_.match.max_gap_s) {
    res.completed = Finish();
    res.status = AppendStatus::kSegmentBreak;
  }

  auto cands = FindCandidates(grid_, p, params_.match.candidate_radius_m,
                              params_.match.max_candidates);
  if (cands.empty()) {
    if (res.status != AppendStatus::kSegmentBreak) {
      res.status = AppendStatus::kDroppedNoCandidates;
    }
    return res;
  }

  if (steps_.empty()) {
    Seed(p, std::move(cands));
    last_t_ = p.t;
    has_last_t_ = true;
    return res;
  }

  if (!ExtendTrellis(p, cands)) {
    // HMM break: no feasible way into this point from any hypothesis.
    // (A gap break cannot have fired too — it left the trellis empty.)
    res.completed = Finish();
    res.status = AppendStatus::kSegmentBreak;
    Seed(p, std::move(cands));
    last_t_ = p.t;
    has_last_t_ = true;
    return res;
  }
  last_t_ = p.t;
  has_last_t_ = true;

  CommitConverged();
  if (params_.max_pending_steps > 0) {
    while (pending_steps() > params_.max_pending_steps &&
           pending_steps() > 1) {
      ForceOldestDecision();
      CommitConverged();
    }
  }
  return res;
}

void OnlineViterbi::Seed(const traj::RawPoint& p,
                         std::vector<Candidate> cands) {
  Step step;
  step.point = p;
  step.hypos.resize(cands.size());
  for (size_t c = 0; c < cands.size(); ++c) {
    step.hypos[c].push_back(
        {EmissionLogProb(cands[c].distance, params_.match.gps_sigma_m), -1,
         -1, false});
  }
  step.cands = std::move(cands);
  steps_.push_back(std::move(step));
}

bool OnlineViterbi::ExtendTrellis(const traj::RawPoint& p,
                                  const std::vector<Candidate>& cands) {
  const Step& prev = steps_.back();
  const double straight =
      network::Distance(prev.point.x, prev.point.y, p.x, p.y);
  const double budget = straight * params_.match.route_slack_factor +
                        params_.match.route_slack_abs_m;
  const size_t K = std::max<size_t>(params_.match.max_instances, 1);

  Step step;
  step.point = p;
  step.cands = cands;
  step.hypos.resize(cands.size());
  bool any = false;
  for (size_t c = 0; c < cands.size(); ++c) {
    const double emit =
        EmissionLogProb(cands[c].distance, params_.match.gps_sigma_m);
    std::vector<Hypo> pool;
    for (size_t pc = 0; pc < prev.cands.size(); ++pc) {
      bool alive = false;
      for (const Hypo& h : prev.hypos[pc]) {
        if (!h.dead) {
          alive = true;
          break;
        }
      }
      if (!alive) continue;
      Transition tr = ComputeTransition(prev.cands[pc], cands[c], budget);
      if (!tr.feasible) continue;
      const double trans_logp = -std::abs(tr.route_m - straight) /
                                params_.match.transition_beta_m;
      step.transitions[{static_cast<int>(pc), static_cast<int>(c)}] =
          std::move(tr);
      for (size_t h = 0; h < prev.hypos[pc].size(); ++h) {
        if (prev.hypos[pc][h].dead) continue;
        pool.push_back({prev.hypos[pc][h].logp + trans_logp + emit,
                        static_cast<int>(pc), static_cast<int>(h), false});
      }
    }
    std::sort(pool.begin(), pool.end(),
              [](const Hypo& a, const Hypo& b) { return a.logp > b.logp; });
    if (pool.size() > K) pool.resize(K);
    step.hypos[c] = std::move(pool);
    any = any || !step.hypos[c].empty();
  }
  if (!any) return false;
  steps_.push_back(std::move(step));
  return true;
}

void OnlineViterbi::MaterializeStep(PartialPath& out, size_t s, int cand_idx,
                                    int prev_cand) const {
  const Candidate& cd = steps_[s].cands[static_cast<size_t>(cand_idx)];
  if (out.path.empty()) {  // first matched point of the segment
    out.path.push_back(cd.edge);
    out.locations.push_back({0, cd.offset / net_.edge(cd.edge).length});
    return;
  }
  const Transition& tr = steps_[s].transitions.at({prev_cand, cand_idx});
  if (!tr.same_edge) {
    out.path.insert(out.path.end(), tr.appended.begin(), tr.appended.end());
  }
  double rd = cd.offset / net_.edge(cd.edge).length;
  const uint32_t pi = static_cast<uint32_t>(out.path.size() - 1);
  // Clamp same-edge rd regressions introduced by noise (batch rule, applied
  // sequentially — the previous location is already clamped).
  const traj::MappedLocation& prev = out.locations.back();
  if (pi == prev.path_index && rd < prev.rd) rd = prev.rd;
  out.locations.push_back({pi, rd});
}

void OnlineViterbi::CommitConverged() {
  if (steps_.size() < 2) return;
  const size_t last = steps_.size() - 1;

  // Walk the ancestor sets A_k of the alive terminal hypotheses backwards;
  // the first k (largest, and always < last so the trellis keeps a column
  // to extend from) where |A_k| == 1 ends the newly decided prefix.
  std::vector<std::pair<int, int>> cur;
  for (size_t c = 0; c < steps_[last].hypos.size(); ++c) {
    for (size_t h = 0; h < steps_[last].hypos[c].size(); ++h) {
      if (!steps_[last].hypos[c][h].dead) {
        cur.push_back({static_cast<int>(c), static_cast<int>(h)});
      }
    }
  }
  if (cur.empty()) return;

  size_t k = last;
  bool collapsed = false;
  while (k > decided_) {
    std::vector<std::pair<int, int>> prev;
    prev.reserve(cur.size());
    for (const auto& [c, h] : cur) {
      const Hypo& hy =
          steps_[k].hypos[static_cast<size_t>(c)][static_cast<size_t>(h)];
      prev.push_back({hy.prev_cand, hy.prev_hypo});
    }
    std::sort(prev.begin(), prev.end());
    prev.erase(std::unique(prev.begin(), prev.end()), prev.end());
    --k;
    cur = std::move(prev);
    if (cur.size() == 1) {
      collapsed = true;
      break;
    }
  }
  if (!collapsed) return;

  // Unique chain decided_..k: trace back from the collapse state.
  const size_t len = k - decided_ + 1;
  std::vector<int> chain(len);
  int c = cur[0].first;
  int h = cur[0].second;
  for (size_t s = k + 1; s-- > decided_;) {
    chain[s - decided_] = c;
    const Hypo& hy =
        steps_[s].hypos[static_cast<size_t>(c)][static_cast<size_t>(h)];
    c = hy.prev_cand;
    h = hy.prev_hypo;
  }
  int prev_cand = c;  // committed candidate before the chain (-1 at start)
  for (size_t i = 0; i < len; ++i) {
    const size_t s = decided_ + i;
    MaterializeStep(prefix_, s, chain[i], prev_cand);
    prev_cand = chain[i];
    steps_[s].Shrink();
  }
  decided_ = k + 1;
}

void OnlineViterbi::ForceOldestDecision() {
  const size_t last = steps_.size() - 1;
  if (last <= decided_) return;  // only the newest column is pending

  // The best alive terminal decides the oldest pending step.
  double best = -std::numeric_limits<double>::infinity();
  int bc = -1;
  int bh = -1;
  for (size_t c = 0; c < steps_[last].hypos.size(); ++c) {
    for (size_t h = 0; h < steps_[last].hypos[c].size(); ++h) {
      const Hypo& hy = steps_[last].hypos[c][h];
      if (!hy.dead && hy.logp > best) {
        best = hy.logp;
        bc = static_cast<int>(c);
        bh = static_cast<int>(h);
      }
    }
  }
  if (bc < 0) return;  // no alive terminal (cannot happen)

  int c = bc;
  int h = bh;
  for (size_t s = last; s > decided_; --s) {
    const Hypo& hy =
        steps_[s].hypos[static_cast<size_t>(c)][static_cast<size_t>(h)];
    c = hy.prev_cand;
    h = hy.prev_hypo;
  }

  // Kill every contradicting hypothesis at the forced step, then sweep the
  // contradiction forward so later pools and terminals never resurrect it.
  Step& forced = steps_[decided_];
  for (size_t cc = 0; cc < forced.hypos.size(); ++cc) {
    for (size_t hh = 0; hh < forced.hypos[cc].size(); ++hh) {
      if (static_cast<int>(cc) != c || static_cast<int>(hh) != h) {
        forced.hypos[cc][hh].dead = true;
      }
    }
  }
  for (size_t s = decided_ + 1; s <= last; ++s) {
    for (auto& per_cand : steps_[s].hypos) {
      for (Hypo& hy : per_cand) {
        if (hy.dead) continue;
        const Hypo& prev =
            steps_[s - 1].hypos[static_cast<size_t>(hy.prev_cand)]
                              [static_cast<size_t>(hy.prev_hypo)];
        if (prev.dead) hy.dead = true;
      }
    }
  }

  // Commit the forced step itself.
  const Hypo& chosen =
      forced.hypos[static_cast<size_t>(c)][static_cast<size_t>(h)];
  MaterializeStep(prefix_, decided_, c, chosen.prev_cand);
  forced.Shrink();
  ++decided_;
}

std::optional<UncertainTrajectory> OnlineViterbi::FinishCurrent() const {
  if (steps_.size() < 2) return std::nullopt;
  const size_t last = steps_.size() - 1;
  const size_t K = std::max<size_t>(params_.match.max_instances, 1);

  struct Terminal {
    double logp;
    int cand;
    int hypo;
  };
  std::vector<Terminal> terminals;
  for (size_t c = 0; c < steps_[last].hypos.size(); ++c) {
    for (size_t h = 0; h < steps_[last].hypos[c].size(); ++h) {
      const Hypo& hy = steps_[last].hypos[c][h];
      if (!hy.dead) {
        terminals.push_back(
            {hy.logp, static_cast<int>(c), static_cast<int>(h)});
      }
    }
  }
  if (terminals.empty()) return std::nullopt;
  std::sort(terminals.begin(), terminals.end(),
            [](const Terminal& a, const Terminal& b) {
              return a.logp > b.logp;
            });
  if (terminals.size() > K) terminals.resize(K);

  UncertainTrajectory tu;
  tu.times.reserve(steps_.size());
  for (const Step& s : steps_) tu.times.push_back(s.point.t);

  std::vector<double> logps;
  for (const Terminal& term : terminals) {
    const size_t len = last - decided_ + 1;
    std::vector<int> chain(len);
    int c = term.cand;
    int h = term.hypo;
    for (size_t s = last + 1; s-- > decided_;) {
      chain[s - decided_] = c;
      const Hypo& hy =
          steps_[s].hypos[static_cast<size_t>(c)][static_cast<size_t>(h)];
      c = hy.prev_cand;
      h = hy.prev_hypo;
    }

    PartialPath pp;
    pp.path = prefix_.path;
    pp.locations = prefix_.locations;
    int prev_cand = c;  // last committed candidate (-1 when none committed)
    for (size_t i = 0; i < len; ++i) {
      MaterializeStep(pp, decided_ + i, chain[i], prev_cand);
      prev_cand = chain[i];
    }

    TrajectoryInstance inst;
    inst.path = std::move(pp.path);
    inst.locations = std::move(pp.locations);

    // Merge duplicates (distinct hypothesis chains can induce the same
    // network-constrained instance).
    bool duplicate = false;
    for (size_t i = 0; i < tu.instances.size(); ++i) {
      if (tu.instances[i].path == inst.path &&
          tu.instances[i].locations == inst.locations) {
        logps[i] = std::max(logps[i], term.logp) +
                   std::log1p(std::exp(-std::abs(logps[i] - term.logp)));
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      tu.instances.push_back(std::move(inst));
      logps.push_back(term.logp);
    }
  }

  // Normalize probabilities (softmax over log-likelihoods) and order
  // instances by decreasing probability.
  const double max_logp = *std::max_element(logps.begin(), logps.end());
  double total = 0.0;
  for (double& lp : logps) {
    lp = std::exp(lp - max_logp);
    total += lp;
  }
  for (size_t i = 0; i < tu.instances.size(); ++i) {
    tu.instances[i].probability = logps[i] / total;
  }
  std::vector<size_t> order(tu.instances.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return tu.instances[a].probability > tu.instances[b].probability;
  });
  UncertainTrajectory sorted;
  sorted.id = tu.id;
  sorted.times = std::move(tu.times);
  for (const size_t i : order) {
    sorted.instances.push_back(std::move(tu.instances[i]));
  }
  return sorted;
}

std::optional<UncertainTrajectory> OnlineViterbi::Finish() {
  auto out = FinishCurrent();
  ResetSegment();
  return out;
}

void OnlineViterbi::ResetSegment() {
  steps_.clear();
  prefix_ = PartialPath{};
  decided_ = 0;
}

}  // namespace utcq::matching
