#ifndef UTCQ_MATCHING_HMM_MATCHER_H_
#define UTCQ_MATCHING_HMM_MATCHER_H_

#include <optional>
#include <vector>

#include "matching/candidates.h"
#include "network/grid_index.h"
#include "network/road_network.h"
#include "traj/types.h"

namespace utcq::matching {

/// Tunables of the probabilistic map-matcher.
struct MatchParams {
  double candidate_radius_m = 60.0;
  size_t max_candidates = 4;
  double gps_sigma_m = 20.0;
  /// Exponential scale of the |route - straight line| transition penalty
  /// (Newson-Krumm style).
  double transition_beta_m = 30.0;
  /// Number of top-probability instances to keep per trajectory (N^j).
  size_t max_instances = 8;
  /// Route-search budget as a multiple of the straight-line distance.
  double route_slack_factor = 5.0;
  double route_slack_abs_m = 400.0;
  /// Maximum time gap (seconds) bridged between consecutive kept points.
  /// A parked or out-of-coverage vehicle must not be matched as if it had
  /// travelled through the gap (the transition model would happily accept
  /// a short route for an hour-long silence): a larger gap is a clean
  /// break instead — Match answers nullopt, MatchSegments splits there.
  /// 0 disables the check (the pre-gap-aware behaviour).
  int64_t max_gap_s = 600;
};

/// HMM-based probabilistic map matching ([2, 15]): instead of committing to
/// the single most likely road position per GPS point, it carries the K best
/// joint path hypotheses through a list-Viterbi pass and emits them as the
/// instances of a network-constrained uncertain trajectory (Definition 5),
/// with probabilities normalized over the surviving hypotheses.
class HmmMatcher {
 public:
  HmmMatcher(const network::RoadNetwork& net, const network::GridIndex& grid,
             MatchParams params)
      : net_(net), grid_(grid), params_(params) {}

  /// Matches a raw trajectory as a single unbroken trace. Non-finite,
  /// out-of-order and candidate-less points are dropped; returns nullopt
  /// when fewer than two points survive, when the HMM breaks (no feasible
  /// transition anywhere), or when a time gap larger than max_gap_s splits
  /// the trace (use MatchSegments to keep the pieces).
  std::optional<traj::UncertainTrajectory> Match(
      const traj::RawTrajectory& raw) const;

  /// Gap/break-tolerant matching: the trace is split at long gaps and HMM
  /// breaks, and every piece with at least two matched points is returned
  /// as its own uncertain trajectory, in stream order.
  std::vector<traj::UncertainTrajectory> MatchSegments(
      const traj::RawTrajectory& raw) const;

 private:
  const network::RoadNetwork& net_;
  const network::GridIndex& grid_;
  MatchParams params_;
};

}  // namespace utcq::matching

#endif  // UTCQ_MATCHING_HMM_MATCHER_H_
