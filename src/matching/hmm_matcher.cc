#include "matching/hmm_matcher.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace utcq::matching {

using network::EdgeId;
using network::RoadNetwork;
using traj::MappedLocation;
using traj::TrajectoryInstance;
using traj::UncertainTrajectory;

namespace {

/// One surviving joint-path hypothesis ending at a given candidate.
struct Hypo {
  double logp = -std::numeric_limits<double>::infinity();
  int prev_cand = -1;  // candidate index at the previous step
  int prev_hypo = -1;  // hypothesis index within that candidate
};

/// Feasible movement between two consecutive candidates: the edges appended
/// to the path when taking it, and the network distance travelled.
struct Transition {
  bool feasible = false;
  bool same_edge = false;        // stay on the same edge, moving forward
  std::vector<EdgeId> appended;  // edges appended to the path (incl. target)
  double route_m = 0.0;
};

Transition ComputeTransition(const RoadNetwork& net, const Candidate& from,
                             const Candidate& to, double budget_m) {
  Transition tr;
  if (from.edge == to.edge && to.offset >= from.offset) {
    tr.feasible = true;
    tr.same_edge = true;
    tr.route_m = to.offset - from.offset;
    return tr;
  }
  const auto& e1 = net.edge(from.edge);
  const auto& e2 = net.edge(to.edge);
  const auto mid = net.ShortestPath(e1.to, e2.from, budget_m);
  if (!mid.has_value()) return tr;
  double mid_len = 0.0;
  for (const EdgeId e : *mid) mid_len += net.edge(e).length;
  tr.feasible = true;
  tr.appended = *mid;
  tr.appended.push_back(to.edge);
  tr.route_m = (e1.length - from.offset) + mid_len + to.offset;
  return tr;
}

}  // namespace

std::optional<UncertainTrajectory> HmmMatcher::Match(
    const traj::RawTrajectory& raw) const {
  // --- candidate generation; drop unmatched or non-increasing points ---
  std::vector<traj::RawPoint> points;
  std::vector<std::vector<Candidate>> cands;
  for (const traj::RawPoint& p : raw) {
    if (!points.empty() && p.t <= points.back().t) continue;
    auto c = FindCandidates(grid_, p, params_.candidate_radius_m,
                            params_.max_candidates);
    if (c.empty()) continue;
    points.push_back(p);
    cands.push_back(std::move(c));
  }
  const size_t n = points.size();
  if (n < 2) return std::nullopt;

  const size_t K = std::max<size_t>(params_.max_instances, 1);

  // hypos[step][cand] = top-K hypotheses; transitions[step][{pc, c}] = move.
  std::vector<std::vector<std::vector<Hypo>>> hypos(n);
  std::vector<std::map<std::pair<int, int>, Transition>> transitions(n);

  hypos[0].resize(cands[0].size());
  for (size_t c = 0; c < cands[0].size(); ++c) {
    hypos[0][c].push_back(
        {EmissionLogProb(cands[0][c].distance, params_.gps_sigma_m), -1, -1});
  }

  for (size_t step = 1; step < n; ++step) {
    const double straight =
        network::Distance(points[step - 1].x, points[step - 1].y,
                          points[step].x, points[step].y);
    const double budget = straight * params_.route_slack_factor +
                          params_.route_slack_abs_m;
    hypos[step].resize(cands[step].size());
    bool any = false;
    for (size_t c = 0; c < cands[step].size(); ++c) {
      const double emit =
          EmissionLogProb(cands[step][c].distance, params_.gps_sigma_m);
      std::vector<Hypo> pool;
      for (size_t pc = 0; pc < cands[step - 1].size(); ++pc) {
        if (hypos[step - 1][pc].empty()) continue;
        Transition tr = ComputeTransition(net_, cands[step - 1][pc],
                                          cands[step][c], budget);
        if (!tr.feasible) continue;
        const double trans_logp = -std::abs(tr.route_m - straight) /
                                  params_.transition_beta_m;
        transitions[step][{static_cast<int>(pc), static_cast<int>(c)}] =
            std::move(tr);
        for (size_t h = 0; h < hypos[step - 1][pc].size(); ++h) {
          pool.push_back({hypos[step - 1][pc][h].logp + trans_logp + emit,
                          static_cast<int>(pc), static_cast<int>(h)});
        }
      }
      std::sort(pool.begin(), pool.end(),
                [](const Hypo& a, const Hypo& b) { return a.logp > b.logp; });
      if (pool.size() > K) pool.resize(K);
      hypos[step][c] = std::move(pool);
      any = any || !hypos[step][c].empty();
    }
    if (!any) return std::nullopt;  // HMM break
  }

  // --- pick global top-K terminal hypotheses ---
  struct Terminal {
    double logp;
    int cand;
    int hypo;
  };
  std::vector<Terminal> terminals;
  for (size_t c = 0; c < cands[n - 1].size(); ++c) {
    for (size_t h = 0; h < hypos[n - 1][c].size(); ++h) {
      terminals.push_back(
          {hypos[n - 1][c][h].logp, static_cast<int>(c), static_cast<int>(h)});
    }
  }
  if (terminals.empty()) return std::nullopt;
  std::sort(terminals.begin(), terminals.end(),
            [](const Terminal& a, const Terminal& b) { return a.logp > b.logp; });
  if (terminals.size() > K) terminals.resize(K);

  // --- reconstruct instances ---
  UncertainTrajectory tu;
  tu.times.reserve(n);
  for (const traj::RawPoint& p : points) tu.times.push_back(p.t);

  std::vector<double> logps;
  for (const Terminal& term : terminals) {
    // Backtrack the candidate/hypothesis chain.
    std::vector<int> chain(n);
    int c = term.cand;
    int h = term.hypo;
    for (size_t step = n; step-- > 0;) {
      chain[step] = c;
      const Hypo& hy = hypos[step][static_cast<size_t>(c)][static_cast<size_t>(h)];
      c = hy.prev_cand;
      h = hy.prev_hypo;
    }

    TrajectoryInstance inst;
    inst.path.push_back(cands[0][static_cast<size_t>(chain[0])].edge);
    inst.locations.push_back(
        {0, cands[0][static_cast<size_t>(chain[0])].offset /
                net_.edge(inst.path[0]).length});
    for (size_t step = 1; step < n; ++step) {
      const auto key = std::make_pair(chain[step - 1], chain[step]);
      const Transition& tr = transitions[step].at(key);
      if (!tr.same_edge) {
        inst.path.insert(inst.path.end(), tr.appended.begin(),
                         tr.appended.end());
      }
      const Candidate& cd = cands[step][static_cast<size_t>(chain[step])];
      inst.locations.push_back(
          {static_cast<uint32_t>(inst.path.size() - 1),
           cd.offset / net_.edge(cd.edge).length});
    }
    // Clamp same-edge rd regressions introduced by noise.
    for (size_t i = 1; i < inst.locations.size(); ++i) {
      auto& cur = inst.locations[i];
      const auto& prev = inst.locations[i - 1];
      if (cur.path_index == prev.path_index && cur.rd < prev.rd) {
        cur.rd = prev.rd;
      }
    }

    // Merge duplicates (distinct hypothesis chains can induce the same
    // network-constrained instance).
    bool duplicate = false;
    for (size_t i = 0; i < tu.instances.size(); ++i) {
      if (tu.instances[i].path == inst.path &&
          tu.instances[i].locations == inst.locations) {
        logps[i] = std::max(logps[i], term.logp) +
                   std::log1p(std::exp(-std::abs(logps[i] - term.logp)));
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      tu.instances.push_back(std::move(inst));
      logps.push_back(term.logp);
    }
  }

  // --- normalize probabilities (softmax over log-likelihoods) ---
  const double max_logp = *std::max_element(logps.begin(), logps.end());
  double total = 0.0;
  for (double& lp : logps) {
    lp = std::exp(lp - max_logp);
    total += lp;
  }
  for (size_t i = 0; i < tu.instances.size(); ++i) {
    tu.instances[i].probability = logps[i] / total;
  }
  // Order instances by decreasing probability (instance 1 = most likely,
  // which would be the accurate trajectory of classic map matching).
  std::vector<size_t> order(tu.instances.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return tu.instances[a].probability > tu.instances[b].probability;
  });
  UncertainTrajectory sorted;
  sorted.id = tu.id;
  sorted.times = std::move(tu.times);
  for (const size_t i : order) sorted.instances.push_back(std::move(tu.instances[i]));
  return sorted;
}

}  // namespace utcq::matching
