#include "matching/hmm_matcher.h"

#include <utility>

#include "matching/online_viterbi.h"

namespace utcq::matching {

using traj::UncertainTrajectory;

// Both entry points run through the incremental OnlineViterbi with
// unbounded lag: feeding every point and finishing is exactly the batch
// list-Viterbi (no forced decision ever fires), so there is one matcher
// implementation for the batch and the streaming pipelines.

std::optional<UncertainTrajectory> HmmMatcher::Match(
    const traj::RawTrajectory& raw) const {
  OnlineViterbi viterbi(net_, grid_, {params_, /*max_pending_steps=*/0});
  for (const traj::RawPoint& p : raw) {
    if (viterbi.Append(p).status == AppendStatus::kSegmentBreak) {
      // A break means the trace is not one continuous trip; a
      // single-output matcher must not pretend otherwise by stitching or
      // dropping pieces — and matching the doomed remainder is pure waste.
      return std::nullopt;
    }
  }
  return viterbi.Finish();
}

std::vector<UncertainTrajectory> HmmMatcher::MatchSegments(
    const traj::RawTrajectory& raw) const {
  OnlineViterbi viterbi(net_, grid_, {params_, /*max_pending_steps=*/0});
  std::vector<UncertainTrajectory> out;
  for (const traj::RawPoint& p : raw) {
    auto r = viterbi.Append(p);
    if (r.completed.has_value()) out.push_back(std::move(*r.completed));
  }
  auto tail = viterbi.Finish();
  if (tail.has_value()) out.push_back(std::move(*tail));
  return out;
}

}  // namespace utcq::matching
