#ifndef UTCQ_MATCHING_CANDIDATES_H_
#define UTCQ_MATCHING_CANDIDATES_H_

#include <vector>

#include "network/grid_index.h"
#include "network/road_network.h"
#include "traj/types.h"

namespace utcq::matching {

/// A candidate projection of one raw GPS point onto the road network: the
/// probabilistic map-matcher considers several of these per point ([2, 15]),
/// which is exactly where trajectory uncertainty comes from.
struct Candidate {
  network::EdgeId edge = network::kInvalidEdge;
  double offset = 0.0;    // meters from edge start
  double distance = 0.0;  // Euclidean distance from the raw point
};

/// Finds the `max_candidates` nearest edges within `radius` of the point,
/// sorted by distance.
std::vector<Candidate> FindCandidates(const network::GridIndex& grid,
                                      const traj::RawPoint& point,
                                      double radius, size_t max_candidates);

/// Gaussian emission log-likelihood of observing the raw point at `distance`
/// from the candidate, with GPS noise sigma.
double EmissionLogProb(double distance, double sigma);

}  // namespace utcq::matching

#endif  // UTCQ_MATCHING_CANDIDATES_H_
