#ifndef UTCQ_MATCHING_ONLINE_VITERBI_H_
#define UTCQ_MATCHING_ONLINE_VITERBI_H_

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "matching/candidates.h"
#include "matching/hmm_matcher.h"
#include "network/grid_index.h"
#include "network/road_network.h"
#include "traj/types.h"

namespace utcq::matching {

/// Tunables of the incremental matcher on top of the batch MatchParams.
struct OnlineMatchParams {
  MatchParams match;
  /// Upper bound on the undecided trellis depth (the matching lag): when
  /// more than this many accepted points are pending, the oldest pending
  /// point is force-committed to the most likely hypothesis, so memory and
  /// emission delay stay bounded no matter how long a session runs.
  /// 0 = unbounded — the full-trajectory list Viterbi, i.e. exactly the
  /// batch matcher (HmmMatcher::Match runs through this class that way).
  size_t max_pending_steps = 48;
};

/// What Append did with a point.
enum class AppendStatus : uint8_t {
  kAccepted = 0,
  /// NaN/inf coordinates: a poisoned fix must never reach the grid lookup.
  kDroppedNotFinite,
  /// t <= the last accepted point's t (out-of-order or duplicate stamp).
  kDroppedOutOfOrder,
  /// No edge within candidate_radius_m.
  kDroppedNoCandidates,
  /// A long gap or an HMM break closed the open segment; when the point
  /// itself had candidates it seeded a fresh segment.
  kSegmentBreak,
};

/// Incremental list-Viterbi map matching with bounded lag — the streaming
/// counterpart of HmmMatcher (which now runs through this class with
/// unbounded lag). Points arrive one at a time; the trellis of candidate
/// hypotheses is extended per point, and as soon as every surviving
/// hypothesis traces back through one common (candidate, hypothesis) state,
/// the prefix up to that state is *committed*: its edges and mapped
/// locations are materialized once into the shared segment prefix and the
/// trellis memory behind it is released. When convergence does not happen
/// within `max_pending_steps`, the oldest pending point is forced to the
/// most likely hypothesis' choice and contradicting hypotheses are pruned.
///
/// Degenerate streams degrade gracefully instead of crashing or forcing a
/// bogus match: non-finite, out-of-order and candidate-less points are
/// dropped with a telling status, and a time gap larger than
/// MatchParams::max_gap_s (or an HMM break — no feasible transition into
/// any candidate) closes the current segment as its own finished match and
/// starts a new one.
class OnlineViterbi {
 public:
  OnlineViterbi(const network::RoadNetwork& net,
                const network::GridIndex& grid, OnlineMatchParams params)
      : net_(net), grid_(grid), params_(params) {}

  struct AppendResult {
    AppendStatus status = AppendStatus::kAccepted;
    /// The finished match of the segment a break closed; empty when that
    /// segment had fewer than two matched points.
    std::optional<traj::UncertainTrajectory> completed;
  };

  /// Feeds one raw GPS fix.
  AppendResult Append(const traj::RawPoint& p);

  /// Closes the open segment, returning its match (nullopt when fewer than
  /// two points matched), and resets for the next segment. The time-order
  /// watermark survives: a session's stream stays monotone across breaks.
  std::optional<traj::UncertainTrajectory> Finish();

  /// Matched points buffered in the open segment (committed + pending).
  size_t num_points() const { return steps_.size(); }
  /// Undecided trellis depth — the current online lag.
  size_t pending_steps() const { return steps_.size() - decided_; }
  /// Points already committed to the shared segment prefix.
  size_t committed_points() const { return decided_; }
  bool has_open_segment() const { return !steps_.empty(); }

 private:
  /// One surviving joint-path hypothesis ending at a given candidate.
  struct Hypo {
    double logp = 0.0;
    int prev_cand = -1;  // candidate index at the previous step
    int prev_hypo = -1;  // hypothesis index within that candidate
    /// Contradicts a forced decision; kept in place (indices must stay
    /// stable) but excluded from extension, convergence and terminals.
    bool dead = false;
  };

  /// Feasible movement between two consecutive candidates.
  struct Transition {
    bool feasible = false;
    bool same_edge = false;  // stay on the same edge, moving forward
    std::vector<network::EdgeId> appended;  // edges appended (incl. target)
    double route_m = 0.0;
  };

  /// One trellis column. Committed steps are shrunk to just the point (for
  /// the shared time sequence); the hypothesis state is freed.
  struct Step {
    traj::RawPoint point;
    std::vector<Candidate> cands;
    std::vector<std::vector<Hypo>> hypos;  // [cand] -> top-K
    std::map<std::pair<int, int>, Transition> transitions;  // {prev, cand}

    void Shrink();
  };

  /// Path + locations being grown edge by edge — the committed shared
  /// prefix, and the per-instance reconstruction buffer at Finish.
  struct PartialPath {
    std::vector<network::EdgeId> path;
    std::vector<traj::MappedLocation> locations;
  };

  Transition ComputeTransition(const Candidate& from, const Candidate& to,
                               double budget_m) const;
  void Seed(const traj::RawPoint& p, std::vector<Candidate> cands);
  /// Extends the trellis by one column; false = HMM break (no candidate of
  /// `p` is reachable from any alive hypothesis).
  bool ExtendTrellis(const traj::RawPoint& p,
                     const std::vector<Candidate>& cands);
  /// Appends step `s` taken at candidate `cand_idx` (reached from
  /// `prev_cand`) to `out` — the one materialization rule shared by prefix
  /// commits and Finish-time instance reconstruction.
  void MaterializeStep(PartialPath& out, size_t s, int cand_idx,
                       int prev_cand) const;
  /// Commits every step all alive hypotheses agree on (backpointer-chain
  /// stabilization). The newest step always stays pending so the trellis
  /// can keep extending.
  void CommitConverged();
  /// Bounded-lag forcing: commits the oldest pending step to the best
  /// terminal hypothesis' choice and prunes contradicting hypotheses.
  void ForceOldestDecision();
  std::optional<traj::UncertainTrajectory> FinishCurrent() const;
  void ResetSegment();

  const network::RoadNetwork& net_;
  const network::GridIndex& grid_;
  OnlineMatchParams params_;

  std::vector<Step> steps_;  // open segment; [0, decided_) shrunk
  size_t decided_ = 0;
  PartialPath prefix_;

  traj::Timestamp last_t_ = 0;
  bool has_last_t_ = false;
};

}  // namespace utcq::matching

#endif  // UTCQ_MATCHING_ONLINE_VITERBI_H_
