#include "traj/interpolate.h"

#include <algorithm>
#include <cmath>

namespace utcq::traj {

using network::EdgeId;
using network::RoadNetwork;

namespace {

/// Prefix path lengths: prefix[i] = network distance before path edge i.
std::vector<double> PrefixLengths(const RoadNetwork& net,
                                  const TrajectoryInstance& inst) {
  std::vector<double> prefix(inst.path.size() + 1, 0.0);
  for (size_t i = 0; i < inst.path.size(); ++i) {
    prefix[i + 1] = prefix[i] + net.edge(inst.path[i]).length;
  }
  return prefix;
}

}  // namespace

double PathOffsetOfLocation(const RoadNetwork& net,
                            const TrajectoryInstance& inst, size_t loc_idx) {
  const MappedLocation& loc = inst.locations[loc_idx];
  double offset = 0.0;
  for (uint32_t i = 0; i < loc.path_index; ++i) {
    offset += net.edge(inst.path[i]).length;
  }
  return offset + loc.rd * net.edge(inst.path[loc.path_index]).length;
}

NetworkPosition PositionAtPathOffset(const RoadNetwork& net,
                                     const TrajectoryInstance& inst,
                                     double offset) {
  double walked = 0.0;
  for (size_t i = 0; i < inst.path.size(); ++i) {
    const double len = net.edge(inst.path[i]).length;
    if (offset <= walked + len || i + 1 == inst.path.size()) {
      return {inst.path[i], std::clamp(offset - walked, 0.0, len)};
    }
    walked += len;
  }
  return {inst.path.back(), net.edge(inst.path.back()).length};
}

std::optional<NetworkPosition> PositionAtTime(
    const RoadNetwork& net, const TrajectoryInstance& inst,
    const std::vector<Timestamp>& times, Timestamp t) {
  if (times.empty() || t < times.front() || t > times.back()) {
    return std::nullopt;
  }
  // Bracketing samples i, i+1 with times[i] <= t <= times[i+1].
  const auto it = std::upper_bound(times.begin(), times.end(), t);
  size_t i = static_cast<size_t>(it - times.begin());
  i = i > 0 ? i - 1 : 0;
  if (i + 1 >= times.size()) {
    // t == times.back()
    const MappedLocation& loc = inst.locations.back();
    return NetworkPosition{inst.path[loc.path_index],
                           loc.rd * net.edge(inst.path[loc.path_index]).length};
  }
  const double d0 = PathOffsetOfLocation(net, inst, i);
  const double d1 = PathOffsetOfLocation(net, inst, i + 1);
  const double span = static_cast<double>(times[i + 1] - times[i]);
  const double f =
      span > 0 ? static_cast<double>(t - times[i]) / span : 0.0;
  return PositionAtPathOffset(net, inst, d0 + (d1 - d0) * f);
}

std::vector<Timestamp> TimesAtPosition(const RoadNetwork& net,
                                       const TrajectoryInstance& inst,
                                       const std::vector<Timestamp>& times,
                                       EdgeId edge, double rd,
                                       double tolerance_m) {
  std::vector<Timestamp> result;
  if (times.size() != inst.locations.size() || times.empty()) return result;
  const std::vector<double> prefix = PrefixLengths(net, inst);

  // Path offsets of all mapped locations (monotone non-decreasing).
  std::vector<double> loc_offsets(inst.locations.size());
  for (size_t i = 0; i < inst.locations.size(); ++i) {
    const MappedLocation& loc = inst.locations[i];
    loc_offsets[i] =
        prefix[loc.path_index] + loc.rd * net.edge(inst.path[loc.path_index]).length;
  }

  for (size_t k = 0; k < inst.path.size(); ++k) {
    if (inst.path[k] != edge) continue;
    double pos = prefix[k] + rd * net.edge(edge).length;
    if (pos < loc_offsets.front() - tolerance_m ||
        pos > loc_offsets.back() + tolerance_m) {
      continue;  // outside the sampled span of this traversal
    }
    pos = std::clamp(pos, loc_offsets.front(), loc_offsets.back());
    // Find bracketing locations: largest i with loc_offsets[i] <= pos.
    const auto it = std::upper_bound(loc_offsets.begin(), loc_offsets.end(),
                                     pos + 1e-9);
    size_t i = static_cast<size_t>(it - loc_offsets.begin());
    i = i > 0 ? i - 1 : 0;
    Timestamp t;
    if (i + 1 >= loc_offsets.size()) {
      t = times.back();
    } else {
      const double seg = loc_offsets[i + 1] - loc_offsets[i];
      const double f = seg > 1e-12 ? (pos - loc_offsets[i]) / seg : 0.0;
      t = times[i] + static_cast<Timestamp>(std::llround(
                         f * static_cast<double>(times[i + 1] - times[i])));
    }
    result.push_back(t);
  }
  return result;
}

std::optional<TrajectoryInstance> ReconstructInstance(
    const RoadNetwork& net, network::VertexId sv,
    const std::vector<uint32_t>& entries, const std::vector<uint8_t>& tflag,
    const std::vector<double>& rds, double probability) {
  if (entries.size() != tflag.size()) return std::nullopt;
  // The start vertex arrives as a raw 32-bit field from a possibly
  // untrusted stream; everything after it is derived from real edges.
  if (sv >= net.num_vertices()) return std::nullopt;
  TrajectoryInstance inst;
  inst.probability = probability;
  network::VertexId cursor = sv;
  size_t loc = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    const uint32_t no = entries[i];
    if (no != 0) {
      const EdgeId e = net.OutEdge(cursor, no);
      if (e == network::kInvalidEdge) return std::nullopt;
      inst.path.push_back(e);
      cursor = net.edge(e).to;
    } else if (inst.path.empty()) {
      return std::nullopt;  // a repeat marker cannot open the sequence
    }
    if (tflag[i] != 0) {
      if (loc >= rds.size()) return std::nullopt;
      inst.locations.push_back(
          {static_cast<uint32_t>(inst.path.size() - 1), rds[loc]});
      ++loc;
    }
  }
  if (loc != rds.size()) return std::nullopt;
  // Lossy D coding is not strictly monotone; restore same-edge ordering so
  // interpolation invariants hold (perturbation stays within the bound).
  for (size_t i = 1; i < inst.locations.size(); ++i) {
    auto& cur = inst.locations[i];
    const auto& prev = inst.locations[i - 1];
    if (cur.path_index == prev.path_index && cur.rd < prev.rd) {
      cur.rd = prev.rd;
    }
  }
  return inst;
}

}  // namespace utcq::traj
