#include "traj/interpolate.h"

#include <algorithm>
#include <cmath>

#include "strategies/strategies.h"

namespace utcq::traj {

using network::EdgeId;
using network::RoadNetwork;

namespace {

/// Prefix path lengths: prefix[i] = network distance before path edge i.
std::vector<double> PrefixLengths(const RoadNetwork& net,
                                  const TrajectoryInstance& inst) {
  std::vector<double> prefix(inst.path.size() + 1, 0.0);
  for (size_t i = 0; i < inst.path.size(); ++i) {
    prefix[i + 1] = prefix[i] + net.edge(inst.path[i]).length;
  }
  return prefix;
}

}  // namespace

double PathOffsetOfLocation(const RoadNetwork& net,
                            const TrajectoryInstance& inst, size_t loc_idx) {
  const MappedLocation& loc = inst.locations[loc_idx];
  double offset = 0.0;
  for (uint32_t i = 0; i < loc.path_index; ++i) {
    offset += net.edge(inst.path[i]).length;
  }
  return offset + loc.rd * net.edge(inst.path[loc.path_index]).length;
}

void OffsetPairOfLocations(const RoadNetwork& net,
                           const TrajectoryInstance& inst, size_t loc_idx,
                           double* d0, double* d1) {
  const MappedLocation& a = inst.locations[loc_idx];
  const MappedLocation& b = inst.locations[loc_idx + 1];
  // One walk, two prefix snapshots. `offset` takes the exact same sequence
  // of additions PathOffsetOfLocation performs, so the snapshots equal its
  // partial sums bit-for-bit (b.path_index >= a.path_index on any real
  // instance, but the snapshots don't care either way).
  const uint32_t stop = std::max(a.path_index, b.path_index);
  double offset = 0.0;
  double pa = 0.0;
  double pb = 0.0;
  for (uint32_t k = 0; k < stop; ++k) {
    if (k == a.path_index) pa = offset;
    if (k == b.path_index) pb = offset;
    offset += net.edge(inst.path[k]).length;
  }
  if (a.path_index == stop) pa = offset;
  if (b.path_index == stop) pb = offset;
  *d0 = pa + a.rd * net.edge(inst.path[a.path_index]).length;
  *d1 = pb + b.rd * net.edge(inst.path[b.path_index]).length;
}

NetworkPosition PositionAtPathOffset(const RoadNetwork& net,
                                     const TrajectoryInstance& inst,
                                     double offset) {
  double walked = 0.0;
  for (size_t i = 0; i < inst.path.size(); ++i) {
    const double len = net.edge(inst.path[i]).length;
    if (offset <= walked + len || i + 1 == inst.path.size()) {
      return {inst.path[i], std::clamp(offset - walked, 0.0, len)};
    }
    walked += len;
  }
  return {inst.path.back(), net.edge(inst.path.back()).length};
}

std::optional<NetworkPosition> PositionAtTime(
    const RoadNetwork& net, const TrajectoryInstance& inst,
    const std::vector<Timestamp>& times, Timestamp t) {
  if (times.empty() || t < times.front() || t > times.back()) {
    return std::nullopt;
  }
  // Bracketing samples i, i+1 with times[i] <= t <= times[i+1].
  const auto it = std::upper_bound(times.begin(), times.end(), t);
  size_t i = static_cast<size_t>(it - times.begin());
  i = i > 0 ? i - 1 : 0;
  if (i + 1 >= times.size()) {
    // t == times.back()
    const MappedLocation& loc = inst.locations.back();
    return NetworkPosition{inst.path[loc.path_index],
                           loc.rd * net.edge(inst.path[loc.path_index]).length};
  }
  const double d0 = PathOffsetOfLocation(net, inst, i);
  const double d1 = PathOffsetOfLocation(net, inst, i + 1);
  const double span = static_cast<double>(times[i + 1] - times[i]);
  const double f =
      span > 0 ? static_cast<double>(t - times[i]) / span : 0.0;
  return PositionAtPathOffset(net, inst, d0 + (d1 - d0) * f);
}

std::vector<Timestamp> TimesAtPosition(const RoadNetwork& net,
                                       const TrajectoryInstance& inst,
                                       const std::vector<Timestamp>& times,
                                       EdgeId edge, double rd,
                                       double tolerance_m) {
  std::vector<Timestamp> result;
  if (times.size() != inst.locations.size() || times.empty()) return result;
  const std::vector<double> prefix = PrefixLengths(net, inst);

  // Path offsets of all mapped locations (monotone non-decreasing),
  // expanded 8 at a time through the strategy mul_add kernel: gather
  // (prefix, rd, edge length) into stack chunks, then
  // loc_offsets[i] = prefix[pi] + rd * length elementwise.
  const size_t n_loc = inst.locations.size();
  std::vector<double> loc_offsets(n_loc);
  const strategies::Kernels& ks = strategies::Active();
  constexpr size_t kChunk = 8;
  double bases[kChunk];
  double rds[kChunk];
  double lengths[kChunk];
  for (size_t base = 0; base < n_loc; base += kChunk) {
    const size_t m = std::min(kChunk, n_loc - base);
    for (size_t v = 0; v < m; ++v) {
      const MappedLocation& loc = inst.locations[base + v];
      bases[v] = prefix[loc.path_index];
      rds[v] = loc.rd;
      lengths[v] = net.edge(inst.path[loc.path_index]).length;
    }
    ks.mul_add(bases, rds, lengths, loc_offsets.data() + base, m);
  }

  for (size_t k = 0; k < inst.path.size(); ++k) {
    if (inst.path[k] != edge) continue;
    double pos = prefix[k] + rd * net.edge(edge).length;
    if (pos < loc_offsets.front() - tolerance_m ||
        pos > loc_offsets.back() + tolerance_m) {
      continue;  // outside the sampled span of this traversal
    }
    pos = std::clamp(pos, loc_offsets.front(), loc_offsets.back());
    // Find bracketing locations: largest i with loc_offsets[i] <= pos.
    const auto it = std::upper_bound(loc_offsets.begin(), loc_offsets.end(),
                                     pos + 1e-9);
    size_t i = static_cast<size_t>(it - loc_offsets.begin());
    i = i > 0 ? i - 1 : 0;
    Timestamp t;
    if (i + 1 >= loc_offsets.size()) {
      t = times.back();
    } else {
      const double seg = loc_offsets[i + 1] - loc_offsets[i];
      const double f = seg > 1e-12 ? (pos - loc_offsets[i]) / seg : 0.0;
      t = times[i] + static_cast<Timestamp>(std::llround(
                         f * static_cast<double>(times[i + 1] - times[i])));
    }
    result.push_back(t);
  }
  return result;
}

NetworkPosition PositionInBracket(const RoadNetwork& net,
                                  const TrajectoryInstance& inst, size_t i,
                                  Timestamp t0, Timestamp t1, Timestamp t) {
  if (i + 1 >= inst.locations.size() || t1 <= t0) {
    const auto& loc = inst.locations[std::min(i, inst.locations.size() - 1)];
    return {inst.path[loc.path_index],
            loc.rd * net.edge(inst.path[loc.path_index]).length};
  }
  const double d0 = PathOffsetOfLocation(net, inst, i);
  const double d1 = PathOffsetOfLocation(net, inst, i + 1);
  const double f = static_cast<double>(t - t0) / static_cast<double>(t1 - t0);
  return PositionAtPathOffset(net, inst, d0 + (d1 - d0) * f);
}

std::vector<NetworkPosition> PositionsInBracket(
    const RoadNetwork& net,
    const std::vector<const TrajectoryInstance*>& insts, size_t i,
    Timestamp t0, Timestamp t1, Timestamp t) {
  std::vector<NetworkPosition> out(insts.size());
  if (t1 <= t0) {
    // Degenerate bracket for every instance; nothing to interpolate.
    for (size_t k = 0; k < insts.size(); ++k) {
      out[k] = PositionInBracket(net, *insts[k], i, t0, t1, t);
    }
    return out;
  }
  // One fraction for the whole batch: the scalar path recomputes this per
  // instance from the same three integers, giving the same double.
  const double f = static_cast<double>(t - t0) / static_cast<double>(t1 - t0);
  const strategies::Kernels& ks = strategies::Active();
  constexpr size_t kChunk = 8;
  double d0[kChunk];
  double d1[kChunk];
  double offsets[kChunk];
  size_t slots[kChunk];
  for (size_t base = 0; base < insts.size(); base += kChunk) {
    const size_t end = std::min(base + kChunk, insts.size());
    size_t m = 0;
    for (size_t k = base; k < end; ++k) {
      const TrajectoryInstance& inst = *insts[k];
      if (i + 1 >= inst.locations.size()) {
        out[k] = PositionInBracket(net, inst, i, t0, t1, t);
        continue;
      }
      OffsetPairOfLocations(net, inst, i, &d0[m], &d1[m]);
      slots[m] = k;
      ++m;
    }
    ks.lerp(d0, d1, f, offsets, m);
    for (size_t v = 0; v < m; ++v) {
      out[slots[v]] = PositionAtPathOffset(net, *insts[slots[v]], offsets[v]);
    }
  }
  return out;
}

std::optional<TrajectoryInstance> ReconstructInstance(
    const RoadNetwork& net, network::VertexId sv,
    const std::vector<uint32_t>& entries, const std::vector<uint8_t>& tflag,
    const std::vector<double>& rds, double probability) {
  if (entries.size() != tflag.size()) return std::nullopt;
  // The start vertex arrives as a raw 32-bit field from a possibly
  // untrusted stream; everything after it is derived from real edges.
  if (sv >= net.num_vertices()) return std::nullopt;
  TrajectoryInstance inst;
  inst.probability = probability;
  network::VertexId cursor = sv;
  size_t loc = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    const uint32_t no = entries[i];
    if (no != 0) {
      const EdgeId e = net.OutEdge(cursor, no);
      if (e == network::kInvalidEdge) return std::nullopt;
      inst.path.push_back(e);
      cursor = net.edge(e).to;
    } else if (inst.path.empty()) {
      return std::nullopt;  // a repeat marker cannot open the sequence
    }
    if (tflag[i] != 0) {
      if (loc >= rds.size()) return std::nullopt;
      inst.locations.push_back(
          {static_cast<uint32_t>(inst.path.size() - 1), rds[loc]});
      ++loc;
    }
  }
  if (loc != rds.size()) return std::nullopt;
  // Lossy D coding is not strictly monotone; restore same-edge ordering so
  // interpolation invariants hold (perturbation stays within the bound).
  for (size_t i = 1; i < inst.locations.size(); ++i) {
    auto& cur = inst.locations[i];
    const auto& prev = inst.locations[i - 1];
    if (cur.path_index == prev.path_index && cur.rd < prev.rd) {
      cur.rd = prev.rd;
    }
  }
  return inst;
}

}  // namespace utcq::traj
