#include "traj/statistics.h"

#include <algorithm>
#include <cstdlib>

#include "traj/edit_distance.h"

namespace utcq::traj {

IntervalHistogram ComputeIntervalHistogram(const UncertainCorpus& corpus,
                                           int default_interval_s) {
  IntervalHistogram h;
  std::array<uint64_t, 5> counts{};
  for (const UncertainTrajectory& tu : corpus) {
    for (size_t i = 1; i < tu.times.size(); ++i) {
      const int64_t dev =
          std::llabs((tu.times[i] - tu.times[i - 1]) - default_interval_s);
      size_t bucket;
      if (dev == 0) {
        bucket = 0;
      } else if (dev == 1) {
        bucket = 1;
      } else if (dev <= 50) {
        bucket = 2;
      } else if (dev <= 100) {
        bucket = 3;
      } else {
        bucket = 4;
      }
      ++counts[bucket];
      ++h.total;
    }
  }
  if (h.total > 0) {
    for (size_t i = 0; i < counts.size(); ++i) {
      h.fraction[i] =
          static_cast<double>(counts[i]) / static_cast<double>(h.total);
    }
  }
  return h;
}

double AverageRunLength(const UncertainCorpus& corpus) {
  uint64_t intervals = 0;
  uint64_t changes = 0;
  for (const UncertainTrajectory& tu : corpus) {
    int64_t prev_interval = -1;
    for (size_t i = 1; i < tu.times.size(); ++i) {
      const int64_t iv = tu.times[i] - tu.times[i - 1];
      ++intervals;
      if (prev_interval >= 0 && iv != prev_interval) ++changes;
      prev_interval = iv;
    }
  }
  if (changes == 0) return static_cast<double>(intervals);
  return static_cast<double>(intervals) / static_cast<double>(changes);
}

namespace {

void AddDistance(EditDistanceHistogram& h, std::array<uint64_t, 4>& counts,
                 size_t d) {
  size_t bucket;
  if (d <= 2) {
    bucket = 0;
  } else if (d <= 5) {
    bucket = 1;
  } else if (d <= 8) {
    bucket = 2;
  } else {
    bucket = 3;
  }
  ++counts[bucket];
  ++h.total;
}

void Finalize(EditDistanceHistogram& h, const std::array<uint64_t, 4>& counts) {
  if (h.total == 0) return;
  for (size_t i = 0; i < counts.size(); ++i) {
    h.fraction[i] =
        static_cast<double>(counts[i]) / static_cast<double>(h.total);
  }
}

}  // namespace

EditDistanceHistogram ComputeWithinDistances(const network::RoadNetwork& net,
                                             const UncertainCorpus& corpus,
                                             common::Rng& rng,
                                             size_t max_pairs_per_trajectory) {
  EditDistanceHistogram h;
  std::array<uint64_t, 4> counts{};
  for (const UncertainTrajectory& tu : corpus) {
    const size_t n = tu.instances.size();
    if (n < 2) continue;
    std::vector<std::vector<uint32_t>> seqs(n);
    for (size_t i = 0; i < n; ++i) {
      seqs[i] = BuildEdgeSequence(net, tu.instances[i]);
    }
    const size_t all_pairs = n * (n - 1) / 2;
    if (all_pairs <= max_pairs_per_trajectory) {
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
          AddDistance(h, counts, EditDistanceBanded(seqs[i], seqs[j], 9));
        }
      }
    } else {
      for (size_t k = 0; k < max_pairs_per_trajectory; ++k) {
        const size_t i = static_cast<size_t>(rng.UniformInt(0, n - 1));
        size_t j = static_cast<size_t>(rng.UniformInt(0, n - 2));
        if (j >= i) ++j;
        AddDistance(h, counts, EditDistanceBanded(seqs[i], seqs[j], 9));
      }
    }
  }
  Finalize(h, counts);
  return h;
}

EditDistanceHistogram ComputeAcrossDistances(const network::RoadNetwork& net,
                                             const UncertainCorpus& corpus,
                                             common::Rng& rng, size_t samples) {
  EditDistanceHistogram h;
  std::array<uint64_t, 4> counts{};
  if (corpus.size() < 2) return h;
  for (size_t k = 0; k < samples; ++k) {
    const size_t a = static_cast<size_t>(rng.UniformInt(0, corpus.size() - 1));
    size_t b = static_cast<size_t>(rng.UniformInt(0, corpus.size() - 2));
    if (b >= a) ++b;
    const auto& ia = corpus[a].instances;
    const auto& ib = corpus[b].instances;
    const auto sa = BuildEdgeSequence(
        net, ia[static_cast<size_t>(rng.UniformInt(0, ia.size() - 1))]);
    const auto sb = BuildEdgeSequence(
        net, ib[static_cast<size_t>(rng.UniformInt(0, ib.size() - 1))]);
    AddDistance(h, counts, EditDistanceBanded(sa, sb, 9));
  }
  Finalize(h, counts);
  return h;
}

CorpusSummary Summarize(const network::RoadNetwork& net,
                        const UncertainCorpus& corpus) {
  CorpusSummary s;
  s.trajectories = corpus.size();
  uint64_t inst_sum = 0;
  uint64_t edge_sum = 0;
  uint64_t edge_obs = 0;
  for (const UncertainTrajectory& tu : corpus) {
    inst_sum += tu.instances.size();
    s.max_instances = std::max(s.max_instances, tu.instances.size());
    for (const TrajectoryInstance& inst : tu.instances) {
      edge_sum += inst.path.size();
      ++edge_obs;
      s.max_edges = std::max(s.max_edges, inst.path.size());
    }
  }
  if (!corpus.empty()) {
    s.avg_instances =
        static_cast<double>(inst_sum) / static_cast<double>(corpus.size());
  }
  if (edge_obs > 0) {
    s.avg_edges = static_cast<double>(edge_sum) / static_cast<double>(edge_obs);
  }
  s.raw_bytes = MeasureRawSize(net, corpus).total() / 8;
  return s;
}

}  // namespace utcq::traj
