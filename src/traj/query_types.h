#ifndef UTCQ_TRAJ_QUERY_TYPES_H_
#define UTCQ_TRAJ_QUERY_TYPES_H_

#include <cstdint>
#include <vector>

#include "network/road_network.h"
#include "traj/interpolate.h"
#include "traj/types.h"

namespace utcq::traj {

/// One mapped location returned by a probabilistic where query
/// (Definition 10): the position of instance `instance` at the query time.
struct WhereHit {
  uint32_t instance = 0;
  double probability = 0.0;
  NetworkPosition position;

  bool operator==(const WhereHit&) const = default;
};

/// One timestamp returned by a probabilistic when query (Definition 11).
struct WhenHit {
  uint32_t instance = 0;
  double probability = 0.0;
  Timestamp t = 0;

  bool operator==(const WhenHit&) const = default;
};

/// Probabilistic range query result (Definition 12): ids of qualifying
/// uncertain trajectories.
using RangeResult = std::vector<uint32_t>;

}  // namespace utcq::traj

#endif  // UTCQ_TRAJ_QUERY_TYPES_H_
