#include "traj/types.h"

#include <sstream>

namespace utcq::traj {

std::string Validate(const network::RoadNetwork& net,
                     const UncertainTrajectory& tu) {
  std::ostringstream err;
  if (tu.instances.empty()) return "uncertain trajectory has no instances";
  if (tu.times.empty()) return "uncertain trajectory has no timestamps";
  for (size_t i = 1; i < tu.times.size(); ++i) {
    if (tu.times[i] <= tu.times[i - 1]) {
      err << "timestamps not strictly increasing at " << i;
      return err.str();
    }
  }
  double prob_sum = 0.0;
  for (size_t w = 0; w < tu.instances.size(); ++w) {
    const TrajectoryInstance& inst = tu.instances[w];
    prob_sum += inst.probability;
    if (inst.path.empty()) {
      err << "instance " << w << " has empty path";
      return err.str();
    }
    for (size_t i = 1; i < inst.path.size(); ++i) {
      if (net.edge(inst.path[i - 1]).to != net.edge(inst.path[i]).from) {
        err << "instance " << w << " path disconnected at edge " << i;
        return err.str();
      }
    }
    if (inst.locations.size() != tu.times.size()) {
      err << "instance " << w << " has " << inst.locations.size()
          << " locations but trajectory has " << tu.times.size()
          << " timestamps";
      return err.str();
    }
    for (size_t i = 0; i < inst.locations.size(); ++i) {
      const MappedLocation& loc = inst.locations[i];
      if (loc.path_index >= inst.path.size()) {
        err << "instance " << w << " location " << i << " off path";
        return err.str();
      }
      if (loc.rd < 0.0 || loc.rd > 1.0) {
        err << "instance " << w << " location " << i << " rd out of [0,1]";
        return err.str();
      }
      if (i > 0) {
        const MappedLocation& prev = inst.locations[i - 1];
        if (loc.path_index < prev.path_index ||
            (loc.path_index == prev.path_index && loc.rd < prev.rd)) {
          err << "instance " << w << " locations not monotone at " << i;
          return err.str();
        }
      }
    }
    if (inst.locations.front().path_index != 0) {
      err << "instance " << w << " first path edge carries no location";
      return err.str();
    }
    if (inst.locations.back().path_index != inst.path.size() - 1) {
      err << "instance " << w << " last path edge carries no location";
      return err.str();
    }
  }
  if (prob_sum < 0.99 || prob_sum > 1.01) {
    err << "instance probabilities sum to " << prob_sum;
    return err.str();
  }
  return "";
}

std::vector<uint32_t> BuildEdgeSequence(const network::RoadNetwork& net,
                                        const TrajectoryInstance& inst) {
  // Count mapped locations per path position.
  std::vector<uint32_t> counts(inst.path.size(), 0);
  for (const MappedLocation& loc : inst.locations) ++counts[loc.path_index];

  std::vector<uint32_t> entries;
  entries.reserve(inst.path.size() + inst.locations.size());
  for (size_t i = 0; i < inst.path.size(); ++i) {
    entries.push_back(net.edge(inst.path[i]).out_number);
    for (uint32_t r = 1; r < counts[i]; ++r) entries.push_back(0);
  }
  return entries;
}

std::vector<uint8_t> BuildTimeFlagBits(const TrajectoryInstance& inst) {
  std::vector<uint32_t> counts(inst.path.size(), 0);
  for (const MappedLocation& loc : inst.locations) ++counts[loc.path_index];

  std::vector<uint8_t> bits;
  bits.reserve(inst.path.size() + inst.locations.size());
  for (size_t i = 0; i < inst.path.size(); ++i) {
    bits.push_back(counts[i] > 0 ? 1 : 0);
    for (uint32_t r = 1; r < counts[i]; ++r) bits.push_back(1);
  }
  return bits;
}

network::VertexId StartVertex(const network::RoadNetwork& net,
                              const TrajectoryInstance& inst) {
  return net.edge(inst.path.front()).from;
}

ComponentSizes& ComponentSizes::operator+=(const ComponentSizes& o) {
  t_bits += o.t_bits;
  sv_bits += o.sv_bits;
  e_bits += o.e_bits;
  d_bits += o.d_bits;
  tflag_bits += o.tflag_bits;
  p_bits += o.p_bits;
  return *this;
}

ComponentSizes MeasureRawSize(const network::RoadNetwork& net,
                              const UncertainTrajectory& tu) {
  ComponentSizes s;
  s.t_bits = 32 * tu.times.size();
  for (const TrajectoryInstance& inst : tu.instances) {
    const auto entries = BuildEdgeSequence(net, inst);
    s.sv_bits += 32;
    s.e_bits += 32 * entries.size();
    s.d_bits += 32 * inst.locations.size();
    s.tflag_bits += entries.size();  // 1 bit per entry, uncompressed
    s.p_bits += 32;
  }
  return s;
}

ComponentSizes MeasureRawSize(const network::RoadNetwork& net,
                              const UncertainCorpus& corpus) {
  ComponentSizes s;
  for (const UncertainTrajectory& tu : corpus) s += MeasureRawSize(net, tu);
  return s;
}

}  // namespace utcq::traj
