#include "traj/generator.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

namespace utcq::traj {

using network::Edge;
using network::EdgeId;
using network::kInvalidEdge;
using network::VertexId;

UncertainTrajectoryGenerator::UncertainTrajectoryGenerator(
    const network::RoadNetwork& net, DatasetProfile profile, uint64_t seed)
    : net_(net), profile_(std::move(profile)), rng_(seed) {
  in_edges_.resize(net.num_vertices());
  for (EdgeId e = 0; e < net.num_edges(); ++e) {
    in_edges_[net.edge(e).to].push_back(e);
  }
}

std::vector<EdgeId> UncertainTrajectoryGenerator::RandomWalkPath(
    size_t target_edges) {
  for (int attempt = 0; attempt < 24; ++attempt) {
    const EdgeId start =
        static_cast<EdgeId>(rng_.UniformInt(0, net_.num_edges() - 1));
    std::vector<EdgeId> path{start};
    std::unordered_set<EdgeId> used{start};
    while (path.size() < target_edges) {
      const Edge& head = net_.edge(path.back());
      const auto& outs = net_.out_edges(head.to);
      // Prefer moves that are neither U-turns nor edge revisits.
      std::vector<EdgeId> fresh;
      for (const EdgeId e : outs) {
        if (used.count(e) > 0) continue;
        if (net_.edge(e).to == head.from && outs.size() > 1) continue;
        fresh.push_back(e);
      }
      if (fresh.empty()) break;
      const EdgeId next =
          fresh[static_cast<size_t>(rng_.UniformInt(0, fresh.size() - 1))];
      path.push_back(next);
      used.insert(next);
    }
    if (path.size() >= static_cast<size_t>(profile_.min_edges) &&
        path.size() * 2 >= target_edges) {
      return path;
    }
  }
  // Fall back to whatever single edge we can start from.
  const EdgeId start =
      static_cast<EdgeId>(rng_.UniformInt(0, net_.num_edges() - 1));
  return {start};
}

double UncertainTrajectoryGenerator::DrawRd() {
  // Map-matched relative distances cluster heavily in real data (points
  // snap to intersections and segment anchors): a profile-controlled
  // fraction sits on the coarse 1/8 grid, some on 1/16, the rest uniform.
  const double u = rng_.Uniform();
  if (u < profile_.rd_grid_fraction) {
    return static_cast<double>(rng_.UniformInt(0, 7)) / 8.0;
  }
  if (u < profile_.rd_grid_fraction + 0.2) {
    return static_cast<double>(rng_.UniformInt(0, 15)) / 16.0;
  }
  // Keep away from exactly 1.0 so rd stays in [0, 1).
  return std::min(rng_.Uniform(0.0, 1.0), 0.999999);
}

int64_t UncertainTrajectoryGenerator::DrawDeviation() {
  const IntervalDeviationMix& m = profile_.deviations;
  const double u = rng_.Uniform();
  int64_t magnitude = 0;
  if (u < m.zero) {
    magnitude = 0;
  } else if (u < m.zero + m.one) {
    magnitude = 1;
  } else if (u < m.zero + m.one + m.upto_50) {
    magnitude = rng_.UniformInt(2, 50);
  } else if (u < m.zero + m.one + m.upto_50 + m.upto_100) {
    magnitude = rng_.UniformInt(51, 100);
  } else {
    magnitude = rng_.UniformInt(101, 240);
  }
  if (magnitude == 0) return 0;
  const bool negative =
      rng_.Bernoulli(0.5) && magnitude < profile_.default_interval_s;
  return negative ? -magnitude : magnitude;
}

std::vector<MappedLocation> UncertainTrajectoryGenerator::PlaceLocations(
    const std::vector<EdgeId>& path) {
  std::vector<MappedLocation> locations;
  for (uint32_t i = 0; i < path.size(); ++i) {
    uint32_t count;
    const double u = rng_.Uniform();
    if (u < 0.25) {
      count = 0;
    } else if (u < 0.85) {
      count = 1;
    } else {
      count = 2;
    }
    if (i == 0 || i + 1 == path.size()) count = std::max<uint32_t>(count, 1);
    std::vector<double> rds(count);
    for (auto& rd : rds) rd = DrawRd();
    std::sort(rds.begin(), rds.end());
    for (const double rd : rds) locations.push_back({i, rd});
  }
  return locations;
}

void UncertainTrajectoryGenerator::NormalizeLocations(
    TrajectoryInstance& inst) {
  auto& locs = inst.locations;
  std::stable_sort(locs.begin(), locs.end(),
                   [](const MappedLocation& a, const MappedLocation& b) {
                     return a.path_index != b.path_index
                                ? a.path_index < b.path_index
                                : a.rd < b.rd;
                   });
  for (auto& loc : locs) {
    loc.path_index = std::min<uint32_t>(
        loc.path_index, static_cast<uint32_t>(inst.path.size()) - 1);
  }
  if (!locs.empty()) {
    locs.front().path_index = std::min<uint32_t>(locs.front().path_index, 0);
    // First and last path edges must carry a location (Definition 5 /
    // Section 4.1: their time-flag bits are always 1).
    locs.front().path_index = 0;
    locs.back().path_index = static_cast<uint32_t>(inst.path.size()) - 1;
    if (locs.size() >= 2 &&
        locs[locs.size() - 2].path_index > locs.back().path_index) {
      locs[locs.size() - 2].path_index = locs.back().path_index;
    }
  }
  std::stable_sort(locs.begin(), locs.end(),
                   [](const MappedLocation& a, const MappedLocation& b) {
                     return a.path_index != b.path_index
                                ? a.path_index < b.path_index
                                : a.rd < b.rd;
                   });
}

bool UncertainTrajectoryGenerator::MutateDetour(TrajectoryInstance& inst) {
  if (inst.path.size() < 2) return false;
  // Spans of 2-3 edges dominate: a one-edge span has a same-length
  // alternative only where true parallel edges exist, which grid networks
  // lack; around-the-block alternatives need >= 2 edges.
  const size_t max_span = std::min<size_t>(3, inst.path.size());
  size_t span;
  if (max_span < 2 || rng_.Bernoulli(0.1)) {
    span = static_cast<size_t>(rng_.UniformInt(1, max_span));
  } else {
    span = static_cast<size_t>(rng_.UniformInt(2, max_span));
  }
  const size_t a =
      static_cast<size_t>(rng_.UniformInt(0, inst.path.size() - span));
  const size_t b = a + span - 1;
  const VertexId u = net_.edge(inst.path[a]).from;
  const VertexId v = net_.edge(inst.path[b]).to;
  double orig_len = 0.0;
  for (size_t i = a; i <= b; ++i) orig_len += net_.edge(inst.path[i]).length;

  // Collect alternative routes u -> v; prefer same-length replacements
  // (parallel roads), which dominate real probabilistic map-matching output
  // — they keep D and often T' identical across instances, the similarity
  // the referential representation exploits (Section 4.2).
  std::vector<std::vector<EdgeId>> same_len;
  std::vector<std::vector<EdgeId>> other_len;
  for (const EdgeId first : net_.out_edges(u)) {
    if (first == inst.path[a]) continue;
    std::optional<std::vector<EdgeId>> rest;
    if (net_.edge(first).to == v) {
      rest = std::vector<EdgeId>{};
    } else {
      rest = net_.ShortestPath(net_.edge(first).to, v,
                               orig_len * 3.0 + 500.0);
    }
    if (!rest.has_value()) continue;
    std::vector<EdgeId> alt{first};
    alt.insert(alt.end(), rest->begin(), rest->end());
    // Reject alternatives identical to the original subpath and overly long
    // detours (keeps edit distances small, per Fig. 4b).
    if (alt.size() > span + 3) continue;
    if (std::equal(alt.begin(), alt.end(), inst.path.begin() + a,
                   inst.path.begin() + b + 1)) {
      continue;
    }
    (alt.size() == span ? same_len : other_len).push_back(std::move(alt));
  }
  std::vector<std::vector<EdgeId>> pool = std::move(same_len);
  if (pool.empty() || rng_.Bernoulli(0.2)) {
    pool.insert(pool.end(), other_len.begin(), other_len.end());
  }
  if (!pool.empty()) {
    const auto& alt =
        pool[static_cast<size_t>(rng_.UniformInt(0, pool.size() - 1))];

    // Remap locations in [a, b] proportionally onto the new subpath.
    const size_t m = alt.size();
    for (auto& loc : inst.locations) {
      if (loc.path_index < a || loc.path_index > b) continue;
      const double q =
          (static_cast<double>(loc.path_index - a) + loc.rd) / span;
      const double scaled = q * static_cast<double>(m);
      uint32_t new_rel = std::min<uint32_t>(static_cast<uint32_t>(scaled),
                                            static_cast<uint32_t>(m) - 1);
      // Same-size replacements keep the old rd (the paper's "same relative
      // distance on a different edge" observation).
      const double new_rd =
          m == span ? loc.rd
                    : std::min(scaled - static_cast<double>(new_rel), 0.999999);
      loc.path_index = static_cast<uint32_t>(a) + new_rel;
      loc.rd = new_rd;
    }
    // Shift locations after the replaced range.
    const int64_t delta = static_cast<int64_t>(m) - static_cast<int64_t>(span);
    if (delta != 0) {
      for (auto& loc : inst.locations) {
        if (loc.path_index > b) {
          loc.path_index = static_cast<uint32_t>(loc.path_index + delta);
        }
      }
    }
    // Splice the path.
    std::vector<EdgeId> new_path(inst.path.begin(),
                                 inst.path.begin() + static_cast<long>(a));
    new_path.insert(new_path.end(), alt.begin(), alt.end());
    new_path.insert(new_path.end(), inst.path.begin() + static_cast<long>(b) + 1,
                    inst.path.end());
    inst.path = std::move(new_path);
    NormalizeLocations(inst);
    return true;
  }
  return false;
}

bool UncertainTrajectoryGenerator::MutateStartSwap(TrajectoryInstance& inst) {
  // Replace the first edge by a different in-edge of the same junction,
  // giving the instance a different start vertex (exercises the SV(.)
  // constraint of Section 4.2/4.3).
  const VertexId join = net_.edge(inst.path.front()).to;
  const auto& candidates = in_edges_[join];
  if (candidates.size() < 2) return false;
  for (int attempt = 0; attempt < 4; ++attempt) {
    const EdgeId pick =
        candidates[static_cast<size_t>(rng_.UniformInt(0, candidates.size() - 1))];
    if (pick == inst.path.front()) continue;
    if (inst.path.size() > 1 && pick == inst.path[1]) continue;
    inst.path.front() = pick;
    NormalizeLocations(inst);
    return true;
  }
  return false;
}

bool UncertainTrajectoryGenerator::MutateRd(TrajectoryInstance& inst) {
  if (inst.locations.empty()) return false;
  const size_t i =
      static_cast<size_t>(rng_.UniformInt(0, inst.locations.size() - 1));
  // Half the time move the location to a neighbouring path edge *keeping
  // its rd* — the paper's Fig. 1 observation that the same raw point maps
  // to different edges at the same relative distance (D stays identical,
  // only E / T' shift). Otherwise draw a new rd on the same edge.
  auto& loc = inst.locations[i];
  if (rng_.Bernoulli(0.5) && inst.path.size() > 1 && i > 0 &&
      i + 1 < inst.locations.size()) {
    const bool forward = rng_.Bernoulli(0.5);
    const uint32_t max_index = static_cast<uint32_t>(inst.path.size()) - 1;
    const MappedLocation moved{
        forward ? loc.path_index + 1 : loc.path_index - 1, loc.rd};
    // The move must keep the time-ordered locations monotone along the
    // path, otherwise timestamps would silently remap.
    const auto leq = [](const MappedLocation& x, const MappedLocation& y) {
      return x.path_index != y.path_index ? x.path_index < y.path_index
                                          : x.rd <= y.rd;
    };
    if ((forward && loc.path_index < max_index &&
         leq(moved, inst.locations[i + 1])) ||
        (!forward && loc.path_index > 0 &&
         leq(inst.locations[i - 1], moved))) {
      loc = moved;
    } else {
      return false;
    }
  } else {
    const double old_rd = loc.rd;
    loc.rd = DrawRd();
    if (loc.rd == old_rd) loc.rd = old_rd * 0.5 + 0.25;
  }
  NormalizeLocations(inst);
  return true;
}

UncertainTrajectory UncertainTrajectoryGenerator::Generate() {
  UncertainTrajectory tu;
  tu.id = next_id_++;

  // --- true path & locations ---
  const double mean_extra = std::max(1.0, profile_.mean_edges -
                                              profile_.min_edges);
  size_t target =
      profile_.min_edges +
      static_cast<size_t>(-mean_extra * std::log(1.0 - rng_.Uniform(0.0, 0.999)));
  target = std::min<size_t>(target, profile_.max_edges);
  TrajectoryInstance truth;
  truth.path = RandomWalkPath(std::max<size_t>(target, profile_.min_edges));
  truth.locations = PlaceLocations(truth.path);

  // --- shared time sequence ---
  const size_t n = truth.locations.size();
  std::vector<int64_t> intervals(n > 0 ? n - 1 : 0);
  int64_t span = 0;
  for (auto& iv : intervals) {
    iv = profile_.default_interval_s + DrawDeviation();
    iv = std::max<int64_t>(iv, 1);
    span += iv;
  }
  const Timestamp t0 =
      rng_.UniformInt(0, std::max<int64_t>(1, kSecondsPerDay - span - 1));
  tu.times.resize(n);
  Timestamp t = t0;
  for (size_t i = 0; i < n; ++i) {
    tu.times[i] = t;
    if (i < intervals.size()) t += intervals[i];
  }

  // --- instance count: heavy-tailed mixture (Table 5 pairs small averages
  // with large maxima, e.g. CD: avg 3, max 148; the bulk of *instances*
  // lives in the tail, which is what makes referential groups large) ---
  const double mean_extra_inst =
      std::max(0.5, profile_.mean_instances - profile_.min_instances);
  double extra;
  if (rng_.Bernoulli(0.15)) {
    extra = -2.5 * profile_.mean_instances *
            std::log(1.0 - rng_.Uniform(0.0, 0.999));
  } else {
    extra = -0.55 * mean_extra_inst * std::log(1.0 - rng_.Uniform(0.0, 0.999));
  }
  size_t want = profile_.min_instances + static_cast<size_t>(extra);
  want = std::min<size_t>(want, profile_.max_instances);
  want = std::max<size_t>(want, profile_.min_instances);

  // --- mutate copies of the truth into distinct instances ---
  std::set<std::pair<std::vector<EdgeId>, std::vector<std::pair<uint32_t, int64_t>>>>
      seen;
  auto signature = [](const TrajectoryInstance& inst) {
    std::vector<std::pair<uint32_t, int64_t>> locs;
    locs.reserve(inst.locations.size());
    for (const auto& l : inst.locations) {
      locs.emplace_back(l.path_index,
                        static_cast<int64_t>(std::llround(l.rd * 1e9)));
    }
    return std::make_pair(inst.path, std::move(locs));
  };

  tu.instances.push_back(truth);
  seen.insert(signature(truth));
  int failures = 0;
  while (tu.instances.size() < want && failures < 40) {
    TrajectoryInstance inst = truth;
    const int mutations = 1 + static_cast<int>(-profile_.mutation_rate *
                                               std::log(1.0 - rng_.Uniform(0.0, 0.999)) /
                                               2.0);
    bool changed = false;
    for (int k = 0; k < std::max(1, mutations); ++k) {
      const double u = rng_.Uniform();
      if (u < 0.62) {
        changed |= MutateDetour(inst);
      } else if (u < 0.70) {
        changed |= MutateStartSwap(inst);
      } else {
        changed |= MutateRd(inst);
      }
    }
    if (!changed || inst.locations.size() != n ||
        !seen.insert(signature(inst)).second) {
      ++failures;
      continue;
    }
    tu.instances.push_back(std::move(inst));
  }

  // --- probabilities: decreasing with rank, truth most likely ---
  std::vector<double> weights(tu.instances.size());
  double total = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = std::exp(-0.7 * static_cast<double>(i)) *
                 (0.5 + rng_.Uniform(0.0, 0.5));
    total += weights[i];
  }
  for (size_t i = 0; i < weights.size(); ++i) {
    tu.instances[i].probability = weights[i] / total;
  }
  return tu;
}

UncertainCorpus UncertainTrajectoryGenerator::GenerateCorpus(size_t count) {
  UncertainCorpus corpus;
  corpus.reserve(count);
  for (size_t i = 0; i < count; ++i) corpus.push_back(Generate());
  return corpus;
}

UncertainTrajectoryGenerator::RawWithTruth
UncertainTrajectoryGenerator::GenerateRaw() {
  RawWithTruth out;
  const size_t target = static_cast<size_t>(
      std::max<double>(profile_.min_edges, profile_.mean_edges));
  out.true_path = RandomWalkPath(target);

  double total_len = 0.0;
  for (const EdgeId e : out.true_path) total_len += net_.edge(e).length;

  // Sample every ~Ts seconds at constant speed along the path.
  const double speed = 10.0;  // m/s, urban traffic
  const double duration = total_len / speed;
  const size_t n = std::max<size_t>(
      2, static_cast<size_t>(duration / profile_.default_interval_s));
  const Timestamp t0 = rng_.UniformInt(0, kSecondsPerDay / 2);

  // Prefix distances: prefix[i] = path length before edge i.
  std::vector<double> prefix(out.true_path.size() + 1, 0.0);
  for (size_t i = 0; i < out.true_path.size(); ++i) {
    prefix[i + 1] = prefix[i] + net_.edge(out.true_path[i]).length;
  }

  size_t edge_idx = 0;
  Timestamp t = t0;
  for (size_t i = 0; i < n; ++i) {
    const double goal = total_len * static_cast<double>(i) / (n - 1);
    while (edge_idx + 1 < out.true_path.size() && prefix[edge_idx + 1] < goal) {
      ++edge_idx;
    }
    const network::Vertex pos =
        net_.PointOnEdge(out.true_path[edge_idx], goal - prefix[edge_idx]);
    out.raw.push_back({pos.x + rng_.Normal(0.0, profile_.gps_noise_m),
                       pos.y + rng_.Normal(0.0, profile_.gps_noise_m), t});
    t += profile_.default_interval_s + std::max<int64_t>(DrawDeviation(), 0);
  }
  return out;
}

}  // namespace utcq::traj
