#ifndef UTCQ_TRAJ_TYPES_H_
#define UTCQ_TRAJ_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "network/road_network.h"

namespace utcq::traj {

/// Seconds since local midnight; the paper's temporal index partitions one
/// day, so a day-relative clock keeps everything simple.
using Timestamp = int64_t;

inline constexpr Timestamp kSecondsPerDay = 86400;

/// A raw GPS fix (x, y, t) in the network's planar coordinate system.
struct RawPoint {
  double x = 0.0;
  double y = 0.0;
  Timestamp t = 0;
};

using RawTrajectory = std::vector<RawPoint>;

/// A mapped location (Definition 2), expressed against the owning instance's
/// path: `path_index` selects the edge, `rd` is the relative distance
/// (Definition 7) of the location on that edge. Using a path index (rather
/// than an EdgeId) keeps the location unambiguous even if a path revisits an
/// edge. The timestamp lives in the uncertain trajectory's shared time
/// sequence.
struct MappedLocation {
  uint32_t path_index = 0;
  double rd = 0.0;

  bool operator==(const MappedLocation&) const = default;
};

/// One instance of a network-constrained uncertain trajectory
/// (Definition 5): a connected edge path, the time-ordered mapped locations
/// on it, and the instance probability.
///
/// Invariants (checked by Validate):
///  * path edges are connected (edge[i].to == edge[i+1].from);
///  * locations are ordered by (path_index, rd) non-decreasingly;
///  * the first and last path edges each carry at least one location;
///  * every instance of one uncertain trajectory has the same location count.
struct TrajectoryInstance {
  std::vector<network::EdgeId> path;
  std::vector<MappedLocation> locations;
  double probability = 0.0;

  network::EdgeId EdgeOfLocation(size_t i) const {
    return path[locations[i].path_index];
  }

  bool operator==(const TrajectoryInstance&) const = default;
};

/// A network-constrained uncertain trajectory: instances sharing one time
/// sequence. `times.size()` equals every instance's location count.
struct UncertainTrajectory {
  uint64_t id = 0;
  std::vector<Timestamp> times;
  std::vector<TrajectoryInstance> instances;

  size_t num_points() const { return times.size(); }
};

using UncertainCorpus = std::vector<UncertainTrajectory>;

/// Validates the structural invariants above. Returns an empty string when
/// valid, else a description of the first violation (used by tests and the
/// generators' self-checks).
std::string Validate(const network::RoadNetwork& net,
                     const UncertainTrajectory& tu);

/// Builds the TED/UTCQ edge sequence E(.) of an instance: for each path edge
/// in travel order its outgoing edge number, followed by (r - 1) zeros when
/// the edge carries r > 1 mapped locations (Section 2.2).
std::vector<uint32_t> BuildEdgeSequence(const network::RoadNetwork& net,
                                        const TrajectoryInstance& inst);

/// Builds the full (untrimmed) time-flag bit-string T'(.): one bit per edge
/// sequence entry, 1 iff that entry carries a mapped location. The number of
/// 1s equals the location count, and the first and last bits are always 1.
std::vector<uint8_t> BuildTimeFlagBits(const TrajectoryInstance& inst);

/// The start vertex SV(.) of an instance.
network::VertexId StartVertex(const network::RoadNetwork& net,
                              const TrajectoryInstance& inst);

/// Per-component raw storage footprint of a corpus, the baseline for all
/// compression-ratio metrics. Conventions (documented in DESIGN.md §2):
/// 32 bits per timestamp / edge-sequence entry / relative distance /
/// probability / start vertex; 1 bit per (uncompressed) time-flag bit.
struct ComponentSizes {
  uint64_t t_bits = 0;
  uint64_t sv_bits = 0;
  uint64_t e_bits = 0;
  uint64_t d_bits = 0;
  uint64_t tflag_bits = 0;
  uint64_t p_bits = 0;

  uint64_t total() const {
    return t_bits + sv_bits + e_bits + d_bits + tflag_bits + p_bits;
  }
  ComponentSizes& operator+=(const ComponentSizes& o);
};

ComponentSizes MeasureRawSize(const network::RoadNetwork& net,
                              const UncertainTrajectory& tu);
ComponentSizes MeasureRawSize(const network::RoadNetwork& net,
                              const UncertainCorpus& corpus);

}  // namespace utcq::traj

#endif  // UTCQ_TRAJ_TYPES_H_
