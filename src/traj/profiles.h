#ifndef UTCQ_TRAJ_PROFILES_H_
#define UTCQ_TRAJ_PROFILES_H_

#include <string>
#include <vector>

#include "network/generator.h"

namespace utcq::traj {

/// Distribution of |actual - default| sample-interval deviations, with the
/// paper's Fig. 4a buckets: 0 s, 1 s, (1,50] s, (50,100] s, > 100 s.
struct IntervalDeviationMix {
  double zero = 0.0;
  double one = 0.0;
  double upto_50 = 0.0;
  double upto_100 = 0.0;
  double beyond_100 = 0.0;
};

/// Statistical profile of one of the paper's datasets (Tables 5-6, Fig. 4).
/// The workload generator consumes a profile and emits a synthetic corpus
/// whose statistics match it; bench_fig4_stats verifies the match.
struct DatasetProfile {
  std::string name;

  // --- temporal (Table 5 + Fig. 4a) ---
  int default_interval_s = 10;  // Ts
  IntervalDeviationMix deviations;

  // --- sizes (Table 5) ---
  double mean_instances = 3.0;  // instances per uncertain trajectory
  int min_instances = 2;
  int max_instances = 64;
  double mean_edges = 11.0;  // path edges per trajectory
  int min_edges = 2;
  int max_edges = 160;

  // --- instance diversity (Fig. 4b) ---
  double mutation_rate = 1.6;      // expected mutations per non-true instance
  double rd_grid_fraction = 0.35;  // fraction of rds snapped to k/8 grid

  // --- network (Table 6, scaled) ---
  network::CityParams city;

  // --- map matching noise ---
  double gps_noise_m = 18.0;

  // --- default error bounds (Section 6.1) ---
  double eta_d = 1.0 / 128.0;
  double eta_p = 1.0 / 512.0;
};

/// Denmark: 1 s default interval, 93% of deviations <= 1 s, avg 9 instances,
/// avg 14 edges; sparse country-scale network (highest out-degree variance).
DatasetProfile DenmarkProfile();

/// Chengdu: 10 s interval, 62% deviations <= 1 s, avg 3 instances, avg 11
/// edges; dense urban grid.
DatasetProfile ChengduProfile();

/// Hangzhou: 20 s interval, 54% deviations <= 1 s, avg 13 instances
/// (largest), avg 13 edges; eta_p defaults to 1/2048 as in the paper.
DatasetProfile HangzhouProfile();

/// All three, in paper order.
std::vector<DatasetProfile> AllProfiles();

}  // namespace utcq::traj

#endif  // UTCQ_TRAJ_PROFILES_H_
