#ifndef UTCQ_TRAJ_DECODED_H_
#define UTCQ_TRAJ_DECODED_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "traj/types.h"

namespace utcq::traj {

/// A fully decoded uncertain trajectory, independent of any alpha: the
/// shared time sequence plus every instance expanded back to path +
/// locations. This is the unit the serving layer caches — decoding it once
/// costs the full bitstream walk (Exp-Golomb + PDDP + referential chain);
/// every query against the handle afterwards is pure in-memory filtering
/// and interpolation.
///
/// Slot layout mirrors the representation that produced it:
///  * UTCQ: ref_insts[r] is reference r in TrajMeta::refs order,
///    nref_insts[k] is non-reference k in TrajMeta::nrefs order.
///  * TED baseline: ref_insts[w] is instance w in original order,
///    nref_insts is empty.
/// A slot is nullopt when the instance failed reconstruction (corrupt or
/// degenerate stream) — exactly the cases the live decode path drops.
struct DecodedTraj {
  std::vector<Timestamp> times;
  std::vector<std::optional<TrajectoryInstance>> ref_insts;
  std::vector<std::optional<TrajectoryInstance>> nref_insts;

  /// Approximate heap footprint, the unit the cache's byte budget is
  /// charged in. Counts vector payloads, not allocator slack.
  size_t ApproxBytes() const;
};

/// Lookup the query processors accept in place of inline decoding: given a
/// trajectory index (local to the processor's corpus), returns a pinned
/// decoded handle, or nullptr to make the processor decode inline for that
/// trajectory. The shared_ptr keeps a cached entry alive across concurrent
/// eviction for as long as the query holds it.
using DecodedProvider =
    std::function<std::shared_ptr<const DecodedTraj>(uint32_t traj_idx)>;

/// The one fallback rule of every handle-aware query path: with a handle,
/// an instance comes from its slot (nullptr when reconstruction had
/// failed); without one, `decode` materializes it into `storage`. Shared so
/// cached and inline results cannot drift site by site.
template <typename DecodeFn>
const TrajectoryInstance* SlotOrDecode(
    const DecodedTraj* dt,
    std::vector<std::optional<TrajectoryInstance>> DecodedTraj::*slots,
    uint32_t idx, std::optional<TrajectoryInstance>& storage,
    DecodeFn&& decode) {
  if (dt != nullptr) {
    const std::optional<TrajectoryInstance>& slot = (dt->*slots)[idx];
    return slot.has_value() ? &*slot : nullptr;
  }
  storage = decode();
  return storage.has_value() ? &*storage : nullptr;
}

}  // namespace utcq::traj

#endif  // UTCQ_TRAJ_DECODED_H_
