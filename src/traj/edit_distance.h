#ifndef UTCQ_TRAJ_EDIT_DISTANCE_H_
#define UTCQ_TRAJ_EDIT_DISTANCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace utcq::traj {

/// Levenshtein distance between two symbol sequences (unit costs), the
/// measure the paper uses on E(.) sequences in Fig. 4b and the similarity
/// ground truth for FJD evaluation ([37, 43]).
size_t EditDistance(const std::vector<uint32_t>& a,
                    const std::vector<uint32_t>& b);

/// Banded variant: returns min(EditDistance(a, b), band + 1) in
/// O(band * max(|a|, |b|)) time. Used by corpus statistics where only the
/// histogram bucket (<= 2, <= 5, <= 8, >= 9) matters.
size_t EditDistanceBanded(const std::vector<uint32_t>& a,
                          const std::vector<uint32_t>& b, size_t band);

}  // namespace utcq::traj

#endif  // UTCQ_TRAJ_EDIT_DISTANCE_H_
