#ifndef UTCQ_TRAJ_INTERPOLATE_H_
#define UTCQ_TRAJ_INTERPOLATE_H_

#include <optional>
#include <vector>

#include "network/road_network.h"
#include "traj/types.h"

namespace utcq::traj {

/// A concrete network position <(vs -> ve), ndist> as returned by
/// probabilistic where queries (Definition 10).
struct NetworkPosition {
  network::EdgeId edge = network::kInvalidEdge;
  double ndist = 0.0;

  bool operator==(const NetworkPosition&) const = default;
};

/// Movement semantics shared by every query engine: between consecutive
/// mapped locations the object moves along the instance path at constant
/// speed (the interpolation the paper's Example 3 applies).

/// Network distance from the path start to location `loc_idx`.
double PathOffsetOfLocation(const network::RoadNetwork& net,
                            const TrajectoryInstance& inst, size_t loc_idx);

/// Path offsets of locations `loc_idx` and `loc_idx + 1` in a single path
/// walk. The accumulation visits edge lengths in the same left-to-right
/// order as two PathOffsetOfLocation calls, so the results are bit-for-bit
/// the doubles those calls would produce — just without walking the shared
/// path prefix twice.
void OffsetPairOfLocations(const network::RoadNetwork& net,
                           const TrajectoryInstance& inst, size_t loc_idx,
                           double* d0, double* d1);

/// Position of `inst` at time t given the bracketing samples (i, t0, t1);
/// constant-speed interpolation along the path (Example 3 semantics). With
/// a degenerate bracket (i past the penultimate location, or t1 <= t0) the
/// object sits at location min(i, last).
NetworkPosition PositionInBracket(const network::RoadNetwork& net,
                                  const TrajectoryInstance& inst, size_t i,
                                  Timestamp t0, Timestamp t1, Timestamp t);

/// PositionInBracket over many instances sharing one time bracket — the
/// shape of a Where hit list or a Range candidate chunk, where one (t, t0,
/// t1) is evaluated against every qualifying instance. Offsets are gathered
/// per instance and interpolated through the strategy layer's batched lerp
/// kernel, 8 instances per round; out[k] is bit-for-bit what
/// PositionInBracket(net, *insts[k], i, t0, t1, t) returns.
std::vector<NetworkPosition> PositionsInBracket(
    const network::RoadNetwork& net,
    const std::vector<const TrajectoryInstance*>& insts, size_t i,
    Timestamp t0, Timestamp t1, Timestamp t);

/// Network position of the instance at time `t`, or nullopt when t lies
/// outside [times.front(), times.back()].
std::optional<NetworkPosition> PositionAtTime(
    const network::RoadNetwork& net, const TrajectoryInstance& inst,
    const std::vector<Timestamp>& times, Timestamp t);

/// Path offset -> (edge, ndist) resolution.
NetworkPosition PositionAtPathOffset(const network::RoadNetwork& net,
                                     const TrajectoryInstance& inst,
                                     double offset);

/// All timestamps at which the instance passes <edge, rd> (one per matching
/// traversal of `edge` within the sampled span); probabilistic when queries
/// (Definition 11) build on this. `tolerance_m` widens the sampled span for
/// engines working on lossily-coded relative distances (quantization can
/// pull the first/last location past the exact query position).
std::vector<Timestamp> TimesAtPosition(const network::RoadNetwork& net,
                                       const TrajectoryInstance& inst,
                                       const std::vector<Timestamp>& times,
                                       network::EdgeId edge, double rd,
                                       double tolerance_m = 1e-9);

/// Rebuilds a TrajectoryInstance from its improved-TED constituents: start
/// vertex, edge sequence entries E(.), *full* (untrimmed) time-flag bits and
/// relative distances. Returns nullopt when the entries do not resolve to a
/// connected path in the network (corruption guard for decoders).
std::optional<TrajectoryInstance> ReconstructInstance(
    const network::RoadNetwork& net, network::VertexId sv,
    const std::vector<uint32_t>& entries, const std::vector<uint8_t>& tflag,
    const std::vector<double>& rds, double probability);

}  // namespace utcq::traj

#endif  // UTCQ_TRAJ_INTERPOLATE_H_
