#include "traj/edit_distance.h"

#include <algorithm>
#include <limits>

namespace utcq::traj {

size_t EditDistance(const std::vector<uint32_t>& a,
                    const std::vector<uint32_t>& b) {
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<size_t> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      const size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

size_t EditDistanceBanded(const std::vector<uint32_t>& a,
                          const std::vector<uint32_t>& b, size_t band) {
  const size_t n = a.size();
  const size_t m = b.size();
  const size_t diff = n > m ? n - m : m - n;
  if (diff > band) return band + 1;

  constexpr size_t kInf = std::numeric_limits<size_t>::max() / 2;
  std::vector<size_t> prev(m + 1, kInf), cur(m + 1, kInf);
  for (size_t j = 0; j <= std::min(m, band); ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    const size_t lo = i > band ? i - band : 0;
    const size_t hi = std::min(m, i + band);
    std::fill(cur.begin(), cur.end(), kInf);
    if (lo == 0) cur[0] = i;
    for (size_t j = std::max<size_t>(lo, 1); j <= hi; ++j) {
      const size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
    if (*std::min_element(prev.begin(), prev.end()) > band) return band + 1;
  }
  return std::min(prev[m], band + 1);
}

}  // namespace utcq::traj
