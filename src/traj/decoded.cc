#include "traj/decoded.h"

namespace utcq::traj {

namespace {

size_t InstanceBytes(const std::optional<TrajectoryInstance>& slot) {
  size_t bytes = sizeof(slot);
  if (!slot.has_value()) return bytes;
  bytes += slot->path.capacity() * sizeof(network::EdgeId);
  bytes += slot->locations.capacity() * sizeof(MappedLocation);
  return bytes;
}

}  // namespace

size_t DecodedTraj::ApproxBytes() const {
  size_t bytes = sizeof(DecodedTraj);
  bytes += times.capacity() * sizeof(Timestamp);
  for (const auto& slot : ref_insts) bytes += InstanceBytes(slot);
  for (const auto& slot : nref_insts) bytes += InstanceBytes(slot);
  return bytes;
}

}  // namespace utcq::traj
