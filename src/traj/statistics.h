#ifndef UTCQ_TRAJ_STATISTICS_H_
#define UTCQ_TRAJ_STATISTICS_H_

#include <array>
#include <cstdint>

#include "common/rng.h"
#include "network/road_network.h"
#include "traj/types.h"

namespace utcq::traj {

/// Fraction of sample-interval deviations per Fig. 4a bucket:
/// {0, 1, (1,50], (50,100], >100} seconds.
struct IntervalHistogram {
  std::array<double, 5> fraction{};
  uint64_t total = 0;

  /// Fraction with deviation <= 1 s (the paper's 93% / 62% / 54% numbers).
  double within_one() const { return fraction[0] + fraction[1]; }
};

IntervalHistogram ComputeIntervalHistogram(const UncertainCorpus& corpus,
                                           int default_interval_s);

/// Average number of sample intervals between interval changes (the paper's
/// 6.80 / 2.32 / 1.97 statistics motivating SIAR).
double AverageRunLength(const UncertainCorpus& corpus);

/// Fraction of E(.) edit distances per Fig. 4b bucket:
/// {[0,2], [3,5], [6,8], >=9}.
struct EditDistanceHistogram {
  std::array<double, 4> fraction{};
  uint64_t total = 0;

  double at_most_five() const { return fraction[0] + fraction[1]; }
  double at_least_nine() const { return fraction[3]; }
};

/// Pairwise edit distances between instances of the *same* uncertain
/// trajectory. At most `max_pairs_per_trajectory` sampled pairs each.
EditDistanceHistogram ComputeWithinDistances(
    const network::RoadNetwork& net, const UncertainCorpus& corpus,
    common::Rng& rng, size_t max_pairs_per_trajectory = 32);

/// Pairwise edit distances between instances of *different* uncertain
/// trajectories (`samples` random cross pairs).
EditDistanceHistogram ComputeAcrossDistances(const network::RoadNetwork& net,
                                             const UncertainCorpus& corpus,
                                             common::Rng& rng, size_t samples);

/// Aggregate corpus descriptors matching Table 5.
struct CorpusSummary {
  size_t trajectories = 0;
  double avg_instances = 0.0;
  size_t max_instances = 0;
  double avg_edges = 0.0;
  size_t max_edges = 0;
  uint64_t raw_bytes = 0;
};

CorpusSummary Summarize(const network::RoadNetwork& net,
                        const UncertainCorpus& corpus);

}  // namespace utcq::traj

#endif  // UTCQ_TRAJ_STATISTICS_H_
