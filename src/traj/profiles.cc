#include "traj/profiles.h"

namespace utcq::traj {

DatasetProfile DenmarkProfile() {
  DatasetProfile p;
  p.name = "DK";
  p.default_interval_s = 1;
  p.deviations = {0.80, 0.13, 0.05, 0.013, 0.007};
  p.mean_instances = 9.0;
  p.min_instances = 2;
  p.max_instances = 139;
  p.mean_edges = 14.0;
  p.min_edges = 2;
  p.max_edges = 434;
  p.mutation_rate = 1.5;
  p.rd_grid_fraction = 0.45;
  p.city.rows = 48;
  p.city.cols = 48;
  p.city.block_meters = 240.0;
  p.city.drop_probability = 0.22;  // rural sparsity: avg out-degree ~2.45
  p.city.diagonal_probability = 0.03;
  p.city.one_way_probability = 0.10;
  p.gps_noise_m = 15.0;
  p.eta_p = 1.0 / 512.0;
  return p;
}

DatasetProfile ChengduProfile() {
  DatasetProfile p;
  p.name = "CD";
  p.default_interval_s = 10;
  p.deviations = {0.40, 0.22, 0.28, 0.07, 0.03};
  p.mean_instances = 3.0;
  p.min_instances = 2;
  p.max_instances = 148;
  p.mean_edges = 11.0;
  p.min_edges = 2;
  p.max_edges = 192;
  p.mutation_rate = 1.4;
  p.rd_grid_fraction = 0.45;
  p.city.rows = 40;
  p.city.cols = 40;
  p.city.block_meters = 150.0;
  p.city.drop_probability = 0.10;  // dense urban grid: avg out-degree ~2.83
  p.city.diagonal_probability = 0.06;
  p.city.one_way_probability = 0.15;
  p.gps_noise_m = 20.0;
  p.eta_p = 1.0 / 512.0;
  return p;
}

DatasetProfile HangzhouProfile() {
  DatasetProfile p;
  p.name = "HZ";
  p.default_interval_s = 20;
  p.deviations = {0.34, 0.20, 0.32, 0.09, 0.05};
  p.mean_instances = 13.0;
  p.min_instances = 2;
  p.max_instances = 189;
  p.mean_edges = 13.0;
  p.min_edges = 2;
  p.max_edges = 1500;
  p.mutation_rate = 1.8;
  p.rd_grid_fraction = 0.45;
  p.city.rows = 40;
  p.city.cols = 40;
  p.city.block_meters = 160.0;
  p.city.drop_probability = 0.11;  // avg out-degree ~2.79
  p.city.diagonal_probability = 0.05;
  p.city.one_way_probability = 0.14;
  p.gps_noise_m = 22.0;
  p.eta_p = 1.0 / 2048.0;
  return p;
}

std::vector<DatasetProfile> AllProfiles() {
  return {DenmarkProfile(), ChengduProfile(), HangzhouProfile()};
}

}  // namespace utcq::traj
