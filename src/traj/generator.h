#ifndef UTCQ_TRAJ_GENERATOR_H_
#define UTCQ_TRAJ_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "network/road_network.h"
#include "traj/profiles.h"
#include "traj/types.h"

namespace utcq::traj {

/// Synthesizes network-constrained uncertain trajectories whose statistics
/// match a DatasetProfile (see DESIGN.md §2 for the substitution argument).
///
/// The true instance is a random walk on the network; further instances are
/// produced by detour / start-swap / relative-distance mutations so that
/// within-trajectory edit distances concentrate in the paper's [0,5] band
/// while independent trajectories stay dissimilar (Fig. 4b). The shared time
/// sequence follows the profile's sample-interval deviation mix (Fig. 4a).
class UncertainTrajectoryGenerator {
 public:
  UncertainTrajectoryGenerator(const network::RoadNetwork& net,
                               DatasetProfile profile, uint64_t seed);

  /// Generates one uncertain trajectory (valid per traj::Validate).
  UncertainTrajectory Generate();

  /// Generates `count` independent uncertain trajectories.
  UncertainCorpus GenerateCorpus(size_t count);

  /// Generates a noisy raw GPS trajectory together with its ground-truth
  /// path; input for the probabilistic map-matcher (examples and matcher
  /// tests).
  struct RawWithTruth {
    RawTrajectory raw;
    std::vector<network::EdgeId> true_path;
  };
  RawWithTruth GenerateRaw();

  const DatasetProfile& profile() const { return profile_; }

 private:
  std::vector<network::EdgeId> RandomWalkPath(size_t target_edges);

  /// Draws a relative distance; a profile-controlled fraction snaps to the
  /// k/8 grid (matching the paper's observation that instances often share
  /// rds even across different edges).
  double DrawRd();

  /// Samples a sample-interval deviation from the profile mix, clamped so
  /// intervals stay >= 1 s.
  int64_t DrawDeviation();

  /// Places locations on a path: >= 1 on the first and last edges.
  std::vector<MappedLocation> PlaceLocations(
      const std::vector<network::EdgeId>& path);

  /// Mutation operators; each returns true when it changed the instance.
  bool MutateDetour(TrajectoryInstance& inst);
  bool MutateStartSwap(TrajectoryInstance& inst);
  bool MutateRd(TrajectoryInstance& inst);

  /// Restores ordering/coverage invariants after a mutation.
  void NormalizeLocations(TrajectoryInstance& inst);

  const network::RoadNetwork& net_;
  DatasetProfile profile_;
  common::Rng rng_;
  std::vector<std::vector<network::EdgeId>> in_edges_;  // reverse adjacency
  uint64_t next_id_ = 0;
};

}  // namespace utcq::traj

#endif  // UTCQ_TRAJ_GENERATOR_H_
