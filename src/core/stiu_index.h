#ifndef UTCQ_CORE_STIU_INDEX_H_
#define UTCQ_CORE_STIU_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/serial.h"
#include "core/corpus_view.h"
#include "network/grid_index.h"
#include "traj/types.h"

namespace utcq::core {

struct StiuParams {
  uint32_t cells_per_side = 32;       // spatial grid (Table 7: 8^2..128^2)
  int64_t time_partition_s = 1800;    // Table 7: 10..60 minutes
};

/// Spatio-temporal Information based Uncertain Trajectory Index
/// (Section 5.2). Built during compression: temporal tuples point into the
/// SIAR-coded T stream so where/range queries decode only the deltas after
/// the partition start; spatial tuples carry the final-vertex anchors plus
/// the p_total / p_max aggregates Lemmas 1-4 prune with.
///
/// The index is persistable: Serialize writes every tuple list to a byte
/// stream (the archive's StIU section) and the deserializing constructor
/// rebuilds an identical index against a grid reconstructed from the stored
/// cells_per_side — nothing in the loaded index depends on the original
/// uncompressed corpus.
class StiuIndex {
 public:
  /// (t.start, t.no, t.pos) of Section 5.2's temporal part.
  struct TemporalTuple {
    traj::Timestamp t_start = 0;
    uint32_t t_no = 0;
    uint64_t t_pos = 0;  // absolute bit position of the (t_no+1)-th delta
  };

  /// Tuple of a reference w.r.t. a region (first form: the reference passes
  /// the region; second form, ref_passes = false: only members of its Rrs
  /// do — the paper's fv.id = infinity case).
  struct RefTuple {
    uint32_t traj = 0;
    uint32_t ref_idx = 0;
    network::VertexId fv_id = network::kInvalidVertex;
    uint32_t fv_no = 0;   // entry index of the region's first edge in E(ref)
    uint32_t d_no = 0;    // gamma(fv_no): locations at or before that entry
    uint64_t d_pos = 0;   // bit position of the bracketing D code
    float p_total = 0.0f;
    float p_max = 0.0f;   // max non-reference probability in the region
    bool ref_passes = false;
  };

  /// Tuple of a non-reference w.r.t. a region.
  struct NrefTuple {
    uint32_t traj = 0;
    uint32_t nref_idx = 0;
    network::VertexId rv_id = network::kInvalidVertex;
    uint32_t rv_no = 0;   // entry index of the region's first edge in E(nref)
    uint64_t ma_pos = 0;  // bit offset of the factor containing that entry
  };

  /// Builds the index during compression (needs the uncompressed corpus for
  /// the spatial aggregates and the factor layouts for ma.pos).
  StiuIndex(const network::RoadNetwork& net, const network::GridIndex& grid,
            const traj::UncertainCorpus& corpus, const CorpusView& cc,
            const std::vector<std::vector<NrefFactorLayout>>& layouts,
            StiuParams params);

  /// Rebuilds an index from a Serialize()d byte stream (the archive's StIU
  /// section). `grid` must have been constructed with the cells_per_side
  /// recorded alongside the section; region-count mismatches latch
  /// `in.ok()` false and leave the index empty.
  StiuIndex(const network::GridIndex& grid, common::ByteReader& in);

  /// Writes params and every tuple list; the exact inverse of the reading
  /// constructor.
  void Serialize(common::ByteWriter& out) const;

  const network::GridIndex& grid() const { return grid_; }
  const StiuParams& params() const { return params_; }
  int64_t time_partition_s() const { return params_.time_partition_s; }

  /// Number of trajectories the index covers (TemporalOf's valid range).
  size_t num_trajectories() const { return temporal_.size(); }

  /// Temporal tuples of trajectory `j`, ordered by t_start.
  const std::vector<TemporalTuple>& TemporalOf(size_t j) const {
    return temporal_[j];
  }

  /// Best tuple to start a partial T decode for time `t` (the latest tuple
  /// with t_start <= t), or the first tuple when t precedes them all.
  const TemporalTuple& TemporalTupleFor(size_t j, traj::Timestamp t) const;

  /// Trajectories whose time span intersects the partition containing `t`.
  const std::vector<uint32_t>& TrajectoriesAt(traj::Timestamp t) const;

  const std::vector<RefTuple>& RefTuplesIn(network::RegionId re) const {
    return region_refs_[re];
  }
  const std::vector<NrefTuple>& NrefTuplesIn(network::RegionId re) const {
    return region_nrefs_[re];
  }

  size_t SizeBytes() const;
  size_t temporal_size_bytes() const;
  size_t spatial_size_bytes() const;

 private:
  const network::GridIndex& grid_;
  StiuParams params_;
  std::vector<std::vector<TemporalTuple>> temporal_;   // [traj]
  std::vector<std::vector<uint32_t>> partition_trajs_; // [partition]
  std::vector<std::vector<RefTuple>> region_refs_;     // [region]
  std::vector<std::vector<NrefTuple>> region_nrefs_;   // [region]
};

}  // namespace utcq::core

#endif  // UTCQ_CORE_STIU_INDEX_H_
