#include "core/fjd.h"

#include <algorithm>

namespace utcq::core {

double Fjd(const PivotCom& com_w, const PivotCom& com_v) {
  const uint32_t h_w = com_w.total_factors;
  const uint32_t h_v = com_v.total_factors;
  if (h_w == 0 || h_v == 0) return 0.0;

  double sum = 0.0;
  for (const auto& [s_v, l_v] : com_v.factors) {
    // Equation (2): the factor of w with the largest interval overlap; on
    // overlap ties the smallest L_w wins (the paper's min-on-ties rule).
    long best_overlap = 0;
    uint32_t best_l_w = 0;
    for (const auto& [s_w, l_w] : com_w.factors) {
      const long lo = std::max<long>(s_w, s_v);
      const long hi = std::min<long>(s_w + l_w, s_v + l_v);
      const long overlap = std::max<long>(hi - lo, 0);
      if (overlap > best_overlap ||
          (overlap == best_overlap && overlap > 0 && l_w < best_l_w)) {
        best_overlap = overlap;
        best_l_w = l_w;
      }
    }
    if (best_overlap > 0) {
      const double denom = static_cast<double>(std::max(best_l_w, l_v));
      sum += static_cast<double>(best_overlap) / denom;
    }
  }
  return sum / static_cast<double>(std::max(h_w, h_v));
}

std::vector<std::vector<double>> BuildScoreMatrix(
    const std::vector<std::vector<PivotCom>>& pivot_reprs,
    const std::vector<double>& probabilities,
    const std::vector<uint32_t>& start_vertices) {
  const size_t n = probabilities.size();
  std::vector<std::vector<double>> sm(n, std::vector<double>(n, 0.0));
  for (size_t w = 0; w < n; ++w) {
    for (size_t v = 0; v < n; ++v) {
      if (w == v) continue;  // SF(w, w) = 0
      if (start_vertices[w] != start_vertices[v]) continue;
      double best = 0.0;
      for (const auto& reprs : pivot_reprs) {
        best = std::max(best, Fjd(reprs[w], reprs[v]));
      }
      sm[w][v] = probabilities[w] * best;
    }
  }
  return sm;
}

}  // namespace utcq::core
