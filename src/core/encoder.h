#ifndef UTCQ_CORE_ENCODER_H_
#define UTCQ_CORE_ENCODER_H_

#include <cstdint>
#include <vector>

#include "common/bitstream.h"
#include "common/memory_tracker.h"
#include "common/pddp.h"
#include "core/corpus_meta.h"
#include "core/corpus_view.h"
#include "core/reference_selection.h"
#include "network/road_network.h"
#include "traj/types.h"

namespace utcq::core {

/// The write-side product of UTCQ compression: self-framing bit streams
/// being appended by the compressor, plus the per-entity bit positions the
/// query processor navigates with. Compressed-size accounting covers every
/// stream bit (framing included); the metas are index-side state, reported
/// with the StIU size.
///
/// This class owns mutable BitWriters and is the only part of the system
/// that does; everything on the read path (decoder, StIU builder, query
/// processor, archive writer) consumes the immutable CorpusView borrowed
/// from it via view(). A view stays valid for the lifetime of this object,
/// as the streams are append-only and sealed once Compress returns.
class CompressedCorpus {
 public:
  const UtcqParams& params() const { return params_; }
  int entry_bits() const { return entry_bits_; }
  const common::PddpCodec& d_codec() const { return d_codec_; }
  const common::PddpCodec& p_codec() const { return p_codec_; }

  const common::BitWriter& t_stream() const { return t_stream_; }
  const common::BitWriter& ref_stream() const { return ref_stream_; }
  const common::BitWriter& nref_stream() const { return nref_stream_; }
  const common::BitWriter& structure_stream() const {
    return structure_stream_;
  }

  size_t num_trajectories() const { return metas_.size(); }
  const TrajMeta& meta(size_t j) const { return metas_[j]; }
  const std::vector<TrajMeta>& metas() const { return metas_; }

  const traj::ComponentSizes& compressed_bits() const {
    return compressed_bits_;
  }
  size_t peak_memory_bytes() const { return peak_memory_; }

  /// Total compressed payload in bits (all four streams).
  uint64_t total_bits() const {
    return t_stream_.size_bits() + ref_stream_.size_bits() +
           nref_stream_.size_bits() + structure_stream_.size_bits();
  }

  /// Immutable read-side borrowing this corpus's bytes. The corpus must
  /// outlive the view.
  CorpusView view() const {
    return CorpusView(params_, entry_bits_, t_stream_.span(),
                      ref_stream_.span(), nref_stream_.span(),
                      structure_stream_.span(), metas_.data(), metas_.size());
  }

  /// The read path is written against CorpusView; a live corpus converts
  /// implicitly so call sites need not care which side they hold.
  operator CorpusView() const { return view(); }  // NOLINT(runtime/explicit)

 private:
  friend class UtcqCompressor;

  UtcqParams params_{};
  int entry_bits_ = 4;
  common::PddpCodec d_codec_{1.0 / 128.0};
  common::PddpCodec p_codec_{1.0 / 512.0};
  common::BitWriter t_stream_;
  common::BitWriter ref_stream_;
  common::BitWriter nref_stream_;
  common::BitWriter structure_stream_;
  std::vector<TrajMeta> metas_;
  traj::ComponentSizes compressed_bits_;
  size_t peak_memory_ = 0;
};

/// The UTCQ compressor: improved TED representation, pivot selection, FJD
/// score matrix, greedy reference selection, then binary encoding of
/// references and referential non-references (Sections 4.1-4.4).
class UtcqCompressor {
 public:
  UtcqCompressor(const network::RoadNetwork& net, UtcqParams params)
      : net_(net), params_(params) {}

  /// Compresses the corpus. When `layouts` is non-null it receives, for
  /// every trajectory, the per-non-reference factor layout (for StIU
  /// construction).
  CompressedCorpus Compress(
      const traj::UncertainCorpus& corpus,
      std::vector<std::vector<NrefFactorLayout>>* layouts = nullptr) const;

  /// Incremental entry points for streaming ingestion. Begin initializes an
  /// empty corpus (params, entry width, codecs); each AppendTrajectory
  /// encodes one trajectory onto its streams. Compress(corpus) is exactly
  /// Begin + one AppendTrajectory per trajectory — nothing in the encoding
  /// of a trajectory depends on its neighbours — so an append-built corpus
  /// is bit-identical to the batch build of the same trajectory sequence
  /// (the invariant the live-shard flush path rests on).
  CompressedCorpus Begin() const;
  void AppendTrajectory(const traj::UncertainTrajectory& tu,
                        CompressedCorpus* out,
                        std::vector<NrefFactorLayout>* layout = nullptr) const;

 private:
  const network::RoadNetwork& net_;
  UtcqParams params_;
};

}  // namespace utcq::core

#endif  // UTCQ_CORE_ENCODER_H_
