#ifndef UTCQ_CORE_ENCODER_H_
#define UTCQ_CORE_ENCODER_H_

#include <cstdint>
#include <vector>

#include "common/bitstream.h"
#include "common/memory_tracker.h"
#include "common/pddp.h"
#include "core/reference_selection.h"
#include "network/road_network.h"
#include "traj/types.h"

namespace utcq::core {

/// UTCQ compression parameters (Table 7 defaults).
struct UtcqParams {
  double eta_d = 1.0 / 128.0;   // relative-distance error bound
  double eta_p = 1.0 / 512.0;   // probability error bound
  int num_pivots = 1;           // n_p (paper default: 1 on CD/HZ, 2 on DK)
  int64_t default_interval_s = 10;  // Ts for SIAR
  /// Ablation: encode every instance as a standalone reference (no pivot
  /// selection, no FJD, no referential factors). Isolates the contribution
  /// of the referential representation versus the improved TED + SIAR
  /// coding (DESIGN.md §5).
  bool disable_referential = false;
};

/// Bit positions of one compressed reference within the corpus streams.
struct RefMeta {
  uint32_t orig_index = 0;  // instance position within the trajectory
  uint64_t offset = 0;      // start of this reference in ref_stream
  uint32_t e_len = 0;
  uint64_t d_pos = 0;       // absolute bit position of the first D code
  float p_quantized = 0.0f;
};

/// Bit positions of one compressed non-reference.
struct NrefMeta {
  uint32_t orig_index = 0;
  uint32_t ref_pos = 0;  // position of its reference in TrajMeta::refs
  uint64_t offset = 0;   // start of this non-reference in nref_stream
  uint32_t e_len = 0;
  float p_quantized = 0.0f;
};

struct TrajMeta {
  uint64_t t_pos = 0;  // start of this trajectory's block in t_stream
  uint32_t n_points = 0;
  traj::Timestamp t_first = 0;
  traj::Timestamp t_last = 0;
  std::vector<RefMeta> refs;
  std::vector<NrefMeta> nrefs;
  /// Per original instance: (is_reference, index into refs / nrefs).
  std::vector<std::pair<bool, uint32_t>> roles;
};

/// Transient per-factor layout of one encoded non-reference E(.) block,
/// consumed by the StIU builder to compute ma.pos tuples; not persisted.
struct NrefFactorLayout {
  std::vector<uint32_t> factor_entry_start;  // decoded E index per factor
  std::vector<uint64_t> factor_bit_offset;   // absolute offset in nref_stream
};

/// The UTCQ-compressed corpus: self-framing bit streams plus the per-entity
/// bit positions the query processor navigates with. Compressed-size
/// accounting covers every stream bit (framing included); the metas are
/// index-side state, reported with the StIU size.
class CompressedCorpus {
 public:
  const UtcqParams& params() const { return params_; }
  int entry_bits() const { return entry_bits_; }
  const common::PddpCodec& d_codec() const { return d_codec_; }
  const common::PddpCodec& p_codec() const { return p_codec_; }

  const common::BitWriter& t_stream() const { return t_stream_; }
  const common::BitWriter& ref_stream() const { return ref_stream_; }
  const common::BitWriter& nref_stream() const { return nref_stream_; }
  const common::BitWriter& structure_stream() const {
    return structure_stream_;
  }

  size_t num_trajectories() const { return metas_.size(); }
  const TrajMeta& meta(size_t j) const { return metas_[j]; }

  const traj::ComponentSizes& compressed_bits() const {
    return compressed_bits_;
  }
  size_t peak_memory_bytes() const { return peak_memory_; }

  /// Total compressed payload in bits (all four streams).
  uint64_t total_bits() const {
    return t_stream_.size_bits() + ref_stream_.size_bits() +
           nref_stream_.size_bits() + structure_stream_.size_bits();
  }

 private:
  friend class UtcqCompressor;

  UtcqParams params_{};
  int entry_bits_ = 4;
  common::PddpCodec d_codec_{1.0 / 128.0};
  common::PddpCodec p_codec_{1.0 / 512.0};
  common::BitWriter t_stream_;
  common::BitWriter ref_stream_;
  common::BitWriter nref_stream_;
  common::BitWriter structure_stream_;
  std::vector<TrajMeta> metas_;
  traj::ComponentSizes compressed_bits_;
  size_t peak_memory_ = 0;
};

/// The UTCQ compressor: improved TED representation, pivot selection, FJD
/// score matrix, greedy reference selection, then binary encoding of
/// references and referential non-references (Sections 4.1-4.4).
class UtcqCompressor {
 public:
  UtcqCompressor(const network::RoadNetwork& net, UtcqParams params)
      : net_(net), params_(params) {}

  /// Compresses the corpus. When `layouts` is non-null it receives, for
  /// every trajectory, the per-non-reference factor layout (for StIU
  /// construction).
  CompressedCorpus Compress(
      const traj::UncertainCorpus& corpus,
      std::vector<std::vector<NrefFactorLayout>>* layouts = nullptr) const;

 private:
  const network::RoadNetwork& net_;
  UtcqParams params_;
};

}  // namespace utcq::core

#endif  // UTCQ_CORE_ENCODER_H_
