#ifndef UTCQ_CORE_REFERENCE_SELECTION_H_
#define UTCQ_CORE_REFERENCE_SELECTION_H_

#include <cstdint>
#include <vector>

namespace utcq::core {

/// Outcome of Algorithm 1 for one uncertain trajectory.
struct ReferencePlan {
  /// Instance indexes chosen as references, in selection order. Instances
  /// never assigned a reference join this list as standalone references
  /// (Algorithm 1, lines 11-13).
  std::vector<uint32_t> references;

  /// Per instance: -1 when the instance is itself a reference, otherwise
  /// the position (in `references`) of its reference.
  std::vector<int32_t> ref_of;

  bool IsReference(uint32_t instance) const { return ref_of[instance] < 0; }

  /// The referential representation set Rrs of reference `references[r]`.
  std::vector<uint32_t> Rrs(uint32_t r) const {
    std::vector<uint32_t> members;
    for (uint32_t w = 0; w < ref_of.size(); ++w) {
      if (ref_of[w] == static_cast<int32_t>(r)) members.push_back(w);
    }
    return members;
  }
};

/// Greedy reference selection (Algorithm 1): repeatedly take the largest
/// positive score SM[w][v], make w a reference and v a member of w's Rrs,
/// then drop the cells the two constraints forbid (a reference cannot be
/// represented; a represented instance can neither represent nor be
/// re-represented — single-order compression).
ReferencePlan SelectReferences(const std::vector<std::vector<double>>& sm);

}  // namespace utcq::core

#endif  // UTCQ_CORE_REFERENCE_SELECTION_H_
