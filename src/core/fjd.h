#ifndef UTCQ_CORE_FJD_H_
#define UTCQ_CORE_FJD_H_

#include <vector>

#include "core/pivot.h"

namespace utcq::core {

/// Fine-grained Jaccard Distance FJD(Tu_w -> Tu_v, piv) of Equation (1):
/// the average, over the factors of Com_E(Tu_v, piv), of their best interval
/// similarity against the factors of Com_E(Tu_w, piv) (Equation (2)),
/// normalized by max{H, H'}.
///
/// Despite the name, a *higher* value means the instances are more similar
/// (it estimates how well w would serve as a reference for v).
double Fjd(const PivotCom& com_w, const PivotCom& com_v);

/// Score matrix SM of Section 4.3: SM[w][v] = SF(Tu_w, Tu_v) =
/// p_w * max_i FJD(w -> v, piv_i); zero on the diagonal and for pairs whose
/// start vertices differ.
std::vector<std::vector<double>> BuildScoreMatrix(
    const std::vector<std::vector<PivotCom>>& pivot_reprs,
    const std::vector<double>& probabilities,
    const std::vector<uint32_t>& start_vertices);

}  // namespace utcq::core

#endif  // UTCQ_CORE_FJD_H_
