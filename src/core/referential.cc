#include "core/referential.h"

#include <algorithm>
#include <unordered_map>

#include "common/bitstream.h"

namespace utcq::core {

std::vector<EFactor> FactorizeE(const std::vector<uint32_t>& ref,
                                const std::vector<uint32_t>& target) {
  std::vector<EFactor> factors;
  const size_t n = target.size();
  const size_t m = ref.size();

  // Occurrence lists per symbol keep the greedy scan near O(n * matches).
  std::unordered_map<uint32_t, std::vector<uint32_t>> occurrences;
  for (uint32_t s = 0; s < m; ++s) occurrences[ref[s]].push_back(s);

  size_t i = 0;
  while (i < n) {
    uint32_t best_s = 0;
    size_t best_l = 0;
    const auto it = occurrences.find(target[i]);
    if (it != occurrences.end()) {
      for (const uint32_t s : it->second) {
        size_t l = 0;
        while (s + l < m && i + l < n && ref[s + l] == target[i + l]) ++l;
        if (l > best_l) {
          best_l = l;
          best_s = s;
        }
      }
    }
    if (best_l == 0) {
      // Case B: the symbol does not occur in the reference at all.
      factors.push_back(
          {static_cast<uint32_t>(m), 0, target[i], /*case_b=*/true});
      ++i;
      continue;
    }
    if (i + best_l == n) {
      // Case A: complete final match, M omitted.
      factors.push_back(
          {best_s, static_cast<uint32_t>(best_l), std::nullopt, false});
      break;
    }
    factors.push_back(
        {best_s, static_cast<uint32_t>(best_l), target[i + best_l], false});
    i += best_l + 1;
  }
  return factors;
}

std::vector<uint32_t> ExpandE(const std::vector<uint32_t>& ref,
                              const std::vector<EFactor>& factors) {
  std::vector<uint32_t> out;
  for (const EFactor& f : factors) {
    if (f.case_b) {
      out.push_back(*f.m);
      continue;
    }
    out.insert(out.end(), ref.begin() + f.s, ref.begin() + f.s + f.l);
    if (f.m.has_value()) out.push_back(*f.m);
  }
  return out;
}

namespace {

/// Bits a factor list costs once encoded (count framing included); used to
/// fall back to literal coding when factors do not pay off.
size_t TflagFactorsCostBits(const std::vector<TFactor>& factors,
                            bool last_has_m, size_t ref_len) {
  const int s_bits =
      common::BitsFor(ref_len > 0 ? static_cast<uint64_t>(ref_len - 1) : 0);
  const int l_bits = common::BitsFor(static_cast<uint64_t>(ref_len));
  size_t varint_bits = 8;  // count framing, 8 bits per 7-bit group
  for (size_t h = factors.size() >> 7; h > 0; h >>= 7) varint_bits += 8;
  return factors.size() * static_cast<size_t>(s_bits + l_bits) +
         (last_has_m ? 1 : 0) + varint_bits;
}

}  // namespace

bool FactorizeTflagFactors(const std::vector<uint8_t>& ref,
                           const std::vector<uint8_t>& target,
                           std::vector<TFactor>* factors, bool* last_has_m,
                           uint8_t* last_m) {
  factors->clear();
  *last_has_m = false;
  *last_m = 0;
  if (ref.empty() || target.empty()) return false;

  const size_t n = target.size();
  const size_t m = ref.size();
  size_t i = 0;
  while (i < n) {
    // Longest match over all reference start positions; for intermediate
    // factors only matches ending strictly inside the reference are usable
    // (the inferred mismatch is NOT ref[S+L], see DESIGN.md §2).
    size_t best_full_l = 0;
    uint32_t best_full_s = 0;
    size_t best_int_l = 0;
    uint32_t best_int_s = 0;
    bool has_int = false;
    for (uint32_t s = 0; s < m; ++s) {
      size_t l = 0;
      while (s + l < m && i + l < n && ref[s + l] == target[i + l]) ++l;
      if (l > best_full_l) {
        best_full_l = l;
        best_full_s = s;
      }
      // Usable as an intermediate factor iff the match ends strictly inside
      // the reference: the inferred bit is then NOT ref[s+l] == target[i+l].
      // A zero-length match (ref[s] != target[i]) qualifies too: it copies
      // nothing and infers exactly target[i].
      if (s + l < m && (!has_int || l > best_int_l)) {
        has_int = true;
        best_int_l = l;
        best_int_s = s;
      }
    }

    if (i + best_full_l == n && best_full_l > 0) {
      factors->push_back({best_full_s, static_cast<uint32_t>(best_full_l)});
      return true;  // complete final match, no M
    }
    if (!has_int) {
      return false;  // every match runs into the reference end: no inference
    }
    const size_t use_l = best_int_l;
    const uint32_t use_s = best_int_s;
    if (i + use_l + 1 == n) {
      // This is the last factor; keep the explicit (S, L, M) form.
      factors->push_back({use_s, static_cast<uint32_t>(use_l)});
      *last_has_m = true;
      *last_m = target[n - 1];
      return true;
    }
    factors->push_back({use_s, static_cast<uint32_t>(use_l)});
    i += use_l + 1;
  }
  return true;
}

TflagCom FactorizeTflag(const std::vector<uint8_t>& ref,
                        const std::vector<uint8_t>& target) {
  TflagCom com;
  if (ref == target) {
    com.mode = TflagMode::kIdentical;
    return com;
  }
  com.mode = TflagMode::kLiteral;
  std::vector<TFactor> factors;
  bool last_has_m = false;
  uint8_t last_m = 0;
  if (FactorizeTflagFactors(ref, target, &factors, &last_has_m, &last_m) &&
      TflagFactorsCostBits(factors, last_has_m, ref.size()) <=
          target.size()) {
    com.mode = TflagMode::kFactors;
    com.factors = std::move(factors);
    com.last_has_m = last_has_m;
    com.last_m = last_m;
  }
  return com;
}

std::vector<uint8_t> ExpandTflag(const std::vector<uint8_t>& ref,
                                 const TflagCom& com, size_t target_len,
                                 const std::vector<uint8_t>& literal) {
  switch (com.mode) {
    case TflagMode::kIdentical:
      return ref;
    case TflagMode::kLiteral:
      return literal;
    case TflagMode::kFactors:
      break;
  }
  std::vector<uint8_t> out;
  out.reserve(target_len);
  for (size_t h = 0; h < com.factors.size(); ++h) {
    const TFactor& f = com.factors[h];
    out.insert(out.end(), ref.begin() + f.s, ref.begin() + f.s + f.l);
    const bool last = h + 1 == com.factors.size();
    if (!last) {
      out.push_back(ref[f.s + f.l] ? 0 : 1);  // inferred mismatch
    } else if (com.last_has_m) {
      out.push_back(com.last_m);
    }
  }
  return out;
}

std::vector<double> ApplyD(const std::vector<double>& ref,
                           const std::vector<DFactor>& diff) {
  std::vector<double> out = ref;
  for (const DFactor& f : diff) out[f.pos] = f.rd;
  return out;
}

}  // namespace utcq::core
