#ifndef UTCQ_CORE_FLAG_ARRAY_H_
#define UTCQ_CORE_FLAG_ARRAY_H_

#include <cstdint>
#include <vector>

#include "core/referential.h"

namespace utcq::core {

/// The *flag array* omega of a reference's (trimmed) time-flag bit-string
/// (Section 5.1): OnesBefore(g) = number of 1s before the g-th bit, i.e. in
/// positions [0, g).
class FlagArray {
 public:
  explicit FlagArray(const std::vector<uint8_t>& trimmed_bits);

  uint32_t OnesBefore(uint32_t g) const { return prefix_[g]; }
  uint32_t size() const { return static_cast<uint32_t>(prefix_.size() - 1); }

 private:
  std::vector<uint32_t> prefix_;  // prefix[g] = ones in [0, g)
};

/// Number of 1s in positions [0, q) of a *non-reference's* trimmed time-flag
/// bit-string, derived from its factor representation and the reference's
/// flag array by decompressing at most one factor (Formulas 4-6). For
/// kLiteral mode the literal bits must be supplied; for kIdentical the
/// reference's array answers directly.
uint32_t OnesInNrefPrefix(const TflagCom& com,
                          const std::vector<uint8_t>& ref_trimmed,
                          const FlagArray& omega, uint32_t q,
                          const std::vector<uint8_t>& literal = {});

/// The *original array* gamma: number of 1s up to and including position g
/// of the non-reference's original (untrimmed, first/last = 1) time-flag
/// bit-string of length `entry_count`. gamma(fv.no) is the paper's d.no —
/// the ordinal of the first mapped location at or after an edge-sequence
/// position.
uint32_t GammaNref(const TflagCom& com,
                   const std::vector<uint8_t>& ref_trimmed,
                   const FlagArray& omega, uint32_t g, uint32_t entry_count,
                   const std::vector<uint8_t>& literal = {});

}  // namespace utcq::core

#endif  // UTCQ_CORE_FLAG_ARRAY_H_
