#include "core/improved_ted.h"

namespace utcq::core {

InstanceRepr BuildInstanceRepr(const network::RoadNetwork& net,
                               const traj::TrajectoryInstance& inst) {
  InstanceRepr repr;
  repr.sv = traj::StartVertex(net, inst);
  repr.entries = traj::BuildEdgeSequence(net, inst);
  const auto full = traj::BuildTimeFlagBits(inst);
  if (full.size() > 2) {
    repr.tflag_trimmed.assign(full.begin() + 1, full.end() - 1);
  }
  repr.rds.reserve(inst.locations.size());
  for (const auto& loc : inst.locations) repr.rds.push_back(loc.rd);
  repr.p = inst.probability;
  return repr;
}

std::vector<uint8_t> UntrimTimeFlags(const std::vector<uint8_t>& trimmed,
                                     size_t entry_count) {
  std::vector<uint8_t> full;
  if (entry_count == 0) return full;
  full.reserve(entry_count);
  full.push_back(1);
  if (entry_count == 1) return full;
  full.insert(full.end(), trimmed.begin(), trimmed.end());
  full.push_back(1);
  return full;
}

std::vector<int64_t> SiarDeltas(const std::vector<traj::Timestamp>& times,
                                int64_t default_interval_s) {
  std::vector<int64_t> deltas;
  if (times.size() < 2) return deltas;
  deltas.reserve(times.size() - 1);
  for (size_t i = 1; i < times.size(); ++i) {
    deltas.push_back((times[i] - times[i - 1]) - default_interval_s);
  }
  return deltas;
}

std::vector<traj::Timestamp> SiarExpand(traj::Timestamp t0,
                                        const std::vector<int64_t>& deltas,
                                        int64_t default_interval_s) {
  std::vector<traj::Timestamp> times;
  times.reserve(deltas.size() + 1);
  times.push_back(t0);
  traj::Timestamp t = t0;
  for (const int64_t d : deltas) {
    t += default_interval_s + d;
    times.push_back(t);
  }
  return times;
}

}  // namespace utcq::core
