#ifndef UTCQ_CORE_PLAIN_QUERY_H_
#define UTCQ_CORE_PLAIN_QUERY_H_

#include <vector>

#include "network/geometry.h"
#include "network/road_network.h"
#include "traj/query_types.h"
#include "traj/types.h"

namespace utcq::core {

/// Reference query engine on the *uncompressed* corpus with exact
/// probabilities. Ground truth for correctness tests and for Fig. 11's
/// accuracy metrics (average difference, F1).
class PlainQueryEngine {
 public:
  PlainQueryEngine(const network::RoadNetwork& net,
                   const traj::UncertainCorpus& corpus)
      : net_(net), corpus_(corpus) {}

  std::vector<traj::WhereHit> Where(size_t traj_idx, traj::Timestamp t,
                                    double alpha) const;

  std::vector<traj::WhenHit> When(size_t traj_idx, network::EdgeId edge,
                                  double rd, double alpha) const;

  traj::RangeResult Range(const network::Rect& region, traj::Timestamp tq,
                          double alpha) const;

 private:
  const network::RoadNetwork& net_;
  const traj::UncertainCorpus& corpus_;
};

}  // namespace utcq::core

#endif  // UTCQ_CORE_PLAIN_QUERY_H_
