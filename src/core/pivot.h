#ifndef UTCQ_CORE_PIVOT_H_
#define UTCQ_CORE_PIVOT_H_

#include <cstdint>
#include <vector>

#include "core/improved_ted.h"

namespace utcq::core {

/// The (S, L) referential representation of one instance's E(.) against a
/// pivot [10] (Section 4.3): only factors whose symbols occur in the pivot
/// are materialized; absent symbols are dropped but still counted, so
/// `total_factors` >= factors.size().
struct PivotCom {
  std::vector<std::pair<uint32_t, uint32_t>> factors;  // (S, L)
  uint32_t total_factors = 0;
};

/// Greedy longest-match (S, L) factorization used for pivot representation.
PivotCom FactorizeAgainstPivot(const std::vector<uint32_t>& pivot,
                               const std::vector<uint32_t>& target);

/// Pivot selection for one uncertain trajectory (Section 4.3): start from
/// `seed_instance`, then repeatedly pick the instance whose representation
/// against the most recent pivot has the most factors (i.e., is farthest
/// from it), re-representing everything after each pick.
///
/// Returns the chosen pivot instance indexes (size min(num_pivots, N)).
std::vector<uint32_t> SelectPivots(
    const std::vector<std::vector<uint32_t>>& entry_seqs, int num_pivots,
    uint32_t seed_instance = 0);

/// Representations of every instance against every pivot:
/// result[i][w] = Com_E(instance w, pivot i).
std::vector<std::vector<PivotCom>> RepresentAgainstPivots(
    const std::vector<std::vector<uint32_t>>& entry_seqs,
    const std::vector<uint32_t>& pivots);

}  // namespace utcq::core

#endif  // UTCQ_CORE_PIVOT_H_
