#include "core/flag_array.h"

#include <algorithm>

namespace utcq::core {

FlagArray::FlagArray(const std::vector<uint8_t>& trimmed_bits) {
  prefix_.resize(trimmed_bits.size() + 1, 0);
  for (size_t i = 0; i < trimmed_bits.size(); ++i) {
    prefix_[i + 1] = prefix_[i] + (trimmed_bits[i] ? 1 : 0);
  }
}

uint32_t OnesInNrefPrefix(const TflagCom& com,
                          const std::vector<uint8_t>& ref_trimmed,
                          const FlagArray& omega, uint32_t q,
                          const std::vector<uint8_t>& literal) {
  switch (com.mode) {
    case TflagMode::kIdentical:
      return omega.OnesBefore(std::min<uint32_t>(q, omega.size()));
    case TflagMode::kLiteral: {
      uint32_t ones = 0;
      for (uint32_t i = 0; i < q && i < literal.size(); ++i) {
        ones += literal[i] ? 1 : 0;
      }
      return ones;
    }
    case TflagMode::kFactors:
      break;
  }

  // Formula 5's running count Z, walking factors until q falls inside one;
  // at most one factor's subsequence is then consulted partially.
  uint32_t ones = 0;
  uint32_t consumed = 0;
  for (size_t h = 0; h < com.factors.size(); ++h) {
    const TFactor& f = com.factors[h];
    if (q < consumed + f.l) {
      // q falls inside this factor's copied span: partial lookup.
      const uint32_t within = q - consumed;
      return ones + omega.OnesBefore(f.s + within) - omega.OnesBefore(f.s);
    }
    ones += omega.OnesBefore(f.s + f.l) - omega.OnesBefore(f.s);
    consumed += f.l;
    const bool last = h + 1 == com.factors.size();
    if (!last) {
      if (q == consumed) return ones;
      // Inferred mismatched bit ~ref[S+L] (Formula 5's NOT term).
      ones += ref_trimmed[f.s + f.l] ? 0 : 1;
      ++consumed;
    } else if (com.last_has_m && q > consumed) {
      ones += com.last_m ? 1 : 0;
      ++consumed;
    }
    if (q <= consumed) return ones;
  }
  return ones;
}

uint32_t GammaNref(const TflagCom& com,
                   const std::vector<uint8_t>& ref_trimmed,
                   const FlagArray& omega, uint32_t g, uint32_t entry_count,
                   const std::vector<uint8_t>& literal) {
  if (entry_count == 0) return 0;
  // original[0] is always 1.
  uint32_t gamma = 1;
  if (g == 0) return gamma;
  const uint32_t trimmed_len = entry_count >= 2 ? entry_count - 2 : 0;
  // Trimmed positions [0, min(g, trimmed_len)) are original [1, g].
  gamma += OnesInNrefPrefix(com, ref_trimmed, omega,
                            std::min(g, trimmed_len), literal);
  if (g == entry_count - 1 && entry_count >= 2) ++gamma;  // final bit = 1
  return gamma;
}

}  // namespace utcq::core
