#ifndef UTCQ_CORE_IMPROVED_TED_H_
#define UTCQ_CORE_IMPROVED_TED_H_

#include <cstdint>
#include <vector>

#include "network/road_network.h"
#include "traj/types.h"

namespace utcq::core {

/// Improved TED representation of one uncertain-trajectory instance
/// (Section 4.1): the start vertex is separated from E(.), and the time-flag
/// bit-string drops its first and last bits (they are always 1).
struct InstanceRepr {
  network::VertexId sv = network::kInvalidVertex;
  std::vector<uint32_t> entries;         // E(Tu^j_w), start vertex excluded
  std::vector<uint8_t> tflag_trimmed;    // T'(.) minus first and last bit
  std::vector<double> rds;               // D(.)
  double p = 0.0;
};

/// Builds the improved TED representation of an instance.
InstanceRepr BuildInstanceRepr(const network::RoadNetwork& net,
                               const traj::TrajectoryInstance& inst);

/// Restores the full time-flag bit-string from its trimmed form.
/// `entry_count` is |E(.)|; when it is 1 the single (shared first/last) bit
/// is 1, when 0 the result is empty.
std::vector<uint8_t> UntrimTimeFlags(const std::vector<uint8_t>& trimmed,
                                     size_t entry_count);

/// Sample Interval Adaptive Representation (SIAR) of a shared time sequence:
/// deltas[i] = (t_{i+1} - t_i) - Ts. Lossless given t0 and Ts.
std::vector<int64_t> SiarDeltas(const std::vector<traj::Timestamp>& times,
                                int64_t default_interval_s);

/// Inverse of SiarDeltas.
std::vector<traj::Timestamp> SiarExpand(traj::Timestamp t0,
                                        const std::vector<int64_t>& deltas,
                                        int64_t default_interval_s);

}  // namespace utcq::core

#endif  // UTCQ_CORE_IMPROVED_TED_H_
