#include "core/encoder.h"

#include <algorithm>

#include "common/exp_golomb.h"
#include "common/varint.h"
#include "core/fjd.h"
#include "core/improved_ted.h"
#include "core/pivot.h"
#include "core/referential.h"

namespace utcq::core {

using common::BitsFor;
using common::BitWriter;

namespace {

/// Writes the E-factor list of a non-reference (Section 4.4 widths):
/// S: ceil(log2(|E(ref)|+1)) bits (the value |E(ref)| is the case-B
/// sentinel); L-1: ceil(log2(|E(ref)|)) bits; M: entry_bits. M presence on
/// the final factor is implied by the decoded length.
void EncodeEFactors(BitWriter& w, const std::vector<EFactor>& factors,
                    uint32_t ref_e_len, uint32_t target_e_len, int entry_bits,
                    NrefFactorLayout* layout) {
  const int s_bits = BitsFor(ref_e_len);
  const int l_bits = BitsFor(ref_e_len > 0 ? ref_e_len - 1 : 0);
  uint32_t decoded = 0;
  for (const EFactor& f : factors) {
    if (layout != nullptr) {
      layout->factor_entry_start.push_back(decoded);
      layout->factor_bit_offset.push_back(w.size_bits());
    }
    if (f.case_b) {
      w.PutBits(ref_e_len, s_bits);
      w.PutBits(*f.m, entry_bits);
      ++decoded;
      continue;
    }
    w.PutBits(f.s, s_bits);
    w.PutBits(f.l - 1, l_bits);
    decoded += f.l;
    if (f.m.has_value()) {
      w.PutBits(*f.m, entry_bits);
      ++decoded;
    }
  }
  (void)target_e_len;
}

void EncodeTflagCom(BitWriter& w, const TflagCom& com,
                    const std::vector<uint8_t>& target_trimmed,
                    uint32_t ref_trimmed_len) {
  w.PutBits(static_cast<uint64_t>(com.mode), 2);
  switch (com.mode) {
    case TflagMode::kIdentical:
      return;
    case TflagMode::kLiteral:
      for (const uint8_t b : target_trimmed) w.PutBit(b != 0);
      return;
    case TflagMode::kFactors:
      break;
  }
  const int s_bits =
      BitsFor(ref_trimmed_len > 0 ? ref_trimmed_len - 1 : 0);
  const int l_bits = BitsFor(ref_trimmed_len);
  common::PutVarint(w, com.factors.size());
  for (const TFactor& f : com.factors) {
    w.PutBits(f.s, s_bits);
    w.PutBits(f.l, l_bits);
  }
  if (com.last_has_m) w.PutBit(com.last_m != 0);
}

}  // namespace

CompressedCorpus UtcqCompressor::Begin() const {
  CompressedCorpus out;
  out.params_ = params_;
  out.entry_bits_ = BitsFor(std::max<uint32_t>(net_.max_out_degree(), 1));
  out.d_codec_ = common::PddpCodec(params_.eta_d);
  out.p_codec_ = common::PddpCodec(params_.eta_p);
  return out;
}

CompressedCorpus UtcqCompressor::Compress(
    const traj::UncertainCorpus& corpus,
    std::vector<std::vector<NrefFactorLayout>>* layouts) const {
  CompressedCorpus out = Begin();
  if (layouts != nullptr) layouts->clear();
  for (const traj::UncertainTrajectory& tu : corpus) {
    std::vector<NrefFactorLayout> traj_layouts;
    AppendTrajectory(tu, &out, layouts != nullptr ? &traj_layouts : nullptr);
    if (layouts != nullptr) layouts->push_back(std::move(traj_layouts));
  }
  return out;
}

void UtcqCompressor::AppendTrajectory(
    const traj::UncertainTrajectory& tu, CompressedCorpus* corpus_out,
    std::vector<NrefFactorLayout>* layout) const {
  CompressedCorpus& out = *corpus_out;
  common::MemoryTracker mem;
  auto quantize_d = [&](double v) { return out.d_codec_.Quantize(v); };

  {
    const size_t n_inst = tu.instances.size();

    // --- improved TED representations (processed one trajectory at a time,
    // which is why UTCQ's working set stays small) ---
    std::vector<InstanceRepr> reprs;
    reprs.reserve(n_inst);
    std::vector<std::vector<uint32_t>> entry_seqs;
    entry_seqs.reserve(n_inst);
    size_t traj_mem = 0;
    for (const auto& inst : tu.instances) {
      reprs.push_back(BuildInstanceRepr(net_, inst));
      entry_seqs.push_back(reprs.back().entries);
      traj_mem += reprs.back().entries.size() * 8 +
                  reprs.back().tflag_trimmed.size() +
                  reprs.back().rds.size() * 8;
    }

    // --- pivots, FJD score matrix, Algorithm 1 ---
    ReferencePlan plan;
    if (n_inst <= 1 || params_.disable_referential) {
      plan.ref_of.assign(n_inst, -1);
      for (uint32_t w = 0; w < n_inst; ++w) plan.references.push_back(w);
    } else {
      const auto pivots =
          SelectPivots(entry_seqs, params_.num_pivots, /*seed_instance=*/0);
      const auto pivot_reprs = RepresentAgainstPivots(entry_seqs, pivots);
      std::vector<double> probs(n_inst);
      std::vector<uint32_t> svs(n_inst);
      for (size_t w = 0; w < n_inst; ++w) {
        probs[w] = reprs[w].p;
        svs[w] = reprs[w].sv;
      }
      size_t pivot_mem = 0;
      for (const auto& per_pivot : pivot_reprs) {
        for (const auto& com : per_pivot) pivot_mem += com.factors.size() * 8;
      }
      traj_mem += pivot_mem + n_inst * n_inst * 8;  // + score matrix
      const auto sm = BuildScoreMatrix(pivot_reprs, probs, svs);
      plan = SelectReferences(sm);
    }
    // Canonicalize: references in original instance order, so the role
    // bitmap below determines reference positions without explicit ids.
    {
      std::vector<uint32_t> sorted = plan.references;
      std::sort(sorted.begin(), sorted.end());
      std::vector<int32_t> new_pos(n_inst, -1);
      for (uint32_t r = 0; r < sorted.size(); ++r) {
        new_pos[sorted[r]] = static_cast<int32_t>(r);
      }
      for (uint32_t w = 0; w < n_inst; ++w) {
        if (plan.ref_of[w] >= 0) {
          plan.ref_of[w] = new_pos[plan.references[plan.ref_of[w]]];
        }
      }
      plan.references = std::move(sorted);
    }
    common::ScopedMemory scope(&mem, traj_mem);

    TrajMeta meta;
    meta.n_points = static_cast<uint32_t>(tu.times.size());
    meta.t_first = tu.times.front();
    meta.t_last = tu.times.back();
    meta.roles.assign(n_inst, {false, 0});

    // --- T: SIAR + improved Exp-Golomb ---
    meta.t_pos = out.t_stream_.size_bits();
    {
      const size_t before = out.t_stream_.size_bits();
      common::PutVarint(out.t_stream_, tu.times.size());
      out.t_stream_.PutBits(static_cast<uint64_t>(tu.times.front()), 17);
      // Sync points ride in the meta, never in the stream: the T bits are
      // byte-identical with syncs on or off, so append-built and
      // batch-built corpora stay bit-identical regardless of K.
      const uint32_t sync_k = params_.t_sync_interval;
      uint32_t entry = 0;
      for (const int64_t d :
           SiarDeltas(tu.times, params_.default_interval_s)) {
        common::PutImprovedExpGolomb(out.t_stream_, d);
        ++entry;  // this delta expanded times[entry]
        // A sync at the final entry would start a scan with no deltas
        // left; only record restart states that still have stream ahead.
        if (sync_k > 0 && entry % sync_k == 0 &&
            entry + 1 < tu.times.size()) {
          meta.t_syncs.push_back(
              {entry, tu.times[entry], out.t_stream_.size_bits()});
        }
      }
      out.compressed_bits_.t_bits += out.t_stream_.size_bits() - before;
    }

    // --- structure: instance roles (counted into E, DESIGN §2):
    // a 1-bit-per-instance reference bitmap, then for each non-reference
    // its reference's position among the (orig-ordered) references ---
    {
      const size_t before = out.structure_stream_.size_bits();
      common::PutVarint(out.structure_stream_, n_inst);
      for (uint32_t w = 0; w < n_inst; ++w) {
        out.structure_stream_.PutBit(plan.ref_of[w] < 0);
      }
      const int ref_bits = BitsFor(
          plan.references.empty() ? 0 : plan.references.size() - 1);
      for (uint32_t w = 0; w < n_inst; ++w) {
        if (plan.ref_of[w] >= 0) {
          out.structure_stream_.PutBits(
              static_cast<uint64_t>(plan.ref_of[w]), ref_bits);
        }
      }
      out.compressed_bits_.e_bits +=
          out.structure_stream_.size_bits() - before;
    }

    // --- references ---
    for (uint32_t r = 0; r < plan.references.size(); ++r) {
      const uint32_t w = plan.references[r];
      const InstanceRepr& repr = reprs[w];
      RefMeta rm;
      rm.orig_index = w;
      rm.offset = out.ref_stream_.size_bits();
      rm.e_len = static_cast<uint32_t>(repr.entries.size());

      size_t before = out.ref_stream_.size_bits();
      out.ref_stream_.PutBits(repr.sv, 32);
      common::PutVarint(out.ref_stream_, repr.entries.size());
      for (const uint32_t e : repr.entries) {
        out.ref_stream_.PutBits(e, out.entry_bits_);
      }
      out.compressed_bits_.e_bits += out.ref_stream_.size_bits() - before;

      before = out.ref_stream_.size_bits();
      for (const uint8_t b : repr.tflag_trimmed) {
        out.ref_stream_.PutBit(b != 0);
      }
      out.compressed_bits_.tflag_bits += out.ref_stream_.size_bits() - before;

      rm.d_pos = out.ref_stream_.size_bits();
      before = out.ref_stream_.size_bits();
      for (const double rd : repr.rds) {
        out.d_codec_.Encode(out.ref_stream_, rd);
      }
      out.compressed_bits_.d_bits += out.ref_stream_.size_bits() - before;

      before = out.ref_stream_.size_bits();
      out.p_codec_.Encode(out.ref_stream_, repr.p);
      out.compressed_bits_.p_bits += out.ref_stream_.size_bits() - before;
      rm.p_quantized = static_cast<float>(out.p_codec_.Quantize(repr.p));

      meta.roles[w] = {true, r};
      meta.refs.push_back(rm);
    }

    // --- non-references ---
    for (uint32_t w = 0; w < n_inst; ++w) {
      if (plan.ref_of[w] < 0) continue;
      const uint32_t ref_pos = static_cast<uint32_t>(plan.ref_of[w]);
      const InstanceRepr& ref = reprs[plan.references[ref_pos]];
      const InstanceRepr& repr = reprs[w];

      NrefMeta nm;
      nm.orig_index = w;
      nm.ref_pos = ref_pos;
      nm.offset = out.nref_stream_.size_bits();
      nm.e_len = static_cast<uint32_t>(repr.entries.size());

      NrefFactorLayout nref_layout;
      size_t before = out.nref_stream_.size_bits();
      common::PutVarint(out.nref_stream_, repr.entries.size());
      const auto e_factors = FactorizeE(ref.entries, repr.entries);
      EncodeEFactors(out.nref_stream_, e_factors,
                     static_cast<uint32_t>(ref.entries.size()), nm.e_len,
                     out.entry_bits_, &nref_layout);
      out.compressed_bits_.e_bits += out.nref_stream_.size_bits() - before;

      before = out.nref_stream_.size_bits();
      const auto t_com = FactorizeTflag(ref.tflag_trimmed, repr.tflag_trimmed);
      EncodeTflagCom(out.nref_stream_, t_com, repr.tflag_trimmed,
                     static_cast<uint32_t>(ref.tflag_trimmed.size()));
      out.compressed_bits_.tflag_bits +=
          out.nref_stream_.size_bits() - before;

      before = out.nref_stream_.size_bits();
      const auto d_diff = DiffD(ref.rds, repr.rds, quantize_d);
      common::PutVarint(out.nref_stream_, d_diff.size());
      const int pos_bits =
          BitsFor(meta.n_points > 0 ? meta.n_points - 1 : 0);
      for (const DFactor& f : d_diff) {
        out.nref_stream_.PutBits(f.pos, pos_bits);
        out.d_codec_.Encode(out.nref_stream_, f.rd);
      }
      out.compressed_bits_.d_bits += out.nref_stream_.size_bits() - before;

      before = out.nref_stream_.size_bits();
      out.p_codec_.Encode(out.nref_stream_, repr.p);
      out.compressed_bits_.p_bits += out.nref_stream_.size_bits() - before;
      nm.p_quantized = static_cast<float>(out.p_codec_.Quantize(repr.p));

      meta.roles[w] = {false, static_cast<uint32_t>(meta.nrefs.size())};
      meta.nrefs.push_back(nm);
      if (layout != nullptr) layout->push_back(std::move(nref_layout));
    }

    out.metas_.push_back(std::move(meta));
  }

  out.peak_memory_ = std::max(out.peak_memory_, mem.peak_bytes());
}

}  // namespace utcq::core
