#ifndef UTCQ_CORE_CORPUS_META_H_
#define UTCQ_CORE_CORPUS_META_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "traj/types.h"

namespace utcq::core {

/// UTCQ compression parameters (Table 7 defaults).
struct UtcqParams {
  double eta_d = 1.0 / 128.0;   // relative-distance error bound
  double eta_p = 1.0 / 512.0;   // probability error bound
  int num_pivots = 1;           // n_p (paper default: 1 on CD/HZ, 2 on DK)
  int64_t default_interval_s = 10;  // Ts for SIAR
  /// Ablation: encode every instance as a standalone reference (no pivot
  /// selection, no FJD, no referential factors). Isolates the contribution
  /// of the referential representation versus the improved TED + SIAR
  /// coding (DESIGN.md §5).
  bool disable_referential = false;
};

/// Bit positions of one compressed reference within the corpus streams.
struct RefMeta {
  uint32_t orig_index = 0;  // instance position within the trajectory
  uint64_t offset = 0;      // start of this reference in ref_stream
  uint32_t e_len = 0;
  uint64_t d_pos = 0;       // absolute bit position of the first D code
  float p_quantized = 0.0f;
};

/// Bit positions of one compressed non-reference.
struct NrefMeta {
  uint32_t orig_index = 0;
  uint32_t ref_pos = 0;  // position of its reference in TrajMeta::refs
  uint64_t offset = 0;   // start of this non-reference in nref_stream
  uint32_t e_len = 0;
  float p_quantized = 0.0f;
};

struct TrajMeta {
  uint64_t t_pos = 0;  // start of this trajectory's block in t_stream
  uint32_t n_points = 0;
  traj::Timestamp t_first = 0;
  traj::Timestamp t_last = 0;
  std::vector<RefMeta> refs;
  std::vector<NrefMeta> nrefs;
  /// Per original instance: (is_reference, index into refs / nrefs).
  std::vector<std::pair<bool, uint32_t>> roles;
};

/// Transient per-factor layout of one encoded non-reference E(.) block,
/// consumed by the StIU builder to compute ma.pos tuples; not persisted.
struct NrefFactorLayout {
  std::vector<uint32_t> factor_entry_start;  // decoded E index per factor
  std::vector<uint64_t> factor_bit_offset;   // absolute offset in nref_stream
};

}  // namespace utcq::core

#endif  // UTCQ_CORE_CORPUS_META_H_
