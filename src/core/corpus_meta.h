#ifndef UTCQ_CORE_CORPUS_META_H_
#define UTCQ_CORE_CORPUS_META_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "traj/types.h"

namespace utcq::core {

/// UTCQ compression parameters (Table 7 defaults).
struct UtcqParams {
  double eta_d = 1.0 / 128.0;   // relative-distance error bound
  double eta_p = 1.0 / 512.0;   // probability error bound
  int num_pivots = 1;           // n_p (paper default: 1 on CD/HZ, 2 on DK)
  int64_t default_interval_s = 10;  // Ts for SIAR
  /// Ablation: encode every instance as a standalone reference (no pivot
  /// selection, no FJD, no referential factors). Isolates the contribution
  /// of the referential representation versus the improved TED + SIAR
  /// coding (DESIGN.md §5).
  bool disable_referential = false;
  /// Sync-point interval K for the T stream (DESIGN.md §16): every K
  /// decoded entries the encoder records a restart state in
  /// TrajMeta::t_syncs so BracketTime can seek instead of scanning from
  /// the trajectory's first delta. 0 disables sync points (pre-v3
  /// archives). Not part of the kParams archive payload — persisted in
  /// the v3 sync-index section alongside the tables it describes.
  uint32_t t_sync_interval = 32;
};

/// Bit positions of one compressed reference within the corpus streams.
struct RefMeta {
  uint32_t orig_index = 0;  // instance position within the trajectory
  uint64_t offset = 0;      // start of this reference in ref_stream
  uint32_t e_len = 0;
  uint64_t d_pos = 0;       // absolute bit position of the first D code
  float p_quantized = 0.0f;
};

/// Bit positions of one compressed non-reference.
struct NrefMeta {
  uint32_t orig_index = 0;
  uint32_t ref_pos = 0;  // position of its reference in TrajMeta::refs
  uint64_t offset = 0;   // start of this non-reference in nref_stream
  uint32_t e_len = 0;
  float p_quantized = 0.0f;
};

/// One T-stream sync point (DESIGN.md §16): the decoder restart state
/// right after expanding entry `entry`. `t` is the expanded timestamp of
/// that entry (the SIAR accumulator value) and `bit` is the absolute
/// t_stream position of the next delta — exactly the shape of
/// StiuIndex::TemporalTuple, but at a fixed entry cadence instead of time
/// partitions, so a seek lands within K entries of any bracket.
struct TSync {
  uint32_t entry = 0;     // index of the last decoded entry (>= 1)
  traj::Timestamp t = 0;  // times[entry]
  uint64_t bit = 0;       // absolute bit position of delta entry+1
};

struct TrajMeta {
  uint64_t t_pos = 0;  // start of this trajectory's block in t_stream
  uint32_t n_points = 0;
  traj::Timestamp t_first = 0;
  traj::Timestamp t_last = 0;
  std::vector<RefMeta> refs;
  std::vector<NrefMeta> nrefs;
  /// Per original instance: (is_reference, index into refs / nrefs).
  std::vector<std::pair<bool, uint32_t>> roles;
  /// T-stream skip table, ascending by entry (and by bit). Empty when the
  /// corpus was built with t_sync_interval == 0 or loaded from a pre-v3
  /// archive. Persisted in the archive's sync-index section, not in
  /// kMetas (§6 append-only rule: tag-6 payload shape is frozen).
  std::vector<TSync> t_syncs;
};

/// Transient per-factor layout of one encoded non-reference E(.) block,
/// consumed by the StIU builder to compute ma.pos tuples; not persisted.
struct NrefFactorLayout {
  std::vector<uint32_t> factor_entry_start;  // decoded E index per factor
  std::vector<uint64_t> factor_bit_offset;   // absolute offset in nref_stream
};

}  // namespace utcq::core

#endif  // UTCQ_CORE_CORPUS_META_H_
