#include "core/plain_query.h"

#include "traj/interpolate.h"

namespace utcq::core {

std::vector<traj::WhereHit> PlainQueryEngine::Where(size_t traj_idx,
                                                    traj::Timestamp t,
                                                    double alpha) const {
  std::vector<traj::WhereHit> hits;
  const traj::UncertainTrajectory& tu = corpus_[traj_idx];
  for (size_t w = 0; w < tu.instances.size(); ++w) {
    const auto& inst = tu.instances[w];
    if (inst.probability < alpha) continue;
    const auto pos = traj::PositionAtTime(net_, inst, tu.times, t);
    if (pos.has_value()) {
      hits.push_back({static_cast<uint32_t>(w), inst.probability, *pos});
    }
  }
  return hits;
}

std::vector<traj::WhenHit> PlainQueryEngine::When(size_t traj_idx,
                                                  network::EdgeId edge,
                                                  double rd,
                                                  double alpha) const {
  std::vector<traj::WhenHit> hits;
  const traj::UncertainTrajectory& tu = corpus_[traj_idx];
  for (size_t w = 0; w < tu.instances.size(); ++w) {
    const auto& inst = tu.instances[w];
    if (inst.probability < alpha) continue;
    for (const traj::Timestamp t :
         traj::TimesAtPosition(net_, inst, tu.times, edge, rd)) {
      hits.push_back({static_cast<uint32_t>(w), inst.probability, t});
    }
  }
  return hits;
}

traj::RangeResult PlainQueryEngine::Range(const network::Rect& region,
                                          traj::Timestamp tq,
                                          double alpha) const {
  traj::RangeResult result;
  for (size_t j = 0; j < corpus_.size(); ++j) {
    const traj::UncertainTrajectory& tu = corpus_[j];
    double overlap_p = 0.0;
    for (const auto& inst : tu.instances) {
      const auto pos = traj::PositionAtTime(net_, inst, tu.times, tq);
      if (!pos.has_value()) continue;
      const network::Vertex xy = net_.PointOnEdge(pos->edge, pos->ndist);
      if (region.Contains(xy.x, xy.y)) overlap_p += inst.probability;
    }
    if (overlap_p >= alpha) result.push_back(static_cast<uint32_t>(j));
  }
  return result;
}

}  // namespace utcq::core
