#include "core/reference_selection.h"

#include <algorithm>
#include <queue>

namespace utcq::core {

ReferencePlan SelectReferences(const std::vector<std::vector<double>>& sm) {
  const size_t n = sm.size();
  ReferencePlan plan;
  plan.ref_of.assign(n, -1);
  if (n == 0) return plan;

  // Pre-sort all positive cells (the paper's pre-sorting optimization) and
  // pop them in decreasing score order; staleness is checked against the
  // row/column liveness masks, which realize the constraint deletions.
  struct Cell {
    double score;
    uint32_t w;
    uint32_t v;
    bool operator<(const Cell& o) const { return score < o.score; }
  };
  std::priority_queue<Cell> heap;
  for (uint32_t w = 0; w < n; ++w) {
    for (uint32_t v = 0; v < n; ++v) {
      if (w != v && sm[w][v] > 0.0) heap.push({sm[w][v], w, v});
    }
  }

  std::vector<bool> is_reference(n, false);
  std::vector<bool> is_represented(n, false);

  while (!heap.empty()) {
    const Cell cell = heap.top();
    heap.pop();
    // Constraint liveness: w may not be represented itself; v may not be a
    // reference or already represented.
    if (is_represented[cell.w]) continue;            // row w removed
    if (is_reference[cell.v] || is_represented[cell.v]) continue;
    if (!is_reference[cell.w]) {
      is_reference[cell.w] = true;  // line 6: new reference, create Rrs
      // Column w removal (line 7) is implied by is_reference[w].
    }
    is_represented[cell.v] = true;  // lines 8-9
    // Record membership: position of w in plan.references.
    auto it = std::find(plan.references.begin(), plan.references.end(), cell.w);
    uint32_t pos;
    if (it == plan.references.end()) {
      pos = static_cast<uint32_t>(plan.references.size());
      plan.references.push_back(cell.w);
    } else {
      pos = static_cast<uint32_t>(it - plan.references.begin());
    }
    plan.ref_of[cell.v] = static_cast<int32_t>(pos);
  }

  // Lines 11-13: instances that are neither references nor represented
  // become standalone references (empty Rrs).
  for (uint32_t w = 0; w < n; ++w) {
    if (!is_reference[w] && !is_represented[w]) {
      plan.references.push_back(w);
    }
  }
  return plan;
}

}  // namespace utcq::core
