#ifndef UTCQ_CORE_DECODER_H_
#define UTCQ_CORE_DECODER_H_

#include <optional>
#include <vector>

#include "core/corpus_view.h"
#include "traj/decoded.h"
#include "traj/interpolate.h"
#include "traj/types.h"

namespace utcq::core {

/// A decoded instance in improved-TED form.
struct DecodedInstance {
  network::VertexId sv = network::kInvalidVertex;
  std::vector<uint32_t> entries;
  std::vector<uint8_t> tflag_trimmed;
  std::vector<double> rds;
  double p = 0.0;
};

/// Decode paths over a CorpusView: full per-instance decoding for
/// round-trip tests, and the partial entry points the query processor uses
/// (time bracketing from a temporal tuple, reference-then-non-reference
/// expansion). The view is held by value — a decoder works identically over
/// a live CompressedCorpus (which converts implicitly) and over a corpus
/// reopened from an archive file; the bytes' owner must outlive the decoder.
class UtcqDecoder {
 public:
  UtcqDecoder(const network::RoadNetwork& net, CorpusView cc)
      : net_(net), cc_(cc) {}

  /// Decodes the full shared time sequence of trajectory `j`.
  std::vector<traj::Timestamp> DecodeTimes(size_t j) const;

  /// DecodeTimes into a caller-owned buffer (cleared first). Decode-heavy
  /// loops reuse one buffer across trajectories so the per-call allocation
  /// disappears once its capacity has grown to the corpus maximum.
  /// Returns the number of stream bits consumed (0 when the stream was
  /// rejected as corrupt) — the unit the partial-decode counters report.
  uint64_t DecodeTimesInto(size_t j, std::vector<traj::Timestamp>* out) const;

  /// Per-call seek accounting for the sync-point entry points below.
  struct SeekStats {
    uint64_t bits_read = 0;   // stream bits this call consumed
    uint32_t sync_seeks = 0;  // starts upgraded through TrajMeta::t_syncs
  };

  /// Partial T decompression: starting from a temporal-index tuple
  /// (t_no, t_start, t_pos), finds i with t_i <= t <= t_{i+1}. Returns
  /// (i, t_i, t_{i+1}); nullopt when t falls outside the remaining span.
  ///
  /// When the trajectory carries a sync table (format v3), the scan start
  /// is upgraded to the latest sync point with entry > t_no and t strictly
  /// below the query time, so the walk reads at most ~K deltas instead of
  /// everything after the temporal tuple. The strict `sync.t < t`
  /// comparison is load-bearing: on a query time exactly equal to a sample
  /// time the full scan brackets at the *previous* entry, and a seek
  /// landing on the equal sample would skip it (the §16 boundary
  /// contract, pinned by decoder_test).
  struct TimeBracket {
    size_t index;
    traj::Timestamp t0;
    traj::Timestamp t1;
  };
  std::optional<TimeBracket> BracketTime(size_t j, traj::Timestamp t,
                                         uint32_t t_no,
                                         traj::Timestamp t_start,
                                         uint64_t t_pos,
                                         SeekStats* seek = nullptr) const;

  /// Decodes times[first .. last] (inclusive; clamped to the trajectory's
  /// n_points) into `out` (cleared, capacity kept), seeking through the
  /// sync table to the latest sync at or before `first` instead of
  /// expanding from the block start. Allocation-free beyond `out`'s
  /// growth; deltas route through the active strategy kernels. Returns
  /// the stream bits consumed; on a corrupt stream `out` is left empty.
  uint64_t DecodeRangeInto(size_t j, uint32_t first, uint32_t last,
                           std::vector<traj::Timestamp>* out,
                           SeekStats* seek = nullptr) const;

  /// BracketTime over an already-expanded time sequence: same scan, same
  /// results, no bitstream walk. `times` must be trajectory j's full
  /// DecodeTimes output (n_points entries) for the brackets to agree.
  static std::optional<TimeBracket> BracketInTimes(
      const std::vector<traj::Timestamp>& times, uint32_t n_points,
      traj::Timestamp t, uint32_t t_no, traj::Timestamp t_start);

  DecodedInstance DecodeReference(size_t j, uint32_t ref_idx) const;
  DecodedInstance DecodeNonReference(size_t j, uint32_t nref_idx,
                                     const DecodedInstance& ref) const;

  /// Scratch-buffer variants of the two instance decoders: `d`'s vectors
  /// are cleared (capacity kept) and refilled, so a loop that decodes many
  /// instances through one DecodedInstance stops paying an allocation per
  /// instance. Results are identical to the by-value overloads. Both
  /// return the stream bits consumed (0 on a rejected corrupt stream),
  /// feeding the partial-decode byte accounting.
  uint64_t DecodeReferenceInto(size_t j, uint32_t ref_idx,
                               DecodedInstance* d) const;
  uint64_t DecodeNonReferenceInto(size_t j, uint32_t nref_idx,
                                  const DecodedInstance& ref,
                                  DecodedInstance* d) const;

  /// Decodes the instance at original position `w` of trajectory `j`
  /// (resolving its reference first when needed).
  DecodedInstance DecodeByOriginal(size_t j, uint32_t w) const;

  /// Rebuilds a TrajectoryInstance (path + locations) from a decoded form.
  std::optional<traj::TrajectoryInstance> ToInstance(
      const DecodedInstance& d) const;

  /// Decodes trajectory `j` in full — shared times plus every reference and
  /// non-reference expanded to an instance — into the alpha-independent
  /// handle the serving layer caches (slot layout documented on
  /// traj::DecodedTraj).
  traj::DecodedTraj DecodeTraj(size_t j) const;

  /// Full corpus decompression (round-trip tests, ablation benches).
  traj::UncertainCorpus DecompressAll() const;

  const CorpusView& view() const { return cc_; }

 private:
  const network::RoadNetwork& net_;
  CorpusView cc_;
};

}  // namespace utcq::core

#endif  // UTCQ_CORE_DECODER_H_
