#ifndef UTCQ_CORE_DECODER_H_
#define UTCQ_CORE_DECODER_H_

#include <optional>
#include <vector>

#include "core/corpus_view.h"
#include "traj/decoded.h"
#include "traj/interpolate.h"
#include "traj/types.h"

namespace utcq::core {

/// A decoded instance in improved-TED form.
struct DecodedInstance {
  network::VertexId sv = network::kInvalidVertex;
  std::vector<uint32_t> entries;
  std::vector<uint8_t> tflag_trimmed;
  std::vector<double> rds;
  double p = 0.0;
};

/// Decode paths over a CorpusView: full per-instance decoding for
/// round-trip tests, and the partial entry points the query processor uses
/// (time bracketing from a temporal tuple, reference-then-non-reference
/// expansion). The view is held by value — a decoder works identically over
/// a live CompressedCorpus (which converts implicitly) and over a corpus
/// reopened from an archive file; the bytes' owner must outlive the decoder.
class UtcqDecoder {
 public:
  UtcqDecoder(const network::RoadNetwork& net, CorpusView cc)
      : net_(net), cc_(cc) {}

  /// Decodes the full shared time sequence of trajectory `j`.
  std::vector<traj::Timestamp> DecodeTimes(size_t j) const;

  /// DecodeTimes into a caller-owned buffer (cleared first). Decode-heavy
  /// loops reuse one buffer across trajectories so the per-call allocation
  /// disappears once its capacity has grown to the corpus maximum.
  void DecodeTimesInto(size_t j, std::vector<traj::Timestamp>* out) const;

  /// Partial T decompression: starting from a temporal-index tuple
  /// (t_no, t_start, t_pos), finds i with t_i <= t <= t_{i+1}. Returns
  /// (i, t_i, t_{i+1}); nullopt when t falls outside the remaining span.
  struct TimeBracket {
    size_t index;
    traj::Timestamp t0;
    traj::Timestamp t1;
  };
  std::optional<TimeBracket> BracketTime(size_t j, traj::Timestamp t,
                                         uint32_t t_no,
                                         traj::Timestamp t_start,
                                         uint64_t t_pos) const;

  /// BracketTime over an already-expanded time sequence: same scan, same
  /// results, no bitstream walk. `times` must be trajectory j's full
  /// DecodeTimes output (n_points entries) for the brackets to agree.
  static std::optional<TimeBracket> BracketInTimes(
      const std::vector<traj::Timestamp>& times, uint32_t n_points,
      traj::Timestamp t, uint32_t t_no, traj::Timestamp t_start);

  DecodedInstance DecodeReference(size_t j, uint32_t ref_idx) const;
  DecodedInstance DecodeNonReference(size_t j, uint32_t nref_idx,
                                     const DecodedInstance& ref) const;

  /// Scratch-buffer variants of the two instance decoders: `d`'s vectors
  /// are cleared (capacity kept) and refilled, so a loop that decodes many
  /// instances through one DecodedInstance stops paying an allocation per
  /// instance. Results are identical to the by-value overloads.
  void DecodeReferenceInto(size_t j, uint32_t ref_idx,
                           DecodedInstance* d) const;
  void DecodeNonReferenceInto(size_t j, uint32_t nref_idx,
                              const DecodedInstance& ref,
                              DecodedInstance* d) const;

  /// Decodes the instance at original position `w` of trajectory `j`
  /// (resolving its reference first when needed).
  DecodedInstance DecodeByOriginal(size_t j, uint32_t w) const;

  /// Rebuilds a TrajectoryInstance (path + locations) from a decoded form.
  std::optional<traj::TrajectoryInstance> ToInstance(
      const DecodedInstance& d) const;

  /// Decodes trajectory `j` in full — shared times plus every reference and
  /// non-reference expanded to an instance — into the alpha-independent
  /// handle the serving layer caches (slot layout documented on
  /// traj::DecodedTraj).
  traj::DecodedTraj DecodeTraj(size_t j) const;

  /// Full corpus decompression (round-trip tests, ablation benches).
  traj::UncertainCorpus DecompressAll() const;

  const CorpusView& view() const { return cc_; }

 private:
  const network::RoadNetwork& net_;
  CorpusView cc_;
};

}  // namespace utcq::core

#endif  // UTCQ_CORE_DECODER_H_
