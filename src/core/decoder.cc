#include "core/decoder.h"

#include <algorithm>

#include "common/exp_golomb.h"
#include "common/varint.h"
#include "core/improved_ted.h"
#include "core/referential.h"

namespace utcq::core {

using common::BitReader;
using common::BitsFor;

std::vector<traj::Timestamp> UtcqDecoder::DecodeTimes(size_t j) const {
  const TrajMeta& meta = cc_.meta(j);
  BitReader r = cc_.t_reader();
  r.Seek(meta.t_pos);
  const uint64_t n = common::GetVarint(r);
  const auto t0 = static_cast<traj::Timestamp>(r.GetBits(17));
  // Streams may come from an untrusted archive: every delta costs at least
  // one bit, so a count beyond the remaining bits is corrupt, not large.
  if (n > 0 && n - 1 > r.remaining()) return {};
  std::vector<int64_t> deltas;
  deltas.reserve(n > 0 ? n - 1 : 0);
  for (uint64_t i = 1; i < n; ++i) {
    deltas.push_back(common::GetImprovedExpGolomb(r));
    if (r.overflow()) return {};
  }
  return SiarExpand(t0, deltas, cc_.params().default_interval_s);
}

std::optional<UtcqDecoder::TimeBracket> UtcqDecoder::BracketTime(
    size_t j, traj::Timestamp t, uint32_t t_no, traj::Timestamp t_start,
    uint64_t t_pos) const {
  const TrajMeta& meta = cc_.meta(j);
  if (t < t_start || meta.n_points == 0) return std::nullopt;
  if (t_no + 1 >= meta.n_points) {
    return t == t_start ? std::optional<TimeBracket>(
                              TimeBracket{t_no, t_start, t_start})
                        : std::nullopt;
  }
  BitReader r = cc_.t_reader();
  r.Seek(t_pos);
  traj::Timestamp cur = t_start;
  for (uint32_t i = t_no; i + 1 < meta.n_points; ++i) {
    const int64_t delta = common::GetImprovedExpGolomb(r);
    const traj::Timestamp next =
        cur + cc_.params().default_interval_s + delta;
    if (t <= next) return TimeBracket{i, cur, next};
    cur = next;
  }
  return std::nullopt;  // t beyond the last timestamp
}

std::optional<UtcqDecoder::TimeBracket> UtcqDecoder::BracketInTimes(
    const std::vector<traj::Timestamp>& times, uint32_t n_points,
    traj::Timestamp t, uint32_t t_no, traj::Timestamp t_start) {
  if (t < t_start || n_points == 0) return std::nullopt;
  if (t_no + 1 >= n_points) {
    return t == t_start ? std::optional<TimeBracket>(
                              TimeBracket{t_no, t_start, t_start})
                        : std::nullopt;
  }
  // Mirror BracketTime's forward scan exactly (including its behaviour over
  // a non-monotone sequence) so cached and live brackets never diverge.
  for (uint32_t i = t_no; i + 1 < n_points && i + 1 < times.size(); ++i) {
    if (t <= times[i + 1]) return TimeBracket{i, times[i], times[i + 1]};
  }
  return std::nullopt;
}

DecodedInstance UtcqDecoder::DecodeReference(size_t j, uint32_t ref_idx) const {
  const TrajMeta& meta = cc_.meta(j);
  const RefMeta& rm = meta.refs[ref_idx];
  DecodedInstance d;
  BitReader r = cc_.ref_reader();
  r.Seek(rm.offset);
  d.sv = static_cast<network::VertexId>(r.GetBits(32));
  const uint64_t e_len = common::GetVarint(r);
  // Untrusted-stream guard: each entry costs >= 1 bit (entry_bits >= 1).
  if (e_len > r.remaining()) return d;
  d.entries.resize(e_len);
  for (auto& e : d.entries) {
    e = static_cast<uint32_t>(r.GetBits(cc_.entry_bits()));
  }
  const size_t trimmed = e_len >= 2 ? e_len - 2 : 0;
  d.tflag_trimmed.resize(trimmed);
  for (auto& b : d.tflag_trimmed) b = r.GetBit() ? 1 : 0;
  d.rds.resize(meta.n_points);
  for (auto& rd : d.rds) rd = cc_.d_codec().Decode(r);
  d.p = cc_.p_codec().Decode(r);
  return d;
}

DecodedInstance UtcqDecoder::DecodeNonReference(
    size_t j, uint32_t nref_idx, const DecodedInstance& ref) const {
  const TrajMeta& meta = cc_.meta(j);
  const NrefMeta& nm = meta.nrefs[nref_idx];
  DecodedInstance d;
  d.sv = ref.sv;  // SV(Nref) is omitted: identical to the reference's

  BitReader r = cc_.nref_reader();
  r.Seek(nm.offset);

  // --- E factors ---
  // Factor operands come straight off a possibly untrusted stream, so every
  // copy range is validated against the reference and the loop stops on
  // reader overflow (a crafted length can then truncate the result, never
  // read out of bounds or spin).
  const uint64_t e_len = common::GetVarint(r);
  const uint32_t ref_e_len = static_cast<uint32_t>(ref.entries.size());
  const int s_bits = BitsFor(ref_e_len);
  const int l_bits = BitsFor(ref_e_len > 0 ? ref_e_len - 1 : 0);
  d.entries.reserve(std::min<uint64_t>(e_len, r.remaining()));
  while (d.entries.size() < e_len && !r.overflow()) {
    const uint32_t s = static_cast<uint32_t>(r.GetBits(s_bits));
    if (s == ref_e_len) {  // case B
      d.entries.push_back(static_cast<uint32_t>(r.GetBits(cc_.entry_bits())));
      continue;
    }
    if (s > ref_e_len) break;  // corrupt factor start
    const uint32_t l = static_cast<uint32_t>(r.GetBits(l_bits)) + 1;
    if (l > ref_e_len - s) break;  // corrupt copy length
    d.entries.insert(d.entries.end(), ref.entries.begin() + s,
                     ref.entries.begin() + s + l);
    if (d.entries.size() < e_len) {
      d.entries.push_back(static_cast<uint32_t>(r.GetBits(cc_.entry_bits())));
    }
  }

  // --- T' ---
  // Sized from the entries actually materialized, not the raw e_len: a
  // crafted length field whose E block the loop above cut short must not
  // become a giant tflag allocation (each literal bit below costs one
  // stream bit, but resize/reserve would pay up front).
  const size_t trimmed_len =
      d.entries.size() >= 2 ? d.entries.size() - 2 : 0;
  const auto mode = static_cast<TflagMode>(r.GetBits(2));
  switch (mode) {
    case TflagMode::kIdentical:
      d.tflag_trimmed = ref.tflag_trimmed;
      break;
    case TflagMode::kLiteral:
      d.tflag_trimmed.resize(trimmed_len);
      for (auto& b : d.tflag_trimmed) b = r.GetBit() ? 1 : 0;
      break;
    case TflagMode::kFactors: {
      const uint32_t rtl = static_cast<uint32_t>(ref.tflag_trimmed.size());
      const int ts_bits = BitsFor(rtl > 0 ? rtl - 1 : 0);
      const int tl_bits = BitsFor(rtl);
      const uint64_t h = common::GetVarint(r);
      // Untrusted-stream guards mirroring the E-factor loop above.
      if (h > r.remaining() + trimmed_len + 1) break;
      d.tflag_trimmed.reserve(trimmed_len);
      for (uint64_t k = 0; k < h && !r.overflow(); ++k) {
        const uint32_t s = static_cast<uint32_t>(r.GetBits(ts_bits));
        const uint32_t l = static_cast<uint32_t>(r.GetBits(tl_bits));
        if (s > rtl || l > rtl - s) break;  // corrupt factor
        d.tflag_trimmed.insert(d.tflag_trimmed.end(),
                               ref.tflag_trimmed.begin() + s,
                               ref.tflag_trimmed.begin() + s + l);
        if (k + 1 < h) {
          if (s + l >= rtl) break;  // inferred mismatch needs ref[s + l]
          // Inferred mismatch: NOT ref[s + l].
          d.tflag_trimmed.push_back(ref.tflag_trimmed[s + l] ? 0 : 1);
        }
      }
      if (d.tflag_trimmed.size() < trimmed_len) {
        d.tflag_trimmed.push_back(r.GetBit() ? 1 : 0);  // explicit final M
      }
      break;
    }
  }

  // --- D diffs ---
  const uint64_t h_d = common::GetVarint(r);
  if (h_d > r.remaining()) return d;  // each diff costs >= 1 bit
  const int pos_bits = BitsFor(meta.n_points > 0 ? meta.n_points - 1 : 0);
  d.rds = ref.rds;
  for (uint64_t k = 0; k < h_d && !r.overflow(); ++k) {
    const uint32_t pos = static_cast<uint32_t>(r.GetBits(pos_bits));
    const double rd = cc_.d_codec().Decode(r);
    if (pos < d.rds.size()) d.rds[pos] = rd;
  }

  d.p = cc_.p_codec().Decode(r);
  return d;
}

DecodedInstance UtcqDecoder::DecodeByOriginal(size_t j, uint32_t w) const {
  const TrajMeta& meta = cc_.meta(j);
  const auto [is_ref, idx] = meta.roles[w];
  if (is_ref) return DecodeReference(j, idx);
  const DecodedInstance ref =
      DecodeReference(j, meta.nrefs[idx].ref_pos);
  return DecodeNonReference(j, idx, ref);
}

std::optional<traj::TrajectoryInstance> UtcqDecoder::ToInstance(
    const DecodedInstance& d) const {
  const auto full = UntrimTimeFlags(d.tflag_trimmed, d.entries.size());
  return traj::ReconstructInstance(net_, d.sv, d.entries, full, d.rds, d.p);
}

traj::DecodedTraj UtcqDecoder::DecodeTraj(size_t j) const {
  const TrajMeta& meta = cc_.meta(j);
  traj::DecodedTraj dt;
  dt.times = DecodeTimes(j);
  dt.ref_insts.resize(meta.refs.size());
  dt.nref_insts.resize(meta.nrefs.size());
  // References are kept in decoded (improved-TED) form for the duration of
  // the walk: every non-reference expands against its reference's entries,
  // not against the reconstructed instance.
  std::vector<DecodedInstance> refs(meta.refs.size());
  for (uint32_t r = 0; r < meta.refs.size(); ++r) {
    refs[r] = DecodeReference(j, r);
    dt.ref_insts[r] = ToInstance(refs[r]);
  }
  for (uint32_t k = 0; k < meta.nrefs.size(); ++k) {
    const DecodedInstance d =
        DecodeNonReference(j, k, refs[meta.nrefs[k].ref_pos]);
    dt.nref_insts[k] = ToInstance(d);
  }
  return dt;
}

traj::UncertainCorpus UtcqDecoder::DecompressAll() const {
  traj::UncertainCorpus corpus;
  corpus.reserve(cc_.num_trajectories());
  for (size_t j = 0; j < cc_.num_trajectories(); ++j) {
    const TrajMeta& meta = cc_.meta(j);
    traj::UncertainTrajectory tu;
    tu.id = j;
    tu.times = DecodeTimes(j);
    tu.instances.resize(meta.roles.size());
    // Decode references once, then expand their non-references.
    std::vector<DecodedInstance> refs(meta.refs.size());
    for (uint32_t r = 0; r < meta.refs.size(); ++r) {
      refs[r] = DecodeReference(j, r);
      const auto inst = ToInstance(refs[r]);
      if (inst.has_value()) {
        tu.instances[meta.refs[r].orig_index] = *inst;
      }
    }
    for (uint32_t k = 0; k < meta.nrefs.size(); ++k) {
      const DecodedInstance d =
          DecodeNonReference(j, k, refs[meta.nrefs[k].ref_pos]);
      const auto inst = ToInstance(d);
      if (inst.has_value()) {
        tu.instances[meta.nrefs[k].orig_index] = *inst;
      }
    }
    corpus.push_back(std::move(tu));
  }
  return corpus;
}

}  // namespace utcq::core
