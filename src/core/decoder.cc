#include "core/decoder.h"

#include <algorithm>
#include <iterator>

#include "common/exp_golomb.h"
#include "common/varint.h"
#include "core/improved_ted.h"
#include "core/referential.h"
#include "strategies/strategies.h"

namespace utcq::core {

using common::BitReader;
using common::BitsFor;

std::vector<traj::Timestamp> UtcqDecoder::DecodeTimes(size_t j) const {
  std::vector<traj::Timestamp> times;
  DecodeTimesInto(j, &times);
  return times;
}

uint64_t UtcqDecoder::DecodeTimesInto(
    size_t j, std::vector<traj::Timestamp>* out) const {
  out->clear();
  const TrajMeta& meta = cc_.meta(j);
  BitReader r = cc_.t_reader();
  r.Seek(meta.t_pos);
  const strategies::Kernels& ks = strategies::Active();
  const uint64_t n = common::GetVarint(r);
  const auto t0 = static_cast<traj::Timestamp>(ks.get_bits(r, 17));
  // Streams may come from an untrusted archive: every delta costs at least
  // one bit, so a count beyond the remaining bits is corrupt, not large.
  if (n > 0 && n - 1 > r.remaining()) return 0;
  // SIAR expansion fused into the decode loop: accumulating each timestamp
  // as its delta comes off the stream skips the intermediate delta vector
  // an explicit SiarExpand call would allocate per trajectory.
  out->reserve(std::max<uint64_t>(n, 1));
  out->push_back(t0);  // SiarExpand emitted t0 even for an empty delta list
  traj::Timestamp t = t0;
  const int64_t interval = cc_.params().default_interval_s;
  // Deltas come off the stream through the batched kernel, a chunk per
  // call; a short chunk means overflow latched mid-stream, which discards
  // the whole sequence exactly as the per-symbol loop did.
  int64_t deltas[128];
  uint64_t left = n > 0 ? n - 1 : 0;
  while (left > 0) {
    const size_t chunk =
        static_cast<size_t>(std::min<uint64_t>(left, std::size(deltas)));
    const size_t got = ks.decode_ieg(r, deltas, chunk);
    for (size_t i = 0; i < got; ++i) {
      t += interval + deltas[i];
      out->push_back(t);
    }
    if (got < chunk) {
      out->clear();
      return 0;
    }
    left -= chunk;
  }
  return r.position() - meta.t_pos;
}

std::optional<UtcqDecoder::TimeBracket> UtcqDecoder::BracketTime(
    size_t j, traj::Timestamp t, uint32_t t_no, traj::Timestamp t_start,
    uint64_t t_pos, SeekStats* seek) const {
  const TrajMeta& meta = cc_.meta(j);
  if (t < t_start || meta.n_points == 0) return std::nullopt;
  if (t_no + 1 >= meta.n_points) {
    return t == t_start ? std::optional<TimeBracket>(
                              TimeBracket{t_no, t_start, t_start})
                        : std::nullopt;
  }
  BitReader r = cc_.t_reader();
  // Upgrade the scan start through the skip table: the latest sync with
  // entry > t_no and t strictly below the query time. Strictness keeps the
  // seek path identical to the full scan on boundary queries (t exactly
  // equal to a sample time brackets at the previous entry — see the §16
  // contract on the declaration); the bounds guards make a crafted table
  // degrade to the unseeked scan instead of reading out of range.
  for (auto it = meta.t_syncs.rbegin(); it != meta.t_syncs.rend(); ++it) {
    if (it->entry > t_no && it->entry + 1 < meta.n_points && it->t < t &&
        it->bit <= r.size_bits()) {
      t_no = it->entry;
      t_start = it->t;
      t_pos = it->bit;
      if (seek != nullptr) ++seek->sync_seeks;
      break;
    }
  }
  r.Seek(t_pos);
  const strategies::Kernels& ks = strategies::Active();
  traj::Timestamp cur = t_start;
  for (uint32_t i = t_no; i + 1 < meta.n_points; ++i) {
    const int64_t delta = common::GetImprovedExpGolomb(r, ks);
    const traj::Timestamp next =
        cur + cc_.params().default_interval_s + delta;
    if (t <= next) {
      if (seek != nullptr) seek->bits_read += r.position() - t_pos;
      return TimeBracket{i, cur, next};
    }
    cur = next;
  }
  if (seek != nullptr) seek->bits_read += r.position() - t_pos;
  return std::nullopt;  // t beyond the last timestamp
}

uint64_t UtcqDecoder::DecodeRangeInto(size_t j, uint32_t first, uint32_t last,
                                      std::vector<traj::Timestamp>* out,
                                      SeekStats* seek) const {
  out->clear();
  const TrajMeta& meta = cc_.meta(j);
  if (meta.n_points == 0 || first >= meta.n_points || first > last) return 0;
  if (last >= meta.n_points) last = meta.n_points - 1;

  BitReader r = cc_.t_reader();
  const strategies::Kernels& ks = strategies::Active();

  // Start state: the latest sync at or before `first`, else the block
  // header (count varint + 17-bit t0). The guards mirror BracketTime's —
  // a crafted table degrades to the header start, never an out-of-range
  // read.
  uint32_t entry = 0;
  traj::Timestamp t = 0;
  uint64_t start_bit = meta.t_pos;
  bool from_sync = false;
  for (auto it = meta.t_syncs.rbegin(); it != meta.t_syncs.rend(); ++it) {
    if (it->entry <= first && it->entry < meta.n_points &&
        it->bit <= r.size_bits()) {
      entry = it->entry;
      t = it->t;
      start_bit = it->bit;
      from_sync = true;
      break;
    }
  }
  r.Seek(start_bit);
  if (from_sync) {
    if (seek != nullptr) ++seek->sync_seeks;
  } else {
    const uint64_t n = common::GetVarint(r);
    if (n != meta.n_points) return 0;  // stream/meta disagree: corrupt
    t = static_cast<traj::Timestamp>(ks.get_bits(r, 17));
  }

  const int64_t interval = cc_.params().default_interval_s;
  if (entry >= first) out->push_back(t);  // entry == first by construction
  int64_t deltas[128];
  while (entry < last) {
    const size_t want = static_cast<size_t>(
        std::min<uint64_t>(last - entry, std::size(deltas)));
    const size_t got = ks.decode_ieg(r, deltas, want);
    for (size_t i = 0; i < got; ++i) {
      t += interval + deltas[i];
      ++entry;
      if (entry >= first) out->push_back(t);
    }
    if (got < want) {  // overflow latched mid-stream: reject, as DecodeTimes
      out->clear();
      return 0;
    }
  }
  const uint64_t bits = r.position() - start_bit;
  if (seek != nullptr) seek->bits_read += bits;
  return bits;
}

std::optional<UtcqDecoder::TimeBracket> UtcqDecoder::BracketInTimes(
    const std::vector<traj::Timestamp>& times, uint32_t n_points,
    traj::Timestamp t, uint32_t t_no, traj::Timestamp t_start) {
  if (t < t_start || n_points == 0) return std::nullopt;
  if (t_no + 1 >= n_points) {
    return t == t_start ? std::optional<TimeBracket>(
                              TimeBracket{t_no, t_start, t_start})
                        : std::nullopt;
  }
  // Mirror BracketTime's forward scan exactly (including its behaviour over
  // a non-monotone sequence) so cached and live brackets never diverge.
  for (uint32_t i = t_no; i + 1 < n_points && i + 1 < times.size(); ++i) {
    if (t <= times[i + 1]) return TimeBracket{i, times[i], times[i + 1]};
  }
  return std::nullopt;
}

DecodedInstance UtcqDecoder::DecodeReference(size_t j, uint32_t ref_idx) const {
  DecodedInstance d;
  DecodeReferenceInto(j, ref_idx, &d);
  return d;
}

uint64_t UtcqDecoder::DecodeReferenceInto(size_t j, uint32_t ref_idx,
                                          DecodedInstance* out) const {
  const TrajMeta& meta = cc_.meta(j);
  const RefMeta& rm = meta.refs[ref_idx];
  // Reset, keeping the vectors' capacity: a decode loop that threads one
  // DecodedInstance through many instances allocates only while the
  // buffers are still growing toward the corpus maximum.
  DecodedInstance& d = *out;
  d.entries.clear();
  d.tflag_trimmed.clear();
  d.rds.clear();
  d.p = 0.0;
  BitReader r = cc_.ref_reader();
  r.Seek(rm.offset);
  const strategies::Kernels& ks = strategies::Active();
  d.sv = static_cast<network::VertexId>(ks.get_bits(r, 32));
  const uint64_t e_len = common::GetVarint(r);
  // Untrusted-stream guard: each entry costs >= 1 bit (entry_bits >= 1).
  if (e_len > r.remaining()) return 0;
  d.entries.resize(e_len);
  ks.read_fields(r, cc_.entry_bits(), d.entries.data(), d.entries.size());
  const size_t trimmed = e_len >= 2 ? e_len - 2 : 0;
  d.tflag_trimmed.resize(trimmed);
  ks.unpack_bits(r, d.tflag_trimmed.data(), d.tflag_trimmed.size());
  // Per-point PDDP decodes call the kernel directly: routing each point
  // through PddpCodec::Decode would redo the active-table load and an
  // out-of-line call per point, pure overhead at this loop's trip count.
  const common::PddpCodec& dc = cc_.d_codec();
  d.rds.resize(meta.n_points);
  ks.pddp_run(r, dc.length_field_bits(), dc.max_code_bits(), d.rds.data(),
              d.rds.size());
  const common::PddpCodec& pc = cc_.p_codec();
  d.p = ks.pddp_decode(r, pc.length_field_bits(), pc.max_code_bits());
  return r.position() - rm.offset;
}

DecodedInstance UtcqDecoder::DecodeNonReference(
    size_t j, uint32_t nref_idx, const DecodedInstance& ref) const {
  DecodedInstance d;
  DecodeNonReferenceInto(j, nref_idx, ref, &d);
  return d;
}

uint64_t UtcqDecoder::DecodeNonReferenceInto(size_t j, uint32_t nref_idx,
                                             const DecodedInstance& ref,
                                             DecodedInstance* out) const {
  const TrajMeta& meta = cc_.meta(j);
  const NrefMeta& nm = meta.nrefs[nref_idx];
  // Same capacity-preserving reset as DecodeReferenceInto; `ref` must not
  // alias `out` (the expansion reads ref's entries while writing out's).
  DecodedInstance& d = *out;
  d.entries.clear();
  d.tflag_trimmed.clear();
  d.rds.clear();
  d.p = 0.0;
  d.sv = ref.sv;  // SV(Nref) is omitted: identical to the reference's

  BitReader r = cc_.nref_reader();
  r.Seek(nm.offset);
  // Every fixed-width read below goes through the active kernel table:
  // these factor loops are the hottest part of non-reference decode, and
  // the kBitloop tier must replicate the pre-dispatch bit-at-a-time cost
  // to stay an honest benchmark baseline.
  const strategies::Kernels& ks = strategies::Active();

  // --- E factors ---
  // Factor operands come straight off a possibly untrusted stream, so every
  // copy range is validated against the reference and the loop stops on
  // reader overflow (a crafted length can then truncate the result, never
  // read out of bounds or spin).
  const uint64_t e_len = common::GetVarint(r);
  const uint32_t ref_e_len = static_cast<uint32_t>(ref.entries.size());
  const int s_bits = BitsFor(ref_e_len);
  const int l_bits = BitsFor(ref_e_len > 0 ? ref_e_len - 1 : 0);
  d.entries.reserve(std::min<uint64_t>(e_len, r.remaining()));
  while (d.entries.size() < e_len && !r.overflow()) {
    const uint32_t s = static_cast<uint32_t>(ks.get_bits(r, s_bits));
    if (s == ref_e_len) {  // case B
      d.entries.push_back(
          static_cast<uint32_t>(ks.get_bits(r, cc_.entry_bits())));
      continue;
    }
    if (s > ref_e_len) break;  // corrupt factor start
    const uint32_t l = static_cast<uint32_t>(ks.get_bits(r, l_bits)) + 1;
    if (l > ref_e_len - s) break;  // corrupt copy length
    d.entries.insert(d.entries.end(), ref.entries.begin() + s,
                     ref.entries.begin() + s + l);
    if (d.entries.size() < e_len) {
      d.entries.push_back(
          static_cast<uint32_t>(ks.get_bits(r, cc_.entry_bits())));
    }
  }

  // --- T' ---
  // Sized from the entries actually materialized, not the raw e_len: a
  // crafted length field whose E block the loop above cut short must not
  // become a giant tflag allocation (each literal bit below costs one
  // stream bit, but resize/reserve would pay up front).
  const size_t trimmed_len =
      d.entries.size() >= 2 ? d.entries.size() - 2 : 0;
  const auto mode = static_cast<TflagMode>(ks.get_bits(r, 2));
  switch (mode) {
    case TflagMode::kIdentical:
      d.tflag_trimmed = ref.tflag_trimmed;
      break;
    case TflagMode::kLiteral:
      d.tflag_trimmed.resize(trimmed_len);
      ks.unpack_bits(r, d.tflag_trimmed.data(), d.tflag_trimmed.size());
      break;
    case TflagMode::kFactors: {
      const uint32_t rtl = static_cast<uint32_t>(ref.tflag_trimmed.size());
      const int ts_bits = BitsFor(rtl > 0 ? rtl - 1 : 0);
      const int tl_bits = BitsFor(rtl);
      const uint64_t h = common::GetVarint(r);
      // Untrusted-stream guards mirroring the E-factor loop above.
      if (h > r.remaining() + trimmed_len + 1) break;
      d.tflag_trimmed.reserve(trimmed_len);
      for (uint64_t k = 0; k < h && !r.overflow(); ++k) {
        const uint32_t s = static_cast<uint32_t>(ks.get_bits(r, ts_bits));
        const uint32_t l = static_cast<uint32_t>(ks.get_bits(r, tl_bits));
        if (s > rtl || l > rtl - s) break;  // corrupt factor
        d.tflag_trimmed.insert(d.tflag_trimmed.end(),
                               ref.tflag_trimmed.begin() + s,
                               ref.tflag_trimmed.begin() + s + l);
        if (k + 1 < h) {
          if (s + l >= rtl) break;  // inferred mismatch needs ref[s + l]
          // Inferred mismatch: NOT ref[s + l].
          d.tflag_trimmed.push_back(ref.tflag_trimmed[s + l] ? 0 : 1);
        }
      }
      if (d.tflag_trimmed.size() < trimmed_len) {
        d.tflag_trimmed.push_back(ks.get_bits(r, 1) != 0 ? 1 : 0);  // final M
      }
      break;
    }
  }

  // --- D diffs ---
  const uint64_t h_d = common::GetVarint(r);
  if (h_d > r.remaining()) return 0;  // each diff costs >= 1 bit
  const int pos_bits = BitsFor(meta.n_points > 0 ? meta.n_points - 1 : 0);
  const common::PddpCodec& dc = cc_.d_codec();
  d.rds = ref.rds;
  for (uint64_t k = 0; k < h_d && !r.overflow(); ++k) {
    const uint32_t pos = static_cast<uint32_t>(ks.get_bits(r, pos_bits));
    const double rd =
        ks.pddp_decode(r, dc.length_field_bits(), dc.max_code_bits());
    if (pos < d.rds.size()) d.rds[pos] = rd;
  }

  const common::PddpCodec& pc = cc_.p_codec();
  d.p = ks.pddp_decode(r, pc.length_field_bits(), pc.max_code_bits());
  return r.position() - nm.offset;
}

DecodedInstance UtcqDecoder::DecodeByOriginal(size_t j, uint32_t w) const {
  const TrajMeta& meta = cc_.meta(j);
  const auto [is_ref, idx] = meta.roles[w];
  if (is_ref) return DecodeReference(j, idx);
  const DecodedInstance ref =
      DecodeReference(j, meta.nrefs[idx].ref_pos);
  return DecodeNonReference(j, idx, ref);
}

std::optional<traj::TrajectoryInstance> UtcqDecoder::ToInstance(
    const DecodedInstance& d) const {
  const auto full = UntrimTimeFlags(d.tflag_trimmed, d.entries.size());
  return traj::ReconstructInstance(net_, d.sv, d.entries, full, d.rds, d.p);
}

traj::DecodedTraj UtcqDecoder::DecodeTraj(size_t j) const {
  const TrajMeta& meta = cc_.meta(j);
  traj::DecodedTraj dt;
  dt.times = DecodeTimes(j);
  dt.ref_insts.resize(meta.refs.size());
  dt.nref_insts.resize(meta.nrefs.size());
  // References are kept in decoded (improved-TED) form for the duration of
  // the walk: every non-reference expands against its reference's entries,
  // not against the reconstructed instance.
  std::vector<DecodedInstance> refs(meta.refs.size());
  for (uint32_t r = 0; r < meta.refs.size(); ++r) {
    refs[r] = DecodeReference(j, r);
    dt.ref_insts[r] = ToInstance(refs[r]);
  }
  for (uint32_t k = 0; k < meta.nrefs.size(); ++k) {
    const DecodedInstance d =
        DecodeNonReference(j, k, refs[meta.nrefs[k].ref_pos]);
    dt.nref_insts[k] = ToInstance(d);
  }
  return dt;
}

traj::UncertainCorpus UtcqDecoder::DecompressAll() const {
  traj::UncertainCorpus corpus;
  corpus.reserve(cc_.num_trajectories());
  // Decoded improved-TED forms are transient here (only the reconstructed
  // instances survive), so one set of scratch buffers serves the whole
  // corpus; `refs` only ever grows, keeping each slot's capacity.
  std::vector<DecodedInstance> refs;
  DecodedInstance scratch;
  for (size_t j = 0; j < cc_.num_trajectories(); ++j) {
    const TrajMeta& meta = cc_.meta(j);
    traj::UncertainTrajectory tu;
    tu.id = j;
    tu.times = DecodeTimes(j);
    tu.instances.resize(meta.roles.size());
    // Decode references once, then expand their non-references.
    if (refs.size() < meta.refs.size()) refs.resize(meta.refs.size());
    for (uint32_t r = 0; r < meta.refs.size(); ++r) {
      DecodeReferenceInto(j, r, &refs[r]);
      const auto inst = ToInstance(refs[r]);
      if (inst.has_value()) {
        tu.instances[meta.refs[r].orig_index] = *inst;
      }
    }
    for (uint32_t k = 0; k < meta.nrefs.size(); ++k) {
      DecodeNonReferenceInto(j, k, refs[meta.nrefs[k].ref_pos], &scratch);
      const auto inst = ToInstance(scratch);
      if (inst.has_value()) {
        tu.instances[meta.nrefs[k].orig_index] = *inst;
      }
    }
    corpus.push_back(std::move(tu));
  }
  return corpus;
}

}  // namespace utcq::core
