#include "core/stiu_index.h"

#include <algorithm>
#include <unordered_map>

#include "common/exp_golomb.h"
#include "common/varint.h"
#include "core/improved_ted.h"

namespace utcq::core {

namespace {

/// Entry index in E(.) of each path edge (accounting for the 0 repeats).
std::vector<uint32_t> EntryIndexOfPathEdge(
    const traj::TrajectoryInstance& inst) {
  std::vector<uint32_t> counts(inst.path.size(), 0);
  for (const auto& loc : inst.locations) ++counts[loc.path_index];
  std::vector<uint32_t> entry_idx(inst.path.size(), 0);
  uint32_t cursor = 0;
  for (size_t i = 0; i < inst.path.size(); ++i) {
    entry_idx[i] = cursor;
    cursor += 1 + (counts[i] > 1 ? counts[i] - 1 : 0);
  }
  return entry_idx;
}

/// First path-edge index entering each region, in travel order.
std::vector<std::pair<network::RegionId, uint32_t>> FirstVisits(
    const network::GridIndex& grid, const traj::TrajectoryInstance& inst) {
  std::vector<std::pair<network::RegionId, uint32_t>> visits;
  std::unordered_map<network::RegionId, bool> seen;
  for (uint32_t i = 0; i < inst.path.size(); ++i) {
    for (const network::RegionId re : grid.RegionsOfEdge(inst.path[i])) {
      if (!seen[re]) {
        seen[re] = true;
        visits.emplace_back(re, i);
      }
    }
  }
  return visits;
}

}  // namespace

StiuIndex::StiuIndex(const network::RoadNetwork& net,
                     const network::GridIndex& grid,
                     const traj::UncertainCorpus& corpus,
                     const CorpusView& cc,
                     const std::vector<std::vector<NrefFactorLayout>>& layouts,
                     StiuParams params)
    : grid_(grid), params_(params) {
  params_.time_partition_s = std::max<int64_t>(params_.time_partition_s, 1);
  const size_t partitions =
      static_cast<size_t>((traj::kSecondsPerDay + params_.time_partition_s - 1) /
                          params_.time_partition_s);
  temporal_.resize(corpus.size());
  partition_trajs_.resize(partitions);
  region_refs_.resize(grid.num_regions());
  region_nrefs_.resize(grid.num_regions());

  for (size_t j = 0; j < corpus.size(); ++j) {
    const traj::UncertainTrajectory& tu = corpus[j];
    const TrajMeta& meta = cc.meta(j);

    // ---- temporal tuples: bit positions into the SIAR-coded T stream ----
    {
      // Skip the header (n varint + 17-bit t0) to find the first delta.
      common::BitReader r = cc.t_reader();
      r.Seek(meta.t_pos);
      common::GetVarint(r);
      r.GetBits(17);
      uint64_t pos = r.position();

      const auto deltas =
          SiarDeltas(tu.times, cc.params().default_interval_s);
      int64_t last_partition = -1;
      for (size_t i = 0; i < tu.times.size(); ++i) {
        const int64_t p = tu.times[i] / params_.time_partition_s;
        if (p != last_partition) {
          temporal_[j].push_back(
              {tu.times[i], static_cast<uint32_t>(i), pos});
          last_partition = p;
        }
        if (i < deltas.size()) {
          pos += common::ImprovedExpGolombLength(deltas[i]);
        }
      }
      const size_t first_p =
          static_cast<size_t>(tu.times.front() / params_.time_partition_s);
      const size_t last_p = std::min(
          partitions - 1,
          static_cast<size_t>(tu.times.back() / params_.time_partition_s));
      for (size_t p = first_p; p <= last_p; ++p) {
        partition_trajs_[p].push_back(static_cast<uint32_t>(j));
      }
    }

    // ---- spatial tuples ----
    // Region visit lists per instance, plus D-code bit offsets per ref.
    struct GroupAgg {
      float p_total = 0.0f;
      float p_max = 0.0f;  // over non-references only
      bool ref_passes = false;
      network::VertexId fv_id = network::kInvalidVertex;
      uint32_t fv_no = 0;
      uint32_t d_no = 0;
      uint64_t d_pos = 0;
    };
    // Aggregate per (region, ref group).
    std::unordered_map<uint64_t, GroupAgg> agg;
    auto key_of = [](network::RegionId re, uint32_t ref_pos) {
      return (static_cast<uint64_t>(re) << 20) | ref_pos;
    };

    for (uint32_t w = 0; w < tu.instances.size(); ++w) {
      const traj::TrajectoryInstance& inst = tu.instances[w];
      const auto [is_ref, idx] = meta.roles[w];
      const uint32_t ref_pos = is_ref ? idx : meta.nrefs[idx].ref_pos;
      const float p = is_ref ? meta.refs[idx].p_quantized
                             : meta.nrefs[idx].p_quantized;
      const auto entry_idx = EntryIndexOfPathEdge(inst);
      const auto visits = FirstVisits(grid, inst);

      // D-code offsets (references only): prefix bit lengths of codes.
      std::vector<uint64_t> d_offsets;
      if (is_ref) {
        d_offsets.resize(inst.locations.size() + 1, meta.refs[idx].d_pos);
        for (size_t k = 0; k < inst.locations.size(); ++k) {
          d_offsets[k + 1] =
              d_offsets[k] + cc.d_codec().CodeLength(inst.locations[k].rd);
        }
      }
      // Location ordinals per entry (gamma of the full bit-string).
      std::vector<uint32_t> gamma(inst.path.size(), 0);
      {
        uint32_t count = 0;
        size_t loc = 0;
        for (size_t i = 0; i < inst.path.size(); ++i) {
          while (loc < inst.locations.size() &&
                 inst.locations[loc].path_index == i) {
            ++count;
            ++loc;
          }
          gamma[i] = count;
        }
      }

      for (const auto& [re, path_edge] : visits) {
        GroupAgg& a = agg[key_of(re, ref_pos)];
        a.p_total += p;
        if (is_ref) {
          a.ref_passes = true;
          a.fv_no = entry_idx[path_edge];
          a.fv_id = path_edge == 0
                        ? traj::StartVertex(net, inst)
                        : net.edge(inst.path[path_edge]).from;
          a.d_no = path_edge == 0 ? 0 : gamma[path_edge - 1];
          // Bracketing D code: the last location at or before region entry.
          const uint32_t code =
              a.d_no > 0 ? a.d_no - 1 : 0;
          a.d_pos = d_offsets[std::min<size_t>(code, inst.locations.size())];
        } else {
          a.p_max = std::max(a.p_max, p);
          // Non-reference tuple.
          NrefTuple nt;
          nt.traj = static_cast<uint32_t>(j);
          nt.nref_idx = idx;
          nt.rv_no = entry_idx[path_edge];
          nt.rv_id = path_edge == 0
                         ? traj::StartVertex(net, inst)
                         : net.edge(inst.path[path_edge]).from;
          // Factor containing entry rv_no (ma.pos).
          const NrefFactorLayout& layout = layouts[j][idx];
          const auto it = std::upper_bound(layout.factor_entry_start.begin(),
                                           layout.factor_entry_start.end(),
                                           nt.rv_no);
          const size_t f =
              it == layout.factor_entry_start.begin()
                  ? 0
                  : static_cast<size_t>(it - layout.factor_entry_start.begin()) -
                        1;
          nt.ma_pos = f < layout.factor_bit_offset.size()
                          ? layout.factor_bit_offset[f]
                          : 0;
          region_nrefs_[re].push_back(nt);
        }
      }
    }

    for (const auto& [key, a] : agg) {
      RefTuple rt;
      rt.traj = static_cast<uint32_t>(j);
      rt.ref_idx = static_cast<uint32_t>(key & 0xFFFFFu);
      rt.fv_id = a.fv_id;
      rt.fv_no = a.fv_no;
      rt.d_no = a.d_no;
      rt.d_pos = a.d_pos;
      rt.p_total = a.p_total;
      rt.p_max = a.p_max;
      rt.ref_passes = a.ref_passes;
      region_refs_[static_cast<network::RegionId>(key >> 20)].push_back(rt);
    }
  }
}

StiuIndex::StiuIndex(const network::GridIndex& grid, common::ByteReader& in)
    : grid_(grid) {
  params_.cells_per_side = static_cast<uint32_t>(in.GetVarint());
  params_.time_partition_s =
      std::max<int64_t>(in.GetSignedVarint(), 1);

  const uint64_t num_trajs = in.GetVarint();
  const uint64_t num_partitions = in.GetVarint();
  const uint64_t num_regions = in.GetVarint();
  // An index only makes sense against the grid it was built over. Every
  // list below costs at least one payload byte per element, so any count
  // exceeding the remaining bytes is a corrupt length that would OOM
  // resize(); reject instead of allocating.
  const auto bad_count = [&in](uint64_t n) { return n > in.remaining(); };
  if (num_regions != grid.num_regions() || bad_count(num_trajs) ||
      bad_count(num_partitions) || !in.ok()) {
    in.Skip(in.remaining() + 1);  // latch ok() = false
    return;
  }

  temporal_.resize(num_trajs);
  for (auto& tuples : temporal_) {
    const uint64_t n = in.GetVarint();
    if (bad_count(n)) {
      in.Skip(in.remaining() + 1);
      break;
    }
    tuples.resize(n);
    traj::Timestamp prev_start = 0;
    for (auto& t : tuples) {
      t.t_start = prev_start + static_cast<traj::Timestamp>(in.GetVarint());
      prev_start = t.t_start;
      t.t_no = static_cast<uint32_t>(in.GetVarint());
      t.t_pos = in.GetVarint();
    }
  }
  partition_trajs_.resize(num_partitions);
  for (auto& trajs : partition_trajs_) {
    const uint64_t n = in.GetVarint();
    if (bad_count(n)) {
      in.Skip(in.remaining() + 1);
      break;
    }
    trajs.resize(n);
    for (auto& j : trajs) j = static_cast<uint32_t>(in.GetVarint());
  }
  region_refs_.resize(num_regions);
  for (auto& tuples : region_refs_) {
    const uint64_t n = in.GetVarint();
    if (bad_count(n)) {
      in.Skip(in.remaining() + 1);
      break;
    }
    tuples.resize(n);
    for (auto& rt : tuples) {
      rt.traj = static_cast<uint32_t>(in.GetVarint());
      rt.ref_idx = static_cast<uint32_t>(in.GetVarint());
      rt.fv_id = static_cast<network::VertexId>(in.GetU32());
      rt.fv_no = static_cast<uint32_t>(in.GetVarint());
      rt.d_no = static_cast<uint32_t>(in.GetVarint());
      rt.d_pos = in.GetVarint();
      rt.p_total = in.GetF32();
      rt.p_max = in.GetF32();
      rt.ref_passes = in.GetU8() != 0;
    }
  }
  region_nrefs_.resize(num_regions);
  for (auto& tuples : region_nrefs_) {
    const uint64_t n = in.GetVarint();
    if (bad_count(n)) {
      in.Skip(in.remaining() + 1);
      break;
    }
    tuples.resize(n);
    for (auto& nt : tuples) {
      nt.traj = static_cast<uint32_t>(in.GetVarint());
      nt.nref_idx = static_cast<uint32_t>(in.GetVarint());
      nt.rv_id = static_cast<network::VertexId>(in.GetU32());
      nt.rv_no = static_cast<uint32_t>(in.GetVarint());
      nt.ma_pos = in.GetVarint();
    }
  }
  if (!in.ok()) {
    temporal_.clear();
    partition_trajs_.clear();
    region_refs_.clear();
    region_nrefs_.clear();
  }
}

void StiuIndex::Serialize(common::ByteWriter& out) const {
  out.PutVarint(params_.cells_per_side);
  out.PutSignedVarint(params_.time_partition_s);

  out.PutVarint(temporal_.size());
  out.PutVarint(partition_trajs_.size());
  out.PutVarint(region_refs_.size());

  for (const auto& tuples : temporal_) {
    out.PutVarint(tuples.size());
    // t_start is monotone within a trajectory: delta-code it.
    traj::Timestamp prev_start = 0;
    for (const auto& t : tuples) {
      out.PutVarint(static_cast<uint64_t>(t.t_start - prev_start));
      prev_start = t.t_start;
      out.PutVarint(t.t_no);
      out.PutVarint(t.t_pos);
    }
  }
  for (const auto& trajs : partition_trajs_) {
    out.PutVarint(trajs.size());
    for (const uint32_t j : trajs) out.PutVarint(j);
  }
  for (const auto& tuples : region_refs_) {
    out.PutVarint(tuples.size());
    for (const auto& rt : tuples) {
      out.PutVarint(rt.traj);
      out.PutVarint(rt.ref_idx);
      out.PutU32(rt.fv_id);
      out.PutVarint(rt.fv_no);
      out.PutVarint(rt.d_no);
      out.PutVarint(rt.d_pos);
      out.PutF32(rt.p_total);
      out.PutF32(rt.p_max);
      out.PutU8(rt.ref_passes ? 1 : 0);
    }
  }
  for (const auto& tuples : region_nrefs_) {
    out.PutVarint(tuples.size());
    for (const auto& nt : tuples) {
      out.PutVarint(nt.traj);
      out.PutVarint(nt.nref_idx);
      out.PutU32(nt.rv_id);
      out.PutVarint(nt.rv_no);
      out.PutVarint(nt.ma_pos);
    }
  }
}

const StiuIndex::TemporalTuple& StiuIndex::TemporalTupleFor(
    size_t j, traj::Timestamp t) const {
  const auto& tuples = temporal_[j];
  // Latest tuple with t_start <= t.
  auto it = std::upper_bound(
      tuples.begin(), tuples.end(), t,
      [](traj::Timestamp v, const TemporalTuple& tup) { return v < tup.t_start; });
  if (it != tuples.begin()) --it;
  return *it;
}

const std::vector<uint32_t>& StiuIndex::TrajectoriesAt(
    traj::Timestamp t) const {
  static const std::vector<uint32_t> kEmpty;
  if (t < 0) return kEmpty;
  const size_t p = static_cast<size_t>(t / params_.time_partition_s);
  if (p >= partition_trajs_.size()) return kEmpty;
  return partition_trajs_[p];
}

size_t StiuIndex::temporal_size_bytes() const {
  size_t bytes = 0;
  for (const auto& v : temporal_) bytes += v.size() * sizeof(TemporalTuple);
  for (const auto& v : partition_trajs_) bytes += v.size() * sizeof(uint32_t);
  return bytes;
}

size_t StiuIndex::spatial_size_bytes() const {
  size_t bytes = 0;
  for (const auto& v : region_refs_) bytes += v.size() * sizeof(RefTuple);
  for (const auto& v : region_nrefs_) bytes += v.size() * sizeof(NrefTuple);
  return bytes;
}

size_t StiuIndex::SizeBytes() const {
  return sizeof(*this) + temporal_size_bytes() + spatial_size_bytes();
}

}  // namespace utcq::core
