#include "core/query.h"

#include <algorithm>
#include <array>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

namespace utcq::core {

using network::Rect;
using traj::NetworkPosition;
using traj::Timestamp;
using traj::TrajectoryInstance;

namespace {

/// A handle is only trusted when its shape matches the trajectory's meta —
/// anything else (wrong trajectory, stale cache) decodes inline instead of
/// indexing out of bounds.
const traj::DecodedTraj* UsableHandle(const TrajMeta& meta,
                                      const traj::DecodedTraj* dt) {
  if (dt == nullptr) return nullptr;
  if (dt->times.size() != meta.n_points ||
      dt->ref_insts.size() != meta.refs.size() ||
      dt->nref_insts.size() != meta.nrefs.size()) {
    return nullptr;
  }
  return dt;
}

}  // namespace

SubpathRelation ClassifySubpath(const network::RoadNetwork& net,
                                const TrajectoryInstance& inst, size_t i,
                                const Rect& re) {
  const uint32_t from = inst.locations[i].path_index;
  const uint32_t to = i + 1 < inst.locations.size()
                          ? inst.locations[i + 1].path_index
                          : from;
  // Degenerate instances (empty path, a path_index past the path, or
  // non-monotone location ordering) leave the loop below with zero
  // iterations; all_inside would then report a subpath that touches no
  // edge as kInside. Nothing travelled means nothing overlaps RE.
  if (inst.path.empty() || from >= inst.path.size() || to < from) {
    return SubpathRelation::kDisjoint;
  }
  bool all_inside = true;
  bool any_intersect = false;
  for (uint32_t k = from; k <= to && k < inst.path.size(); ++k) {
    const auto& e = net.edge(inst.path[k]);
    const auto& a = net.vertex(e.from);
    const auto& b = net.vertex(e.to);
    if (!network::SegmentInsideRect(a.x, a.y, b.x, b.y, re)) {
      all_inside = false;
    }
    if (network::SegmentIntersectsRect(a.x, a.y, b.x, b.y, re)) {
      any_intersect = true;
    }
  }
  if (all_inside) return SubpathRelation::kInside;
  if (!any_intersect) return SubpathRelation::kDisjoint;
  return SubpathRelation::kPartial;
}

std::vector<std::pair<uint32_t, TrajectoryInstance>>
UtcqQueryProcessor::DecodeQualifying(size_t j, double alpha,
                                     const traj::DecodedTraj* dt,
                                     QueryStats* stats) const {
  std::vector<std::pair<uint32_t, TrajectoryInstance>> result;
  const TrajMeta& meta = cc().meta(j);

  if (dt != nullptr) {
    // Same instances in the same refs-then-nrefs order as the decode path
    // below, served from the handle.
    for (uint32_t r = 0; r < meta.refs.size(); ++r) {
      if (meta.refs[r].p_quantized >= alpha && dt->ref_insts[r].has_value()) {
        result.emplace_back(meta.refs[r].orig_index, *dt->ref_insts[r]);
      }
    }
    for (uint32_t k = 0; k < meta.nrefs.size(); ++k) {
      const NrefMeta& nm = meta.nrefs[k];
      if (nm.p_quantized >= alpha && dt->nref_insts[k].has_value()) {
        result.emplace_back(nm.orig_index, *dt->nref_insts[k]);
      }
    }
    return result;
  }

  // Which references must be materialized: their own probability passes, or
  // one of their Rrs members' does.
  std::vector<bool> need_ref(meta.refs.size(), false);
  for (uint32_t r = 0; r < meta.refs.size(); ++r) {
    if (meta.refs[r].p_quantized >= alpha) need_ref[r] = true;
  }
  for (const NrefMeta& nm : meta.nrefs) {
    if (nm.p_quantized >= alpha) need_ref[nm.ref_pos] = true;
  }

  std::vector<DecodedInstance> refs(meta.refs.size());
  for (uint32_t r = 0; r < meta.refs.size(); ++r) {
    if (!need_ref[r]) continue;
    const uint64_t bits = decoder_.DecodeReferenceInto(j, r, &refs[r]);
    if (stats != nullptr) {
      ++stats->instances_decoded;
      stats->stream_bits_read += bits;
    }
    if (meta.refs[r].p_quantized >= alpha) {
      const auto inst = decoder_.ToInstance(refs[r]);
      if (inst.has_value()) {
        result.emplace_back(meta.refs[r].orig_index, *inst);
      }
    }
  }
  DecodedInstance scratch;
  for (uint32_t k = 0; k < meta.nrefs.size(); ++k) {
    const NrefMeta& nm = meta.nrefs[k];
    if (nm.p_quantized < alpha) continue;
    const uint64_t bits =
        decoder_.DecodeNonReferenceInto(j, k, refs[nm.ref_pos], &scratch);
    if (stats != nullptr) {
      ++stats->instances_decoded;
      stats->stream_bits_read += bits;
    }
    const auto inst = decoder_.ToInstance(scratch);
    if (inst.has_value()) result.emplace_back(nm.orig_index, *inst);
  }
  return result;
}

std::vector<traj::WhereHit> UtcqQueryProcessor::Where(
    size_t traj_idx, Timestamp t, double alpha, QueryStats* stats) const {
  return WhereImpl(traj_idx, t, alpha, nullptr, stats);
}

std::vector<traj::WhereHit> UtcqQueryProcessor::Where(
    size_t traj_idx, Timestamp t, double alpha, const traj::DecodedTraj& dt,
    QueryStats* stats) const {
  return WhereImpl(traj_idx, t, alpha, &dt, stats);
}

std::vector<traj::WhereHit> UtcqQueryProcessor::WhereImpl(
    size_t traj_idx, Timestamp t, double alpha, const traj::DecodedTraj* dt,
    QueryStats* stats) const {
  std::vector<traj::WhereHit> hits;
  if (traj_idx >= cc().num_trajectories()) return hits;  // untrusted id
  const TrajMeta& meta = cc().meta(traj_idx);
  dt = UsableHandle(meta, dt);
  if (t < meta.t_first || t > meta.t_last) return hits;

  // Partial T decompression: start at the temporal tuple for t. With a
  // handle the expanded sequence replaces the bitstream scan.
  const auto& tuple = index_.TemporalTupleFor(traj_idx, t);
  UtcqDecoder::SeekStats seek;
  const auto bracket =
      dt != nullptr
          ? UtcqDecoder::BracketInTimes(dt->times, meta.n_points, t,
                                        tuple.t_no, tuple.t_start)
          : decoder_.BracketTime(traj_idx, t, tuple.t_no, tuple.t_start,
                                 tuple.t_pos, &seek);
  if (stats != nullptr) {
    stats->stream_bits_read += seek.bits_read;
    stats->sync_seeks += seek.sync_seeks;
  }
  if (!bracket.has_value()) return hits;

  // All qualifying instances share the bracket, so their positions batch
  // through the strategy layer's multi-instance interpolation.
  const auto qualifying = DecodeQualifying(traj_idx, alpha, dt, stats);
  std::vector<const TrajectoryInstance*> insts;
  insts.reserve(qualifying.size());
  for (const auto& [w, inst] : qualifying) insts.push_back(&inst);
  const auto positions = traj::PositionsInBracket(
      net_, insts, bracket->index, bracket->t0, bracket->t1, t);
  hits.reserve(qualifying.size());
  for (size_t k = 0; k < qualifying.size(); ++k) {
    hits.push_back(
        {qualifying[k].first, qualifying[k].second.probability, positions[k]});
  }
  return hits;
}

bool UtcqQueryProcessor::MayPassEdge(size_t traj_idx,
                                     network::EdgeId edge) const {
  // Mirrors WhenImpl's group construction: only reference-group tuples in
  // the edge's regions can seed candidates, so no tuple here means the
  // groups below would come up empty.
  for (const network::RegionId re : index_.grid().RegionsOfEdge(edge)) {
    for (const auto& rt : index_.RefTuplesIn(re)) {
      if (rt.traj == traj_idx) return true;
    }
  }
  return false;
}

std::vector<traj::WhenHit> UtcqQueryProcessor::When(size_t traj_idx,
                                                    network::EdgeId edge,
                                                    double rd, double alpha,
                                                    QueryStats* stats) const {
  return WhenImpl(traj_idx, edge, rd, alpha, nullptr, stats);
}

std::vector<traj::WhenHit> UtcqQueryProcessor::When(
    size_t traj_idx, network::EdgeId edge, double rd, double alpha,
    const traj::DecodedTraj& dt, QueryStats* stats) const {
  return WhenImpl(traj_idx, edge, rd, alpha, &dt, stats);
}

std::vector<traj::WhenHit> UtcqQueryProcessor::WhenImpl(
    size_t traj_idx, network::EdgeId edge, double rd, double alpha,
    const traj::DecodedTraj* dt, QueryStats* stats) const {
  std::vector<traj::WhenHit> hits;
  if (traj_idx >= cc().num_trajectories()) return hits;  // untrusted id
  const TrajMeta& meta = cc().meta(traj_idx);
  dt = UsableHandle(meta, dt);

  // Any instance passing <edge, rd> has spatial tuples in the regions the
  // edge overlaps (grid-boundary quantization makes the point's own region
  // unreliable at cell borders, so consult the edge's region list).
  const auto& regions = index_.grid().RegionsOfEdge(edge);

  // Reference-group tuples of this trajectory near the query location,
  // merged across the edge's regions (Lemma 1 needs the max p_max). Flat
  // vectors: a trajectory rarely has more than a handful of groups.
  std::vector<StiuIndex::RefTuple> groups;
  std::vector<uint32_t> nref_candidates;
  for (const network::RegionId re : regions) {
    for (const auto& rt : index_.RefTuplesIn(re)) {
      if (rt.traj != traj_idx) continue;
      bool merged = false;
      for (auto& g : groups) {
        if (g.ref_idx == rt.ref_idx) {
          g.p_max = std::max(g.p_max, rt.p_max);
          g.ref_passes = g.ref_passes || rt.ref_passes;
          merged = true;
          break;
        }
      }
      if (!merged) groups.push_back(rt);
    }
    for (const auto& nt : index_.NrefTuplesIn(re)) {
      if (nt.traj != traj_idx) continue;
      if (std::find(nref_candidates.begin(), nref_candidates.end(),
                    nt.nref_idx) == nref_candidates.end()) {
        nref_candidates.push_back(nt.nref_idx);
      }
    }
  }
  if (groups.empty()) return hits;  // no instance of Tu^j passes the edge
  if (stats != nullptr) stats->candidates += groups.size();

  std::vector<Timestamp> times_storage;  // decoded lazily when no handle
  const std::vector<Timestamp>* times = dt != nullptr ? &dt->times : nullptr;
  auto ensure_times = [&]() -> const std::vector<Timestamp>& {
    if (times == nullptr) {
      const uint64_t bits = decoder_.DecodeTimesInto(traj_idx, &times_storage);
      if (stats != nullptr) stats->stream_bits_read += bits;
      times = &times_storage;
    }
    return *times;
  };

  for (const auto& tuple : groups) {
    const StiuIndex::RefTuple* rt = &tuple;
    const bool need_nrefs = rt->p_max >= alpha;
    if (!need_nrefs && stats != nullptr) ++stats->pruned_lemma1;
    const bool need_ref_eval =
        rt->ref_passes && meta.refs[rt->ref_idx].p_quantized >= alpha;
    if (!need_nrefs && !need_ref_eval) continue;  // Lemma 1 full skip

    // The reference's decoded form is only needed on the inline path (its
    // non-references expand against it); a handle already has everything.
    std::optional<DecodedInstance> ref;
    if (dt == nullptr) {
      ref.emplace();
      const uint64_t bits =
          decoder_.DecodeReferenceInto(traj_idx, rt->ref_idx, &*ref);
      if (stats != nullptr) {
        ++stats->instances_decoded;
        stats->stream_bits_read += bits;
      }
    }
    // Quantized relative distances can pull the sampled span slightly off
    // the exact query position; widen by the D error bound.
    const double tol =
        2.0 * cc().params().eta_d * net_.edge(edge).length + 1e-6;
    if (need_ref_eval) {
      std::optional<TrajectoryInstance> inst_storage;
      const TrajectoryInstance* inst =
          traj::SlotOrDecode(dt, &traj::DecodedTraj::ref_insts, rt->ref_idx,
                             inst_storage,
                             [&] { return decoder_.ToInstance(*ref); });
      if (inst != nullptr) {
        for (const Timestamp t : traj::TimesAtPosition(
                 net_, *inst, ensure_times(), edge, rd, tol)) {
          hits.push_back({meta.refs[rt->ref_idx].orig_index,
                          inst->probability, t});
        }
      }
    }
    if (!need_nrefs) continue;
    // Only the Rrs members that pass these regions (their tuples name them).
    for (const uint32_t nref_idx : nref_candidates) {
      const NrefMeta& nm = meta.nrefs[nref_idx];
      if (nm.ref_pos != rt->ref_idx || nm.p_quantized < alpha) continue;
      std::optional<TrajectoryInstance> inst_storage;
      const TrajectoryInstance* inst = traj::SlotOrDecode(
          dt, &traj::DecodedTraj::nref_insts, nref_idx, inst_storage, [&] {
            DecodedInstance d;
            const uint64_t bits =
                decoder_.DecodeNonReferenceInto(traj_idx, nref_idx, *ref, &d);
            if (stats != nullptr) {
              ++stats->instances_decoded;
              stats->stream_bits_read += bits;
            }
            return decoder_.ToInstance(d);
          });
      if (inst == nullptr) continue;
      for (const Timestamp t : traj::TimesAtPosition(
               net_, *inst, ensure_times(), edge, rd, tol)) {
        hits.push_back({nm.orig_index, inst->probability, t});
      }
    }
  }
  return hits;
}

traj::RangeResult UtcqQueryProcessor::Range(const Rect& region, Timestamp tq,
                                            double alpha,
                                            QueryStats* stats) const {
  return RangeImpl(region, tq, alpha, nullptr, stats);
}

traj::RangeResult UtcqQueryProcessor::Range(const Rect& region, Timestamp tq,
                                            double alpha,
                                            const traj::DecodedProvider& provider,
                                            QueryStats* stats) const {
  return RangeImpl(region, tq, alpha, &provider, stats);
}

traj::RangeResult UtcqQueryProcessor::RangeImpl(
    const Rect& region, Timestamp tq, double alpha,
    const traj::DecodedProvider* provider, QueryStats* stats) const {
  traj::RangeResult result;
  const auto retotal = index_.grid().RegionsInRect(region);

  // Active trajectories at tq (sorted by construction).
  const auto& active = index_.TrajectoriesAt(tq);
  const auto is_active = [&](uint32_t j) {
    return std::binary_search(active.begin(), active.end(), j);
  };

  // Candidate instances from the spatial tuples over retotal (a superset
  // of RE — Lemma 4's region), as packed keys: traj | is_ref | idx.
  // Sort + unique beats hashing on the small per-query candidate sets.
  std::vector<uint64_t> members;
  for (const network::RegionId re : retotal) {
    for (const auto& rt : index_.RefTuplesIn(re)) {
      if (!rt.ref_passes || !is_active(rt.traj)) continue;
      members.push_back((static_cast<uint64_t>(rt.traj) << 33) |
                        (1ull << 32) | rt.ref_idx);
    }
    for (const auto& nt : index_.NrefTuplesIn(re)) {
      if (!is_active(nt.traj)) continue;
      members.push_back((static_cast<uint64_t>(nt.traj) << 33) | nt.nref_idx);
    }
  }
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());

  for (size_t lo = 0; lo < members.size();) {
    const uint32_t j = static_cast<uint32_t>(members[lo] >> 33);
    size_t hi = lo;
    double p_sum = 0.0;
    const TrajMeta& meta = cc().meta(j);
    while (hi < members.size() &&
           static_cast<uint32_t>(members[hi] >> 33) == j) {
      const bool is_ref = (members[hi] >> 32) & 1;
      const uint32_t idx = static_cast<uint32_t>(members[hi] & 0xFFFFFFFFu);
      p_sum += is_ref ? meta.refs[idx].p_quantized
                      : meta.nrefs[idx].p_quantized;
      ++hi;
    }
    const size_t begin = lo;
    lo = hi;
    if (stats != nullptr) ++stats->candidates;
    if (tq < meta.t_first || tq > meta.t_last) continue;

    // Lemma 4: total probability mass near RE cannot reach alpha.
    if (p_sum < alpha) {
      if (stats != nullptr) ++stats->pruned_lemma4;
      continue;
    }

    const auto& tuple = index_.TemporalTupleFor(j, tq);
    UtcqDecoder::SeekStats seek;
    const auto bracket = decoder_.BracketTime(j, tq, tuple.t_no,
                                              tuple.t_start, tuple.t_pos,
                                              &seek);
    if (stats != nullptr) {
      stats->stream_bits_read += seek.bits_read;
      stats->sync_seeks += seek.sync_seeks;
    }
    if (!bracket.has_value()) continue;

    // Pin the trajectory's handle only now that every index/meta-level
    // rejection has passed: a decode-on-miss provider (the engine's cache)
    // must never pay a full decode for a candidate the bracket was about
    // to discard. The shared_ptr guards the member walk against concurrent
    // eviction.
    std::shared_ptr<const traj::DecodedTraj> pinned;
    if (provider != nullptr && *provider) pinned = (*provider)(j);
    const traj::DecodedTraj* dt = UsableHandle(meta, pinned.get());

    // Decode members, references first (reused across their Rrs).
    std::vector<std::pair<uint32_t, DecodedInstance>> ref_cache;
    auto ref_of = [&](uint32_t r) -> const DecodedInstance& {
      for (const auto& [key, value] : ref_cache) {
        if (key == r) return value;
      }
      ref_cache.emplace_back(r, DecodedInstance{});
      const uint64_t bits =
          decoder_.DecodeReferenceInto(j, r, &ref_cache.back().second);
      if (stats != nullptr) {
        ++stats->instances_decoded;
        stats->stream_bits_read += bits;
      }
      return ref_cache.back().second;
    };

    // Members are processed in chunks of 8: decode + classify the chunk,
    // batch the kPartial positions through the strategy interpolation
    // kernel, then fold probabilities back in strict member order — the
    // overlap_p summation order (and so any floating-point tie against
    // alpha) is exactly the one-at-a-time walk's. Lemma 3's early accept
    // still stops the walk; it merely lands at chunk granularity, so up to
    // seven members past the accepting one get decoded (counted in stats)
    // without affecting the result.
    constexpr size_t kChunk = 8;
    double overlap_p = 0.0;
    bool accepted = false;
    for (size_t cb = begin; cb < hi && !accepted; cb += kChunk) {
      const size_t ce = std::min(cb + kChunk, hi);
      const size_t cn = ce - cb;
      double pvals[kChunk];
      const TrajectoryInstance* insts[kChunk];
      SubpathRelation rels[kChunk];
      std::array<std::optional<TrajectoryInstance>, kChunk> storage;
      for (size_t k = cb; k < ce; ++k) {
        const size_t c = k - cb;
        const bool is_ref = (members[k] >> 32) & 1;
        const uint32_t idx = static_cast<uint32_t>(members[k] & 0xFFFFFFFFu);
        if (is_ref) {
          pvals[c] = meta.refs[idx].p_quantized;
          insts[c] = traj::SlotOrDecode(
              dt, &traj::DecodedTraj::ref_insts, idx, storage[c],
              [&] { return decoder_.ToInstance(ref_of(idx)); });
        } else {
          pvals[c] = meta.nrefs[idx].p_quantized;
          insts[c] = traj::SlotOrDecode(
              dt, &traj::DecodedTraj::nref_insts, idx, storage[c], [&] {
                const DecodedInstance& ref = ref_of(meta.nrefs[idx].ref_pos);
                DecodedInstance d;
                const uint64_t bits =
                    decoder_.DecodeNonReferenceInto(j, idx, ref, &d);
                if (stats != nullptr) {
                  ++stats->instances_decoded;
                  stats->stream_bits_read += bits;
                }
                return decoder_.ToInstance(d);
              });
        }
        if (insts[c] == nullptr) {
          rels[c] = SubpathRelation::kDisjoint;
          continue;
        }
        rels[c] = ClassifySubpath(net_, *insts[c], bracket->index, region);
        if (stats != nullptr && rels[c] != SubpathRelation::kPartial) {
          ++stats->pruned_lemma2;
        }
      }

      // Only kPartial members need an interpolated point-in-region test.
      std::vector<const TrajectoryInstance*> partial_insts;
      std::vector<size_t> partial_slots;
      for (size_t c = 0; c < cn; ++c) {
        if (insts[c] != nullptr && rels[c] == SubpathRelation::kPartial) {
          partial_insts.push_back(insts[c]);
          partial_slots.push_back(c);
        }
      }
      const auto positions = traj::PositionsInBracket(
          net_, partial_insts, bracket->index, bracket->t0, bracket->t1, tq);
      bool in_region[kChunk] = {};
      for (size_t v = 0; v < partial_slots.size(); ++v) {
        const network::Vertex xy =
            net_.PointOnEdge(positions[v].edge, positions[v].ndist);
        in_region[partial_slots[v]] = region.Contains(xy.x, xy.y);
      }

      for (size_t c = 0; c < cn; ++c) {
        if (insts[c] == nullptr) continue;
        if (rels[c] == SubpathRelation::kInside ||
            (rels[c] == SubpathRelation::kPartial && in_region[c])) {
          overlap_p += pvals[c];
        }
        if (overlap_p >= alpha) {  // Lemma 3 early accept
          if (stats != nullptr) ++stats->accepted_lemma3;
          accepted = true;
          break;
        }
      }
    }
    if (accepted) result.push_back(j);
  }
  return result;
}

}  // namespace utcq::core
