#ifndef UTCQ_CORE_CORPUS_VIEW_H_
#define UTCQ_CORE_CORPUS_VIEW_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitstream.h"
#include "common/pddp.h"
#include "core/corpus_meta.h"

namespace utcq::core {

/// Immutable, non-owning read-side of a UTCQ-compressed corpus.
///
/// The write side (UtcqCompressor -> CompressedCorpus) produces four
/// append-only bit streams plus per-trajectory metas. Everything downstream
/// — UtcqDecoder, StiuIndex construction, UtcqQueryProcessor — consumes this
/// view instead, so the same decode and query code runs over a corpus that
/// was compressed seconds ago (spans borrow the live BitWriters) or loaded
/// from an archive file (spans borrow the mapped section buffers). The view
/// is a handful of pointers; copy it freely. Whatever owns the bytes and the
/// metas must outlive every view and reader derived from it.
class CorpusView {
 public:
  CorpusView() = default;
  CorpusView(const UtcqParams& params, int entry_bits, common::BitSpan t,
             common::BitSpan ref, common::BitSpan nref,
             common::BitSpan structure, const TrajMeta* metas,
             size_t num_trajectories)
      : params_(params),
        entry_bits_(entry_bits),
        d_codec_(params.eta_d),
        p_codec_(params.eta_p),
        t_(t),
        ref_(ref),
        nref_(nref),
        structure_(structure),
        metas_(metas),
        num_trajectories_(num_trajectories) {}

  const UtcqParams& params() const { return params_; }
  int entry_bits() const { return entry_bits_; }
  const common::PddpCodec& d_codec() const { return d_codec_; }
  const common::PddpCodec& p_codec() const { return p_codec_; }

  const common::BitSpan& t_span() const { return t_; }
  const common::BitSpan& ref_span() const { return ref_; }
  const common::BitSpan& nref_span() const { return nref_; }
  const common::BitSpan& structure_span() const { return structure_; }

  common::BitReader t_reader() const { return common::BitReader(t_); }
  common::BitReader ref_reader() const { return common::BitReader(ref_); }
  common::BitReader nref_reader() const { return common::BitReader(nref_); }

  size_t num_trajectories() const { return num_trajectories_; }
  const TrajMeta& meta(size_t j) const { return metas_[j]; }

  /// Total compressed payload in bits (all four streams).
  uint64_t total_bits() const {
    return t_.size_bits + ref_.size_bits + nref_.size_bits +
           structure_.size_bits;
  }

 private:
  UtcqParams params_{};
  int entry_bits_ = 4;
  common::PddpCodec d_codec_{1.0 / 128.0};
  common::PddpCodec p_codec_{1.0 / 512.0};
  common::BitSpan t_;
  common::BitSpan ref_;
  common::BitSpan nref_;
  common::BitSpan structure_;
  const TrajMeta* metas_ = nullptr;
  size_t num_trajectories_ = 0;
};

}  // namespace utcq::core

#endif  // UTCQ_CORE_CORPUS_VIEW_H_
