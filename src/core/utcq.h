#ifndef UTCQ_CORE_UTCQ_H_
#define UTCQ_CORE_UTCQ_H_

#include <memory>
#include <string>

#include "core/decoder.h"
#include "core/encoder.h"
#include "core/query.h"
#include "core/stiu_index.h"
#include "network/grid_index.h"

namespace utcq::core {

/// Per-component and total compression ratios (Table 8 layout).
struct CompressionReport {
  double total = 0.0;
  double t = 0.0;
  double e = 0.0;
  double d = 0.0;
  double tflag = 0.0;
  double p = 0.0;
  uint64_t raw_bits = 0;
  uint64_t compressed_bits = 0;
  double seconds = 0.0;
  size_t peak_memory_bytes = 0;
};

CompressionReport MakeReport(const traj::ComponentSizes& raw,
                             const traj::ComponentSizes& compressed,
                             double seconds, size_t peak_memory);

/// One-stop UTCQ pipeline: compression, StIU construction, and the three
/// probabilistic query types, bundled behind the public API the examples
/// and benches use.
class UtcqSystem {
 public:
  /// Compresses `corpus` and builds the StIU index.
  /// The grid index must outlive the system.
  UtcqSystem(const network::RoadNetwork& net, const network::GridIndex& grid,
             const traj::UncertainCorpus& corpus, UtcqParams params,
             StiuParams index_params);

  const CompressedCorpus& compressed() const { return compressed_; }
  const StiuIndex& index() const { return *index_; }
  const UtcqQueryProcessor& queries() const { return *queries_; }
  UtcqDecoder decoder() const { return UtcqDecoder(net_, compressed_); }

  const CompressionReport& report() const { return report_; }
  size_t index_size_bytes() const { return index_->SizeBytes(); }

 private:
  const network::RoadNetwork& net_;
  CompressedCorpus compressed_;
  std::unique_ptr<StiuIndex> index_;
  std::unique_ptr<UtcqQueryProcessor> queries_;
  CompressionReport report_;
};

/// Formats a report as the Table 8 row layout (for benches and examples).
std::string FormatReport(const std::string& label,
                         const CompressionReport& report);

}  // namespace utcq::core

#endif  // UTCQ_CORE_UTCQ_H_
