#ifndef UTCQ_CORE_REFERENTIAL_H_
#define UTCQ_CORE_REFERENTIAL_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace utcq::core {

/// One factor of Com_E(Nref, Ref) (Definition 8, Section 4.2).
///
/// Three shapes, exactly as the paper rewrites (S, L, M):
///  * (S, L, M): copy ref[S, S+L), then emit the mismatch M  (general case)
///  * (S, L):    copy ref[S, S+L); only legal as the final factor (case A)
///  * (S=|ref|, M): "append to reference end" for a symbol absent from the
///                  reference; L is implicit 1 (case B)
struct EFactor {
  uint32_t s = 0;
  uint32_t l = 0;                 // 0 only for case-B factors
  std::optional<uint32_t> m;      // absent only for the final case-A factor
  bool case_b = false;

  bool operator==(const EFactor&) const = default;
};

/// Greedy longest-match factorization of `target` against `ref`
/// (ties broken toward the smallest S for determinism). The result decodes
/// back to `target` via ExpandE for any inputs.
std::vector<EFactor> FactorizeE(const std::vector<uint32_t>& ref,
                                const std::vector<uint32_t>& target);

/// Inverse of FactorizeE.
std::vector<uint32_t> ExpandE(const std::vector<uint32_t>& ref,
                              const std::vector<EFactor>& factors);

/// One (S, L) factor of the time-flag referential representation. For all
/// non-final factors the mismatched bit after the copy is *inferred* as
/// NOT ref[S+L] (Section 4.2); the final factor may carry an explicit M.
struct TFactor {
  uint32_t s = 0;
  uint32_t l = 0;

  bool operator==(const TFactor&) const = default;
};

/// How a non-reference time-flag bit-string is represented (the 2-bit mode
/// header documented in DESIGN.md §2).
enum class TflagMode : uint8_t {
  kIdentical = 0,  // Com = empty: equal to the reference
  kFactors = 1,    // (S, L) list, M inferred; final factor may carry M
  kLiteral = 2,    // raw bits (degenerate references, or factors not paying)
};

struct TflagCom {
  TflagMode mode = TflagMode::kIdentical;
  std::vector<TFactor> factors;
  bool last_has_m = false;
  uint8_t last_m = 0;

  bool operator==(const TflagCom&) const = default;
};

/// Pure (S, L) factorization of `target` against `ref` with inferable
/// intermediate mismatches (the paper's Section 4.2 construction). Returns
/// false when the inference invariant cannot be satisfied (degenerate
/// references — see DESIGN.md §2), in which case the caller must fall back
/// to literal coding.
bool FactorizeTflagFactors(const std::vector<uint8_t>& ref,
                           const std::vector<uint8_t>& target,
                           std::vector<TFactor>* factors, bool* last_has_m,
                           uint8_t* last_m);

/// Chooses the cheapest valid representation of `target` against `ref`:
/// kIdentical when equal, otherwise the factor list or a literal, whichever
/// encodes smaller.
TflagCom FactorizeTflag(const std::vector<uint8_t>& ref,
                        const std::vector<uint8_t>& target);

/// Expands a factor representation back to the target bit-string.
/// `target_len` frames the expansion; for kLiteral the caller supplies the
/// literal bits (they live in the encoded stream) via `literal`.
std::vector<uint8_t> ExpandTflag(const std::vector<uint8_t>& ref,
                                 const TflagCom& com, size_t target_len,
                                 const std::vector<uint8_t>& literal = {});

/// One factor of Com_D: position `pos` holds `rd` instead of the
/// reference's value (Section 4.2: D lengths agree across the instances of
/// one uncertain trajectory, so positional diffs are well-defined).
struct DFactor {
  uint32_t pos = 0;
  double rd = 0.0;
};

/// Positions where the *quantized* relative distances differ. Comparing
/// quantized values keeps the diff faithful to what decompression yields.
template <typename Quantizer>
std::vector<DFactor> DiffD(const std::vector<double>& ref,
                           const std::vector<double>& target,
                           const Quantizer& quantize) {
  std::vector<DFactor> diff;
  for (size_t i = 0; i < target.size(); ++i) {
    if (quantize(ref[i]) != quantize(target[i])) {
      diff.push_back({static_cast<uint32_t>(i), target[i]});
    }
  }
  return diff;
}

/// Applies D factors on top of the reference values.
std::vector<double> ApplyD(const std::vector<double>& ref,
                           const std::vector<DFactor>& diff);

}  // namespace utcq::core

#endif  // UTCQ_CORE_REFERENTIAL_H_
