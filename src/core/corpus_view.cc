#include "core/corpus_view.h"

// CorpusView is header-only; this TU just anchors standalone compilation of
// the header.
