#ifndef UTCQ_CORE_QUERY_H_
#define UTCQ_CORE_QUERY_H_

#include <vector>

#include "core/decoder.h"
#include "core/stiu_index.h"
#include "network/geometry.h"
#include "traj/query_types.h"

namespace utcq::core {

/// Counters making the filtering lemmas' effectiveness observable
/// (reported by the query benches).
struct QueryStats {
  uint64_t candidates = 0;
  uint64_t pruned_lemma1 = 0;  // when: p_max gate on non-references
  uint64_t pruned_lemma2 = 0;  // range: subpath containment/disjointness
  uint64_t pruned_lemma4 = 0;  // range: region probability mass below alpha
  uint64_t accepted_lemma3 = 0;  // range: early accept
  uint64_t instances_decoded = 0;
  /// Compressed stream bits the query actually consumed (T-stream bracket
  /// scans, reference/non-reference expansion, lazy time decodes). This is
  /// the partial-decode cost metric: comparable across the seek path and a
  /// metered full decode, unlike in-memory handle sizes.
  uint64_t stream_bits_read = 0;
  /// Bracket scans whose start was upgraded through a v3 sync table.
  uint64_t sync_seeks = 0;
};

/// Lemma 2 classification of a travelled subpath against a query region.
enum class SubpathRelation { kInside, kDisjoint, kPartial };

/// Relation of the subpath travelled between locations i and i+1 of `inst`
/// against `re`, using the full bracketing edges as a conservative superset.
/// Degenerate instances (empty path, or a location pointing past the path)
/// classify as kDisjoint: a subpath that touches no edge overlaps nothing.
SubpathRelation ClassifySubpath(const network::RoadNetwork& net,
                                const traj::TrajectoryInstance& inst, size_t i,
                                const network::Rect& re);

/// Probabilistic where / when / range queries over a compressed corpus,
/// using the StIU index for candidate generation and partial decompression
/// and Lemmas 1-4 for pruning (Sections 5.3-5.4).
///
/// Consumes the immutable CorpusView, so the same processor serves a corpus
/// still held by its compressor and one reopened from an archive file — the
/// compress→save→exit→open→query lifecycle runs through this one class.
class UtcqQueryProcessor {
 public:
  UtcqQueryProcessor(const network::RoadNetwork& net, CorpusView cc,
                     const StiuIndex& index)
      : net_(net), index_(index), decoder_(net, cc) {}

  /// where(Tu^j, t, alpha) — Definition 10.
  std::vector<traj::WhereHit> Where(size_t traj_idx, traj::Timestamp t,
                                    double alpha,
                                    QueryStats* stats = nullptr) const;

  /// when(Tu^j, <edge, rd>, alpha) — Definition 11.
  std::vector<traj::WhenHit> When(size_t traj_idx, network::EdgeId edge,
                                  double rd, double alpha,
                                  QueryStats* stats = nullptr) const;

  /// range(Tu, RE, tq, alpha) — Definition 12.
  traj::RangeResult Range(const network::Rect& region, traj::Timestamp tq,
                          double alpha, QueryStats* stats = nullptr) const;

  /// Cached variants: identical hits in identical order, but every decode
  /// is served from the pre-expanded handle (the serving layer's cache)
  /// instead of the bitstreams. `dt` must be decoder().DecodeTraj(traj_idx)
  /// output; a handle whose shape disagrees with the trajectory's meta
  /// falls back to inline decoding.
  std::vector<traj::WhereHit> Where(size_t traj_idx, traj::Timestamp t,
                                    double alpha, const traj::DecodedTraj& dt,
                                    QueryStats* stats = nullptr) const;
  std::vector<traj::WhenHit> When(size_t traj_idx, network::EdgeId edge,
                                  double rd, double alpha,
                                  const traj::DecodedTraj& dt,
                                  QueryStats* stats = nullptr) const;

  /// Range with a decoded-trajectory provider: candidate generation and the
  /// Lemma 1-4 pruning cascade are unchanged, but trajectories the provider
  /// can supply skip the per-member bitstream decodes. The provider may be
  /// empty or return nullptr per trajectory (inline decode for those); it
  /// is only consulted for candidates that survive every meta/index-level
  /// rejection, so a decode-on-miss provider never decodes a trajectory
  /// the uncached path would have dismissed without decoding.
  traj::RangeResult Range(const network::Rect& region, traj::Timestamp tq,
                          double alpha, const traj::DecodedProvider& provider,
                          QueryStats* stats = nullptr) const;

  /// Index-only test of whether any instance of trajectory `traj_idx` has
  /// StIU tuples near `edge` — exactly the condition under which When can
  /// return hits. False means When answers empty with zero decodes; the
  /// serving layer checks this before paying a full decode for the handle.
  bool MayPassEdge(size_t traj_idx, network::EdgeId edge) const;

  const UtcqDecoder& decoder() const { return decoder_; }

 private:
  std::vector<traj::WhereHit> WhereImpl(size_t traj_idx, traj::Timestamp t,
                                        double alpha,
                                        const traj::DecodedTraj* dt,
                                        QueryStats* stats) const;
  std::vector<traj::WhenHit> WhenImpl(size_t traj_idx, network::EdgeId edge,
                                      double rd, double alpha,
                                      const traj::DecodedTraj* dt,
                                      QueryStats* stats) const;
  traj::RangeResult RangeImpl(const network::Rect& region, traj::Timestamp tq,
                              double alpha,
                              const traj::DecodedProvider* provider,
                              QueryStats* stats) const;

  /// Decodes the instances of trajectory `j` whose quantized probability is
  /// >= alpha, reusing each reference decode across its Rrs. With `dt` the
  /// instances come from the handle instead.
  std::vector<std::pair<uint32_t, traj::TrajectoryInstance>>
  DecodeQualifying(size_t j, double alpha, const traj::DecodedTraj* dt,
                   QueryStats* stats) const;

  /// The decoder's view is the single copy of the corpus read-side.
  const CorpusView& cc() const { return decoder_.view(); }

  const network::RoadNetwork& net_;
  const StiuIndex& index_;
  UtcqDecoder decoder_;
};

}  // namespace utcq::core

#endif  // UTCQ_CORE_QUERY_H_
