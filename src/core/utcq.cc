#include "core/utcq.h"

#include <sstream>

#include "common/stopwatch.h"

namespace utcq::core {

namespace {

double Ratio(uint64_t raw, uint64_t compressed) {
  if (compressed == 0) return 0.0;
  return static_cast<double>(raw) / static_cast<double>(compressed);
}

}  // namespace

CompressionReport MakeReport(const traj::ComponentSizes& raw,
                             const traj::ComponentSizes& compressed,
                             double seconds, size_t peak_memory) {
  CompressionReport r;
  // SV is folded into E on both sides (DESIGN.md §2).
  r.t = Ratio(raw.t_bits, compressed.t_bits);
  r.e = Ratio(raw.e_bits + raw.sv_bits, compressed.e_bits + compressed.sv_bits);
  r.d = Ratio(raw.d_bits, compressed.d_bits);
  r.tflag = Ratio(raw.tflag_bits, compressed.tflag_bits);
  r.p = Ratio(raw.p_bits, compressed.p_bits);
  r.raw_bits = raw.total();
  r.compressed_bits = compressed.total();
  r.total = Ratio(r.raw_bits, r.compressed_bits);
  r.seconds = seconds;
  r.peak_memory_bytes = peak_memory;
  return r;
}

UtcqSystem::UtcqSystem(const network::RoadNetwork& net,
                       const network::GridIndex& grid,
                       const traj::UncertainCorpus& corpus, UtcqParams params,
                       StiuParams index_params)
    : net_(net) {
  common::Stopwatch watch;
  UtcqCompressor compressor(net, params);
  std::vector<std::vector<NrefFactorLayout>> layouts;
  compressed_ = compressor.Compress(corpus, &layouts);
  const double seconds = watch.ElapsedSeconds();

  index_ = std::make_unique<StiuIndex>(net, grid, corpus, compressed_,
                                       layouts, index_params);
  queries_ = std::make_unique<UtcqQueryProcessor>(net, compressed_, *index_);

  report_ = MakeReport(traj::MeasureRawSize(net, corpus),
                       compressed_.compressed_bits(), seconds,
                       compressed_.peak_memory_bytes());
}

std::string FormatReport(const std::string& label,
                         const CompressionReport& report) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << label << "  Total=" << report.total << "  T=" << report.t
     << "  E=" << report.e << "  D=" << report.d << "  T'=" << report.tflag
     << "  p=" << report.p << "  time=" << report.seconds << "s"
     << "  peak_mem=" << report.peak_memory_bytes / 1024 << "KiB";
  return os.str();
}

}  // namespace utcq::core
