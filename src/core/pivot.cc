#include "core/pivot.h"

#include <algorithm>
#include <unordered_map>

namespace utcq::core {

PivotCom FactorizeAgainstPivot(const std::vector<uint32_t>& pivot,
                               const std::vector<uint32_t>& target) {
  PivotCom com;
  const size_t n = target.size();
  const size_t m = pivot.size();
  std::unordered_map<uint32_t, std::vector<uint32_t>> occurrences;
  for (uint32_t s = 0; s < m; ++s) occurrences[pivot[s]].push_back(s);

  size_t i = 0;
  while (i < n) {
    uint32_t best_s = 0;
    size_t best_l = 0;
    const auto it = occurrences.find(target[i]);
    if (it != occurrences.end()) {
      for (const uint32_t s : it->second) {
        size_t l = 0;
        while (s + l < m && i + l < n && pivot[s + l] == target[i + l]) ++l;
        if (l > best_l) {
          best_l = l;
          best_s = s;
        }
      }
    }
    ++com.total_factors;
    if (best_l == 0) {
      // Symbol absent from the pivot: factor omitted but counted.
      ++i;
      continue;
    }
    com.factors.emplace_back(best_s, static_cast<uint32_t>(best_l));
    i += best_l;
  }
  return com;
}

std::vector<uint32_t> SelectPivots(
    const std::vector<std::vector<uint32_t>>& entry_seqs, int num_pivots,
    uint32_t seed_instance) {
  std::vector<uint32_t> pivots;
  const size_t n = entry_seqs.size();
  if (n == 0 || num_pivots <= 0) return pivots;
  uint32_t current = std::min<uint32_t>(seed_instance, n - 1);

  std::vector<bool> chosen(n, false);
  for (int round = 0; round < num_pivots && pivots.size() < n; ++round) {
    // Represent everything against `current`; the instance with the most
    // factors is farthest away and becomes the next pivot.
    uint32_t farthest = current;
    uint32_t max_factors = 0;
    for (uint32_t w = 0; w < n; ++w) {
      if (chosen[w]) continue;
      const PivotCom com =
          FactorizeAgainstPivot(entry_seqs[current], entry_seqs[w]);
      if (com.total_factors > max_factors) {
        max_factors = com.total_factors;
        farthest = w;
      }
    }
    if (chosen[farthest]) break;
    chosen[farthest] = true;
    pivots.push_back(farthest);
    current = farthest;
  }
  return pivots;
}

std::vector<std::vector<PivotCom>> RepresentAgainstPivots(
    const std::vector<std::vector<uint32_t>>& entry_seqs,
    const std::vector<uint32_t>& pivots) {
  std::vector<std::vector<PivotCom>> result(pivots.size());
  for (size_t i = 0; i < pivots.size(); ++i) {
    result[i].reserve(entry_seqs.size());
    for (const auto& seq : entry_seqs) {
      result[i].push_back(
          FactorizeAgainstPivot(entry_seqs[pivots[i]], seq));
    }
  }
  return result;
}

}  // namespace utcq::core
