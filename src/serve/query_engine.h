#ifndef UTCQ_SERVE_QUERY_ENGINE_H_
#define UTCQ_SERVE_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/query.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "serve/decoded_cache.h"
#include "serve/tier.h"
#include "shard/sharded.h"
#include "traj/query_types.h"

namespace utcq::serve {

/// One request of the batched serving API. `traj` addresses the global
/// trajectory space (identical to the backing corpus / sharded set).
enum class QueryKind : uint8_t { kWhere, kWhen, kRange };

struct QueryRequest {
  QueryKind kind = QueryKind::kWhere;
  uint32_t traj = 0;         // where/when target
  traj::Timestamp t = 0;     // where time / range tq
  network::EdgeId edge = 0;  // when
  double rd = 0.0;           // when
  network::Rect region{};    // range
  double alpha = 0.0;

  static QueryRequest MakeWhere(uint32_t traj, traj::Timestamp t,
                                double alpha);
  static QueryRequest MakeWhen(uint32_t traj, network::EdgeId edge, double rd,
                               double alpha);
  static QueryRequest MakeRange(const network::Rect& region,
                                traj::Timestamp tq, double alpha);
};

/// The slot matching the request's kind is filled; the others stay empty.
struct QueryResult {
  QueryKind kind = QueryKind::kWhere;
  std::vector<traj::WhereHit> where;
  std::vector<traj::WhenHit> when;
  traj::RangeResult range;
};

/// Whether point queries and cold Range brackets answer from the seekable
/// bitstreams (archive v3, DESIGN.md §16) instead of pinning a full decode.
enum class PartialDecode : uint8_t {
  /// Partial iff the cache keeps nothing resident (cache_budget_bytes == 0):
  /// with no cache to warm, a full decode per query is pure waste, while a
  /// warmed cache amortizes its decode across repeats partial decode would
  /// pay every time.
  kAuto,
  /// Always pin a full decode (pre-v3 behaviour).
  kOff,
  /// Always answer from the bitstreams; the cache is never consulted or
  /// populated by query execution. Differential harnesses force this to
  /// sweep the seek path.
  kAlways,
};

struct EngineOptions {
  /// Total decoded-trajectory cache budget. 0 keeps nothing resident
  /// (every query decodes — the cold path, useful for measurement).
  size_t cache_budget_bytes = 256ull << 20;
  uint32_t cache_shards = 8;
  /// Partial-decode policy; see PartialDecode. The partial path never
  /// touches the DecodedTrajCache in either direction — in particular it
  /// must never insert its partially expanded state under the full-decode
  /// key, where a later query would trust it as complete.
  PartialDecode partial_decode = PartialDecode::kAuto;
  /// Fan-out width for ExecuteBatch grouping and Range. 0 picks
  /// common::DefaultThreads(). Work runs on the process-wide persistent
  /// ThreadPool::Shared() (no per-batch thread spawning); this caps how
  /// many of its workers one batch enlists.
  unsigned num_threads = 0;
  /// Where the engine's `serve.*` instruments live (DESIGN.md §15).
  /// nullptr = a private registry, so independent engines (tests) keep
  /// exact per-instance stats; a server passes one registry for export.
  obs::MetricRegistry* registry = nullptr;
  /// Latency time source; nullptr = obs::Clock::Real(). Injected so tests
  /// drive the latency histograms and slow-query log deterministically.
  const obs::Clock* clock = nullptr;
  /// Queries at least this slow (microseconds) enter the slow-query log;
  /// 0 disables the log entirely (no lock ever taken for it).
  uint64_t slow_query_threshold_us = 0;
  /// How many worst queries the slow-query log retains.
  size_t slow_query_log_size = 32;
};

/// One retained slow-query record (see EngineOptions thresholds).
struct SlowQuery {
  QueryKind kind = QueryKind::kWhere;
  /// Target trajectory; UINT32_MAX for range queries.
  uint32_t traj = 0;
  double latency_us = 0.0;
  /// Bytes this query's pins materialized (0 when served from cache).
  uint64_t decode_bytes = 0;
  /// True when every pin this query took was a cache hit.
  bool cache_hit = false;
};

/// Point-in-time engine counters. Latency percentiles are read from the
/// engine's obs latency histograms (all query kinds merged).
struct EngineStats {
  uint64_t queries = 0;
  uint64_t batches = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t bytes_decoded = 0;
  /// Queries answered from the bitstreams without pinning a full decode.
  uint64_t partial_queries = 0;
  /// Compressed-stream bytes those queries consumed (the partial analogue
  /// of bytes_decoded, in comparable stream units).
  uint64_t decode_bytes_partial = 0;
  /// Bracket scans the partial path started from a v3 sync point.
  uint64_t sync_seeks = 0;
  size_t cache_resident_bytes = 0;
  size_t cache_resident_entries = 0;
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  /// Entries currently retained in the slow-query log.
  size_t slow_queries = 0;

  double hit_rate() const {
    const uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) /
                                  static_cast<double>(total);
  }
};

/// The query-serving layer (DESIGN.md §9): sits above a single compressed
/// corpus (CorpusView + StIU via UtcqQueryProcessor) or a sharded archive
/// set, and amortizes the expensive step of every probabilistic query — the
/// bitstream decode of the target trajectory — across repeated accesses
/// through a byte-budgeted, sharded-LRU DecodedTrajCache.
///
/// All entry points are safe to call from many threads concurrently: the
/// underlying processors are immutable, the cache takes per-shard locks,
/// and engine counters are lock-free obs instruments. Results are
/// pinned-handle exact: every query returns precisely what the uncached
/// processor returns.
class QueryEngine {
 public:
  /// Serves a single corpus. `queries` (and everything it borrows) must
  /// outlive the engine.
  explicit QueryEngine(const core::UtcqQueryProcessor& queries,
                       EngineOptions opts = {});

  /// Serves an opened sharded archive set; point queries route to the
  /// owning shard, Range fans out with the cache shared across shards.
  explicit QueryEngine(const shard::ShardedCorpus& corpus,
                       EngineOptions opts = {});

  /// Live+sealed mode: serves a streaming tier (DESIGN.md §10). Every
  /// Execute acquires one TierSnapshot — ExecuteBatch one for the whole
  /// batch — so each request sees a consistent sealed-set/live-tail split
  /// while ingestion seals and flushes underneath. Point queries route by
  /// global id to whichever part currently owns it; Range merges the
  /// sealed fan-out with the live tail's hits. Every decoded-cache entry
  /// is keyed by global id in this mode, which stays valid across
  /// live-shard rebuilds and across the flush that moves a trajectory into
  /// the sealed set (its decoded form never changes) — flushing never
  /// cools the cache.
  explicit QueryEngine(const TierSource& tier, EngineOptions opts = {});

  size_t num_trajectories() const;

  /// Single-query API, cached.
  std::vector<traj::WhereHit> Where(uint32_t traj_idx, traj::Timestamp t,
                                    double alpha);
  std::vector<traj::WhenHit> When(uint32_t traj_idx, network::EdgeId edge,
                                  double rd, double alpha);
  traj::RangeResult Range(const network::Rect& region, traj::Timestamp tq,
                          double alpha);

  QueryResult Execute(const QueryRequest& req);

  /// Batched execution: requests are grouped by target trajectory, each
  /// needed trajectory is decoded (or fetched) once, and groups run on
  /// the shared persistent pool via ParallelFor. results[i] answers
  /// requests[i] and equals Execute(requests[i]) exactly — batching
  /// reorders work, never results.
  std::vector<QueryResult> ExecuteBatch(
      const std::vector<QueryRequest>& requests);

  EngineStats stats() const;
  /// The retained worst queries, sorted slowest first. Empty unless
  /// EngineOptions::slow_query_threshold_us is set.
  std::vector<SlowQuery> slow_queries() const;
  void ClearCache() { cache_.Clear(); }
  const EngineOptions& options() const { return opts_; }

 private:
  struct Target {
    const core::UtcqQueryProcessor* qp = nullptr;
    uint32_t shard = 0;
    uint32_t local = 0;
    uint64_t cache_key = 0;
  };

  /// Per-query pin cost, accumulated across every Pin the query takes
  /// (Range fans out across pool workers, hence the stack-local mutex).
  struct PinAgg {
    common::Mutex mu;
    uint64_t decode_bytes UTCQ_GUARDED_BY(mu) = 0;
    uint64_t misses UTCQ_GUARDED_BY(mu) = 0;
  };

  void InitInstruments();
  /// True when this engine answers point queries / cold Range brackets via
  /// partial decode (see PartialDecode).
  bool PartialActive() const {
    return opts_.partial_decode == PartialDecode::kAlways ||
           (opts_.partial_decode == PartialDecode::kAuto &&
            opts_.cache_budget_bytes == 0);
  }
  /// Folds one partial query's stream consumption into the obs counters
  /// and the per-query pin aggregation (for the decode_bytes histogram and
  /// slow-query log; cache miss accounting is untouched — no pin happened).
  void RecordPartial(const core::QueryStats& qs, PinAgg* agg);
  size_t TotalOf(const TierSnapshot* snap) const;
  Target Resolve(uint32_t global, const TierSnapshot* snap) const;
  std::shared_ptr<const traj::DecodedTraj> Pin(const Target& target,
                                               PinAgg* agg);
  QueryResult ExecuteOne(const QueryRequest& req, unsigned range_threads,
                         const TierSnapshot* snap);
  traj::RangeResult RangeInternal(const network::Rect& region,
                                  traj::Timestamp tq, double alpha,
                                  unsigned num_threads,
                                  const TierSnapshot* snap, PinAgg* agg);
  obs::Histogram& LatencyFor(QueryKind kind) {
    switch (kind) {
      case QueryKind::kWhere: return *latency_where_;
      case QueryKind::kWhen: return *latency_when_;
      case QueryKind::kRange: break;
    }
    return *latency_range_;
  }
  /// Records one finished request: latency histogram, slow-query log.
  void FinishQuery(const QueryRequest& req, uint64_t latency_ns,
                   PinAgg& agg);

  const core::UtcqQueryProcessor* single_ = nullptr;
  const shard::ShardedCorpus* sharded_ = nullptr;
  const TierSource* tier_ = nullptr;
  EngineOptions opts_;

  /// Declared before the cache and instrument pointers: both borrow it.
  std::unique_ptr<obs::MetricRegistry> owned_registry_;
  const obs::Clock* clock_ = nullptr;
  obs::Counter* queries_ = nullptr;
  obs::Counter* batches_ = nullptr;
  obs::Counter* partial_queries_ = nullptr;
  obs::Counter* decode_bytes_partial_ = nullptr;
  obs::Counter* sync_seeks_ = nullptr;
  obs::Histogram* latency_where_ = nullptr;
  obs::Histogram* latency_when_ = nullptr;
  obs::Histogram* latency_range_ = nullptr;
  obs::Histogram* decode_bytes_ = nullptr;
  obs::Histogram* batch_size_ = nullptr;

  DecodedTrajCache cache_;

  /// Slow-query log: touched only when a request crosses the threshold.
  mutable common::Mutex slow_mu_;
  std::vector<SlowQuery> slow_ UTCQ_GUARDED_BY(slow_mu_);
};

}  // namespace utcq::serve

#endif  // UTCQ_SERVE_QUERY_ENGINE_H_
